package amalgam

import (
	"errors"
	"fmt"
	"time"

	"amalgam/internal/optim"
)

// ErrEmptyEvalSet rejects a WithEvalSet split with no samples at
// option-resolution time: an empty split can only ever score 0 and
// historically produced NaN accuracies deep inside the epoch loop, so
// the misconfiguration is surfaced up front where it happened.
var ErrEmptyEvalSet = errors.New("amalgam: eval set is empty")

// Options configures obfuscation (dataset + model augmentation) for both
// modalities: Obfuscate (images) and ObfuscateText (token sequences).
type Options struct {
	// Amount is the augmentation amount α for both the dataset and the
	// model (the paper uses matched amounts throughout its evaluation).
	Amount float64
	// SubNets is the number of decoy sub-networks (0 = random in [2,4],
	// drawn deterministically from Seed). The draw is resolved before
	// augmentation and recorded back into the job, so remote jobs need NOT
	// pin it: the wire spec always carries the resolved count and the
	// service rebuilds the identical graph.
	SubNets int
	// Noise overrides the default noise (uniform pixels for images,
	// uniform vocabulary tokens for text).
	Noise *NoiseSpec
	// Seed drives every random choice (key, noise, decoys) and, unless
	// WithShuffleSeed overrides it, the per-epoch batch shuffle.
	Seed uint64
	// ModelName is the zoo name of a CV model; required only for remote
	// training, which ships a rebuildable spec to the service. Text jobs
	// carry their geometry in the spec and don't need it.
	ModelName string
}

// OptimizerSpec selects and parameterises the optimiser a job trains
// under. Specs are plain serialisable values: the same spec rebuilds the
// same optimiser locally and on a remote service, which is what keeps
// local and remote runs bit-identical. Zero-valued Adam fields fall back
// to the standard defaults (β₁ 0.9, β₂ 0.999, ε 1e-8). Use the Adam and
// AdamW constructors for the common cases.
type OptimizerSpec = optim.OptimSpec

// LRScheduleSpec selects and parameterises a learning-rate schedule.
// Schedules are reconstructable from (spec, epoch) alone — resuming a run
// at epoch k re-derives the same LR the uninterrupted run used, with no
// schedule state in the checkpoint. Use the StepDecay and CosineDecay
// constructors for the common cases.
type LRScheduleSpec = optim.ScheduleSpec

// Adam returns a spec for the Adam optimiser with standard defaults
// (β₁ 0.9, β₂ 0.999, ε 1e-8) at the given learning rate.
func Adam(lr float64) *OptimizerSpec {
	return &OptimizerSpec{Kind: optim.KindAdam, LR: lr}
}

// AdamW returns an Adam spec with decoupled weight decay: the decay is
// applied directly to the weights each step, outside the adaptive moment
// update.
func AdamW(lr, weightDecay float64) *OptimizerSpec {
	return &OptimizerSpec{Kind: optim.KindAdam, LR: lr, WeightDecay: weightDecay}
}

// StepDecay returns a schedule spec that multiplies the LR by gamma every
// stepSize epochs.
func StepDecay(stepSize int, gamma float64) *LRScheduleSpec {
	return &LRScheduleSpec{Kind: optim.SchedStep, StepSize: stepSize, Gamma: gamma}
}

// CosineDecay returns a schedule spec that anneals the LR from its base
// value to minLR along a half cosine over period epochs, holding minLR
// afterwards.
func CosineDecay(period int, minLR float64) *LRScheduleSpec {
	return &LRScheduleSpec{Kind: optim.SchedCosine, Period: period, MinLR: minLR}
}

// TrainConfig holds training hyper-parameters. With a nil Optimizer the
// job trains under SGD built from LR/Momentum/WeightDecay — the historic
// behaviour, byte-for-byte. A non-nil Optimizer spec takes over (its LR
// defaults to TrainConfig.LR when zero) and Momentum/WeightDecay are
// ignored in its favour.
type TrainConfig struct {
	Epochs, BatchSize         int
	LR, Momentum, WeightDecay float64
	// Optimizer selects a pluggable optimiser; nil means legacy SGD.
	// WithOptimizer overrides it per run.
	Optimizer *OptimizerSpec
	// LRSchedule decays the LR across epochs; nil means constant LR.
	// WithLRSchedule overrides it per run.
	LRSchedule *LRScheduleSpec
}

// EpochStats reports per-epoch original-sub-network loss and accuracy.
// Trainer streams deliver one element per completed epoch; a run that
// fails or is cancelled ends with a terminal element whose Err is non-nil
// (and whose other fields are zero).
type EpochStats struct {
	Epoch    int
	Loss     float64
	Accuracy float64
	// EvalAccuracy is the held-out accuracy when WithEvalSet is
	// configured; HasEval distinguishes "no eval set" from 0%. For LM
	// jobs both accuracies are next-token accuracies.
	EvalAccuracy float64
	HasEval      bool
	// Perplexity is exp(Loss), reported for LM jobs (whose Loss is the
	// mean per-token cross-entropy). Zero for other modalities.
	Perplexity float64
	// LR is the learning rate the epoch trained under. It is reported
	// only for runs with an optimiser or schedule spec configured; legacy
	// SGD runs leave it zero (their LR is constant and already known).
	LR float64
	// Err terminates a stream: context.Canceled / DeadlineExceeded for
	// cancelled runs, or the underlying failure. No further elements
	// follow an element with Err set.
	Err error
}

// EvalDataset is a held-out split accepted by WithEvalSet: an
// *ImageDataset for CV jobs, a *TextDataset for text jobs, or a
// *TokenStream for LM jobs. The job obfuscates it with its own key
// before scoring, so augmented-model accuracy is measured the way §5.4
// validates cloud-side.
type EvalDataset interface{ N() int }

// TrainOption customises a single Trainer.Run call.
type TrainOption func(*runOptions)

type runOptions struct {
	progress        func(EpochStats)
	checkpointPath  string
	checkpointEvery int
	resumePath      string
	// optimizer/schedule are the WithOptimizer/WithLRSchedule overrides;
	// nil falls back to the TrainConfig fields.
	optimizer *OptimizerSpec
	schedule  *LRScheduleSpec
	// resumeOptState holds the optimiser state (kind, step counter, and
	// moment/momentum buffers) recovered from the resume checkpoint;
	// trainers seed the optimiser with it so a resumed run is
	// bit-identical to an uninterrupted one, not merely convergent.
	resumeOptState *optim.State
	// resumeRNG holds the dropout-stream cursors recovered from the
	// resume checkpoint, so a resumed Dropout > 0 run replays masks from
	// the interruption point.
	resumeRNG      map[string][]byte
	evalSet        EvalDataset
	shuffleSeed    uint64
	shuffleSeedSet bool
	retry          *RetryPolicy
}

// RetryPolicy configures RemoteTrainer's fault tolerance: how many times
// to retry after a transient failure, how long to back off between
// attempts, and how tightly to bound each attempt's network I/O.
type RetryPolicy struct {
	// MaxRetries is the number of retry attempts AFTER the first try.
	// 0 with WithRetry still enables per-epoch resume snapshots but never
	// retries.
	MaxRetries int
	// BaseDelay seeds the capped exponential backoff (default 100ms):
	// attempt k waits about BaseDelay·2^k, jittered, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 5s).
	MaxDelay time.Duration
	// DialTimeout bounds each attempt's TCP dial. 0 leaves it unbounded
	// (the run context still applies).
	DialTimeout time.Duration
	// FrameTimeout bounds each frame-level read/write. It MUST exceed the
	// slowest expected epoch — during training the server is silent
	// between progress frames. 0 disables per-frame deadlines.
	FrameTimeout time.Duration
	// Seed drives the backoff jitter deterministically (reproducible
	// retry schedules in tests). The zero seed is a valid seed.
	Seed uint64
}

// WithRetry makes RemoteTrainer survive transient faults: dial failures,
// dropped connections, I/O deadlines, and graceful server shutdown are
// retried with capped exponential backoff, resuming from the last
// epoch-boundary snapshot streamed over the wire (falling back to the
// WithCheckpoint file when configured), so a killed connection re-trains
// no batch twice and the final weights are bit-identical to an unbroken
// run. Fatal errors — protocol version skew, corrupted frames, checkpoint
// kind mismatches, server-side job panics, the caller's own cancellation —
// are never retried. LocalTrainer ignores the option.
func WithRetry(p RetryPolicy) TrainOption {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return func(o *runOptions) { o.retry = &p }
}

// WithProgress registers a callback invoked synchronously after every
// completed epoch, in addition to the stats delivered on the Run channel.
func WithProgress(fn func(EpochStats)) TrainOption {
	return func(o *runOptions) { o.progress = fn }
}

// WithCheckpoint writes a resumable training checkpoint (completed-epoch
// count, job kind, full augmented-model state dict, and the optimiser's
// momentum buffers) to path every everyN epochs and whenever the run
// ends — including cancellation, so an interrupted job always leaves a
// loadable checkpoint. Because momentum state is checkpointed alongside
// the weights, a resumed run with Momentum > 0 is bit-identical to an
// uninterrupted one. everyN < 1 means every epoch. For remote training
// the service streams the snapshots back over the wire.
func WithCheckpoint(path string, everyN int) TrainOption {
	if everyN < 1 {
		everyN = 1
	}
	return func(o *runOptions) {
		o.checkpointPath = path
		o.checkpointEvery = everyN
	}
}

// WithResume continues a run from a checkpoint written by WithCheckpoint:
// the state dict is loaded into the job's augmented model and training
// restarts at the recorded epoch. Checkpoints are always epoch-aligned
// (cancellation stops at an epoch boundary), so no batch is ever trained
// twice. A missing file is not an error — the run simply starts fresh —
// so the same option list works for the first run and every retry.
func WithResume(path string) TrainOption {
	return func(o *runOptions) { o.resumePath = path }
}

// WithOptimizer overrides the run's optimiser. The spec travels with the
// job — a remote service rebuilds the identical optimiser from it — and
// its full state (step counter and moment buffers) rides checkpoints, so
// resumed runs stay bit-identical to uninterrupted ones. A spec with a
// zero LR inherits TrainConfig.LR.
func WithOptimizer(spec *OptimizerSpec) TrainOption {
	return func(o *runOptions) { o.optimizer = spec }
}

// WithLRSchedule overrides the run's learning-rate schedule. Schedules
// are pure functions of (spec, epoch), so resume re-derives the right LR
// from the checkpointed epoch alone.
func WithLRSchedule(spec *LRScheduleSpec) TrainOption {
	return func(o *runOptions) { o.schedule = spec }
}

// WithEvalSet scores a held-out split after every epoch. The split is
// obfuscated with the job's key (ObfuscateTestSet) before scoring and, for
// remote runs, shipped alongside the training data so the service reports
// EvalAccuracy per epoch. A split with no samples fails the run up front
// with ErrEmptyEvalSet.
func WithEvalSet(ds EvalDataset) TrainOption {
	return func(o *runOptions) { o.evalSet = ds }
}

// WithShuffleSeed overrides the batch-shuffle seed (default: the job's
// Options.Seed). The same seed yields the same batch order locally and
// remotely — the property behind the bit-identical round-trip tests.
func WithShuffleSeed(seed uint64) TrainOption {
	return func(o *runOptions) {
		o.shuffleSeed = seed
		o.shuffleSeedSet = true
	}
}

// resolveRunOptions validates cfg and folds the options, defaulting the
// shuffle seed from the job.
func resolveRunOptions(cfg TrainConfig, defaultSeed uint64, opts []TrainOption) (*runOptions, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("amalgam: epochs and batch size must be positive")
	}
	o := &runOptions{}
	for _, fn := range opts {
		fn(o)
	}
	if !o.shuffleSeedSet {
		o.shuffleSeed = defaultSeed
	}
	if o.evalSet != nil && o.evalSet.N() == 0 {
		return nil, fmt.Errorf("amalgam: WithEvalSet split has no samples: %w", ErrEmptyEvalSet)
	}
	return o, nil
}
