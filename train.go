package amalgam

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"amalgam/internal/cloudsim"
	"amalgam/internal/serialize"
	"amalgam/internal/tensor"
)

// ErrCheckpointKind marks a checkpoint written by a job of a different
// modality than the one it is being loaded into (e.g. a CV checkpoint
// resumed into a text job). Checkpoints record their job's spec kind, so
// the mismatch is detected up front with errors.Is instead of surfacing
// as a confusing state-dict shape failure deep in the load.
var ErrCheckpointKind = errors.New("amalgam: checkpoint job kind mismatch")

// ErrRetriesExhausted terminates a WithRetry run whose every attempt hit
// a transient fault: the policy's budget ran out before a connection
// survived to completion. The last transport error is wrapped alongside,
// so errors.Is works against both.
var ErrRetriesExhausted = errors.New("amalgam: retries exhausted")

// Trainer runs an obfuscated job to completion. Run returns immediately
// with a stream of per-epoch statistics; the channel is buffered for the
// whole run (trainers never block on a slow consumer) and is closed when
// training ends. A failed or cancelled run ends the stream with a terminal
// element whose Err field is set. Implementations honour ctx cancellation
// by stopping at the next epoch boundary — the in-flight epoch completes,
// so the state (and any WithCheckpoint file) never contains a partially
// applied epoch and resuming re-trains no batch twice.
//
// LocalTrainer trains in-process; RemoteTrainer ships the job to a
// cloudsim service and streams progress back over the wire. Both drive
// cloudsim.TrainLoop over the same per-modality step closures, so they
// produce bit-identical weights for the same configuration.
type Trainer interface {
	Run(ctx context.Context, job TrainableJob, cfg TrainConfig, opts ...TrainOption) (<-chan EpochStats, error)
}

// Train drives a Trainer to completion and collects the streamed stats —
// the blocking convenience over Trainer.Run. On failure or cancellation it
// returns the epochs that did complete alongside the terminal error.
func Train(ctx context.Context, t Trainer, job TrainableJob, cfg TrainConfig, opts ...TrainOption) ([]EpochStats, error) {
	ch, err := t.Run(ctx, job, cfg, opts...)
	if err != nil {
		return nil, err
	}
	var stats []EpochStats
	for st := range ch {
		if st.Err != nil {
			return stats, st.Err
		}
		stats = append(stats, st)
	}
	return stats, nil
}

// LocalTrainer runs obfuscated training in-process (Algorithm 1): the
// joint loss over all sub-networks, gradients detached at the
// original→decoy taps.
type LocalTrainer struct{}

// Run implements Trainer.
func (LocalTrainer) Run(ctx context.Context, job TrainableJob, cfg TrainConfig, opts ...TrainOption) (<-chan EpochStats, error) {
	o := job.ops()
	ro, start, err := prepareRun(cfg, o, opts)
	if err != nil {
		return nil, err
	}
	eng := o.engine
	eng.InitOptState = ro.resumeOptState
	eng.InitRNG = ro.resumeRNG
	if ro.evalSet != nil {
		acc, _, err := o.makeEval(ro.evalSet)
		if err != nil {
			return nil, err
		}
		eng.EvalAcc = func(batch int) (float64, bool) { return acc(batch), true }
	}
	hyper := hyperFor(cfg, ro, start)

	ch := make(chan EpochStats, cfg.Epochs-start+1)
	go func() {
		defer close(ch)
		var checkpoint func(*cloudsim.Snapshot) error
		if ro.checkpointPath != "" {
			checkpoint = func(snap *cloudsim.Snapshot) error {
				return serialize.SaveTrainCheckpoint(ro.checkpointPath, &serialize.TrainCheckpoint{
					Epoch: snap.Epoch, Kind: o.kind,
					State: snap.State, OptState: snap.OptState, RNG: snap.RNG,
				})
			}
		}
		resp, err := cloudsim.TrainLoop(ctx, eng, hyper, ro.emitProgress(ch), checkpoint)
		if err != nil {
			ch <- EpochStats{Err: err}
			return
		}
		finishRun(ctx, ch, ro, o.kind, resp)
	}()
	return ch, nil
}

// RemoteTrainer ships the augmented artifacts to a cloudsim training
// service (see cmd/amalgam-train -serve) and streams per-epoch progress
// back — the full Fig. 1 loop. The service only ever receives augmented
// data and the augmented graph spec; the key stays local. Cancelling the
// ctx sends a cancel frame; the service stops at the next epoch boundary
// and returns the weights so far, which land in the checkpoint path (when
// configured) before the stream terminates with ctx.Err().
//
// With WithRetry, transient transport faults (dropped connections, dial
// failures, I/O deadlines, graceful server shutdown) are retried with
// capped exponential backoff, resuming from the last epoch-boundary
// snapshot — see RetryPolicy.
type RemoteTrainer struct {
	// Addr is the service's TCP address, e.g. "127.0.0.1:7009".
	Addr string
	// Tenant names the fair-share scheduling bucket this trainer's jobs
	// are billed to on a multi-tenant service (see Submit). Empty uses
	// the service's default bucket.
	Tenant string
}

// Run implements Trainer.
func (t RemoteTrainer) Run(ctx context.Context, job TrainableJob, cfg TrainConfig, opts ...TrainOption) (<-chan EpochStats, error) {
	o := job.ops()
	// Resume before request(): the shipped InitState must reflect the
	// checkpointed weights.
	ro, start, err := prepareRun(cfg, o, opts)
	if err != nil {
		return nil, err
	}
	req, err := o.request()
	if err != nil {
		return nil, err
	}
	req.InitOptState = ro.resumeOptState
	req.InitRNG = ro.resumeRNG
	if ro.evalSet != nil {
		_, attach, err := o.makeEval(ro.evalSet)
		if err != nil {
			return nil, err
		}
		attach(req)
	}
	req.Hyper = hyperFor(cfg, ro, start)
	req.Hyper.Stream = true
	req.Spec.Tenant = t.Tenant

	ch := make(chan EpochStats, cfg.Epochs-start+1)
	go func() {
		defer close(ch)
		resp, err := t.runRemote(ctx, req, ro, cfg, start, ch)
		if err != nil {
			ch <- EpochStats{Err: err}
			return
		}
		if err := o.loadState(resp.State); err != nil {
			ch <- EpochStats{Err: err}
			return
		}
		finishRun(ctx, ch, ro, o.kind, resp)
	}()
	return ch, nil
}

// runRemote drives one job over the wire, retrying transient faults under
// the run's RetryPolicy. Each attempt resumes from the latest
// epoch-boundary snapshot the client has seen (streamed msgCheckpoint
// frames held in memory, seeded from the WithResume file on the first
// attempt), so no batch is ever trained twice and the final weights are
// bit-identical to an unbroken run.
func (t RemoteTrainer) runRemote(ctx context.Context, req *cloudsim.TrainRequest, ro *runOptions,
	cfg TrainConfig, start int, ch chan<- EpochStats) (*cloudsim.TrainResponse, error) {

	progress := ro.emitProgress(ch)
	if ro.retry == nil {
		h := cloudsim.StreamHandlers{
			Progress: func(m cloudsim.EpochMetric) { _ = progress(m) },
		}
		if ro.checkpointPath != "" {
			h.Checkpoint = func(ck *serialize.TrainCheckpoint) {
				// Mid-job snapshots are best-effort; the final state is
				// written with error checking by finishRun.
				_ = serialize.SaveTrainCheckpoint(ro.checkpointPath, ck)
			}
		}
		return cloudsim.TrainContext(ctx, t.Addr, req, h)
	}

	pol := *ro.retry
	// Per-epoch wire snapshots feed the in-memory resume point; disk
	// writes keep the user's WithCheckpoint cadence.
	req.Hyper.CheckpointEvery = 1
	var snap *serialize.TrainCheckpoint
	// A retried attempt replays epochs the server already reported;
	// emit each epoch's stats exactly once.
	lastEmitted := start
	h := cloudsim.StreamHandlers{
		Progress: func(m cloudsim.EpochMetric) {
			if m.Epoch > lastEmitted {
				lastEmitted = m.Epoch
				_ = progress(m)
			}
		},
		Checkpoint: func(ck *serialize.TrainCheckpoint) {
			snap = ck
			if ro.checkpointPath != "" && ro.checkpointEvery > 0 && ck.Epoch%ro.checkpointEvery == 0 {
				_ = serialize.SaveTrainCheckpoint(ro.checkpointPath, ck)
			}
		},
	}
	netCfg := cloudsim.NetConfig{DialTimeout: pol.DialTimeout, FrameTimeout: pol.FrameTimeout}
	jitter := tensor.NewRNG(pol.Seed)
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := cloudsim.TrainContextNet(ctx, t.Addr, req, h, netCfg)
		if err == nil {
			return resp, nil
		}
		if !cloudsim.IsTransient(err) {
			return nil, err
		}
		lastErr = err
		if attempt >= pol.MaxRetries {
			return nil, fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt+1, lastErr)
		}
		if err := sleepBackoff(ctx, &pol, attempt, jitter); err != nil {
			return nil, err
		}
		if snap != nil {
			if snap.Epoch >= cfg.Epochs {
				// The server finished every epoch but the connection died
				// before the final state frame arrived: the snapshot IS the
				// final state — complete locally instead of resuming with an
				// out-of-range start epoch.
				return &cloudsim.TrainResponse{
					State: snap.State, OptState: snap.OptState, RNG: snap.RNG,
					CompletedEpochs: snap.Epoch,
				}, nil
			}
			req.Hyper.StartEpoch = snap.Epoch
			req.InitState = snap.State
			req.InitOptState = snap.OptState
			req.InitRNG = snap.RNG
		}
	}
}

// sleepBackoff waits out attempt's capped exponential backoff with
// deterministic seeded jitter (half to full delay), honouring ctx.
func sleepBackoff(ctx context.Context, pol *RetryPolicy, attempt int, jitter *tensor.RNG) error {
	delay := pol.BaseDelay << uint(attempt)
	if delay > pol.MaxDelay || delay <= 0 {
		delay = pol.MaxDelay
	}
	delay = delay/2 + time.Duration(jitter.Float64()*float64(delay/2))
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// prepareRun folds the options, validates the config, and applies
// WithResume, returning the epoch to restart from.
func prepareRun(cfg TrainConfig, o *jobOps, opts []TrainOption) (*runOptions, int, error) {
	ro, err := resolveRunOptions(cfg, o.defaultSeed, opts)
	if err != nil {
		return nil, 0, err
	}
	start, err := loadResume(ro, o)
	if err != nil {
		return nil, 0, err
	}
	if start >= cfg.Epochs {
		return nil, 0, fmt.Errorf("amalgam: checkpoint already covers %d of %d epochs", start, cfg.Epochs)
	}
	return ro, start, nil
}

// hyperFor maps the public config onto the wire/loop hyper-parameters.
// Shuffling is always on, seeded per epoch (data.ShuffleRNG) so local,
// remote, and resumed runs visit batches in the same order.
func hyperFor(cfg TrainConfig, ro *runOptions, start int) cloudsim.Hyper {
	h := cloudsim.Hyper{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize,
		LR: cfg.LR, Momentum: cfg.Momentum, WeightDecay: cfg.WeightDecay,
		Shuffle: true, ShuffleSeed: ro.shuffleSeed,
		StartEpoch: start, CheckpointEvery: ro.checkpointEvery,
	}
	h.Optimizer = cfg.Optimizer
	if ro.optimizer != nil {
		h.Optimizer = ro.optimizer
	}
	h.Schedule = cfg.LRSchedule
	if ro.schedule != nil {
		h.Schedule = ro.schedule
	}
	// Declaring the OptimSpec capability here keeps local and remote
	// Hyper values identical; the remote client would set it anyway.
	if h.Optimizer != nil || h.Schedule != nil {
		h.OptimSpec = true
	}
	return h
}

// emitTo adapts a wire/loop metric into an EpochStats emitter and the
// WithProgress callback.
func (ro *runOptions) emitTo(emit func(EpochStats)) func(cloudsim.EpochMetric) error {
	return func(m cloudsim.EpochMetric) error {
		st := EpochStats{
			Epoch: m.Epoch, Loss: m.Loss, Accuracy: m.Accuracy,
			EvalAccuracy: m.EvalAccuracy, HasEval: m.HasEval,
			Perplexity: m.Perplexity, LR: m.LR,
		}
		emit(st)
		if ro.progress != nil {
			ro.progress(st)
		}
		return nil
	}
}

// emitProgress is emitTo over a stats channel.
func (ro *runOptions) emitProgress(ch chan<- EpochStats) func(cloudsim.EpochMetric) error {
	return ro.emitTo(func(st EpochStats) { ch <- st })
}

// finishRun writes the final checkpoint and terminates a cancelled stream
// with the context's error.
func finishRun(ctx context.Context, ch chan<- EpochStats, ro *runOptions, kind string, resp *cloudsim.TrainResponse) {
	finishRunEmit(ctx, func(st EpochStats) { ch <- st }, ro, kind, resp)
}

func finishRunEmit(ctx context.Context, emit func(EpochStats), ro *runOptions, kind string, resp *cloudsim.TrainResponse) {
	if ro.checkpointPath != "" {
		err := serialize.SaveTrainCheckpoint(ro.checkpointPath, &serialize.TrainCheckpoint{
			Epoch: resp.CompletedEpochs, Kind: kind,
			State: resp.State, OptState: resp.OptState, RNG: resp.RNG,
		})
		if err != nil {
			emit(EpochStats{Err: err})
			return
		}
	}
	if resp.Cancelled {
		err := ctx.Err()
		if err == nil {
			err = context.Canceled
		}
		emit(EpochStats{Err: err})
	}
}

// loadResume applies WithResume: loads the checkpoint (if present) into
// the job model, stages the optimiser state for the run, and returns the
// epoch to restart from. A checkpoint recording a different job kind is
// rejected with ErrCheckpointKind before any state is touched.
func loadResume(ro *runOptions, o *jobOps) (int, error) {
	if ro.resumePath == "" {
		return 0, nil
	}
	ck, err := serialize.LoadTrainCheckpoint(ro.resumePath)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil // first run: nothing to resume
		}
		return 0, fmt.Errorf("amalgam: resume from %s: %w", ro.resumePath, err)
	}
	if err := checkpointMatchesJob(ck, o); err != nil {
		return 0, fmt.Errorf("amalgam: resume from %s: %w", ro.resumePath, err)
	}
	if err := o.loadState(ck.State); err != nil {
		return 0, fmt.Errorf("amalgam: resume from %s: %w", ro.resumePath, err)
	}
	ro.resumeOptState = ck.OptState
	ro.resumeRNG = ck.RNG
	return ck.Epoch, nil
}

// checkpointMatchesJob verifies a checkpoint's recorded kind against the
// job it is being loaded into. Legacy AMC1 checkpoints carry no kind and
// pass (the state-dict load still validates names and shapes).
func checkpointMatchesJob(ck *serialize.TrainCheckpoint, o *jobOps) error {
	if ck.Kind != "" && ck.Kind != o.kind {
		return fmt.Errorf("checkpoint holds a %q job, this job is %q: %w", ck.Kind, o.kind, ErrCheckpointKind)
	}
	return nil
}

// LoadCheckpoint loads a WithCheckpoint file back into a job's augmented
// model outside a training run — e.g. to Extract/ExtractText/ExtractLM
// from an interrupted job without training further. It returns the
// number of completed epochs the checkpoint records. Loading a
// checkpoint written by a job of another modality fails with
// ErrCheckpointKind.
func LoadCheckpoint(job TrainableJob, path string) (epoch int, err error) {
	o := job.ops()
	ck, err := serialize.LoadTrainCheckpoint(path)
	if err != nil {
		return 0, fmt.Errorf("amalgam: load checkpoint %s: %w", path, err)
	}
	if err := checkpointMatchesJob(ck, o); err != nil {
		return 0, fmt.Errorf("amalgam: load checkpoint %s: %w", path, err)
	}
	if err := o.loadState(ck.State); err != nil {
		return 0, fmt.Errorf("amalgam: load checkpoint %s: %w", path, err)
	}
	return ck.Epoch, nil
}

// Train runs obfuscated training locally.
//
// Deprecated: use LocalTrainer via Train(ctx, LocalTrainer{}, job, cfg) —
// or Trainer.Run directly for streaming progress, cancellation, and
// checkpointing. This wrapper remains for source compatibility and now
// shuffles batches per epoch (seeded from Options.Seed), where it
// previously visited batches in a fixed order every epoch.
func (j *Job) Train(cfg TrainConfig) ([]EpochStats, error) {
	return Train(context.Background(), LocalTrainer{}, j, cfg)
}

// TrainRemote ships the job to a cloudsim training service and waits.
//
// Deprecated: use RemoteTrainer via Train(ctx, RemoteTrainer{Addr: addr},
// job, cfg) — or Trainer.Run directly for streaming progress,
// cancellation, and checkpointing.
func (j *Job) TrainRemote(addr string, cfg TrainConfig) ([]EpochStats, error) {
	return Train(context.Background(), RemoteTrainer{Addr: addr}, j, cfg)
}
