package amalgam

import (
	"context"
	"errors"
	"fmt"
	"os"

	"amalgam/internal/cloudsim"
	"amalgam/internal/serialize"
	"amalgam/internal/tensor"
)

// ErrCheckpointKind marks a checkpoint written by a job of a different
// modality than the one it is being loaded into (e.g. a CV checkpoint
// resumed into a text job). Checkpoints record their job's spec kind, so
// the mismatch is detected up front with errors.Is instead of surfacing
// as a confusing state-dict shape failure deep in the load.
var ErrCheckpointKind = errors.New("amalgam: checkpoint job kind mismatch")

// Trainer runs an obfuscated job to completion. Run returns immediately
// with a stream of per-epoch statistics; the channel is buffered for the
// whole run (trainers never block on a slow consumer) and is closed when
// training ends. A failed or cancelled run ends the stream with a terminal
// element whose Err field is set. Implementations honour ctx cancellation
// by stopping at the next epoch boundary — the in-flight epoch completes,
// so the state (and any WithCheckpoint file) never contains a partially
// applied epoch and resuming re-trains no batch twice.
//
// LocalTrainer trains in-process; RemoteTrainer ships the job to a
// cloudsim service and streams progress back over the wire. Both drive
// cloudsim.TrainLoop over the same per-modality step closures, so they
// produce bit-identical weights for the same configuration.
type Trainer interface {
	Run(ctx context.Context, job TrainableJob, cfg TrainConfig, opts ...TrainOption) (<-chan EpochStats, error)
}

// Train drives a Trainer to completion and collects the streamed stats —
// the blocking convenience over Trainer.Run. On failure or cancellation it
// returns the epochs that did complete alongside the terminal error.
func Train(ctx context.Context, t Trainer, job TrainableJob, cfg TrainConfig, opts ...TrainOption) ([]EpochStats, error) {
	ch, err := t.Run(ctx, job, cfg, opts...)
	if err != nil {
		return nil, err
	}
	var stats []EpochStats
	for st := range ch {
		if st.Err != nil {
			return stats, st.Err
		}
		stats = append(stats, st)
	}
	return stats, nil
}

// LocalTrainer runs obfuscated training in-process (Algorithm 1): the
// joint loss over all sub-networks, gradients detached at the
// original→decoy taps.
type LocalTrainer struct{}

// Run implements Trainer.
func (LocalTrainer) Run(ctx context.Context, job TrainableJob, cfg TrainConfig, opts ...TrainOption) (<-chan EpochStats, error) {
	o := job.ops()
	ro, start, err := prepareRun(cfg, o, opts)
	if err != nil {
		return nil, err
	}
	eng := o.engine
	eng.InitOptState = ro.resumeOptState
	if ro.evalSet != nil {
		acc, _, err := o.makeEval(ro.evalSet)
		if err != nil {
			return nil, err
		}
		eng.EvalAcc = func(batch int) (float64, bool) { return acc(batch), true }
	}
	hyper := hyperFor(cfg, ro, start)

	ch := make(chan EpochStats, cfg.Epochs-start+1)
	go func() {
		defer close(ch)
		var checkpoint func(int, map[string]*tensor.Tensor, map[string]*tensor.Tensor) error
		if ro.checkpointPath != "" {
			checkpoint = func(epoch int, state, optState map[string]*tensor.Tensor) error {
				return serialize.SaveTrainCheckpoint(ro.checkpointPath, &serialize.TrainCheckpoint{
					Epoch: epoch, Kind: o.kind, State: state, OptState: optState,
				})
			}
		}
		resp, err := cloudsim.TrainLoop(ctx, eng, hyper, ro.emitProgress(ch), checkpoint)
		if err != nil {
			ch <- EpochStats{Err: err}
			return
		}
		finishRun(ctx, ch, ro, o.kind, resp)
	}()
	return ch, nil
}

// RemoteTrainer ships the augmented artifacts to a cloudsim training
// service (see cmd/amalgam-train -serve) and streams per-epoch progress
// back — the full Fig. 1 loop. The service only ever receives augmented
// data and the augmented graph spec; the key stays local. Cancelling the
// ctx sends a cancel frame; the service stops at the next epoch boundary
// and returns the weights so far, which land in the checkpoint path (when
// configured) before the stream terminates with ctx.Err().
type RemoteTrainer struct {
	// Addr is the service's TCP address, e.g. "127.0.0.1:7009".
	Addr string
}

// Run implements Trainer.
func (t RemoteTrainer) Run(ctx context.Context, job TrainableJob, cfg TrainConfig, opts ...TrainOption) (<-chan EpochStats, error) {
	o := job.ops()
	// Resume before request(): the shipped InitState must reflect the
	// checkpointed weights.
	ro, start, err := prepareRun(cfg, o, opts)
	if err != nil {
		return nil, err
	}
	req, err := o.request()
	if err != nil {
		return nil, err
	}
	req.InitOptState = ro.resumeOptState
	if ro.evalSet != nil {
		_, attach, err := o.makeEval(ro.evalSet)
		if err != nil {
			return nil, err
		}
		attach(req)
	}
	req.Hyper = hyperFor(cfg, ro, start)
	req.Hyper.Stream = true

	ch := make(chan EpochStats, cfg.Epochs-start+1)
	go func() {
		defer close(ch)
		progress := ro.emitProgress(ch)
		h := cloudsim.StreamHandlers{
			Progress: func(m cloudsim.EpochMetric) { _ = progress(m) },
		}
		if ro.checkpointPath != "" {
			h.Checkpoint = func(ck *serialize.TrainCheckpoint) {
				// Mid-job snapshots are best-effort; the final state below
				// is written with error checking.
				_ = serialize.SaveTrainCheckpoint(ro.checkpointPath, ck)
			}
		}
		resp, err := cloudsim.TrainContext(ctx, t.Addr, req, h)
		if err != nil {
			ch <- EpochStats{Err: err}
			return
		}
		if err := o.loadState(resp.State); err != nil {
			ch <- EpochStats{Err: err}
			return
		}
		finishRun(ctx, ch, ro, o.kind, resp)
	}()
	return ch, nil
}

// prepareRun folds the options, validates the config, and applies
// WithResume, returning the epoch to restart from.
func prepareRun(cfg TrainConfig, o *jobOps, opts []TrainOption) (*runOptions, int, error) {
	ro, err := resolveRunOptions(cfg, o.defaultSeed, opts)
	if err != nil {
		return nil, 0, err
	}
	start, err := loadResume(ro, o)
	if err != nil {
		return nil, 0, err
	}
	if start >= cfg.Epochs {
		return nil, 0, fmt.Errorf("amalgam: checkpoint already covers %d of %d epochs", start, cfg.Epochs)
	}
	return ro, start, nil
}

// hyperFor maps the public config onto the wire/loop hyper-parameters.
// Shuffling is always on, seeded per epoch (data.ShuffleRNG) so local,
// remote, and resumed runs visit batches in the same order.
func hyperFor(cfg TrainConfig, ro *runOptions, start int) cloudsim.Hyper {
	return cloudsim.Hyper{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize,
		LR: cfg.LR, Momentum: cfg.Momentum, WeightDecay: cfg.WeightDecay,
		Shuffle: true, ShuffleSeed: ro.shuffleSeed,
		StartEpoch: start, CheckpointEvery: ro.checkpointEvery,
	}
}

// emitProgress adapts a wire/loop metric into the stats stream and the
// WithProgress callback.
func (ro *runOptions) emitProgress(ch chan<- EpochStats) func(cloudsim.EpochMetric) error {
	return func(m cloudsim.EpochMetric) error {
		st := EpochStats{
			Epoch: m.Epoch, Loss: m.Loss, Accuracy: m.Accuracy,
			EvalAccuracy: m.EvalAccuracy, HasEval: m.HasEval,
			Perplexity: m.Perplexity,
		}
		ch <- st
		if ro.progress != nil {
			ro.progress(st)
		}
		return nil
	}
}

// finishRun writes the final checkpoint and terminates a cancelled stream
// with the context's error.
func finishRun(ctx context.Context, ch chan<- EpochStats, ro *runOptions, kind string, resp *cloudsim.TrainResponse) {
	if ro.checkpointPath != "" {
		err := serialize.SaveTrainCheckpoint(ro.checkpointPath, &serialize.TrainCheckpoint{
			Epoch: resp.CompletedEpochs, Kind: kind,
			State: resp.State, OptState: resp.OptState,
		})
		if err != nil {
			ch <- EpochStats{Err: err}
			return
		}
	}
	if resp.Cancelled {
		err := ctx.Err()
		if err == nil {
			err = context.Canceled
		}
		ch <- EpochStats{Err: err}
	}
}

// loadResume applies WithResume: loads the checkpoint (if present) into
// the job model, stages the optimiser state for the run, and returns the
// epoch to restart from. A checkpoint recording a different job kind is
// rejected with ErrCheckpointKind before any state is touched.
func loadResume(ro *runOptions, o *jobOps) (int, error) {
	if ro.resumePath == "" {
		return 0, nil
	}
	ck, err := serialize.LoadTrainCheckpoint(ro.resumePath)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil // first run: nothing to resume
		}
		return 0, fmt.Errorf("amalgam: resume from %s: %w", ro.resumePath, err)
	}
	if err := checkpointMatchesJob(ck, o); err != nil {
		return 0, fmt.Errorf("amalgam: resume from %s: %w", ro.resumePath, err)
	}
	if err := o.loadState(ck.State); err != nil {
		return 0, fmt.Errorf("amalgam: resume from %s: %w", ro.resumePath, err)
	}
	ro.resumeOptState = ck.OptState
	return ck.Epoch, nil
}

// checkpointMatchesJob verifies a checkpoint's recorded kind against the
// job it is being loaded into. Legacy AMC1 checkpoints carry no kind and
// pass (the state-dict load still validates names and shapes).
func checkpointMatchesJob(ck *serialize.TrainCheckpoint, o *jobOps) error {
	if ck.Kind != "" && ck.Kind != o.kind {
		return fmt.Errorf("checkpoint holds a %q job, this job is %q: %w", ck.Kind, o.kind, ErrCheckpointKind)
	}
	return nil
}

// LoadCheckpoint loads a WithCheckpoint file back into a job's augmented
// model outside a training run — e.g. to Extract/ExtractText/ExtractLM
// from an interrupted job without training further. It returns the
// number of completed epochs the checkpoint records. Loading a
// checkpoint written by a job of another modality fails with
// ErrCheckpointKind.
func LoadCheckpoint(job TrainableJob, path string) (epoch int, err error) {
	o := job.ops()
	ck, err := serialize.LoadTrainCheckpoint(path)
	if err != nil {
		return 0, fmt.Errorf("amalgam: load checkpoint %s: %w", path, err)
	}
	if err := checkpointMatchesJob(ck, o); err != nil {
		return 0, fmt.Errorf("amalgam: load checkpoint %s: %w", path, err)
	}
	if err := o.loadState(ck.State); err != nil {
		return 0, fmt.Errorf("amalgam: load checkpoint %s: %w", path, err)
	}
	return ck.Epoch, nil
}

// Train runs obfuscated training locally.
//
// Deprecated: use LocalTrainer via Train(ctx, LocalTrainer{}, job, cfg) —
// or Trainer.Run directly for streaming progress, cancellation, and
// checkpointing. This wrapper remains for source compatibility and now
// shuffles batches per epoch (seeded from Options.Seed), where it
// previously visited batches in a fixed order every epoch.
func (j *Job) Train(cfg TrainConfig) ([]EpochStats, error) {
	return Train(context.Background(), LocalTrainer{}, j, cfg)
}

// TrainRemote ships the job to a cloudsim training service and waits.
//
// Deprecated: use RemoteTrainer via Train(ctx, RemoteTrainer{Addr: addr},
// job, cfg) — or Trainer.Run directly for streaming progress,
// cancellation, and checkpointing.
func (j *Job) TrainRemote(addr string, cfg TrainConfig) ([]EpochStats, error) {
	return Train(context.Background(), RemoteTrainer{Addr: addr}, j, cfg)
}
