// Package amalgam is the public API of the Amalgam reproduction: a
// framework for obfuscated neural-network training on untrusted
// (cloud) infrastructure, after "Amalgam: A Framework for Obfuscated
// Neural Network Training on the Cloud" (Taki & Mastorakis,
// MIDDLEWARE '24).
//
// The workflow mirrors the paper's Fig. 1:
//
//	ds := amalgam.SyntheticCIFAR10(1024, 1)                  // or your own dataset
//	model, _ := amalgam.BuildCV("resnet18", 7, amalgam.CVConfig{InC: 3, InH: 32, InW: 32, Classes: 10})
//	job, _ := amalgam.Obfuscate(model, ds, amalgam.Options{Amount: 0.5, Seed: 42})
//	_, _ = job.Train(amalgam.TrainConfig{Epochs: 5, BatchSize: 64, LR: 0.02}) // or job.TrainRemote(addr, …)
//	trained, _ := job.Extract("resnet18", 7)                 // fresh original model, trained weights
//
// Everything the cloud sees — the augmented model and the augmented
// dataset — hides the original architecture and data; the secret key never
// leaves the Job. Training the augmented model updates the original
// sub-network EXACTLY as un-obfuscated training would (bit-identical
// weights; see internal/core's property tests).
package amalgam

import (
	"fmt"

	"amalgam/internal/autodiff"
	"amalgam/internal/cloudsim"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/optim"
	"amalgam/internal/tensor"
)

// Re-exported core types. The aliases keep one import path for users while
// the implementation lives in internal packages.
type (
	// ImageDataset is a labelled image set ([N, C, H, W] float32 in [0,1]).
	ImageDataset = data.ImageDataset
	// CVConfig fixes a model's input geometry and class count.
	CVConfig = models.CVConfig
	// CVModel is an image classifier from the model zoo (or user-built).
	CVModel = models.CVModel
	// NoiseSpec selects the augmentation noise distribution.
	NoiseSpec = core.NoiseSpec
	// ImageAugKey is the secret tying augmented data to the skip layers.
	ImageAugKey = core.ImageAugKey
)

// Noise constructors (paper §4.1).
var (
	// UniformNoise is the default: synthetic pixels uniform over [0,1].
	UniformNoise = core.DefaultImageNoise
)

// Synthetic dataset generators (offline stand-ins for the paper's
// datasets; see DESIGN.md §4).
var (
	SyntheticMNIST      = data.SyntheticMNIST
	SyntheticCIFAR10    = data.SyntheticCIFAR10
	SyntheticCIFAR100   = data.SyntheticCIFAR100
	SyntheticImagenette = data.SyntheticImagenette
)

// BuildCV constructs a zoo model ("lenet", "resnet18", "vgg16",
// "densenet121", "mobilenetv2", "vgg16cbam") with a deterministic seed.
func BuildCV(name string, seed uint64, cfg CVConfig) (CVModel, error) {
	return models.BuildCV(name, tensor.NewRNG(seed), cfg)
}

// Options configures obfuscation (dataset + model augmentation).
type Options struct {
	// Amount is the augmentation amount α for both the dataset and the
	// model (the paper uses matched amounts throughout its evaluation).
	Amount float64
	// SubNets is the number of decoy sub-networks (0 = random in [2,4]).
	SubNets int
	// Noise overrides the default uniform pixel noise.
	Noise *NoiseSpec
	// Seed drives every random choice (key, noise, decoys).
	Seed uint64
	// ModelName is the zoo name of the model; required only for
	// TrainRemote, which ships a rebuildable spec to the service.
	ModelName string
}

// Job holds the obfuscated artifacts and the secret key. Ship
// AugmentedDataset and the augmented model to the cloud; keep the Job.
type Job struct {
	Augmented        *core.AugmentedCVModel
	AugmentedDataset *ImageDataset
	Key              *ImageAugKey

	origCfg CVConfig
	opts    Options
}

// Obfuscate augments the dataset and wraps the model (paper §4.1–4.2).
// The model instance becomes the original sub-network of the augmented
// model; pre-trained weights on it are preserved (transfer learning §4.4).
func Obfuscate(model CVModel, ds *ImageDataset, opts Options) (*Job, error) {
	noise := core.DefaultImageNoise()
	if opts.Noise != nil {
		noise = *opts.Noise
	}
	aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{Amount: opts.Amount, Noise: noise, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("amalgam: dataset augmentation: %w", err)
	}
	am, err := core.AugmentCVModel(model, aug.Key, ds.C(), ds.Classes, core.ModelAugmentOptions{
		Amount: opts.Amount, SubNets: opts.SubNets, Seed: opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("amalgam: model augmentation: %w", err)
	}
	return &Job{
		Augmented:        am,
		AugmentedDataset: aug.Dataset,
		Key:              aug.Key,
		origCfg:          CVConfig{InC: ds.C(), InH: ds.H(), InW: ds.W(), Classes: ds.Classes},
		opts:             opts,
	}, nil
}

// ObfuscateTestSet augments an evaluation split with the job's key so the
// augmented model can be validated cloud-side (§5.4).
func (j *Job) ObfuscateTestSet(ds *ImageDataset, seed uint64) (*ImageDataset, error) {
	noise := core.DefaultImageNoise()
	if j.opts.Noise != nil {
		noise = *j.opts.Noise
	}
	return core.AugmentImagesWithKey(ds, j.Key, noise, seed)
}

// TrainConfig holds training hyper-parameters.
type TrainConfig struct {
	Epochs, BatchSize         int
	LR, Momentum, WeightDecay float64
}

// EpochStats reports per-epoch original-sub-network loss and accuracy.
type EpochStats struct {
	Epoch    int
	Loss     float64
	Accuracy float64
}

// Train runs obfuscated training locally (Algorithm 1): the joint loss
// over all sub-networks, gradients detached at the original→decoy taps.
func (j *Job) Train(cfg TrainConfig) ([]EpochStats, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("amalgam: epochs and batch size must be positive")
	}
	j.Augmented.SetTraining(true)
	opt := optim.NewSGD(j.Augmented.Params(), cfg.LR, cfg.Momentum, cfg.WeightDecay)
	ds := j.AugmentedDataset
	var stats []EpochStats
	for e := 0; e < cfg.Epochs; e++ {
		var lossSum float64
		for _, idx := range data.BatchIter(ds.N(), cfg.BatchSize, nil) {
			x, labels := ds.Batch(idx)
			nn.ZeroGrads(j.Augmented)
			total, orig := j.Augmented.Loss(autodiff.Constant(x), labels)
			autodiff.Backward(total)
			opt.Step()
			lossSum += float64(orig.Scalar()) * float64(len(labels))
		}
		acc := j.evalAccuracy(ds, cfg.BatchSize)
		stats = append(stats, EpochStats{Epoch: e + 1, Loss: lossSum / float64(ds.N()), Accuracy: acc})
	}
	return stats, nil
}

// TrainRemote ships the augmented artifacts to a cloudsim training
// service (see cmd/amalgam-train -serve), waits for training, and loads
// the returned weights back into the job — the full Fig. 1 loop. Requires
// Options.ModelName. The service only ever receives augmented data and
// the augmented graph spec; the key stays local.
func (j *Job) TrainRemote(addr string, cfg TrainConfig) ([]EpochStats, error) {
	if j.opts.ModelName == "" {
		return nil, fmt.Errorf("amalgam: TrainRemote requires Options.ModelName")
	}
	// SubNets must be pinned for the server-side rebuild to match.
	subnets := len(j.Augmented.Decoys)
	spec := cloudsim.ModelSpec{
		Kind: "augmented-cv", Model: j.opts.ModelName,
		InC: j.origCfg.InC, OrigH: j.origCfg.InH, OrigW: j.origCfg.InW, Classes: j.origCfg.Classes,
		AugAmount: j.opts.Amount, SubNets: subnets, AugSeed: j.opts.Seed,
		KeyKeep: j.Key.Keep, AugH: j.Key.AugH, AugW: j.Key.AugW,
	}
	req := &cloudsim.TrainRequest{
		Spec: spec,
		Hyper: cloudsim.Hyper{
			Epochs: cfg.Epochs, BatchSize: cfg.BatchSize,
			LR: cfg.LR, Momentum: cfg.Momentum, WeightDecay: cfg.WeightDecay,
		},
		Images:    j.AugmentedDataset.Images,
		Labels:    j.AugmentedDataset.Labels,
		InitState: nn.StateDict(j.Augmented),
	}
	resp, err := cloudsim.Train(addr, req)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadStateDict(j.Augmented, resp.State); err != nil {
		return nil, fmt.Errorf("amalgam: loading trained weights: %w", err)
	}
	stats := make([]EpochStats, len(resp.Metrics))
	for i, m := range resp.Metrics {
		stats[i] = EpochStats{Epoch: m.Epoch, Loss: m.Loss, Accuracy: m.Accuracy}
	}
	return stats, nil
}

func (j *Job) evalAccuracy(ds *ImageDataset, batch int) float64 {
	j.Augmented.SetTraining(false)
	defer j.Augmented.SetTraining(true)
	correct := 0
	for _, idx := range data.BatchIter(ds.N(), batch, nil) {
		x, labels := ds.Batch(idx)
		pred := tensor.ArgmaxRows(j.Augmented.Forward(autodiff.Constant(x)).Val)
		for i, p := range pred {
			if p == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.N())
}

// Extract builds a fresh instance of the original architecture (from the
// zoo name used to build the model, with the given seed) and copies the
// trained original weights into it (§4.3). For models built outside the
// zoo, use ExtractInto.
func (j *Job) Extract(name string, seed uint64) (CVModel, error) {
	fresh, err := BuildCV(name, seed, j.origCfg)
	if err != nil {
		return nil, err
	}
	if err := j.ExtractInto(fresh); err != nil {
		return nil, err
	}
	return fresh, nil
}

// ExtractInto copies the trained original weights (including batch-norm
// running statistics) into a user-provided fresh model and verifies the
// copy bit-for-bit.
func (j *Job) ExtractInto(fresh CVModel) error {
	if err := core.Extract(j.Augmented, fresh); err != nil {
		return err
	}
	return core.VerifyExtraction(j.Augmented, fresh)
}

// Classifier is anything that maps image batches to class logits — zoo
// models and augmented models alike.
type Classifier interface {
	Forward(x *autodiff.Node) *autodiff.Node
	SetTraining(training bool)
}

// Predict runs the extracted (or any) model over a dataset, returning
// accuracy — a convenience for examples and smoke tests.
func Predict(m Classifier, ds *ImageDataset, batch int) float64 {
	m.SetTraining(false)
	correct := 0
	for _, idx := range data.BatchIter(ds.N(), batch, nil) {
		x, labels := ds.Batch(idx)
		pred := tensor.ArgmaxRows(m.Forward(autodiff.Constant(x)).Val)
		for i, p := range pred {
			if p == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.N())
}

// PrivacyLoss returns ε = 1/(1+α) (Eq. 5).
func PrivacyLoss(alpha float64) float64 { return core.PrivacyLoss(alpha) }

// ComputePerformanceLoss returns ρ = α/(1+α) (Eq. 6).
func ComputePerformanceLoss(alpha float64) float64 { return core.ComputePerformanceLoss(alpha) }

// SearchSpace reports the per-sample brute-force search space (log10) for
// an original→augmented unit-length pair, as in Table 2.
func SearchSpace(origLen, augLen int) float64 { return core.LogSearchSpace(origLen, augLen) }
