// Package amalgam is the public API of the Amalgam reproduction: a
// framework for obfuscated neural-network training on untrusted
// (cloud) infrastructure, after "Amalgam: A Framework for Obfuscated
// Neural Network Training on the Cloud" (Taki & Mastorakis,
// MIDDLEWARE '24).
//
// The workflow mirrors the paper's Fig. 1 and is modality-generic: a Job
// (images) or TextJob (token sequences) holds the obfuscated artifacts and
// the secret key, and any Trainer — LocalTrainer in-process, RemoteTrainer
// against a cloud service — runs it with streaming progress, context
// cancellation, and checkpoint/resume:
//
//	ds := amalgam.SyntheticCIFAR10(1024, 1)                  // or your own dataset
//	model, _ := amalgam.BuildCV("resnet18", 7, amalgam.CVConfig{InC: 3, InH: 32, InW: 32, Classes: 10})
//	job, _ := amalgam.Obfuscate(model, ds, amalgam.Options{Amount: 0.5, Seed: 42})
//	stats, _ := amalgam.Train(ctx, amalgam.LocalTrainer{}, job,
//	        amalgam.TrainConfig{Epochs: 5, BatchSize: 64, LR: 0.02},
//	        amalgam.WithProgress(func(s amalgam.EpochStats) { fmt.Println(s.Epoch, s.Loss) }),
//	        amalgam.WithCheckpoint("job.amc", 1))
//	trained, _ := job.Extract("resnet18", 7)                 // fresh original model, trained weights
//
// Text classification follows the same shape through ObfuscateText /
// ExtractText, and language modelling through BuildLMModel /
// ObfuscateTokens / ExtractLM (token streams batched in BPTT windows,
// per-epoch perplexity in EpochStats). Everything the cloud sees — the
// augmented model and the augmented dataset — hides the original
// architecture and data; the secret key never leaves the job. Training
// the augmented model updates the original sub-network EXACTLY as
// un-obfuscated training would (bit-identical weights; see
// internal/core's property tests).
package amalgam

import (
	"amalgam/internal/autodiff"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// Re-exported core types. The aliases keep one import path for users while
// the implementation lives in internal packages.
type (
	// ImageDataset is a labelled image set ([N, C, H, W] float32 in [0,1]).
	ImageDataset = data.ImageDataset
	// CVConfig fixes a model's input geometry and class count.
	CVConfig = models.CVConfig
	// CVModel is an image classifier from the model zoo (or user-built).
	CVModel = models.CVModel
	// NoiseSpec selects the augmentation noise distribution.
	NoiseSpec = core.NoiseSpec
	// ImageAugKey is the secret tying augmented data to the skip layers.
	ImageAugKey = core.ImageAugKey
)

// Noise constructors (paper §4.1).
var (
	// UniformNoise is the default: synthetic pixels uniform over [0,1].
	UniformNoise = core.DefaultImageNoise
)

// Synthetic dataset generators (offline stand-ins for the paper's
// datasets; see DESIGN.md §4).
var (
	SyntheticMNIST      = data.SyntheticMNIST
	SyntheticCIFAR10    = data.SyntheticCIFAR10
	SyntheticCIFAR100   = data.SyntheticCIFAR100
	SyntheticImagenette = data.SyntheticImagenette
)

// BuildCV constructs a zoo model ("lenet", "resnet18", "vgg16",
// "densenet121", "mobilenetv2", "vgg16cbam") with a deterministic seed.
func BuildCV(name string, seed uint64, cfg CVConfig) (CVModel, error) {
	return models.BuildCV(name, tensor.NewRNG(seed), cfg)
}

// Classifier is anything that maps image batches to class logits — zoo
// models and augmented models alike.
type Classifier interface {
	Forward(x *autodiff.Node) *autodiff.Node
	SetTraining(training bool)
}

// Predict runs the extracted (or any) model over a dataset, returning
// accuracy — a convenience for examples and smoke tests. The model is
// scored in eval mode and its prior train/eval mode is restored
// afterwards, so back-to-back Predict calls (and any direct Forward calls
// that follow) are bit-identical. An empty dataset scores 0.
func Predict(m Classifier, ds *ImageDataset, batch int) float64 {
	prev := nn.TrainingMode(m)
	m.SetTraining(false)
	defer m.SetTraining(prev)
	if ds.N() == 0 {
		return 0
	}
	correct := 0
	for _, idx := range data.BatchIter(ds.N(), batch, nil) {
		x, labels := ds.Batch(idx)
		out := m.Forward(autodiff.Constant(x))
		pred := tensor.ArgmaxRows(out.Val)
		autodiff.Release(out)
		for i, p := range pred {
			if p == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.N())
}

// PrivacyLoss returns ε = 1/(1+α) (Eq. 5).
func PrivacyLoss(alpha float64) float64 { return core.PrivacyLoss(alpha) }

// ComputePerformanceLoss returns ρ = α/(1+α) (Eq. 6).
func ComputePerformanceLoss(alpha float64) float64 { return core.ComputePerformanceLoss(alpha) }

// SearchSpace reports the per-sample brute-force search space (log10) for
// an original→augmented unit-length pair, as in Table 2.
func SearchSpace(origLen, augLen int) float64 { return core.LogSearchSpace(origLen, augLen) }
