package amalgam_test

// Ablation benchmarks for the design choices called out in DESIGN.md §6,
// plus the §5.4 "miscellaneous" claim that extraction runs in constant
// time regardless of augmentation amount.

import (
	"fmt"
	"testing"

	"amalgam/internal/autodiff"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/tensor"
)

// BenchmarkAblationSkipConvImpl compares the two implementations of Eq. 1:
// the production gather+dense-conv composition vs the literal masked
// convolution. They are bit-equal (TestMaskedSkipConvEquivalence); this
// bench shows why the gather form is the default.
func BenchmarkAblationSkipConvImpl(b *testing.B) {
	ds := data.SyntheticCIFAR10(8, 1)
	aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{Amount: 0.5, Noise: core.DefaultImageNoise(), Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	g := core.NewSkipGather2dFromKey(aug.Key)
	masked := core.NewMaskedSkipConv2d(g)
	rng := tensor.NewRNG(3)
	w := tensor.New(16, 3, 3, 3)
	rng.FillNormal(w, 0, 0.3)
	x, _ := aug.Dataset.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})

	b.Run("gather+conv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gx := g.Forward(autodiff.Constant(x))
			_ = autodiff.Conv2d(gx, autodiff.Constant(w), nil, 1, 1)
		}
	})
	b.Run("masked-eq1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = masked.Forward(x, w, 1)
		}
	})
}

// BenchmarkAblationNoiseTypes measures dataset-augmentation throughput per
// noise source (§4.1's three options).
func BenchmarkAblationNoiseTypes(b *testing.B) {
	ds := data.SyntheticCIFAR10(32, 1)
	pool := data.SyntheticImagenette(1, 9).Images.Data[:65536]
	specs := map[string]core.NoiseSpec{
		"uniform":  core.DefaultImageNoise(),
		"gaussian": {Type: core.NoiseGaussian, Mean: 0.5, Sigma: 0.25, Min: 0, Max: 1},
		"laplace":  {Type: core.NoiseLaplace, Mean: 0.5, Sigma: 0.25, Min: 0, Max: 1},
		"user":     {Type: core.NoiseUser, Pool: pool},
	}
	for name, spec := range specs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.AugmentImages(ds, core.ImageAugmentOptions{Amount: 0.5, Noise: spec, Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTaps measures the cost of the original→decoy taps
// (DisableTaps removes them). The correctness side of this ablation lives
// in TestUndetachedTapsBreakExactness.
func BenchmarkAblationTaps(b *testing.B) {
	ds := data.SyntheticMNIST(16, 1)
	aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{Amount: 0.5, Noise: core.DefaultImageNoise(), Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	cfg := models.CVConfig{InC: 1, InH: 28, InW: 28, Classes: 10}
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"with-taps", false}, {"no-taps", true}} {
		b.Run(variant.name, func(b *testing.B) {
			am, err := core.AugmentCVModel(models.NewLeNet5(tensor.NewRNG(7), cfg), aug.Key, 1, 10,
				core.ModelAugmentOptions{Amount: 0.5, SubNets: 3, Seed: 13, DisableTaps: variant.disable})
			if err != nil {
				b.Fatal(err)
			}
			x, labels := aug.Dataset.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range am.Params() {
					p.Node.ZeroGrad()
				}
				total, _ := am.Loss(autodiff.Constant(x), labels)
				autodiff.Backward(total)
			}
		})
	}
}

// BenchmarkExtractor verifies §5.4's claim: extraction time is independent
// of the augmentation amount (it only copies original-layer tensors).
func BenchmarkExtractor(b *testing.B) {
	ds := data.SyntheticMNIST(4, 1)
	cfg := models.CVConfig{InC: 1, InH: 28, InW: 28, Classes: 10}
	for _, amount := range []float64{0.25, 1.0} {
		b.Run(fmt.Sprintf("amount-%.0f%%", amount*100), func(b *testing.B) {
			aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{Amount: amount, Noise: core.DefaultImageNoise(), Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			am, err := core.AugmentCVModel(models.NewLeNet5(tensor.NewRNG(7), cfg), aug.Key, 1, 10,
				core.ModelAugmentOptions{Amount: amount, SubNets: 3, Seed: 13})
			if err != nil {
				b.Fatal(err)
			}
			fresh := models.NewLeNet5(tensor.NewRNG(8), cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := core.Extract(am, fresh); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
