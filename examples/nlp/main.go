// NLP example: obfuscated training for both paper NLP workloads through
// the public Job/Trainer API — the AG News-style text classifier
// (ObfuscateText → LocalTrainer → ExtractText) and the WikiText-2-style
// transformer language model (ObfuscateTokens → LocalTrainer →
// ExtractLM; see examples/lm for the fuller LM story with eval splits
// and checkpoints).
package main

import (
	"context"
	"fmt"
	"log"

	"amalgam"
)

func main() {
	textClassification()
	languageModel()
}

func textClassification() {
	fmt.Println("== text classification (AG News-style, public API) ==")
	const vocab, classes = 5000, 4
	train := amalgam.GenerateClassifiedText(amalgam.ClassTextConfig{
		Name: "ag", N: 96, SeqLen: 64, Vocab: vocab, Classes: classes, Seed: 1})
	test := amalgam.GenerateClassifiedText(amalgam.ClassTextConfig{
		Name: "ag-test", N: 32, SeqLen: 64, Vocab: vocab, Classes: classes, Seed: 2})

	model := amalgam.BuildTextClassifier(3, vocab, 64, classes)
	job, err := amalgam.ObfuscateText(model, train, amalgam.Options{Amount: 0.5, SubNets: 2, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequences: %d → %d tokens (search space 10^%.1f)\n",
		train.SeqLen(), job.AugmentedDataset.SeqLen(),
		amalgam.SearchSpace(train.SeqLen(), job.AugmentedDataset.SeqLen()))

	// Train through the Trainer API: streamed per-epoch stats plus a
	// held-out split obfuscated with the job key. Swapping LocalTrainer{}
	// for RemoteTrainer{Addr} runs the identical job on a cloud service.
	_, err = amalgam.Train(context.Background(), amalgam.LocalTrainer{}, job,
		amalgam.TrainConfig{Epochs: 3, BatchSize: 16, LR: 0.5, Momentum: 0.9},
		amalgam.WithEvalSet(test),
		amalgam.WithProgress(func(s amalgam.EpochStats) {
			fmt.Printf("epoch %d: original-subnet loss %.4f acc %.3f eval %.3f\n",
				s.Epoch, s.Loss, s.Accuracy, s.EvalAccuracy)
		}))
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := job.ExtractText(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extraction ok: classifier recovered (test accuracy %.3f)\n",
		amalgam.PredictText(fresh, test, 16))
}

func languageModel() {
	fmt.Println("== language modelling (WikiText-2-style, public API) ==")
	const vocab, window = 2000, 20
	stream := amalgam.GenerateTokenStream(amalgam.TextConfig{Name: "wt2", Tokens: 8000, Vocab: vocab, Seed: 5})
	model := amalgam.BuildLMModel(7, amalgam.TransformerLMConfig{
		Vocab: vocab, D: 64, Heads: 2, FF: 64, Layers: 2, MaxT: 64, Dropout: 0,
	})
	job, err := amalgam.ObfuscateTokens(model, stream, window, amalgam.Options{Amount: 0.5, SubNets: 2, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	_, err = amalgam.Train(context.Background(), amalgam.LocalTrainer{}, job,
		amalgam.TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.05, Momentum: 0.9},
		amalgam.WithProgress(func(s amalgam.EpochStats) {
			fmt.Printf("epoch %d: original-subnet LM loss %.4f ppl %.1f\n", s.Epoch, s.Loss, s.Perplexity)
		}))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := job.ExtractLM(7); err != nil {
		log.Fatal(err)
	}
	fmt.Println("extraction ok: language model recovered")
}
