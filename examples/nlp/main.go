// NLP example: obfuscated training for both paper NLP workloads — the
// AG News-style text classifier (embedding-bag + linear) and the
// WikiText-2-style transformer language model.
package main

import (
	"fmt"
	"log"

	"amalgam/internal/autodiff"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/optim"
	"amalgam/internal/tensor"
)

func main() {
	textClassification()
	languageModel()
}

func textClassification() {
	fmt.Println("== text classification (AG News-style) ==")
	vocab := 5000
	train := data.GenerateClassifiedText(data.ClassTextConfig{Name: "ag", N: 96, SeqLen: 64, Vocab: vocab, Classes: 4, Seed: 1})

	aug, err := core.AugmentTextDataset(train, core.TextAugmentOptions{Amount: 0.5, Noise: core.DefaultTextNoise(vocab), Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequences: %d → %d tokens (search space %s)\n",
		train.SeqLen(), aug.Dataset.SeqLen(), core.SearchSpaceString(train.SeqLen(), aug.Dataset.SeqLen()))

	orig := models.NewTextClassifier(tensor.NewRNG(3), vocab, 64, 4)
	am, err := core.AugmentTextClassifier(orig, aug.Key, core.ModelAugmentOptions{Amount: 0.5, SubNets: 2, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	opt := optim.NewSGD(am.Params(), 0.5, 0.9, 0)
	for epoch := 0; epoch < 3; epoch++ {
		var lossSum float32
		batches := data.BatchIter(aug.Dataset.N(), 16, nil)
		for _, idx := range batches {
			ids, labels := aug.Dataset.Batch(idx)
			nn.ZeroGrads(am)
			total, origLoss := am.Loss(ids, labels)
			autodiff.Backward(total)
			opt.Step()
			lossSum += origLoss.Scalar()
		}
		fmt.Printf("epoch %d: original-subnet loss %.4f\n", epoch+1, lossSum/float32(len(batches)))
	}
	fresh := models.NewTextClassifier(tensor.NewRNG(3), vocab, 64, 4)
	if err := core.Extract(am, fresh); err != nil {
		log.Fatal(err)
	}
	fmt.Println("extraction ok: classifier recovered")
}

func languageModel() {
	fmt.Println("== language modelling (WikiText-2-style) ==")
	vocab := 2000
	const window = 20
	stream := data.GenerateTokenStream(data.TextConfig{Name: "wt2", Tokens: 8000, Vocab: vocab, Seed: 5})
	aug, err := core.AugmentTokenStream(stream, core.TextAugmentOptions{Amount: 0.5, WindowLen: window, Noise: core.DefaultTextNoise(vocab), Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	cfg := models.TransformerLMConfig{Vocab: vocab, D: 64, Heads: 2, FF: 64, Layers: 2, MaxT: 64, Dropout: 0}
	orig := models.NewTransformerLM(tensor.NewRNG(7), cfg)
	am, err := core.AugmentTransformerLM(orig, aug.Key, core.ModelAugmentOptions{Amount: 0.5, SubNets: 2, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	var windows [][]int
	for lo := 0; lo+aug.Key.AugLen <= len(aug.Stream.Tokens); lo += aug.Key.AugLen {
		windows = append(windows, aug.Stream.Tokens[lo:lo+aug.Key.AugLen])
	}
	opt := optim.NewSGD(am.Params(), 0.05, 0.9, 0)
	for epoch := 0; epoch < 2; epoch++ {
		var lossSum float32
		steps := 0
		for lo := 0; lo+8 <= len(windows); lo += 8 {
			nn.ZeroGrads(am)
			total, origLoss := am.LossWindows(windows[lo : lo+8])
			autodiff.Backward(total)
			opt.Step()
			lossSum += origLoss.Scalar()
			steps++
		}
		fmt.Printf("epoch %d: original-subnet LM loss %.4f\n", epoch+1, lossSum/float32(steps))
	}
	fresh := models.NewTransformerLM(tensor.NewRNG(7), cfg)
	if err := core.Extract(am, fresh); err != nil {
		log.Fatal(err)
	}
	fmt.Println("extraction ok: language model recovered")
}
