// NLP example: obfuscated training for both paper NLP workloads — the
// AG News-style text classifier through the public Job/Trainer API
// (ObfuscateText → LocalTrainer → ExtractText), and the WikiText-2-style
// transformer language model through the internal core (LM jobs are not
// yet first-class in the public API).
package main

import (
	"context"
	"fmt"
	"log"

	"amalgam"
	"amalgam/internal/autodiff"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/optim"
	"amalgam/internal/tensor"
)

func main() {
	textClassification()
	languageModel()
}

func textClassification() {
	fmt.Println("== text classification (AG News-style, public API) ==")
	const vocab, classes = 5000, 4
	train := amalgam.GenerateClassifiedText(amalgam.ClassTextConfig{
		Name: "ag", N: 96, SeqLen: 64, Vocab: vocab, Classes: classes, Seed: 1})
	test := amalgam.GenerateClassifiedText(amalgam.ClassTextConfig{
		Name: "ag-test", N: 32, SeqLen: 64, Vocab: vocab, Classes: classes, Seed: 2})

	model := amalgam.BuildTextClassifier(3, vocab, 64, classes)
	job, err := amalgam.ObfuscateText(model, train, amalgam.Options{Amount: 0.5, SubNets: 2, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequences: %d → %d tokens (search space 10^%.1f)\n",
		train.SeqLen(), job.AugmentedDataset.SeqLen(),
		amalgam.SearchSpace(train.SeqLen(), job.AugmentedDataset.SeqLen()))

	// Train through the Trainer API: streamed per-epoch stats plus a
	// held-out split obfuscated with the job key. Swapping LocalTrainer{}
	// for RemoteTrainer{Addr} runs the identical job on a cloud service.
	_, err = amalgam.Train(context.Background(), amalgam.LocalTrainer{}, job,
		amalgam.TrainConfig{Epochs: 3, BatchSize: 16, LR: 0.5, Momentum: 0.9},
		amalgam.WithEvalSet(test),
		amalgam.WithProgress(func(s amalgam.EpochStats) {
			fmt.Printf("epoch %d: original-subnet loss %.4f acc %.3f eval %.3f\n",
				s.Epoch, s.Loss, s.Accuracy, s.EvalAccuracy)
		}))
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := job.ExtractText(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extraction ok: classifier recovered (test accuracy %.3f)\n",
		amalgam.PredictText(fresh, test, 16))
}

func languageModel() {
	fmt.Println("== language modelling (WikiText-2-style) ==")
	vocab := 2000
	const window = 20
	stream := data.GenerateTokenStream(data.TextConfig{Name: "wt2", Tokens: 8000, Vocab: vocab, Seed: 5})
	aug, err := core.AugmentTokenStream(stream, core.TextAugmentOptions{Amount: 0.5, WindowLen: window, Noise: core.DefaultTextNoise(vocab), Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	cfg := models.TransformerLMConfig{Vocab: vocab, D: 64, Heads: 2, FF: 64, Layers: 2, MaxT: 64, Dropout: 0}
	orig := models.NewTransformerLM(tensor.NewRNG(7), cfg)
	am, err := core.AugmentTransformerLM(orig, aug.Key, core.ModelAugmentOptions{Amount: 0.5, SubNets: 2, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	var windows [][]int
	for lo := 0; lo+aug.Key.AugLen <= len(aug.Stream.Tokens); lo += aug.Key.AugLen {
		windows = append(windows, aug.Stream.Tokens[lo:lo+aug.Key.AugLen])
	}
	opt := optim.NewSGD(am.Params(), 0.05, 0.9, 0)
	for epoch := 0; epoch < 2; epoch++ {
		var lossSum float32
		steps := 0
		for lo := 0; lo+8 <= len(windows); lo += 8 {
			nn.ZeroGrads(am)
			total, origLoss := am.LossWindows(windows[lo : lo+8])
			autodiff.Backward(total)
			opt.Step()
			lossSum += origLoss.Scalar()
			steps++
		}
		fmt.Printf("epoch %d: original-subnet LM loss %.4f\n", epoch+1, lossSum/float32(steps))
	}
	fresh := models.NewTransformerLM(tensor.NewRNG(7), cfg)
	if err := core.Extract(am, fresh); err != nil {
		log.Fatal(err)
	}
	fmt.Println("extraction ok: language model recovered")
}
