// Quickstart: obfuscate a model and dataset, train, extract, evaluate —
// the complete Fig. 1 workflow in one file using only the public API.
package main

import (
	"fmt"
	"log"

	"amalgam"
)

func main() {
	// 1. The user's proprietary dataset and model (synthetic stand-ins).
	train := amalgam.SyntheticMNIST(256, 1)
	test := amalgam.SyntheticMNIST(64, 2)
	model, err := amalgam.BuildCV("lenet", 7, amalgam.CVConfig{InC: 1, InH: 28, InW: 28, Classes: 10})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Obfuscate: 50% augmentation hides both architecture and data.
	job, err := amalgam.Obfuscate(model, train, amalgam.Options{Amount: 0.5, SubNets: 3, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("augmented dataset: %dx%d → %dx%d, privacy loss ε=%.2f\n",
		train.H(), train.W(), job.AugmentedDataset.H(), job.AugmentedDataset.W(), amalgam.PrivacyLoss(0.5))

	// 3. Train the augmented model (locally here; see cmd/amalgam-train for
	// the remote cloud service).
	stats, err := job.Train(amalgam.TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.05, Momentum: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stats {
		fmt.Printf("epoch %d: loss=%.4f acc=%.3f\n", s.Epoch, s.Loss, s.Accuracy)
	}

	// 4. Extract the original model and evaluate on the ORIGINAL test set.
	trained, err := job.Extract("lenet", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted model accuracy on original test set: %.3f\n", amalgam.Predict(trained, test, 32))
}
