// Quickstart: obfuscate a model and dataset, train, extract, evaluate —
// the complete Fig. 1 workflow in one file using only the public API. The
// training run streams per-epoch progress, scores a held-out split, and
// writes a resumable checkpoint every epoch.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"amalgam"
)

func main() {
	// 1. The user's proprietary dataset and model (synthetic stand-ins).
	train := amalgam.SyntheticMNIST(256, 1)
	test := amalgam.SyntheticMNIST(64, 2)
	model, err := amalgam.BuildCV("lenet", 7, amalgam.CVConfig{InC: 1, InH: 28, InW: 28, Classes: 10})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Obfuscate: 50% augmentation hides both architecture and data.
	job, err := amalgam.Obfuscate(model, train, amalgam.Options{Amount: 0.5, SubNets: 3, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("augmented dataset: %dx%d → %dx%d, privacy loss ε=%.2f\n",
		train.H(), train.W(), job.AugmentedDataset.H(), job.AugmentedDataset.W(), amalgam.PrivacyLoss(0.5))

	// 3. Train the augmented model (locally here; RemoteTrainer{Addr} runs
	// the identical job against cmd/amalgam-train -serve). WithEvalSet
	// obfuscates the held-out split with the job key and scores it each
	// epoch; the checkpoint makes the run resumable after interruption.
	ckpt := filepath.Join(os.TempDir(), "quickstart.amc")
	defer os.Remove(ckpt)
	_, err = amalgam.Train(context.Background(), amalgam.LocalTrainer{}, job,
		amalgam.TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.05, Momentum: 0.9},
		amalgam.WithEvalSet(test),
		amalgam.WithCheckpoint(ckpt, 1),
		amalgam.WithProgress(func(s amalgam.EpochStats) {
			fmt.Printf("epoch %d: loss=%.4f acc=%.3f eval=%.3f\n", s.Epoch, s.Loss, s.Accuracy, s.EvalAccuracy)
		}))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Extract the original model and evaluate on the ORIGINAL test set.
	trained, err := job.Extract("lenet", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted model accuracy on original test set: %.3f\n", amalgam.Predict(trained, test, 32))
}
