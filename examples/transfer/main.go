// Transfer-learning example (§4.4): load pre-trained weights into a model,
// obfuscate, fine-tune under obfuscation, and extract. The pre-trained
// layers are untouched by augmentation; fine-tuning proceeds exactly as it
// would without Amalgam.
package main

import (
	"context"
	"fmt"
	"log"

	"amalgam"
	"amalgam/internal/nn"
)

func main() {
	ctx := context.Background()
	cfg := amalgam.CVConfig{InC: 3, InH: 32, InW: 32, Classes: 10}

	// "Pre-train" a ResNet-18 on a source task.
	source := amalgam.SyntheticCIFAR10(48, 1)
	pre, err := amalgam.BuildCV("resnet18", 7, cfg)
	if err != nil {
		log.Fatal(err)
	}
	preJob, err := amalgam.Obfuscate(pre, source, amalgam.Options{Amount: 0, Seed: 1}) // 0% = plain training helper
	if err != nil {
		log.Fatal(err)
	}
	if _, err := amalgam.Train(ctx, amalgam.LocalTrainer{}, preJob,
		amalgam.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.02, Momentum: 0.9}); err != nil {
		log.Fatal(err)
	}
	pretrained := nn.StateDict(pre)
	fmt.Println("pre-training done; snapshotting weights")

	// Fine-tune on the target task under full obfuscation: build the model,
	// apply the pre-trained weights, then obfuscate.
	target := amalgam.SyntheticCIFAR100(100, 2)
	targetCfg := cfg
	targetCfg.Classes = 100
	ft, err := amalgam.BuildCV("resnet18", 8, targetCfg)
	if err != nil {
		log.Fatal(err)
	}
	// Transfer everything except the classification head (class counts
	// differ). This is the user-side step the paper describes: apply
	// pre-trained weights BEFORE passing the model to Amalgam.
	dict := nn.StateDict(ft)
	copied := 0
	for name, src := range pretrained {
		if dst, ok := dict[name]; ok && src.SameShape(dst) {
			dst.CopyFrom(src)
			copied++
		}
	}
	fmt.Printf("transferred %d pre-trained tensors\n", copied)

	job, err := amalgam.Obfuscate(ft, target, amalgam.Options{Amount: 0.5, SubNets: 3, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	_, err = amalgam.Train(ctx, amalgam.LocalTrainer{}, job,
		amalgam.TrainConfig{Epochs: 2, BatchSize: 20, LR: 0.02, Momentum: 0.9},
		amalgam.WithProgress(func(s amalgam.EpochStats) {
			fmt.Printf("fine-tune epoch %d: loss=%.4f acc=%.3f\n", s.Epoch, s.Loss, s.Accuracy)
		}))
	if err != nil {
		log.Fatal(err)
	}
	extracted, err := job.Extract("resnet18", 8)
	if err != nil {
		log.Fatal(err)
	}
	test := amalgam.SyntheticCIFAR100(50, 9)
	fmt.Printf("fine-tuned model accuracy on original test data: %.3f\n", amalgam.Predict(extracted, test, 25))
}
