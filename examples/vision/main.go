// Vision example: ResNet-18 on synthetic CIFAR-10 with the full paper
// protocol — train augmented and un-augmented models side by side and show
// that the original sub-network's curves coincide exactly, then verify
// extraction parity on the test set.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"amalgam"
	"amalgam/internal/experiments"
)

func main() {
	// Side-by-side curves (the harness behind Figs. 6a–6d).
	sc := experiments.Scale{TrainN: 48, TestN: 24, Epochs: 2, BatchSize: 16, LR: 0.02}
	experiments.CVCurves(os.Stdout, "resnet18", "cifar10", sc, []float64{0, 0.5})

	// The public-API version of the same workflow with extraction checks.
	train := amalgam.SyntheticCIFAR10(48, 3)
	test := amalgam.SyntheticCIFAR10(24, 4)
	model, err := amalgam.BuildCV("resnet18", 7, amalgam.CVConfig{InC: 3, InH: 32, InW: 32, Classes: 10})
	if err != nil {
		log.Fatal(err)
	}
	job, err := amalgam.Obfuscate(model, train, amalgam.Options{Amount: 0.5, SubNets: 3, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	// Train with a per-epoch eval of the held-out split, obfuscated with
	// the job key (§5.4's cloud-side validation path).
	if _, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, job,
		amalgam.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.02, Momentum: 0.9},
		amalgam.WithEvalSet(test),
		amalgam.WithProgress(func(s amalgam.EpochStats) {
			fmt.Printf("epoch %d: loss=%.4f train=%.3f eval=%.3f\n", s.Epoch, s.Loss, s.Accuracy, s.EvalAccuracy)
		})); err != nil {
		log.Fatal(err)
	}
	extracted, err := job.Extract("resnet18", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted ResNet-18 accuracy on original test set: %.3f\n", amalgam.Predict(extracted, test, 16))

	// Validate the augmented model on the augmented test set (§5.4): the
	// two validation paths must agree.
	augTest, err := job.ObfuscateTestSet(test, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("augmented-model accuracy on augmented test set: %.3f (must match)\n",
		amalgam.Predict(job.Augmented, augTest, 16))
}
