// Attack-resilience example (§6.3): run the provider-side attacks against
// an obfuscated job and print the outcomes the paper's Figs. 16–18 report.
package main

import (
	"fmt"
	"log"
	"os"

	"amalgam/internal/experiments"
)

func main() {
	fmt.Println("== brute force ==")
	experiments.BruteForce(os.Stdout)

	fmt.Println("\n== gradient leakage (Fig. 16) ==")
	if err := experiments.Fig16GradientLeakage(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== attribution distortion (Fig. 17) ==")
	if err := experiments.Fig17SHAPDistortion(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== denoising attack (Fig. 18) ==")
	if err := experiments.Fig18DenoisingAttack(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== sub-network identification ==")
	if err := experiments.SubnetIdentification(os.Stdout, 5); err != nil {
		log.Fatal(err)
	}
}
