// LM example: obfuscated language-model training through the public API —
// the paper's WikiText-2 workload. A transformer LM and its token stream
// are obfuscated (BuildLMModel → ObfuscateTokens), trained with streamed
// per-epoch perplexity and a held-out eval split, checkpointed with
// momentum state, and extracted back bit-for-bit (ExtractLM).
//
// Swapping LocalTrainer{} for RemoteTrainer{Addr} runs the identical job
// on a cloud service (amalgam-train -serve) — the trained weights are
// bit-identical either way, which is how the model owner verifies the
// cloud trained exactly the network it was sent.
package main

import (
	"context"
	"fmt"
	"log"

	"amalgam"
)

func main() {
	const vocab, bptt = 2000, 20
	train := amalgam.GenerateTokenStream(amalgam.TextConfig{Name: "wt2", Tokens: 6000, Vocab: vocab, Seed: 5})
	val := amalgam.GenerateTokenStream(amalgam.TextConfig{Name: "wt2-val", Tokens: 800, Vocab: vocab, Seed: 6})

	model := amalgam.BuildLMModel(7, amalgam.TransformerLMConfig{
		Vocab: vocab, D: 64, Heads: 2, FF: 64, Layers: 2, MaxT: 64, Dropout: 0.1,
	})
	// SubNets is left 0: the decoy count is drawn deterministically from
	// the seed, recorded in the job, and carried in the wire spec — no
	// pinning needed even for remote training.
	job, err := amalgam.ObfuscateTokens(model, train, bptt, amalgam.Options{Amount: 0.5, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windows: %d → %d tokens (search space 10^%.1f per window)\n",
		job.Key.OrigLen, job.Key.AugLen, amalgam.SearchSpace(job.Key.OrigLen, job.Key.AugLen))
	fmt.Printf("stream: %d augmented tokens, %d decoy sub-networks\n",
		len(job.AugmentedStream.Tokens), len(job.Augmented.Decoys))

	_, err = amalgam.Train(context.Background(), amalgam.LocalTrainer{}, job,
		amalgam.TrainConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9},
		amalgam.WithEvalSet(val),
		amalgam.WithProgress(func(s amalgam.EpochStats) {
			fmt.Printf("epoch %d: original-subnet loss %.4f ppl %.1f next-token acc %.3f eval %.3f\n",
				s.Epoch, s.Loss, s.Perplexity, s.Accuracy, s.EvalAccuracy)
		}))
	if err != nil {
		log.Fatal(err)
	}

	fresh, err := job.ExtractLM(7)
	if err != nil {
		log.Fatal(err)
	}
	_ = fresh
	pp, err := job.Perplexity(val, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extraction ok: original LM recovered; held-out perplexity %.1f\n", pp)
}
