package amalgam_test

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"amalgam"
	"amalgam/internal/cloudsim"
	"amalgam/internal/faultnet"
	"amalgam/internal/nn"
	"amalgam/internal/serialize"
	"amalgam/internal/tensor"
)

// startFaultServer spins a cloudsim service behind a fault-injecting
// listener whose per-connection plan the test controls.
func startFaultServer(t *testing.T, plan func(i int) faultnet.ConnPlan) *faultnet.Listener {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := faultnet.Wrap(inner, plan)
	server := cloudsim.NewServer(fl)
	t.Cleanup(func() {
		fl.Close()
		server.Wait()
	})
	return fl
}

// extractedState pulls the recovered original model's state dict out of a
// trained job, for bit-identity comparison across runs.
func extractedState(t *testing.T, job amalgam.TrainableJob) map[string]*tensor.Tensor {
	t.Helper()
	switch j := job.(type) {
	case *amalgam.Job:
		m, err := j.Extract("lenet", 7)
		if err != nil {
			t.Fatal(err)
		}
		return nn.StateDict(m)
	case *amalgam.TextJob:
		m, err := j.ExtractText(3)
		if err != nil {
			t.Fatal(err)
		}
		return nn.StateDict(m)
	case *amalgam.LMJob:
		m, err := j.ExtractLM(3)
		if err != nil {
			t.Fatal(err)
		}
		return nn.StateDict(m)
	default:
		t.Fatalf("unknown job type %T", job)
		return nil
	}
}

// TestRetryResumesAfterMidTrainingKill is the tentpole acceptance test:
// for every modality — CV, text, and LM with momentum AND dropout — the
// server connection is killed at an epoch boundary mid-training, WithRetry
// reconnects and resumes from the last streamed snapshot, every epoch's
// stats are delivered exactly once, and the final extracted weights are
// bit-identical to an unbroken local run.
//
// The first connection's writes are throttled (WriteDelay) so the server
// provably cannot finish before the kill triggered off the second progress
// frame lands; the retry connection is transparent.
func TestRetryResumesAfterMidTrainingKill(t *testing.T) {
	cases := []struct {
		name  string
		mk    func(t *testing.T) amalgam.TrainableJob
		cfg   amalgam.TrainConfig
		delay time.Duration
	}{
		{"cv", func(t *testing.T) amalgam.TrainableJob { return mkCVJob(t, 5) },
			amalgam.TrainConfig{Epochs: 8, BatchSize: 8, LR: 0.05, Momentum: 0.9}, 15 * time.Millisecond},
		{"text", func(t *testing.T) amalgam.TrainableJob { return mkTextJob(t) },
			amalgam.TrainConfig{Epochs: 20, BatchSize: 8, LR: 0.5, Momentum: 0.9}, 10 * time.Millisecond},
		{"lm", func(t *testing.T) amalgam.TrainableJob { return mkLMJob(t) },
			amalgam.TrainConfig{Epochs: 8, BatchSize: 8, LR: 0.1, Momentum: 0.9}, 20 * time.Millisecond},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fl := startFaultServer(t, func(i int) faultnet.ConnPlan {
				if i == 0 {
					return faultnet.ConnPlan{WriteDelay: c.delay}
				}
				return faultnet.ConnPlan{}
			})

			var once sync.Once
			job := c.mk(t)
			stats, err := amalgam.Train(context.Background(), amalgam.RemoteTrainer{Addr: fl.Addr().String()}, job, c.cfg,
				amalgam.WithRetry(amalgam.RetryPolicy{
					MaxRetries: 3,
					BaseDelay:  time.Millisecond,
					MaxDelay:   10 * time.Millisecond,
					Seed:       7,
				}),
				amalgam.WithProgress(func(s amalgam.EpochStats) {
					// Epoch 2's progress frame proves epoch 1's snapshot is
					// already client-side (same ordered stream), so the retry
					// resumes rather than restarting.
					if s.Epoch >= 2 {
						once.Do(fl.KillAll)
					}
				}))
			if err != nil {
				t.Fatalf("retried run failed: %v", err)
			}
			if len(stats) != c.cfg.Epochs {
				t.Fatalf("delivered %d epoch stats, want %d", len(stats), c.cfg.Epochs)
			}
			for i, s := range stats {
				if s.Epoch != i+1 {
					t.Fatalf("stats[%d].Epoch = %d; replayed epochs must be deduplicated", i, s.Epoch)
				}
			}
			if fl.Accepted() < 2 {
				t.Fatalf("only %d connection(s) accepted; the kill never forced a retry", fl.Accepted())
			}

			local := c.mk(t)
			if _, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, local, c.cfg); err != nil {
				t.Fatal(err)
			}
			want := extractedState(t, local)
			got := extractedState(t, job)
			for name, w := range want {
				if !got[name].Equal(w) {
					t.Fatalf("killed-and-resumed run diverged from unbroken run at %q", name)
				}
			}
		})
	}
}

// TestRetryExhaustedReportsSentinel pins the failure shape when every
// attempt dies: ErrRetriesExhausted wraps the last transport error, both
// reachable with errors.Is.
func TestRetryExhaustedReportsSentinel(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // nothing listens: every dial fails transiently

	job := mkTextJob(t)
	_, err = amalgam.Train(context.Background(), amalgam.RemoteTrainer{Addr: addr}, job,
		amalgam.TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.5},
		amalgam.WithRetry(amalgam.RetryPolicy{
			MaxRetries: 2,
			BaseDelay:  time.Millisecond,
			MaxDelay:   2 * time.Millisecond,
			Seed:       1,
		}))
	if !errors.Is(err, amalgam.ErrRetriesExhausted) {
		t.Fatalf("got %v, want ErrRetriesExhausted", err)
	}
}

// TestRetryNeverMasksCallerCancellation: the user's own ctx cancellation
// must terminate the run immediately — not burn the retry budget on the
// transport symptoms the cancel itself causes.
func TestRetryNeverMasksCallerCancellation(t *testing.T) {
	fl := startFaultServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	job := mkTextJob(t)
	_, err := amalgam.Train(ctx, amalgam.RemoteTrainer{Addr: fl.Addr().String()}, job,
		amalgam.TrainConfig{Epochs: 2000, BatchSize: 8, LR: 0.5, Momentum: 0.9},
		amalgam.WithRetry(amalgam.RetryPolicy{MaxRetries: 5, BaseDelay: time.Millisecond, Seed: 3}),
		amalgam.WithProgress(func(s amalgam.EpochStats) {
			if s.Epoch == 2 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if fl.Accepted() != 1 {
		t.Fatalf("%d connections; a cancelled run must not retry", fl.Accepted())
	}
}

// TestLMDropoutResumeMatchesStraightRun is the dropout-cursor
// checkpointing satellite: an LM job (Dropout > 0, Momentum > 0) trained
// 2 epochs, checkpointed to disk, and resumed in a FRESH job ("process
// restart") to epoch 4 must match a straight 4-epoch run bit-for-bit —
// which requires the AMC2 file to carry the dropout-stream cursors, not
// just weights and momentum. Runs locally and over the wire.
func TestLMDropoutResumeMatchesStraightRun(t *testing.T) {
	full := amalgam.TrainConfig{Epochs: 4, BatchSize: 8, LR: 0.1, Momentum: 0.9}
	half := full
	half.Epochs = 2

	for _, mode := range []string{"local", "remote"} {
		t.Run(mode, func(t *testing.T) {
			var trainer amalgam.Trainer = amalgam.LocalTrainer{}
			if mode == "remote" {
				trainer = amalgam.RemoteTrainer{Addr: startServer(t)}
			}
			ckpt := filepath.Join(t.TempDir(), "lm.amc")

			first := mkLMJob(t)
			if _, err := amalgam.Train(context.Background(), trainer, first, half,
				amalgam.WithCheckpoint(ckpt, 1)); err != nil {
				t.Fatal(err)
			}
			ck, err := serialize.LoadTrainCheckpoint(ckpt)
			if err != nil {
				t.Fatal(err)
			}
			if len(ck.RNG) == 0 {
				t.Fatal("dropout job's checkpoint carries no RNG cursors")
			}

			resumed := mkLMJob(t) // fresh job: nothing lives outside the file
			if _, err := amalgam.Train(context.Background(), trainer, resumed, full,
				amalgam.WithResume(ckpt)); err != nil {
				t.Fatal(err)
			}

			straight := mkLMJob(t)
			if _, err := amalgam.Train(context.Background(), trainer, straight, full); err != nil {
				t.Fatal(err)
			}

			want := extractedState(t, straight)
			got := extractedState(t, resumed)
			for name, w := range want {
				if !got[name].Equal(w) {
					t.Fatalf("%s resume-from-checkpoint diverged from straight run at %q", mode, name)
				}
			}
		})
	}
}
