package amalgam_test

import (
	"net"
	"testing"

	"amalgam"
	"amalgam/internal/cloudsim"
	"amalgam/internal/nn"
)

// TestPublicAPIWorkflow exercises the documented quickstart path
// end-to-end: obfuscate → train → extract → evaluate.
func TestPublicAPIWorkflow(t *testing.T) {
	ds := amalgam.SyntheticMNIST(32, 1)
	test := amalgam.SyntheticMNIST(16, 2)
	model, err := amalgam.BuildCV("lenet", 7, amalgam.CVConfig{InC: 1, InH: 28, InW: 28, Classes: 10})
	if err != nil {
		t.Fatal(err)
	}
	job, err := amalgam.Obfuscate(model, ds, amalgam.Options{Amount: 0.5, SubNets: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if job.AugmentedDataset.H() != 42 {
		t.Fatalf("augmented geometry %d, want 42", job.AugmentedDataset.H())
	}
	stats, err := job.Train(amalgam.TrainConfig{Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats %v", stats)
	}
	trained, err := job.Extract("lenet", 7)
	if err != nil {
		t.Fatal(err)
	}
	acc := amalgam.Predict(trained, test, 16)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
	augTest, err := job.ObfuscateTestSet(test, 9)
	if err != nil {
		t.Fatal(err)
	}
	if augTest.H() != 42 {
		t.Fatal("test split must share the key geometry")
	}
}

// TestTrainRemoteWorkflow runs the complete Fig. 1 loop through the public
// API against an in-process TCP training service, and verifies the
// extracted weights match local training bit-for-bit.
func TestTrainRemoteWorkflow(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := cloudsim.NewServer(l)
	defer func() {
		l.Close()
		server.Wait()
	}()

	ds := amalgam.SyntheticMNIST(16, 1)
	cfg := amalgam.CVConfig{InC: 1, InH: 28, InW: 28, Classes: 10}
	mk := func() *amalgam.Job {
		model, err := amalgam.BuildCV("lenet", 7, cfg)
		if err != nil {
			t.Fatal(err)
		}
		job, err := amalgam.Obfuscate(model, ds, amalgam.Options{Amount: 0.5, SubNets: 2, Seed: 5, ModelName: "lenet"})
		if err != nil {
			t.Fatal(err)
		}
		return job
	}
	tc := amalgam.TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.05, Momentum: 0.9}

	remote := mk()
	if _, err := remote.TrainRemote(l.Addr().String(), tc); err != nil {
		t.Fatal(err)
	}
	local := mk()
	if _, err := local.Train(tc); err != nil {
		t.Fatal(err)
	}

	a, err := remote.Extract("lenet", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := local.Extract("lenet", 7)
	if err != nil {
		t.Fatal(err)
	}
	da, db := nn.StateDict(a), nn.StateDict(b)
	for name, src := range da {
		if !db[name].Equal(src) {
			t.Fatalf("remote vs local training diverged at %q", name)
		}
	}

	// ModelName is required.
	noName := func() *amalgam.Job {
		model, _ := amalgam.BuildCV("lenet", 7, cfg)
		job, _ := amalgam.Obfuscate(model, ds, amalgam.Options{Amount: 0.5, SubNets: 2, Seed: 5})
		return job
	}()
	if _, err := noName.TrainRemote(l.Addr().String(), tc); err == nil {
		t.Fatal("TrainRemote without ModelName should error")
	}
}

func TestPublicAPIValidation(t *testing.T) {
	ds := amalgam.SyntheticMNIST(8, 1)
	model, err := amalgam.BuildCV("lenet", 7, amalgam.CVConfig{InC: 1, InH: 28, InW: 28, Classes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := amalgam.Obfuscate(model, ds, amalgam.Options{Amount: -1}); err == nil {
		t.Fatal("negative amount should error")
	}
	job, err := amalgam.Obfuscate(model, ds, amalgam.Options{Amount: 0.25, SubNets: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Train(amalgam.TrainConfig{}); err == nil {
		t.Fatal("zero-epoch training should error")
	}
	if _, err := amalgam.BuildCV("nope", 1, amalgam.CVConfig{}); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestEquationsExposed(t *testing.T) {
	if amalgam.PrivacyLoss(1) != 0.5 || amalgam.ComputePerformanceLoss(1) != 0.5 {
		t.Fatal("Eqs. 5-6 wrong")
	}
	if s := amalgam.SearchSpace(784, 1225); s < 345 || s > 347 {
		t.Fatalf("search space %v, want ≈346", s)
	}
}
