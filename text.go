package amalgam

import (
	"fmt"

	"amalgam/internal/autodiff"
	"amalgam/internal/cloudsim"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// Text-modality re-exports: the paper's workflow applies to token
// sequences exactly as it does to images (§4.1's Fig. 3 layout), and the
// public API treats both as first-class jobs.
type (
	// TextDataset is a labelled set of fixed-length token sequences
	// (AG News-style classification).
	TextDataset = data.TextDataset
	// TextAugKey is the secret tying augmented sequences to the skip
	// embeddings: the within-window positions holding original tokens.
	TextAugKey = core.TextAugKey
	// TextClassifier is the paper's AG News model: a mean-pooled
	// embedding bag followed by one linear layer.
	TextClassifier = models.TextClassifier
)

// SyntheticAGNews generates the offline stand-in for the AG News corpus
// at the real corpus' vocabulary (95,812) and sample length.
var SyntheticAGNews = data.SyntheticAGNews

// ClassTextConfig parameterises GenerateClassifiedText for corpora smaller
// (or differently shaped) than the AG News stand-in.
type ClassTextConfig = data.ClassTextConfig

// GenerateClassifiedText builds a synthetic classification corpus with
// class-conditional token structure.
var GenerateClassifiedText = data.GenerateClassifiedText

// DefaultTextNoise is uniform noise over the vocabulary — the text
// counterpart of UniformNoise.
func DefaultTextNoise(vocab int) NoiseSpec { return core.DefaultTextNoise(vocab) }

// BuildTextClassifier constructs the AG News-style classifier with a
// deterministic seed.
func BuildTextClassifier(seed uint64, vocab, embedDim, classes int) *TextClassifier {
	return models.NewTextClassifier(tensor.NewRNG(seed), vocab, embedDim, classes)
}

// TextJob holds the obfuscated text artifacts and the secret key — the
// text concretion of TrainableJob. Ship AugmentedDataset and the augmented
// classifier to the cloud; keep the TextJob.
type TextJob struct {
	Augmented        *core.AugmentedTextClassifier
	AugmentedDataset *TextDataset
	Key              *TextAugKey

	opts Options
}

// ObfuscateText augments a classification dataset and wraps the classifier
// with decoy sub-networks bound to the same key — ObfuscateText is to text
// what Obfuscate is to images. Every sample of length L grows to
// L + L·Amount with synthetic tokens at the key's secret positions.
func ObfuscateText(model *TextClassifier, ds *TextDataset, opts Options) (*TextJob, error) {
	if model.Vocab != ds.Vocab {
		return nil, fmt.Errorf("amalgam: model vocabulary %d does not match dataset vocabulary %d", model.Vocab, ds.Vocab)
	}
	if model.Classes != ds.Classes {
		return nil, fmt.Errorf("amalgam: model has %d classes, dataset %d", model.Classes, ds.Classes)
	}
	noise := core.DefaultTextNoise(ds.Vocab)
	if opts.Noise != nil {
		noise = *opts.Noise
	}
	aug, err := core.AugmentTextDataset(ds, core.TextAugmentOptions{Amount: opts.Amount, Noise: noise, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("amalgam: dataset augmentation: %w", err)
	}
	am, err := core.AugmentTextClassifier(model, aug.Key, core.ModelAugmentOptions{
		Amount: opts.Amount, SubNets: opts.SubNets, Seed: opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("amalgam: model augmentation: %w", err)
	}
	opts.SubNets = len(am.Decoys) // record the resolved decoy count
	return &TextJob{
		Augmented:        am,
		AugmentedDataset: aug.Dataset,
		Key:              aug.Key,
		opts:             opts,
	}, nil
}

// ObfuscateTestSet augments an evaluation split with the job's key so the
// augmented classifier can be validated cloud-side (§5.4).
func (j *TextJob) ObfuscateTestSet(ds *TextDataset, seed uint64) (*TextDataset, error) {
	noise := core.DefaultTextNoise(ds.Vocab)
	if j.opts.Noise != nil {
		noise = *j.opts.Noise
	}
	return core.AugmentTextDatasetWithKey(ds, j.Key, noise, seed)
}

// ops adapts the text job to the Trainer machinery.
func (j *TextJob) ops() *jobOps {
	am, ds := j.Augmented, j.AugmentedDataset
	return &jobOps{
		kind: "augmented-text",
		engine: &cloudsim.Engine{
			Model:    am,
			N:        ds.N(),
			Step:     cloudsim.TextStep(am, ds),
			TrainAcc: func(batch int) float64 { return textAccuracy(am, ds, batch) },
		},
		defaultSeed: j.opts.Seed,
		makeEval: func(eds EvalDataset) (func(int) float64, func(*cloudsim.TrainRequest), error) {
			tds, ok := eds.(*TextDataset)
			if !ok {
				return nil, nil, fmt.Errorf("amalgam: text job eval set must be *TextDataset, got %T", eds)
			}
			augEval, err := j.ObfuscateTestSet(tds, j.opts.Seed^evalSeedSalt)
			if err != nil {
				return nil, nil, err
			}
			acc := func(batch int) float64 { return textAccuracy(am, augEval, batch) }
			attach := func(req *cloudsim.TrainRequest) {
				req.EvalSamples = augEval.Samples
				req.EvalLabels = augEval.Labels
			}
			return acc, attach, nil
		},
		request: func() (*cloudsim.TrainRequest, error) {
			orig := am.Orig
			// The spec carries the RESOLVED decoy count, so the server
			// rebuild matches even unpinned jobs.
			spec := cloudsim.ModelSpec{
				Kind:  "augmented-text",
				Vocab: orig.Vocab, EmbedDim: orig.EmbedDim, Classes: orig.Classes,
				OrigLen: j.Key.OrigLen, AugLen: j.Key.AugLen, KeyKeep: j.Key.Keep,
				AugAmount: j.opts.Amount, SubNets: len(am.Decoys), AugSeed: j.opts.Seed,
			}
			return &cloudsim.TrainRequest{
				Spec:      spec,
				Samples:   ds.Samples,
				Labels:    ds.Labels,
				InitState: nn.StateDict(am),
			}, nil
		},
		loadState: func(dict map[string]*tensor.Tensor) error {
			if err := nn.LoadStateDict(am, dict); err != nil {
				return fmt.Errorf("amalgam: loading trained weights: %w", err)
			}
			return nil
		},
	}
}

// ExtractText builds a fresh classifier with the original architecture and
// copies the trained original weights into it (§4.3), verified
// bit-for-bit.
func (j *TextJob) ExtractText(seed uint64) (*TextClassifier, error) {
	orig := j.Augmented.Orig
	fresh := BuildTextClassifier(seed, orig.Vocab, orig.EmbedDim, orig.Classes)
	if err := j.ExtractTextInto(fresh); err != nil {
		return nil, err
	}
	return fresh, nil
}

// ExtractTextInto copies the trained original weights into a user-provided
// fresh classifier and verifies the copy bit-for-bit.
func (j *TextJob) ExtractTextInto(fresh *TextClassifier) error {
	if err := core.Extract(j.Augmented, fresh); err != nil {
		return err
	}
	return core.VerifyExtraction(j.Augmented, fresh)
}

// TextPredictor is anything that maps token batches to class logits —
// plain classifiers and augmented classifiers alike.
type TextPredictor interface {
	ForwardIDs(ids [][]int) *autodiff.Node
	SetTraining(training bool)
}

// PredictText runs a text model over a dataset, returning accuracy — the
// text counterpart of Predict.
func PredictText(m TextPredictor, ds *TextDataset, batch int) float64 {
	return textAccuracy(m, ds, batch)
}

// textAccuracy scores m in eval mode, restoring the prior train/eval mode
// afterwards and releasing every forward graph back to the tensor pool.
// An empty dataset scores 0 (not NaN); WithEvalSet rejects empty splits
// up front with ErrEmptyEvalSet.
func textAccuracy(m TextPredictor, ds *TextDataset, batch int) float64 {
	prev := nn.TrainingMode(m)
	m.SetTraining(false)
	defer m.SetTraining(prev)
	if ds.N() == 0 {
		return 0
	}
	correct := 0
	for _, idx := range data.BatchIter(ds.N(), batch, nil) {
		ids, labels := ds.Batch(idx)
		out := m.ForwardIDs(ids)
		pred := tensor.ArgmaxRows(out.Val)
		autodiff.Release(out)
		for i, p := range pred {
			if p == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.N())
}
