package amalgam

// Inference serving: the public face of internal/serve (an in-process
// batched prediction server) and of the wire protocol's inference
// extension (a retrying remote client). A PredictServer coalesces
// concurrent single predictions into shared forward passes under a
// latency budget, serving extracted originals and still-obfuscated
// augmented models alike; batched and sequential predictions are
// bit-identical. See README "Inference serving".

import (
	"context"
	"fmt"
	"time"

	"amalgam/internal/cloudsim"
	"amalgam/internal/serve"
	"amalgam/internal/tensor"
)

// Prediction results, shared by the in-process server and the remote
// client.
type (
	// CVResult is one image classification: the argmax class and the raw
	// logit row.
	CVResult = serve.CVResult
	// TextResult is one text classification.
	TextResult = serve.TextResult
	// LMResult is one next-token scoring: the top-K most probable token
	// ids (most probable first, ties toward the lower id) with their
	// log probabilities.
	LMResult = serve.LMResult
)

// PredictServerConfig tunes the dynamic batcher and worker pool.
type PredictServerConfig struct {
	// MaxBatch flushes a queue at this many coalesced calls (default 32).
	MaxBatch int
	// MaxDelay is the latency budget: a lone request waits at most this
	// long for company before its batch flushes (default 2ms).
	MaxDelay time.Duration
	// Workers is the inference worker pool size (default 2).
	Workers int
	// QueueDepth bounds admitted-but-unfinished predictions; beyond it
	// requests fail fast with backpressure (default 1024).
	QueueDepth int
}

// PredictServer is an in-process batched inference server. Requests from
// concurrent goroutines coalesce into shared eval-mode forward passes —
// same numerics as calling the model directly, amortised fixed cost.
// Registration permanently puts a model in eval mode; do not train a
// registered model while serving it.
type PredictServer struct {
	backend *serve.Server
}

// NewPredictServer starts the worker pool. Close releases it.
func NewPredictServer(cfg PredictServerConfig) *PredictServer {
	return &PredictServer{backend: serve.New(serve.Config{
		MaxBatch:   cfg.MaxBatch,
		MaxDelay:   cfg.MaxDelay,
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
	})}
}

// Close drains the worker pool; in-flight calls fail fast.
func (s *PredictServer) Close() { s.backend.Close() }

// Backend exposes the underlying serve.Server — for wiring into a
// cloudsim service (ServerConfig.Infer) or direct use.
func (s *PredictServer) Backend() *serve.Server { return s.backend }

// RegisterCV serves an image classifier — extracted or still augmented —
// under name, expecting flattened c×h×w images.
func (s *PredictServer) RegisterCV(name string, m Classifier, c, h, w int) error {
	return s.backend.RegisterCV(name, m, serve.CVConfig{C: c, H: h, W: w})
}

// RegisterText serves a text classifier under name. vocab > 0 validates
// token ids at admission (0 disables). A *TextClassifier additionally
// gets the split-inference path wired: clients may ship locally-pooled
// embeddings instead of raw tokens, and its vocabulary is used when
// vocab is 0.
func (s *PredictServer) RegisterText(name string, m TextPredictor, vocab int) error {
	cfg := serve.TextConfig{Vocab: vocab}
	if tc, ok := m.(*TextClassifier); ok {
		cfg.SplitTail, cfg.SplitDim = tc.ForwardPooled, tc.EmbedDim
		if vocab == 0 {
			cfg.Vocab = tc.Vocab
		}
	}
	return s.backend.RegisterText(name, m, cfg)
}

// RegisterLM serves a language model for next-token scoring under name,
// accepting contexts up to maxContext tokens. A *TransformerLM gets its
// vocabulary validated, maxContext defaulted to its positional-table
// length, and the split-inference path wired (clients ship locally-
// embedded activations). Augmented LMs serve full gathered windows;
// their context length is the augmented window length.
func (s *PredictServer) RegisterLM(name string, m TextPredictor, maxContext int) error {
	cfg := serve.LMConfig{MaxContext: maxContext}
	if tm, ok := m.(*TransformerLM); ok {
		cfg.SplitTail, cfg.SplitDim = tm.ForwardEmbedded, tm.D
		cfg.Vocab = tm.Vocab
		if maxContext == 0 {
			cfg.MaxContext = tm.Cfg.MaxT
		}
	}
	return s.backend.RegisterLM(name, m, cfg)
}

// PredictCVRequest asks for one image classification.
type PredictCVRequest struct {
	// Model names the registered model.
	Model string
	// Image is the flattened c×h×w pixel row.
	Image []float32
}

// PredictTextRequest asks for one text classification. Exactly one of
// Tokens (full-input path) and Pooled (split path: the mean-pooled
// embedding computed client-side, so raw tokens never reach the server)
// must be set.
type PredictTextRequest struct {
	Model  string
	Tokens []int
	Pooled []float32
}

// PredictLMRequest asks for one next-token scoring. Exactly one of
// Context (full-input path) and Activations (split path: SeqLen×D
// locally-embedded activations, row-major) must be set.
type PredictLMRequest struct {
	Model   string
	Context []int
	// TopK asks for the K most probable next tokens (0 means 1).
	TopK        int
	Activations []float32
	SeqLen      int
}

// PredictCV classifies one image, batching it with whatever else is in
// flight.
func (s *PredictServer) PredictCV(req PredictCVRequest) (CVResult, error) {
	return s.backend.PredictCV(req.Model, req.Image)
}

// PredictText classifies one token sequence (or, on the split path, one
// locally-pooled embedding).
func (s *PredictServer) PredictText(req PredictTextRequest) (TextResult, error) {
	if req.Pooled != nil {
		return s.backend.PredictTextSplit(req.Model, req.Pooled)
	}
	return s.backend.PredictText(req.Model, req.Tokens)
}

// PredictLM scores the next token after one context (or, on the split
// path, after locally-embedded activations).
func (s *PredictServer) PredictLM(req PredictLMRequest) (LMResult, error) {
	if req.Activations != nil {
		return s.backend.PredictLMSplit(req.Model, req.Activations, req.SeqLen, req.TopK)
	}
	return s.backend.PredictLM(req.Model, req.Context, req.TopK)
}

// PredictClient is a remote prediction client speaking the wire
// protocol's inference extension, with the same fault tolerance story as
// RemoteTrainer: transient failures — dial errors, dropped connections,
// I/O deadlines, server shutdown, backpressure — are retried with capped
// exponential backoff over a fresh connection. Predictions are
// idempotent (pure eval-mode forwards), so resending is always safe.
// Fatal errors (unknown model, malformed input, protocol skew) are never
// retried. Calls from concurrent goroutines serialize on the one
// underlying connection.
type PredictClient struct {
	addr   string
	pol    RetryPolicy
	sem    chan struct{} // capacity 1: guards conn and jitter
	conn   *cloudsim.InferConn
	jitter *tensor.RNG
}

// NewPredictClient prepares a client for addr; the connection is dialed
// lazily on first use and redialed transparently after transient faults.
// Zero BaseDelay/MaxDelay get the WithRetry defaults (100ms, 5s).
func NewPredictClient(addr string, pol RetryPolicy) *PredictClient {
	if pol.BaseDelay <= 0 {
		pol.BaseDelay = 100 * time.Millisecond
	}
	if pol.MaxDelay <= 0 {
		pol.MaxDelay = 5 * time.Second
	}
	return &PredictClient{
		addr:   addr,
		pol:    pol,
		sem:    make(chan struct{}, 1),
		jitter: tensor.NewRNG(pol.Seed).Split(0x707265646963), // "predic"
	}
}

// Close releases the connection, if one is open.
func (c *PredictClient) Close() error {
	c.sem <- struct{}{}
	defer func() { <-c.sem }()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// do runs one exchange under the retry policy.
func (c *PredictClient) do(ctx context.Context, fn func(*cloudsim.InferConn) error) error {
	c.sem <- struct{}{}
	defer func() { <-c.sem }()
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.attempt(ctx, fn)
		if err == nil {
			return nil
		}
		if !cloudsim.IsTransient(err) {
			return err
		}
		lastErr = err
		if attempt >= c.pol.MaxRetries {
			return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt+1, lastErr)
		}
		if serr := sleepBackoff(ctx, &c.pol, attempt, c.jitter); serr != nil {
			return serr
		}
	}
}

func (c *PredictClient) attempt(ctx context.Context, fn func(*cloudsim.InferConn) error) error {
	if c.conn == nil {
		conn, err := cloudsim.DialInfer(ctx, c.addr, cloudsim.NetConfig{
			DialTimeout:  c.pol.DialTimeout,
			FrameTimeout: c.pol.FrameTimeout,
		})
		if err != nil {
			return err
		}
		c.conn = conn
	}
	if err := fn(c.conn); err != nil {
		if cloudsim.IsTransient(err) {
			// The connection may be torn mid-exchange; the retry loop
			// resends over a fresh dial.
			_ = c.conn.Close()
			c.conn = nil
		}
		return err
	}
	return nil
}

// PredictCV classifies one image on the remote server.
func (c *PredictClient) PredictCV(ctx context.Context, req PredictCVRequest) (CVResult, error) {
	var out CVResult
	err := c.do(ctx, func(conn *cloudsim.InferConn) error {
		res, err := conn.PredictCV(req.Model, [][]float32{req.Image})
		if err != nil {
			return err
		}
		out = res[0]
		return nil
	})
	return out, err
}

// PredictText classifies one token sequence remotely — or, when Pooled
// is set, ships only the locally-pooled embedding (split inference: raw
// tokens never leave this process).
func (c *PredictClient) PredictText(ctx context.Context, req PredictTextRequest) (TextResult, error) {
	var out TextResult
	err := c.do(ctx, func(conn *cloudsim.InferConn) error {
		var res []TextResult
		var err error
		if req.Pooled != nil {
			res, err = conn.PredictTextSplit(req.Model, [][]float32{req.Pooled})
		} else {
			res, err = conn.PredictText(req.Model, [][]int{req.Tokens})
		}
		if err != nil {
			return err
		}
		out = res[0]
		return nil
	})
	return out, err
}

// PredictLM scores the next token after one context remotely — or, when
// Activations is set, ships only locally-embedded activations. Dim for
// the split path is inferred from len(Activations)/SeqLen.
func (c *PredictClient) PredictLM(ctx context.Context, req PredictLMRequest) (LMResult, error) {
	var out LMResult
	err := c.do(ctx, func(conn *cloudsim.InferConn) error {
		var res []LMResult
		var err error
		if req.Activations != nil {
			if req.SeqLen <= 0 || len(req.Activations)%req.SeqLen != 0 {
				return fmt.Errorf("amalgam: %d activations do not divide into %d rows: %w",
					len(req.Activations), req.SeqLen, cloudsim.ErrBadRequest)
			}
			dim := len(req.Activations) / req.SeqLen
			res, err = conn.PredictLMSplit(req.Model, [][]float32{req.Activations}, []int{req.SeqLen}, dim, req.TopK)
		} else {
			res, err = conn.PredictLM(req.Model, [][]int{req.Context}, req.TopK)
		}
		if err != nil {
			return err
		}
		out = res[0]
		return nil
	})
	return out, err
}
