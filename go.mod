module amalgam

go 1.24
