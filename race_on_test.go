//go:build race

package amalgam_test

// raceEnabled lets allocation-count tests skip under the race detector,
// where sync.Pool deliberately drops puts at random and pool-miss counts
// become meaningless.
const raceEnabled = true
