package amalgam

import (
	"fmt"
	"math"

	"amalgam/internal/autodiff"
	"amalgam/internal/cloudsim"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// Language-model re-exports: the paper's third workload (a WikiText-2
// transformer LM trained under model/data obfuscation) is a first-class
// public job, completing the text story next to TextJob.
type (
	// TokenStream is a tokenised LM corpus: one long sequence of token
	// ids (WikiText-2 style). Its N method also satisfies EvalDataset, so
	// a held-out stream rides WithEvalSet.
	TokenStream = data.TokenStream
	// TransformerLM is the paper's WikiText-2 language model.
	TransformerLM = models.TransformerLM
	// TransformerLMConfig parameterises the transformer (d_model, heads,
	// FFN width, layers, positional-table length, dropout).
	TransformerLMConfig = models.TransformerLMConfig
	// TextConfig parameterises GenerateTokenStream.
	TextConfig = data.TextConfig
)

// Synthetic corpus generators and tokenisation (offline stand-ins; see
// DESIGN.md §4).
var (
	// SyntheticWikiText2 returns an n-token WikiText-2 stand-in at the
	// real corpus' vocabulary.
	SyntheticWikiText2 = data.SyntheticWikiText2
	// GenerateTokenStream builds a Markov/Zipfian corpus at any size.
	GenerateTokenStream = data.GenerateTokenStream
	// TokenizeCorpus builds a TokenStream (plus vocabulary) from raw text.
	TokenizeCorpus = data.TokenizeCorpus
	// DefaultTransformerLMConfig returns the paper-scale configuration
	// (d_model 200, 2 heads, 2 layers).
	DefaultTransformerLMConfig = models.DefaultTransformerLMConfig
)

// BuildLMModel constructs the transformer language model with a
// deterministic seed — the LM counterpart of BuildCV/BuildTextClassifier.
// The seed is recorded on the model so a remote job spec can rebuild not
// just the architecture but the dropout streams, keeping local and remote
// training bit-identical even with Dropout > 0.
func BuildLMModel(seed uint64, cfg TransformerLMConfig) *TransformerLM {
	m := models.NewTransformerLM(tensor.NewRNG(seed), cfg)
	m.BuildSeed = seed
	return m
}

// LMJob holds the obfuscated language-modelling artifacts and the secret
// key — the LM concretion of TrainableJob. Ship AugmentedStream and the
// augmented model to the cloud; keep the LMJob.
type LMJob struct {
	Augmented *core.AugmentedTransformerLM
	// AugmentedStream is the obfuscated corpus: every BPTT window of the
	// original stream grown to Key.AugLen tokens with synthetic tokens at
	// the key's secret positions.
	AugmentedStream *TokenStream
	Key             *TextAugKey

	opts Options
}

// ObfuscateTokens augments an LM corpus and wraps the model with decoy
// sub-networks bound to the same key — ObfuscateTokens is to token
// streams what Obfuscate is to images. The stream is processed in BPTT
// windows of bptt tokens (the paper's WikiText-2 pipeline uses 20); each
// window grows to bptt + bptt·Amount tokens, and training batches over
// the augmented windows.
func ObfuscateTokens(model *TransformerLM, stream *TokenStream, bptt int, opts Options) (*LMJob, error) {
	if model.Vocab != stream.Vocab {
		return nil, fmt.Errorf("amalgam: model vocabulary %d does not match stream vocabulary %d", model.Vocab, stream.Vocab)
	}
	if bptt <= 1 {
		return nil, fmt.Errorf("amalgam: BPTT window must be at least 2 tokens, got %d", bptt)
	}
	if len(stream.Tokens) < bptt {
		return nil, fmt.Errorf("amalgam: stream of %d tokens is shorter than one %d-token window", len(stream.Tokens), bptt)
	}
	if bptt-1 > model.Cfg.MaxT {
		return nil, fmt.Errorf("amalgam: BPTT window %d exceeds the model's positional table (MaxT %d)", bptt, model.Cfg.MaxT)
	}
	noise := core.DefaultTextNoise(stream.Vocab)
	if opts.Noise != nil {
		noise = *opts.Noise
	}
	aug, err := core.AugmentTokenStream(stream, core.TextAugmentOptions{
		Amount: opts.Amount, WindowLen: bptt, Noise: noise, Seed: opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("amalgam: stream augmentation: %w", err)
	}
	am, err := core.AugmentTransformerLM(model, aug.Key, core.ModelAugmentOptions{
		Amount: opts.Amount, SubNets: opts.SubNets, Seed: opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("amalgam: model augmentation: %w", err)
	}
	opts.SubNets = len(am.Decoys) // record the resolved decoy count
	return &LMJob{
		Augmented:       am,
		AugmentedStream: aug.Stream,
		Key:             aug.Key,
		opts:            opts,
	}, nil
}

// ObfuscateTestStream augments a held-out stream with the job's key so
// the augmented model can be validated cloud-side (§5.4).
func (j *LMJob) ObfuscateTestStream(ds *TokenStream, seed uint64) (*TokenStream, error) {
	if ds.Vocab != j.Augmented.Orig.Vocab {
		return nil, fmt.Errorf("amalgam: eval stream vocabulary %d does not match the job's %d",
			ds.Vocab, j.Augmented.Orig.Vocab)
	}
	noise := core.DefaultTextNoise(ds.Vocab)
	if j.opts.Noise != nil {
		noise = *j.opts.Noise
	}
	return core.AugmentTokenStreamWithKey(ds, j.Key, noise, seed)
}

// ops adapts the LM job to the Trainer machinery.
func (j *LMJob) ops() *jobOps {
	am := j.Augmented
	ws := j.AugmentedStream.WindowSet(j.Key.AugLen)
	return &jobOps{
		kind: "augmented-lm",
		engine: &cloudsim.Engine{
			Model:      am,
			N:          ws.N(),
			Step:       cloudsim.LMStep(am, ws),
			TrainAcc:   func(batch int) float64 { return cloudsim.LMAccuracy(am, ws, batch) },
			Perplexity: true,
		},
		defaultSeed: j.opts.Seed,
		makeEval: func(eds EvalDataset) (func(int) float64, func(*cloudsim.TrainRequest), error) {
			ts, ok := eds.(*TokenStream)
			if !ok {
				return nil, nil, fmt.Errorf("amalgam: LM job eval set must be *TokenStream, got %T", eds)
			}
			augEval, err := j.ObfuscateTestStream(ts, j.opts.Seed^evalSeedSalt)
			if err != nil {
				return nil, nil, err
			}
			ews := augEval.WindowSet(j.Key.AugLen)
			if ews.N() == 0 {
				return nil, nil, fmt.Errorf("amalgam: eval stream of %d tokens is shorter than one %d-token window",
					len(ts.Tokens), j.Key.OrigLen)
			}
			acc := func(batch int) float64 { return cloudsim.LMAccuracy(am, ews, batch) }
			attach := func(req *cloudsim.TrainRequest) {
				req.EvalSamples = ews.Windows
			}
			return acc, attach, nil
		},
		request: func() (*cloudsim.TrainRequest, error) {
			cfg := am.Orig.Cfg
			spec := cloudsim.ModelSpec{
				Kind:  "augmented-lm",
				Vocab: cfg.Vocab, ModelSeed: am.Orig.BuildSeed,
				LMDim: cfg.D, LMHeads: cfg.Heads, LMFF: cfg.FF,
				LMLayers: cfg.Layers, LMMaxT: cfg.MaxT, LMDropout: float64(cfg.Dropout),
				LMGELUFF: cfg.GELUFF,
				OrigLen:  j.Key.OrigLen, AugLen: j.Key.AugLen, KeyKeep: j.Key.Keep,
				AugAmount: j.opts.Amount, SubNets: len(am.Decoys), AugSeed: j.opts.Seed,
			}
			return &cloudsim.TrainRequest{
				Spec:      spec,
				Samples:   ws.Windows,
				InitState: nn.StateDict(am),
			}, nil
		},
		loadState: func(dict map[string]*tensor.Tensor) error {
			if err := nn.LoadStateDict(am, dict); err != nil {
				return fmt.Errorf("amalgam: loading trained weights: %w", err)
			}
			return nil
		},
	}
}

// ExtractLM builds a fresh language model with the original architecture
// and copies the trained original weights into it (§4.3), verified
// bit-for-bit.
func (j *LMJob) ExtractLM(seed uint64) (*TransformerLM, error) {
	fresh := BuildLMModel(seed, j.Augmented.Orig.Cfg)
	if err := j.ExtractLMInto(fresh); err != nil {
		return nil, err
	}
	return fresh, nil
}

// ExtractLMInto copies the trained original weights into a user-provided
// fresh model and verifies the copy bit-for-bit.
func (j *LMJob) ExtractLMInto(fresh *TransformerLM) error {
	if err := core.Extract(j.Augmented, fresh); err != nil {
		return err
	}
	return core.VerifyExtraction(j.Augmented, fresh)
}

// Perplexity scores the job's original sub-network on a held-out stream:
// the stream is obfuscated with the job key (ObfuscateTestStream), and
// the mean next-token cross-entropy over its windows is exponentiated —
// the LM form of §5.4's augmented-test-set validation.
func (j *LMJob) Perplexity(ds *TokenStream, batch int) (float64, error) {
	aug, err := j.ObfuscateTestStream(ds, j.opts.Seed^evalSeedSalt)
	if err != nil {
		return 0, err
	}
	ws := aug.WindowSet(j.Key.AugLen)
	if ws.N() == 0 {
		return 0, fmt.Errorf("amalgam: stream of %d tokens is shorter than one %d-token window", len(ds.Tokens), j.Key.OrigLen)
	}
	if batch <= 0 {
		batch = 1
	}
	am := j.Augmented
	prev := am.Training()
	am.SetTraining(false)
	defer am.SetTraining(prev)
	perWindow := j.Key.OrigLen - 1
	var sum float64
	tokens := 0
	for _, idx := range data.BatchIter(ws.N(), batch, nil) {
		wins := ws.Batch(idx)
		l := am.ValidateLoss(wins)
		n := len(wins) * perWindow
		sum += float64(l.Scalar()) * float64(n)
		tokens += n
		autodiff.Release(l)
	}
	return math.Exp(sum / float64(tokens)), nil
}
