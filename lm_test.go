package amalgam_test

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"amalgam"
	"amalgam/internal/nn"
)

// lmConfig is a deliberately small transformer — but with Dropout > 0, so
// the tests also pin that the dropout streams are reproduced server-side
// (spec ModelSeed), not just the graph.
func lmConfig(vocab int) amalgam.TransformerLMConfig {
	return amalgam.TransformerLMConfig{
		Vocab: vocab, D: 16, Heads: 2, FF: 16, Layers: 1, MaxT: 32, Dropout: 0.1,
	}
}

// mkLMJob builds a deterministic small LM job; calling it twice yields two
// independent but identical jobs.
func mkLMJob(t *testing.T) *amalgam.LMJob {
	t.Helper()
	const vocab, bptt = 300, 12
	stream := amalgam.GenerateTokenStream(amalgam.TextConfig{Name: "wt", Tokens: 480, Vocab: vocab, Seed: 1})
	model := amalgam.BuildLMModel(3, lmConfig(vocab))
	job, err := amalgam.ObfuscateTokens(model, stream, bptt, amalgam.Options{Amount: 0.5, SubNets: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// TestLMRoundTripLocalVsRemote is the tentpole acceptance path:
// ObfuscateTokens → RemoteTrainer → ExtractLM, with per-epoch perplexity
// streamed over the wire, and the extracted weights bit-identical to the
// same job trained locally — including the dropout randomness.
func TestLMRoundTripLocalVsRemote(t *testing.T) {
	addr := startServer(t)
	cfg := amalgam.TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.1, Momentum: 0.9}

	var remoteStats []amalgam.EpochStats
	remote := mkLMJob(t)
	_, err := amalgam.Train(context.Background(), amalgam.RemoteTrainer{Addr: addr}, remote, cfg,
		amalgam.WithProgress(func(s amalgam.EpochStats) { remoteStats = append(remoteStats, s) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(remoteStats) != cfg.Epochs {
		t.Fatalf("streamed %d progress events, want %d", len(remoteStats), cfg.Epochs)
	}
	for _, s := range remoteStats {
		if s.Perplexity <= 0 {
			t.Fatalf("epoch %d carries no perplexity", s.Epoch)
		}
		if got, want := s.Perplexity, math.Exp(s.Loss); math.Abs(got-want) > 1e-9*want {
			t.Fatalf("epoch %d perplexity %v, want exp(loss)=%v", s.Epoch, got, want)
		}
	}

	local := mkLMJob(t)
	localStats, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, local, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range localStats {
		if localStats[i].Loss != remoteStats[i].Loss {
			t.Fatalf("epoch %d: local loss %v, remote loss %v", i+1, localStats[i].Loss, remoteStats[i].Loss)
		}
	}

	a, err := remote.ExtractLM(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := local.ExtractLM(3)
	if err != nil {
		t.Fatal(err)
	}
	da, db := nn.StateDict(a), nn.StateDict(b)
	for name, src := range da {
		if !db[name].Equal(src) {
			t.Fatalf("remote vs local LM training diverged at %q", name)
		}
	}
}

// TestLMGELUFFRemoteBitIdentical pins the GELU feed-forward variant
// (TransformerLMConfig.GELUFF, fused LinearGELU epilogue) across the
// wire: the lm_gelu_ff spec field must reach the server-side rebuild, so
// remote training of a GELU-FF model stays bit-identical to local — and
// measurably different from the default ReLU FF (guarding against the
// flag silently not reaching the model).
func TestLMGELUFFRemoteBitIdentical(t *testing.T) {
	addr := startServer(t)
	cfg := amalgam.TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.1}

	mk := func(gelu bool) *amalgam.LMJob {
		t.Helper()
		const vocab, bptt = 300, 12
		stream := amalgam.GenerateTokenStream(amalgam.TextConfig{Name: "wt", Tokens: 480, Vocab: vocab, Seed: 1})
		c := lmConfig(vocab)
		c.GELUFF = gelu
		model := amalgam.BuildLMModel(3, c)
		job, err := amalgam.ObfuscateTokens(model, stream, bptt, amalgam.Options{Amount: 0.5, SubNets: 2, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return job
	}

	remote := mk(true)
	remoteStats, err := amalgam.Train(context.Background(), amalgam.RemoteTrainer{Addr: addr}, remote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	local := mk(true)
	localStats, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, local, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range localStats {
		if localStats[i].Loss != remoteStats[i].Loss {
			t.Fatalf("epoch %d: GELU-FF local loss %v, remote loss %v", i+1, localStats[i].Loss, remoteStats[i].Loss)
		}
	}
	da := nn.StateDict(mustExtractLM(t, remote))
	db := nn.StateDict(mustExtractLM(t, local))
	for name, src := range da {
		if !db[name].Equal(src) {
			t.Fatalf("GELU-FF remote vs local training diverged at %q", name)
		}
	}

	relu := mk(false)
	reluStats, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, relu, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reluStats[len(reluStats)-1].Loss == localStats[len(localStats)-1].Loss {
		t.Fatal("GELU FF trained identically to ReLU FF — the flag is not reaching the model")
	}
}

func mustExtractLM(t *testing.T, j *amalgam.LMJob) *amalgam.TransformerLM {
	t.Helper()
	m, err := j.ExtractLM(3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestLMEvalSetAndPerplexity runs an LM job with a held-out stream and
// checks next-token eval accuracy arrives per epoch, locally and remotely
// with identical values, and that job.Perplexity scores the same split.
func TestLMEvalSetAndPerplexity(t *testing.T) {
	addr := startServer(t)
	val := amalgam.GenerateTokenStream(amalgam.TextConfig{Name: "wt-val", Tokens: 120, Vocab: 300, Seed: 2})
	cfg := amalgam.TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.1}

	local := mkLMJob(t)
	localStats, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, local, cfg,
		amalgam.WithEvalSet(val))
	if err != nil {
		t.Fatal(err)
	}
	remote := mkLMJob(t)
	remoteStats, err := amalgam.Train(context.Background(), amalgam.RemoteTrainer{Addr: addr}, remote, cfg,
		amalgam.WithEvalSet(val))
	if err != nil {
		t.Fatal(err)
	}
	for i := range localStats {
		if !localStats[i].HasEval {
			t.Fatalf("epoch %d missing eval accuracy", i+1)
		}
		if localStats[i].EvalAccuracy != remoteStats[i].EvalAccuracy {
			t.Fatalf("epoch %d: local eval %v, remote eval %v",
				i+1, localStats[i].EvalAccuracy, remoteStats[i].EvalAccuracy)
		}
	}
	pp, err := local.Perplexity(val, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pp <= 1 || math.IsInf(pp, 0) || math.IsNaN(pp) {
		t.Fatalf("held-out perplexity %v out of range", pp)
	}

	// A foreign-vocabulary eval stream must error, not index-panic in the
	// embedding lookup.
	alien := amalgam.GenerateTokenStream(amalgam.TextConfig{Name: "alien", Tokens: 120, Vocab: 9999, Seed: 3})
	if _, err := local.Perplexity(alien, 8); err == nil {
		t.Fatal("vocab-mismatched eval stream must be rejected")
	}
	if _, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, mkLMJob(t),
		amalgam.TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.1},
		amalgam.WithEvalSet(alien)); err == nil {
		t.Fatal("vocab-mismatched WithEvalSet must be rejected")
	}
}

// TestUnpinnedSubNetsRemoteBitIdentical pins the SubNets bugfix: a job
// built with SubNets: 0 (the paper-default random draw) used to perturb
// the augmentation RNG stream differently client- vs server-side, so
// remote rebuilds only matched when SubNets was pinned. The draw is now
// resolved before augmentation, outside the stream, and the spec carries
// the resolved count — remote training must be bit-identical with no
// client-side pinning.
func TestUnpinnedSubNetsRemoteBitIdentical(t *testing.T) {
	addr := startServer(t)
	cfg := amalgam.TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.5, Momentum: 0.9}
	mk := func() *amalgam.TextJob {
		t.Helper()
		train := amalgam.GenerateClassifiedText(amalgam.ClassTextConfig{
			Name: "t", N: 32, SeqLen: 24, Vocab: 500, Classes: 4, Seed: 1})
		model := amalgam.BuildTextClassifier(3, 500, 16, 4)
		job, err := amalgam.ObfuscateText(model, train, amalgam.Options{Amount: 0.5, SubNets: 0, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return job
	}
	local := mk()
	if n := len(local.Augmented.Decoys); n < 2 || n > 4 {
		t.Fatalf("resolved decoy count %d outside [2,4]", n)
	}
	if _, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, local, cfg); err != nil {
		t.Fatal(err)
	}
	remote := mk()
	if _, err := amalgam.Train(context.Background(), amalgam.RemoteTrainer{Addr: addr}, remote, cfg); err != nil {
		t.Fatal(err)
	}
	a, err := local.ExtractText(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := remote.ExtractText(3)
	if err != nil {
		t.Fatal(err)
	}
	da, db := nn.StateDict(a), nn.StateDict(b)
	for name, src := range da {
		if !db[name].Equal(src) {
			t.Fatalf("unpinned-SubNets remote training diverged at %q", name)
		}
	}
}

// TestMomentumResumeBitIdenticalLocal pins the momentum-checkpoint
// bugfix end to end: with Momentum > 0, train-2-epochs → checkpoint →
// resume-2-more must produce exactly the weights of an uninterrupted
// 4-epoch run (velocity restarts used to make it merely convergent).
func TestMomentumResumeBitIdenticalLocal(t *testing.T) {
	cfg := amalgam.TrainConfig{Epochs: 4, BatchSize: 8, LR: 0.5, Momentum: 0.9}

	straight := mkTextJob(t)
	if _, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, straight, cfg); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "job.amc")
	split := mkTextJob(t)
	half := cfg
	half.Epochs = 2
	if _, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, split, half,
		amalgam.WithCheckpoint(ckpt, 1)); err != nil {
		t.Fatal(err)
	}
	resumed := mkTextJob(t)
	if _, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, resumed, cfg,
		amalgam.WithResume(ckpt)); err != nil {
		t.Fatal(err)
	}

	a, err := straight.ExtractText(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := resumed.ExtractText(3)
	if err != nil {
		t.Fatal(err)
	}
	da, db := nn.StateDict(a), nn.StateDict(b)
	for name, src := range da {
		if !db[name].Equal(src) {
			t.Fatalf("momentum resume diverged from straight run at %q", name)
		}
	}
}

// TestMomentumResumeBitIdenticalRemote is the same pin across the wire:
// the optimiser state rides checkpoint frames back to the client and the
// resume request ships it to the service.
func TestMomentumResumeBitIdenticalRemote(t *testing.T) {
	addr := startServer(t)
	cfg := amalgam.TrainConfig{Epochs: 4, BatchSize: 8, LR: 0.5, Momentum: 0.9}

	straight := mkTextJob(t)
	if _, err := amalgam.Train(context.Background(), amalgam.RemoteTrainer{Addr: addr}, straight, cfg); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "job.amc")
	split := mkTextJob(t)
	half := cfg
	half.Epochs = 2
	if _, err := amalgam.Train(context.Background(), amalgam.RemoteTrainer{Addr: addr}, split, half,
		amalgam.WithCheckpoint(ckpt, 1)); err != nil {
		t.Fatal(err)
	}
	resumed := mkTextJob(t)
	if _, err := amalgam.Train(context.Background(), amalgam.RemoteTrainer{Addr: addr}, resumed, cfg,
		amalgam.WithResume(ckpt)); err != nil {
		t.Fatal(err)
	}

	a, err := straight.ExtractText(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := resumed.ExtractText(3)
	if err != nil {
		t.Fatal(err)
	}
	da, db := nn.StateDict(a), nn.StateDict(b)
	for name, src := range da {
		if !db[name].Equal(src) {
			t.Fatalf("remote momentum resume diverged from straight run at %q", name)
		}
	}
}

// TestCheckpointKindMismatchRejected pins the extraction-path bugfix: a
// checkpoint records its job kind, and loading it into a job of another
// modality fails with ErrCheckpointKind — up front, instead of a shape
// failure (or panic) deep in the state-dict load.
func TestCheckpointKindMismatchRejected(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "text.amc")
	text := mkTextJob(t)
	if _, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, text,
		amalgam.TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.5},
		amalgam.WithCheckpoint(ckpt, 1)); err != nil {
		t.Fatal(err)
	}

	// WithResume into a CV job.
	cv := mkCVJob(t, 5)
	_, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, cv,
		amalgam.TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.05},
		amalgam.WithResume(ckpt))
	if !errors.Is(err, amalgam.ErrCheckpointKind) {
		t.Fatalf("CV resume from a text checkpoint: want ErrCheckpointKind, got %v", err)
	}

	// Direct LoadCheckpoint into an LM job (the extract-from-checkpoint
	// path used before ExtractLM).
	lm := mkLMJob(t)
	if _, err := amalgam.LoadCheckpoint(lm, ckpt); !errors.Is(err, amalgam.ErrCheckpointKind) {
		t.Fatalf("LM load of a text checkpoint: want ErrCheckpointKind, got %v", err)
	}

	// The matching job loads it fine and extracts.
	fresh := mkTextJob(t)
	epoch, err := amalgam.LoadCheckpoint(fresh, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("checkpoint records %d epochs, want 1", epoch)
	}
	if _, err := fresh.ExtractText(3); err != nil {
		t.Fatal(err)
	}
}

// TestLMCheckpointResume exercises WithCheckpoint/WithResume on the LM
// modality itself (kind "augmented-lm" recorded, resume continues at the
// right epoch and extracts cleanly).
func TestLMCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "lm.amc")
	job := mkLMJob(t)
	if _, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, job,
		amalgam.TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.1, Momentum: 0.9},
		amalgam.WithCheckpoint(ckpt, 1)); err != nil {
		t.Fatal(err)
	}
	resumed := mkLMJob(t)
	stats, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, resumed,
		amalgam.TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.1, Momentum: 0.9},
		amalgam.WithResume(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Epoch != 2 {
		t.Fatalf("LM resume ran %+v", stats)
	}
	if _, err := resumed.ExtractLM(3); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkLMJobTrainEpoch is the bench-smoke entry for the LM workload:
// one local epoch of an obfuscated LM job through the public API.
func BenchmarkLMJobTrainEpoch(b *testing.B) {
	const vocab, bptt = 300, 12
	stream := amalgam.GenerateTokenStream(amalgam.TextConfig{Name: "wt", Tokens: 480, Vocab: vocab, Seed: 1})
	cfg := amalgam.TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.1, Momentum: 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		model := amalgam.BuildLMModel(3, lmConfig(vocab))
		job, err := amalgam.ObfuscateTokens(model, stream, bptt, amalgam.Options{Amount: 0.5, SubNets: 2, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := amalgam.Train(context.Background(), amalgam.LocalTrainer{}, job, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
