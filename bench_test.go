package amalgam_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates the corresponding rows/series via the experiments harness;
// the printed output (first iteration only) is the artifact EXPERIMENTS.md
// records. Run: go test -bench=. -benchmem
//
// Scale: quick-scale synthetic data (see internal/experiments); shapes —
// orderings, monotone growth, curve coincidence — reproduce the paper,
// absolute times do not (CPU vs 2×RTX 3090).

import (
	"io"
	"os"
	"sync"
	"testing"

	"amalgam/internal/experiments"
)

// benchWriter prints to stdout exactly once per benchmark name so the
// tables land in bench_output.txt without repeating b.N times.
var benchOnce sync.Map

func out(b *testing.B) io.Writer {
	if _, loaded := benchOnce.LoadOrStore(b.Name(), true); loaded {
		return io.Discard
	}
	return os.Stdout
}

func quick() experiments.Scale {
	return experiments.Scale{TrainN: 16, TestN: 8, Epochs: 1, BatchSize: 8, LR: 0.05}
}

// floor is the minimal scale used for the heaviest models (VGG-16,
// DenseNet, MobileNet, CBAM) so the default bench run stays tractable;
// cmd/amalgam-bench -full runs them at larger scales.
func floor() experiments.Scale {
	return experiments.Scale{TrainN: 8, TestN: 4, Epochs: 1, BatchSize: 8, LR: 0.05}
}

func BenchmarkTable1Qualitative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(out(b))
	}
}

func BenchmarkTable2DatasetAugmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(out(b), true)
	}
}

func BenchmarkTable3CVTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(out(b), []string{"mnist"}, []string{"lenet", "resnet18"}, quick())
	}
}

func BenchmarkTable3CVTrainingAllModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(out(b), []string{"mnist"}, []string{"vgg16", "densenet121", "mobilenetv2"}, floor())
	}
}

func BenchmarkTable4NLPTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4(out(b), quick())
	}
}

func BenchmarkFig5to7ResNetCurves(b *testing.B) {
	// Amount sweep {0,50%} per dataset keeps the default run tractable;
	// cmd/amalgam-bench -full runs the full {0,25,50,75,100}% sweep.
	for i := 0; i < b.N; i++ {
		w := out(b)
		for _, ds := range []string{"mnist", "cifar10", "cifar100"} {
			experiments.CVCurves(w, "resnet18", ds, quick(), []float64{0, 0.5})
		}
	}
}

func BenchmarkFig8to10VGGCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := out(b)
		for _, ds := range []string{"mnist", "cifar10", "cifar100"} {
			experiments.CVCurves(w, "vgg16", ds, floor(), []float64{0, 0.5})
		}
	}
}

func BenchmarkFigA1DenseNetMobileNetCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := out(b)
		for _, m := range []string{"densenet121", "mobilenetv2"} {
			experiments.CVCurves(w, m, "mnist", floor(), []float64{0, 0.5})
		}
	}
}

func BenchmarkFig11TransformerCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11TransformerCurves(out(b), quick(), []float64{0, 0.5, 1.0})
	}
}

func BenchmarkFig12TextClassifierCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig12TextClassifierCurves(out(b), quick(), []float64{0, 0.5, 1.0})
	}
}

func BenchmarkFig13TransferLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig13TransferLearning(out(b), floor(), []float64{0, 0.5})
	}
}

func BenchmarkFig14FrameworkComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig14FrameworkComparison(out(b), quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15PrivacyLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig15PrivacyLoss(out(b))
	}
}

func BenchmarkFig16GradientLeakage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig16GradientLeakage(out(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17SHAPDistortion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig17SHAPDistortion(out(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18DenoisingAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig18DenoisingAttack(out(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteForceAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.BruteForce(out(b))
	}
}

func BenchmarkSubnetIdentification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.SubnetIdentification(out(b), 3); err != nil {
			b.Fatal(err)
		}
	}
}
