package amalgam

import (
	"context"
	"fmt"
	"sync"

	"amalgam/internal/cloudsim"
	"amalgam/internal/serialize"
	"amalgam/internal/tensor"
)

// JobID durably identifies a job scheduled on a remote service. IDs stay
// valid for the server's lifetime — across client disconnects, reconnects,
// and process restarts on the client side — so a submitter can exit and a
// different process can Poll or Attach later.
type JobID string

// JobInfo is a point-in-time observation of one scheduled job, as
// returned by Poll and Cancel.
type JobInfo struct {
	ID     JobID
	Tenant string
	// State is "queued", "running", "done", "cancelled", or "failed".
	State string
	// CompletedEpochs counts fully finished epochs so far — live while
	// the job runs, final afterwards.
	CompletedEpochs int
	// QueuePos is the job's 1-based position within its tenant's queue
	// while queued; 0 once dispatched.
	QueuePos int
	// Err holds the failure message of a failed job.
	Err string
}

// Done reports whether the job has reached a terminal state.
func (i JobInfo) Done() bool {
	return i.State == "done" || i.State == "cancelled" || i.State == "failed"
}

// Submit ships a job to the service's scheduler and returns its durable
// JobID without waiting for training: the connection ends at the ack, the
// job queues under the trainer's Tenant, and a bounded executor pool runs
// it to completion whether or not any client is watching. Retrieve output
// with Poll (status) and Attach (stats stream + final weights).
//
// Admission control can reject a Submit with cloudsim.ErrQueueFull (the
// service's global queue is at capacity) or cloudsim.ErrTenantQuota (this
// tenant already holds its share of slots); both are transient, so
// WithRetry re-submits them with backoff. WithCheckpoint and WithEvalSet
// configure the job server-side (checkpoint cadence, per-epoch eval);
// WithResume seeds the shipped initial state from a local checkpoint.
// WithProgress is an Attach-time concern and is ignored here.
func (t RemoteTrainer) Submit(ctx context.Context, job TrainableJob, cfg TrainConfig, opts ...TrainOption) (JobID, error) {
	o := job.ops()
	ro, start, err := prepareRun(cfg, o, opts)
	if err != nil {
		return "", err
	}
	req, err := o.request()
	if err != nil {
		return "", err
	}
	req.InitOptState = ro.resumeOptState
	req.InitRNG = ro.resumeRNG
	if ro.evalSet != nil {
		_, attach, err := o.makeEval(ro.evalSet)
		if err != nil {
			return "", err
		}
		attach(req)
	}
	req.Hyper = hyperFor(cfg, ro, start)
	req.Hyper.Stream = true
	req.Spec.Tenant = t.Tenant

	if ro.retry == nil {
		id, err := cloudsim.SubmitContext(ctx, t.Addr, req, cloudsim.NetConfig{})
		return JobID(id), err
	}
	pol := *ro.retry
	netCfg := cloudsim.NetConfig{DialTimeout: pol.DialTimeout, FrameTimeout: pol.FrameTimeout}
	jitter := tensor.NewRNG(pol.Seed)
	var lastErr error
	for attempt := 0; ; attempt++ {
		id, err := cloudsim.SubmitContext(ctx, t.Addr, req, netCfg)
		if err == nil {
			return JobID(id), nil
		}
		if !cloudsim.IsTransient(err) {
			return "", err
		}
		lastErr = err
		if attempt >= pol.MaxRetries {
			return "", fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt+1, lastErr)
		}
		if err := sleepBackoff(ctx, &pol, attempt, jitter); err != nil {
			return "", err
		}
	}
}

// Poll fetches a scheduled job's status over a short-lived connection. An
// ID the service never issued fails with cloudsim.ErrUnknownJob.
func (t RemoteTrainer) Poll(ctx context.Context, id JobID) (JobInfo, error) {
	st, err := cloudsim.PollContext(ctx, t.Addr, string(id), cloudsim.NetConfig{})
	if err != nil {
		return JobInfo{}, err
	}
	return jobInfoOf(st), nil
}

// Cancel asks the scheduler to stop a job: a running job halts at its
// next epoch boundary (its epoch-aligned partial result stays
// attachable), a queued job terminates cancelled without training.
// Cancelling a finished job is a no-op. The returned JobInfo is the
// post-cancel observation — the job may still read "running" while it
// drains to the boundary.
func (t RemoteTrainer) Cancel(ctx context.Context, id JobID) (JobInfo, error) {
	st, err := cloudsim.CancelJobContext(ctx, t.Addr, string(id), cloudsim.NetConfig{})
	if err != nil {
		return JobInfo{}, err
	}
	return jobInfoOf(st), nil
}

func jobInfoOf(st cloudsim.JobStatus) JobInfo {
	return JobInfo{
		ID: JobID(st.JobID), Tenant: st.Tenant, State: st.State,
		CompletedEpochs: st.CompletedEpochs, QueuePos: st.QueuePos, Err: st.Err,
	}
}

// Attach subscribes to a job previously scheduled with Submit and streams
// its stats exactly like Run: buffered epochs replay first (each epoch's
// stats are delivered exactly once, even across retried attaches), live
// epochs follow, and when the job completes its final weights are loaded
// back into job's model — so Extract works afterwards just as it does
// after Run. job must be the same job (or an identical rebuild) that was
// submitted; the service streams only what that job's spec produced.
//
// Cancelling ctx cancels the JOB, mirroring Run. Dropping the connection
// without cancelling (e.g. the process dies) merely detaches: the job
// keeps training server-side and a later Attach picks up where this one
// left off. With WithRetry, a connection fault mid-stream re-attaches
// with backoff, resuming from the last epoch already delivered.
// WithCheckpoint saves streamed snapshots locally at its cadence, bounded
// below by the cadence the job was submitted with.
func (t RemoteTrainer) Attach(ctx context.Context, job TrainableJob, id JobID, opts ...TrainOption) (<-chan EpochStats, error) {
	o := job.ops()
	ro := &runOptions{}
	for _, fn := range opts {
		fn(ro)
	}
	push, closePump, out := statsPump()
	go func() {
		defer closePump()
		resp, err := t.attachRemote(ctx, ro, string(id), push)
		if err != nil {
			push(EpochStats{Err: err})
			return
		}
		if err := o.loadState(resp.State); err != nil {
			push(EpochStats{Err: err})
			return
		}
		finishRunEmit(ctx, push, ro, o.kind, resp)
	}()
	return out, nil
}

// attachRemote drives one attach stream, re-attaching on transient faults
// under the run's RetryPolicy. FromEpoch carries the last epoch already
// delivered, so the server's replay starts exactly after it.
func (t RemoteTrainer) attachRemote(ctx context.Context, ro *runOptions, id string, push func(EpochStats)) (*cloudsim.TrainResponse, error) {
	progress := ro.emitTo(push)
	lastEmitted := 0
	h := cloudsim.StreamHandlers{
		Progress: func(m cloudsim.EpochMetric) {
			if m.Epoch > lastEmitted {
				lastEmitted = m.Epoch
				_ = progress(m)
			}
		},
	}
	if ro.checkpointPath != "" {
		h.Checkpoint = func(ck *serialize.TrainCheckpoint) {
			if ro.checkpointEvery <= 1 || ck.Epoch%ro.checkpointEvery == 0 {
				_ = serialize.SaveTrainCheckpoint(ro.checkpointPath, ck)
			}
		}
	}
	if ro.retry == nil {
		return cloudsim.AttachContext(ctx, t.Addr, cloudsim.AttachRequest{JobID: id}, h, cloudsim.NetConfig{})
	}
	pol := *ro.retry
	netCfg := cloudsim.NetConfig{DialTimeout: pol.DialTimeout, FrameTimeout: pol.FrameTimeout}
	jitter := tensor.NewRNG(pol.Seed)
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := cloudsim.AttachContext(ctx, t.Addr,
			cloudsim.AttachRequest{JobID: id, FromEpoch: lastEmitted}, h, netCfg)
		if err == nil {
			return resp, nil
		}
		if !cloudsim.IsTransient(err) {
			return nil, err
		}
		lastErr = err
		if attempt >= pol.MaxRetries {
			return nil, fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt+1, lastErr)
		}
		if err := sleepBackoff(ctx, &pol, attempt, jitter); err != nil {
			return nil, err
		}
	}
}

// statsPump bridges a producer that must never block (the wire read loop)
// to a consumer channel of unknown demand: pushes land in an unbounded
// buffer drained by a forwarding goroutine. Run sizes its channel from
// cfg.Epochs; Attach doesn't know the job's epoch count, hence the pump.
func statsPump() (push func(EpochStats), closePump func(), out <-chan EpochStats) {
	ch := make(chan EpochStats)
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	var buf []EpochStats
	closed := false
	go func() {
		for {
			mu.Lock()
			for len(buf) == 0 && !closed {
				cond.Wait()
			}
			if len(buf) == 0 {
				mu.Unlock()
				close(ch)
				return
			}
			st := buf[0]
			buf = buf[1:]
			mu.Unlock()
			ch <- st
		}
	}()
	push = func(st EpochStats) {
		mu.Lock()
		buf = append(buf, st)
		mu.Unlock()
		cond.Signal()
	}
	closePump = func() {
		mu.Lock()
		closed = true
		mu.Unlock()
		cond.Signal()
	}
	return push, closePump, ch
}
