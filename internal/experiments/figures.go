package experiments

import (
	"fmt"
	"io"

	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// CurveAmounts are the augmentation amounts plotted in Figs. 5–13
// (0% is the original-training reference curve).
var CurveAmounts = []float64{0, 0.25, 0.5, 0.75, 1.0}

// CVCurves reproduces one of Figs. 5–10/13: per-epoch train/val loss and
// accuracy for the given model on the given dataset, one series per
// augmentation amount. The paper's claim is that all series coincide with
// the 0% reference; the printed MaxValAccGap quantifies it.
func CVCurves(w io.Writer, modelName, dsName string, sc Scale, amounts []float64) {
	fmt.Fprintf(w, "Figure series: %s on %s (train/val loss+accuracy per epoch)\n", modelName, dsName)
	train := datasetByName(dsName, sc.TrainN, 3)
	test := datasetByName(dsName, sc.TestN, 4)
	cfg := models.CVConfig{InC: train.C(), InH: train.H(), InW: train.W(), Classes: train.Classes}

	var ref RunResult
	var runs []RunResult
	for _, a := range amounts {
		if a == 0 {
			m, err := models.BuildCV(modelName, tensor.NewRNG(7), cfg)
			if err != nil {
				fmt.Fprintln(w, err)
				return
			}
			ref = TrainCV(m, train, test, sc, "0%")
			runs = append(runs, ref)
			continue
		}
		aug, err := core.AugmentImages(train, core.ImageAugmentOptions{Amount: a, Noise: core.DefaultImageNoise(), Seed: 11})
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		augTest, err := core.AugmentImagesWithKey(test, aug.Key, core.DefaultImageNoise(), 12)
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		m, err := models.BuildCV(modelName, tensor.NewRNG(7), cfg)
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		am, err := core.AugmentCVModel(m, aug.Key, cfg.InC, cfg.Classes, core.ModelAugmentOptions{Amount: a, SubNets: 3, Seed: 13})
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		runs = append(runs, TrainAugmentedCV(am, aug.Dataset, augTest, sc, pct(a)))
	}
	printCurves(w, runs)
	fmt.Fprintf(w, "MaxValAccGap vs 0%%: %.4f (coincide ⇒ ≈0; identical seeds give exactly 0)\n", maxValAccGap(ref, runs))
}

// printCurves emits one row per (series, epoch).
func printCurves(w io.Writer, runs []RunResult) {
	fmt.Fprintf(w, "%-8s %-6s %-11s %-10s %-11s %-10s\n", "series", "epoch", "trainLoss", "trainAcc", "valLoss", "valAcc")
	for _, r := range runs {
		for _, p := range r.Points {
			fmt.Fprintf(w, "%-8s %-6d %-11.4f %-10.4f %-11.4f %-10.4f\n", r.Label, p.Epoch, p.TrainLoss, p.TrainAcc, p.ValLoss, p.ValAcc)
		}
	}
}

func maxValAccGap(ref RunResult, runs []RunResult) float64 {
	var gap float64
	for _, r := range runs {
		for i, p := range r.Points {
			if i < len(ref.Points) {
				d := p.ValAcc - ref.Points[i].ValAcc
				if d < 0 {
					d = -d
				}
				if d > gap {
					gap = d
				}
			}
		}
	}
	return gap
}

// Fig11TransformerCurves reproduces the transformer LM loss curves.
func Fig11TransformerCurves(w io.Writer, sc Scale, amounts []float64) {
	fmt.Fprintln(w, "Figure 11: transformer LM train/val loss on wikitext2-like stream")
	const window = 20
	vocab := 2000
	trainStream := data.GenerateTokenStream(data.TextConfig{Name: "wt2", Tokens: sc.TrainN * window * 4, Vocab: vocab, Seed: 5})
	valStream := data.GenerateTokenStream(data.TextConfig{Name: "wt2v", Tokens: sc.TestN * window * 2, Vocab: vocab, Seed: 6})
	lmCfg := models.TransformerLMConfig{Vocab: vocab, D: 64, Heads: 2, FF: 64, Layers: 2, MaxT: 64, Dropout: 0}

	var runs []RunResult
	for _, a := range amounts {
		if a == 0 {
			orig := models.NewTransformerLM(tensor.NewRNG(21), lmCfg)
			runs = append(runs, lmCurves(orig, nil, trainStream.Tokens, valStream.Tokens, window, sc, "0%"))
			continue
		}
		augTrain, err := core.AugmentTokenStream(trainStream, core.TextAugmentOptions{Amount: a, WindowLen: window, Noise: core.DefaultTextNoise(vocab), Seed: 7})
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		augVal, err := core.AugmentTokenStream(valStream, core.TextAugmentOptions{Amount: a, WindowLen: window, Noise: core.DefaultTextNoise(vocab), Seed: 7})
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		// Same seed → same key for train and validation streams.
		m := models.NewTransformerLM(tensor.NewRNG(21), lmCfg)
		am, err := core.AugmentTransformerLM(m, augTrain.Key, core.ModelAugmentOptions{Amount: a, SubNets: 2, Seed: 8})
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		runs = append(runs, lmCurves(nil, am, augTrain.Stream.Tokens, augVal.Stream.Tokens, augTrain.Key.AugLen, sc, pct(a)))
	}
	printCurves(w, runs)
}

// Fig12TextClassifierCurves reproduces the AG News classifier curves.
func Fig12TextClassifierCurves(w io.Writer, sc Scale, amounts []float64) {
	fmt.Fprintln(w, "Figure 12: text classification train/val loss+accuracy on agnews-like data")
	vocab := 5000
	train := data.GenerateClassifiedText(data.ClassTextConfig{Name: "ag", N: sc.TrainN * 2, SeqLen: 64, Vocab: vocab, Classes: 4, Seed: 8})
	val := data.GenerateClassifiedText(data.ClassTextConfig{Name: "agv", N: sc.TestN * 2, SeqLen: 64, Vocab: vocab, Classes: 4, Seed: 9})

	var runs []RunResult
	for _, a := range amounts {
		if a == 0 {
			orig := models.NewTextClassifier(tensor.NewRNG(31), vocab, 64, 4)
			runs = append(runs, classifierCurves(orig, nil, train, val, sc, "0%"))
			continue
		}
		augTrain, err := core.AugmentTextDataset(train, core.TextAugmentOptions{Amount: a, Noise: core.DefaultTextNoise(vocab), Seed: 10})
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		augVal, err := core.AugmentTextDatasetWithKey(val, augTrain.Key, core.DefaultTextNoise(vocab), 11)
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		m := models.NewTextClassifier(tensor.NewRNG(31), vocab, 64, 4)
		am, err := core.AugmentTextClassifier(m, augTrain.Key, core.ModelAugmentOptions{Amount: a, SubNets: 2, Seed: 12})
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		runs = append(runs, classifierCurves(nil, am, augTrain.Dataset, augVal, sc, pct(a)))
	}
	printCurves(w, runs)
}

// Fig13TransferLearning reproduces the fine-tuning experiment: a
// "pre-trained" VGG16+CBAM (feature stages trained on a source task) is
// augmented and fine-tuned; curves must coincide with un-augmented
// fine-tuning. Runs at imagenette-lite geometry (64×64) for CPU sanity.
func Fig13TransferLearning(w io.Writer, sc Scale, amounts []float64) {
	fmt.Fprintln(w, "Figure 13: transfer learning with VGG16+CBAM on imagenette-lite (64x64 stand-in)")
	source := datasetByName("imagenette-lite", sc.TrainN, 41)
	target := datasetByName("imagenette-lite", sc.TrainN, 42)
	test := datasetByName("imagenette-lite", sc.TestN, 43)
	cfg := models.CVConfig{InC: 3, InH: 64, InW: 64, Classes: 10}

	// "Pre-train" on the source task briefly, then snapshot the feature
	// weights into every fine-tuning run.
	pre := models.NewVGG16CBAM(tensor.NewRNG(51), cfg)
	preSc := sc
	preSc.Epochs = 1
	_ = TrainCV(pre, source, test, preSc, "pretrain")
	pretrained := nn.StateDict(pre)

	build := func() *models.VGG16 {
		m := models.NewVGG16CBAM(tensor.NewRNG(51), cfg)
		if err := nn.LoadStateDict(m, pretrained); err != nil {
			panic(err)
		}
		return m
	}

	var runs []RunResult
	for _, a := range amounts {
		if a == 0 {
			runs = append(runs, TrainCV(build(), target, test, sc, "0%"))
			continue
		}
		aug, err := core.AugmentImages(target, core.ImageAugmentOptions{Amount: a, Noise: core.DefaultImageNoise(), Seed: 45})
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		augTest, err := core.AugmentImagesWithKey(test, aug.Key, core.DefaultImageNoise(), 46)
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		am, err := core.AugmentCVModel(build(), aug.Key, 3, 10, core.ModelAugmentOptions{Amount: a, SubNets: 2, Seed: 47})
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		runs = append(runs, TrainAugmentedCV(am, aug.Dataset, augTest, sc, pct(a)))
	}
	printCurves(w, runs)
}

// Fig15PrivacyLoss prints Eqs. 5–6 over a sweep of augmentation amounts.
func Fig15PrivacyLoss(w io.Writer) {
	fmt.Fprintln(w, "Figure 15: privacy loss ε=1/(1+α) and computing performance loss ρ=α/(1+α)")
	fmt.Fprintf(w, "%-8s %-12s %-12s\n", "alpha", "privacyLoss", "perfLoss")
	var alphas []float64
	for a := 0.0; a <= 4.0001; a += 0.25 {
		alphas = append(alphas, a)
	}
	for _, row := range core.TradeoffCurve(alphas) {
		fmt.Fprintf(w, "%-8.2f %-12.4f %-12.4f\n", row.Alpha, row.PrivacyLoss, row.PerfLoss)
	}
}
