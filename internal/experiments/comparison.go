package experiments

import (
	"fmt"
	"io"
	"time"

	"amalgam/internal/autodiff"
	"amalgam/internal/cloudsim"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/disco"
	"amalgam/internal/he"
	"amalgam/internal/models"
	"amalgam/internal/mpc"
	"amalgam/internal/nn"
	"amalgam/internal/optim"
	"amalgam/internal/tensor"
)

// Fig14FrameworkComparison reproduces the LeNet/MNIST training-time
// comparison: vanilla, Amalgam (100% augmentation), DISCO, CrypTen-style
// MPC, CPU/TEE, and PyCrCNN-style HE. Wall-clock is measured on this
// machine for vanilla/Amalgam/DISCO/MPC; the GPU baseline is the paper-
// calibrated accelerator model applied to the measured CPU time; HE is
// extrapolated from measured Paillier per-op latency (running a real HE
// epoch would take days — exactly the paper's finding).
func Fig14FrameworkComparison(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "Figure 14: LeNet/MNIST per-epoch training time by framework")
	train := data.SyntheticMNIST(sc.TrainN, 61)
	cfg := models.CVConfig{InC: 1, InH: 28, InW: 28, Classes: 10}
	epochSteps := (train.N() + sc.BatchSize - 1) / sc.BatchSize

	// --- Vanilla (CPU) ---
	vanilla := models.NewLeNet5(tensor.NewRNG(71), cfg)
	cpuSecs := timeEpoch(func() {
		trainPlainEpoch(vanilla, train, sc)
	})

	// --- Amalgam (100% model + dataset augmentation) ---
	aug, err := core.AugmentImages(train, core.ImageAugmentOptions{Amount: 1.0, Noise: core.DefaultImageNoise(), Seed: 62})
	if err != nil {
		return err
	}
	am, err := core.AugmentCVModel(models.NewLeNet5(tensor.NewRNG(71), cfg), aug.Key, 1, 10, core.ModelAugmentOptions{Amount: 1.0, SubNets: 3, Seed: 63})
	if err != nil {
		return err
	}
	amalgamSecs := timeEpoch(func() {
		trainAugEpoch(am, aug.Dataset, sc)
	})

	// --- DISCO-style channel obfuscation ---
	dl, err := newDiscoLeNet(tensor.NewRNG(72), cfg)
	if err != nil {
		return err
	}
	discoSecs := timeEpoch(func() {
		trainPlainEpoch(dl, train, sc)
	})

	// --- CrypTen-style MPC: measured secure-MLP epoch + throughput-based
	// secure-LeNet extrapolation ---
	eng := mpc.NewEngine(73)
	mlp := mpc.NewSecureMLP(eng, tensor.NewRNG(74), 28*28, 64, 10)
	mpcStart := time.Now()
	flops := 0.0
	for _, idx := range data.BatchIter(train.N(), sc.BatchSize, nil) {
		x, labels := train.Batch(idx)
		mlp.Step(x.Data, len(labels), labels, 0.05)
		n := float64(len(labels))
		flops += 2 * n * (784*64 + 64*10) * 3 // fwd + two backward matmuls
	}
	mpcMLPSecs := time.Since(mpcStart).Seconds()
	secureFlops := flops / mpcMLPSecs
	mpcLeNetSecs := mpc.ExtrapolateLeNet(secureFlops, train.N(), sc.BatchSize, 28, 28, 10)

	// --- PyCrCNN-style HE: measured Paillier op cost, extrapolated ---
	key, err := he.GenerateKey(512)
	if err != nil {
		return err
	}
	opCost, err := he.MeasureOps(key, 20)
	if err != nil {
		return err
	}
	heSecs := he.LeNetEpochSeconds(opCost, train.N(), 28, 28, 10)

	// --- GPU baseline (accelerator cost model) ---
	acc := cloudsim.PaperCalibratedAccelerator()
	gpuSecs := acc.Simulate(cpuSecs)

	fmt.Fprintf(w, "dataset: %d samples, batch %d, %d steps/epoch (quick scale)\n", train.N(), sc.BatchSize, epochSteps)
	fmt.Fprintf(w, "%-22s %-14s %-12s %s\n", "framework", "epochTime(s)", "vsBaseline", "how")
	rows := []struct {
		name string
		secs float64
		how  string
	}{
		{"baseline (GPU model)", gpuSecs, "accelerator cost model over measured CPU"},
		{"Amalgam (100%)", amalgamSecs, "measured"},
		{"DISCO-style", discoSecs, "measured"},
		{"CrypTen-style MPC", mpcLeNetSecs, "measured secure throughput, LeNet schedule"},
		{"CPU only (TEE bound)", cpuSecs, "measured"},
		{"PyCrCNN-style HE", heSecs, "measured Paillier ops, LeNet schedule"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-14.2f %-12.1fx %s\n", r.name, r.secs, r.secs/gpuSecs, r.how)
	}
	fmt.Fprintf(w, "(secure MLP epoch measured directly: %.2fs; MPC comm %.1f MB, %d rounds)\n",
		mpcMLPSecs, float64(eng.BytesSent)/1e6, eng.Rounds)
	return nil
}

func timeEpoch(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

func trainPlainEpoch(m interface {
	Forward(*autodiff.Node) *autodiff.Node
	Params() []nn.Param
	SetTraining(bool)
}, train *data.ImageDataset, sc Scale) {
	m.SetTraining(true)
	opt := optim.NewSGD(m.Params(), sc.LR, 0.9, 0)
	for _, idx := range data.BatchIter(train.N(), sc.BatchSize, nil) {
		x, labels := train.Batch(idx)
		nn.ZeroGrads(m)
		loss := autodiff.SoftmaxCrossEntropy(m.Forward(autodiff.Constant(x)), labels)
		autodiff.Backward(loss)
		opt.Step()
		autodiff.Release(loss)
	}
}

func trainAugEpoch(am *core.AugmentedCVModel, train *data.ImageDataset, sc Scale) {
	am.SetTraining(true)
	opt := optim.NewSGD(am.Params(), sc.LR, 0.9, 0)
	for _, idx := range data.BatchIter(train.N(), sc.BatchSize, nil) {
		x, labels := train.Batch(idx)
		nn.ZeroGrads(am)
		total, _ := am.Loss(autodiff.Constant(x), labels)
		autodiff.Backward(total)
		opt.Step()
		autodiff.Release(total)
	}
}

// discoLeNet is LeNet with a DISCO channel obfuscator after conv1.
type discoLeNet struct {
	inner *models.LeNet5
	obf   *disco.ChannelObfuscator
}

func newDiscoLeNet(rng *tensor.RNG, cfg models.CVConfig) (*discoLeNet, error) {
	obf, err := disco.NewChannelObfuscator(rng.Split(1), 6, 0.2)
	if err != nil {
		return nil, err
	}
	return &discoLeNet{inner: models.NewLeNet5(rng.Split(2), cfg), obf: obf}, nil
}

func (d *discoLeNet) Forward(x *autodiff.Node) *autodiff.Node {
	// conv1 keeps the unfused path: the DISCO obfuscator sits between the
	// convolution and its activation.
	h := autodiff.MaxPool2d(autodiff.ReLU(d.obf.Forward(d.inner.Conv1.Forward(x))), 2, 2, 0)
	h = autodiff.MaxPool2d(d.inner.Conv2.ForwardReLU(h), 2, 2, 0)
	flat := autodiff.Flatten(h)
	h2 := d.inner.FC1.ForwardReLU(flat)
	h2 = d.inner.FC2.ForwardReLU(h2)
	return d.inner.FC3.Forward(h2)
}

func (d *discoLeNet) Params() []nn.Param {
	out := d.inner.Params()
	return append(out, nn.PrefixParams("disco", d.obf.Params())...)
}

func (d *discoLeNet) SetTraining(bool) {}
