package experiments

import (
	"time"

	"amalgam/internal/autodiff"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/optim"
)

// windowsOf splits a token stream into non-overlapping windows.
func windowsOf(tokens []int, window int) [][]int {
	var out [][]int
	for lo := 0; lo+window <= len(tokens); lo += window {
		out = append(out, tokens[lo:lo+window])
	}
	return out
}

// trainLM trains either a plain LM (orig != nil) or an augmented LM
// (am != nil) over windowed batches and returns the wall-clock seconds.
func trainLM(orig *models.TransformerLM, am *core.AugmentedTransformerLM, tokens []int, window int, sc Scale) float64 {
	wins := windowsOf(tokens, window)
	batch := sc.BatchSize
	if batch > len(wins) {
		batch = len(wins)
	}
	var params []nn.Param
	if orig != nil {
		orig.SetTraining(true)
		params = orig.Params()
	} else {
		am.SetTraining(true)
		params = am.Params()
	}
	opt := optim.NewSGD(params, sc.LR, 0.9, 0)
	start := time.Now()
	for e := 0; e < sc.Epochs; e++ {
		for lo := 0; lo+batch <= len(wins); lo += batch {
			b := wins[lo : lo+batch]
			var loss *autodiff.Node
			if orig != nil {
				nn.ZeroGrads(orig)
				loss = core.LMWindowLoss(orig, b)
			} else {
				nn.ZeroGrads(am)
				loss, _ = am.LossWindows(b)
			}
			autodiff.Backward(loss)
			opt.Step()
			autodiff.Release(loss)
		}
	}
	return time.Since(start).Seconds()
}

// lmCurves returns per-epoch train/val loss for plain or augmented LMs.
func lmCurves(orig *models.TransformerLM, am *core.AugmentedTransformerLM, trainToks, valToks []int, window int, sc Scale, label string) RunResult {
	trainWins := windowsOf(trainToks, window)
	valWins := windowsOf(valToks, window)
	batch := sc.BatchSize
	if batch > len(trainWins) {
		batch = len(trainWins)
	}
	var params []nn.Param
	if orig != nil {
		orig.SetTraining(true)
		params = orig.Params()
	} else {
		am.SetTraining(true)
		params = am.Params()
	}
	opt := optim.NewSGD(params, sc.LR, 0.9, 0)
	loss := func(wins [][]int) float64 {
		var l *autodiff.Node
		if orig != nil {
			l = core.LMWindowLoss(orig, wins)
		} else {
			l = am.ValidateLoss(wins)
		}
		v := float64(l.Scalar())
		autodiff.Release(l)
		return v
	}
	start := time.Now()
	var points []EpochPoint
	for e := 0; e < sc.Epochs; e++ {
		for lo := 0; lo+batch <= len(trainWins); lo += batch {
			b := trainWins[lo : lo+batch]
			var loss *autodiff.Node
			if orig != nil {
				nn.ZeroGrads(orig)
				loss = core.LMWindowLoss(orig, b)
			} else {
				nn.ZeroGrads(am)
				loss, _ = am.LossWindows(b)
			}
			autodiff.Backward(loss)
			opt.Step()
			autodiff.Release(loss)
		}
		points = append(points, EpochPoint{
			Epoch:     e + 1,
			TrainLoss: loss(trainWins[:min(len(trainWins), 8)]),
			ValLoss:   loss(valWins[:min(len(valWins), 8)]),
		})
	}
	return RunResult{Label: label, Points: points, Seconds: time.Since(start).Seconds()}
}

// trainTextClassifier trains plain (orig) or augmented (am) classifiers
// and returns wall-clock seconds.
func trainTextClassifier(orig *models.TextClassifier, am *core.AugmentedTextClassifier, ds *data.TextDataset, sc Scale) float64 {
	var params []nn.Param
	if orig != nil {
		params = orig.Params()
	} else {
		params = am.Params()
	}
	opt := optim.NewSGD(params, 0.5, 0.9, 0)
	start := time.Now()
	for e := 0; e < sc.Epochs; e++ {
		for _, idx := range data.BatchIter(ds.N(), sc.BatchSize, nil) {
			ids, labels := ds.Batch(idx)
			var loss *autodiff.Node
			if orig != nil {
				nn.ZeroGrads(orig)
				loss = autodiff.SoftmaxCrossEntropy(orig.ForwardIDs(ids), labels)
			} else {
				nn.ZeroGrads(am)
				loss, _ = am.Loss(ids, labels)
			}
			autodiff.Backward(loss)
			opt.Step()
			autodiff.Release(loss)
		}
	}
	return time.Since(start).Seconds()
}

// classifierCurves records per-epoch loss/accuracy for plain or augmented
// text classifiers on train/val splits.
func classifierCurves(orig *models.TextClassifier, am *core.AugmentedTextClassifier, train, val *data.TextDataset, sc Scale, label string) RunResult {
	var params []nn.Param
	if orig != nil {
		params = orig.Params()
	} else {
		params = am.Params()
	}
	opt := optim.NewSGD(params, 0.5, 0.9, 0)
	eval := func(ds *data.TextDataset) (float64, float64) {
		var lossSum float64
		correct := 0
		for _, idx := range data.BatchIter(ds.N(), sc.BatchSize, nil) {
			ids, labels := ds.Batch(idx)
			var logits *autodiff.Node
			if orig != nil {
				logits = orig.ForwardIDs(ids)
			} else {
				logits = am.ForwardIDs(ids)
			}
			l := autodiff.SoftmaxCrossEntropy(logits, labels)
			lossSum += float64(l.Scalar()) * float64(len(labels))
			for i, p := range argmaxRows(logits) {
				if p == labels[i] {
					correct++
				}
			}
			autodiff.Release(l)
		}
		return lossSum / float64(ds.N()), float64(correct) / float64(ds.N())
	}
	start := time.Now()
	var points []EpochPoint
	for e := 0; e < sc.Epochs; e++ {
		for _, idx := range data.BatchIter(train.N(), sc.BatchSize, nil) {
			ids, labels := train.Batch(idx)
			var loss *autodiff.Node
			if orig != nil {
				nn.ZeroGrads(orig)
				loss = autodiff.SoftmaxCrossEntropy(orig.ForwardIDs(ids), labels)
			} else {
				nn.ZeroGrads(am)
				loss, _ = am.Loss(ids, labels)
			}
			autodiff.Backward(loss)
			opt.Step()
			autodiff.Release(loss)
		}
		trLoss, trAcc := eval(train)
		vLoss, vAcc := eval(val)
		points = append(points, EpochPoint{Epoch: e + 1, TrainLoss: trLoss, TrainAcc: trAcc, ValLoss: vLoss, ValAcc: vAcc})
	}
	return RunResult{Label: label, Points: points, Seconds: time.Since(start).Seconds()}
}

func argmaxRows(logits *autodiff.Node) []int {
	rows, cols := logits.Val.Dim(0), logits.Val.Dim(1)
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best := 0
		for c := 1; c < cols; c++ {
			if logits.Val.At(r, c) > logits.Val.At(r, best) {
				best = c
			}
		}
		out[r] = best
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
