package experiments

import (
	"fmt"
	"io"
	"time"

	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// Amounts are the paper's augmentation amounts.
var Amounts = []float64{0.25, 0.5, 0.75, 1.0}

// Table1 prints the qualitative framework comparison.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: privacy-preserving framework properties")
	fmt.Fprintf(w, "%-10s %-10s %-10s %-14s %-16s %s\n", "Technique", "Usability", "Overhead", "AccuracyLoss", "GPUAcceleration", "Compatibility")
	rows := [][]string{
		{"SMPC", "Complex", "High", "No", "Yes", "All models"},
		{"HE", "Simple", "VeryHigh", "Yes", "No", "Limited models"},
		{"FL", "Complex", "Medium", "Yes", "Yes", "All models"},
		{"DP", "Simple", "High", "Yes", "Yes", "Limited datasets"},
		{"TEE", "Complex", "High", "No", "No", "Limited models"},
		{"Amalgam", "Simple", "Low", "No", "Yes", "All models"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-10s %-10s %-14s %-16s %s\n", r[0], r[1], r[2], r[3], r[4], r[5])
	}
}

// table2Dataset describes one Table 2 dataset family.
type table2Dataset struct {
	name     string
	isImage  bool
	c, h     int // image geometry
	window   int // text window (BPTT / sample length)
	paperN   int // paper-scale sample count (images) or tokens (text)
	measureN int // samples actually augmented for timing
	vocab    int
}

func table2Config(quick bool) []table2Dataset {
	imgMeasure := 256
	imagenetteMeasure := 4
	if quick {
		imgMeasure = 64
		imagenetteMeasure = 2
	}
	return []table2Dataset{
		{name: "mnist", isImage: true, c: 1, h: 28, paperN: 70000, measureN: imgMeasure},
		{name: "cifar10", isImage: true, c: 3, h: 32, paperN: 60000, measureN: imgMeasure},
		{name: "cifar100", isImage: true, c: 3, h: 32, paperN: 60000, measureN: imgMeasure},
		{name: "imagenette", isImage: true, c: 3, h: 224, paperN: 13394, measureN: imagenetteMeasure},
		{name: "wikitext2", isImage: false, window: 20, paperN: data.WikiText2PaperTokens, measureN: 200000, vocab: data.WikiText2Vocab},
		{name: "agnews", isImage: false, window: data.AGNewsSeqLen, paperN: data.AGNewsPaperSamples, measureN: 2000, vocab: data.AGNewsVocab},
	}
}

// Table2 reproduces the dataset-augmentation table: per augmentation
// amount, the measured augmentation time (scaled to the paper's dataset
// size), resulting resolution, dataset size, and search space.
func Table2(w io.Writer, quick bool) {
	fmt.Fprintln(w, "Table 2: dataset augmentation results")
	fmt.Fprintf(w, "%-11s %-8s %-14s %-11s %-13s %s\n", "Dataset", "Amount", "AvgTime(s)*", "Resolution", "Size", "SearchSpace")
	fmt.Fprintln(w, "  (*) measured on a subset, scaled linearly to the paper's sample count")
	for _, cfg := range table2Config(quick) {
		if cfg.isImage {
			table2Image(w, cfg)
		} else {
			table2Text(w, cfg)
		}
	}
}

func table2Image(w io.Writer, cfg table2Dataset) {
	ds := datasetByName(cfg.name, cfg.measureN, 1)
	origBytes := int64(cfg.paperN) * int64(cfg.c) * int64(cfg.h) * int64(cfg.h) * 4
	fmt.Fprintf(w, "%-11s %-8s %-14s %-11s %-13s %s\n", cfg.name, "0%", "-", fmt.Sprintf("%dx%d", cfg.h, cfg.h), sizeStr(origBytes), "-")
	for _, a := range Amounts {
		start := time.Now()
		aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{Amount: a, Noise: core.DefaultImageNoise(), Seed: 2})
		if err != nil {
			fmt.Fprintf(w, "%-11s %v\n", cfg.name, err)
			continue
		}
		perSample := time.Since(start).Seconds() / float64(cfg.measureN)
		scaled := perSample * float64(cfg.paperN)
		augH := aug.Key.AugH
		augBytes := int64(cfg.paperN) * int64(cfg.c) * int64(augH) * int64(augH) * 4
		space := core.ImageSearchSpaceString(cfg.c, cfg.h*cfg.h, augH*augH)
		fmt.Fprintf(w, "%-11s %-8s %-14.1f %-11s %-13s %s\n",
			cfg.name, pct(a), scaled, fmt.Sprintf("%dx%d", augH, augH), sizeStr(augBytes), space)
	}
}

func table2Text(w io.Writer, cfg table2Dataset) {
	origBytes := int64(cfg.paperN) * 8
	if cfg.name == "agnews" {
		origBytes = int64(cfg.paperN) * int64(cfg.window) * 8
	}
	fmt.Fprintf(w, "%-11s %-8s %-14s %-11s %-13s %s\n", cfg.name, "0%", "-", "-", sizeStr(origBytes), "-")
	for _, a := range Amounts {
		var perUnit float64
		var augLen int
		if cfg.name == "wikitext2" {
			stream := data.SyntheticWikiText2(cfg.measureN, 1)
			start := time.Now()
			aug, err := core.AugmentTokenStream(stream, core.TextAugmentOptions{Amount: a, WindowLen: cfg.window, Noise: core.DefaultTextNoise(cfg.vocab), Seed: 2})
			if err != nil {
				fmt.Fprintf(w, "%-11s %v\n", cfg.name, err)
				continue
			}
			perUnit = time.Since(start).Seconds() / float64(cfg.measureN)
			augLen = aug.Key.AugLen
		} else {
			ds := data.SyntheticAGNews(cfg.measureN, 1)
			start := time.Now()
			aug, err := core.AugmentTextDataset(ds, core.TextAugmentOptions{Amount: a, Noise: core.DefaultTextNoise(cfg.vocab), Seed: 2})
			if err != nil {
				fmt.Fprintf(w, "%-11s %v\n", cfg.name, err)
				continue
			}
			perUnit = time.Since(start).Seconds() / float64(cfg.measureN)
			augLen = aug.Key.AugLen
		}
		scaled := perUnit * float64(cfg.paperN)
		augBytes := int64(float64(origBytes) * (1 + a))
		fmt.Fprintf(w, "%-11s %-8s %-14.1f %-11s %-13s %s\n",
			cfg.name, pct(a), scaled, "-", sizeStr(augBytes), core.SearchSpaceString(cfg.window, augLen))
	}
}

// Table3 reproduces the CV-model table: parameter counts after
// augmentation (exact, at paper geometry) and measured training time per
// run at the harness scale.
func Table3(w io.Writer, datasets []string, modelNames []string, sc Scale) {
	fmt.Fprintln(w, "Table 3: computer-vision model training with different augmentation amounts")
	fmt.Fprintf(w, "%-10s %-13s %-8s %-14s %-14s\n", "Dataset", "Model", "Amount", "Params", "TrainTime(s)")
	for _, dsName := range datasets {
		base := datasetByName(dsName, sc.TrainN, 3)
		test := datasetByName(dsName, sc.TestN, 4)
		cfg := models.CVConfig{InC: base.C(), InH: base.H(), InW: base.W(), Classes: base.Classes}
		for _, mn := range modelNames {
			orig, err := models.BuildCV(mn, tensor.NewRNG(7), cfg)
			if err != nil {
				fmt.Fprintf(w, "%v\n", err)
				continue
			}
			res := TrainCV(orig, base, test, sc, mn)
			fmt.Fprintf(w, "%-10s %-13s %-8s %-14d %-14.1f\n", dsName, mn, "0%", res.Params, res.Seconds)
			for _, a := range Amounts {
				aug, err := core.AugmentImages(base, core.ImageAugmentOptions{Amount: a, Noise: core.DefaultImageNoise(), Seed: 11})
				if err != nil {
					fmt.Fprintf(w, "%v\n", err)
					continue
				}
				augTest, err := core.AugmentImagesWithKey(test, aug.Key, core.DefaultImageNoise(), 12)
				if err != nil {
					fmt.Fprintf(w, "%v\n", err)
					continue
				}
				m2, err := models.BuildCV(mn, tensor.NewRNG(7), cfg)
				if err != nil {
					fmt.Fprintf(w, "%v\n", err)
					continue
				}
				am, err := core.AugmentCVModel(m2, aug.Key, cfg.InC, cfg.Classes, core.ModelAugmentOptions{Amount: a, SubNets: 3, Seed: 13})
				if err != nil {
					fmt.Fprintf(w, "%v\n", err)
					continue
				}
				res := TrainAugmentedCV(am, aug.Dataset, augTest, sc, mn)
				fmt.Fprintf(w, "%-10s %-13s %-8s %-14d %-14.1f\n", dsName, mn, pct(a), res.Params, res.Seconds)
			}
		}
	}
}

// Table4 reproduces the NLP-model table (parameters and training time).
func Table4(w io.Writer, sc Scale) {
	fmt.Fprintln(w, "Table 4: NLP model training with different augmentations")
	fmt.Fprintf(w, "%-28s %-8s %-14s %-14s\n", "Model/Dataset", "Amount", "Params", "TrainTime(s)")

	// Transformer / WikiText-2-like stream. Reduced vocab keeps the quick
	// run tractable; params are also reported at paper vocab separately.
	const window = 20
	vocab := 2000
	stream := data.GenerateTokenStream(data.TextConfig{Name: "wikitext2", Tokens: sc.TrainN * window * 4, Vocab: vocab, Seed: 5})
	lmCfg := models.TransformerLMConfig{Vocab: vocab, D: 64, Heads: 2, FF: 64, Layers: 2, MaxT: 64, Dropout: 0}
	{
		orig := models.NewTransformerLM(tensor.NewRNG(21), lmCfg)
		res := trainLM(orig, nil, stream.Tokens, window, sc)
		fmt.Fprintf(w, "%-28s %-8s %-14d %-14.1f\n", "transformer/wikitext2", "0%", nn.NumParams(orig), res)
		for _, a := range Amounts {
			aug, err := core.AugmentTokenStream(stream, core.TextAugmentOptions{Amount: a, WindowLen: window, Noise: core.DefaultTextNoise(vocab), Seed: 6})
			if err != nil {
				fmt.Fprintf(w, "%v\n", err)
				continue
			}
			m2 := models.NewTransformerLM(tensor.NewRNG(21), lmCfg)
			am, err := core.AugmentTransformerLM(m2, aug.Key, core.ModelAugmentOptions{Amount: a, SubNets: 2, Seed: 7})
			if err != nil {
				fmt.Fprintf(w, "%v\n", err)
				continue
			}
			res := trainLM(nil, am, aug.Stream.Tokens, aug.Key.AugLen, sc)
			fmt.Fprintf(w, "%-28s %-8s %-14d %-14.1f\n", "transformer/wikitext2", pct(a), am.TotalParams(), res)
		}
	}

	// Text classification / AG News-like dataset (reduced vocab).
	clsVocab := 5000
	cls := data.GenerateClassifiedText(data.ClassTextConfig{Name: "agnews", N: sc.TrainN * 2, SeqLen: 64, Vocab: clsVocab, Classes: 4, Seed: 8})
	{
		orig := models.NewTextClassifier(tensor.NewRNG(31), clsVocab, 64, 4)
		secs := trainTextClassifier(orig, nil, cls, sc)
		fmt.Fprintf(w, "%-28s %-8s %-14d %-14.1f\n", "textclassifier/agnews", "0%", nn.NumParams(orig), secs)
		for _, a := range Amounts {
			aug, err := core.AugmentTextDataset(cls, core.TextAugmentOptions{Amount: a, Noise: core.DefaultTextNoise(clsVocab), Seed: 9})
			if err != nil {
				fmt.Fprintf(w, "%v\n", err)
				continue
			}
			m2 := models.NewTextClassifier(tensor.NewRNG(31), clsVocab, 64, 4)
			am, err := core.AugmentTextClassifier(m2, aug.Key, core.ModelAugmentOptions{Amount: a, SubNets: 2, Seed: 10})
			if err != nil {
				fmt.Fprintf(w, "%v\n", err)
				continue
			}
			secs := trainTextClassifier(nil, am, aug.Dataset, sc)
			fmt.Fprintf(w, "%-28s %-8s %-14d %-14.1f\n", "textclassifier/agnews", pct(a), am.TotalParams(), secs)
		}
	}

	fmt.Fprintf(w, "paper-vocab parameter check: transformer(28782)=%d textclassifier(95812)=%d\n",
		nn.NumParams(models.NewTransformerLM(tensor.NewRNG(1), models.DefaultTransformerLMConfig(data.WikiText2Vocab))),
		nn.NumParams(models.NewTextClassifier(tensor.NewRNG(1), data.AGNewsVocab, 64, 4)))
}

func pct(a float64) string { return fmt.Sprintf("%.0f%%", a*100) }

func sizeStr(bytes int64) string {
	switch {
	case bytes >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(bytes)/1e9)
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(bytes)/1e6)
	default:
		return fmt.Sprintf("%.1fKB", float64(bytes)/1e3)
	}
}
