// Package experiments is the harness that regenerates every table and
// figure of the paper's evaluation (§5–§6) on the synthetic substrate.
// Each experiment has one entry point that writes the same rows/series the
// paper reports; bench_test.go and cmd/amalgam-bench share these.
//
// Scale: the paper trains full datasets for many epochs on 2×RTX 3090; we
// default to reduced sample counts/epochs sized for CPUs. The *shape* of
// every result (who wins, monotonicity, curve coincidence) is preserved;
// EXPERIMENTS.md records paper-vs-measured for each experiment.
package experiments

import (
	"time"

	"amalgam/internal/autodiff"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/optim"
	"amalgam/internal/tensor"
)

// Scale sizes an experiment run.
type Scale struct {
	TrainN, TestN int
	Epochs        int
	BatchSize     int
	LR            float64
}

// QuickScale is the CI/bench default: seconds per configuration.
func QuickScale() Scale { return Scale{TrainN: 48, TestN: 24, Epochs: 3, BatchSize: 16, LR: 0.02} }

// FullScale approaches paper geometry (still CPU-bound; expect hours).
func FullScale() Scale { return Scale{TrainN: 2048, TestN: 512, Epochs: 10, BatchSize: 64, LR: 0.02} }

// EpochPoint is one point of a training/validation curve (Figs. 5–13).
type EpochPoint struct {
	Epoch     int
	TrainLoss float64
	TrainAcc  float64
	ValLoss   float64
	ValAcc    float64
}

// RunResult is a complete training run.
type RunResult struct {
	Label   string
	Points  []EpochPoint
	Seconds float64
	Params  int
}

// TrainCV trains a plain CV model, recording per-epoch curves.
func TrainCV(m models.CVModel, train, test *data.ImageDataset, sc Scale, label string) RunResult {
	m.SetTraining(true)
	opt := optim.NewSGD(m.Params(), sc.LR, 0.9, 5e-4)
	start := time.Now()
	var points []EpochPoint
	for e := 0; e < sc.Epochs; e++ {
		var lossSum float64
		seen := 0
		for _, idx := range data.BatchIter(train.N(), sc.BatchSize, nil) {
			x, labels := train.Batch(idx)
			nn.ZeroGrads(m)
			loss := autodiff.SoftmaxCrossEntropy(m.Forward(autodiff.Constant(x)), labels)
			autodiff.Backward(loss)
			opt.Step()
			lossSum += float64(loss.Scalar()) * float64(len(labels))
			seen += len(labels)
			autodiff.Release(loss) // recycle the step's graph scratch
		}
		trLoss, trAcc := evalCV(m, train, sc.BatchSize)
		vLoss, vAcc := evalCV(m, test, sc.BatchSize)
		_ = lossSum
		_ = seen
		points = append(points, EpochPoint{Epoch: e + 1, TrainLoss: trLoss, TrainAcc: trAcc, ValLoss: vLoss, ValAcc: vAcc})
	}
	return RunResult{Label: label, Points: points, Seconds: time.Since(start).Seconds(), Params: nn.NumParams(m)}
}

// TrainAugmentedCV trains an augmented model on the augmented dataset,
// recording the ORIGINAL sub-network's curves (what the paper plots).
func TrainAugmentedCV(am *core.AugmentedCVModel, augTrain, augTest *data.ImageDataset, sc Scale, label string) RunResult {
	am.SetTraining(true)
	opt := optim.NewSGD(am.Params(), sc.LR, 0.9, 5e-4)
	start := time.Now()
	var points []EpochPoint
	for e := 0; e < sc.Epochs; e++ {
		for _, idx := range data.BatchIter(augTrain.N(), sc.BatchSize, nil) {
			x, labels := augTrain.Batch(idx)
			nn.ZeroGrads(am)
			total, _ := am.Loss(autodiff.Constant(x), labels)
			autodiff.Backward(total)
			opt.Step()
			autodiff.Release(total)
		}
		trLoss, trAcc := evalCV(am, augTrain, sc.BatchSize)
		vLoss, vAcc := evalCV(am, augTest, sc.BatchSize)
		points = append(points, EpochPoint{Epoch: e + 1, TrainLoss: trLoss, TrainAcc: trAcc, ValLoss: vLoss, ValAcc: vAcc})
	}
	return RunResult{Label: label, Points: points, Seconds: time.Since(start).Seconds(), Params: am.TotalParams()}
}

// cvEvaluable covers plain CV models and AugmentedCVModel.
type cvEvaluable interface {
	Forward(x *autodiff.Node) *autodiff.Node
	SetTraining(bool)
}

func evalCV(m cvEvaluable, ds *data.ImageDataset, batch int) (loss, acc float64) {
	m.SetTraining(false)
	defer m.SetTraining(true)
	var lossSum float64
	correct := 0
	for _, idx := range data.BatchIter(ds.N(), batch, nil) {
		x, labels := ds.Batch(idx)
		logits := m.Forward(autodiff.Constant(x))
		l := autodiff.SoftmaxCrossEntropy(logits, labels)
		lossSum += float64(l.Scalar()) * float64(len(labels))
		for i, p := range tensor.ArgmaxRows(logits.Val) {
			if p == labels[i] {
				correct++
			}
		}
		autodiff.Release(l) // logits are reachable from l; released together
	}
	return lossSum / float64(ds.N()), float64(correct) / float64(ds.N())
}

// datasetByName builds the synthetic stand-in with quick-scale counts.
func datasetByName(name string, n int, seed uint64) *data.ImageDataset {
	switch name {
	case "mnist":
		return data.SyntheticMNIST(n, seed)
	case "cifar10":
		return data.SyntheticCIFAR10(n, seed)
	case "cifar100":
		return data.SyntheticCIFAR100(n, seed)
	case "imagenette":
		return data.SyntheticImagenette(n, seed)
	case "imagenette-lite":
		// 64×64 stand-in for CPU-sized transfer-learning runs.
		return data.GenerateImages(data.ImageConfig{Name: "imagenette-lite", N: n, C: 3, H: 64, W: 64, Classes: 10, Seed: seed, Noise: 0.08})
	default:
		panic("experiments: unknown dataset " + name)
	}
}
