package experiments

import (
	"fmt"
	"io"

	"amalgam/internal/attacks"
	"amalgam/internal/autodiff"
	"amalgam/internal/cloudsim"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/tensor"
)

// BruteForce prints the brute-force analysis of §6.3: search space per
// dataset/amount and years-to-enumerate at a (generous) guess rate.
func BruteForce(w io.Writer) {
	fmt.Fprintln(w, "Brute-force attack analysis (10^12 guesses/second)")
	fmt.Fprintf(w, "%-11s %-8s %-14s %s\n", "dataset", "amount", "searchSpace", "years(half-space)")
	type row struct {
		name      string
		orig, per int // original unit length, per side or window
		image     bool
	}
	rows := []row{{"mnist", 28, 0, true}, {"cifar10", 32, 0, true}, {"wikitext2", 20, 0, false}, {"agnews", data.AGNewsSeqLen, 0, false}}
	for _, r := range rows {
		for _, a := range Amounts {
			var orig, aug int
			if r.image {
				orig = r.orig * r.orig
				side := core.AugmentedDim(r.orig, a)
				aug = side * side
			} else {
				orig = r.orig
				aug = core.AugmentedDim(r.orig, a)
			}
			lg := core.LogSearchSpace(orig, aug)
			years := core.BruteForceYears(lg, 1e12)
			fmt.Fprintf(w, "%-11s %-8s %-14s %g\n", r.name, pct(a), core.SearchSpaceString(orig, aug), years)
		}
	}
}

// Fig16GradientLeakage reproduces the DLG/iDLG experiment: reconstruction
// quality from observed gradients, plain vs Amalgam-augmented victim.
func Fig16GradientLeakage(w io.Writer) error {
	fmt.Fprintln(w, "Figure 16: gradient-leakage (DLG/iDLG) reconstruction quality")
	ds := data.GenerateImages(data.ImageConfig{Name: "g", N: 1, C: 1, H: 8, W: 8, Classes: 4, Seed: 81, Noise: 0.03})
	orig := ds.Image(0).Reshape(1, 64)
	label := ds.Labels[0]

	// Plain victim.
	plain := attacks.NewAttackMLP(tensor.NewRNG(82), 64, 24, 4)
	obs := attacks.ObservedGradients(plain, orig, label)
	closed := attacks.RecoverFromLinearGradients(obs["fc1.weight"], obs["fc1.bias"])
	dlgPlain := attacks.DLG(plain, []int{1, 64}, label, obs, attacks.DefaultDLGOptions())

	// Amalgam victim: 50% augmented data + model (the paper's setting).
	aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{Amount: 0.5, Noise: core.DefaultImageNoise(), Seed: 83})
	if err != nil {
		return err
	}
	augLen := aug.Key.AugH * aug.Key.AugW
	victim := attacks.NewAttackMLP(tensor.NewRNG(82), augLen, 24, 4)
	augInput := aug.Dataset.Image(0).Reshape(1, augLen)
	obsA := attacks.ObservedGradients(victim, augInput, label)
	closedA := attacks.RecoverFromLinearGradients(obsA["fc1.weight"], obsA["fc1.bias"])
	dlgAug := attacks.DLG(victim, []int{1, augLen}, label, obsA, attacks.DefaultDLGOptions())

	resize := func(t *tensor.Tensor) *tensor.Tensor {
		return attacks.ResizeNaive(t.Reshape(1, aug.Key.AugH, aug.Key.AugW), 8, 8).Reshape(1, 64)
	}
	fmt.Fprintf(w, "%-34s %-10s\n", "attack", "PSNR(dB)")
	fmt.Fprintf(w, "%-34s %-10.1f\n", "iDLG closed-form, plain", attacks.PSNR(closed, orig.Reshape(64)))
	fmt.Fprintf(w, "%-34s %-10.1f\n", "DLG iterative, plain", attacks.PSNR(dlgPlain.Reconstruction, orig))
	fmt.Fprintf(w, "%-34s %-10.1f\n", "iDLG closed-form, Amalgam 50%", attacks.PSNR(resize(closedA.Reshape(1, augLen)), orig))
	fmt.Fprintf(w, "%-34s %-10.1f\n", "DLG iterative, Amalgam 50%", attacks.PSNR(resize(dlgAug.Reconstruction), orig))
	return nil
}

// Fig17SHAPDistortion reproduces the model-inversion probe: occlusion
// attributions before vs after augmentation.
func Fig17SHAPDistortion(w io.Writer) error {
	fmt.Fprintln(w, "Figure 17: SHAP-style attribution distortion after augmentation")
	ds := data.GenerateImages(data.ImageConfig{Name: "s", N: 16, C: 1, H: 12, W: 12, Classes: 3, Seed: 91, Noise: 0.05})
	cfg := models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3}
	sc := Scale{TrainN: 16, TestN: 8, Epochs: 2, BatchSize: 8, LR: 0.05}

	plain := models.NewLeNet5(tensor.NewRNG(92), cfg)
	_ = TrainCV(plain, ds, ds, sc, "plain")

	aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{Amount: 1.0, Noise: core.DefaultImageNoise(), Seed: 93})
	if err != nil {
		return err
	}
	am, err := core.AugmentCVModel(models.NewLeNet5(tensor.NewRNG(92), cfg), aug.Key, 1, 3, core.ModelAugmentOptions{Amount: 1.0, SubNets: 3, Seed: 94})
	if err != nil {
		return err
	}
	_ = TrainAugmentedCV(am, aug.Dataset, aug.Dataset, sc, "aug")

	img := ds.Image(0)
	cleanAttr := attacks.OcclusionAttribution(plain, img, ds.Labels[0])
	// The provider explains the shipped augmented model on the augmented
	// input; it cannot gather through the secret key.
	augAttr := attacks.OcclusionAttribution(&augForwardAll{am}, aug.Dataset.Image(0), ds.Labels[0])
	corr := attacks.AttributionDistortion(cleanAttr, augAttr, 12, 12, aug.Key.AugH, aug.Key.AugW)
	fmt.Fprintf(w, "attribution correlation plain-vs-augmented: %.3f (≈0 ⇒ explanations are useless, matching the paper)\n", corr)

	// Self-control: the clean model's attribution correlates with itself.
	self := attacks.Pearson(cleanAttr, cleanAttr)
	fmt.Fprintf(w, "control self-correlation: %.3f\n", self)
	return nil
}

// augForwardAll exposes the augmented model's full output (sum of all
// sub-network logits), which is what a provider-side explainer probes —
// it cannot single out the original head.
type augForwardAll struct{ am *core.AugmentedCVModel }

// Forward sums every sub-network's logits.
func (a *augForwardAll) Forward(x *autodiff.Node) *autodiff.Node {
	orig, decoys := a.am.ForwardAll(x)
	return autodiff.AddN(append([]*autodiff.Node{orig}, decoys...)...)
}

// Fig18DenoisingAttack reproduces the denoising attack.
func Fig18DenoisingAttack(w io.Writer) error {
	fmt.Fprintln(w, "Figure 18: denoising attack on an augmented image (PSNR dB vs ground truth)")
	ds := data.SyntheticCIFAR10(1, 95)
	origImg := ds.Image(0)
	rng := tensor.NewRNG(96)

	noisy := attacks.AddGaussianNoise(origImg, 0.196, rng) // σ=50/255, the paper's control
	fmt.Fprintf(w, "%-34s %-10.1f\n", "noisy input (σ=50/255), no attack", attacks.PSNR(noisy, origImg))
	for _, r := range attacks.RunDenoiseAttack(noisy, origImg) {
		fmt.Fprintf(w, "%-34s %-10.1f\n", "denoise("+r.Denoiser+") on gaussian", r.PSNR)
	}
	aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{
		Amount: 0.2,
		Noise:  core.NoiseSpec{Type: core.NoiseGaussian, Mean: 0.5, Sigma: 0.196, Min: 0, Max: 1},
		Seed:   97,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-34s %-10.1f\n", "augmented 20%, naive resize", attacks.PSNR(attacks.ResizeNaive(aug.Dataset.Image(0), 32, 32), origImg))
	for _, r := range attacks.RunDenoiseAttack(aug.Dataset.Image(0), origImg) {
		fmt.Fprintf(w, "%-34s %-10.1f\n", "denoise("+r.Denoiser+") on amalgam", r.PSNR)
	}
	return nil
}

// SubnetIdentification measures the provider's ability to spot the
// original sub-network from the provider view (the TV-smoothness attack),
// across augmentation amounts and noise types. Chance is 1/(1+subnets).
//
// Finding (documented in EXPERIMENTS.md): with the default uniform noise
// the attack succeeds — the original gather reconstructs a smooth natural
// image while every decoy interleaves high-frequency noise. The paper's
// user-provided noise option ("pixels from actual meaningful images",
// §4.1) is the countermeasure: it closes most of the smoothness gap.
func SubnetIdentification(w io.Writer, trials int) error {
	fmt.Fprintln(w, "Identification attack: pick the original sub-network from the provider view (TV heuristic)")
	fmt.Fprintf(w, "%-8s %-14s %-10s %s\n", "amount", "noise", "accuracy", "chance")
	for _, noiseName := range []string{"uniform", "user(image)", "smooth-infill"} {
		for _, a := range Amounts {
			acc, err := identifyTrials(a, noiseName, trials)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-8s %-14s %-10.2f %.2f\n", pct(a), noiseName, acc, 0.25)
		}
	}
	// The cover-image defense (internal/core/cover.go) needs amount ≥ 1.
	acc, err := identifyCoverTrials(trials)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-14s %-10.2f %.2f  <- defense: decoy gathers a real embedded image\n", "100%", "cover-image", acc, 0.25)
	return nil
}

// identifyCoverTrials runs the attack against cover-image augmentation:
// one decoy's gather points at an embedded second image, so smoothness no
// longer singles out the original.
func identifyCoverTrials(trials int) (float64, error) {
	const subnets = 3
	hits := 0
	for trial := 0; trial < trials; trial++ {
		ds := data.SyntheticCIFAR10(1, uint64(100+trial))
		cover := data.SyntheticCIFAR10(1, uint64(700+trial))
		aug, err := core.AugmentImagesWithCover(ds, cover, 1.0, core.DefaultImageNoise(), uint64(200+trial))
		if err != nil {
			return 0, err
		}
		m, err := models.BuildCV("lenet", tensor.NewRNG(uint64(300+trial)), models.CVConfig{InC: 3, InH: 32, InW: 32, Classes: 10})
		if err != nil {
			return 0, err
		}
		am, err := core.AugmentCVModel(m, aug.Key, 3, 10, core.ModelAugmentOptions{
			Amount: 1.0, SubNets: subnets, Seed: uint64(400 + trial),
			DecoyGathers: [][]int{aug.CoverSet},
		})
		if err != nil {
			return 0, err
		}
		sets := am.GatherSets()
		rng := tensor.NewRNG(uint64(500 + trial))
		order := rng.Perm(len(sets))
		shuffled := make([][]int, len(sets))
		truth := 0
		for to, from := range order {
			shuffled[to] = sets[from]
			if from == 0 {
				truth = to
			}
		}
		guess := attacks.IdentifySubnetByTV(aug.Dataset.Image(0), shuffled, 32, 32)
		if guess == truth {
			hits++
		}
	}
	return float64(hits) / float64(trials), nil
}

func identifyTrials(a float64, noiseName string, trials int) (float64, error) {
	const subnets = 3
	hits := 0
	for trial := 0; trial < trials; trial++ {
		ds := data.SyntheticCIFAR10(1, uint64(100+trial))
		noise := core.DefaultImageNoise()
		switch noiseName {
		case "user(image)":
			// User-provided noise: pixels of another natural image.
			cover := data.SyntheticImagenette(1, uint64(900+trial))
			noise = core.NoiseSpec{Type: core.NoiseUser, Pool: cover.Images.Data[:65536]}
		case "smooth-infill":
			noise = core.SmoothInfillNoise(0.03)
		}
		{
			aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{Amount: a, Noise: noise, Seed: uint64(200 + trial)})
			if err != nil {
				return 0, err
			}
			m, err := models.BuildCV("lenet", tensor.NewRNG(uint64(300+trial)), models.CVConfig{InC: 3, InH: 32, InW: 32, Classes: 10})
			if err != nil {
				return 0, err
			}
			am, err := core.AugmentCVModel(m, aug.Key, 3, 10, core.ModelAugmentOptions{Amount: a, SubNets: subnets, Seed: uint64(400 + trial)})
			if err != nil {
				return 0, err
			}
			sets := am.GatherSets() // orig first, pre-shuffle
			// Shuffle, remembering where the original landed (the provider
			// view does the same shuffle without the bookkeeping).
			rng := tensor.NewRNG(uint64(500 + trial))
			order := rng.Perm(len(sets))
			shuffled := make([][]int, len(sets))
			truth := 0
			for to, from := range order {
				shuffled[to] = sets[from]
				if from == 0 {
					truth = to
				}
			}
			guess := attacks.IdentifySubnetByTV(aug.Dataset.Image(0), shuffled, 32, 32)
			if guess == truth {
				hits++
			}
		}
	}
	return float64(hits) / float64(trials), nil
}

// ProviderViewSummary prints what a cloud job leaks, for documentation.
func ProviderViewSummary(w io.Writer, view cloudsim.ProviderView) {
	fmt.Fprintf(w, "provider view: %d samples of %dx%dx%d, %d gather sets, aug amount %.0f%%\n",
		view.N, view.C, view.H, view.W, len(view.GatherSets), view.AugAmount*100)
}
