package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyScale keeps harness tests to seconds.
func tinyScale() Scale { return Scale{TrainN: 16, TestN: 8, Epochs: 1, BatchSize: 8, LR: 0.05} }

func TestTable1Prints(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Amalgam", "SMPC", "HE", "TEE", "Low"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2QuickContainsPaperGeometries(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf, true)
	out := buf.String()
	// Resolution column from the paper.
	for _, want := range []string{"35x35", "48x48", "56x56", "280x280", "53130"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3MonotoneParams(t *testing.T) {
	var buf bytes.Buffer
	Table3(&buf, []string{"mnist"}, []string{"lenet"}, tinyScale())
	out := buf.String()
	if !strings.Contains(out, "lenet") || !strings.Contains(out, "100%") {
		t.Fatalf("Table 3 incomplete:\n%s", out)
	}
}

func TestTable4Prints(t *testing.T) {
	var buf bytes.Buffer
	Table4(&buf, tinyScale())
	out := buf.String()
	if !strings.Contains(out, "transformer/wikitext2") || !strings.Contains(out, "textclassifier/agnews") {
		t.Fatalf("Table 4 incomplete:\n%s", out)
	}
	// Paper-vocab parameter check rows.
	if !strings.Contains(out, "12025582") || !strings.Contains(out, "6132228") {
		t.Fatalf("paper-vocab parameter check missing:\n%s", out)
	}
}

func TestCVCurvesCoincide(t *testing.T) {
	// The headline claim: augmented training curves match the original.
	// With identical seeds our exactness invariant makes the gap exactly 0.
	var buf bytes.Buffer
	CVCurves(&buf, "lenet", "mnist", tinyScale(), []float64{0, 0.5})
	out := buf.String()
	if !strings.Contains(out, "MaxValAccGap vs 0%: 0.0000") {
		t.Fatalf("curves did not coincide exactly:\n%s", out)
	}
}

func TestFig15Prints(t *testing.T) {
	var buf bytes.Buffer
	Fig15PrivacyLoss(&buf)
	if !strings.Contains(buf.String(), "0.5000") { // α=1 → ε=ρ=0.5
		t.Fatalf("Fig 15 output wrong:\n%s", buf.String())
	}
}

func TestBruteForcePrints(t *testing.T) {
	var buf bytes.Buffer
	BruteForce(&buf)
	out := buf.String()
	if !strings.Contains(out, "+Inf") {
		t.Fatalf("brute-force years should be +Inf for image datasets:\n%s", out)
	}
}

func TestFig16GradientLeakage(t *testing.T) {
	if testing.Short() {
		t.Skip("DLG finite differences are slow")
	}
	var buf bytes.Buffer
	if err := Fig16GradientLeakage(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Amalgam 50%") {
		t.Fatalf("Fig 16 incomplete:\n%s", buf.String())
	}
}

func TestFig18DenoisingAttack(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig18DenoisingAttack(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "amalgam") {
		t.Fatalf("Fig 18 incomplete:\n%s", buf.String())
	}
}

func TestSubnetIdentification(t *testing.T) {
	var buf bytes.Buffer
	if err := SubnetIdentification(&buf, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "accuracy") {
		t.Fatalf("identification output incomplete:\n%s", buf.String())
	}
}
