// Package attacks implements the server-side adversarial analysis of §6.3:
// brute-force search-space estimation, gradient-leakage (DLG-style) input
// reconstruction, SHAP-style model-inversion probing, deep-denoising
// recovery, and an original-sub-network identification attack over the
// provider view. Every attack consumes only what an honest-but-curious
// cloud observes (see cloudsim.ProviderView) — never the user-side key.
package attacks

import (
	"math"

	"amalgam/internal/tensor"
)

// MSE returns the mean squared error between two equal-shape tensors.
func MSE(a, b *tensor.Tensor) float64 {
	if !a.SameShape(b) {
		panic("attacks: MSE shape mismatch")
	}
	var s float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		s += d * d
	}
	return s / float64(len(a.Data))
}

// PSNR returns the peak signal-to-noise ratio in dB for signals in [0, 1].
func PSNR(a, b *tensor.Tensor) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(1/mse)
}

// Pearson returns the Pearson correlation of two equal-length tensors.
func Pearson(a, b *tensor.Tensor) float64 {
	if a.Numel() != b.Numel() || a.Numel() == 0 {
		panic("attacks: Pearson length mismatch")
	}
	n := float64(a.Numel())
	var sa, sb float64
	for i := range a.Data {
		sa += float64(a.Data[i])
		sb += float64(b.Data[i])
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a.Data {
		da := float64(a.Data[i]) - ma
		db := float64(b.Data[i]) - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// TotalVariation returns the mean absolute difference between horizontally
// and vertically adjacent pixels of a [C, H, W] image — the smoothness
// statistic the identification attack ranks sub-networks by.
func TotalVariation(img *tensor.Tensor) float64 {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	var s float64
	var count int
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := float64(img.Data[base+y*w+x])
				if x+1 < w {
					s += math.Abs(v - float64(img.Data[base+y*w+x+1]))
					count++
				}
				if y+1 < h {
					s += math.Abs(v - float64(img.Data[base+(y+1)*w+x]))
					count++
				}
			}
		}
	}
	if count == 0 {
		return 0
	}
	return s / float64(count)
}

// ResizeNaive bilinearly resizes a [C, H, W] image to [C, outH, outW] —
// the attacker's only recourse for comparing an augmented-geometry
// reconstruction against original-geometry ground truth without the key.
func ResizeNaive(img *tensor.Tensor, outH, outW int) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	out := tensor.New(c, outH, outW)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < outH; y++ {
			fy := (float64(y)+0.5)*float64(h)/float64(outH) - 0.5
			y0 := int(math.Floor(fy))
			ty := fy - float64(y0)
			for x := 0; x < outW; x++ {
				fx := (float64(x)+0.5)*float64(w)/float64(outW) - 0.5
				x0 := int(math.Floor(fx))
				tx := fx - float64(x0)
				v := bilerp(img, ch, y0, x0, ty, tx, h, w)
				out.Set(float32(v), ch, y, x)
			}
		}
	}
	return out
}

func bilerp(img *tensor.Tensor, ch, y0, x0 int, ty, tx float64, h, w int) float64 {
	get := func(y, x int) float64 {
		if y < 0 {
			y = 0
		} else if y >= h {
			y = h - 1
		}
		if x < 0 {
			x = 0
		} else if x >= w {
			x = w - 1
		}
		return float64(img.At(ch, y, x))
	}
	a := get(y0, x0)*(1-tx) + get(y0, x0+1)*tx
	b := get(y0+1, x0)*(1-tx) + get(y0+1, x0+1)*tx
	return a*(1-ty) + b*ty
}
