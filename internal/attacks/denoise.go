package attacks

import (
	"math"
	"sort"

	"amalgam/internal/tensor"
)

// Deep-denoising attack (Fig. 18): the provider treats the uploaded
// augmented image as a "noisy" photo and runs denoisers over it, hoping to
// recover the original. The paper uses Restormer and KBNet; any denoiser
// built on the additive-noise-on-a-fixed-grid assumption shares the
// failure mode (Amalgam inserts pixels, changing the geometry), so we
// substitute classical denoisers (DESIGN.md §4): Gaussian, median, and
// bilateral filtering.

// GaussianBlur convolves each channel with a normalised Gaussian kernel.
func GaussianBlur(img *tensor.Tensor, sigma float64) *tensor.Tensor {
	radius := int(math.Ceil(2 * sigma))
	if radius < 1 {
		radius = 1
	}
	size := 2*radius + 1
	kernel := make([]float64, size)
	var sum float64
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	tmp := tensor.New(c, h, w)
	out := tensor.New(c, h, w)
	// Separable: horizontal then vertical.
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				var s float64
				for k := -radius; k <= radius; k++ {
					xx := clampInt(x+k, 0, w-1)
					s += kernel[k+radius] * float64(img.At(ch, y, xx))
				}
				tmp.Set(float32(s), ch, y, x)
			}
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				var s float64
				for k := -radius; k <= radius; k++ {
					yy := clampInt(y+k, 0, h-1)
					s += kernel[k+radius] * float64(tmp.At(ch, yy, x))
				}
				out.Set(float32(s), ch, y, x)
			}
		}
	}
	return out
}

// MedianFilter replaces each pixel with the median of its (2r+1)² window.
func MedianFilter(img *tensor.Tensor, radius int) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	out := tensor.New(c, h, w)
	window := make([]float64, 0, (2*radius+1)*(2*radius+1))
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				window = window[:0]
				for dy := -radius; dy <= radius; dy++ {
					for dx := -radius; dx <= radius; dx++ {
						yy := clampInt(y+dy, 0, h-1)
						xx := clampInt(x+dx, 0, w-1)
						window = append(window, float64(img.At(ch, yy, xx)))
					}
				}
				sort.Float64s(window)
				out.Set(float32(window[len(window)/2]), ch, y, x)
			}
		}
	}
	return out
}

// BilateralFilter smooths while preserving edges (spatial σs, range σr).
func BilateralFilter(img *tensor.Tensor, sigmaS, sigmaR float64) *tensor.Tensor {
	radius := int(math.Ceil(2 * sigmaS))
	if radius < 1 {
		radius = 1
	}
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	out := tensor.New(c, h, w)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				center := float64(img.At(ch, y, x))
				var num, den float64
				for dy := -radius; dy <= radius; dy++ {
					for dx := -radius; dx <= radius; dx++ {
						yy := clampInt(y+dy, 0, h-1)
						xx := clampInt(x+dx, 0, w-1)
						v := float64(img.At(ch, yy, xx))
						ws := math.Exp(-float64(dy*dy+dx*dx) / (2 * sigmaS * sigmaS))
						wr := math.Exp(-(v - center) * (v - center) / (2 * sigmaR * sigmaR))
						num += ws * wr * v
						den += ws * wr
					}
				}
				out.Set(float32(num/den), ch, y, x)
			}
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DenoiseAttackResult reports PSNR (dB, vs the original image) for one
// denoiser on one input condition.
type DenoiseAttackResult struct {
	Denoiser string
	PSNR     float64
}

// RunDenoiseAttack applies every denoiser to the attacked image and scores
// the recovery against ground truth. If the attacked image's geometry
// differs from the original's (Amalgam augmentation), the attacker must
// naively resize — exactly the step that destroys the recovery.
func RunDenoiseAttack(attacked, original *tensor.Tensor) []DenoiseAttackResult {
	denoisers := []struct {
		name string
		fn   func(*tensor.Tensor) *tensor.Tensor
	}{
		{"gaussian", func(t *tensor.Tensor) *tensor.Tensor { return GaussianBlur(t, 1.0) }},
		{"median", func(t *tensor.Tensor) *tensor.Tensor { return MedianFilter(t, 1) }},
		{"bilateral", func(t *tensor.Tensor) *tensor.Tensor { return BilateralFilter(t, 1.5, 0.2) }},
	}
	oh, ow := original.Dim(1), original.Dim(2)
	out := make([]DenoiseAttackResult, 0, len(denoisers))
	for _, d := range denoisers {
		rec := d.fn(attacked)
		if rec.Dim(1) != oh || rec.Dim(2) != ow {
			rec = ResizeNaive(rec, oh, ow)
		}
		out = append(out, DenoiseAttackResult{Denoiser: d.name, PSNR: PSNR(rec, original)})
	}
	return out
}

// AddGaussianNoise returns img + N(0, σ²) clamped to [0,1] — the control
// condition where denoisers are expected to work.
func AddGaussianNoise(img *tensor.Tensor, sigma float64, rng *tensor.RNG) *tensor.Tensor {
	out := img.Clone()
	for i := range out.Data {
		v := float64(out.Data[i]) + rng.Normal(0, sigma)
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out.Data[i] = float32(v)
	}
	return out
}
