package attacks

import (
	"math"
	"testing"

	"amalgam/internal/autodiff"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/tensor"
)

func TestMetricsBasics(t *testing.T) {
	a := tensor.FromSlice([]float32{0, 0.5, 1}, 3)
	if MSE(a, a) != 0 {
		t.Fatal("MSE(a,a) must be 0")
	}
	if !math.IsInf(PSNR(a, a), 1) {
		t.Fatal("PSNR of identical images must be +Inf")
	}
	b := tensor.FromSlice([]float32{0.1, 0.6, 0.9}, 3)
	if p := PSNR(a, b); p < 15 || p > 25 {
		t.Fatalf("PSNR = %v, want ~20 for 0.1 error", p)
	}
	if c := Pearson(a, a); math.Abs(c-1) > 1e-9 {
		t.Fatalf("Pearson(a,a) = %v", c)
	}
	neg := tensor.FromSlice([]float32{1, 0.5, 0}, 3)
	if c := Pearson(a, neg); math.Abs(c+1) > 1e-9 {
		t.Fatalf("Pearson(a,-a) = %v", c)
	}
}

func TestTotalVariationOrdersSmoothness(t *testing.T) {
	smooth := tensor.New(1, 8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			smooth.Set(float32(x)/8, 0, y, x)
		}
	}
	rng := tensor.NewRNG(1)
	rough := tensor.New(1, 8, 8)
	rng.FillUniform(rough, 0, 1)
	if TotalVariation(smooth) >= TotalVariation(rough) {
		t.Fatal("smooth image must have lower TV than random image")
	}
}

func TestResizeNaiveIdentity(t *testing.T) {
	rng := tensor.NewRNG(2)
	img := tensor.New(3, 6, 6)
	rng.FillUniform(img, 0, 1)
	same := ResizeNaive(img, 6, 6)
	if img.MaxAbsDiff(same) > 1e-5 {
		t.Fatal("same-size resize should be identity")
	}
	up := ResizeNaive(img, 12, 12)
	if up.Dim(1) != 12 || up.Dim(2) != 12 {
		t.Fatalf("resize shape %v", up.Shape())
	}
	for _, v := range up.Data {
		if v < -0.01 || v > 1.01 {
			t.Fatalf("resize out of range: %v", v)
		}
	}
}

func TestClosedFormGradientInversion(t *testing.T) {
	// A first-layer-FC model leaks its input exactly from one example's
	// gradients — the iDLG observation our plain-training condition shows.
	rng := tensor.NewRNG(3)
	m := NewAttackMLP(rng, 16, 8, 3)
	x := tensor.New(1, 16)
	rng.FillUniform(x, 0, 1)
	grads := ObservedGradients(m, x, 1)
	rec := RecoverFromLinearGradients(grads["fc1.weight"], grads["fc1.bias"])
	if rec == nil {
		t.Fatal("closed-form recovery returned nil")
	}
	flat := x.Reshape(16)
	if mse := MSE(rec, flat); mse > 1e-6 {
		t.Fatalf("closed-form recovery MSE %v, want ~0", mse)
	}
}

func TestRecoverLabelFromGradients(t *testing.T) {
	// iDLG: the negative entry of the last bias gradient is the label.
	rng := tensor.NewRNG(21)
	m := NewAttackMLP(rng, 10, 6, 4)
	x := tensor.New(1, 10)
	rng.FillUniform(x, 0, 1)
	for label := 0; label < 4; label++ {
		grads := ObservedGradients(m, x, label)
		if got := RecoverLabelFromGradients(grads["fc2.bias"]); got != label {
			t.Fatalf("label recovery = %d, want %d", got, label)
		}
	}
	// Ambiguous gradient (two negatives) → -1.
	amb := tensor.FromSlice([]float32{-0.1, -0.2, 0.3}, 3)
	if RecoverLabelFromGradients(amb) != -1 {
		t.Fatal("ambiguous gradient should return -1")
	}
}

func TestDLGReconstructsPlainInput(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := NewAttackMLP(rng, 16, 8, 3)
	x := tensor.New(1, 16)
	rng.FillUniform(x, 0.2, 0.8)
	observed := ObservedGradients(m, x, 2)
	opts := DefaultDLGOptions()
	opts.Iterations = 60
	res := DLG(m, []int{1, 16}, 2, observed, opts)
	psnr := PSNR(res.Reconstruction, x)
	if psnr < 15 {
		t.Fatalf("DLG on plain model PSNR %v dB, want > 15", psnr)
	}
}

// TestGradientLeakageFailsUnderAmalgam is the Fig. 16 condition: the same
// attacks against an Amalgam-augmented victim reconstruct garbage.
func TestGradientLeakageFailsUnderAmalgam(t *testing.T) {
	ds := data.GenerateImages(data.ImageConfig{Name: "t", N: 2, C: 1, H: 4, W: 4, Classes: 3, Seed: 5, Noise: 0.05})
	aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{Amount: 0.5, Noise: core.DefaultImageNoise(), Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	augLen := aug.Dataset.H() * aug.Dataset.W()
	victim := newAugmentedMLPVictim(tensor.NewRNG(7), aug.Key, 3)

	orig := ds.Image(0).Reshape(1, 16)
	augmented := aug.Dataset.Image(0).Reshape(1, augLen)
	observed := ObservedGradients(victim, augmented, ds.Labels[0])

	// Closed form against the augmented victim's first layer recovers the
	// AUGMENTED input (or a decoy view), not the original: without the key
	// the attacker cannot project it back.
	rec := RecoverFromLinearGradients(observed["fc1.weight"], observed["fc1.bias"])
	if rec == nil {
		t.Fatal("recovery nil")
	}
	// Attacker's best effort: naive resize of their reconstruction to the
	// original geometry.
	recImg := ResizeNaive(rec.Reshape(1, aug.Dataset.H(), aug.Dataset.W()), 4, 4)
	psnrAug := PSNR(recImg.Reshape(1, 16), orig)

	// Control: same pipeline against the un-augmented victim.
	plain := NewAttackMLP(tensor.NewRNG(7), 16, 12, 3)
	obs2 := ObservedGradients(plain, orig, ds.Labels[0])
	rec2 := RecoverFromLinearGradients(obs2["fc1.weight"], obs2["fc1.bias"])
	psnrPlain := PSNR(rec2, orig.Reshape(16))

	if psnrPlain < 40 {
		t.Fatalf("plain-model leakage PSNR %v, want near-exact", psnrPlain)
	}
	if psnrAug > psnrPlain-20 {
		t.Fatalf("augmented leakage PSNR %v should be far below plain %v", psnrAug, psnrPlain)
	}
}

// augmentedMLPVictim wires an AttackMLP behind Amalgam's gather: the model
// the cloud would actually hold.
type augmentedMLPVictim struct {
	*AttackMLP
	gather *core.SkipGather2d
}

func newAugmentedMLPVictim(rng *tensor.RNG, key *core.ImageAugKey, classes int) *augmentedMLPVictim {
	return &augmentedMLPVictim{
		AttackMLP: NewAttackMLP(rng, key.AugH*key.AugW, 12, classes),
		gather:    core.NewSkipGather2dFromKey(key),
	}
}

// Forward feeds the full augmented input to the MLP (the augmented model
// consumes the entire augmented image, per §4.2).
func (v *augmentedMLPVictim) Forward(x *autodiff.Node) *autodiff.Node {
	return v.AttackMLP.Forward(x)
}

func TestDenoiseAttackControlVsAmalgam(t *testing.T) {
	// Fig. 18: denoisers clean additive Gaussian noise but cannot undo
	// Amalgam augmentation.
	ds := data.SyntheticCIFAR10(1, 8)
	orig := ds.Image(0)
	rng := tensor.NewRNG(9)

	noisy := AddGaussianNoise(orig, 0.2, rng)
	noisyPSNR := PSNR(noisy, orig)
	controlBest := -math.MaxFloat64
	for _, r := range RunDenoiseAttack(noisy, orig) {
		if r.PSNR > controlBest {
			controlBest = r.PSNR
		}
	}
	if controlBest <= noisyPSNR {
		t.Fatalf("denoisers should improve additive noise: %v ≤ %v", controlBest, noisyPSNR)
	}

	aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{
		Amount: 0.2,
		Noise:  core.NoiseSpec{Type: core.NoiseGaussian, Mean: 0.5, Sigma: 0.5, Min: 0, Max: 1},
		Seed:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	augBest := -math.MaxFloat64
	for _, r := range RunDenoiseAttack(aug.Dataset.Image(0), orig) {
		if r.PSNR > augBest {
			augBest = r.PSNR
		}
	}
	if augBest >= controlBest {
		t.Fatalf("denoising augmented image (%.1f dB) should fail vs control (%.1f dB)", augBest, controlBest)
	}
}

func TestOcclusionAttributionFindsSignal(t *testing.T) {
	// A linear model that only reads pixel 5 must attribute everything
	// to pixel 5.
	rng := tensor.NewRNG(11)
	m := NewAttackMLP(rng, 9, 4, 2)
	// Overwrite fc1 so only input 5 matters.
	m.FC1.W.Val.Zero()
	for j := 0; j < 4; j++ {
		m.FC1.W.Val.Set(1, 5, j)
	}
	img := tensor.New(1, 3, 3)
	rng.FillUniform(img, 0.3, 0.9)
	attr := OcclusionAttribution(m, img, 0)
	best := 0
	for i := range attr.Data {
		if math.Abs(float64(attr.Data[i])) > math.Abs(float64(attr.Data[best])) {
			best = i
		}
	}
	if best != 5 {
		t.Fatalf("attribution peaked at %d, want 5 (%v)", best, attr.Data)
	}
}

func TestIdentifySubnetByTV(t *testing.T) {
	// The identification attack should beat chance on very smooth images
	// when decoys are unsorted, but our sorted decoys blunt it; here we
	// only verify mechanics: with one honest set and one garbage set the
	// honest (smooth) reconstruction wins.
	ds := data.SyntheticMNIST(1, 12)
	aug, err := core.AugmentImages(ds, core.ImageAugmentOptions{Amount: 0.5, Noise: core.DefaultImageNoise(), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(14)
	scrambled := make([]int, len(aug.Key.Keep))
	for i := range scrambled {
		scrambled[i] = rng.IntN(aug.Dataset.H() * aug.Dataset.W())
	}
	sets := [][]int{scrambled, aug.Key.Keep}
	guess := IdentifySubnetByTV(aug.Dataset.Image(0), sets, 28, 28)
	if guess != 1 {
		t.Fatalf("TV attack picked %d, want the true keep set (1)", guess)
	}
}
