package attacks

import (
	"math"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// Gradient-leakage attacks (Fig. 16, DLG/iDLG): the cloud, which computes
// gradients during training, tries to reconstruct the training input.
//
// Two attacks are implemented:
//
//   - RecoverFromLinearGradients: the closed-form inversion for a
//     first-layer fully connected network — dW[:,j] = x · dz_j, so
//     x = dW[:,j] / db[j] for any unit with non-zero bias gradient.
//     Exact for batch size 1 (iDLG's observation).
//   - DLG: iterative gradient matching — optimise a dummy input until its
//     gradients match the observed ones (Zhu et al.), with the matching
//     objective differentiated by central finite differences (our autodiff
//     is first-order; the substitution is noted in DESIGN.md §4).

// RecoverFromLinearGradients inverts a single sample from the gradients of
// the first fully connected layer (weight grad [in, out], bias grad
// [out]). Returns nil when no output unit carries usable signal.
func RecoverFromLinearGradients(dW, dB *tensor.Tensor) *tensor.Tensor {
	in, out := dW.Dim(0), dW.Dim(1)
	best := -1
	var bestMag float64
	for j := 0; j < out; j++ {
		if m := math.Abs(float64(dB.Data[j])); m > bestMag {
			bestMag, best = m, j
		}
	}
	if best < 0 || bestMag < 1e-12 {
		return nil
	}
	x := tensor.New(in)
	inv := 1 / dB.Data[best]
	for i := 0; i < in; i++ {
		x.Data[i] = dW.At(i, best) * inv
	}
	return x
}

// GradModel is the attacked network: any model mapping a flat input to
// logits whose parameter gradients the server observes.
type GradModel interface {
	Params() []nn.Param
	Forward(x *autodiff.Node) *autodiff.Node
}

// ObservedGradients computes the gradients the server sees for one
// (input, label) training example.
func ObservedGradients(m GradModel, x *tensor.Tensor, label int) map[string]*tensor.Tensor {
	nn.ZeroGrads(m)
	logits := m.Forward(autodiff.Constant(x))
	autodiff.Backward(autodiff.SoftmaxCrossEntropy(logits, []int{label}))
	out := make(map[string]*tensor.Tensor)
	for _, p := range m.Params() {
		if p.Node.Grad != nil {
			out[p.Name] = p.Node.Grad.Clone()
		}
	}
	return out
}

// gradMatchLoss is the DLG objective: Σ‖∇θL(x̂) − G*‖².
func gradMatchLoss(m GradModel, x *tensor.Tensor, label int, target map[string]*tensor.Tensor) float64 {
	got := ObservedGradients(m, x, label)
	var s float64
	for name, g := range target {
		h, ok := got[name]
		if !ok {
			continue
		}
		for i := range g.Data {
			d := float64(g.Data[i] - h.Data[i])
			s += d * d
		}
	}
	return s
}

// DLGOptions configures the iterative attack.
type DLGOptions struct {
	Iterations int
	LR         float64
	FDEps      float64 // finite-difference step
	Seed       uint64
}

// DefaultDLGOptions mirrors the paper's 84-iteration budget.
func DefaultDLGOptions() DLGOptions {
	return DLGOptions{Iterations: 84, LR: 0.3, FDEps: 1e-2, Seed: 1}
}

// DLGResult reports the attack outcome.
type DLGResult struct {
	Reconstruction *tensor.Tensor
	MatchLoss      float64
	Iterations     int
}

// DLG runs iterative gradient matching against m for the observed
// gradients of a single example with known label (iDLG first recovers the
// label from the sign structure of the last-layer gradient; we grant the
// attacker the label outright, strengthening the attack).
func DLG(m GradModel, inputShape []int, label int, observed map[string]*tensor.Tensor, opts DLGOptions) DLGResult {
	rng := tensor.NewRNG(opts.Seed)
	x := tensor.New(inputShape...)
	rng.FillUniform(x, 0, 1)
	loss := gradMatchLoss(m, x, label, observed)
	// Adam-style moments over the dummy input.
	mom := tensor.New(inputShape...)
	vel := tensor.New(inputShape...)
	const b1, b2, eps = 0.9, 0.999, 1e-8
	for it := 1; it <= opts.Iterations; it++ {
		// Central-difference gradient of the matching loss w.r.t. x.
		grad := tensor.New(inputShape...)
		for i := range x.Data {
			orig := x.Data[i]
			x.Data[i] = orig + float32(opts.FDEps)
			fp := gradMatchLoss(m, x, label, observed)
			x.Data[i] = orig - float32(opts.FDEps)
			fm := gradMatchLoss(m, x, label, observed)
			x.Data[i] = orig
			grad.Data[i] = float32((fp - fm) / (2 * opts.FDEps))
		}
		bc1 := 1 - math.Pow(b1, float64(it))
		bc2 := 1 - math.Pow(b2, float64(it))
		for i := range x.Data {
			mom.Data[i] = b1*mom.Data[i] + (1-b1)*grad.Data[i]
			vel.Data[i] = b2*vel.Data[i] + (1-b2)*grad.Data[i]*grad.Data[i]
			mhat := float64(mom.Data[i]) / bc1
			vhat := float64(vel.Data[i]) / bc2
			x.Data[i] -= float32(opts.LR * mhat / (math.Sqrt(vhat) + eps))
			if x.Data[i] < 0 {
				x.Data[i] = 0
			} else if x.Data[i] > 1 {
				x.Data[i] = 1
			}
		}
		loss = gradMatchLoss(m, x, label, observed)
	}
	return DLGResult{Reconstruction: x, MatchLoss: loss, Iterations: opts.Iterations}
}

// RecoverLabelFromGradients implements iDLG's label-inference step: for
// cross-entropy with batch size 1, the last-layer bias gradient is
// softmax(logits) − onehot(label), so exactly one entry is negative — the
// true label. Returns -1 when the signature is absent (batch > 1 or a
// non-CE loss).
func RecoverLabelFromGradients(lastBiasGrad *tensor.Tensor) int {
	label := -1
	for i, g := range lastBiasGrad.Data {
		if g < 0 {
			if label >= 0 {
				return -1 // more than one negative entry: not a 1-sample CE gradient
			}
			label = i
		}
	}
	return label
}

// AttackMLP is a small two-layer network used as the gradient-leakage
// victim (finite-difference DLG is tractable on it; the closed-form attack
// uses its first layer).
type AttackMLP struct {
	FC1, FC2 *nn.Linear
}

// NewAttackMLP builds the victim model.
func NewAttackMLP(rng *tensor.RNG, in, hidden, classes int) *AttackMLP {
	return &AttackMLP{
		FC1: nn.NewLinear(rng.Split(1), in, hidden),
		FC2: nn.NewLinear(rng.Split(2), hidden, classes),
	}
}

// Forward maps a flat [1, in] input to logits.
func (m *AttackMLP) Forward(x *autodiff.Node) *autodiff.Node {
	flat := autodiff.Flatten(x)
	return m.FC2.Forward(m.FC1.ForwardReLU(flat))
}

// Params returns the victim's parameters.
func (m *AttackMLP) Params() []nn.Param {
	var out []nn.Param
	out = append(out, nn.PrefixParams("fc1", m.FC1.Params())...)
	out = append(out, nn.PrefixParams("fc2", m.FC2.Params())...)
	return out
}

// SetTraining is a no-op.
func (m *AttackMLP) SetTraining(bool) {}
