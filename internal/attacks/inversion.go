package attacks

import (
	"amalgam/internal/autodiff"
	"amalgam/internal/tensor"
)

// Model-inversion probing (Fig. 17): the provider explains the shipped
// model with a SHAP-style attribution method and inspects whether the
// attributions expose the original network's behaviour. We implement
// occlusion attribution — a Shapley-value approximation that measures each
// pixel's marginal contribution to the predicted logit — and quantify the
// distortion augmentation induces.

// Explainable is a model whose logits can be probed.
type Explainable interface {
	Forward(x *autodiff.Node) *autodiff.Node
}

// OcclusionAttribution returns, for a single [C, H, W] image, a [H*W] map
// of each spatial position's contribution to the logit of class label:
// f(x) − f(x with the pixel replaced by the image mean), averaged over
// channels.
func OcclusionAttribution(m Explainable, img *tensor.Tensor, label int) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	mean := float32(tensor.Mean(img))
	batch := img.Reshape(1, c, h, w)
	base := logitOf(m, batch, label)
	out := tensor.New(h * w)
	work := img.Clone()
	workBatch := work.Reshape(1, c, h, w)
	for pos := 0; pos < h*w; pos++ {
		saved := make([]float32, c)
		for ch := 0; ch < c; ch++ {
			saved[ch] = work.Data[ch*h*w+pos]
			work.Data[ch*h*w+pos] = mean
		}
		out.Data[pos] = base - logitOf(m, workBatch, label)
		for ch := 0; ch < c; ch++ {
			work.Data[ch*h*w+pos] = saved[ch]
		}
	}
	return out
}

func logitOf(m Explainable, batch *tensor.Tensor, label int) float32 {
	logits := m.Forward(autodiff.Constant(batch))
	return logits.Val.At(0, label)
}

// AttributionDistortion quantifies Fig. 17: the Pearson correlation
// between the clean model's attribution on the original image and the
// augmented model's attribution on the augmented image, compared in the
// original geometry via the attacker's naive resize (they lack the key).
// Values near zero mean the explanation no longer describes the model.
func AttributionDistortion(cleanAttr *tensor.Tensor, augAttr *tensor.Tensor, origH, origW, augH, augW int) float64 {
	a := cleanAttr.Reshape(1, origH, origW)
	b := ResizeNaive(augAttr.Reshape(1, augH, augW), origH, origW)
	return Pearson(a.Reshape(-1), b.Reshape(-1))
}

// IdentifySubnetByTV is the identification attack against the provider
// view: given the per-sub-network gather sets visible in the shipped graph
// and an uploaded augmented image, reconstruct each sub-network's input
// and rank by total variation — natural images are smooth, so the
// smoothest reconstruction is the attacker's guess for the original
// sub-network. Returns the guessed index within sets.
func IdentifySubnetByTV(augImage *tensor.Tensor, sets [][]int, origH, origW int) int {
	c := augImage.Dim(0)
	plane := augImage.Dim(1) * augImage.Dim(2)
	best := 0
	bestTV := -1.0
	for si, set := range sets {
		rec := tensor.New(c, origH, origW)
		for ch := 0; ch < c; ch++ {
			for i, pos := range set {
				if i >= origH*origW || pos < 0 || pos >= plane {
					continue
				}
				rec.Data[ch*origH*origW+i] = augImage.Data[ch*plane+pos]
			}
		}
		tv := TotalVariation(rec)
		if bestTV < 0 || tv < bestTV {
			bestTV, best = tv, si
		}
	}
	return best
}
