package autodiff

import (
	"fmt"
	"math"
	"testing"

	"amalgam/internal/tensor"
)

// gradCheck compares autodiff gradients against central differences for
// every element of each parameter.
func gradCheck(t *testing.T, params []*Node, loss func() *Node, tol float64) {
	t.Helper()
	root := loss()
	Backward(root)
	grads := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		if p.Grad == nil {
			t.Fatalf("param %d has nil grad after Backward", i)
		}
		grads[i] = p.Grad.Clone()
	}
	const h = 1e-2
	for pi, p := range params {
		for i := range p.Val.Data {
			orig := p.Val.Data[i]
			p.Val.Data[i] = orig + h
			fPlus := float64(loss().Scalar())
			p.Val.Data[i] = orig - h
			fMinus := float64(loss().Scalar())
			p.Val.Data[i] = orig
			num := (fPlus - fMinus) / (2 * h)
			got := float64(grads[pi].Data[i])
			diff := math.Abs(num - got)
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(got)))
			if diff/scale > tol {
				t.Fatalf("param %d elem %d: autodiff %.6f vs numeric %.6f (rel %.4f)", pi, i, got, num, diff/scale)
			}
		}
	}
}

func TestGradLinearChain(t *testing.T) {
	rng := tensor.NewRNG(1)
	w := tensor.New(4, 3)
	b := tensor.New(3)
	x := tensor.New(2, 4)
	rng.FillNormal(w, 0, 0.5)
	rng.FillNormal(b, 0, 0.5)
	rng.FillNormal(x, 0, 1)
	target := tensor.New(2, 3)
	rng.FillNormal(target, 0, 1)

	wN, bN := Leaf(w), Leaf(b)
	loss := func() *Node {
		y := AddRowBias(MatMul(Constant(x), wN), bN)
		return MSE(Tanh(y), target)
	}
	gradCheck(t, []*Node{wN, bN}, loss, 2e-2)
}

func TestGradActivations(t *testing.T) {
	acts := map[string]func(*Node) *Node{
		"relu":    ReLU,
		"relu6":   ReLU6,
		"sigmoid": Sigmoid,
		"tanh":    Tanh,
		"gelu":    GELU,
	}
	// Several shapes, deliberately including sizes that are not multiples
	// of the 8-wide SIMD width so the fused kernels' scalar tails get
	// gradient coverage too.
	shapes := [][]int{{12}, {13}, {3, 13}, {2, 5, 7}, {40}}
	for name, act := range acts {
		for _, shape := range shapes {
			t.Run(fmt.Sprintf("%s/%v", name, shape), func(t *testing.T) {
				rng := tensor.NewRNG(2)
				x := tensor.New(shape...)
				rng.FillNormal(x, 0.3, 1) // offset so few elements sit at ReLU kink
				xN := Leaf(x)
				target := tensor.New(shape...)
				rng.FillNormal(target, 0, 1)
				loss := func() *Node { return MSE(act(xN), target) }
				gradCheck(t, []*Node{xN}, loss, 3e-2)
			})
		}
	}
}

// TestGradFusedActivationEpilogues covers the PR 5 fused bias+activation
// family: Linear→Tanh / Linear→GELU epilogues, the standalone bias+tanh
// row op, and the conv-shaped bias+sigmoid gate. Widths avoid multiples of
// the SIMD width so both dispatch paths contribute.
func TestGradFusedActivationEpilogues(t *testing.T) {
	t.Run("AddRowBiasTanh", func(t *testing.T) {
		rng := tensor.NewRNG(61)
		x := tensor.New(3, 13)
		b := tensor.New(13)
		rng.FillNormal(x, 0.2, 1)
		rng.FillNormal(b, 0, 0.5)
		target := tensor.New(3, 13)
		rng.FillNormal(target, 0, 1)
		xN, bN := Leaf(x), Leaf(b)
		loss := func() *Node { return MSE(AddRowBiasTanh(xN, bN), target) }
		gradCheck(t, []*Node{xN, bN}, loss, 3e-2)
	})
	t.Run("AddChanBiasSigmoid", func(t *testing.T) {
		rng := tensor.NewRNG(62)
		x := tensor.New(2, 3, 3, 3)
		b := tensor.New(3)
		rng.FillNormal(x, 0, 1)
		rng.FillNormal(b, 0, 0.5)
		target := tensor.New(2, 3, 3, 3)
		rng.FillNormal(target, 0, 1)
		xN, bN := Leaf(x), Leaf(b)
		loss := func() *Node { return MSE(AddChanBiasSigmoid(xN, bN), target) }
		gradCheck(t, []*Node{xN, bN}, loss, 3e-2)
	})
	t.Run("LinearTanh", func(t *testing.T) {
		rng := tensor.NewRNG(63)
		x := tensor.New(3, 4)
		w := tensor.New(4, 5)
		b := tensor.New(5)
		rng.FillNormal(x, 0.3, 1)
		rng.FillNormal(w, 0, 0.5)
		rng.FillNormal(b, 0.2, 0.3)
		target := tensor.New(3, 5)
		rng.FillNormal(target, 0, 1)
		xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
		loss := func() *Node { return MSE(LinearTanh(xN, wN, bN), target) }
		gradCheck(t, []*Node{xN, wN, bN}, loss, 3e-2)
	})
	t.Run("LinearGELU", func(t *testing.T) {
		rng := tensor.NewRNG(64)
		x := tensor.New(3, 4)
		w := tensor.New(4, 5)
		b := tensor.New(5)
		rng.FillNormal(x, 0.3, 1)
		rng.FillNormal(w, 0, 0.5)
		rng.FillNormal(b, 0.2, 0.3)
		target := tensor.New(3, 5)
		rng.FillNormal(target, 0, 1)
		xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
		loss := func() *Node { return MSE(LinearGELU(xN, wN, bN), target) }
		gradCheck(t, []*Node{xN, wN, bN}, loss, 3e-2)
	})
	t.Run("Conv2dSigmoid", func(t *testing.T) {
		rng := tensor.NewRNG(65)
		x := tensor.New(2, 2, 5, 5)
		w := tensor.New(3, 2, 3, 3)
		b := tensor.New(3)
		rng.FillNormal(x, 0, 1)
		rng.FillNormal(w, 0, 0.3)
		rng.FillNormal(b, 0, 0.3)
		target := tensor.New(2, 3, 5, 5)
		rng.FillNormal(target, 0, 1)
		xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
		loss := func() *Node { return MSE(Conv2dSigmoid(xN, wN, bN, 1, 1), target) }
		gradCheck(t, []*Node{wN, bN, xN}, loss, 2e-2)
	})
}

// TestGradConv2dStreamedShapes re-runs the conv gradient check (dX, dW,
// db) on the streaming backward at shapes that stress it: batches large
// enough that several column re-lowerings happen, spatial sizes that are
// not SIMD-width multiples, and a 1×1 kernel.
func TestGradConv2dStreamedShapes(t *testing.T) {
	cases := []struct {
		name                                        string
		batch, inC, outC, h, w, kernel, stride, pad int
	}{
		{"batch5-7x9", 5, 3, 4, 7, 9, 3, 2, 1},
		{"batch8-odd", 8, 1, 2, 5, 5, 3, 1, 1},
		{"1x1-kernel", 3, 2, 3, 4, 4, 1, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := tensor.NewRNG(66)
			x := tensor.New(tc.batch, tc.inC, tc.h, tc.w)
			w := tensor.New(tc.outC, tc.inC, tc.kernel, tc.kernel)
			b := tensor.New(tc.outC)
			rng.FillNormal(x, 0, 1)
			rng.FillNormal(w, 0, 0.3)
			rng.FillNormal(b, 0, 0.3)
			xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
			probe := Conv2d(xN, wN, bN, tc.stride, tc.pad)
			target := tensor.New(probe.Val.Shape()...)
			rng.FillNormal(target, 0, 1)
			loss := func() *Node { return MSE(Conv2d(xN, wN, bN, tc.stride, tc.pad), target) }
			gradCheck(t, []*Node{wN, bN, xN}, loss, 2e-2)
		})
	}
}

func TestGradSoftmaxCrossEntropy(t *testing.T) {
	rng := tensor.NewRNG(3)
	logits := tensor.New(5, 4)
	rng.FillNormal(logits, 0, 2)
	labels := []int{0, 3, 1, 2, 2}
	lN := Leaf(logits)
	loss := func() *Node { return SoftmaxCrossEntropy(lN, labels) }
	gradCheck(t, []*Node{lN}, loss, 2e-2)
}

func TestSoftmaxCrossEntropyValue(t *testing.T) {
	// Uniform logits over C classes → loss = ln C.
	logits := tensor.New(3, 4)
	l := SoftmaxCrossEntropy(Leaf(logits), []int{0, 1, 2})
	want := math.Log(4)
	if math.Abs(float64(l.Scalar())-want) > 1e-5 {
		t.Fatalf("uniform CE = %v, want %v", l.Scalar(), want)
	}
}

func TestGradConv2d(t *testing.T) {
	rng := tensor.NewRNG(4)
	x := tensor.New(2, 2, 5, 5)
	w := tensor.New(3, 2, 3, 3)
	b := tensor.New(3)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(w, 0, 0.3)
	rng.FillNormal(b, 0, 0.3)
	target := tensor.New(2, 3, 5, 5)
	rng.FillNormal(target, 0, 1)

	xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
	loss := func() *Node { return MSE(Conv2d(xN, wN, bN, 1, 1), target) }
	gradCheck(t, []*Node{wN, bN, xN}, loss, 2e-2)
}

func TestGradConv2dStride2NoPad(t *testing.T) {
	rng := tensor.NewRNG(5)
	x := tensor.New(1, 1, 6, 6)
	w := tensor.New(2, 1, 2, 2)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(w, 0, 0.5)
	target := tensor.New(1, 2, 3, 3)
	rng.FillNormal(target, 0, 1)
	xN, wN := Leaf(x), Leaf(w)
	loss := func() *Node { return MSE(Conv2d(xN, wN, nil, 2, 0), target) }
	gradCheck(t, []*Node{wN, xN}, loss, 2e-2)
}

func TestGradPooling(t *testing.T) {
	rng := tensor.NewRNG(6)
	x := tensor.New(2, 2, 4, 4)
	rng.FillNormal(x, 0, 1)
	target4 := tensor.New(2, 2, 2, 2)
	rng.FillNormal(target4, 0, 1)
	t.Run("max", func(t *testing.T) {
		xN := Leaf(x.Clone())
		loss := func() *Node { return MSE(MaxPool2d(xN, 2, 2, 0), target4) }
		gradCheck(t, []*Node{xN}, loss, 2e-2)
	})
	t.Run("avg", func(t *testing.T) {
		xN := Leaf(x.Clone())
		loss := func() *Node { return MSE(AvgPool2d(xN, 2, 2, 0), target4) }
		gradCheck(t, []*Node{xN}, loss, 2e-2)
	})
	t.Run("global", func(t *testing.T) {
		xN := Leaf(x.Clone())
		target := tensor.New(2, 2)
		rng.FillNormal(target, 0, 1)
		loss := func() *Node { return MSE(GlobalAvgPool(xN), target) }
		gradCheck(t, []*Node{xN}, loss, 2e-2)
	})
}

func TestGradBatchNorm(t *testing.T) {
	rng := tensor.NewRNG(7)
	x := tensor.New(3, 2, 3, 3)
	rng.FillNormal(x, 1, 2)
	gamma := tensor.Ones(2)
	beta := tensor.New(2)
	rm := tensor.New(2)
	rv := tensor.Ones(2)
	target := tensor.New(3, 2, 3, 3)
	rng.FillNormal(target, 0, 1)

	xN, gN, bN := Leaf(x), Leaf(gamma), Leaf(beta)
	loss := func() *Node {
		// Fresh running stats each call so the forward value is pure.
		return MSE(BatchNorm2d(xN, gN, bN, rm.Clone(), rv.Clone(), 0.1, 1e-5, true), target)
	}
	gradCheck(t, []*Node{gN, bN, xN}, loss, 3e-2)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	x := tensor.Ones(1, 1, 2, 2)
	gamma, beta := tensor.Ones(1), tensor.New(1)
	rm := tensor.FromSlice([]float32{0.5}, 1)
	rv := tensor.FromSlice([]float32{4}, 1)
	y := BatchNorm2d(Constant(x), Leaf(gamma), Leaf(beta), rm, rv, 0.1, 0, false)
	want := float32((1.0 - 0.5) / 2.0)
	if math.Abs(float64(y.Val.Data[0]-want)) > 1e-5 {
		t.Fatalf("eval BN = %v, want %v", y.Val.Data[0], want)
	}
	if rm.Data[0] != 0.5 {
		t.Fatal("eval mode must not update running stats")
	}
}

func TestGradLayerNorm(t *testing.T) {
	rng := tensor.NewRNG(8)
	x := tensor.New(4, 6)
	rng.FillNormal(x, 0.5, 2)
	gamma := tensor.Ones(6)
	beta := tensor.New(6)
	target := tensor.New(4, 6)
	rng.FillNormal(target, 0, 1)
	xN, gN, bN := Leaf(x), Leaf(gamma), Leaf(beta)
	loss := func() *Node { return MSE(LayerNorm(xN, gN, bN, 1e-5), target) }
	gradCheck(t, []*Node{gN, bN, xN}, loss, 3e-2)
}

func TestGradEmbedding(t *testing.T) {
	rng := tensor.NewRNG(9)
	w := tensor.New(10, 4)
	rng.FillNormal(w, 0, 1)
	ids := [][]int{{1, 2, 1}, {0, 9, 3}}
	wN := Leaf(w)
	target := tensor.New(2, 3, 4)
	rng.FillNormal(target, 0, 1)
	loss := func() *Node { return MSE(Embedding(wN, ids), target) }
	gradCheck(t, []*Node{wN}, loss, 2e-2)
}

func TestGradEmbeddingMean(t *testing.T) {
	rng := tensor.NewRNG(10)
	w := tensor.New(8, 3)
	rng.FillNormal(w, 0, 1)
	ids := [][]int{{1, 1, 2}, {7, 0, 4}}
	wN := Leaf(w)
	target := tensor.New(2, 3)
	rng.FillNormal(target, 0, 1)
	loss := func() *Node { return MSE(EmbeddingMean(wN, ids), target) }
	gradCheck(t, []*Node{wN}, loss, 2e-2)
}

func TestGradGatherCols(t *testing.T) {
	rng := tensor.NewRNG(11)
	x := tensor.New(3, 8)
	rng.FillNormal(x, 0, 1)
	idx := []int{7, 2, 2, 0} // repeats allowed — Amalgam subsets may overlap
	xN := Leaf(x)
	target := tensor.New(3, 4)
	rng.FillNormal(target, 0, 1)
	loss := func() *Node { return MSE(GatherCols(xN, idx), target) }
	gradCheck(t, []*Node{xN}, loss, 2e-2)
}

func TestGradConcat(t *testing.T) {
	rng := tensor.NewRNG(12)
	a := tensor.New(2, 3)
	b := tensor.New(2, 2)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	aN, bN := Leaf(a), Leaf(b)
	target := tensor.New(2, 5)
	rng.FillNormal(target, 0, 1)
	loss := func() *Node { return MSE(ConcatFeatures(aN, bN), target) }
	gradCheck(t, []*Node{aN, bN}, loss, 2e-2)

	c := tensor.New(1, 2, 2, 2)
	d := tensor.New(1, 1, 2, 2)
	rng.FillNormal(c, 0, 1)
	rng.FillNormal(d, 0, 1)
	cN, dN := Leaf(c), Leaf(d)
	target2 := tensor.New(1, 3, 2, 2)
	rng.FillNormal(target2, 0, 1)
	loss2 := func() *Node { return MSE(ConcatChannels(cN, dN), target2) }
	gradCheck(t, []*Node{cN, dN}, loss2, 2e-2)
}

func TestGradBatchedMatMulAndTranspose(t *testing.T) {
	rng := tensor.NewRNG(13)
	a := tensor.New(2, 3, 4)
	b := tensor.New(2, 4, 2)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	aN, bN := Leaf(a), Leaf(b)
	target := tensor.New(2, 2, 3)
	rng.FillNormal(target, 0, 1)
	loss := func() *Node { return MSE(Transpose12(BatchedMatMul(aN, bN)), target) }
	gradCheck(t, []*Node{aN, bN}, loss, 2e-2)
}

func TestGradSoftmaxLastDim(t *testing.T) {
	rng := tensor.NewRNG(14)
	x := tensor.New(3, 5)
	rng.FillNormal(x, 0, 2)
	xN := Leaf(x)
	target := tensor.New(3, 5)
	rng.FillNormal(target, 0, 0.3)
	loss := func() *Node { return MSE(SoftmaxLastDim(xN), target) }
	gradCheck(t, []*Node{xN}, loss, 3e-2)
}

func TestDetachBlocksGradient(t *testing.T) {
	// The property Amalgam's model augmenter depends on: a detached tap
	// contributes zero gradient to its source.
	x := tensor.FromSlice([]float32{1, 2}, 1, 2)
	xN := Leaf(x)
	y := Scale(xN, 3)
	tap := Detach(y)
	z := Add(y, tap) // value 2·y but gradient must flow only through y once
	loss := Mean(z)
	Backward(loss)
	// d(mean(2*3x))/dx through the live path only = 3 * (1/2) per element.
	for _, g := range xN.Grad.Data {
		if math.Abs(float64(g)-1.5) > 1e-6 {
			t.Fatalf("detach leaked gradient: grad=%v, want 1.5", g)
		}
	}
}

func TestDropout(t *testing.T) {
	rng := tensor.NewRNG(15)
	x := tensor.Ones(1000)
	xN := Leaf(x)
	out := Dropout(xN, 0.5, rng, true)
	zeros := 0
	for _, v := range out.Val.Data {
		switch v {
		case 0:
			zeros++
		case 2:
		default:
			t.Fatalf("dropout output must be 0 or 2 (inverted scaling), got %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout zeroed %d/1000, want ~500", zeros)
	}
	// Eval mode is identity (same node).
	if Dropout(xN, 0.5, rng, false) != xN {
		t.Fatal("eval-mode dropout should be identity")
	}
	// Backward only flows through kept elements.
	Backward(Mean(out))
	for i, v := range out.Val.Data {
		g := xN.Grad.Data[i]
		if v == 0 && g != 0 {
			t.Fatal("gradient leaked through dropped element")
		}
		if v != 0 && g == 0 {
			t.Fatal("gradient missing on kept element")
		}
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on non-scalar should panic")
		}
	}()
	Backward(Leaf(tensor.New(2)))
}

func TestGradAccumulatesAcrossBackward(t *testing.T) {
	x := tensor.FromSlice([]float32{1}, 1)
	xN := Leaf(x)
	Backward(Scale(xN, 2))
	Backward(Scale(xN, 2))
	if xN.Grad.Data[0] != 4 {
		t.Fatalf("grad should accumulate: got %v, want 4", xN.Grad.Data[0])
	}
	xN.ZeroGrad()
	if xN.Grad.Data[0] != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestSharedSubgraphGradient(t *testing.T) {
	// y = x·x + x → dy/dx = 2x + 1; verifies multi-parent accumulation.
	x := tensor.FromSlice([]float32{3}, 1)
	xN := Leaf(x)
	loss := Sum(Add(Mul(xN, xN), xN))
	Backward(loss)
	if got := xN.Grad.Data[0]; got != 7 {
		t.Fatalf("d(x²+x)/dx at 3 = %v, want 7", got)
	}
}

func TestAddNGradient(t *testing.T) {
	a := Leaf(tensor.FromSlice([]float32{1}, 1))
	b := Leaf(tensor.FromSlice([]float32{2}, 1))
	c := Leaf(tensor.FromSlice([]float32{3}, 1))
	Backward(AddN(a, b, c))
	for _, n := range []*Node{a, b, c} {
		if n.Grad.Data[0] != 1 {
			t.Fatalf("AddN grad = %v, want 1", n.Grad.Data[0])
		}
	}
}

func TestReshapeGradient(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	xN := Leaf(x)
	Backward(Mean(Reshape(xN, 4)))
	for _, g := range xN.Grad.Data {
		if g != 0.25 {
			t.Fatalf("reshape grad %v, want 0.25", g)
		}
	}
}
