package autodiff

import (
	"fmt"

	"amalgam/internal/tensor"
)

// DepthwiseConv2d convolves each input channel with its own single filter:
// x [N, C, H, W], w [C, KH, KW] → [N, C, OH, OW]. MobileNetV2's inverted
// residual blocks are built from this plus 1×1 convolutions.
func DepthwiseConv2d(x, w *Node, stride, pad int) *Node {
	xs, ws := x.Val.Shape(), w.Val.Shape()
	if len(xs) != 4 || len(ws) != 3 || ws[0] != xs[1] {
		panic(fmt.Sprintf("autodiff: DepthwiseConv2d shapes x%v w%v", xs, ws))
	}
	n, c := xs[0], xs[1]
	g := &tensor.ConvGeom{
		InC: 1, InH: xs[2], InW: xs[3],
		KH: ws[1], KW: ws[2],
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	kh, kw := ws[1], ws[2]
	inHW := xs[2] * xs[3]
	outHW := g.OutH * g.OutW
	val := tensor.Get(n, c, g.OutH, g.OutW)
	forEachImage(n*c, func(bc int) {
		ch := bc % c
		xBase := bc * inHW
		oBase := bc * outHW
		wBase := ch * kh * kw
		for oh := 0; oh < g.OutH; oh++ {
			for ow := 0; ow < g.OutW; ow++ {
				var s float32
				for dkh := 0; dkh < kh; dkh++ {
					ih := oh*stride - pad + dkh
					if ih < 0 || ih >= xs[2] {
						continue
					}
					for dkw := 0; dkw < kw; dkw++ {
						iw := ow*stride - pad + dkw
						if iw < 0 || iw >= xs[3] {
							continue
						}
						s += x.Val.Data[xBase+ih*xs[3]+iw] * w.Val.Data[wBase+dkh*kw+dkw]
					}
				}
				val.Data[oBase+oh*g.OutW+ow] = s
			}
		}
	})
	out := newPooledNode(val, []*Node{x, w}, nil)
	out.backward = func() {
		if x.requiresGrad {
			xg := x.ensureGrad()
			forEachImage(n*c, func(bc int) {
				ch := bc % c
				xBase := bc * inHW
				oBase := bc * outHW
				wBase := ch * kh * kw
				for oh := 0; oh < g.OutH; oh++ {
					for ow := 0; ow < g.OutW; ow++ {
						gv := out.Grad.Data[oBase+oh*g.OutW+ow]
						if gv == 0 {
							continue
						}
						for dkh := 0; dkh < kh; dkh++ {
							ih := oh*stride - pad + dkh
							if ih < 0 || ih >= xs[2] {
								continue
							}
							for dkw := 0; dkw < kw; dkw++ {
								iw := ow*stride - pad + dkw
								if iw < 0 || iw >= xs[3] {
									continue
								}
								xg.Data[xBase+ih*xs[3]+iw] += gv * w.Val.Data[wBase+dkh*kw+dkw]
							}
						}
					}
				}
			})
		}
		if w.requiresGrad {
			// Sequential over batch for deterministic accumulation.
			wg := w.ensureGrad()
			for b := 0; b < n; b++ {
				for ch := 0; ch < c; ch++ {
					xBase := (b*c + ch) * inHW
					oBase := (b*c + ch) * outHW
					wBase := ch * kh * kw
					for oh := 0; oh < g.OutH; oh++ {
						for ow := 0; ow < g.OutW; ow++ {
							gv := out.Grad.Data[oBase+oh*g.OutW+ow]
							if gv == 0 {
								continue
							}
							for dkh := 0; dkh < kh; dkh++ {
								ih := oh*stride - pad + dkh
								if ih < 0 || ih >= xs[2] {
									continue
								}
								for dkw := 0; dkw < kw; dkw++ {
									iw := ow*stride - pad + dkw
									if iw < 0 || iw >= xs[3] {
										continue
									}
									wg.Data[wBase+dkh*kw+dkw] += gv * x.Val.Data[xBase+ih*xs[3]+iw]
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}
