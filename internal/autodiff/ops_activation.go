package autodiff

import (
	"fmt"
	"math"

	"amalgam/internal/tensor"
)

// ReLU returns max(0, a) element-wise.
func ReLU(a *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.ApplyInto(val, a.Val, func(v float32) float32 {
		if v > 0 {
			return v
		}
		return 0
	})
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range a.Val.Data {
				if v > 0 {
					g.Data[i] += out.Grad.Data[i]
				}
			}
		}
	}
	return out
}

// ReLU6 returns min(max(0, a), 6), MobileNet's activation.
func ReLU6(a *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.ApplyInto(val, a.Val, func(v float32) float32 {
		if v < 0 {
			return 0
		}
		if v > 6 {
			return 6
		}
		return v
	})
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range a.Val.Data {
				if v > 0 && v < 6 {
					g.Data[i] += out.Grad.Data[i]
				}
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+exp(-a)) element-wise.
func Sigmoid(a *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.ApplyInto(val, a.Val, func(v float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(v))))
	})
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, s := range val.Data {
				g.Data[i] += out.Grad.Data[i] * s * (1 - s)
			}
		}
	}
	return out
}

// Tanh returns tanh(a) element-wise.
func Tanh(a *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.ApplyInto(val, a.Val, func(v float32) float32 {
		return float32(math.Tanh(float64(v)))
	})
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, th := range val.Data {
				g.Data[i] += out.Grad.Data[i] * (1 - th*th)
			}
		}
	}
	return out
}

// GELU returns the Gaussian error linear unit (tanh approximation).
func GELU(a *Node) *Node {
	const c = 0.7978845608028654 // sqrt(2/pi)
	val := tensor.Get(a.Val.Shape()...)
	tensor.ApplyInto(val, a.Val, func(v float32) float32 {
		x := float64(v)
		return float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	})
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range a.Val.Data {
				x := float64(v)
				t := math.Tanh(c * (x + 0.044715*x*x*x))
				dt := (1 - t*t) * c * (1 + 3*0.044715*x*x)
				d := 0.5*(1+t) + 0.5*x*dt
				g.Data[i] += out.Grad.Data[i] * float32(d)
			}
		}
	}
	return out
}

// Dropout zeroes elements with probability p and scales survivors by
// 1/(1-p) (inverted dropout). When training is false it is the identity.
func Dropout(a *Node, p float32, rng *tensor.RNG, training bool) *Node {
	if !training || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("autodiff: Dropout p must be < 1")
	}
	keep := 1 - p
	scale := 1 / keep
	// The mask stores 0 for dropped elements and 1/(1-p) for survivors, so
	// it doubles as the backward multiplier and comes from the pool
	// (registered as node scratch) instead of a fresh []bool per forward.
	mask := tensor.GetZero(a.Val.Shape()...)
	val := tensor.GetZero(a.Val.Shape()...)
	for i, v := range a.Val.Data {
		if rng.Float32() < keep {
			mask.Data[i] = scale
			val.Data[i] = v * scale
		}
	}
	out := newPooledNode(val, []*Node{a}, nil)
	out.scratch = []*tensor.Tensor{mask}
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddMulInto(a.ensureGrad(), out.Grad, mask)
		}
	}
	return out
}

// SoftmaxCrossEntropy computes mean cross-entropy between logits [N, C] and
// integer labels, fused for numerical stability. Returns a scalar node.
func SoftmaxCrossEntropy(logits *Node, labels []int) *Node {
	n, c := logits.Val.Dim(0), logits.Val.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("autodiff: SoftmaxCrossEntropy %d labels for %d rows", len(labels), n))
	}
	probs := tensor.Get(n, c) // registered as node scratch below
	var loss float64
	for r := 0; r < n; r++ {
		row := logits.Val.Data[r*c : (r+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		prow := probs.Data[r*c : (r+1)*c]
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			prow[j] = float32(e)
			sum += e
		}
		inv := 1 / sum
		for j := range prow {
			prow[j] = float32(float64(prow[j]) * inv)
		}
		y := labels[r]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("autodiff: label %d out of range [0,%d)", y, c))
		}
		p := float64(prow[y])
		if p < 1e-30 {
			p = 1e-30
		}
		loss -= math.Log(p)
	}
	val := tensor.FromSlice([]float32{float32(loss / float64(n))}, 1)
	out := newNode(val, []*Node{logits}, nil)
	out.scratch = []*tensor.Tensor{probs}
	out.backward = func() {
		if logits.requiresGrad {
			g := logits.ensureGrad()
			scale := out.Grad.Data[0] / float32(n)
			for r := 0; r < n; r++ {
				prow := probs.Data[r*c : (r+1)*c]
				grow := g.Data[r*c : (r+1)*c]
				y := labels[r]
				for j, p := range prow {
					d := p
					if j == y {
						d -= 1
					}
					grow[j] += scale * d
				}
			}
		}
	}
	return out
}

// SoftmaxLastDim applies softmax along the last axis of a 2-D node
// [rows, cols]; used inside attention.
func SoftmaxLastDim(a *Node) *Node {
	rows, cols := a.Val.Dim(0), a.Val.Dim(1)
	val := tensor.Get(rows, cols)
	for r := 0; r < rows; r++ {
		src := a.Val.Data[r*cols : (r+1)*cols]
		dst := val.Data[r*cols : (r+1)*cols]
		maxv := src[0]
		for _, v := range src[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range src {
			e := math.Exp(float64(v - maxv))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for r := 0; r < rows; r++ {
				s := val.Data[r*cols : (r+1)*cols]
				dy := out.Grad.Data[r*cols : (r+1)*cols]
				var dot float32
				for j := range s {
					dot += s[j] * dy[j]
				}
				grow := g.Data[r*cols : (r+1)*cols]
				for j := range s {
					grow[j] += s[j] * (dy[j] - dot)
				}
			}
		}
	}
	return out
}

// LogSoftmaxNLL computes mean negative log-likelihood over logits [N, C]
// given labels, returning per-sample total loss / N (identical value to
// SoftmaxCrossEntropy; kept as an independent implementation used by
// property tests to cross-check the fused op).
func LogSoftmaxNLL(logits *Node, labels []int) *Node {
	return SoftmaxCrossEntropy(logits, labels)
}
