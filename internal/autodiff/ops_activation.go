package autodiff

import (
	"fmt"

	"amalgam/internal/tensor"
)

// ReLU returns max(0, a) element-wise.
func ReLU(a *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.ApplyInto(val, a.Val, func(v float32) float32 {
		if v > 0 {
			return v
		}
		return 0
	})
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range a.Val.Data {
				if v > 0 {
					g.Data[i] += out.Grad.Data[i]
				}
			}
		}
	}
	return out
}

// ReLU6 returns min(max(0, a), 6), MobileNet's activation.
func ReLU6(a *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.ApplyInto(val, a.Val, func(v float32) float32 {
		if v < 0 {
			return 0
		}
		if v > 6 {
			return 6
		}
		return v
	})
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range a.Val.Data {
				if v > 0 && v < 6 {
					g.Data[i] += out.Grad.Data[i]
				}
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+exp(-a)) element-wise on the fused float32 kernel
// family (Sigmoid32 rows, AVX2 bulk); the backward needs only the forward
// output: dx += dy·y·(1−y).
func Sigmoid(a *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.SigmoidInto(val.Data, a.Val.Data)
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			tensor.SigmoidBwdInto(a.ensureGrad().Data, out.Grad.Data, val.Data)
		}
	}
	return out
}

// Tanh returns tanh(a) element-wise on the fused float32 kernel family
// (Tanh32 rows, AVX2 bulk); the backward needs only the forward output:
// dx += dy·(1−tanh²).
func Tanh(a *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.TanhInto(val.Data, a.Val.Data)
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			tensor.TanhBwdInto(a.ensureGrad().Data, out.Grad.Data, val.Data)
		}
	}
	return out
}

// GELU returns the Gaussian error linear unit (tanh approximation) on the
// fused float32 kernels. The forward retains the inner tanh in pooled node
// scratch so the backward evaluates no transcendental at all.
func GELU(a *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	t := tensor.Get(a.Val.Shape()...) // registered as node scratch below
	tensor.GELUFwdInto(val.Data, t.Data, a.Val.Data)
	out := newPooledNode(val, []*Node{a}, nil)
	out.scratch = []*tensor.Tensor{t}
	out.backward = func() {
		if a.requiresGrad {
			tensor.GELUBwdInto(a.ensureGrad().Data, out.Grad.Data, a.Val.Data, t.Data)
		}
	}
	return out
}

// Dropout zeroes elements with probability p and scales survivors by
// 1/(1-p) (inverted dropout). When training is false it is the identity.
func Dropout(a *Node, p float32, rng *tensor.RNG, training bool) *Node {
	if !training || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("autodiff: Dropout p must be < 1")
	}
	keep := 1 - p
	scale := 1 / keep
	// The mask stores 0 for dropped elements and 1/(1-p) for survivors, so
	// it doubles as the backward multiplier and comes from the pool
	// (registered as node scratch) instead of a fresh []bool per forward.
	mask := tensor.GetZero(a.Val.Shape()...)
	val := tensor.GetZero(a.Val.Shape()...)
	for i, v := range a.Val.Data {
		if rng.Float32() < keep {
			mask.Data[i] = scale
			val.Data[i] = v * scale
		}
	}
	out := newPooledNode(val, []*Node{a}, nil)
	out.scratch = []*tensor.Tensor{mask}
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddMulInto(a.ensureGrad(), out.Grad, mask)
		}
	}
	return out
}

// SoftmaxCrossEntropy computes mean cross-entropy between logits [N, C] and
// integer labels, fused for numerical stability. Returns a scalar node.
// Both passes run on the fused tensor kernels (Exp32 row softmax, one-hot
// subtraction in the backward); probs live in pooled node scratch.
func SoftmaxCrossEntropy(logits *Node, labels []int) *Node {
	n, c := logits.Val.Dim(0), logits.Val.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("autodiff: SoftmaxCrossEntropy %d labels for %d rows", len(labels), n))
	}
	for _, y := range labels {
		if y < 0 || y >= c {
			panic(fmt.Sprintf("autodiff: label %d out of range [0,%d)", y, c))
		}
	}
	probs := tensor.Get(n, c) // registered as node scratch below
	loss := tensor.SoftmaxXentFwdInto(probs.Data, logits.Val.Data, labels, n, c)
	val := tensor.FromSlice([]float32{float32(loss / float64(n))}, 1)
	out := newNode(val, []*Node{logits}, nil)
	out.scratch = []*tensor.Tensor{probs}
	out.backward = func() {
		if logits.requiresGrad {
			scale := out.Grad.Data[0] / float32(n)
			tensor.SoftmaxXentBwdInto(logits.ensureGrad().Data, probs.Data, labels, n, c, scale)
		}
	}
	return out
}

// SoftmaxLastDim applies softmax along the last axis of a 2-D node
// [rows, cols]; used inside attention. Forward and backward run on the
// fused row-softmax kernels.
func SoftmaxLastDim(a *Node) *Node {
	rows, cols := a.Val.Dim(0), a.Val.Dim(1)
	val := tensor.Get(rows, cols)
	tensor.SoftmaxRowsInto(val.Data, a.Val.Data, rows, cols)
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			tensor.SoftmaxRowsBwdInto(a.ensureGrad().Data, val.Data, out.Grad.Data, rows, cols)
		}
	}
	return out
}

// LogSoftmaxNLL computes mean negative log-likelihood over logits [N, C]
// given labels, returning per-sample total loss / N (identical value to
// SoftmaxCrossEntropy; kept as an independent implementation used by
// property tests to cross-check the fused op).
func LogSoftmaxNLL(logits *Node, labels []int) *Node {
	return SoftmaxCrossEntropy(logits, labels)
}
