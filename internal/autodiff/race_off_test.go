//go:build !race

package autodiff

const raceEnabled = false
