package autodiff

import (
	"fmt"

	"amalgam/internal/tensor"
)

// Add returns a + b (same shapes).
func Add(a, b *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.AddOut(val, a.Val, b.Val)
	out := newPooledNode(val, []*Node{a, b}, nil)
	out.backward = func() {
		a.accumulate(out.Grad)
		b.accumulate(out.Grad)
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.SubOut(val, a.Val, b.Val)
	out := newPooledNode(val, []*Node{a, b}, nil)
	out.backward = func() {
		a.accumulate(out.Grad)
		if b.requiresGrad {
			tensor.AddScaledInto(b.ensureGrad(), -1, out.Grad)
		}
	}
	return out
}

// Mul returns the element-wise product a ⊙ b.
func Mul(a, b *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.MulOut(val, a.Val, b.Val)
	out := newPooledNode(val, []*Node{a, b}, nil)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddMulInto(a.ensureGrad(), out.Grad, b.Val)
		}
		if b.requiresGrad {
			tensor.AddMulInto(b.ensureGrad(), out.Grad, a.Val)
		}
	}
	return out
}

// Scale returns alpha * a.
func Scale(a *Node, alpha float32) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.ScaleOut(val, alpha, a.Val)
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			tensor.AddScaledInto(a.ensureGrad(), alpha, out.Grad)
		}
	}
	return out
}

// AddN sums any number of same-shaped nodes. Used to combine per-subnet
// losses into Amalgam's joint training objective (Algorithm 1).
func AddN(nodes ...*Node) *Node {
	if len(nodes) == 0 {
		panic("autodiff: AddN of nothing")
	}
	val := tensor.Get(nodes[0].Val.Shape()...)
	val.CopyFrom(nodes[0].Val)
	for _, n := range nodes[1:] {
		tensor.AddInto(val, n.Val)
	}
	parents := append([]*Node(nil), nodes...)
	out := newPooledNode(val, parents, nil)
	out.backward = func() {
		for _, n := range parents {
			n.accumulate(out.Grad)
		}
	}
	return out
}

// AddRowBias adds a bias vector [D] to every row of a [N, D] matrix.
func AddRowBias(x, bias *Node) *Node {
	n, d := x.Val.Dim(0), x.Val.Dim(1)
	if bias.Val.Numel() != d {
		panic(fmt.Sprintf("autodiff: AddRowBias dims %v + %v", x.Val.Shape(), bias.Val.Shape()))
	}
	val := tensor.Get(x.Val.Shape()...)
	val.CopyFrom(x.Val)
	for r := 0; r < n; r++ {
		row := val.Data[r*d : (r+1)*d]
		for j := range row {
			row[j] += bias.Val.Data[j]
		}
	}
	out := newPooledNode(val, []*Node{x, bias}, nil)
	out.backward = func() {
		x.accumulate(out.Grad)
		if bias.requiresGrad {
			bg := bias.ensureGrad()
			for r := 0; r < n; r++ {
				row := out.Grad.Data[r*d : (r+1)*d]
				for j := range row {
					bg.Data[j] += row[j]
				}
			}
		}
	}
	return out
}

// AddChanBias adds a per-channel bias [C] to an image batch [N, C, H, W].
func AddChanBias(x, bias *Node) *Node {
	sh := x.Val.Shape()
	if len(sh) != 4 || bias.Val.Numel() != sh[1] {
		panic(fmt.Sprintf("autodiff: AddChanBias dims %v + %v", sh, bias.Val.Shape()))
	}
	n, c, hw := sh[0], sh[1], sh[2]*sh[3]
	val := tensor.Get(x.Val.Shape()...)
	val.CopyFrom(x.Val)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			bv := bias.Val.Data[ch]
			for i := 0; i < hw; i++ {
				val.Data[base+i] += bv
			}
		}
	}
	out := newPooledNode(val, []*Node{x, bias}, nil)
	out.backward = func() {
		x.accumulate(out.Grad)
		if bias.requiresGrad {
			bg := bias.ensureGrad()
			for b := 0; b < n; b++ {
				for ch := 0; ch < c; ch++ {
					base := (b*c + ch) * hw
					var s float32
					for i := 0; i < hw; i++ {
						s += out.Grad.Data[base+i]
					}
					bg.Data[ch] += s
				}
			}
		}
	}
	return out
}

// MatMul returns a × b for 2-D nodes.
func MatMul(a, b *Node) *Node {
	val := tensor.Get(a.Val.Dim(0), b.Val.Dim(1))
	tensor.MatMulInto(val, a.Val, b.Val)
	out := newPooledNode(val, []*Node{a, b}, nil)
	out.backward = func() {
		if a.requiresGrad {
			tmp := tensor.Get(a.Val.Shape()...)
			tensor.MatMulBTInto(tmp, out.Grad, b.Val) // dA = dY·Bᵀ
			tensor.AddInto(a.ensureGrad(), tmp)
			tensor.Put(tmp)
		}
		if b.requiresGrad {
			tmp := tensor.Get(b.Val.Shape()...)
			tensor.MatMulATInto(tmp, a.Val, out.Grad) // dB = Aᵀ·dY
			tensor.AddInto(b.ensureGrad(), tmp)
			tensor.Put(tmp)
		}
	}
	return out
}

// Reshape returns a view of a with a new shape.
func Reshape(a *Node, shape ...int) *Node {
	val := a.Val.Reshape(shape...)
	out := newNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := out.Grad.Reshape(a.Val.Shape()...)
			tensor.AddInto(a.ensureGrad(), g)
		}
	}
	return out
}

// Flatten reshapes [N, ...] to [N, features].
func Flatten(a *Node) *Node {
	n := a.Val.Dim(0)
	return Reshape(a, n, -1)
}

// Detach returns a node with the same value but no gradient path to a.
// This is the mechanism behind Amalgam's original→decoy taps: decoy
// sub-networks may consume original activations without ever influencing
// the original parameters' gradients.
func Detach(a *Node) *Node {
	return Constant(a.Val)
}

// ConcatFeatures concatenates [N, D_i] nodes along the feature axis.
func ConcatFeatures(nodes ...*Node) *Node {
	if len(nodes) == 0 {
		panic("autodiff: ConcatFeatures of nothing")
	}
	n := nodes[0].Val.Dim(0)
	total := 0
	for _, nd := range nodes {
		if nd.Val.Dims() != 2 || nd.Val.Dim(0) != n {
			panic(fmt.Sprintf("autodiff: ConcatFeatures shape %v", nd.Val.Shape()))
		}
		total += nd.Val.Dim(1)
	}
	val := tensor.Get(n, total)
	off := 0
	for _, nd := range nodes {
		d := nd.Val.Dim(1)
		for r := 0; r < n; r++ {
			copy(val.Data[r*total+off:r*total+off+d], nd.Val.Data[r*d:(r+1)*d])
		}
		off += d
	}
	parents := append([]*Node(nil), nodes...)
	out := newPooledNode(val, parents, nil)
	out.backward = func() {
		off := 0
		for _, nd := range parents {
			d := nd.Val.Dim(1)
			if nd.requiresGrad {
				g := nd.ensureGrad()
				for r := 0; r < n; r++ {
					src := out.Grad.Data[r*total+off : r*total+off+d]
					dst := g.Data[r*d : (r+1)*d]
					for i := range src {
						dst[i] += src[i]
					}
				}
			}
			off += d
		}
	}
	return out
}

// ConcatChannels concatenates [N, C_i, H, W] nodes along the channel axis
// (DenseNet's core operation).
func ConcatChannels(nodes ...*Node) *Node {
	if len(nodes) == 0 {
		panic("autodiff: ConcatChannels of nothing")
	}
	sh := nodes[0].Val.Shape()
	n, h, w := sh[0], sh[2], sh[3]
	totalC := 0
	for _, nd := range nodes {
		s := nd.Val.Shape()
		if len(s) != 4 || s[0] != n || s[2] != h || s[3] != w {
			panic(fmt.Sprintf("autodiff: ConcatChannels shape %v vs %v", s, sh))
		}
		totalC += s[1]
	}
	hw := h * w
	val := tensor.Get(n, totalC, h, w)
	chOff := 0
	for _, nd := range nodes {
		c := nd.Val.Dim(1)
		for b := 0; b < n; b++ {
			src := nd.Val.Data[b*c*hw : (b+1)*c*hw]
			dst := val.Data[(b*totalC+chOff)*hw : (b*totalC+chOff+c)*hw]
			copy(dst, src)
		}
		chOff += c
	}
	parents := append([]*Node(nil), nodes...)
	out := newPooledNode(val, parents, nil)
	out.backward = func() {
		chOff := 0
		for _, nd := range parents {
			c := nd.Val.Dim(1)
			if nd.requiresGrad {
				g := nd.ensureGrad()
				for b := 0; b < n; b++ {
					src := out.Grad.Data[(b*totalC+chOff)*hw : (b*totalC+chOff+c)*hw]
					dst := g.Data[b*c*hw : (b+1)*c*hw]
					for i := range src {
						dst[i] += src[i]
					}
				}
			}
			chOff += c
		}
	}
	return out
}

// Mean returns the scalar mean of all elements.
func Mean(a *Node) *Node {
	val := tensor.FromSlice([]float32{float32(tensor.Mean(a.Val))}, 1)
	out := newNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := out.Grad.Data[0] / float32(a.Val.Numel())
			ag := a.ensureGrad()
			for i := range ag.Data {
				ag.Data[i] += g
			}
		}
	}
	return out
}

// Sum returns the scalar sum of all elements.
func Sum(a *Node) *Node {
	val := tensor.FromSlice([]float32{float32(tensor.Sum(a.Val))}, 1)
	out := newNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := out.Grad.Data[0]
			ag := a.ensureGrad()
			for i := range ag.Data {
				ag.Data[i] += g
			}
		}
	}
	return out
}

// MSE returns mean squared error between a and target (target is constant).
func MSE(a *Node, target *tensor.Tensor) *Node {
	diff := tensor.Sub(a.Val, target)
	var s float64
	for _, v := range diff.Data {
		s += float64(v) * float64(v)
	}
	val := tensor.FromSlice([]float32{float32(s / float64(diff.Numel()))}, 1)
	out := newNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			scale := 2 * out.Grad.Data[0] / float32(diff.Numel())
			ag := a.ensureGrad()
			for i := range ag.Data {
				ag.Data[i] += scale * diff.Data[i]
			}
		}
	}
	return out
}

// GatherCols selects columns idx (same for every row) from a [N, F] node,
// producing [N, len(idx)]. Backward scatter-adds. This op is the
// differentiable primitive under Amalgam's SkipConv2d and SkipEmbedding:
// the secret index subset is the gather pattern.
func GatherCols(a *Node, idx []int) *Node {
	n, f := a.Val.Dim(0), a.Val.Dim(1)
	k := len(idx)
	for _, j := range idx {
		if j < 0 || j >= f {
			panic(fmt.Sprintf("autodiff: GatherCols index %d out of range [0,%d)", j, f))
		}
	}
	val := tensor.Get(n, k)
	for r := 0; r < n; r++ {
		src := a.Val.Data[r*f : (r+1)*f]
		dst := val.Data[r*k : (r+1)*k]
		for i, j := range idx {
			dst[i] = src[j]
		}
	}
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for r := 0; r < n; r++ {
				src := out.Grad.Data[r*k : (r+1)*k]
				dst := g.Data[r*f : (r+1)*f]
				for i, j := range idx {
					dst[j] += src[i]
				}
			}
		}
	}
	return out
}
