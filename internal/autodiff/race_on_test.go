//go:build race

package autodiff

// raceEnabled lets allocation-count tests skip under the race detector,
// where sync.Pool deliberately drops puts at random (to shake out races)
// and pool-hit allocation counts become meaningless.
const raceEnabled = true
