package autodiff

import (
	"fmt"
	"testing"

	"amalgam/internal/tensor"
)

// convRun executes one Conv2d forward+backward and returns the output
// value plus both gradients, cloned so pooled buffers can be recycled.
func convRun(t *testing.T, seed uint64, batch, inC, outC, h, w, kernel, stride, pad int) (out, dx, dw *tensor.Tensor) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	x := tensor.New(batch, inC, h, w)
	wt := tensor.New(outC, inC, kernel, kernel)
	bias := tensor.New(outC)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(wt, 0, 0.5)
	rng.FillNormal(bias, 0, 0.5)

	xN, wN, bN := Leaf(x), Leaf(wt), Leaf(bias)
	loss := Mean(Conv2d(xN, wN, bN, stride, pad))
	Backward(loss)
	out = loss.Val.Clone()
	dx = xN.Grad.Clone()
	dw = wN.Grad.Clone()
	Release(loss)
	return out, dx, dw
}

// TestDeterminismAcrossWorkers is the repo's determinism contract as a
// table test: the blocked MatMul variants and the im2col Conv2d
// forward+backward must produce bit-identical outputs AND gradients at
// SetMaxWorkers(1) and SetMaxWorkers(8) (plus in-between counts that force
// uneven chunking).
func TestDeterminismAcrossWorkers(t *testing.T) {
	workerCounts := []int{2, 3, 8}

	t.Run("MatMulForwardBackward", func(t *testing.T) {
		run := func() (out, da, db *tensor.Tensor) {
			rng := tensor.NewRNG(5)
			a := tensor.New(33, 17)
			b := tensor.New(17, 29)
			rng.FillNormal(a, 0, 1)
			rng.FillNormal(b, 0, 1)
			aN, bN := Leaf(a), Leaf(b)
			loss := Mean(MatMul(aN, bN))
			Backward(loss)
			out, da, db = loss.Val.Clone(), aN.Grad.Clone(), bN.Grad.Clone()
			Release(loss)
			return out, da, db
		}
		prev := tensor.SetMaxWorkers(1)
		defer tensor.SetMaxWorkers(prev)
		refOut, refDa, refDb := run()
		for _, wk := range workerCounts {
			tensor.SetMaxWorkers(wk)
			out, da, db := run()
			if !out.Equal(refOut) || !da.Equal(refDa) || !db.Equal(refDb) {
				t.Errorf("workers=%d: MatMul fwd/bwd not bit-identical to workers=1", wk)
			}
		}
	})

	// The PR 2 fused kernel family, run through autodiff on the persistent
	// worker pool: forward values and every gradient must be bit-identical
	// across worker counts.
	t.Run("LayerNormFwdBwd", func(t *testing.T) {
		run := func() (out, dx, dg *tensor.Tensor) {
			rng := tensor.NewRNG(17)
			x := tensor.New(37, 96) // odd row count forces uneven chunks
			rng.FillNormal(x, 0.3, 2)
			gamma, beta := tensor.Ones(96), tensor.New(96)
			xN, gN, bN := Leaf(x), Leaf(gamma), Leaf(beta)
			loss := Mean(LayerNorm(xN, gN, bN, 1e-5))
			Backward(loss)
			out, dx, dg = loss.Val.Clone(), xN.Grad.Clone(), gN.Grad.Clone()
			Release(loss)
			return out, dx, dg
		}
		prev := tensor.SetMaxWorkers(1)
		defer tensor.SetMaxWorkers(prev)
		refOut, refDx, refDg := run()
		for _, wk := range workerCounts {
			tensor.SetMaxWorkers(wk)
			out, dx, dg := run()
			if !out.Equal(refOut) || !dx.Equal(refDx) || !dg.Equal(refDg) {
				t.Errorf("workers=%d: LayerNorm fwd/bwd not bit-identical to workers=1", wk)
			}
		}
	})

	t.Run("BatchNormFwdBwd", func(t *testing.T) {
		run := func() (out, dx, rmOut *tensor.Tensor) {
			rng := tensor.NewRNG(18)
			x := tensor.New(5, 13, 6, 6)
			rng.FillNormal(x, 0.5, 1.5)
			gamma, beta := tensor.Ones(13), tensor.New(13)
			rm, rv := tensor.New(13), tensor.Ones(13)
			xN, gN, bN := Leaf(x), Leaf(gamma), Leaf(beta)
			loss := Mean(BatchNorm2d(xN, gN, bN, rm, rv, 0.1, 1e-5, true))
			Backward(loss)
			out, dx, rmOut = loss.Val.Clone(), xN.Grad.Clone(), rm.Clone()
			Release(loss)
			return out, dx, rmOut
		}
		prev := tensor.SetMaxWorkers(1)
		defer tensor.SetMaxWorkers(prev)
		refOut, refDx, refRm := run()
		for _, wk := range workerCounts {
			tensor.SetMaxWorkers(wk)
			out, dx, rm := run()
			if !out.Equal(refOut) || !dx.Equal(refDx) || !rm.Equal(refRm) {
				t.Errorf("workers=%d: BatchNorm2d fwd/bwd not bit-identical to workers=1", wk)
			}
		}
	})

	t.Run("SoftmaxCrossEntropyFwdBwd", func(t *testing.T) {
		labels := make([]int, 61)
		for i := range labels {
			labels[i] = i % 32
		}
		run := func() (out, dx *tensor.Tensor) {
			rng := tensor.NewRNG(19)
			x := tensor.New(61, 32)
			rng.FillNormal(x, 0, 2)
			xN := Leaf(x)
			loss := SoftmaxCrossEntropy(xN, labels)
			Backward(loss)
			out, dx = loss.Val.Clone(), xN.Grad.Clone()
			Release(loss)
			return out, dx
		}
		prev := tensor.SetMaxWorkers(1)
		defer tensor.SetMaxWorkers(prev)
		refOut, refDx := run()
		for _, wk := range workerCounts {
			tensor.SetMaxWorkers(wk)
			out, dx := run()
			if !out.Equal(refOut) || !dx.Equal(refDx) {
				t.Errorf("workers=%d: SoftmaxCrossEntropy fwd/bwd not bit-identical to workers=1", wk)
			}
		}
	})

	t.Run("LinearReLUFwdBwd", func(t *testing.T) {
		run := func() (out, dx, dw *tensor.Tensor) {
			rng := tensor.NewRNG(20)
			x := tensor.New(33, 64)
			w := tensor.New(64, 48)
			b := tensor.New(48)
			rng.FillNormal(x, 0, 1)
			rng.FillNormal(w, 0, 0.3)
			rng.FillNormal(b, 0, 0.3)
			xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
			loss := Mean(LinearReLU(xN, wN, bN))
			Backward(loss)
			out, dx, dw = loss.Val.Clone(), xN.Grad.Clone(), wN.Grad.Clone()
			Release(loss)
			return out, dx, dw
		}
		prev := tensor.SetMaxWorkers(1)
		defer tensor.SetMaxWorkers(prev)
		refOut, refDx, refDw := run()
		for _, wk := range workerCounts {
			tensor.SetMaxWorkers(wk)
			out, dx, dw := run()
			if !out.Equal(refOut) || !dx.Equal(refDx) || !dw.Equal(refDw) {
				t.Errorf("workers=%d: LinearReLU fwd/bwd not bit-identical to workers=1", wk)
			}
		}
	})

	// The PR 5 fused activation family (Tanh32/Sigmoid32/GELU32 kernels and
	// their Linear/Conv epilogues), run through autodiff on the persistent
	// worker pool.
	actCases := map[string]func() (out, dx *tensor.Tensor){
		"Tanh": func() (out, dx *tensor.Tensor) {
			rng := tensor.NewRNG(23)
			x := tensor.New(37, 96)
			rng.FillNormal(x, 0, 3)
			xN := Leaf(x)
			loss := Mean(Tanh(xN))
			Backward(loss)
			out, dx = loss.Val.Clone(), xN.Grad.Clone()
			Release(loss)
			return out, dx
		},
		"Sigmoid": func() (out, dx *tensor.Tensor) {
			rng := tensor.NewRNG(24)
			x := tensor.New(37, 96)
			rng.FillNormal(x, 0, 3)
			xN := Leaf(x)
			loss := Mean(Sigmoid(xN))
			Backward(loss)
			out, dx = loss.Val.Clone(), xN.Grad.Clone()
			Release(loss)
			return out, dx
		},
		"GELU": func() (out, dx *tensor.Tensor) {
			rng := tensor.NewRNG(25)
			x := tensor.New(37, 96)
			rng.FillNormal(x, 0, 3)
			xN := Leaf(x)
			loss := Mean(GELU(xN))
			Backward(loss)
			out, dx = loss.Val.Clone(), xN.Grad.Clone()
			Release(loss)
			return out, dx
		},
		"LinearTanh": func() (out, dx *tensor.Tensor) {
			rng := tensor.NewRNG(26)
			x := tensor.New(33, 64)
			w := tensor.New(64, 48)
			b := tensor.New(48)
			rng.FillNormal(x, 0, 1)
			rng.FillNormal(w, 0, 0.3)
			rng.FillNormal(b, 0, 0.3)
			xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
			loss := Mean(LinearTanh(xN, wN, bN))
			Backward(loss)
			out, dx = loss.Val.Clone(), wN.Grad.Clone()
			Release(loss)
			return out, dx
		},
		"LinearGELU": func() (out, dx *tensor.Tensor) {
			rng := tensor.NewRNG(27)
			x := tensor.New(33, 64)
			w := tensor.New(64, 48)
			b := tensor.New(48)
			rng.FillNormal(x, 0, 1)
			rng.FillNormal(w, 0, 0.3)
			rng.FillNormal(b, 0, 0.3)
			xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
			loss := Mean(LinearGELU(xN, wN, bN))
			Backward(loss)
			out, dx = loss.Val.Clone(), wN.Grad.Clone()
			Release(loss)
			return out, dx
		},
		"Conv2dSigmoid": func() (out, dx *tensor.Tensor) {
			rng := tensor.NewRNG(28)
			x := tensor.New(5, 2, 9, 9)
			w := tensor.New(4, 2, 3, 3)
			b := tensor.New(4)
			rng.FillNormal(x, 0, 1)
			rng.FillNormal(w, 0, 0.3)
			rng.FillNormal(b, 0, 0.3)
			xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
			loss := Mean(Conv2dSigmoid(xN, wN, bN, 1, 1))
			Backward(loss)
			out, dx = loss.Val.Clone(), xN.Grad.Clone()
			Release(loss)
			return out, dx
		},
	}
	for name, run := range actCases {
		t.Run("Act/"+name, func(t *testing.T) {
			prev := tensor.SetMaxWorkers(1)
			defer tensor.SetMaxWorkers(prev)
			refOut, refDx := run()
			for _, wk := range workerCounts {
				tensor.SetMaxWorkers(wk)
				out, dx := run()
				if !out.Equal(refOut) || !dx.Equal(refDx) {
					t.Errorf("workers=%d: %s fwd/bwd not bit-identical to workers=1", wk, name)
				}
			}
		})
	}

	convCases := []struct {
		name                                        string
		batch, inC, outC, h, w, kernel, stride, pad int
	}{
		{"lenet-like", 4, 1, 6, 28, 28, 5, 1, 2},
		{"vgg-like", 3, 3, 8, 16, 16, 3, 1, 1},
		{"strided", 2, 2, 4, 15, 15, 3, 2, 1},
		{"odd-batch", 5, 1, 3, 9, 9, 3, 1, 0},
		// Batch large enough that the streamed backward re-lowers many
		// images through its single scratch column buffer.
		{"streamed-batch32", 32, 1, 4, 10, 10, 3, 1, 1},
	}
	for _, tc := range convCases {
		t.Run(fmt.Sprintf("Conv2d/%s", tc.name), func(t *testing.T) {
			prev := tensor.SetMaxWorkers(1)
			defer tensor.SetMaxWorkers(prev)
			refOut, refDx, refDw := convRun(t, 99, tc.batch, tc.inC, tc.outC, tc.h, tc.w, tc.kernel, tc.stride, tc.pad)
			for _, wk := range workerCounts {
				tensor.SetMaxWorkers(wk)
				out, dx, dw := convRun(t, 99, tc.batch, tc.inC, tc.outC, tc.h, tc.w, tc.kernel, tc.stride, tc.pad)
				if !out.Equal(refOut) {
					t.Errorf("workers=%d: conv output not bit-identical", wk)
				}
				if !dx.Equal(refDx) {
					t.Errorf("workers=%d: conv dX not bit-identical", wk)
				}
				if !dw.Equal(refDw) {
					t.Errorf("workers=%d: conv dW not bit-identical", wk)
				}
			}
		})
	}
}

// TestReleaseRecyclesScratch verifies Release actually feeds the pool: a
// second identical training step after Release must hit the pool instead
// of allocating fresh buffers.
func TestReleaseRecyclesScratch(t *testing.T) {
	rng := tensor.NewRNG(21)
	x := tensor.New(2, 1, 8, 8)
	w := tensor.New(4, 1, 3, 3)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(w, 0, 0.5)
	wN := Leaf(w)

	step := func() {
		wN.ZeroGrad()
		loss := Mean(ReLU(Conv2d(Constant(x), wN, nil, 1, 1)))
		Backward(loss)
		Release(loss)
	}
	step() // warm the pool
	h0, _ := tensor.PoolStats()
	step()
	h1, m1 := tensor.PoolStats()
	if h1 <= h0 {
		t.Errorf("second step hit the pool %d times, want > 0 (misses now %d)", h1-h0, m1)
	}
}

// TestReleaseKeepsLeaves verifies Release leaves parameter values and
// gradients untouched (the optimizer reads them after Backward).
func TestReleaseKeepsLeaves(t *testing.T) {
	rng := tensor.NewRNG(33)
	w := tensor.New(4, 3)
	rng.FillNormal(w, 0, 1)
	wVals := w.Clone()
	wN := Leaf(w)
	x := tensor.New(2, 4)
	rng.FillNormal(x, 0, 1)

	mm := MatMul(Constant(x), wN) // pooled interior node
	loss := Mean(mm)
	Backward(loss)
	grad := wN.Grad.Clone()
	Release(loss)
	if wN.Val == nil || !wN.Val.Equal(wVals) {
		t.Fatal("Release modified a leaf value")
	}
	if wN.Grad == nil || !wN.Grad.Equal(grad) {
		t.Fatal("Release modified a leaf gradient")
	}
	if mm.Val != nil || mm.Grad != nil {
		t.Fatal("Release kept an interior pooled value or gradient alive")
	}
}
