package autodiff

import (
	"math"
	"runtime"
	"testing"

	"amalgam/internal/tensor"
)

// layerNormNaive is a frozen copy of the PR 1 LayerNorm op (scalar float64
// passes, a per-call invStd slice, and a per-row tmp buffer in the
// backward). BenchmarkLayerNormStepNaive vs BenchmarkLayerNormStep in the
// same run is the fused-kernel speedup the PR 2 trajectory records.
func layerNormNaive(x, gamma, beta *Node, eps float32) *Node {
	d := x.Val.Dim(-1)
	rows := x.Val.Numel() / d
	val := tensor.Get(x.Val.Shape()...)
	xhat := tensor.Get(x.Val.Shape()...)
	invStd := make([]float64, rows)
	for r := 0; r < rows; r++ {
		src := x.Val.Data[r*d : (r+1)*d]
		var mu float64
		for _, v := range src {
			mu += float64(v)
		}
		mu /= float64(d)
		var vr float64
		for _, v := range src {
			dv := float64(v) - mu
			vr += dv * dv
		}
		vr /= float64(d)
		is := 1 / math.Sqrt(vr+float64(eps))
		invStd[r] = is
		xh := xhat.Data[r*d : (r+1)*d]
		dst := val.Data[r*d : (r+1)*d]
		for i, v := range src {
			h := float32((float64(v) - mu) * is)
			xh[i] = h
			dst[i] = gamma.Val.Data[i]*h + beta.Val.Data[i]
		}
	}
	out := newPooledNode(val, []*Node{x, gamma, beta}, nil)
	out.scratch = []*tensor.Tensor{xhat}
	out.backward = func() {
		if gamma.requiresGrad {
			gg := gamma.ensureGrad()
			for r := 0; r < rows; r++ {
				dy := out.Grad.Data[r*d : (r+1)*d]
				xh := xhat.Data[r*d : (r+1)*d]
				for i := range dy {
					gg.Data[i] += dy[i] * xh[i]
				}
			}
		}
		if beta.requiresGrad {
			bg := beta.ensureGrad()
			for r := 0; r < rows; r++ {
				dy := out.Grad.Data[r*d : (r+1)*d]
				for i := range dy {
					bg.Data[i] += dy[i]
				}
			}
		}
		if x.requiresGrad {
			xg := x.ensureGrad()
			for r := 0; r < rows; r++ {
				dy := out.Grad.Data[r*d : (r+1)*d]
				xh := xhat.Data[r*d : (r+1)*d]
				var mDy, mDyX float64
				tmp := make([]float64, d)
				for i := range dy {
					g := float64(dy[i]) * float64(gamma.Val.Data[i])
					tmp[i] = g
					mDy += g
					mDyX += g * float64(xh[i])
				}
				mDy /= float64(d)
				mDyX /= float64(d)
				dst := xg.Data[r*d : (r+1)*d]
				for i := range dst {
					dst[i] += float32(invStd[r] * (tmp[i] - mDy - float64(xh[i])*mDyX))
				}
			}
		}
	}
	return out
}

// softmaxCrossEntropyNaive is a frozen copy of the PR 1 fused loss head
// (math.Exp per element, scalar backward).
func softmaxCrossEntropyNaive(logits *Node, labels []int) *Node {
	n, c := logits.Val.Dim(0), logits.Val.Dim(1)
	probs := tensor.Get(n, c)
	var loss float64
	for r := 0; r < n; r++ {
		row := logits.Val.Data[r*c : (r+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		prow := probs.Data[r*c : (r+1)*c]
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			prow[j] = float32(e)
			sum += e
		}
		inv := 1 / sum
		for j := range prow {
			prow[j] = float32(float64(prow[j]) * inv)
		}
		p := float64(prow[labels[r]])
		if p < 1e-30 {
			p = 1e-30
		}
		loss -= math.Log(p)
	}
	val := tensor.FromSlice([]float32{float32(loss / float64(n))}, 1)
	out := newNode(val, []*Node{logits}, nil)
	out.scratch = []*tensor.Tensor{probs}
	out.backward = func() {
		if logits.requiresGrad {
			g := logits.ensureGrad()
			scale := out.Grad.Data[0] / float32(n)
			for r := 0; r < n; r++ {
				prow := probs.Data[r*c : (r+1)*c]
				grow := g.Data[r*c : (r+1)*c]
				y := labels[r]
				for j, p := range prow {
					d := p
					if j == y {
						d -= 1
					}
					grow[j] += scale * d
				}
			}
		}
	}
	return out
}

// softmaxLastDimNaive is a frozen copy of the PR 1 row softmax op.
func softmaxLastDimNaive(a *Node) *Node {
	rows, cols := a.Val.Dim(0), a.Val.Dim(1)
	val := tensor.Get(rows, cols)
	for r := 0; r < rows; r++ {
		src := a.Val.Data[r*cols : (r+1)*cols]
		dst := val.Data[r*cols : (r+1)*cols]
		maxv := src[0]
		for _, v := range src[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range src {
			e := math.Exp(float64(v - maxv))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for r := 0; r < rows; r++ {
				s := val.Data[r*cols : (r+1)*cols]
				dy := out.Grad.Data[r*cols : (r+1)*cols]
				var dot float32
				for j := range s {
					dot += s[j] * dy[j]
				}
				grow := g.Data[r*cols : (r+1)*cols]
				for j := range s {
					grow[j] += s[j] * (dy[j] - dot)
				}
			}
		}
	}
	return out
}

// benchConvStep runs one training step (forward + backward) of a small conv
// stack at quick-experiment scale: batch 16 of 1×28×28 through an 8-channel
// 3×3 conv, ReLU, and a linear head. This is the allocation profile the
// scratch pool targets; run with -benchmem and compare allocs/op against
// BENCH_pr1.json.
func benchConvStep(b *testing.B, batch int) {
	rng := tensor.NewRNG(7)
	x := tensor.New(batch, 1, 28, 28)
	rng.FillNormal(x, 0, 1)
	w := tensor.New(8, 1, 3, 3)
	rng.FillNormal(w, 0, 0.3)
	bias := tensor.New(8)
	rng.FillNormal(bias, 0, 0.1)
	fc := tensor.New(8*28*28, 10)
	rng.FillNormal(fc, 0, 0.05)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = i % 10
	}

	wN, bN, fcN := Leaf(w), Leaf(bias), Leaf(fc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wN.ZeroGrad()
		bN.ZeroGrad()
		fcN.ZeroGrad()
		h := ReLU(Conv2d(Constant(x), wN, bN, 1, 1))
		logits := MatMul(Flatten(h), fcN)
		loss := SoftmaxCrossEntropy(logits, labels)
		Backward(loss)
		Release(loss)
	}
}

func BenchmarkConv2dTrainStep(b *testing.B) { benchConvStep(b, 16) }

// benchLayerNormStep measures one LayerNorm forward+backward at
// transformer scale ([N*T, D] = [256, 256]); the fused vs naive ratio in
// one run is the PR 2 acceptance number.
func benchLayerNormStep(b *testing.B, op func(x, gamma, beta *Node, eps float32) *Node) {
	rng := tensor.NewRNG(11)
	x := tensor.New(256, 256)
	rng.FillNormal(x, 0, 1)
	gamma := tensor.Ones(256)
	beta := tensor.New(256)
	xN, gN, btN := Leaf(x), Leaf(gamma), Leaf(beta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xN.ZeroGrad()
		gN.ZeroGrad()
		btN.ZeroGrad()
		loss := Mean(op(xN, gN, btN, 1e-5))
		Backward(loss)
		Release(loss)
	}
}

func BenchmarkLayerNormStep(b *testing.B)      { benchLayerNormStep(b, LayerNorm) }
func BenchmarkLayerNormStepNaive(b *testing.B) { benchLayerNormStep(b, layerNormNaive) }

// benchSoftmaxXentStep measures the fused softmax-cross-entropy loss head
// forward+backward on [256, 256] logits.
func benchSoftmaxXentStep(b *testing.B, op func(logits *Node, labels []int) *Node) {
	rng := tensor.NewRNG(12)
	logits := tensor.New(256, 256)
	rng.FillNormal(logits, 0, 2)
	labels := make([]int, 256)
	for i := range labels {
		labels[i] = i % 256
	}
	lN := Leaf(logits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lN.ZeroGrad()
		loss := op(lN, labels)
		Backward(loss)
		Release(loss)
	}
}

func BenchmarkSoftmaxXentStep(b *testing.B)      { benchSoftmaxXentStep(b, SoftmaxCrossEntropy) }
func BenchmarkSoftmaxXentStepNaive(b *testing.B) { benchSoftmaxXentStep(b, softmaxCrossEntropyNaive) }

// benchSoftmaxLastDimStep measures the attention-shaped row softmax
// ([N*H*T, T] = [512, 64]) forward+backward.
func benchSoftmaxLastDimStep(b *testing.B, op func(a *Node) *Node) {
	rng := tensor.NewRNG(13)
	x := tensor.New(512, 64)
	rng.FillNormal(x, 0, 1)
	xN := Leaf(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xN.ZeroGrad()
		loss := Mean(op(xN))
		Backward(loss)
		Release(loss)
	}
}

func BenchmarkSoftmaxLastDimStep(b *testing.B)      { benchSoftmaxLastDimStep(b, SoftmaxLastDim) }
func BenchmarkSoftmaxLastDimStepNaive(b *testing.B) { benchSoftmaxLastDimStep(b, softmaxLastDimNaive) }

// BenchmarkBatchNorm2dStep measures BatchNorm2d forward+backward at CIFAR
// feature-map scale ([16, 32, 16, 16]).
func BenchmarkBatchNorm2dStep(b *testing.B) {
	rng := tensor.NewRNG(14)
	x := tensor.New(16, 32, 16, 16)
	rng.FillNormal(x, 0, 1)
	gamma := tensor.Ones(32)
	beta := tensor.New(32)
	rm := tensor.New(32)
	rv := tensor.Ones(32)
	xN, gN, btN := Leaf(x), Leaf(gamma), Leaf(beta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xN.ZeroGrad()
		gN.ZeroGrad()
		btN.ZeroGrad()
		loss := Mean(BatchNorm2d(xN, gN, btN, rm, rv, 0.1, 1e-5, true))
		Backward(loss)
		Release(loss)
	}
}

// BenchmarkLinearTrainStep isolates the fully-connected hot path (the
// transformer/MLP profile): forward + backward of a 2-layer MLP.
func BenchmarkLinearTrainStep(b *testing.B) {
	rng := tensor.NewRNG(9)
	x := tensor.New(64, 256)
	rng.FillNormal(x, 0, 1)
	w1 := tensor.New(256, 512)
	rng.FillNormal(w1, 0, 0.05)
	w2 := tensor.New(512, 10)
	rng.FillNormal(w2, 0, 0.05)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 10
	}
	w1N, w2N := Leaf(w1), Leaf(w2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w1N.ZeroGrad()
		w2N.ZeroGrad()
		loss := SoftmaxCrossEntropy(MatMul(ReLU(MatMul(Constant(x), w1N)), w2N), labels)
		Backward(loss)
		Release(loss)
	}
}

// tanhNaive is a frozen copy of the PR 2-era Tanh op (per-element float64
// math.Tanh round-trip). BenchmarkTanhStepNaive vs BenchmarkTanhStep in
// the same run is the PR 5 activation-kernel speedup.
func tanhNaive(a *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.ApplyInto(val, a.Val, func(v float32) float32 {
		return float32(math.Tanh(float64(v)))
	})
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, th := range val.Data {
				g.Data[i] += out.Grad.Data[i] * (1 - th*th)
			}
		}
	}
	return out
}

// geluNaive is a frozen copy of the PR 2-era GELU op (float64 math.Tanh in
// the forward AND the backward).
func geluNaive(a *Node) *Node {
	const c = 0.7978845608028654
	val := tensor.Get(a.Val.Shape()...)
	tensor.ApplyInto(val, a.Val, func(v float32) float32 {
		x := float64(v)
		return float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	})
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range a.Val.Data {
				x := float64(v)
				t := math.Tanh(c * (x + 0.044715*x*x*x))
				dt := (1 - t*t) * c * (1 + 3*0.044715*x*x)
				d := 0.5*(1+t) + 0.5*x*dt
				g.Data[i] += out.Grad.Data[i] * float32(d)
			}
		}
	}
	return out
}

// sigmoidNaive is a frozen copy of the PR 2-era Sigmoid op.
func sigmoidNaive(a *Node) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.ApplyInto(val, a.Val, func(v float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(v))))
	})
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, s := range val.Data {
				g.Data[i] += out.Grad.Data[i] * s * (1 - s)
			}
		}
	}
	return out
}

// benchActStep measures one activation forward+backward at transformer
// scale ([N*T, D] = [256, 256]).
func benchActStep(b *testing.B, op func(*Node) *Node) {
	rng := tensor.NewRNG(15)
	x := tensor.New(256, 256)
	rng.FillNormal(x, 0, 2)
	xN := Leaf(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xN.ZeroGrad()
		loss := Mean(op(xN))
		Backward(loss)
		Release(loss)
	}
}

func BenchmarkTanhStep(b *testing.B)         { benchActStep(b, Tanh) }
func BenchmarkTanhStepNaive(b *testing.B)    { benchActStep(b, tanhNaive) }
func BenchmarkSigmoidStep(b *testing.B)      { benchActStep(b, Sigmoid) }
func BenchmarkSigmoidStepNaive(b *testing.B) { benchActStep(b, sigmoidNaive) }
func BenchmarkGELUStep(b *testing.B)         { benchActStep(b, GELU) }
func BenchmarkGELUStepNaive(b *testing.B)    { benchActStep(b, geluNaive) }

// benchGELUFFStep measures a GELU transformer feed-forward half-block
// ([N*T, D]·[D, FF] + bias + GELU, forward+backward) — fused LinearGELU vs
// the frozen float64 GELU over the unfused composition.
func benchGELUFFStep(b *testing.B, fused bool) {
	rng := tensor.NewRNG(16)
	x := tensor.New(256, 200)
	w := tensor.New(200, 200)
	bias := tensor.New(200)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(w, 0, 0.05)
	rng.FillNormal(bias, 0, 0.05)
	xN, wN, bN := Leaf(x), Leaf(w), Leaf(bias)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xN.ZeroGrad()
		wN.ZeroGrad()
		bN.ZeroGrad()
		var h *Node
		if fused {
			h = LinearGELU(xN, wN, bN)
		} else {
			h = geluNaive(AddRowBias(MatMul(xN, wN), bN))
		}
		loss := Mean(h)
		Backward(loss)
		Release(loss)
	}
}

func BenchmarkGELUFFStep(b *testing.B)      { benchGELUFFStep(b, true) }
func BenchmarkGELUFFStepNaive(b *testing.B) { benchGELUFFStep(b, false) }

// conv2dRetained is a frozen copy of the PR 1/2 conv core that keeps every
// per-image column matrix alive from forward through backward. It exists
// only to measure what the streaming rewrite saves: same arithmetic, same
// determinism, n× the column memory.
func conv2dRetained(x, w *Node, stride, pad int) *Node {
	xs, ws := x.Val.Shape(), w.Val.Shape()
	n, oc := xs[0], ws[0]
	g := &tensor.ConvGeom{
		InC: xs[1], InH: xs[2], InW: xs[3],
		KH: ws[2], KW: ws[3],
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	kdim := g.InC * g.KH * g.KW
	ncols := g.OutH * g.OutW
	imgIn := g.InC * g.InH * g.InW
	imgOut := oc * ncols

	val := tensor.Get(n, oc, g.OutH, g.OutW)
	colsPer := make([]*tensor.Tensor, n)
	forEachImage(n, func(b int) {
		cols := tensor.Get(kdim, ncols)
		tensor.Im2Col(cols, x.Val.Data[b*imgIn:(b+1)*imgIn], g)
		tensor.MatMulRawInto(val.Data[b*imgOut:(b+1)*imgOut], w.Val.Data, cols.Data, oc, kdim, ncols)
		colsPer[b] = cols
	})
	conv := newPooledNode(val, []*Node{x, w}, nil)
	conv.scratch = colsPer
	conv.backward = func() {
		if w.requiresGrad {
			wd := w.ensureGrad().Data
			tmp := tensor.Get(oc, kdim)
			for b := 0; b < n; b++ {
				tensor.MatMulBTRawInto(tmp.Data, conv.Grad.Data[b*imgOut:(b+1)*imgOut], colsPer[b].Data, oc, ncols, kdim)
				tensor.AddRawInto(wd, tmp.Data)
			}
			tensor.Put(tmp)
		}
		if x.requiresGrad {
			xg := x.ensureGrad()
			forEachImage(n, func(b int) {
				dcols := tensor.Get(kdim, ncols)
				tensor.MatMulATRawInto(dcols.Data, w.Val.Data, conv.Grad.Data[b*imgOut:(b+1)*imgOut], kdim, oc, ncols)
				tensor.Col2Im(xg.Data[b*imgIn:(b+1)*imgIn], dcols, g)
				tensor.Put(dcols)
			})
		}
		for b, cols := range colsPer {
			tensor.Put(cols)
			colsPer[b] = nil
		}
	}
	return conv
}

// benchConvBackward runs one conv training step (forward+backward) at
// batch 32 on either conv core with a warm pool — the throughput view of
// the streaming rewrite, at a shallow (im2col-heavy) and a deep
// (matmul-heavy) channel shape. The streamed backward pays one extra
// im2col per image; these sub-benches record that cost next to the
// cold-pool benches' memory win.
func benchConvBackward(b *testing.B, core func(x, w *Node, stride, pad int) *Node) {
	shapes := []struct {
		name             string
		inC, outC, h, wd int
	}{
		{"shallow-3ch", 3, 8, 16, 16},
		{"deep-16ch", 16, 32, 12, 12},
	}
	for _, s := range shapes {
		b.Run(s.name, func(b *testing.B) {
			rng := tensor.NewRNG(17)
			x := tensor.New(32, s.inC, s.h, s.wd)
			rng.FillNormal(x, 0, 1)
			w := tensor.New(s.outC, s.inC, 3, 3)
			rng.FillNormal(w, 0, 0.3)
			xN, wN := Leaf(x), Leaf(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				xN.ZeroGrad()
				wN.ZeroGrad()
				loss := Mean(core(xN, wN, 1, 1))
				Backward(loss)
				Release(loss)
			}
		})
	}
}

func convStreamedCore(x, w *Node, stride, pad int) *Node { return Conv2d(x, w, nil, stride, pad) }

func BenchmarkConvBackwardStreamed(b *testing.B) { benchConvBackward(b, convStreamedCore) }
func BenchmarkConvBackwardRetained(b *testing.B) { benchConvBackward(b, conv2dRetained) }

// benchConvBackwardColdPool is the peak-memory view: two GC cycles before
// each step empty the scratch pool (sync.Pool's victim cache survives one
// GC), so bytes/op ≈ the step's whole working set — which is where keeping
// n column matrices alive shows up against streaming one.
func benchConvBackwardColdPool(b *testing.B, batch int, core func(x, w *Node, stride, pad int) *Node) {
	prev := tensor.SetMaxWorkers(1) // one in-flight column buffer when streaming
	defer tensor.SetMaxWorkers(prev)
	rng := tensor.NewRNG(18)
	x := tensor.New(batch, 3, 16, 16)
	rng.FillNormal(x, 0, 1)
	w := tensor.New(8, 3, 3, 3)
	rng.FillNormal(w, 0, 0.3)
	xN, wN := Leaf(x), Leaf(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		runtime.GC()
		b.StartTimer()
		xN.ZeroGrad()
		wN.ZeroGrad()
		loss := Mean(core(xN, wN, 1, 1))
		Backward(loss)
		Release(loss)
	}
}

func BenchmarkConvBackwardColdPoolStreamed(b *testing.B) {
	benchConvBackwardColdPool(b, 64, convStreamedCore)
}

func BenchmarkConvBackwardColdPoolRetained(b *testing.B) {
	benchConvBackwardColdPool(b, 64, conv2dRetained)
}
