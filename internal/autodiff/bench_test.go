package autodiff

import (
	"testing"

	"amalgam/internal/tensor"
)

// benchConvStep runs one training step (forward + backward) of a small conv
// stack at quick-experiment scale: batch 16 of 1×28×28 through an 8-channel
// 3×3 conv, ReLU, and a linear head. This is the allocation profile the
// scratch pool targets; run with -benchmem and compare allocs/op against
// BENCH_pr1.json.
func benchConvStep(b *testing.B, batch int) {
	rng := tensor.NewRNG(7)
	x := tensor.New(batch, 1, 28, 28)
	rng.FillNormal(x, 0, 1)
	w := tensor.New(8, 1, 3, 3)
	rng.FillNormal(w, 0, 0.3)
	bias := tensor.New(8)
	rng.FillNormal(bias, 0, 0.1)
	fc := tensor.New(8*28*28, 10)
	rng.FillNormal(fc, 0, 0.05)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = i % 10
	}

	wN, bN, fcN := Leaf(w), Leaf(bias), Leaf(fc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wN.ZeroGrad()
		bN.ZeroGrad()
		fcN.ZeroGrad()
		h := ReLU(Conv2d(Constant(x), wN, bN, 1, 1))
		logits := MatMul(Flatten(h), fcN)
		loss := SoftmaxCrossEntropy(logits, labels)
		Backward(loss)
		Release(loss)
	}
}

func BenchmarkConv2dTrainStep(b *testing.B) { benchConvStep(b, 16) }

// BenchmarkLinearTrainStep isolates the fully-connected hot path (the
// transformer/MLP profile): forward + backward of a 2-layer MLP.
func BenchmarkLinearTrainStep(b *testing.B) {
	rng := tensor.NewRNG(9)
	x := tensor.New(64, 256)
	rng.FillNormal(x, 0, 1)
	w1 := tensor.New(256, 512)
	rng.FillNormal(w1, 0, 0.05)
	w2 := tensor.New(512, 10)
	rng.FillNormal(w2, 0, 0.05)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 10
	}
	w1N, w2N := Leaf(w1), Leaf(w2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w1N.ZeroGrad()
		w2N.ZeroGrad()
		loss := SoftmaxCrossEntropy(MatMul(ReLU(MatMul(Constant(x), w1N)), w2N), labels)
		Backward(loss)
		Release(loss)
	}
}
