package autodiff

import (
	"fmt"

	"amalgam/internal/tensor"
)

// GlobalMaxPool reduces [N, C, H, W] to [N, C] by spatial max; gradient
// flows to the argmax element only.
func GlobalMaxPool(x *Node) *Node {
	xs := x.Val.Shape()
	if len(xs) != 4 {
		panic(fmt.Sprintf("autodiff: GlobalMaxPool needs 4-D input, got %v", xs))
	}
	n, c, hw := xs[0], xs[1], xs[2]*xs[3]
	val := tensor.Get(n, c)
	arg := make([]int, n*c)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			best := x.Val.Data[base]
			bi := 0
			for i := 1; i < hw; i++ {
				if v := x.Val.Data[base+i]; v > best {
					best, bi = v, i
				}
			}
			val.Data[b*c+ch] = best
			arg[b*c+ch] = bi
		}
	}
	out := newPooledNode(val, []*Node{x}, nil)
	out.backward = func() {
		if x.requiresGrad {
			xg := x.ensureGrad()
			for i, a := range arg {
				xg.Data[i*hw+a] += out.Grad.Data[i]
			}
		}
	}
	return out
}

// MulChannelScale multiplies each channel plane of x [N, C, H, W] by a
// per-sample, per-channel scalar s [N, C]. This is CBAM's channel
// attention application; gradients flow into both operands.
func MulChannelScale(x, s *Node) *Node {
	xs := x.Val.Shape()
	if len(xs) != 4 || s.Val.Dim(0) != xs[0] || s.Val.Dim(1) != xs[1] {
		panic(fmt.Sprintf("autodiff: MulChannelScale shapes %v × %v", xs, s.Val.Shape()))
	}
	n, c, hw := xs[0], xs[1], xs[2]*xs[3]
	val := tensor.Get(xs...)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			sv := s.Val.Data[b*c+ch]
			for i := 0; i < hw; i++ {
				val.Data[base+i] = x.Val.Data[base+i] * sv
			}
		}
	}
	out := newPooledNode(val, []*Node{x, s}, nil)
	out.backward = func() {
		for b := 0; b < n; b++ {
			for ch := 0; ch < c; ch++ {
				base := (b*c + ch) * hw
				sv := s.Val.Data[b*c+ch]
				if x.requiresGrad {
					xg := x.ensureGrad()
					for i := 0; i < hw; i++ {
						xg.Data[base+i] += out.Grad.Data[base+i] * sv
					}
				}
				if s.requiresGrad {
					var acc float32
					for i := 0; i < hw; i++ {
						acc += out.Grad.Data[base+i] * x.Val.Data[base+i]
					}
					s.ensureGrad().Data[b*c+ch] += acc
				}
			}
		}
	}
	return out
}

// MulSpatialScale multiplies every channel of x [N, C, H, W] by a spatial
// map s [N, 1, H, W] — CBAM's spatial attention application.
func MulSpatialScale(x, s *Node) *Node {
	xs, ss := x.Val.Shape(), s.Val.Shape()
	if len(xs) != 4 || len(ss) != 4 || ss[0] != xs[0] || ss[1] != 1 || ss[2] != xs[2] || ss[3] != xs[3] {
		panic(fmt.Sprintf("autodiff: MulSpatialScale shapes %v × %v", xs, ss))
	}
	n, c, hw := xs[0], xs[1], xs[2]*xs[3]
	val := tensor.Get(xs...)
	for b := 0; b < n; b++ {
		sp := s.Val.Data[b*hw : (b+1)*hw]
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			for i := 0; i < hw; i++ {
				val.Data[base+i] = x.Val.Data[base+i] * sp[i]
			}
		}
	}
	out := newPooledNode(val, []*Node{x, s}, nil)
	out.backward = func() {
		for b := 0; b < n; b++ {
			sp := s.Val.Data[b*hw : (b+1)*hw]
			for ch := 0; ch < c; ch++ {
				base := (b*c + ch) * hw
				if x.requiresGrad {
					xg := x.ensureGrad()
					for i := 0; i < hw; i++ {
						xg.Data[base+i] += out.Grad.Data[base+i] * sp[i]
					}
				}
				if s.requiresGrad {
					sg := s.ensureGrad().Data[b*hw : (b+1)*hw]
					for i := 0; i < hw; i++ {
						sg[i] += out.Grad.Data[base+i] * x.Val.Data[base+i]
					}
				}
			}
		}
	}
	return out
}

// ChannelMeanMax builds CBAM's spatial-attention input: for each pixel it
// emits the mean and max across channels, producing [N, 2, H, W].
func ChannelMeanMax(x *Node) *Node {
	xs := x.Val.Shape()
	if len(xs) != 4 {
		panic(fmt.Sprintf("autodiff: ChannelMeanMax needs 4-D input, got %v", xs))
	}
	n, c, hw := xs[0], xs[1], xs[2]*xs[3]
	val := tensor.Get(n, 2, xs[2], xs[3])
	arg := make([]int, n*hw) // channel index of max per pixel
	for b := 0; b < n; b++ {
		for i := 0; i < hw; i++ {
			var sum float32
			best := x.Val.Data[(b*c)*hw+i]
			bi := 0
			for ch := 0; ch < c; ch++ {
				v := x.Val.Data[(b*c+ch)*hw+i]
				sum += v
				if v > best {
					best, bi = v, ch
				}
			}
			val.Data[(b*2)*hw+i] = sum / float32(c)
			val.Data[(b*2+1)*hw+i] = best
			arg[b*hw+i] = bi
		}
	}
	out := newPooledNode(val, []*Node{x}, nil)
	out.backward = func() {
		if x.requiresGrad {
			xg := x.ensureGrad()
			inv := 1 / float32(c)
			for b := 0; b < n; b++ {
				for i := 0; i < hw; i++ {
					gMean := out.Grad.Data[(b*2)*hw+i] * inv
					for ch := 0; ch < c; ch++ {
						xg.Data[(b*c+ch)*hw+i] += gMean
					}
					gMax := out.Grad.Data[(b*2+1)*hw+i]
					xg.Data[(b*c+arg[b*hw+i])*hw+i] += gMax
				}
			}
		}
	}
	return out
}
