// Package autodiff implements reverse-mode automatic differentiation over
// the tensor package. A computation builds a DAG of Nodes; Backward on a
// scalar root propagates gradients to every leaf that requires them.
//
// The engine is deliberately dynamic (define-by-run, like PyTorch's
// autograd) because Amalgam's model augmenter composes graphs at run time:
// decoy sub-networks, detached taps from original layers, and per-subnet
// loss heads are all graph-level constructs.
package autodiff

import (
	"fmt"

	"amalgam/internal/tensor"
)

// Node is one vertex of the autodiff graph: a value, an optional gradient,
// and a backward closure that scatters the node's gradient to its parents.
type Node struct {
	// Val holds the forward value. Never nil for a constructed node.
	Val *tensor.Tensor
	// Grad accumulates ∂root/∂Val during Backward. Allocated lazily; nil
	// for nodes that do not require gradients or before Backward runs.
	Grad *tensor.Tensor

	requiresGrad bool
	parents      []*Node
	backward     func()
	name         string
	// ownsVal marks interior nodes whose Val came from the tensor scratch
	// pool (and is not shared with any view), so Release may recycle it.
	ownsVal bool
	// scratch holds pooled buffers the op retained for its backward pass
	// (im2col columns, normalisation xhat, softmax probabilities). The
	// backward closure may Put entries early and nil them; Release returns
	// whatever is left, which covers eval-mode graphs where backward never
	// runs.
	scratch []*tensor.Tensor
}

// Leaf wraps t as a trainable graph input (requires gradients).
func Leaf(t *tensor.Tensor) *Node {
	return &Node{Val: t, requiresGrad: true}
}

// Constant wraps t as a non-trainable input; no gradient flows into it.
func Constant(t *tensor.Tensor) *Node {
	return &Node{Val: t}
}

// Named attaches a debugging name and returns the node.
func (n *Node) Named(name string) *Node {
	n.name = name
	return n
}

// Name returns the node's debugging name (may be empty).
func (n *Node) Name() string { return n.name }

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// newNode builds an interior node. requiresGrad is inherited from parents.
func newNode(val *tensor.Tensor, parents []*Node, backward func()) *Node {
	req := false
	for _, p := range parents {
		if p != nil && p.requiresGrad {
			req = true
			break
		}
	}
	n := &Node{Val: val, requiresGrad: req, parents: parents}
	if req {
		n.backward = backward
	}
	return n
}

// newPooledNode is newNode for ops that allocated val from the tensor
// scratch pool and fully own it (no views share the storage); Release will
// recycle such values once the step is over.
func newPooledNode(val *tensor.Tensor, parents []*Node, backward func()) *Node {
	n := newNode(val, parents, backward)
	n.ownsVal = true
	return n
}

// ensureGrad allocates (once) and returns the gradient buffer. Buffers come
// from the scratch pool; interior-node gradients flow back to it in Release
// while leaf gradients live as long as the parameter.
func (n *Node) ensureGrad() *tensor.Tensor {
	if n.Grad == nil {
		n.Grad = tensor.GetZero(n.Val.Shape()...)
	}
	return n.Grad
}

// accumulate adds g into n's gradient if n participates in backprop.
func (n *Node) accumulate(g *tensor.Tensor) {
	if !n.requiresGrad {
		return
	}
	tensor.AddInto(n.ensureGrad(), g)
}

// ZeroGrad clears the node's gradient buffer in place (keeps allocation).
func (n *Node) ZeroGrad() {
	if n.Grad != nil {
		n.Grad.Zero()
	}
}

// Backward runs reverse-mode differentiation from the scalar root. It
// panics if the root is not a single-element tensor, mirroring PyTorch's
// requirement that .backward() start from a scalar loss.
func Backward(root *Node) {
	if root.Val.Numel() != 1 {
		panic(fmt.Sprintf("autodiff: Backward root must be scalar, got shape %v", root.Val.Shape()))
	}
	order := topoSort(root)
	root.ensureGrad().Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
		}
	}
}

// topoSort returns nodes reachable from root in topological order
// (parents before children), visiting only grad-requiring paths.
func topoSort(root *Node) []*Node {
	var order []*Node
	visited := map[*Node]bool{}
	// Iterative DFS; models can be thousands of nodes deep and Go default
	// goroutine stacks grow, but an explicit stack avoids any limit.
	type frame struct {
		n    *Node
		next int
	}
	stack := []frame{{n: root}}
	visited[root] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(top.n.parents) {
			p := top.n.parents[top.next]
			top.next++
			if p != nil && p.requiresGrad && !visited[p] {
				visited[p] = true
				stack = append(stack, frame{n: p})
			}
			continue
		}
		order = append(order, top.n)
		stack = stack[:len(stack)-1]
	}
	return order
}

// Release returns a finished graph's pooled scratch — interior node values
// allocated from the tensor pool and every interior gradient buffer — so
// the next training step reuses the same storage instead of allocating.
// Call it after the optimizer step (and after reading any values such as
// the loss scalar); the graph must not be used afterwards. Leaves and
// constants are untouched: parameter values, parameter gradients, and
// input tensors all survive. Calling Release twice, or on overlapping
// graphs, is safe — buffers are handed back at most once.
func Release(root *Node) {
	if root == nil {
		return
	}
	visited := map[*Node]bool{root: true}
	stack := []*Node{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.parents != nil { // interior node
			if n.ownsVal && n.Val != nil {
				tensor.Put(n.Val)
				n.Val = nil
				n.ownsVal = false
			}
			if n.Grad != nil {
				tensor.Put(n.Grad)
				n.Grad = nil
			}
			for i, s := range n.scratch {
				tensor.Put(s) // Put(nil) is a no-op for early-returned entries
				n.scratch[i] = nil
			}
			n.scratch = nil
			n.backward = nil
		}
		for _, p := range n.parents {
			if p != nil && !visited[p] {
				visited[p] = true
				stack = append(stack, p)
			}
		}
	}
}

// Scalar returns the single element of a scalar node's value.
func (n *Node) Scalar() float32 {
	if n.Val.Numel() != 1 {
		panic(fmt.Sprintf("autodiff: Scalar on non-scalar shape %v", n.Val.Shape()))
	}
	return n.Val.Data[0]
}
