// Package autodiff implements reverse-mode automatic differentiation over
// the tensor package. A computation builds a DAG of Nodes; Backward on a
// scalar root propagates gradients to every leaf that requires them.
//
// The engine is deliberately dynamic (define-by-run, like PyTorch's
// autograd) because Amalgam's model augmenter composes graphs at run time:
// decoy sub-networks, detached taps from original layers, and per-subnet
// loss heads are all graph-level constructs.
package autodiff

import (
	"fmt"

	"amalgam/internal/tensor"
)

// Node is one vertex of the autodiff graph: a value, an optional gradient,
// and a backward closure that scatters the node's gradient to its parents.
type Node struct {
	// Val holds the forward value. Never nil for a constructed node.
	Val *tensor.Tensor
	// Grad accumulates ∂root/∂Val during Backward. Allocated lazily; nil
	// for nodes that do not require gradients or before Backward runs.
	Grad *tensor.Tensor

	requiresGrad bool
	parents      []*Node
	backward     func()
	name         string
}

// Leaf wraps t as a trainable graph input (requires gradients).
func Leaf(t *tensor.Tensor) *Node {
	return &Node{Val: t, requiresGrad: true}
}

// Constant wraps t as a non-trainable input; no gradient flows into it.
func Constant(t *tensor.Tensor) *Node {
	return &Node{Val: t}
}

// Named attaches a debugging name and returns the node.
func (n *Node) Named(name string) *Node {
	n.name = name
	return n
}

// Name returns the node's debugging name (may be empty).
func (n *Node) Name() string { return n.name }

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// newNode builds an interior node. requiresGrad is inherited from parents.
func newNode(val *tensor.Tensor, parents []*Node, backward func()) *Node {
	req := false
	for _, p := range parents {
		if p != nil && p.requiresGrad {
			req = true
			break
		}
	}
	n := &Node{Val: val, requiresGrad: req, parents: parents}
	if req {
		n.backward = backward
	}
	return n
}

// ensureGrad allocates (once) and returns the gradient buffer.
func (n *Node) ensureGrad() *tensor.Tensor {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Val.Shape()...)
	}
	return n.Grad
}

// accumulate adds g into n's gradient if n participates in backprop.
func (n *Node) accumulate(g *tensor.Tensor) {
	if !n.requiresGrad {
		return
	}
	tensor.AddInto(n.ensureGrad(), g)
}

// ZeroGrad clears the node's gradient buffer in place (keeps allocation).
func (n *Node) ZeroGrad() {
	if n.Grad != nil {
		n.Grad.Zero()
	}
}

// Backward runs reverse-mode differentiation from the scalar root. It
// panics if the root is not a single-element tensor, mirroring PyTorch's
// requirement that .backward() start from a scalar loss.
func Backward(root *Node) {
	if root.Val.Numel() != 1 {
		panic(fmt.Sprintf("autodiff: Backward root must be scalar, got shape %v", root.Val.Shape()))
	}
	order := topoSort(root)
	root.ensureGrad().Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
		}
	}
}

// topoSort returns nodes reachable from root in topological order
// (parents before children), visiting only grad-requiring paths.
func topoSort(root *Node) []*Node {
	var order []*Node
	visited := map[*Node]bool{}
	// Iterative DFS; models can be thousands of nodes deep and Go default
	// goroutine stacks grow, but an explicit stack avoids any limit.
	type frame struct {
		n    *Node
		next int
	}
	stack := []frame{{n: root}}
	visited[root] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(top.n.parents) {
			p := top.n.parents[top.next]
			top.next++
			if p != nil && p.requiresGrad && !visited[p] {
				visited[p] = true
				stack = append(stack, frame{n: p})
			}
			continue
		}
		order = append(order, top.n)
		stack = stack[:len(stack)-1]
	}
	return order
}

// Scalar returns the single element of a scalar node's value.
func (n *Node) Scalar() float32 {
	if n.Val.Numel() != 1 {
		panic(fmt.Sprintf("autodiff: Scalar on non-scalar shape %v", n.Val.Shape()))
	}
	return n.Val.Data[0]
}
