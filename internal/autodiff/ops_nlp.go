package autodiff

import (
	"fmt"

	"amalgam/internal/tensor"
)

// Embedding looks up rows of weight [V, D] for token ids [N, T], producing
// [N, T, D]. The backward pass scatter-adds into the weight gradient.
func Embedding(weight *Node, ids [][]int) *Node {
	v, d := weight.Val.Dim(0), weight.Val.Dim(1)
	n := len(ids)
	if n == 0 {
		panic("autodiff: Embedding with empty batch")
	}
	t := len(ids[0])
	val := tensor.Get(n, t, d)
	for b, seq := range ids {
		if len(seq) != t {
			panic("autodiff: Embedding ragged batch")
		}
		for pos, id := range seq {
			if id < 0 || id >= v {
				panic(fmt.Sprintf("autodiff: Embedding id %d out of range [0,%d)", id, v))
			}
			copy(val.Data[(b*t+pos)*d:(b*t+pos+1)*d], weight.Val.Data[id*d:(id+1)*d])
		}
	}
	out := newPooledNode(val, []*Node{weight}, nil)
	out.backward = func() {
		if weight.requiresGrad {
			wg := weight.ensureGrad()
			for b, seq := range ids {
				for pos, id := range seq {
					src := out.Grad.Data[(b*t+pos)*d : (b*t+pos+1)*d]
					dst := wg.Data[id*d : (id+1)*d]
					for i := range src {
						dst[i] += src[i]
					}
				}
			}
		}
	}
	return out
}

// EmbeddingMean looks up and mean-pools token embeddings per sample,
// producing [N, D]. It reproduces PyTorch's EmbeddingBag(mode="mean"),
// the first layer of the paper's AGNews text classification model.
func EmbeddingMean(weight *Node, ids [][]int) *Node {
	v, d := weight.Val.Dim(0), weight.Val.Dim(1)
	n := len(ids)
	val := tensor.GetZero(n, d)
	for b, seq := range ids {
		if len(seq) == 0 {
			continue
		}
		inv := 1 / float32(len(seq))
		dst := val.Data[b*d : (b+1)*d]
		for _, id := range seq {
			if id < 0 || id >= v {
				panic(fmt.Sprintf("autodiff: EmbeddingMean id %d out of range [0,%d)", id, v))
			}
			src := weight.Val.Data[id*d : (id+1)*d]
			for i := range dst {
				dst[i] += src[i] * inv
			}
		}
	}
	out := newPooledNode(val, []*Node{weight}, nil)
	out.backward = func() {
		if weight.requiresGrad {
			wg := weight.ensureGrad()
			for b, seq := range ids {
				if len(seq) == 0 {
					continue
				}
				inv := 1 / float32(len(seq))
				src := out.Grad.Data[b*d : (b+1)*d]
				for _, id := range seq {
					dst := wg.Data[id*d : (id+1)*d]
					for i := range src {
						dst[i] += src[i] * inv
					}
				}
			}
		}
	}
	return out
}

// LayerNorm normalises the last dimension of a [..., D] node with learned
// gain gamma [D] and bias beta [D]. Forward and backward run on the fused
// tensor kernels: one stats pass plus one normalize+affine pass forward,
// and a backward that recomputes dy⊙gamma instead of staging it in a
// per-row buffer — the whole op is allocation-free at steady state (xhat
// and invStd live in pooled node scratch).
func LayerNorm(x, gamma, beta *Node, eps float32) *Node {
	d := x.Val.Dim(-1)
	if gamma.Val.Numel() != d || beta.Val.Numel() != d {
		panic(fmt.Sprintf("autodiff: LayerNorm gamma/beta size %d/%d, want %d", gamma.Val.Numel(), beta.Val.Numel(), d))
	}
	rows := x.Val.Numel() / d
	val := tensor.Get(x.Val.Shape()...)
	xhat := tensor.Get(x.Val.Shape()...) // registered as node scratch below
	invStd := tensor.Get(rows)           // registered as node scratch below
	tensor.LayerNormFwdInto(val.Data, xhat.Data, invStd.Data, x.Val.Data, gamma.Val.Data, beta.Val.Data, rows, d, eps)
	out := newPooledNode(val, []*Node{x, gamma, beta}, nil)
	out.scratch = []*tensor.Tensor{xhat, invStd}
	out.backward = func() {
		var dx, dg, db []float32
		if x.requiresGrad {
			dx = x.ensureGrad().Data
		}
		if gamma.requiresGrad {
			dg = gamma.ensureGrad().Data
		}
		if beta.requiresGrad {
			db = beta.ensureGrad().Data
		}
		tensor.LayerNormBwdInto(dx, dg, db, out.Grad.Data, xhat.Data, invStd.Data, gamma.Val.Data, rows, d)
	}
	return out
}

// BatchedMatMul multiplies a [B, M, K] by b [B, K, N] → [B, M, N].
// Attention uses it for per-head score and context computation.
func BatchedMatMul(a, b *Node) *Node {
	as, bs := a.Val.Shape(), b.Val.Shape()
	if len(as) != 3 || len(bs) != 3 || as[0] != bs[0] || as[2] != bs[1] {
		panic(fmt.Sprintf("autodiff: BatchedMatMul shapes %v × %v", as, bs))
	}
	bt, m, k, n := as[0], as[1], as[2], bs[2]
	val := tensor.Get(bt, m, n)
	forEachImage(bt, func(i int) {
		tensor.MatMulRawInto(val.Data[i*m*n:(i+1)*m*n],
			a.Val.Data[i*m*k:(i+1)*m*k], b.Val.Data[i*k*n:(i+1)*k*n], m, k, n)
	})
	out := newPooledNode(val, []*Node{a, b}, nil)
	out.backward = func() {
		var tmpA, tmpB *tensor.Tensor
		if a.requiresGrad {
			tmpA = tensor.Get(m, k)
		}
		if b.requiresGrad {
			tmpB = tensor.Get(k, n)
		}
		for i := 0; i < bt; i++ {
			dy := out.Grad.Data[i*m*n : (i+1)*m*n]
			if a.requiresGrad {
				ga := a.ensureGrad().Data[i*m*k : (i+1)*m*k]
				tensor.MatMulBTRawInto(tmpA.Data, dy, b.Val.Data[i*k*n:(i+1)*k*n], m, n, k) // dA = dY·Bᵀ
				tensor.AddRawInto(ga, tmpA.Data)
			}
			if b.requiresGrad {
				gb := b.ensureGrad().Data[i*k*n : (i+1)*k*n]
				tensor.MatMulATRawInto(tmpB.Data, a.Val.Data[i*m*k:(i+1)*m*k], dy, k, m, n)
				tensor.AddRawInto(gb, tmpB.Data)
			}
		}
		tensor.Put(tmpA)
		tensor.Put(tmpB)
	}
	return out
}

// Transpose12 swaps the last two axes of a 3-D node [B, M, N] → [B, N, M].
func Transpose12(a *Node) *Node {
	as := a.Val.Shape()
	if len(as) != 3 {
		panic(fmt.Sprintf("autodiff: Transpose12 needs 3-D, got %v", as))
	}
	b, m, n := as[0], as[1], as[2]
	val := tensor.Get(b, n, m)
	for i := 0; i < b; i++ {
		for r := 0; r < m; r++ {
			for c := 0; c < n; c++ {
				val.Data[(i*n+c)*m+r] = a.Val.Data[(i*m+r)*n+c]
			}
		}
	}
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i := 0; i < b; i++ {
				for r := 0; r < m; r++ {
					for c := 0; c < n; c++ {
						g.Data[(i*m+r)*n+c] += out.Grad.Data[(i*n+c)*m+r]
					}
				}
			}
		}
	}
	return out
}

// AddConst adds a constant tensor (no gradient) element-wise; used for
// positional encodings and attention masks.
func AddConst(a *Node, c *tensor.Tensor) *Node {
	val := tensor.Get(a.Val.Shape()...)
	tensor.AddOut(val, a.Val, c)
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() { a.accumulate(out.Grad) }
	return out
}

// AddConstBroadcast adds a constant tensor c to every leading-dimension
// slice of a: a [B, ...] with c matching one slice. Attention uses it to
// apply a [T, T] mask to [B*H, T, T] scores without materialising the
// broadcast, which previously allocated a full score-sized tensor per
// forward pass.
func AddConstBroadcast(a *Node, c *tensor.Tensor) *Node {
	b := a.Val.Dim(0)
	sz := c.Numel()
	if a.Val.Numel() != b*sz {
		panic(fmt.Sprintf("autodiff: AddConstBroadcast %v cannot broadcast %v over dim 0", a.Val.Shape(), c.Shape()))
	}
	val := tensor.Get(a.Val.Shape()...)
	cd := c.Data
	for i := 0; i < b; i++ {
		src := a.Val.Data[i*sz : (i+1)*sz]
		dst := val.Data[i*sz : (i+1)*sz]
		for j := range dst {
			dst[j] = src[j] + cd[j]
		}
	}
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() { a.accumulate(out.Grad) }
	return out
}
