package autodiff

import (
	"fmt"

	"amalgam/internal/tensor"
)

// Fused bias+activation ops. A Linear or Conv2d followed by ReLU is the
// most common layer pair in every model here; fusing the bias add and the
// activation into the epilogue of the preceding kernel removes one full
// read+write pass over the activations and one graph node per pair. The
// backward passes reconstruct the ReLU mask from the fused output (y > 0
// iff the pre-activation was positive), so no mask tensor is stored.

// AddRowBiasReLU computes relu(x + bias) for x [N, D] and bias [D] as a
// single node — the fused epilogue of a Linear→ReLU pair.
func AddRowBiasReLU(x, bias *Node) *Node {
	n, d := x.Val.Dim(0), x.Val.Dim(1)
	if bias.Val.Numel() != d {
		panic(fmt.Sprintf("autodiff: AddRowBiasReLU dims %v + %v", x.Val.Shape(), bias.Val.Shape()))
	}
	val := tensor.Get(x.Val.Shape()...)
	tensor.AddRowBiasReLUInto(val.Data, x.Val.Data, bias.Val.Data, n, d)
	out := newPooledNode(val, []*Node{x, bias}, nil)
	out.backward = func() {
		if x.requiresGrad {
			tensor.ReLUMaskAddInto(x.ensureGrad().Data, out.Grad.Data, val.Data)
		}
		if bias.requiresGrad {
			bg := bias.ensureGrad().Data[:d]
			for r := 0; r < n; r++ {
				dy := out.Grad.Data[r*d : (r+1)*d]
				y := val.Data[r*d : (r+1)*d][:len(dy)]
				for j := range dy {
					if y[j] > 0 {
						bg[j] += dy[j]
					}
				}
			}
		}
	}
	return out
}

// AddChanBiasReLU computes relu(x + bias[ch]) for x [N, C, H, W] and bias
// [C] as a single node — the fused epilogue of a biased Conv2d→ReLU pair.
func AddChanBiasReLU(x, bias *Node) *Node {
	sh := x.Val.Shape()
	if len(sh) != 4 || bias.Val.Numel() != sh[1] {
		panic(fmt.Sprintf("autodiff: AddChanBiasReLU dims %v + %v", sh, bias.Val.Shape()))
	}
	n, c, hw := sh[0], sh[1], sh[2]*sh[3]
	val := tensor.Get(sh...)
	tensor.AddChanBiasReLUInto(val.Data, x.Val.Data, bias.Val.Data, n, c, hw)
	out := newPooledNode(val, []*Node{x, bias}, nil)
	out.backward = func() {
		if x.requiresGrad {
			tensor.ReLUMaskAddInto(x.ensureGrad().Data, out.Grad.Data, val.Data)
		}
		if bias.requiresGrad {
			bg := bias.ensureGrad().Data
			for b := 0; b < n; b++ {
				for ch := 0; ch < c; ch++ {
					base := (b*c + ch) * hw
					dy := out.Grad.Data[base : base+hw]
					y := val.Data[base : base+hw][:len(dy)]
					var s float32
					for i := range dy {
						if y[i] > 0 {
							s += dy[i]
						}
					}
					bg[ch] += s
				}
			}
		}
	}
	return out
}

// AddRowBiasTanh computes tanh(x + bias) for x [N, D] and bias [D] as a
// single node — the fused epilogue of a Linear→Tanh pair. Unlike the ReLU
// epilogues no mask is stored AND nothing is recomputed: the tanh gradient
// is exactly dy·(1−y²) from the fused output.
func AddRowBiasTanh(x, bias *Node) *Node {
	n, d := x.Val.Dim(0), x.Val.Dim(1)
	if bias.Val.Numel() != d {
		panic(fmt.Sprintf("autodiff: AddRowBiasTanh dims %v + %v", x.Val.Shape(), bias.Val.Shape()))
	}
	val := tensor.Get(x.Val.Shape()...)
	tensor.AddRowBiasTanhInto(val.Data, x.Val.Data, bias.Val.Data, n, d)
	out := newPooledNode(val, []*Node{x, bias}, nil)
	out.backward = func() {
		// Stage dpre = dy·(1−y²) once; both gradients read it.
		dpre := tensor.Get(n, d)
		tensor.TanhGradInto(dpre.Data, out.Grad.Data, val.Data)
		if x.requiresGrad {
			tensor.AddRawInto(x.ensureGrad().Data, dpre.Data)
		}
		if bias.requiresGrad {
			tensor.ColSumAddInto(bias.ensureGrad().Data, dpre.Data, n, d)
		}
		tensor.Put(dpre)
	}
	return out
}

// AddChanBiasSigmoid computes sigmoid(x + bias[ch]) for x [N, C, H, W] and
// bias [C] as a single node — the fused epilogue of a biased
// Conv2d→Sigmoid pair (spatial attention gates). The gradient is
// reconstructed from the output: dpre = dy·y·(1−y).
func AddChanBiasSigmoid(x, bias *Node) *Node {
	sh := x.Val.Shape()
	if len(sh) != 4 || bias.Val.Numel() != sh[1] {
		panic(fmt.Sprintf("autodiff: AddChanBiasSigmoid dims %v + %v", sh, bias.Val.Shape()))
	}
	n, c, hw := sh[0], sh[1], sh[2]*sh[3]
	val := tensor.Get(sh...)
	tensor.AddChanBiasSigmoidInto(val.Data, x.Val.Data, bias.Val.Data, n, c, hw)
	out := newPooledNode(val, []*Node{x, bias}, nil)
	out.backward = func() {
		// Stage dpre = dy·y·(1−y) once; both gradients read it.
		dpre := tensor.Get(sh...)
		tensor.SigmoidGradInto(dpre.Data, out.Grad.Data, val.Data)
		if x.requiresGrad {
			tensor.AddRawInto(x.ensureGrad().Data, dpre.Data)
		}
		if bias.requiresGrad {
			bg := bias.ensureGrad().Data
			for b := 0; b < n; b++ {
				for ch := 0; ch < c; ch++ {
					base := (b*c + ch) * hw
					row := dpre.Data[base : base+hw]
					var s float32
					for _, v := range row {
						s += v
					}
					bg[ch] += s
				}
			}
		}
		tensor.Put(dpre)
	}
	return out
}

// LinearReLU computes relu(x·W + b) for x [N, In], w [In, Out], b [Out] as
// one node: the matmul writes straight into the output buffer and the
// bias+ReLU epilogue runs in place over it. The backward stages the
// pre-activation gradient (dy masked by y > 0) in one pooled buffer shared
// by the bias, weight, and input gradients.
func LinearReLU(x, w, b *Node) *Node {
	n, dIn := x.Val.Dim(0), x.Val.Dim(1)
	dOut := w.Val.Dim(1)
	if b.Val.Numel() != dOut {
		panic(fmt.Sprintf("autodiff: LinearReLU bias size %d, want %d", b.Val.Numel(), dOut))
	}
	val := tensor.Get(n, dOut)
	tensor.MatMulInto(val, x.Val, w.Val)
	tensor.AddRowBiasReLUInto(val.Data, val.Data, b.Val.Data, n, dOut)
	out := newPooledNode(val, []*Node{x, w, b}, nil)
	out.backward = func() {
		dpre := tensor.Get(n, dOut)
		tensor.ReLUMaskInto(dpre.Data, out.Grad.Data, val.Data)
		linearEpilogueBackward(x, w, b, dpre, n, dIn, dOut)
		tensor.Put(dpre)
	}
	return out
}

// linearEpilogueBackward shares the dX/dW/dbias matmul backward of the
// fused Linear→activation ops: dpre is the staged pre-activation gradient.
func linearEpilogueBackward(x, w, b *Node, dpre *tensor.Tensor, n, dIn, dOut int) {
	if b.requiresGrad {
		tensor.ColSumAddInto(b.ensureGrad().Data, dpre.Data, n, dOut)
	}
	if x.requiresGrad {
		tmp := tensor.Get(n, dIn)
		tensor.MatMulBTInto(tmp, dpre, w.Val) // dX = dPre·Wᵀ
		tensor.AddInto(x.ensureGrad(), tmp)
		tensor.Put(tmp)
	}
	if w.requiresGrad {
		tmp := tensor.Get(dIn, dOut)
		tensor.MatMulATInto(tmp, x.Val, dpre) // dW = Xᵀ·dPre
		tensor.AddInto(w.ensureGrad(), tmp)
		tensor.Put(tmp)
	}
}

// LinearTanh computes tanh(x·W + b) as one node: the matmul writes
// straight into the output buffer and the bias+tanh epilogue runs in place
// over it. The backward stages dpre = dy·(1−y²) in one pooled buffer
// shared by the bias, weight, and input gradients — no transcendental is
// re-evaluated.
func LinearTanh(x, w, b *Node) *Node {
	n, dIn := x.Val.Dim(0), x.Val.Dim(1)
	dOut := w.Val.Dim(1)
	if b.Val.Numel() != dOut {
		panic(fmt.Sprintf("autodiff: LinearTanh bias size %d, want %d", b.Val.Numel(), dOut))
	}
	val := tensor.Get(n, dOut)
	tensor.MatMulInto(val, x.Val, w.Val)
	tensor.AddRowBiasTanhInto(val.Data, val.Data, b.Val.Data, n, dOut)
	out := newPooledNode(val, []*Node{x, w, b}, nil)
	out.backward = func() {
		dpre := tensor.Get(n, dOut)
		tensor.TanhGradInto(dpre.Data, out.Grad.Data, val.Data)
		linearEpilogueBackward(x, w, b, dpre, n, dIn, dOut)
		tensor.Put(dpre)
	}
	return out
}

// LinearGELU computes gelu(x·W + b) as one node. GELU's gradient needs the
// pre-activation, so the matmul+bias result and the inner tanh are both
// retained in pooled node scratch; the backward stages
// dpre = dy·gelu'(pre) from them without re-evaluating any transcendental.
func LinearGELU(x, w, b *Node) *Node {
	n, dIn := x.Val.Dim(0), x.Val.Dim(1)
	dOut := w.Val.Dim(1)
	if b.Val.Numel() != dOut {
		panic(fmt.Sprintf("autodiff: LinearGELU bias size %d, want %d", b.Val.Numel(), dOut))
	}
	pre := tensor.Get(n, dOut) // registered as node scratch below
	tensor.MatMulInto(pre, x.Val, w.Val)
	tensor.AddRowBiasInto(pre.Data, pre.Data, b.Val.Data, n, dOut)
	val := tensor.Get(n, dOut)
	t := tensor.Get(n, dOut) // inner tanh; registered as node scratch below
	tensor.GELUFwdInto(val.Data, t.Data, pre.Data)
	out := newPooledNode(val, []*Node{x, w, b}, nil)
	out.scratch = []*tensor.Tensor{pre, t}
	out.backward = func() {
		dpre := tensor.Get(n, dOut)
		tensor.GELUGradInto(dpre.Data, out.Grad.Data, pre.Data, t.Data)
		linearEpilogueBackward(x, w, b, dpre, n, dIn, dOut)
		tensor.Put(dpre)
	}
	return out
}
