package autodiff

import (
	"testing"

	"amalgam/internal/tensor"
)

// Gradient checks for the fused bias+activation ops. Inputs are offset
// away from the ReLU kink so central differences stay clean.

func TestGradAddRowBiasReLU(t *testing.T) {
	rng := tensor.NewRNG(41)
	x := tensor.New(3, 5)
	b := tensor.New(5)
	rng.FillNormal(x, 0.4, 1)
	rng.FillNormal(b, 0.2, 0.5)
	target := tensor.New(3, 5)
	rng.FillNormal(target, 0, 1)
	xN, bN := Leaf(x), Leaf(b)
	loss := func() *Node { return MSE(AddRowBiasReLU(xN, bN), target) }
	gradCheck(t, []*Node{xN, bN}, loss, 3e-2)
}

func TestGradAddChanBiasReLU(t *testing.T) {
	rng := tensor.NewRNG(42)
	x := tensor.New(2, 3, 4, 4)
	b := tensor.New(3)
	rng.FillNormal(x, 0.4, 1)
	rng.FillNormal(b, 0.2, 0.5)
	target := tensor.New(2, 3, 4, 4)
	rng.FillNormal(target, 0, 1)
	xN, bN := Leaf(x), Leaf(b)
	loss := func() *Node { return MSE(AddChanBiasReLU(xN, bN), target) }
	gradCheck(t, []*Node{xN, bN}, loss, 3e-2)
}

func TestGradLinearReLU(t *testing.T) {
	rng := tensor.NewRNG(43)
	x := tensor.New(3, 4)
	w := tensor.New(4, 5)
	b := tensor.New(5)
	rng.FillNormal(x, 0.3, 1)
	rng.FillNormal(w, 0, 0.5)
	rng.FillNormal(b, 0.2, 0.3)
	target := tensor.New(3, 5)
	rng.FillNormal(target, 0, 1)
	xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
	loss := func() *Node { return MSE(LinearReLU(xN, wN, bN), target) }
	gradCheck(t, []*Node{xN, wN, bN}, loss, 3e-2)
}

func TestGradConv2dReLU(t *testing.T) {
	rng := tensor.NewRNG(44)
	x := tensor.New(2, 2, 5, 5)
	w := tensor.New(3, 2, 3, 3)
	b := tensor.New(3)
	rng.FillNormal(x, 0.2, 1)
	rng.FillNormal(w, 0, 0.3)
	rng.FillNormal(b, 0.2, 0.3)
	target := tensor.New(2, 3, 5, 5)
	rng.FillNormal(target, 0, 1)
	xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
	loss := func() *Node { return MSE(Conv2dReLU(xN, wN, bN, 1, 1), target) }
	gradCheck(t, []*Node{wN, bN, xN}, loss, 2e-2)
}

// TestFusedMatchesUnfused pins full equivalence: the fused ops must
// produce the same forward values AND the same gradients as their unfused
// compositions, bit for bit (the arithmetic per element is identical; only
// pass structure changed). The gradient half matters beyond performance:
// the gradient-leakage attack's victim MLP runs on LinearReLU, so a fused
// backward that drifted from ReLU(AddRowBias(MatMul)) would silently
// change attack results.
func TestFusedMatchesUnfused(t *testing.T) {
	rng := tensor.NewRNG(45)
	x := tensor.New(4, 6)
	w := tensor.New(6, 3)
	b := tensor.New(3)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(w, 0, 0.5)
	rng.FillNormal(b, 0, 0.5)

	xF, wF, bF := Leaf(x.Clone()), Leaf(w.Clone()), Leaf(b.Clone())
	fused := LinearReLU(xF, wF, bF)
	xP, wP, bP := Leaf(x.Clone()), Leaf(w.Clone()), Leaf(b.Clone())
	plain := ReLU(AddRowBias(MatMul(xP, wP), bP))
	if !fused.Val.Equal(plain.Val) {
		t.Fatal("LinearReLU forward differs from ReLU(AddRowBias(MatMul))")
	}
	Backward(Mean(fused))
	Backward(Mean(plain))
	if !xF.Grad.Equal(xP.Grad) || !wF.Grad.Equal(wP.Grad) || !bF.Grad.Equal(bP.Grad) {
		t.Fatal("LinearReLU gradients differ from ReLU(AddRowBias(MatMul))")
	}

	xc := tensor.New(2, 3, 4, 4)
	bc := tensor.New(3)
	rng.FillNormal(xc, 0, 1)
	rng.FillNormal(bc, 0, 0.5)
	xcF, bcF := Leaf(xc.Clone()), Leaf(bc.Clone())
	fusedC := AddChanBiasReLU(xcF, bcF)
	xcP, bcP := Leaf(xc.Clone()), Leaf(bc.Clone())
	plainC := ReLU(AddChanBias(xcP, bcP))
	if !fusedC.Val.Equal(plainC.Val) {
		t.Fatal("AddChanBiasReLU forward differs from ReLU(AddChanBias)")
	}
	Backward(Mean(fusedC))
	Backward(Mean(plainC))
	if !xcF.Grad.Equal(xcP.Grad) || !bcF.Grad.Equal(bcP.Grad) {
		t.Fatal("AddChanBiasReLU gradients differ from ReLU(AddChanBias)")
	}
}

// stepAllocs measures allocations per forward+backward+Release step after
// a warm-up that fills the scratch pool, with a single worker so kernels
// take the closure-free serial path.
func stepAllocs(t *testing.T, step func()) float64 {
	t.Helper()
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	step() // warm the pool
	return testing.AllocsPerRun(10, step)
}

// The steady-state allocation contract for the normalization/softmax ops:
// all tensor storage comes from the scratch pool, so a full training step
// allocates only the graph skeleton (node structs, backward closures, the
// topo-sort bookkeeping) — a small constant independent of tensor sizes.
// The PR 1 LayerNorm backward allocated one float64 buffer per row (~260
// allocs at this shape); these tests pin the fix and its class.
const graphAllocBudget = 40

func TestLayerNormStepAllocs(t *testing.T) {
	rng := tensor.NewRNG(51)
	x := tensor.New(64, 96)
	rng.FillNormal(x, 0, 1)
	gamma, beta := tensor.Ones(96), tensor.New(96)
	xN, gN, bN := Leaf(x), Leaf(gamma), Leaf(beta)
	allocs := stepAllocs(t, func() {
		xN.ZeroGrad()
		gN.ZeroGrad()
		bN.ZeroGrad()
		loss := Mean(LayerNorm(xN, gN, bN, 1e-5))
		Backward(loss)
		Release(loss)
	})
	if allocs > graphAllocBudget {
		t.Fatalf("LayerNorm fwd+bwd step allocates %v/op, budget %d (per-row scratch regression?)", allocs, graphAllocBudget)
	}
}

// TestLayerNormAllocsIndependentOfRows is the regression test for the
// per-row make in the PR 1 backward: allocations must not scale with the
// row count.
func TestLayerNormAllocsIndependentOfRows(t *testing.T) {
	measure := func(rows int) float64 {
		rng := tensor.NewRNG(52)
		x := tensor.New(rows, 64)
		rng.FillNormal(x, 0, 1)
		gamma, beta := tensor.Ones(64), tensor.New(64)
		xN, gN, bN := Leaf(x), Leaf(gamma), Leaf(beta)
		return stepAllocs(t, func() {
			xN.ZeroGrad()
			gN.ZeroGrad()
			bN.ZeroGrad()
			loss := Mean(LayerNorm(xN, gN, bN, 1e-5))
			Backward(loss)
			Release(loss)
		})
	}
	small, large := measure(4), measure(256)
	if large > small+2 {
		t.Fatalf("LayerNorm step allocs grew with rows: %v at 4 rows vs %v at 256", small, large)
	}
}

func TestBatchNormStepAllocs(t *testing.T) {
	rng := tensor.NewRNG(53)
	x := tensor.New(8, 16, 8, 8)
	rng.FillNormal(x, 0, 1)
	gamma, beta := tensor.Ones(16), tensor.New(16)
	rm, rv := tensor.New(16), tensor.Ones(16)
	xN, gN, bN := Leaf(x), Leaf(gamma), Leaf(beta)
	allocs := stepAllocs(t, func() {
		xN.ZeroGrad()
		gN.ZeroGrad()
		bN.ZeroGrad()
		loss := Mean(BatchNorm2d(xN, gN, bN, rm, rv, 0.1, 1e-5, true))
		Backward(loss)
		Release(loss)
	})
	if allocs > graphAllocBudget {
		t.Fatalf("BatchNorm2d fwd+bwd step allocates %v/op, budget %d", allocs, graphAllocBudget)
	}
}

func TestSoftmaxStepAllocs(t *testing.T) {
	rng := tensor.NewRNG(54)
	x := tensor.New(64, 32)
	rng.FillNormal(x, 0, 2)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 32
	}
	t.Run("SoftmaxLastDim", func(t *testing.T) {
		xN := Leaf(x)
		allocs := stepAllocs(t, func() {
			xN.ZeroGrad()
			loss := Mean(SoftmaxLastDim(xN))
			Backward(loss)
			Release(loss)
		})
		if allocs > graphAllocBudget {
			t.Fatalf("SoftmaxLastDim fwd+bwd step allocates %v/op, budget %d", allocs, graphAllocBudget)
		}
	})
	t.Run("SoftmaxCrossEntropy", func(t *testing.T) {
		xN := Leaf(x.Clone())
		allocs := stepAllocs(t, func() {
			xN.ZeroGrad()
			loss := SoftmaxCrossEntropy(xN, labels)
			Backward(loss)
			Release(loss)
		})
		if allocs > graphAllocBudget {
			t.Fatalf("SoftmaxCrossEntropy fwd+bwd step allocates %v/op, budget %d", allocs, graphAllocBudget)
		}
	})
}

// TestFusedKernelZeroAllocs pins the tensor-level kernels at exactly zero
// allocations on the serial path (SetMaxWorkers(1)).
func TestFusedKernelZeroAllocs(t *testing.T) {
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	const rows, d = 32, 48
	rng := tensor.NewRNG(55)
	x := tensor.New(rows, d)
	dy := tensor.New(rows, d)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(dy, 0, 1)
	gamma, beta := tensor.Ones(d), tensor.New(d)
	y := make([]float32, rows*d)
	xhat := make([]float32, rows*d)
	invStd := make([]float32, rows)
	dx := make([]float32, rows*d)
	dg := make([]float32, d)
	db := make([]float32, d)
	labels := make([]int, rows)

	if n := testing.AllocsPerRun(10, func() {
		tensor.LayerNormFwdInto(y, xhat, invStd, x.Data, gamma.Data, beta.Data, rows, d, 1e-5)
		tensor.LayerNormBwdInto(dx, dg, db, dy.Data, xhat, invStd, gamma.Data, rows, d)
		tensor.SoftmaxRowsInto(y, x.Data, rows, d)
		tensor.SoftmaxRowsBwdInto(dx, y, dy.Data, rows, d)
		tensor.SoftmaxXentFwdInto(y, x.Data, labels, rows, d)
		tensor.SoftmaxXentBwdInto(dx, y, labels, rows, d, 1)
	}); n != 0 {
		t.Fatalf("fused kernels allocate %v/op on the serial path, want 0", n)
	}
}
