package autodiff

import (
	"testing"

	"amalgam/internal/tensor"
)

// PR 5 activation-round pins: fused epilogues must match their unfused
// compositions bit for bit, the streamed conv backward must accumulate
// exactly like per-image backwards, and the whole family must hold the
// zero-alloc steady-state contract.

// TestFusedActivationsMatchUnfused pins full equivalence of the new fused
// ops against their unfused compositions — forward values AND every
// gradient, bit for bit. Widths are multiples of the SIMD width so the
// fused per-row runs and the unfused flat runs partition into identical
// 8-lane groups on both dispatch backends.
func TestFusedActivationsMatchUnfused(t *testing.T) {
	rng := tensor.NewRNG(71)
	x := tensor.New(4, 8)
	w := tensor.New(8, 16)
	b := tensor.New(16)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(w, 0, 0.5)
	rng.FillNormal(b, 0, 0.5)

	t.Run("LinearTanh", func(t *testing.T) {
		xF, wF, bF := Leaf(x.Clone()), Leaf(w.Clone()), Leaf(b.Clone())
		fused := LinearTanh(xF, wF, bF)
		xP, wP, bP := Leaf(x.Clone()), Leaf(w.Clone()), Leaf(b.Clone())
		plain := Tanh(AddRowBias(MatMul(xP, wP), bP))
		if !fused.Val.Equal(plain.Val) {
			t.Fatal("LinearTanh forward differs from Tanh(AddRowBias(MatMul))")
		}
		Backward(Mean(fused))
		Backward(Mean(plain))
		if !xF.Grad.Equal(xP.Grad) || !wF.Grad.Equal(wP.Grad) || !bF.Grad.Equal(bP.Grad) {
			t.Fatal("LinearTanh gradients differ from Tanh(AddRowBias(MatMul))")
		}
	})

	t.Run("LinearGELU", func(t *testing.T) {
		xF, wF, bF := Leaf(x.Clone()), Leaf(w.Clone()), Leaf(b.Clone())
		fused := LinearGELU(xF, wF, bF)
		xP, wP, bP := Leaf(x.Clone()), Leaf(w.Clone()), Leaf(b.Clone())
		plain := GELU(AddRowBias(MatMul(xP, wP), bP))
		if !fused.Val.Equal(plain.Val) {
			t.Fatal("LinearGELU forward differs from GELU(AddRowBias(MatMul))")
		}
		Backward(Mean(fused))
		Backward(Mean(plain))
		if !xF.Grad.Equal(xP.Grad) || !wF.Grad.Equal(wP.Grad) || !bF.Grad.Equal(bP.Grad) {
			t.Fatal("LinearGELU gradients differ from GELU(AddRowBias(MatMul))")
		}
	})

	t.Run("AddRowBiasTanh", func(t *testing.T) {
		xr := tensor.New(5, 24)
		br := tensor.New(24)
		rng.FillNormal(xr, 0, 1)
		rng.FillNormal(br, 0, 0.5)
		xF, bF := Leaf(xr.Clone()), Leaf(br.Clone())
		fused := AddRowBiasTanh(xF, bF)
		xP, bP := Leaf(xr.Clone()), Leaf(br.Clone())
		plain := Tanh(AddRowBias(xP, bP))
		if !fused.Val.Equal(plain.Val) {
			t.Fatal("AddRowBiasTanh forward differs from Tanh(AddRowBias)")
		}
		Backward(Mean(fused))
		Backward(Mean(plain))
		if !xF.Grad.Equal(xP.Grad) || !bF.Grad.Equal(bP.Grad) {
			t.Fatal("AddRowBiasTanh gradients differ from Tanh(AddRowBias)")
		}
	})

	t.Run("AddChanBiasSigmoid", func(t *testing.T) {
		xc := tensor.New(2, 3, 4, 4) // hw = 16, SIMD-width multiple
		bc := tensor.New(3)
		rng.FillNormal(xc, 0, 1)
		rng.FillNormal(bc, 0, 0.5)
		xF, bF := Leaf(xc.Clone()), Leaf(bc.Clone())
		fused := AddChanBiasSigmoid(xF, bF)
		xP, bP := Leaf(xc.Clone()), Leaf(bc.Clone())
		plain := Sigmoid(AddChanBias(xP, bP))
		if !fused.Val.Equal(plain.Val) {
			t.Fatal("AddChanBiasSigmoid forward differs from Sigmoid(AddChanBias)")
		}
		Backward(Mean(fused))
		Backward(Mean(plain))
		if !xF.Grad.Equal(xP.Grad) || !bF.Grad.Equal(bP.Grad) {
			t.Fatal("AddChanBiasSigmoid gradients differ from Sigmoid(AddChanBias)")
		}
	})
}

// TestConvStreamedBackwardMatchesPerImage pins the streaming dW
// accumulation: the batched backward re-lowers one image at a time into a
// single scratch buffer and accumulates in ascending batch order, so its
// dW must equal the sum of per-image dWs taken in the same order, bit for
// bit. (This is the invariant that made dropping the retained column
// matrices a pure memory win.)
func TestConvStreamedBackwardMatchesPerImage(t *testing.T) {
	const batch, inC, outC, h, wdt, k = 6, 2, 3, 7, 7, 3
	rng := tensor.NewRNG(72)
	x := tensor.New(batch, inC, h, wdt)
	w := tensor.New(outC, inC, k, k)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(w, 0, 0.5)

	wN := Leaf(w.Clone())
	full := Conv2d(Constant(x.Clone()), wN, nil, 1, 1)
	Backward(Sum(full))
	dwFull := wN.Grad.Clone()

	imgIn := inC * h * wdt
	dwSum := tensor.New(w.Shape()...)
	for b := 0; b < batch; b++ {
		xb := tensor.New(1, inC, h, wdt)
		copy(xb.Data, x.Data[b*imgIn:(b+1)*imgIn])
		wb := Leaf(w.Clone())
		one := Conv2d(Constant(xb), wb, nil, 1, 1)
		Backward(Sum(one))
		for i, g := range wb.Grad.Data {
			dwSum.Data[i] += g
		}
	}
	if !dwFull.Equal(dwSum) {
		t.Fatal("streamed batch dW is not the ascending-order sum of per-image dWs")
	}
}

// TestActivationStepAllocs pins the steady-state allocation class of the
// new activation ops: a full forward+backward+Release step allocates only
// the constant graph skeleton (see graphAllocBudget).
func TestActivationStepAllocs(t *testing.T) {
	ops := map[string]func(*Node) *Node{
		"tanh":    Tanh,
		"sigmoid": Sigmoid,
		"gelu":    GELU,
	}
	for name, op := range ops {
		t.Run(name, func(t *testing.T) {
			rng := tensor.NewRNG(73)
			x := tensor.New(64, 96)
			rng.FillNormal(x, 0, 1)
			xN := Leaf(x)
			allocs := stepAllocs(t, func() {
				xN.ZeroGrad()
				loss := Mean(op(xN))
				Backward(loss)
				Release(loss)
			})
			if allocs > graphAllocBudget {
				t.Fatalf("%s fwd+bwd step allocates %v/op, budget %d", name, allocs, graphAllocBudget)
			}
		})
	}
	t.Run("LinearTanh", func(t *testing.T) {
		rng := tensor.NewRNG(74)
		x := tensor.New(32, 64)
		w := tensor.New(64, 48)
		b := tensor.New(48)
		rng.FillNormal(x, 0, 1)
		rng.FillNormal(w, 0, 0.3)
		rng.FillNormal(b, 0, 0.3)
		xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
		allocs := stepAllocs(t, func() {
			xN.ZeroGrad()
			wN.ZeroGrad()
			bN.ZeroGrad()
			loss := Mean(LinearTanh(xN, wN, bN))
			Backward(loss)
			Release(loss)
		})
		if allocs > graphAllocBudget {
			t.Fatalf("LinearTanh step allocates %v/op, budget %d", allocs, graphAllocBudget)
		}
	})
	t.Run("LinearGELU", func(t *testing.T) {
		rng := tensor.NewRNG(75)
		x := tensor.New(32, 64)
		w := tensor.New(64, 48)
		b := tensor.New(48)
		rng.FillNormal(x, 0, 1)
		rng.FillNormal(w, 0, 0.3)
		rng.FillNormal(b, 0, 0.3)
		xN, wN, bN := Leaf(x), Leaf(w), Leaf(b)
		allocs := stepAllocs(t, func() {
			xN.ZeroGrad()
			wN.ZeroGrad()
			bN.ZeroGrad()
			loss := Mean(LinearGELU(xN, wN, bN))
			Backward(loss)
			Release(loss)
		})
		if allocs > graphAllocBudget {
			t.Fatalf("LinearGELU step allocates %v/op, budget %d", allocs, graphAllocBudget)
		}
	})
}

// TestConvBackwardStepAllocs pins the streamed conv forward+backward at
// the constant-graph-skeleton class — the path PR 1's zero-alloc contract
// previously exempted (it retained one pooled column matrix per image;
// those still came from the pool, but the per-image bookkeeping slice and
// its registration scaled with the batch).
func TestConvBackwardStepAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under -race; pool-hit alloc counts are meaningless")
	}
	rng := tensor.NewRNG(76)
	x := tensor.New(16, 2, 12, 12)
	w := tensor.New(8, 2, 3, 3)
	b := tensor.New(8)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(w, 0, 0.3)
	rng.FillNormal(b, 0, 0.3)
	wN, bN := Leaf(w), Leaf(b)
	allocs := stepAllocs(t, func() {
		wN.ZeroGrad()
		bN.ZeroGrad()
		loss := Mean(Conv2d(Constant(x), wN, bN, 1, 1))
		Backward(loss)
		Release(loss)
	})
	if allocs > graphAllocBudget {
		t.Fatalf("streamed conv fwd+bwd step allocates %v/op, budget %d", allocs, graphAllocBudget)
	}
}

// TestConvBackwardAllocsIndependentOfBatch is the regression test for the
// streaming rewrite: step allocations must not scale with the batch size
// (the retained-columns design kept a []*Tensor of length n plus n live
// pool buffers across the backward).
func TestConvBackwardAllocsIndependentOfBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under -race; pool-hit alloc counts are meaningless")
	}
	measure := func(batch int) float64 {
		rng := tensor.NewRNG(77)
		x := tensor.New(batch, 1, 10, 10)
		rng.FillNormal(x, 0, 1)
		w := tensor.New(4, 1, 3, 3)
		rng.FillNormal(w, 0, 0.3)
		wN := Leaf(w)
		return stepAllocs(t, func() {
			wN.ZeroGrad()
			loss := Mean(Conv2d(Constant(x), wN, nil, 1, 1))
			Backward(loss)
			Release(loss)
		})
	}
	small, large := measure(2), measure(32)
	if large > small+4 {
		t.Fatalf("conv step allocs grew with batch: %v at 2 vs %v at 32", small, large)
	}
}
