package autodiff

import (
	"fmt"
	"math"

	"amalgam/internal/tensor"
)

// Conv2d computes a batched 2-D convolution.
//
//	x: [N, C, H, W]   w: [OC, C, KH, KW]   bias: [OC] or nil
//
// The implementation lowers each image with im2col and performs a single
// matrix multiplication per image, parallelised over the batch.
func Conv2d(x, w, bias *Node, stride, pad int) *Node {
	pre := conv2dCore(x, w, stride, pad)
	if bias != nil {
		return AddChanBias(pre, bias)
	}
	return pre
}

// Conv2dReLU computes relu(Conv2d(x, w, bias)) with the bias+activation
// epilogue fused into a single pass over the feature maps (see
// AddChanBiasReLU). Models whose blocks end in conv→ReLU use it through
// nn.Conv2d.ForwardReLU.
func Conv2dReLU(x, w, bias *Node, stride, pad int) *Node {
	pre := conv2dCore(x, w, stride, pad)
	if bias != nil {
		return AddChanBiasReLU(pre, bias)
	}
	return ReLU(pre)
}

// Conv2dSigmoid computes sigmoid(Conv2d(x, w, bias)) with the
// bias+activation epilogue fused (see AddChanBiasSigmoid) — the shape of
// a convolutional attention gate (CBAM's spatial attention uses it through
// nn.Conv2d.ForwardSigmoid).
func Conv2dSigmoid(x, w, bias *Node, stride, pad int) *Node {
	pre := conv2dCore(x, w, stride, pad)
	if bias != nil {
		return AddChanBiasSigmoid(pre, bias)
	}
	return Sigmoid(pre)
}

// conv2dCore builds the bias-free convolution node shared by Conv2d and
// Conv2dReLU.
func conv2dCore(x, w *Node, stride, pad int) *Node {
	xs, ws := x.Val.Shape(), w.Val.Shape()
	if len(xs) != 4 || len(ws) != 4 || xs[1] != ws[1] {
		panic(fmt.Sprintf("autodiff: Conv2d shapes x%v w%v", xs, ws))
	}
	n, oc := xs[0], ws[0]
	g := &tensor.ConvGeom{
		InC: xs[1], InH: xs[2], InW: xs[3],
		KH: ws[2], KW: ws[3],
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	kdim := g.InC * g.KH * g.KW
	ncols := g.OutH * g.OutW
	imgIn := g.InC * g.InH * g.InW
	imgOut := oc * ncols

	val := tensor.Get(n, oc, g.OutH, g.OutW)
	// Streaming im2col: each image's column matrix lives only as long as
	// its own matmul — nothing is retained for the backward, which
	// re-lowers the image when it needs the columns again. Peak column
	// memory is one buffer per active worker instead of one per image
	// (PR 1/2 kept all n alive from forward through backward), and the
	// re-lowering is a pure copy pass, far cheaper than the dW matmul it
	// feeds.
	forEachImage(n, func(b int) {
		cols := tensor.Get(kdim, ncols)
		tensor.Im2Col(cols, x.Val.Data[b*imgIn:(b+1)*imgIn], g)
		// Raw matmul: w.Val viewed as [oc, kdim] and the image's output
		// slab as [oc, ncols], with no per-image view headers.
		tensor.MatMulRawInto(val.Data[b*imgOut:(b+1)*imgOut], w.Val.Data, cols.Data, oc, kdim, ncols)
		tensor.Put(cols)
	})
	conv := newPooledNode(val, []*Node{x, w}, nil)
	attachConvBackward(conv, x, w, g, n, oc, kdim, ncols, imgIn, imgOut)
	return conv
}

func attachConvBackward(out, x, w *Node, g *tensor.ConvGeom, n, oc, kdim, ncols, imgIn, imgOut int) {
	out.backward = func() {
		if w.requiresGrad {
			// dW = Σ_b dY_b · cols_bᵀ, streamed: the loop already runs
			// sequentially in ascending batch order for determinism
			// (parallelising the reduction would reorder float additions),
			// so one pooled column buffer re-lowered per image serves the
			// whole batch. Im2Col is a pure assignment from x, so the
			// recomputed columns are bit-identical to the forward's.
			wd := w.ensureGrad().Data // [oc, kdim] viewed flat
			cols := tensor.Get(kdim, ncols)
			tmp := tensor.Get(oc, kdim)
			for b := 0; b < n; b++ {
				tensor.Im2Col(cols, x.Val.Data[b*imgIn:(b+1)*imgIn], g)
				tensor.MatMulBTRawInto(tmp.Data, out.Grad.Data[b*imgOut:(b+1)*imgOut], cols.Data, oc, ncols, kdim)
				tensor.AddRawInto(wd, tmp.Data)
			}
			tensor.Put(tmp)
			tensor.Put(cols)
		}
		if x.requiresGrad {
			xg := x.ensureGrad()
			forEachImage(n, func(b int) {
				dcols := tensor.Get(kdim, ncols)
				tensor.MatMulATRawInto(dcols.Data, w.Val.Data, out.Grad.Data[b*imgOut:(b+1)*imgOut], kdim, oc, ncols)
				tensor.Col2Im(xg.Data[b*imgIn:(b+1)*imgIn], dcols, g)
				tensor.Put(dcols)
			})
		}
	}
}

// forEachImage runs fn(b) for b in [0, n), in parallel across the batch.
// Each b touches disjoint output ranges so execution order is irrelevant.
func forEachImage(n int, fn func(b int)) {
	tensor.ParallelRange(n, func(b0, b1 int) {
		for b := b0; b < b1; b++ {
			fn(b)
		}
	})
}

// MaxPool2d applies max pooling with the given square kernel and stride.
func MaxPool2d(x *Node, kernel, stride, pad int) *Node {
	xs := x.Val.Shape()
	g := &tensor.ConvGeom{
		InC: xs[1], InH: xs[2], InW: xs[3],
		KH: kernel, KW: kernel, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	val, argmax := tensor.MaxPoolForward(x.Val, g)
	n := xs[0]
	imgIn := g.InC * g.InH * g.InW
	imgOut := g.InC * g.OutH * g.OutW
	out := newPooledNode(val, []*Node{x}, nil)
	out.backward = func() {
		if x.requiresGrad {
			xg := x.ensureGrad()
			for b := 0; b < n; b++ {
				gb := out.Grad.Data[b*imgOut : (b+1)*imgOut]
				xb := xg.Data[b*imgIn : (b+1)*imgIn]
				ab := argmax[b*imgOut : (b+1)*imgOut]
				for i, idx := range ab {
					if idx >= 0 {
						xb[idx] += gb[i]
					}
				}
			}
		}
	}
	return out
}

// AvgPool2d applies average pooling.
func AvgPool2d(x *Node, kernel, stride, pad int) *Node {
	xs := x.Val.Shape()
	g := &tensor.ConvGeom{
		InC: xs[1], InH: xs[2], InW: xs[3],
		KH: kernel, KW: kernel, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	val := tensor.AvgPoolForward(x.Val, g)
	n := xs[0]
	out := newPooledNode(val, []*Node{x}, nil)
	out.backward = func() {
		if !x.requiresGrad {
			return
		}
		xg := x.ensureGrad()
		imgIn := g.InC * g.InH * g.InW
		imgOut := g.InC * g.OutH * g.OutW
		for b := 0; b < n; b++ {
			gb := out.Grad.Data[b*imgOut : (b+1)*imgOut]
			xb := xg.Data[b*imgIn : (b+1)*imgIn]
			for c := 0; c < g.InC; c++ {
				chanBase := c * g.InH * g.InW
				for oh := 0; oh < g.OutH; oh++ {
					for ow := 0; ow < g.OutW; ow++ {
						// Recompute the in-bounds window size (matches forward).
						count := 0
						for kh := 0; kh < g.KH; kh++ {
							ih := oh*g.StrideH - g.PadH + kh
							if ih < 0 || ih >= g.InH {
								continue
							}
							for kw := 0; kw < g.KW; kw++ {
								iw := ow*g.StrideW - g.PadW + kw
								if iw >= 0 && iw < g.InW {
									count++
								}
							}
						}
						if count == 0 {
							continue
						}
						gv := gb[(c*g.OutH+oh)*g.OutW+ow] / float32(count)
						for kh := 0; kh < g.KH; kh++ {
							ih := oh*g.StrideH - g.PadH + kh
							if ih < 0 || ih >= g.InH {
								continue
							}
							for kw := 0; kw < g.KW; kw++ {
								iw := ow*g.StrideW - g.PadW + kw
								if iw >= 0 && iw < g.InW {
									xb[chanBase+ih*g.InW+iw] += gv
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// GlobalAvgPool reduces [N, C, H, W] to [N, C] by spatial averaging.
func GlobalAvgPool(x *Node) *Node {
	xs := x.Val.Shape()
	if len(xs) != 4 {
		panic(fmt.Sprintf("autodiff: GlobalAvgPool needs 4-D input, got %v", xs))
	}
	n, c, hw := xs[0], xs[1], xs[2]*xs[3]
	val := tensor.Get(n, c)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			var s float64
			for i := 0; i < hw; i++ {
				s += float64(x.Val.Data[base+i])
			}
			val.Data[b*c+ch] = float32(s / float64(hw))
		}
	}
	out := newPooledNode(val, []*Node{x}, nil)
	out.backward = func() {
		if x.requiresGrad {
			xg := x.ensureGrad()
			inv := 1 / float32(hw)
			for b := 0; b < n; b++ {
				for ch := 0; ch < c; ch++ {
					gv := out.Grad.Data[b*c+ch] * inv
					base := (b*c + ch) * hw
					for i := 0; i < hw; i++ {
						xg.Data[base+i] += gv
					}
				}
			}
		}
	}
	return out
}

// BatchNorm2d normalises [N, C, H, W] per channel.
//
// In training mode it uses batch statistics and updates runningMean/
// runningVar in place with the given momentum. In eval mode it uses the
// running statistics (no stat gradients). gamma and beta are [C] nodes.
// Stats, normalize+affine, and the full backward run on the fused tensor
// kernels; the per-channel stat vectors live in pooled node scratch, so
// the op allocates nothing at steady state.
func BatchNorm2d(x, gamma, beta *Node, runningMean, runningVar *tensor.Tensor, momentum, eps float32, training bool) *Node {
	xs := x.Val.Shape()
	if len(xs) != 4 {
		panic(fmt.Sprintf("autodiff: BatchNorm2d needs 4-D input, got %v", xs))
	}
	n, c, hw := xs[0], xs[1], xs[2]*xs[3]
	if gamma.Val.Numel() != c || beta.Val.Numel() != c {
		panic(fmt.Sprintf("autodiff: BatchNorm2d gamma/beta size %d/%d, want %d", gamma.Val.Numel(), beta.Val.Numel(), c))
	}

	mean := tensor.Get(c)   // registered as node scratch below
	invStd := tensor.Get(c) // registered as node scratch below
	if training {
		varv := tensor.Get(c)
		tensor.BatchNormStatsInto(mean.Data, varv.Data, x.Val.Data, n, c, hw)
		// Update running stats (biased variance for normalisation, unbiased
		// for the running estimate — matching PyTorch to keep eval-mode
		// parity).
		m := float64(n * hw)
		unbias := m / (m - 1)
		if m <= 1 {
			unbias = 1
		}
		for ch := 0; ch < c; ch++ {
			runningMean.Data[ch] = (1-momentum)*runningMean.Data[ch] + momentum*mean.Data[ch]
			runningVar.Data[ch] = (1-momentum)*runningVar.Data[ch] + momentum*float32(float64(varv.Data[ch])*unbias)
			invStd.Data[ch] = float32(1 / math.Sqrt(float64(varv.Data[ch])+float64(eps)))
		}
		tensor.Put(varv)
	} else {
		for ch := 0; ch < c; ch++ {
			mean.Data[ch] = runningMean.Data[ch]
			invStd.Data[ch] = float32(1 / math.Sqrt(float64(runningVar.Data[ch])+float64(eps)))
		}
	}

	xhat := tensor.Get(xs...) // registered as node scratch below
	val := tensor.Get(xs...)
	tensor.BatchNormFwdInto(val.Data, xhat.Data, x.Val.Data, mean.Data, invStd.Data, gamma.Val.Data, beta.Val.Data, n, c, hw)
	out := newPooledNode(val, []*Node{x, gamma, beta}, nil)
	out.scratch = []*tensor.Tensor{xhat, mean, invStd}
	out.backward = func() {
		var dx, dg, db []float32
		if x.requiresGrad {
			dx = x.ensureGrad().Data
		}
		if gamma.requiresGrad {
			dg = gamma.ensureGrad().Data
		}
		if beta.requiresGrad {
			db = beta.ensureGrad().Data
		}
		tensor.BatchNormBwdInto(dx, dg, db, out.Grad.Data, xhat.Data, invStd.Data, gamma.Val.Data, n, c, hw, training)
	}
	return out
}
