package autodiff

import (
	"math"
	"testing"

	"amalgam/internal/tensor"
)

func TestGradDepthwiseConv2d(t *testing.T) {
	rng := tensor.NewRNG(31)
	x := tensor.New(2, 3, 5, 5)
	w := tensor.New(3, 3, 3)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(w, 0, 0.4)
	target := tensor.New(2, 3, 5, 5)
	rng.FillNormal(target, 0, 1)
	xN, wN := Leaf(x), Leaf(w)
	loss := func() *Node { return MSE(DepthwiseConv2d(xN, wN, 1, 1), target) }
	gradCheck(t, []*Node{wN, xN}, loss, 2e-2)
}

func TestGradDepthwiseStride2(t *testing.T) {
	rng := tensor.NewRNG(32)
	x := tensor.New(1, 2, 6, 6)
	w := tensor.New(2, 3, 3)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(w, 0, 0.4)
	target := tensor.New(1, 2, 3, 3)
	rng.FillNormal(target, 0, 1)
	xN, wN := Leaf(x), Leaf(w)
	loss := func() *Node { return MSE(DepthwiseConv2d(xN, wN, 2, 1), target) }
	gradCheck(t, []*Node{wN, xN}, loss, 2e-2)
}

func TestGradGlobalMaxPool(t *testing.T) {
	rng := tensor.NewRNG(33)
	x := tensor.New(2, 3, 4, 4)
	rng.FillNormal(x, 0, 2) // well-separated values avoid kink ambiguity
	target := tensor.New(2, 3)
	rng.FillNormal(target, 0, 1)
	xN := Leaf(x)
	loss := func() *Node { return MSE(GlobalMaxPool(xN), target) }
	gradCheck(t, []*Node{xN}, loss, 3e-2)
}

func TestGradMulChannelScale(t *testing.T) {
	rng := tensor.NewRNG(34)
	x := tensor.New(2, 3, 3, 3)
	s := tensor.New(2, 3)
	rng.FillNormal(x, 0, 1)
	rng.FillUniform(s, 0.2, 1)
	target := tensor.New(2, 3, 3, 3)
	rng.FillNormal(target, 0, 1)
	xN, sN := Leaf(x), Leaf(s)
	loss := func() *Node { return MSE(MulChannelScale(xN, sN), target) }
	gradCheck(t, []*Node{xN, sN}, loss, 2e-2)
}

func TestGradMulSpatialScale(t *testing.T) {
	rng := tensor.NewRNG(35)
	x := tensor.New(2, 3, 3, 3)
	s := tensor.New(2, 1, 3, 3)
	rng.FillNormal(x, 0, 1)
	rng.FillUniform(s, 0.2, 1)
	target := tensor.New(2, 3, 3, 3)
	rng.FillNormal(target, 0, 1)
	xN, sN := Leaf(x), Leaf(s)
	loss := func() *Node { return MSE(MulSpatialScale(xN, sN), target) }
	gradCheck(t, []*Node{xN, sN}, loss, 2e-2)
}

func TestGradChannelMeanMax(t *testing.T) {
	rng := tensor.NewRNG(36)
	x := tensor.New(1, 4, 3, 3)
	rng.FillNormal(x, 0, 2)
	target := tensor.New(1, 2, 3, 3)
	rng.FillNormal(target, 0, 1)
	xN := Leaf(x)
	loss := func() *Node { return MSE(ChannelMeanMax(xN), target) }
	gradCheck(t, []*Node{xN}, loss, 3e-2)
}

func TestSplitMergeHeadsInverse(t *testing.T) {
	rng := tensor.NewRNG(37)
	x := tensor.New(2, 3, 8)
	rng.FillNormal(x, 0, 1)
	xN := Constant(x)
	back := MergeHeads(SplitHeads(xN, 4), 4)
	if !back.Val.Equal(x) {
		t.Fatal("MergeHeads(SplitHeads(x)) must be identity")
	}
}

func TestGradSplitHeads(t *testing.T) {
	rng := tensor.NewRNG(38)
	x := tensor.New(2, 3, 4)
	rng.FillNormal(x, 0, 1)
	target := tensor.New(4, 3, 2)
	rng.FillNormal(target, 0, 1)
	xN := Leaf(x)
	loss := func() *Node { return MSE(SplitHeads(xN, 2), target) }
	gradCheck(t, []*Node{xN}, loss, 2e-2)
}

func TestGradAddConstPassesThrough(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2}, 2)
	c := tensor.FromSlice([]float32{10, 20}, 2)
	xN := Leaf(x)
	Backward(Mean(AddConst(xN, c)))
	for _, g := range xN.Grad.Data {
		if math.Abs(float64(g)-0.5) > 1e-6 {
			t.Fatalf("AddConst grad %v, want 0.5", g)
		}
	}
}

func TestGradAddChanBias(t *testing.T) {
	rng := tensor.NewRNG(39)
	x := tensor.New(2, 3, 2, 2)
	b := tensor.New(3)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(b, 0, 1)
	target := tensor.New(2, 3, 2, 2)
	rng.FillNormal(target, 0, 1)
	xN, bN := Leaf(x), Leaf(b)
	loss := func() *Node { return MSE(AddChanBias(xN, bN), target) }
	gradCheck(t, []*Node{xN, bN}, loss, 2e-2)
}

func TestSubGradient(t *testing.T) {
	a := Leaf(tensor.FromSlice([]float32{3}, 1))
	b := Leaf(tensor.FromSlice([]float32{1}, 1))
	Backward(Sum(Sub(a, b)))
	if a.Grad.Data[0] != 1 || b.Grad.Data[0] != -1 {
		t.Fatalf("Sub grads: %v, %v", a.Grad.Data[0], b.Grad.Data[0])
	}
}

func TestScaleGradient(t *testing.T) {
	a := Leaf(tensor.FromSlice([]float32{2}, 1))
	Backward(Sum(Scale(a, -3)))
	if a.Grad.Data[0] != -3 {
		t.Fatalf("Scale grad %v, want -3", a.Grad.Data[0])
	}
}
