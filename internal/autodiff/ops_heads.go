package autodiff

import (
	"fmt"

	"amalgam/internal/tensor"
)

// SplitHeads rearranges [N, T, D] into [N*H, T, D/H] for multi-head
// attention (permuting (N,T,H,hd) → (N,H,T,hd)).
func SplitHeads(a *Node, heads int) *Node {
	as := a.Val.Shape()
	if len(as) != 3 || as[2]%heads != 0 {
		panic(fmt.Sprintf("autodiff: SplitHeads shape %v heads %d", as, heads))
	}
	n, t, d := as[0], as[1], as[2]
	hd := d / heads
	val := tensor.Get(n*heads, t, hd)
	for b := 0; b < n; b++ {
		for pos := 0; pos < t; pos++ {
			for h := 0; h < heads; h++ {
				src := a.Val.Data[(b*t+pos)*d+h*hd : (b*t+pos)*d+(h+1)*hd]
				dst := val.Data[((b*heads+h)*t+pos)*hd : ((b*heads+h)*t+pos+1)*hd]
				copy(dst, src)
			}
		}
	}
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for b := 0; b < n; b++ {
				for pos := 0; pos < t; pos++ {
					for h := 0; h < heads; h++ {
						src := out.Grad.Data[((b*heads+h)*t+pos)*hd : ((b*heads+h)*t+pos+1)*hd]
						dst := g.Data[(b*t+pos)*d+h*hd : (b*t+pos)*d+(h+1)*hd]
						for i := range src {
							dst[i] += src[i]
						}
					}
				}
			}
		}
	}
	return out
}

// MergeHeads is the inverse of SplitHeads: [N*H, T, hd] → [N, T, H*hd].
func MergeHeads(a *Node, heads int) *Node {
	as := a.Val.Shape()
	if len(as) != 3 || as[0]%heads != 0 {
		panic(fmt.Sprintf("autodiff: MergeHeads shape %v heads %d", as, heads))
	}
	n, t, hd := as[0]/heads, as[1], as[2]
	d := heads * hd
	val := tensor.Get(n, t, d)
	for b := 0; b < n; b++ {
		for pos := 0; pos < t; pos++ {
			for h := 0; h < heads; h++ {
				src := a.Val.Data[((b*heads+h)*t+pos)*hd : ((b*heads+h)*t+pos+1)*hd]
				dst := val.Data[(b*t+pos)*d+h*hd : (b*t+pos)*d+(h+1)*hd]
				copy(dst, src)
			}
		}
	}
	out := newPooledNode(val, []*Node{a}, nil)
	out.backward = func() {
		if a.requiresGrad {
			g := a.ensureGrad()
			for b := 0; b < n; b++ {
				for pos := 0; pos < t; pos++ {
					for h := 0; h < heads; h++ {
						src := out.Grad.Data[(b*t+pos)*d+h*hd : (b*t+pos)*d+(h+1)*hd]
						dst := g.Data[((b*heads+h)*t+pos)*hd : ((b*heads+h)*t+pos+1)*hd]
						for i := range src {
							dst[i] += src[i]
						}
					}
				}
			}
		}
	}
	return out
}
