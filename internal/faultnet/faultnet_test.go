package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeServer accepts one connection and echoes everything it reads.
func pipeServer(t *testing.T, l net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func newEchoListener(t *testing.T, plan func(i int) ConnPlan) *Listener {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	l := Wrap(inner, plan)
	t.Cleanup(func() { l.Close() })
	pipeServer(t, l)
	return l
}

func TestTransparentByDefault(t *testing.T) {
	l := newEchoListener(t, nil)
	c := dial(t, l.Addr().String())
	msg := []byte("hello fault-free world")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	if l.Accepted() != 1 {
		t.Fatalf("accepted = %d, want 1", l.Accepted())
	}
}

func TestCutAfterReadBytesTruncatesMidMessage(t *testing.T) {
	// The server-side conn dies after reading 10 bytes: the client's
	// 16-byte message is truncated and the echo dies with it.
	l := newEchoListener(t, func(i int) ConnPlan {
		return ConnPlan{CutAfterReadBytes: 10}
	})
	c := dial(t, l.Addr().String())
	if _, err := c.Write(make([]byte, 16)); err != nil {
		// A fast cut can surface on the write itself; also acceptable.
		return
	}
	buf := make([]byte, 16)
	n, err := io.ReadFull(c, buf)
	if err == nil {
		t.Fatalf("expected truncated echo, read %d bytes fine", n)
	}
	if n > 10 {
		t.Fatalf("echoed %d bytes through a 10-byte read budget", n)
	}
}

func TestCutAfterWriteBytes(t *testing.T) {
	l := newEchoListener(t, func(i int) ConnPlan {
		return ConnPlan{CutAfterWriteBytes: 6}
	})
	c := dial(t, l.Addr().String())
	if _, err := c.Write(make([]byte, 64)); err != nil {
		return // write-side cut surfaced on the client: fine
	}
	// The echo dies after 6 bytes.
	got, _ := io.ReadAll(c)
	if len(got) > 6 {
		t.Fatalf("received %d bytes through a 6-byte write budget", len(got))
	}
}

func TestRefuseConn(t *testing.T) {
	l := newEchoListener(t, func(i int) ConnPlan {
		return ConnPlan{RefuseConn: true}
	})
	c := dial(t, l.Addr().String())
	// Dial succeeds (kernel handshake), but the connection is dead: either
	// the write or the read must fail quickly.
	_, werr := c.Write([]byte("ping"))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, rerr := c.Read(make([]byte, 4))
	if werr == nil && rerr == nil {
		t.Fatal("refused connection carried traffic")
	}
}

func TestKillAllSeversLiveConnections(t *testing.T) {
	l := newEchoListener(t, nil)
	c := dial(t, l.Addr().String())
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("pre-kill echo: %v", err)
	}
	l.KillAll()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded on a killed connection")
	}
	// Server-side reads on the killed conn report EOF, not a timeout.
	l.mu.Lock()
	fc := l.conns[0]
	l.mu.Unlock()
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("killed conn read = %v, want io.EOF", err)
	}
}

func TestPlanIndexSelectsConnection(t *testing.T) {
	// Connection 0 is refused, connection 1 works: a deterministic
	// "first attempt fails, retry succeeds" schedule.
	l := newEchoListener(t, func(i int) ConnPlan {
		if i == 0 {
			return ConnPlan{RefuseConn: true}
		}
		return ConnPlan{}
	})
	c0 := dial(t, l.Addr().String())
	c0.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, werr := c0.Write([]byte("x"))
	_, rerr := c0.Read(make([]byte, 1))
	if werr == nil && rerr == nil {
		t.Fatal("connection 0 should have been refused")
	}
	c1 := dial(t, l.Addr().String())
	if _, err := c1.Write([]byte("y")); err != nil {
		t.Fatalf("write on retry conn: %v", err)
	}
	got := make([]byte, 1)
	if _, err := io.ReadFull(c1, got); err != nil || got[0] != 'y' {
		t.Fatalf("retry conn echo: %v %q", err, got)
	}
}
