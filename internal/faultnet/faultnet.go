// Package faultnet provides deterministic fault-injecting net.Listener
// and net.Conn wrappers for driving every recovery path of the training
// protocol under test: connections that die after a planned number of
// bytes (truncating a frame mid-payload), that stall before I/O, that are
// refused at accept, or that are killed on demand at an epoch boundary.
//
// Faults are planned per connection index by a caller-supplied closure,
// so a test's fault schedule is a pure function of connection order —
// reproducible under -race and across platforms, with no real-clock or
// scheduler dependence beyond the delays a plan explicitly requests.
package faultnet

import (
	"io"
	"net"
	"sync"
	"time"
)

// ConnPlan scripts the faults of one accepted connection. The zero value
// is a fully transparent connection.
type ConnPlan struct {
	// RefuseConn closes the connection the moment it is accepted: the
	// peer's dial succeeds (the kernel completed the handshake) but its
	// first I/O fails — the classic "server died right after connect".
	RefuseConn bool
	// CutAfterReadBytes kills the whole connection (both directions)
	// after this many bytes have been read through it. 0 means no read
	// cut. Choosing a value inside a frame's payload truncates the frame
	// mid-read on the peer.
	CutAfterReadBytes int64
	// CutAfterWriteBytes is the write-side counterpart.
	CutAfterWriteBytes int64
	// ReadDelay stalls every Read, exercising deadline paths.
	ReadDelay time.Duration
	// WriteDelay stalls every Write.
	WriteDelay time.Duration
}

// Listener wraps an inner listener and applies a per-connection fault
// plan to everything it accepts.
type Listener struct {
	inner net.Listener

	mu    sync.Mutex
	plan  func(i int) ConnPlan
	next  int
	conns []*Conn
}

// Wrap builds a fault-injecting listener. plan is called with the
// connection's accept index (0-based) and must be safe for sequential
// calls; nil plans every connection transparent.
func Wrap(l net.Listener, plan func(i int) ConnPlan) *Listener {
	if plan == nil {
		plan = func(int) ConnPlan { return ConnPlan{} }
	}
	return &Listener{inner: l, plan: plan}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	// Claim the connection index under the lock, but call the
	// caller-supplied plan closure outside it: a plan that blocks (to
	// stage a timing fault, say) must not stall concurrent Accepts or
	// CloseAll. l.plan itself is immutable after Wrap.
	l.mu.Lock()
	i := l.next
	l.next++
	l.mu.Unlock()
	p := l.plan(i)
	if p.RefuseConn {
		_ = c.Close()
		// Hand the corpse to the server anyway: its handler reads EOF and
		// moves on, exactly as with a client that vanished post-handshake.
	}
	fc := &Conn{Conn: c, plan: p}
	l.mu.Lock()
	l.conns = append(l.conns, fc)
	l.mu.Unlock()
	return fc, nil
}

// Close implements net.Listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Accepted returns how many connections have been accepted so far.
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// KillAll immediately severs every connection accepted so far — the
// "server host dies at an epoch boundary" fault, triggered from a
// progress callback at the exact moment under test.
func (l *Listener) KillAll() {
	l.mu.Lock()
	conns := append([]*Conn(nil), l.conns...)
	l.mu.Unlock()
	for _, c := range conns {
		c.Kill()
	}
}

// Conn is a net.Conn that dies per its plan.
type Conn struct {
	net.Conn
	plan ConnPlan

	mu           sync.Mutex
	bytesRead    int64
	bytesWritten int64
	killed       bool
}

// Kill severs the connection now, regardless of plan.
func (c *Conn) Kill() {
	c.mu.Lock()
	c.killed = true
	c.mu.Unlock()
	_ = c.Conn.Close()
}

func (c *Conn) isKilled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// Read implements net.Conn, cutting the connection once the planned read
// budget is spent. A Read straddling the cut returns the bytes up to it,
// so a peer mid-frame sees a truncated payload then a dead socket.
func (c *Conn) Read(p []byte) (int, error) {
	if c.plan.ReadDelay > 0 {
		time.Sleep(c.plan.ReadDelay)
	}
	if c.isKilled() {
		return 0, io.EOF
	}
	if cut := c.plan.CutAfterReadBytes; cut > 0 {
		c.mu.Lock()
		left := cut - c.bytesRead
		c.mu.Unlock()
		if left <= 0 {
			c.Kill()
			return 0, io.ErrUnexpectedEOF
		}
		if int64(len(p)) > left {
			p = p[:left]
		}
	}
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.bytesRead += int64(n)
	spent := c.plan.CutAfterReadBytes > 0 && c.bytesRead >= c.plan.CutAfterReadBytes
	c.mu.Unlock()
	if spent {
		c.Kill()
	}
	return n, err
}

// Write implements net.Conn, cutting after the planned write budget. The
// straddling Write reports the truncated count with an error, like a
// socket that died mid-send.
func (c *Conn) Write(p []byte) (int, error) {
	if c.plan.WriteDelay > 0 {
		time.Sleep(c.plan.WriteDelay)
	}
	if c.isKilled() {
		return 0, io.ErrClosedPipe
	}
	if cut := c.plan.CutAfterWriteBytes; cut > 0 {
		c.mu.Lock()
		left := cut - c.bytesWritten
		c.mu.Unlock()
		if left <= 0 {
			c.Kill()
			return 0, io.ErrClosedPipe
		}
		if int64(len(p)) > left {
			n, _ := c.Conn.Write(p[:left])
			c.mu.Lock()
			c.bytesWritten += int64(n)
			c.mu.Unlock()
			c.Kill()
			return n, io.ErrClosedPipe
		}
	}
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.bytesWritten += int64(n)
	c.mu.Unlock()
	return n, err
}
