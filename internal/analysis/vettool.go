package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// Vet-tool (unitchecker) mode: `go vet -vettool=/path/to/amalgam-vet`
// invokes the tool once per package with a JSON .cfg file describing the
// package's sources and the export data of its already-compiled
// dependencies. This file implements that protocol on the standard
// library: parse the listed sources, typecheck against the export data
// via go/importer's gc reader, run the suite, and report in the exit-code
// convention cmd/go expects (2 = findings). No analysis facts cross
// package boundaries — all four analyzers are intra-package — so the
// facts file (VetxOutput) is written empty.

// vetConfig mirrors the fields of cmd/go's internal vet config that the
// suite needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// RunVetTool executes the suite under the unitchecker protocol for one
// .cfg file, returning the surviving diagnostics.
func RunVetTool(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	cfg := &vetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("amalgam-vet: parsing %s: %v", cfgPath, err)
	}

	// Facts output first: cmd/go expects the file to exist even when this
	// package contributes nothing.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency pass, analyzed only for facts — of which we have none.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	src := make(map[string][]byte)
	for _, name := range cfg.GoFiles {
		b, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, b, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		src[name] = b
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	gc := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("amalgam-vet: no export data for %q", path)
		}
		return os.Open(file)
	})
	imported := make(map[string]*types.Package)
	var imp importerFunc = func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if p, ok := imported[path]; ok {
			return p, nil
		}
		p, err := gc.(types.ImporterFrom).ImportFrom(path, cfg.Dir, 0)
		if err != nil {
			return nil, err
		}
		imported[path] = p
		return p, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tcfg := &types.Config{
		Importer:    imp,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
	}
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("amalgam-vet: typechecking %s: %v", cfg.ImportPath, err)
	}

	pkg := &Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Src:   src,
		Dep: func(path string) *types.Package {
			p, err := imp(path)
			if err != nil {
				return nil
			}
			return p
		},
	}
	return runPackage(pkg, analyzers)
}
