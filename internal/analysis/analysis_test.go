package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden tests follow the x/tools analysistest convention: each
// testdata/<name>/src tree is loaded as an overlay (its directories become
// import paths, shadowing real packages), the analyzer under test runs,
// and its diagnostics must line up exactly with the `want "regex"`
// expectations in the sources. A regex is matched against the rendered
// "analyzer: message" string of a diagnostic on the same line; lines whose
// trailing comment position is already taken by an //amalgam:allow
// directive carry their expectation in a /* want "..." */ block comment
// instead.

// stdDeps are the standard-library roots the testdata trees import; the
// loader needs their go list metadata to typecheck the overlays.
var stdDeps = []string{"context", "errors", "fmt", "math/rand/v2", "net", "sync", "time"}

func runGolden(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	l, err := NewLoader(".", stdDeps...)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadOverlay("testdata/" + name + "/src")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("testdata/%s/src holds no packages", name)
	}
	diags, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(d.Analyzer+": "+d.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("%s: no diagnostic matched want %q", key, w)
			}
		}
	}
}

// collectWants extracts the `want "regex"...` expectations from every
// comment in the loaded packages, keyed by "filename:line" of the comment.
func collectWants(t *testing.T, pkgs []*Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, `want "`)
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					rest := c.Text[idx+len("want "):]
					for {
						rest = strings.TrimLeft(rest, " \t")
						if !strings.HasPrefix(rest, `"`) {
							break
						}
						end := quotedEnd(rest)
						if end < 0 {
							t.Fatalf("%s: unterminated want expectation", key)
						}
						lit, err := strconv.Unquote(rest[:end])
						if err != nil {
							t.Fatalf("%s: bad want literal %s: %v", key, rest[:end], err)
						}
						wants[key] = append(wants[key], regexp.MustCompile(lit))
						rest = rest[end:]
					}
				}
			}
		}
	}
	return wants
}

// quotedEnd returns the index just past the closing quote of the string
// literal starting s, honoring escapes; -1 if unterminated.
func quotedEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return -1
}

func TestPoolCheckGolden(t *testing.T) { runGolden(t, "poolcheck", PoolCheck) }
func TestDetCheckGolden(t *testing.T)  { runGolden(t, "detcheck", DetCheck) }
func TestLockCheckGolden(t *testing.T) { runGolden(t, "lockcheck", LockCheck) }
func TestErrTaxGolden(t *testing.T)    { runGolden(t, "errtax", ErrTaxCheck) }

// TestErrTaxMissingClassifiers exercises the taxonomy-completeness rule's
// other failure mode: classifier functions absent from the package.
func TestErrTaxMissingClassifiers(t *testing.T) { runGolden(t, "errtaxmissing", ErrTaxCheck) }

// TestSuppressGolden pins the //amalgam:allow contract itself: a directive
// silences exactly the named analyzer on exactly the annotated line, and
// malformed, unknown-analyzer, and stale directives are themselves
// reported.
func TestSuppressGolden(t *testing.T) { runGolden(t, "suppress", LockCheck) }

// TestSuiteCleanOnRepo is the enforcement test: the full suite over the
// whole module must report nothing — every real finding is either fixed or
// carries a reasoned //amalgam:allow. A regression here is a contract
// violation, not a style nit.
func TestSuiteCleanOnRepo(t *testing.T) {
	l, err := NewLoader("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadTargets()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}
}
