package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// The loader typechecks packages from source using only the standard
// library: `go list -deps -json` enumerates every package (module-local
// and standard) with its build-tag-resolved file list, and a memoized
// importer typechecks dependencies on demand — declarations only, the way
// x/tools' srcimporter works — so the analyzers get full go/types
// information without the go/packages dependency the container lacks.

// pkgMeta is the subset of `go list -json` output the loader needs.
type pkgMeta struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Package is one fully typechecked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Src maps filename to source bytes, for suppression-directive and
	// golden-test line handling.
	Src map[string][]byte
	// Dep resolves an import path anywhere in this package's dependency
	// closure to its typechecked form (nil if absent). Analyzers use it to
	// reach well-known types such as net.Conn.
	Dep func(path string) *types.Package
}

// typedPkg memoizes one typecheck result.
type typedPkg struct {
	once sync.Once
	pkg  *types.Package
	full *Package // non-nil when typechecked as an analysis target
	err  error
}

// Loader loads and typechecks packages of the module rooted at Dir.
type Loader struct {
	Dir  string
	fset *token.FileSet

	mu    sync.Mutex
	metas map[string]*pkgMeta
	typed map[string]*typedPkg // key: overlayRoot + "\x00" + importPath
}

// NewLoader builds a loader for the module at dir, resolving the given
// `go list` patterns (plus their full dependency closure, including the
// standard library).
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	l := &Loader{
		Dir:   dir,
		fset:  token.NewFileSet(),
		metas: make(map[string]*pkgMeta),
		typed: make(map[string]*typedPkg),
	}
	if err := l.list(patterns); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Loader) list(patterns []string) error {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Name,GoFiles,CgoFiles,Standard,DepOnly,ImportMap,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	// Resolve the dependency closure without cgo so std packages (net,
	// os/user, …) come back in their pure-Go build configuration — the only
	// one a source-level typechecker can consume.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	dec := json.NewDecoder(&out)
	for dec.More() {
		m := &pkgMeta{}
		if err := dec.Decode(m); err != nil {
			return fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if m.Error != nil {
			return fmt.Errorf("analysis: go list: %s: %s", m.ImportPath, m.Error.Err)
		}
		l.metas[m.ImportPath] = m
	}
	return nil
}

// Targets returns the import paths of the named (non-dependency,
// non-standard) packages, sorted.
func (l *Loader) Targets() []string {
	var out []string
	for p, m := range l.metas {
		if !m.DepOnly && !m.Standard && len(m.GoFiles) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// LoadTargets typechecks every target package for analysis.
func (l *Loader) LoadTargets() ([]*Package, error) {
	var pkgs []*Package
	for _, path := range l.Targets() {
		p, err := l.load("", path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadOverlay typechecks the golden-test package tree under srcRoot: every
// directory below it holding .go files becomes a package whose import path
// is its path relative to srcRoot. Overlay packages shadow same-named real
// packages for imports resolved within this overlay — exactly how
// analysistest's testdata/src convention works.
func (l *Loader) LoadOverlay(srcRoot string) ([]*Package, error) {
	srcRoot, err := filepath.Abs(srcRoot)
	if err != nil {
		return nil, err
	}
	var paths []string
	err = filepath.Walk(srcRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if strings.HasSuffix(path, ".go") {
			rel, _ := filepath.Rel(srcRoot, filepath.Dir(path))
			paths = append(paths, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	paths = dedup(paths)
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.load(srcRoot, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func dedup(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// load typechecks one package as an analysis target (bodies included).
func (l *Loader) load(overlay, path string) (*Package, error) {
	e := l.entry(overlay, path)
	e.once.Do(func() { l.typecheck(overlay, path, e, true) })
	if e.err != nil {
		return nil, e.err
	}
	if e.full == nil {
		// Already memoized declarations-only (it was imported before being
		// requested as a target); re-do it fully under a distinct key.
		e2 := l.entry(overlay, path+"\x00full")
		e2.once.Do(func() { l.typecheck(overlay, path, e2, true) })
		if e2.err != nil {
			return nil, e2.err
		}
		return e2.full, nil
	}
	return e.full, nil
}

func (l *Loader) entry(overlay, path string) *typedPkg {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := overlay + "\x00" + path
	e := l.typed[key]
	if e == nil {
		e = &typedPkg{}
		l.typed[key] = e
	}
	return e
}

// importFor resolves an import from within overlay context: overlay
// packages shadow real ones; everything else falls back to the go list
// table (declarations only).
func (l *Loader) importFor(overlay, path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if overlay != "" {
		if dir := filepath.Join(overlay, filepath.FromSlash(path)); hasGoFiles(dir) {
			e := l.entry(overlay, path)
			e.once.Do(func() { l.typecheck(overlay, path, e, false) })
			return e.pkg, e.err
		}
	}
	e := l.entry("", path)
	e.once.Do(func() { l.typecheck("", path, e, false) })
	return e.pkg, e.err
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".go") {
			return true
		}
	}
	return false
}

// files returns the source file list for path under the given overlay.
func (l *Loader) files(overlay, path string) (dir string, names []string, importMap map[string]string, err error) {
	if overlay != "" {
		dir = filepath.Join(overlay, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			ents, err := os.ReadDir(dir)
			if err != nil {
				return "", nil, nil, err
			}
			for _, ent := range ents {
				if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".go") {
					names = append(names, ent.Name())
				}
			}
			sort.Strings(names)
			return dir, names, nil, nil
		}
	}
	m := l.meta(path)
	if m == nil {
		return "", nil, nil, fmt.Errorf("analysis: package %q is outside the loaded dependency closure", path)
	}
	if len(m.CgoFiles) > 0 {
		return "", nil, nil, fmt.Errorf("analysis: package %q uses cgo, which this loader cannot typecheck", path)
	}
	return m.Dir, m.GoFiles, m.ImportMap, nil
}

func (l *Loader) meta(path string) *pkgMeta {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.metas[path]
}

// typecheck parses and typechecks one package. Dependencies are checked
// declarations-only (fast, and immune to compiler-intrinsic function
// bodies deep in the standard library); targets keep bodies and carry
// full type info for the analyzers.
func (l *Loader) typecheck(overlay, path string, e *typedPkg, target bool) {
	realPath := strings.TrimSuffix(path, "\x00full")
	dir, names, importMap, err := l.files(overlay, realPath)
	if err != nil {
		e.err = err
		return
	}
	var files []*ast.File
	src := make(map[string][]byte)
	mode := parser.SkipObjectResolution
	if target {
		mode |= parser.ParseComments
	}
	for _, name := range names {
		fn := filepath.Join(dir, name)
		b, err := os.ReadFile(fn)
		if err != nil {
			e.err = err
			return
		}
		f, err := parser.ParseFile(l.fset, fn, b, mode)
		if err != nil {
			e.err = fmt.Errorf("analysis: parsing %s: %v", fn, err)
			return
		}
		files = append(files, f)
		src[fn] = b
	}
	imp := importerFunc(func(p string) (*types.Package, error) {
		if mapped, ok := importMap[p]; ok {
			p = mapped
		}
		return l.importFor(overlay, p)
	})
	cfg := &types.Config{
		Importer:         imp,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		FakeImportC:      true,
		IgnoreFuncBodies: !target,
		Error: func(err error) {
			if e.err == nil {
				e.err = err
			}
		},
	}
	tinfo := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, cerr := cfg.Check(realPath, l.fset, files, tinfo)
	if e.err == nil {
		e.err = cerr
	}
	if e.err != nil {
		e.err = fmt.Errorf("analysis: typechecking %s: %v", realPath, e.err)
		return
	}
	e.pkg = pkg
	if target {
		e.full = &Package{
			Path:  realPath,
			Fset:  l.fset,
			Files: files,
			Types: pkg,
			Info:  tinfo,
			Src:   src,
			Dep: func(p string) *types.Package {
				tp, err := l.importFor(overlay, p)
				if err != nil {
					return nil
				}
				return tp
			},
		}
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
