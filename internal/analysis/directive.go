package analysis

import (
	"bytes"
	"go/token"
	"strings"
)

// Suppression directives.
//
//	//amalgam:allow <analyzer> <reason>
//
// Written trailing a statement, the directive silences the named
// analyzer's findings on that line; written on a line of its own, it
// silences them on the immediately following line. Nothing else: the
// directive never widens to a block or a file, so every accepted
// exception is visible at the exact site it excuses.

// directive is one parsed //amalgam:allow comment.
type directive struct {
	pos      token.Position
	analyzer string // "" when malformed
	reason   string
	target   int // line whose findings this directive suppresses
	used     bool
}

const directivePrefix = "amalgam:allow"

// collectDirectives parses every //amalgam:allow comment in the package.
func collectDirectives(pkg *Package) []*directive {
	var dirs []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments cannot carry directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &directive{pos: pos, target: pos.Line}
				if standaloneComment(pkg.Src[pos.Filename], pos) {
					d.target = pos.Line + 1
				}
				fields := strings.Fields(rest)
				if len(fields) >= 1 {
					d.analyzer = fields[0]
					d.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// standaloneComment reports whether only whitespace precedes the comment
// on its line — i.e. the directive governs the NEXT line, not its own.
func standaloneComment(src []byte, pos token.Position) bool {
	if src == nil || pos.Offset > len(src) {
		return false
	}
	lineStart := bytes.LastIndexByte(src[:pos.Offset], '\n') + 1
	return len(bytes.TrimSpace(src[lineStart:pos.Offset])) == 0
}

// applyDirectives filters diags through the package's //amalgam:allow
// directives and appends directive-hygiene findings: malformed directives,
// directives naming an unknown analyzer, and stale directives whose named
// analyzer ran but reported nothing on the governed line.
func applyDirectives(pkg *Package, ran []*Analyzer, diags []Diagnostic) []Diagnostic {
	dirs := collectDirectives(pkg)
	if len(dirs) == 0 {
		return diags
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	running := make(map[string]bool)
	for _, a := range ran {
		running[a.Name] = true
	}

	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.analyzer == d.Analyzer && dir.reason != "" &&
				dir.pos.Filename == d.Pos.Filename && dir.target == d.Pos.Line {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	for _, dir := range dirs {
		switch {
		case dir.analyzer == "" || dir.reason == "":
			out = append(out, Diagnostic{
				Analyzer: AllowName, Pos: dir.pos,
				Message: "malformed directive: want //amalgam:allow <analyzer> <reason>",
			})
		case !known[dir.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: AllowName, Pos: dir.pos,
				Message: "directive names unknown analyzer " + dir.analyzer,
			})
		case running[dir.analyzer] && !dir.used:
			out = append(out, Diagnostic{
				Analyzer: AllowName, Pos: dir.pos,
				Message: "stale directive: " + dir.analyzer + " reports nothing on the governed line",
			})
		}
	}
	return out
}
