// Package analysis is amalgam-vet: a suite of static analyzers that
// mechanize the repo's hand-maintained invariant contracts —
//
//   - poolcheck: scratch-pool Get/Put pairing (a pooled tensor must reach
//     tensor.Put or a documented ownership transfer on every return path);
//   - detcheck: bit-exact determinism (no wall clock, no global RNG, no
//     map-order dependence) inside the determinism-contracted packages;
//   - lockcheck: no potentially-blocking work — channel operations,
//     net.Conn I/O, user callbacks — while a sync.Mutex/RWMutex field is
//     held (the PR 6 deadlock class, as a build error);
//   - errtaxcheck: every error crossing the cloudsim protocol boundary is
//     a typed sentinel or wraps one, and the sentinel taxonomy stays in
//     sync with errCodeOf/sentinelFor/IsTransient.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the analyzers can be lifted onto the upstream
// framework unchanged when that dependency is available; this container
// builds them on the standard library alone. The suite runs standalone
// (`go run ./cmd/amalgam-vet ./...`) and as a `go vet -vettool=` plugin
// speaking cmd/go's unitchecker .cfg protocol.
//
// Deliberate exceptions are annotated in source:
//
//	//amalgam:allow <analyzer> <reason>
//
// A trailing directive suppresses that analyzer's findings on its own
// line; a standalone directive suppresses them on the next line. The
// reason is mandatory, and a stale directive (nothing to suppress) is
// itself reported, so suppressions cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker. The shape mirrors
// x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //amalgam:allow directives.
	Name string
	// Doc states the invariant the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run over one package, mirroring
// x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Dep resolves an import path in the package's dependency closure
	// (nil if absent) — how lockcheck reaches net.Conn.
	Dep func(path string) *types.Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// AllowName is the pseudo-analyzer that owns directive hygiene findings
// (malformed, unknown-analyzer, and stale //amalgam:allow directives).
const AllowName = "allow"

// Analyzers returns the full amalgam-vet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{PoolCheck, DetCheck, LockCheck, ErrTaxCheck}
}

// Run applies the analyzers to each package, applies //amalgam:allow
// suppression directives, and returns the surviving diagnostics sorted by
// position. Directive hygiene problems are reported under the "allow"
// pseudo-analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Dep:      pkg.Dep,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	return applyDirectives(pkg, analyzers, diags), nil
}
