package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolcheck mechanizes the scratch-pool ownership contract from
// internal/tensor/pool.go: every buffer acquired with tensor.Get or
// tensor.GetZero must, within its acquiring function, either reach
// tensor.Put (directly or from a deferred closure, which also covers
// panic unwinding) or be handed off — returned, stored into a longer-lived
// structure, or passed to another function that assumes ownership (the
// autodiff graph constructors and autodiff.Release are the usual sinks).
//
// The analysis is intra-procedural and errs toward silence: any hand-off
// ends tracking, so it reports only buffers that provably cannot be
// released —
//
//  1. a buffer used purely locally (element reads/writes, method calls)
//     with no Put on any path, and
//  2. a return statement lexically between the acquisition and the first
//     release/hand-off — the early-error-return leak class — unless a
//     deferred Put covers the exit.

const (
	tensorPkg   = "amalgam/internal/tensor"
	autodiffPkg = "amalgam/internal/autodiff"
)

var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "pooled tensors from tensor.Get/GetZero must reach tensor.Put or an ownership hand-off on every return path",
	Run:  runPoolCheck,
}

func runPoolCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, body := range funcBodies(f) {
			checkPoolBody(pass, body)
		}
	}
	return nil
}

// acquisition tracks one Get/GetZero result bound to a local variable.
type acquisition struct {
	obj  *types.Var
	pos  token.Pos // the Get call
	name string

	released     bool      // tensor.Put(x) seen (any path)
	deferredPut  bool      // Put runs from a defer: covers every exit
	transferred  bool      // ownership handed off (call arg, return, store, …)
	firstHandoff token.Pos // earliest release/transfer position
}

func (a *acquisition) handoff(pos token.Pos) {
	if a.firstHandoff == token.NoPos || pos < a.firstHandoff {
		a.firstHandoff = pos
	}
}

func checkPoolBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info

	// Pass 1: find acquisitions in THIS body (not nested literals — those
	// are their own scopes and checked separately).
	var acqs []*acquisition
	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			callee := calleeFunc(info, call)
			if !isPkgFunc(callee, tensorPkg, "Get") && !isPkgFunc(callee, tensorPkg, "GetZero") {
				continue
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue // stored straight into a field/element: a hand-off
			}
			var obj *types.Var
			if assign.Tok == token.DEFINE {
				obj, _ = info.Defs[id].(*types.Var)
			} else {
				obj, _ = info.Uses[id].(*types.Var)
			}
			if obj == nil {
				continue // blank identifier: immediately lost, but harmless in practice
			}
			acqs = append(acqs, &acquisition{obj: obj, pos: call.Pos(), name: id.Name})
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}
	// A variable rebound to a second Get shares its object with the first
	// acquisition; classify every use against all of them (trading a
	// little recall for zero false positives from the sharing).
	byObj := make(map[*types.Var][]*acquisition, len(acqs))
	for _, a := range acqs {
		byObj[a.obj] = append(byObj[a.obj], a)
	}

	// Pass 2: classify every use of each tracked variable, including uses
	// inside nested function literals (a deferred closure's Put releases;
	// any other capture is an escape that ends tracking).
	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, _ := info.Uses[id].(*types.Var)
		for _, acq := range byObj[obj] {
			classifyPoolUse(info, acq, id, stack)
		}
		return true
	})

	// Rule 1: never released, never handed off.
	for _, acq := range acqs {
		if !acq.released && !acq.transferred {
			pass.Reportf(acq.pos, "pooled tensor %s is never released: no tensor.Put and no ownership hand-off in this function", acq.name)
		}
	}

	// Rule 2: a return between the acquisition and the first hand-off
	// leaks the buffer on that path, unless a deferred Put covers it.
	for _, acq := range acqs {
		if acq.deferredPut || acq.firstHandoff == token.NoPos {
			continue
		}
		acq := acq
		inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			// A return that itself mentions x (returns it, or passes it to
			// a call in its results) is a hand-off on that very path.
			mentions := false
			ast.Inspect(ret, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == acq.obj {
					mentions = true
				}
				return !mentions
			})
			if !mentions && ret.Pos() > acq.pos && ret.Pos() < acq.firstHandoff {
				pass.Reportf(ret.Pos(), "return leaks pooled tensor %s (acquired at %s, first released at %s): add tensor.Put on this path or defer it",
					acq.name, pass.Fset.Position(acq.pos), pass.Fset.Position(acq.firstHandoff))
			}
			return true
		})
	}
}

// classifyPoolUse decides what one mention of a tracked pooled tensor
// means for its ownership.
func classifyPoolUse(info *types.Info, acq *acquisition, id *ast.Ident, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]

	// Unwrap parens: treat the parenthesized expression's parent instead.
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		parent = stack[i]
		break
	}

	switch p := parent.(type) {
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if ast.Unparen(arg) != id {
				continue
			}
			callee := calleeFunc(info, p)
			if isPkgFunc(callee, tensorPkg, "Put") {
				acq.released = true
				acq.handoff(p.Pos())
				if underDefer(stack) {
					acq.deferredPut = true
				}
				return
			}
			// Any other call taking x may assume ownership
			// (autodiff.NewPooledNode, append into a scratch list, …).
			acq.transferred = true
			acq.handoff(p.Pos())
			return
		}
		// x is the Fun (method value) — a local use.
	case *ast.ReturnStmt:
		acq.transferred = true
		acq.handoff(p.Pos())
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if ast.Unparen(rhs) == id {
				// Aliased into another variable, a field, an element…
				// tracking ends; the alias is the owner now.
				acq.transferred = true
				acq.handoff(p.Pos())
				return
			}
		}
		// x on the LHS: rebinding. The old buffer becomes untracked;
		// stay quiet (flow-insensitive analysis cannot pair it).
		acq.transferred = true
		acq.handoff(p.Pos())
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		acq.transferred = true
		acq.handoff(parent.Pos())
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			acq.transferred = true
			acq.handoff(p.Pos())
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.RangeStmt, *ast.BinaryExpr,
		*ast.IfStmt, *ast.SwitchStmt, *ast.CaseClause, *ast.ForStmt:
		// Local read/compute: x.Data, x.Shape(), comparisons, conditions.
	default:
		// Unknown context: assume a hand-off rather than risk a false
		// positive. The analyzer's contract is "reports are definite".
		acq.transferred = true
		acq.handoff(parent.Pos())
	}

	// A capture inside a non-deferred function literal escapes the
	// intra-procedural model entirely.
	if fl := enclosingFuncLit(stack); fl != nil && !acq.released {
		if !funcLitDeferred(stack, fl) {
			acq.transferred = true
			acq.handoff(fl.Pos())
		}
	}
}

// underDefer reports whether the innermost call context in stack is a
// defer statement — either `defer tensor.Put(x)` directly or a Put inside
// a deferred closure.
func underDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			return funcLitDeferred(stack[:i], stack[i].(*ast.FuncLit))
		}
	}
	return false
}

// funcLitDeferred reports whether fl is the function of a defer statement
// (defer func(){ … }()).
func funcLitDeferred(outer []ast.Node, fl *ast.FuncLit) bool {
	for i := len(outer) - 1; i >= 0; i-- {
		switch s := outer[i].(type) {
		case *ast.DeferStmt:
			return ast.Unparen(s.Call.Fun) == fl
		case *ast.FuncLit:
			return false
		}
	}
	return false
}
