package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// detcheck mechanizes the bit-exact determinism contract: within the
// determinism-contracted packages, training-path code may not read the
// wall clock, draw from the package-global math/rand state, or let map
// iteration order feed computation or wire output. Every result there
// must be a pure function of seeds and inputs — that is what makes
// local/remote bit-identity, worker-count invariance, and resume-equals-
// straight-run provable by test instead of hopeful.
//
// Flagged:
//   - calls to wall-clock time functions (time.Now, time.Since, …);
//   - any use of a package-level math/rand or math/rand/v2 function
//     (rand.IntN, rand.Shuffle, rand.Seed, …) — explicitly-seeded
//     generator construction (rand.New*, rand.NewPCG, …) stays legal;
//   - ranging over a map, whose order differs run to run.
//
// Scope: internal/tensor, internal/autodiff, internal/nn, internal/core,
// internal/serialize (whole packages, subpackages included), and the
// train path of internal/cloudsim (cloudsim.go, which owns TrainLoop).
// Latency metrics are the canonical legitimate exception and carry
// //amalgam:allow detcheck annotations.

var DetCheck = &Analyzer{
	Name: "detcheck",
	Doc:  "determinism-contracted packages must not read wall clocks, global RNG state, or map iteration order",
	Run:  runDetCheck,
}

// detPackages are the determinism-contracted package roots (subpackages
// inherit the contract).
var detPackages = []string{
	"amalgam/internal/tensor",
	"amalgam/internal/autodiff",
	"amalgam/internal/nn",
	"amalgam/internal/core",
	"amalgam/internal/serialize",
	"amalgam/internal/optim",
}

// cloudsimPkg's determinism contract covers only its train path: the
// shared epoch loop in cloudsim.go. The surrounding transport legitimately
// uses deadlines and backoff timing.
const cloudsimPkg = "amalgam/internal/cloudsim"

// servePkg's determinism contract covers the inference path (batch
// execution must be a pure function of the coalesced inputs — that is
// what makes batched and sequential predictions bit-identical), but not
// batcher.go: the latency-budget timer is wall-clock by definition, the
// same carve-out the cloudsim transport gets.
const servePkg = "amalgam/internal/serve"

// wallClockFuncs are the time package functions that leak the wall clock
// into computation.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func detContracted(pkgPath string) bool {
	for _, p := range detPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func runDetCheck(pass *Pass) error {
	path := pass.Pkg.Path()
	trainPathOnly := path == cloudsimPkg || strings.HasPrefix(path, cloudsimPkg+"/")
	servePath := path == servePkg || strings.HasPrefix(path, servePkg+"/")
	if !detContracted(path) && !trainPathOnly && !servePath {
		return nil
	}
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		// Tests verify the determinism contract from outside; their own
		// bookkeeping (ranging over maps of named subtests, timing guards)
		// does not feed shipped computation.
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		if trainPathOnly && base != "cloudsim.go" {
			continue
		}
		if servePath && base == "batcher.go" {
			continue
		}
		checkDetFile(pass, f)
	}
	return nil
}

func checkDetFile(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] &&
				fn.Type().(*types.Signature).Recv() == nil {
				pass.Reportf(n.Pos(), "wall clock leaks into a determinism-contracted package: time.%s", fn.Name())
			}
		case *ast.SelectorExpr:
			reportGlobalRand(pass, n.Sel)
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "map iteration order is nondeterministic; sort the keys (or prove order-independence and annotate)")
				}
			}
		}
		return true
	})
}

// reportGlobalRand flags any reference to a package-level math/rand or
// math/rand/v2 function drawing from the shared global generator.
// Constructors (New, NewPCG, NewChaCha8, NewSource, …) take explicit
// seeds and are the sanctioned way to make randomness reproducible.
func reportGlobalRand(pass *Pass, sel *ast.Ident) {
	fn, ok := pass.Info.Uses[sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return // methods on an explicitly-constructed *rand.Rand are fine
	}
	if strings.HasPrefix(fn.Name(), "New") {
		return
	}
	pass.Reportf(sel.Pos(), "package-global RNG state is unseedable per-job: %s.%s; construct an explicitly seeded generator instead", pkg, fn.Name())
}
