package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// errtaxcheck mechanizes the cloudsim error-taxonomy contract: every
// error that can cross the protocol boundary is either one of the typed
// sentinels or wraps one (directly or transitively via %w), so that
// classification — errCodeOf on the wire, IsTransient in the retry loop —
// never silently defaults for an error someone forgot to file.
//
// Two rules, scoped to amalgam/internal/cloudsim:
//
//  1. Taxonomy completeness: every package-level `ErrX` sentinel must be
//     handled by errCodeOf (wire encoding), sentinelFor (wire decoding),
//     and IsTransient (retry classification). A sentinel missing from any
//     of the three is exactly the "unclassified error silently becomes
//     fatal" bug class.
//
//  2. No unclassified construction: inside function bodies, fmt.Errorf
//     must wrap (%w) — preserving whatever classification the cause
//     carries — and errors.New is reserved for package-level sentinel
//     declarations. A bare message error born mid-protocol has no place
//     in the taxonomy and therefore no defined retry behavior.
var ErrTaxCheck = &Analyzer{
	Name: "errtaxcheck",
	Doc:  "errors crossing the cloudsim protocol boundary must be typed sentinels or wrap one; the sentinel taxonomy must stay in sync with errCodeOf/sentinelFor/IsTransient",
	Run:  runErrTaxCheck,
}

// errTaxClassifiers are the three functions that must each handle every
// sentinel.
var errTaxClassifiers = []string{"errCodeOf", "sentinelFor", "IsTransient"}

func runErrTaxCheck(pass *Pass) error {
	if pass.Pkg.Path() != cloudsimPkg {
		return nil
	}
	checkTaxonomyComplete(pass)
	checkNoUnclassifiedConstruction(pass)
	return nil
}

// checkTaxonomyComplete verifies every exported Err* sentinel is
// referenced by each classifier function.
func checkTaxonomyComplete(pass *Pass) {
	scope := pass.Pkg.Scope()

	// The sentinel set: package-level exported `var ErrX ... error`.
	var sentinels []*types.Var
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || !strings.HasPrefix(name, "Err") {
			continue
		}
		if named, ok := v.Type().(*types.Named); !ok || named.Obj().Name() != "error" {
			continue
		}
		sentinels = append(sentinels, v)
	}
	if len(sentinels) == 0 {
		return
	}

	// Which sentinels does each classifier body mention?
	handled := make(map[string]map[*types.Var]bool)
	found := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil || !isClassifier(fd.Name.Name) {
				continue
			}
			found[fd.Name.Name] = true
			refs := handled[fd.Name.Name]
			if refs == nil {
				refs = make(map[*types.Var]bool)
				handled[fd.Name.Name] = refs
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if v, ok := pass.Info.Uses[id].(*types.Var); ok {
						refs[v] = true
					}
				}
				return true
			})
		}
	}

	for _, name := range errTaxClassifiers {
		if !found[name] {
			pass.Reportf(pass.Files[0].Package, "error-taxonomy classifier %s is missing from the package", name)
		}
	}
	for _, s := range sentinels {
		for _, name := range errTaxClassifiers {
			if found[name] && !handled[name][s] {
				pass.Reportf(s.Pos(), "sentinel %s is not handled by %s: an error wrapping it would be misclassified on the wire or in the retry loop", s.Name(), name)
			}
		}
	}
}

func isClassifier(name string) bool {
	for _, c := range errTaxClassifiers {
		if name == c {
			return true
		}
	}
	return false
}

// checkNoUnclassifiedConstruction flags error constructions inside
// function bodies that cannot carry a classification.
func checkNoUnclassifiedConstruction(pass *Pass) {
	for _, f := range pass.Files {
		// Fault-injection tests construct arbitrary errors on purpose —
		// that is the experiment, not a taxonomy violation.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				switch {
				case isPkgFunc(fn, "errors", "New"):
					pass.Reportf(call.Pos(), "errors.New inside a function creates an unclassified error; declare a package-level sentinel or wrap one with fmt.Errorf(...%%w...)")
				case isPkgFunc(fn, "fmt", "Errorf"):
					checkErrorfWraps(pass, call)
				}
				return true
			})
		}
	}
}

func checkErrorfWraps(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(call.Pos(), "fmt.Errorf with a non-constant format cannot be verified to wrap a classified error")
		return
	}
	// StringVal, not Value.String(): the latter abbreviates long constants
	// and would truncate away a trailing %w.
	format := constant.StringVal(tv.Value)
	if !strings.Contains(format, "%w") {
		pass.Reportf(call.Pos(), "fmt.Errorf without %%w creates an unclassified error on the protocol boundary; wrap a sentinel (or the causal error) so IsTransient and errCodeOf can classify it")
	}
}
