package analysis_test

import (
	"fmt"

	"amalgam/internal/analysis"
)

// ExampleAnalyzers shows how a downstream checker embeds the amalgam-vet
// suite. A custom multichecker loads its packages however it likes — here
// the repo's own source loader — and feeds them to Run alongside any
// additional analyzers of its own:
//
//	l, err := analysis.NewLoader(".", "./...")
//	if err != nil { ... }
//	pkgs, err := l.LoadTargets()
//	if err != nil { ... }
//	diags, err := analysis.Run(pkgs, analysis.Analyzers())
//	for _, d := range diags {
//		fmt.Println(d) // pos: analyzer: message
//	}
//
// Each Analyzer also stands alone: picking a subset out of Analyzers()
// (or appending a project-specific Analyzer to it) composes naturally,
// and //amalgam:allow directives keep working because suppression is
// applied by Run, not by the individual analyzers.
func ExampleAnalyzers() {
	for _, a := range analysis.Analyzers() {
		fmt.Println(a.Name)
	}
	// Output:
	// poolcheck
	// detcheck
	// lockcheck
	// errtaxcheck
}
