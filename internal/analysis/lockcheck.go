package analysis

import (
	"go/ast"
	"go/types"
)

// lockcheck mechanizes the PR 6 deadlock postmortem: while a
// sync.Mutex/RWMutex FIELD of a struct (the scheduler's, the server's,
// a connection's) is held, the critical section must not perform work
// that can block indefinitely or re-enter user code —
//
//   - channel sends, receives, and range-over-channel;
//   - select statements without a default (every arm can block);
//   - net.Conn I/O (Read/Write/Close/Set*Deadline on anything
//     implementing net.Conn);
//   - invoking a function value stored in a struct field or variable
//     (a user callback that may block or re-enter and deadlock) —
//     context.CancelFunc values are exempt, being non-blocking by
//     contract;
//   - time.Sleep and sync.WaitGroup.Wait.
//
// sync.Cond.Wait is exempt: it releases the mutex while parked — that is
// its contract.
//
// The analysis is intra-procedural: a critical section is tracked from a
// `x.mu.Lock()` statement to the matching Unlock in the same function
// (a deferred Unlock extends it to the function's end). Calls into other
// functions of the package are not followed; the repo convention that
// locked helpers say so in their doc comment ("…with mu held") remains a
// reviewer's contract.

var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "no channel operations, net.Conn I/O, callbacks, or other blocking calls while holding a mutex field",
	Run:  runLockCheck,
}

func runLockCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, body := range funcBodies(f) {
			scanLocked(pass, body.List, make(map[*types.Var]bool))
		}
	}
	return nil
}

// mutexField resolves call to a (Lock|RLock|Unlock|RUnlock) method call on
// a sync.Mutex/RWMutex struct field, returning the field and method name.
func mutexField(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	field := fieldVar(info, sel.X)
	if field == nil {
		return nil, ""
	}
	switch namedPath(field.Type()) {
	case "sync.Mutex", "sync.RWMutex":
		return field, sel.Sel.Name
	}
	return nil, ""
}

// scanLocked walks a statement list tracking which mutex fields are held,
// flagging blocking work inside critical sections. Nested blocks get a
// copy of the held set, so a branch-local Unlock (the early-return idiom)
// stays branch-local.
func scanLocked(pass *Pass, stmts []ast.Stmt, held map[*types.Var]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if field, method := mutexField(pass.Info, call); field != nil {
					switch method {
					case "Lock", "RLock":
						held = copyHeld(held)
						held[field] = true
					case "Unlock", "RUnlock":
						held = copyHeld(held)
						delete(held, field)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// `defer x.mu.Unlock()` holds the lock to function exit: the
			// held set simply stays as-is for the rest of this list. The
			// deferred call itself is exempt from checking (it runs after
			// the body, where only the Unlock happens).
			if field, _ := mutexField(pass.Info, s.Call); field != nil {
				continue
			}
		}
		if anyHeld(held) {
			checkCriticalSection(pass, stmt, held)
		}
		// Recurse into compound statements with a branch-local copy.
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			scanLocked(pass, s.List, copyHeld(held))
		case *ast.IfStmt:
			scanLocked(pass, s.Body.List, copyHeld(held))
			if s.Else != nil {
				scanLocked(pass, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			scanLocked(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			scanLocked(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLocked(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLocked(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanLocked(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			scanLocked(pass, []ast.Stmt{s.Stmt}, copyHeld(held))
		}
	}
}

func copyHeld(held map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func anyHeld(held map[*types.Var]bool) bool { return len(held) > 0 }

// checkCriticalSection flags blocking constructs in the top level of one
// statement. Nested blocks are handled by scanLocked's recursion (they
// need their own held-set copies); nested expressions are inspected here.
// Function literals are skipped: a goroutine or deferred closure does not
// run while the lock is held at this point.
func checkCriticalSection(pass *Pass, stmt ast.Stmt, held map[*types.Var]bool) {
	// Only inspect the statement's own expressions, not nested statement
	// blocks (scanLocked recurses into those separately).
	inspectStack(stmt, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			if n != stmt {
				return false
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while holding a mutex can block the critical section indefinitely")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "channel receive while holding a mutex can block the critical section indefinitely")
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.Reportf(n.Pos(), "range over a channel while holding a mutex can block the critical section indefinitely")
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				pass.Reportf(n.Pos(), "select without a default while holding a mutex can block the critical section indefinitely")
			}
		case *ast.CallExpr:
			checkLockedCall(pass, n)
		}
		return true
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// connIOMethods are the net.Conn methods that perform (potentially
// blocking or panicking) I/O.
var connIOMethods = map[string]bool{
	"Read": true, "Write": true, "Close": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

func checkLockedCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)

	// Known-blocking standard library calls.
	if isPkgFunc(fn, "time", "Sleep") {
		pass.Reportf(call.Pos(), "time.Sleep while holding a mutex stalls every contender")
		return
	}
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			switch namedPath(recv.Type()) + "." + fn.Name() {
			case "sync.WaitGroup.Wait":
				pass.Reportf(call.Pos(), "sync.WaitGroup.Wait while holding a mutex can block the critical section indefinitely")
				return
			case "sync.Cond.Wait":
				return // releases the mutex while parked: its contract
			}
		}
	}

	// net.Conn I/O: a method from the I/O set on anything that is (or
	// implements) net.Conn.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && connIOMethods[sel.Sel.Name] {
		if recvT := pass.Info.TypeOf(sel.X); recvT != nil && implementsNetConn(pass, recvT) {
			pass.Reportf(call.Pos(), "net.Conn %s while holding a mutex ties the critical section to peer and network pacing", sel.Sel.Name)
			return
		}
	}

	// Dynamic calls through function-typed variables and fields: user
	// callbacks that may block or re-enter the lock.
	if fn == nil {
		switch target := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if v, ok := pass.Info.Uses[target].(*types.Var); ok && isCallbackType(v.Type()) {
				pass.Reportf(call.Pos(), "calling function value %s while holding a mutex re-enters user code inside the critical section", target.Name)
			}
		case *ast.SelectorExpr:
			if v, ok := pass.Info.Uses[target.Sel].(*types.Var); ok && isCallbackType(v.Type()) {
				pass.Reportf(call.Pos(), "calling callback %s while holding a mutex re-enters user code inside the critical section", target.Sel.Name)
			}
		}
	}
}

// isCallbackType reports whether t is a function type other than the
// non-blocking-by-contract context.CancelFunc.
func isCallbackType(t types.Type) bool {
	if namedPath(t) == "context.CancelFunc" {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// implementsNetConn reports whether t (or *t) satisfies net.Conn, when the
// net package is in this package's dependency closure.
func implementsNetConn(pass *Pass, t types.Type) bool {
	netPkg := pass.Dep("net")
	if netPkg == nil {
		return false
	}
	connObj := netPkg.Scope().Lookup("Conn")
	if connObj == nil {
		return false
	}
	iface, ok := connObj.Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}
