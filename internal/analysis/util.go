package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call's statically-known callee, or nil for
// dynamic calls (function values, method values through interfaces still
// resolve — go/types tracks the interface method object).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// isPkgFunc reports whether f is the package-level function pkgPath.name.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath &&
		f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// inspectStack walks n, calling fn with each node and the stack of its
// ancestors (outermost first, not including n). Returning false prunes
// the subtree.
func inspectStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// funcBodies yields every function body in the file — declarations and
// literals — so each can be analyzed as its own scope.
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// enclosingFuncLit returns the innermost function literal in stack that is
// inside limit (or nil if the node is in limit's own scope).
func enclosingFuncLit(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			return fl
		}
	}
	return nil
}

// fieldVar resolves expr to the struct-field variable it selects, or nil.
func fieldVar(info *types.Info, expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// namedPath reports the full path.Name of t's core named type (pointers
// dereferenced), or "".
func namedPath(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}
