// Package cloudsim (overlay) exercises errtaxcheck: the sentinel taxonomy
// must stay in sync with its three classifiers, and every error built
// inside a function must wrap a classified cause.
package cloudsim

import (
	"errors"
	"fmt"
)

var (
	ErrAlpha = errors.New("cloudsim: alpha")
	ErrBeta  = errors.New("cloudsim: beta") // want "errtaxcheck: sentinel ErrBeta is not handled by sentinelFor"
)

func errCodeOf(err error) byte {
	switch {
	case errors.Is(err, ErrAlpha):
		return 1
	case errors.Is(err, ErrBeta):
		return 2
	}
	return 0
}

// sentinelFor forgot ErrBeta: a wire code 2 would decode to nothing.
func sentinelFor(code byte) error {
	if code == 1 {
		return ErrAlpha
	}
	return nil
}

func IsTransient(err error) bool {
	return errors.Is(err, ErrAlpha) || errors.Is(err, ErrBeta)
}

// Wrapping the causal error preserves its classification; silent.
func wrapped(err error) error {
	return fmt.Errorf("cloudsim: op failed: %w", err)
}

func bare() error {
	return fmt.Errorf("cloudsim: op failed") // want "errtaxcheck: fmt.Errorf without %w"
}

func construct() error {
	return errors.New("cloudsim: fresh") // want "errtaxcheck: errors.New inside a function"
}

func dynamic(format string) error {
	return fmt.Errorf(format) // want "errtaxcheck: fmt.Errorf with a non-constant format"
}

// Regression: a %w at the end of a long constant format must be seen —
// go/constant's abbreviated String() once truncated it away.
func longWrapped(a, b, c int) error {
	return fmt.Errorf("cloudsim: a very long diagnostic message carrying lots of context %d/%d/%d so the verb sits past the abbreviation horizon: %w",
		a, b, c, ErrAlpha)
}

// A reasoned allow for deliberate generic errors (v1 interop).
func allowedBare() error {
	return fmt.Errorf("cloudsim: deliberately generic") //amalgam:allow errtaxcheck v1 peers carry no classification byte to map
}
