// Package poolex exercises poolcheck: pooled tensors must reach
// tensor.Put or an ownership hand-off on every return path.
package poolex

import (
	"errors"

	"amalgam/internal/tensor"
)

// A buffer used purely locally with no Put anywhere is a definite leak.
func leak() float32 {
	x := tensor.Get(4, 4) // want "poolcheck: pooled tensor x is never released"
	x.Fill(1)
	return x.Sum()
}

// GetZero acquisitions are tracked the same way.
func leakZero() float32 {
	z := tensor.GetZero(3) // want "poolcheck: pooled tensor z is never released"
	return z.Data[0]
}

// The canonical balanced pattern is silent.
func balanced() float32 {
	x := tensor.Get(4, 4)
	x.Fill(1)
	s := x.Sum()
	tensor.Put(x)
	return s
}

// An early error return between Get and Put leaks on that path.
func earlyReturn(fail bool) error {
	x := tensor.Get(4, 4)
	if fail {
		return errors.New("boom") // want "poolcheck: return leaks pooled tensor x"
	}
	tensor.Put(x)
	return nil
}

// A deferred Put covers every exit, including the early one and panics.
func deferred(fail bool) error {
	x := tensor.Get(4, 4)
	defer tensor.Put(x)
	if fail {
		return errors.New("boom")
	}
	x.Fill(2)
	return nil
}

// A Put inside a deferred closure also covers every exit.
func deferredClosure(fail bool) error {
	x := tensor.Get(4, 4)
	defer func() {
		tensor.Put(x)
	}()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// Returning the buffer transfers ownership to the caller.
func transfer() *tensor.Tensor {
	x := tensor.GetZero(2, 2)
	return x
}

// Passing the buffer to another function hands ownership off (the callee
// is assumed to release or keep it — autodiff graph sinks, etc.).
func handoff() {
	x := tensor.Get(2)
	sink(x)
}

func sink(*tensor.Tensor) {}

// Storing the buffer into a longer-lived structure also ends tracking.
type holder struct{ t *tensor.Tensor }

func stored(h *holder) {
	x := tensor.Get(8)
	h.t = x
}

// Rebinding the variable to a second acquisition keeps both paired.
func rebind() {
	x := tensor.Get(2)
	tensor.Put(x)
	x = tensor.Get(3)
	tensor.Put(x)
}

// A reasoned allow silences the report at the acquisition site.
func condemned() {
	x := tensor.Get(2) //amalgam:allow poolcheck buffer intentionally abandoned to stress pool refill in benchmarks
	x.Fill(0)
}
