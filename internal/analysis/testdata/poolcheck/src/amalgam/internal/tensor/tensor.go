// Package tensor is a golden-test stub shadowing the real scratch pool:
// just enough surface for poolcheck to resolve tensor.Get/GetZero/Put.
package tensor

type Tensor struct {
	Data []float32
	dims []int
}

func (t *Tensor) Dim(i int) int    { return t.dims[i] }
func (t *Tensor) Fill(v float32)   {}
func (t *Tensor) Sum() (s float32) { return }

func Get(shape ...int) *Tensor     { return &Tensor{} }
func GetZero(shape ...int) *Tensor { return &Tensor{} }
func Put(t *Tensor)                {}
