// Package lockex exercises lockcheck: no potentially-blocking work while
// a sync.Mutex/RWMutex struct field is held.
package lockex

import (
	"context"
	"net"
	"sync"
	"time"
)

type S struct {
	mu     sync.Mutex
	ch     chan int
	cb     func() error
	conn   net.Conn
	cancel context.CancelFunc
}

func (s *S) sendLocked() {
	s.mu.Lock()
	s.ch <- 1 // want "lockcheck: channel send while holding a mutex"
	s.mu.Unlock()
}

func (s *S) recvLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "lockcheck: channel receive while holding a mutex"
}

// Dropping the lock first is the fix; no finding.
func (s *S) sendAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}

func (s *S) rangeLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for v := range s.ch { // want "lockcheck: range over a channel while holding a mutex"
		total += v
	}
	return total
}

func (s *S) selectLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "lockcheck: select without a default while holding a mutex"
	case v := <-s.ch:
		return v
	}
}

// A select with a default never blocks; silent.
func (s *S) trySend() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
		return true
	default:
		return false
	}
}

func (s *S) callbackLocked() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cb() // want "lockcheck: calling callback cb while holding a mutex"
}

// context.CancelFunc is non-blocking by contract; silent.
func (s *S) cancelLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cancel()
}

func (s *S) connLocked() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn.Close() // want "lockcheck: net.Conn Close while holding a mutex"
}

// The deadlineConn idiom: snapshot the conn under the lock, do I/O after
// releasing it. Silent.
func (s *S) writeUnlocked(b []byte) (int, error) {
	s.mu.Lock()
	c := s.conn
	s.mu.Unlock()
	return c.Write(b)
}

func (s *S) sleepLocked() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "lockcheck: time.Sleep while holding a mutex"
	s.mu.Unlock()
}

func (s *S) waitLocked(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want "lockcheck: sync.WaitGroup.Wait while holding a mutex"
}

type R struct {
	rwmu sync.RWMutex
	ch   chan int
}

// RWMutex read locks guard the critical section the same way.
func (r *R) readLocked() int {
	r.rwmu.RLock()
	defer r.rwmu.RUnlock()
	return <-r.ch // want "lockcheck: channel receive while holding a mutex"
}

// A branch-local Unlock ends the critical section only in that branch.
func (s *S) branchLocal(early bool) {
	s.mu.Lock()
	if early {
		s.mu.Unlock()
		s.ch <- 1 // silent: this branch released the lock
		return
	}
	s.ch <- 2 // want "lockcheck: channel send while holding a mutex"
	s.mu.Unlock()
}

// Local mutex variables (not struct fields) are out of scope by design:
// the contract covers shared, long-lived locks. Silent.
func localMutex() {
	var mu sync.Mutex
	ch := make(chan int, 1)
	mu.Lock()
	ch <- 1
	mu.Unlock()
}

// A reasoned allow for deliberate delivery-under-lock designs.
func (s *S) allowedCallback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cb() //amalgam:allow lockcheck exactly-once delivery requires the callback inside the critical section
}
