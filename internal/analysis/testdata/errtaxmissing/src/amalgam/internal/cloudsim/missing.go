package cloudsim // want "errtaxcheck: error-taxonomy classifier sentinelFor is missing" "errtaxcheck: error-taxonomy classifier IsTransient is missing"

import "errors"

var ErrOnly = errors.New("cloudsim: only")

func errCodeOf(err error) byte {
	if errors.Is(err, ErrOnly) {
		return 1
	}
	return 0
}
