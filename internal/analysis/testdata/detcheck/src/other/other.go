// Package other is outside every determinism-contracted path: the same
// constructs that detcheck flags elsewhere are silent here.
package other

import "time"

func clock() time.Time { return time.Now() }

func mapKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
