// Package tensor sits on a determinism-contracted import path: detcheck
// flags wall clocks, global RNG state, and map-order dependence here.
package tensor

import (
	"math/rand/v2"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want "detcheck: wall clock leaks into a determinism-contracted package: time.Now"
	return t.Unix()
}

func elapsed(since time.Time) float64 {
	return time.Since(since).Seconds() // want "detcheck: wall clock leaks into a determinism-contracted package: time.Since"
}

func globalRand() int {
	return rand.IntN(10) // want "detcheck: package-global RNG state is unseedable per-job"
}

// Explicitly seeded generators are the sanctioned source of randomness.
func seeded() int {
	r := rand.New(rand.NewPCG(1, 2))
	return r.IntN(10)
}

func mapOrder(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "detcheck: map iteration order is nondeterministic"
		out = append(out, v)
	}
	return out
}

// Order-independent aggregation, annotated as such.
func mapSum(m map[string]int) int {
	s := 0
	//amalgam:allow detcheck integer sum is independent of iteration order
	for _, v := range m {
		s += v
	}
	return s
}

// Slices range deterministically; no finding.
func sliceOrder(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
