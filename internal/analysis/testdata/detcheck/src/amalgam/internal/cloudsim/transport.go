package cloudsim

import "time"

// Transport code legitimately reads the clock for deadlines and backoff;
// detcheck's cloudsim scope is cloudsim.go only, so this is silent.
func deadline() time.Time {
	return time.Now().Add(time.Second)
}
