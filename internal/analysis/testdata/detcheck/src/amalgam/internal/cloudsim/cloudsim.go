// Package cloudsim's determinism contract covers only its train path:
// this file (cloudsim.go) is checked, transport.go is not.
package cloudsim

import "time"

func trainEpoch() int64 {
	return time.Now().Unix() // want "detcheck: wall clock leaks into a determinism-contracted package: time.Now"
}
