// Package suppressex pins the //amalgam:allow directive contract, driven
// by lockcheck findings: a directive silences exactly the named analyzer
// on exactly the annotated line, the reason is mandatory, and directives
// that suppress nothing are themselves reported.
package suppressex

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

// A trailing directive silences its own line.
func suppressed(s *S) {
	s.mu.Lock()
	s.ch <- 1 //amalgam:allow lockcheck send is into a buffered harness channel that never fills
	s.mu.Unlock()
}

// A standalone directive silences the immediately following line.
func standalone(s *S) {
	s.mu.Lock()
	//amalgam:allow lockcheck send is into a buffered harness channel that never fills
	s.ch <- 1
	s.mu.Unlock()
}

// The directive governs one line only: the next statement still reports.
func lineScoped(s *S) {
	s.mu.Lock()
	s.ch <- 1 //amalgam:allow lockcheck send is into a buffered harness channel that never fills
	s.ch <- 2 // want "lockcheck: channel send while holding a mutex"
	s.mu.Unlock()
}

// A directive naming a different analyzer suppresses nothing here; the
// lockcheck finding survives. (poolcheck is not in this run, so the
// directive is not stale either — its analyzer simply did not run.)
func wrongAnalyzer(s *S) {
	s.mu.Lock()
	s.ch <- 1 /* want "lockcheck: channel send while holding a mutex" */ //amalgam:allow poolcheck wrong analyzer named on purpose
	s.mu.Unlock()
}

// A directive whose analyzer ran but reported nothing on the governed
// line has rotted; it is reported so it gets cleaned up.
func stale(s *S) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1 /* want "allow: stale directive: lockcheck reports nothing" */ //amalgam:allow lockcheck the lock is already dropped here
}

// A directive without a reason is malformed and suppresses nothing.
func malformed(s *S) {
	s.mu.Lock()
	s.ch <- 1 /* want "lockcheck: channel send while holding a mutex" "allow: malformed directive" */ //amalgam:allow lockcheck
	s.mu.Unlock()
}

// A directive naming an analyzer outside the suite is a typo, reported.
func unknown(s *S) {
	s.mu.Lock()
	s.ch <- 1 /* want "lockcheck: channel send while holding a mutex" "allow: directive names unknown analyzer" */ //amalgam:allow lockchk reasons abound
	s.mu.Unlock()
}
