//go:build race

package serve

// raceEnabled lets the pool-stability pin skip under the race detector,
// where sync.Pool deliberately drops puts at random and steady-state
// pool-miss counts become meaningless.
const raceEnabled = true
