package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"amalgam/internal/autodiff"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/tensor"
)

func buildTestModels(t *testing.T) (models.CVModel, *models.TextClassifier, *models.TransformerLM) {
	t.Helper()
	cv, err := models.BuildCV("lenet", tensor.NewRNG(7), models.CVConfig{InC: 1, InH: 28, InW: 28, Classes: 10})
	if err != nil {
		t.Fatalf("BuildCV: %v", err)
	}
	txt := models.NewTextClassifier(tensor.NewRNG(11), 80, 16, 4)
	lm := models.NewTransformerLM(tensor.NewRNG(13), models.TransformerLMConfig{
		Vocab: 60, D: 16, Heads: 2, FF: 32, Layers: 1, MaxT: 12, Dropout: 0.1,
	})
	return cv, txt, lm
}

func imageRow(ds *data.ImageDataset, i int) []float32 {
	per := ds.Images.Dim(1) * ds.Images.Dim(2) * ds.Images.Dim(3)
	return ds.Images.Data[i*per : (i+1)*per]
}

// forwardCVOne is the sequential single-call baseline: one image, one
// forward, straight through the model.
func forwardCVOne(m CVForwarder, img []float32, c, h, w int) CVResult {
	x := tensor.New(1, c, h, w)
	copy(x.Data, img)
	out := m.Forward(autodiff.Constant(x))
	res := CVResult{Class: tensor.ArgmaxRows(out.Val)[0], Logits: copyRow(out.Val.Data, 0, out.Val.Dim(1))}
	autodiff.Release(out)
	return res
}

func forwardTextOne(m IDForwarder, toks []int) TextResult {
	out := m.ForwardIDs([][]int{toks})
	res := TextResult{Class: tensor.ArgmaxRows(out.Val)[0], Logits: copyRow(out.Val.Data, 0, out.Val.Dim(1))}
	autodiff.Release(out)
	return res
}

func forwardLMOne(m IDForwarder, ctx []int, topK int) LMResult {
	out := m.ForwardIDs([][]int{ctx})
	vocab := out.Val.Dim(1)
	rows := out.Val.Dim(0)
	toks, lps := topKLogProbs(out.Val.Data[(rows-1)*vocab:rows*vocab], topK)
	autodiff.Release(out)
	return LMResult{Tokens: toks, LogProbs: lps}
}

func float32sEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchedMatchesSequential hammers one server with mixed modalities
// from many goroutines and requires every coalesced result to be
// bit-identical to a sequential single call straight through the model:
// batching changes throughput, never numerics. Run under -race in CI
// ("race test (inference serving)").
func TestBatchedMatchesSequential(t *testing.T) {
	cv, txt, lm := buildTestModels(t)
	s := New(Config{MaxBatch: 8, MaxDelay: 2 * time.Millisecond, Workers: 4, QueueDepth: 512})
	defer s.Close()
	if err := s.RegisterCV("cv", cv, CVConfig{C: 1, H: 28, W: 28}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterText("txt", txt, TextConfig{Vocab: 80}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterLM("lm", lm, LMConfig{MaxContext: 12, Vocab: 60}); err != nil {
		t.Fatal(err)
	}

	const n = 16
	imgs := data.SyntheticMNIST(n, 3)
	txtDS := data.GenerateClassifiedText(data.ClassTextConfig{Name: "t", N: n, SeqLen: 9, Vocab: 80, Classes: 4, Seed: 5})
	rng := tensor.NewRNG(17)
	ctxs := make([][]int, n)
	for i := range ctxs {
		ctx := make([]int, 4+i%3) // mixed context lengths exercise per-length queues
		for j := range ctx {
			ctx[j] = rng.IntN(60)
		}
		ctxs[i] = ctx
	}

	wantCV := make([]CVResult, n)
	wantTxt := make([]TextResult, n)
	wantLM := make([]LMResult, n)
	for i := 0; i < n; i++ {
		wantCV[i] = forwardCVOne(cv, imageRow(imgs, i), 1, 28, 28)
		wantTxt[i] = forwardTextOne(txt, txtDS.Samples[i])
		wantLM[i] = forwardLMOne(lm, ctxs[i], 3)
	}

	const rounds = 4
	errs := make(chan error, 3*n*rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			wg.Add(3)
			go func(i int) {
				defer wg.Done()
				got, err := s.PredictCV("cv", imageRow(imgs, i))
				if err != nil {
					errs <- fmt.Errorf("PredictCV(%d): %v", i, err)
				} else if got.Class != wantCV[i].Class || !float32sEqual(got.Logits, wantCV[i].Logits) {
					errs <- fmt.Errorf("PredictCV(%d): batched result differs from sequential", i)
				}
			}(i)
			go func(i int) {
				defer wg.Done()
				got, err := s.PredictText("txt", txtDS.Samples[i])
				if err != nil {
					errs <- fmt.Errorf("PredictText(%d): %v", i, err)
				} else if got.Class != wantTxt[i].Class || !float32sEqual(got.Logits, wantTxt[i].Logits) {
					errs <- fmt.Errorf("PredictText(%d): batched result differs from sequential", i)
				}
			}(i)
			go func(i int) {
				defer wg.Done()
				got, err := s.PredictLM("lm", ctxs[i], 3)
				if err != nil {
					errs <- fmt.Errorf("PredictLM(%d): %v", i, err)
				} else if !intsEqual(got.Tokens, wantLM[i].Tokens) || !float32sEqual(got.LogProbs, wantLM[i].LogProbs) {
					errs <- fmt.Errorf("PredictLM(%d): batched result differs from sequential", i)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSplitMatchesFull proves the offloading split: a client that runs
// the embedding half locally and ships only activations gets bit-exactly
// the prediction the full-input path produces.
func TestSplitMatchesFull(t *testing.T) {
	_, txt, lm := buildTestModels(t)
	s := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 2})
	defer s.Close()
	if err := s.RegisterText("txt", txt, TextConfig{Vocab: 80, SplitTail: txt.ForwardPooled, SplitDim: txt.EmbedDim}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterLM("lm", lm, LMConfig{MaxContext: 12, Vocab: 60, SplitTail: lm.ForwardEmbedded, SplitDim: lm.D}); err != nil {
		t.Fatal(err)
	}

	toks := []int{5, 17, 3, 42, 9, 77}
	full, err := s.PredictText("txt", toks)
	if err != nil {
		t.Fatal(err)
	}
	pooledNode := txt.Embed.LookupMean([][]int{toks})
	pooled := copyRow(pooledNode.Val.Data, 0, txt.EmbedDim)
	autodiff.Release(pooledNode)
	split, err := s.PredictTextSplit("txt", pooled)
	if err != nil {
		t.Fatal(err)
	}
	if split.Class != full.Class || !float32sEqual(split.Logits, full.Logits) {
		t.Error("text split result differs from full-input result")
	}

	ctx := []int{1, 8, 30, 55, 2, 2, 47}
	fullLM, err := s.PredictLM("lm", ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	h := lm.EmbedIDs([][]int{ctx})
	acts := make([]float32, len(ctx)*lm.D)
	copy(acts, h.Val.Data)
	autodiff.Release(h)
	splitLM, err := s.PredictLMSplit("lm", acts, len(ctx), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !intsEqual(splitLM.Tokens, fullLM.Tokens) || !float32sEqual(splitLM.LogProbs, fullLM.LogProbs) {
		t.Error("LM split result differs from full-input result")
	}
}

// TestSteadyStatePoolStable pins the release discipline: after warmup,
// serving draws every forward buffer from the tensor pool — zero fresh
// pool allocations per prediction.
func TestSteadyStatePoolStable(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops puts at random; miss counts are meaningless")
	}
	_, txt, _ := buildTestModels(t)
	s := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 1})
	defer s.Close()
	if err := s.RegisterText("txt", txt, TextConfig{Vocab: 80}); err != nil {
		t.Fatal(err)
	}
	toks := []int{3, 14, 15, 9, 26, 5}
	for i := 0; i < 10; i++ {
		if _, err := s.PredictText("txt", toks); err != nil {
			t.Fatal(err)
		}
	}
	_, miss0 := tensor.PoolStats()
	for i := 0; i < 50; i++ {
		if _, err := s.PredictText("txt", toks); err != nil {
			t.Fatal(err)
		}
	}
	_, miss1 := tensor.PoolStats()
	if miss1 != miss0 {
		t.Errorf("steady-state serving allocated %d fresh pool buffers over 50 predictions; want 0", miss1-miss0)
	}
}

// blockingCV parks every forward until released — a stand-in for a slow
// model, used to fill the admission queue deterministically.
type blockingCV struct{ release chan struct{} }

func (b *blockingCV) Forward(x *autodiff.Node) *autodiff.Node {
	<-b.release
	return autodiff.Constant(tensor.New(x.Val.Dim(0), 2))
}
func (b *blockingCV) SetTraining(bool) {}

func TestOverloadAndClose(t *testing.T) {
	s := New(Config{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1, QueueDepth: 2})
	bm := &blockingCV{release: make(chan struct{})}
	if err := s.RegisterCV("b", bm, CVConfig{C: 1, H: 1, W: 1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.PredictCV("b", []float32{0})
			done <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.pending.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("admitted calls never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.PredictCV("b", []float32{0}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-depth request: got %v, want ErrOverloaded", err)
	}
	close(bm.release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("released call failed: %v", err)
		}
	}
	s.Close()
	if _, err := s.PredictCV("b", []float32{0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close request: got %v, want ErrClosed", err)
	}
}

// panickyCV blows up in Forward; the batch must fail typed, not crash the
// worker pool.
type panickyCV struct{}

func (panickyCV) Forward(*autodiff.Node) *autodiff.Node { panic("synthetic model bug") }
func (panickyCV) SetTraining(bool)                      {}

func TestModelPanicFailsBatchTyped(t *testing.T) {
	s := New(Config{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1})
	defer s.Close()
	if err := s.RegisterCV("p", panickyCV{}, CVConfig{C: 1, H: 1, W: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PredictCV("p", []float32{0}); !errors.Is(err, ErrModelPanic) {
		t.Fatalf("got %v, want ErrModelPanic", err)
	}
	// The worker survived; the server still serves.
	if _, err := s.PredictCV("p", []float32{1}); !errors.Is(err, ErrModelPanic) {
		t.Fatalf("second call: got %v, want ErrModelPanic", err)
	}
}

func TestAdmissionValidation(t *testing.T) {
	cv, txt, lm := buildTestModels(t)
	s := New(Config{MaxBatch: 2, MaxDelay: time.Millisecond, Workers: 1})
	defer s.Close()
	if err := s.RegisterCV("cv", cv, CVConfig{C: 1, H: 28, W: 28}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterText("txt", txt, TextConfig{FixedLen: 6, Vocab: 80}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterLM("lm", lm, LMConfig{MaxContext: 12, FixedContext: 8, Vocab: 60}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterCV("cv", cv, CVConfig{C: 1, H: 28, W: 28}); !errors.Is(err, ErrDuplicateModel) {
		t.Errorf("duplicate register: got %v, want ErrDuplicateModel", err)
	}

	cases := []struct {
		name string
		call func() error
		want error
	}{
		{"unknown model", func() error { _, err := s.PredictCV("nope", make([]float32, 784)); return err }, ErrUnknownModel},
		{"wrong modality", func() error { _, err := s.PredictText("cv", []int{1}); return err }, ErrBadInput},
		{"bad image size", func() error { _, err := s.PredictCV("cv", make([]float32, 10)); return err }, ErrBadInput},
		{"empty tokens", func() error { _, err := s.PredictText("txt", nil); return err }, ErrBadInput},
		{"fixed-length violation", func() error { _, err := s.PredictText("txt", []int{1, 2, 3}); return err }, ErrBadInput},
		{"token out of vocab", func() error { _, err := s.PredictText("txt", []int{1, 2, 3, 4, 5, 99}); return err }, ErrBadInput},
		{"context too long", func() error { _, err := s.PredictLM("lm", make([]int, 20), 1); return err }, ErrBadInput},
		{"fixed-context violation", func() error { _, err := s.PredictLM("lm", make([]int, 5), 1); return err }, ErrBadInput},
		{"no split tail", func() error { _, err := s.PredictTextSplit("txt", make([]float32, 16)); return err }, ErrBadInput},
	}
	for _, tc := range cases {
		if err := tc.call(); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}
