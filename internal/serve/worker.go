package serve

// The inference workers: each drains flushed batches, assembles the batch
// input in one pooled tensor, runs a single eval-mode forward pass,
// copies every request's result out, and releases the graph root — so a
// steady-state prediction touches only pooled storage plus the per-result
// copies. Determinism-contracted: batch execution is a pure function of
// the coalesced inputs.

import (
	"fmt"
	"math"

	"amalgam/internal/autodiff"
	"amalgam/internal/tensor"
)

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case b := <-s.work:
			s.runBatch(b)
		case <-s.closed:
			return
		}
	}
}

// runBatch executes one coalesced batch and completes every call in it —
// with results, or with ErrModelPanic if the forward pass blew up (a
// poisoned request fails its whole batch; admission-time validation keeps
// that to genuine model bugs).
func (s *Server) runBatch(b batchJob) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("%w: model %q: %v", ErrModelPanic, b.name, r)
			for _, cl := range b.calls {
				cl.err = err
			}
		}
		for _, cl := range b.calls {
			cl.finish(s)
		}
	}()
	b.run(b.calls)
}

// runCVBatch packs [N, C, H, W] from the coalesced images, forwards once,
// and fans the argmax rows and logit copies back out.
func runCVBatch(r *cvReg, calls []*call) {
	n := len(calls)
	per := r.cfg.C * r.cfg.H * r.cfg.W
	x := tensor.Get(n, r.cfg.C, r.cfg.H, r.cfg.W)
	defer tensor.Put(x)
	for i, cl := range calls {
		copy(x.Data[i*per:(i+1)*per], cl.image)
	}
	out := r.m.Forward(autodiff.Constant(x))
	pred := tensor.ArgmaxRows(out.Val)
	classes := out.Val.Dim(1)
	for i, cl := range calls {
		cl.res = CVResult{Class: pred[i], Logits: copyRow(out.Val.Data, i, classes)}
	}
	autodiff.Release(out)
}

// runTextBatch forwards the coalesced token sequences (ragged batches are
// fine — the pooled embedding averages per row) and fans results out.
func runTextBatch(r *textReg, calls []*call) {
	ids := make([][]int, len(calls))
	for i, cl := range calls {
		ids[i] = cl.ids
	}
	out := r.m.ForwardIDs(ids)
	pred := tensor.ArgmaxRows(out.Val)
	classes := out.Val.Dim(1)
	for i, cl := range calls {
		cl.res = TextResult{Class: pred[i], Logits: copyRow(out.Val.Data, i, classes)}
	}
	autodiff.Release(out)
}

// runTextSplitBatch packs pooled activations [N, SplitDim] and runs only
// the registered tail.
func runTextSplitBatch(r *textReg, calls []*call) {
	n := len(calls)
	d := r.cfg.SplitDim
	pooled := tensor.Get(n, d)
	defer tensor.Put(pooled)
	for i, cl := range calls {
		copy(pooled.Data[i*d:(i+1)*d], cl.acts)
	}
	out := r.cfg.SplitTail(autodiff.Constant(pooled))
	pred := tensor.ArgmaxRows(out.Val)
	classes := out.Val.Dim(1)
	for i, cl := range calls {
		cl.res = TextResult{Class: pred[i], Logits: copyRow(out.Val.Data, i, classes)}
	}
	autodiff.Release(out)
}

// runLMBatch forwards the coalesced contexts (uniform length — the queue
// key guarantees it) and scores each call's final position. The rows per
// sample come from the logits themselves, so augmented models — whose
// secret gather shrinks the visible window — need no extra geometry.
func runLMBatch(r *lmReg, calls []*call) {
	ids := make([][]int, len(calls))
	for i, cl := range calls {
		ids[i] = cl.ids
	}
	out := r.m.ForwardIDs(ids)
	fanOutNextToken(out, calls)
	autodiff.Release(out)
}

// runLMSplitBatch packs embedded activations [N, T, SplitDim] and runs
// only the registered tail.
func runLMSplitBatch(r *lmReg, calls []*call) {
	n := len(calls)
	t := calls[0].seqLen
	d := r.cfg.SplitDim
	h := tensor.Get(n, t, d)
	defer tensor.Put(h)
	for i, cl := range calls {
		copy(h.Data[i*t*d:(i+1)*t*d], cl.acts)
	}
	out := r.cfg.SplitTail(autodiff.Constant(h))
	fanOutNextToken(out, calls)
	autodiff.Release(out)
}

// fanOutNextToken reads [N*rows, vocab] logits and writes each call's
// top-K next-token result from its final row.
func fanOutNextToken(out *autodiff.Node, calls []*call) {
	vocab := out.Val.Dim(1)
	rows := out.Val.Dim(0) / len(calls)
	for i, cl := range calls {
		last := out.Val.Data[((i+1)*rows-1)*vocab : (i+1)*rows*vocab]
		toks, lps := topKLogProbs(last, cl.topK)
		cl.res = LMResult{Tokens: toks, LogProbs: lps}
	}
}

// topKLogProbs returns the k most probable token ids (ties toward the
// lower id) with their log-softmax values, accumulated in float64 for a
// stable log-sum-exp.
func topKLogProbs(logits []float32, k int) ([]int, []float32) {
	if k <= 0 {
		k = 1
	}
	if k > len(logits) {
		k = len(logits)
	}
	maxv := logits[0]
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(float64(v - maxv))
	}
	lse := float64(maxv) + math.Log(sum)
	toks := make([]int, 0, k)
	lps := make([]float32, 0, k)
	taken := make([]bool, len(logits))
	for len(toks) < k {
		best := -1
		for i, v := range logits {
			if !taken[i] && (best < 0 || v > logits[best]) {
				best = i
			}
		}
		taken[best] = true
		toks = append(toks, best)
		lps = append(lps, float32(float64(logits[best])-lse))
	}
	return toks, lps
}

// copyRow copies row i of a [*, width] data slab into a fresh slice, so
// results survive the graph release.
func copyRow(data []float32, i, width int) []float32 {
	out := make([]float32, width)
	copy(out, data[i*width:(i+1)*width])
	return out
}
