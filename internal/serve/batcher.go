package serve

// The dynamic batcher: per-(model, shape) queues that flush on size or on
// the MaxDelay latency budget, whichever comes first. This file is the
// serve package's only legitimate timer user (the budget IS wall-clock
// latency) and is file-scoped out of the determinism contract the same
// way cloudsim's transport is — the worker path next door stays
// contracted.

import (
	"sync"
	"time"
)

// queue coalesces calls that can share one forward pass.
type queue struct {
	srv  *Server
	name string
	run  func(calls []*call)

	mu      sync.Mutex
	waiting []*call
	timer   *time.Timer
}

// getQueue returns reg's queue for key, creating it on first use.
func (s *Server) getQueue(reg *registration, key string, run func([]*call)) *queue {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	q := reg.queues[key]
	if q == nil {
		q = &queue{srv: s, name: reg.name, run: run}
		reg.queues[key] = q
	}
	return q
}

// enqueue adds an admitted call to its queue, flushing immediately at
// MaxBatch or arming the latency-budget timer on a batch's first call.
// The channel send happens outside the queue lock (lock discipline: no
// blocking operations while a mutex field is held).
func (s *Server) enqueue(reg *registration, key string, run func([]*call), cl *call) {
	q := s.getQueue(reg, key, run)
	var flush []*call
	q.mu.Lock()
	q.waiting = append(q.waiting, cl)
	if len(q.waiting) >= s.cfg.MaxBatch {
		flush = q.waiting
		q.waiting = nil
		if q.timer != nil {
			q.timer.Stop()
			q.timer = nil
		}
	} else if len(q.waiting) == 1 {
		q.timer = time.AfterFunc(s.cfg.MaxDelay, q.budgetExpired)
	}
	q.mu.Unlock()
	if flush != nil {
		s.submit(reg.name, run, flush)
	}
}

// budgetExpired flushes whatever the latency budget caught. A size flush
// may have raced the timer; the detach under lock makes that benign —
// whoever detaches first owns the batch.
func (q *queue) budgetExpired() {
	q.mu.Lock()
	flush := q.waiting
	q.waiting = nil
	q.timer = nil
	q.mu.Unlock()
	if len(flush) > 0 {
		q.srv.submit(q.name, q.run, flush)
	}
}

// submit hands a detached batch to the worker pool, failing it fast if
// the server is closing instead.
func (s *Server) submit(name string, run func([]*call), calls []*call) {
	select {
	case s.work <- batchJob{name: name, run: run, calls: calls}:
	case <-s.closed:
		for _, cl := range calls {
			cl.err = ErrClosed
			cl.finish(s)
		}
	}
}
