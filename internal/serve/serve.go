// Package serve is the inference half of the obfuscation story: a
// high-throughput prediction server over extracted (or still-augmented)
// models. Single predictions are coalesced by a dynamic batcher — flush
// on size or on a configurable latency budget, whichever comes first —
// and executed by a pool of inference workers whose forward passes reuse
// the tensor scratch pool and release every graph root, so steady-state
// serving allocates nothing per request beyond the result copies.
//
// Because every forward kernel is row-independent (matmul rows, eval-mode
// batch norm, per-image convolution, per-row embedding pooling), batching
// N single requests is bit-identical to N sequential calls: the batcher
// changes throughput, never numerics. That invariant is test-pinned under
// the race detector.
//
// Split inference (Leroux et al.'s privacy-aware offloading) is served
// through the same batcher: the client runs the gather/embedding layers
// locally and ships only dense activations, so raw pixels and token ids
// never reach the server. Registrations expose it by attaching a tail —
// the server half of the model — alongside the full-input path.
package serve

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"amalgam/internal/autodiff"
)

// Typed serving errors. ErrOverloaded and ErrClosed are the transient
// ones: the caller can retry against the same (or another) server.
var (
	// ErrUnknownModel rejects a prediction for a name never registered.
	ErrUnknownModel = errors.New("serve: unknown model")
	// ErrBadInput rejects a request whose payload does not fit the
	// registered model (wrong image size, empty token list, out-of-range
	// ids, wrong activation shape, no split tail registered, …).
	ErrBadInput = errors.New("serve: invalid request")
	// ErrOverloaded rejects a request when QueueDepth requests are already
	// pending — admission control instead of unbounded queueing.
	ErrOverloaded = errors.New("serve: server overloaded")
	// ErrClosed rejects requests on (or interrupted by) Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrModelPanic reports a forward pass that panicked; every request in
	// the affected batch fails with it.
	ErrModelPanic = errors.New("serve: model panicked")
	// ErrDuplicateModel rejects registering a name twice.
	ErrDuplicateModel = errors.New("serve: model already registered")
)

// Config tunes the batcher and the worker pool. The zero value of any
// field falls back to its default.
type Config struct {
	// MaxBatch flushes a queue as soon as this many requests are waiting
	// (default 32). 1 disables coalescing — every request runs alone.
	MaxBatch int
	// MaxDelay is the latency budget: the longest a request waits for
	// co-batchable traffic before its queue is flushed anyway (default
	// 2ms). The budget starts at the first request of a batch.
	MaxDelay time.Duration
	// Workers is the number of inference workers draining flushed batches
	// (default 2).
	Workers int
	// QueueDepth bounds the number of admitted-but-unfinished requests
	// (default 1024); beyond it, requests fail fast with ErrOverloaded.
	QueueDepth int
}

// CVForwarder is the forward surface of an image model — zoo models and
// augmented models alike.
type CVForwarder interface {
	Forward(x *autodiff.Node) *autodiff.Node
	SetTraining(training bool)
}

// IDForwarder is the forward surface of a token model (text classifiers
// and LMs, plain or augmented).
type IDForwarder interface {
	ForwardIDs(ids [][]int) *autodiff.Node
	SetTraining(training bool)
}

// CVConfig describes a registered image model's fixed input geometry.
type CVConfig struct {
	C, H, W int
}

// TextConfig describes a registered text classifier.
type TextConfig struct {
	// FixedLen > 0 requires every request to carry exactly that many
	// tokens — augmented classifiers gather fixed positions out of
	// AugLen-token sequences. 0 accepts any non-empty length (the
	// mean-pooled embedding handles ragged batches).
	FixedLen int
	// Vocab > 0 validates token ids at admission, so one bad request
	// cannot poison the batch it would have been coalesced into.
	Vocab int
	// SplitTail, when non-nil, additionally serves split inference: it
	// receives pooled activations [N, SplitDim] and returns class logits.
	SplitTail func(pooled *autodiff.Node) *autodiff.Node
	// SplitDim is the per-request activation width (required with
	// SplitTail).
	SplitDim int
}

// LMConfig describes a registered language model.
type LMConfig struct {
	// MaxContext bounds the request context length (required; plain
	// models are bounded by their positional table).
	MaxContext int
	// FixedContext > 0 requires exactly that many context tokens —
	// augmented LMs gather fixed positions out of AugLen-token windows.
	FixedContext int
	// Vocab > 0 validates token ids at admission.
	Vocab int
	// SplitTail, when non-nil, additionally serves split inference: it
	// receives embedded activations [N, T, SplitDim] and returns
	// next-token logits [N*rows, vocab].
	SplitTail func(h *autodiff.Node) *autodiff.Node
	// SplitDim is the activation width per position (required with
	// SplitTail).
	SplitDim int
}

// CVResult is one image prediction.
type CVResult struct {
	// Class is the argmax class.
	Class int
	// Logits are the raw class logits, copied out of the pooled graph.
	Logits []float32
}

// TextResult is one text-classification prediction.
type TextResult struct {
	Class  int
	Logits []float32
}

// LMResult is one next-token prediction.
type LMResult struct {
	// Tokens are the top-K next-token ids, most probable first (ties
	// break toward the lower id, deterministically).
	Tokens []int
	// LogProbs are the matching natural-log probabilities under a
	// log-softmax of the final position's logits.
	LogProbs []float32
}

// Server batches and executes predictions. Construct with New, register
// models, predict from any number of goroutines, Close when done.
type Server struct {
	cfg     Config
	mu      sync.Mutex
	regs    map[string]*registration
	work    chan batchJob
	closed  chan struct{}
	closing sync.Once
	wg      sync.WaitGroup
	pending atomic.Int64
}

// registration is one served model: at most one modality, with per-shape
// batch queues created on demand.
type registration struct {
	name string
	cv   *cvReg
	text *textReg
	lm   *lmReg

	mu     sync.Mutex
	queues map[string]*queue
}

type cvReg struct {
	m   CVForwarder
	cfg CVConfig
}

type textReg struct {
	m   IDForwarder
	cfg TextConfig
}

type lmReg struct {
	m   IDForwarder
	cfg LMConfig
}

// call is one in-flight prediction. Exactly one of image/ids/acts is the
// payload; res/err are written by the worker before done is closed.
type call struct {
	image  []float32
	ids    []int
	acts   []float32
	seqLen int
	topK   int

	res  any
	err  error
	done chan struct{}
}

type batchJob struct {
	name  string
	run   func(calls []*call)
	calls []*call
}

// New starts a server with Config defaults applied.
func New(cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	s := &Server{
		cfg:    cfg,
		regs:   make(map[string]*registration),
		work:   make(chan batchJob, cfg.Workers),
		closed: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the workers and fails every waiting request with ErrClosed.
// It is idempotent.
func (s *Server) Close() {
	s.closing.Do(func() { close(s.closed) })
	s.wg.Wait()
}

// register adds a named model, switching it to eval mode permanently:
// workers may run batches of the same model concurrently, which is safe
// only while forward passes are read-only (eval-mode batch norm reads
// running statistics, eval-mode dropout is the identity).
func (s *Server) register(name string, reg *registration, m interface{ SetTraining(bool) }) error {
	m.SetTraining(false)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.regs[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateModel, name)
	}
	s.regs[name] = reg
	return nil
}

func (s *Server) lookup(name string) (*registration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, ok := s.regs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return reg, nil
}

// RegisterCV serves an image model with the given input geometry. The
// model is switched to eval mode and must not be trained while serving.
func (s *Server) RegisterCV(name string, m CVForwarder, cfg CVConfig) error {
	if cfg.C <= 0 || cfg.H <= 0 || cfg.W <= 0 {
		return fmt.Errorf("%w: CV geometry %dx%dx%d", ErrBadInput, cfg.C, cfg.H, cfg.W)
	}
	reg := &registration{name: name, cv: &cvReg{m: m, cfg: cfg}, queues: make(map[string]*queue)}
	return s.register(name, reg, m)
}

// RegisterText serves a text classifier. The model is switched to eval
// mode and must not be trained while serving.
func (s *Server) RegisterText(name string, m IDForwarder, cfg TextConfig) error {
	if cfg.SplitTail != nil && cfg.SplitDim <= 0 {
		return fmt.Errorf("%w: text split tail needs SplitDim", ErrBadInput)
	}
	reg := &registration{name: name, text: &textReg{m: m, cfg: cfg}, queues: make(map[string]*queue)}
	return s.register(name, reg, m)
}

// RegisterLM serves a language model for next-token scoring. The model is
// switched to eval mode and must not be trained while serving.
func (s *Server) RegisterLM(name string, m IDForwarder, cfg LMConfig) error {
	if cfg.MaxContext <= 0 {
		return fmt.Errorf("%w: LM registration needs MaxContext", ErrBadInput)
	}
	if cfg.SplitTail != nil && cfg.SplitDim <= 0 {
		return fmt.Errorf("%w: LM split tail needs SplitDim", ErrBadInput)
	}
	reg := &registration{name: name, lm: &lmReg{m: m, cfg: cfg}, queues: make(map[string]*queue)}
	return s.register(name, reg, m)
}

// PredictCV classifies one image (flat [C*H*W] row-major pixels). The
// slice must stay untouched until the call returns.
func (s *Server) PredictCV(model string, image []float32) (CVResult, error) {
	reg, err := s.lookup(model)
	if err != nil {
		return CVResult{}, err
	}
	if reg.cv == nil {
		return CVResult{}, fmt.Errorf("%w: %q is not a CV model", ErrBadInput, model)
	}
	r := reg.cv
	if want := r.cfg.C * r.cfg.H * r.cfg.W; len(image) != want {
		return CVResult{}, fmt.Errorf("%w: image has %d values, model %q wants %d", ErrBadInput, len(image), model, want)
	}
	cl := &call{image: image, done: make(chan struct{})}
	res, err := s.dispatch(reg, "cv", func(calls []*call) { runCVBatch(r, calls) }, cl)
	if err != nil {
		return CVResult{}, err
	}
	return res.(CVResult), nil
}

// PredictText classifies one token sequence. The slice must stay
// untouched until the call returns.
func (s *Server) PredictText(model string, tokens []int) (TextResult, error) {
	reg, err := s.lookup(model)
	if err != nil {
		return TextResult{}, err
	}
	if reg.text == nil {
		return TextResult{}, fmt.Errorf("%w: %q is not a text model", ErrBadInput, model)
	}
	r := reg.text
	if len(tokens) == 0 {
		return TextResult{}, fmt.Errorf("%w: empty token sequence", ErrBadInput)
	}
	if r.cfg.FixedLen > 0 && len(tokens) != r.cfg.FixedLen {
		return TextResult{}, fmt.Errorf("%w: model %q wants exactly %d tokens, got %d", ErrBadInput, model, r.cfg.FixedLen, len(tokens))
	}
	if err := checkTokens(tokens, r.cfg.Vocab); err != nil {
		return TextResult{}, err
	}
	cl := &call{ids: tokens, done: make(chan struct{})}
	res, err := s.dispatch(reg, "text", func(calls []*call) { runTextBatch(r, calls) }, cl)
	if err != nil {
		return TextResult{}, err
	}
	return res.(TextResult), nil
}

// PredictTextSplit classifies from client-side pooled activations
// [SplitDim] — split inference: the token ids never reached this server.
func (s *Server) PredictTextSplit(model string, pooled []float32) (TextResult, error) {
	reg, err := s.lookup(model)
	if err != nil {
		return TextResult{}, err
	}
	if reg.text == nil || reg.text.cfg.SplitTail == nil {
		return TextResult{}, fmt.Errorf("%w: %q serves no text split tail", ErrBadInput, model)
	}
	r := reg.text
	if len(pooled) != r.cfg.SplitDim {
		return TextResult{}, fmt.Errorf("%w: pooled activations have %d values, model %q wants %d", ErrBadInput, len(pooled), model, r.cfg.SplitDim)
	}
	cl := &call{acts: pooled, done: make(chan struct{})}
	res, err := s.dispatch(reg, "text/split", func(calls []*call) { runTextSplitBatch(r, calls) }, cl)
	if err != nil {
		return TextResult{}, err
	}
	return res.(TextResult), nil
}

// PredictLM scores the next token after context, returning the top-K
// candidates (topK <= 0 means 1). Context length keys the batch queue:
// the transformer requires a uniform sequence length per batch.
func (s *Server) PredictLM(model string, context []int, topK int) (LMResult, error) {
	reg, err := s.lookup(model)
	if err != nil {
		return LMResult{}, err
	}
	if reg.lm == nil {
		return LMResult{}, fmt.Errorf("%w: %q is not an LM", ErrBadInput, model)
	}
	r := reg.lm
	if len(context) == 0 {
		return LMResult{}, fmt.Errorf("%w: empty context", ErrBadInput)
	}
	if len(context) > r.cfg.MaxContext {
		return LMResult{}, fmt.Errorf("%w: context of %d tokens exceeds model %q's max %d", ErrBadInput, len(context), model, r.cfg.MaxContext)
	}
	if r.cfg.FixedContext > 0 && len(context) != r.cfg.FixedContext {
		return LMResult{}, fmt.Errorf("%w: model %q wants exactly %d context tokens, got %d", ErrBadInput, model, r.cfg.FixedContext, len(context))
	}
	if err := checkTokens(context, r.cfg.Vocab); err != nil {
		return LMResult{}, err
	}
	cl := &call{ids: context, topK: topK, done: make(chan struct{})}
	key := "lm/" + strconv.Itoa(len(context))
	res, err := s.dispatch(reg, key, func(calls []*call) { runLMBatch(r, calls) }, cl)
	if err != nil {
		return LMResult{}, err
	}
	return res.(LMResult), nil
}

// PredictLMSplit scores the next token from client-side embedded
// activations (flat [seqLen*SplitDim]) — split inference for LMs.
func (s *Server) PredictLMSplit(model string, acts []float32, seqLen, topK int) (LMResult, error) {
	reg, err := s.lookup(model)
	if err != nil {
		return LMResult{}, err
	}
	if reg.lm == nil || reg.lm.cfg.SplitTail == nil {
		return LMResult{}, fmt.Errorf("%w: %q serves no LM split tail", ErrBadInput, model)
	}
	r := reg.lm
	if seqLen <= 0 || seqLen > r.cfg.MaxContext {
		return LMResult{}, fmt.Errorf("%w: sequence length %d out of (0,%d]", ErrBadInput, seqLen, r.cfg.MaxContext)
	}
	if len(acts) != seqLen*r.cfg.SplitDim {
		return LMResult{}, fmt.Errorf("%w: activations have %d values, want %d×%d", ErrBadInput, len(acts), seqLen, r.cfg.SplitDim)
	}
	cl := &call{acts: acts, seqLen: seqLen, topK: topK, done: make(chan struct{})}
	key := "lm/split/" + strconv.Itoa(seqLen)
	res, err := s.dispatch(reg, key, func(calls []*call) { runLMSplitBatch(r, calls) }, cl)
	if err != nil {
		return LMResult{}, err
	}
	return res.(LMResult), nil
}

// checkTokens validates ids against a vocabulary size (0 skips), so one
// out-of-range id fails its own request instead of panicking the batch
// it would have been coalesced into.
func checkTokens(ids []int, vocab int) error {
	if vocab <= 0 {
		return nil
	}
	for _, id := range ids {
		if id < 0 || id >= vocab {
			return fmt.Errorf("%w: token id %d out of vocabulary [0,%d)", ErrBadInput, id, vocab)
		}
	}
	return nil
}

// dispatch admits, enqueues, and waits out one call.
func (s *Server) dispatch(reg *registration, key string, run func([]*call), cl *call) (any, error) {
	if err := s.admit(); err != nil {
		return nil, err
	}
	s.enqueue(reg, key, run, cl)
	select {
	case <-cl.done:
		return cl.res, cl.err
	case <-s.closed:
		// The result may have been racing the shutdown; prefer it.
		select {
		case <-cl.done:
			return cl.res, cl.err
		default:
			return nil, ErrClosed
		}
	}
}

// admit enforces QueueDepth; every admitted call is released by finish.
func (s *Server) admit() error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	if s.pending.Add(1) > int64(s.cfg.QueueDepth) {
		s.pending.Add(-1)
		return ErrOverloaded
	}
	return nil
}

func (cl *call) finish(s *Server) {
	s.pending.Add(-1)
	close(cl.done)
}
