package mpc

import (
	"math"

	"amalgam/internal/tensor"
)

// SecureMLP is a secret-shared two-layer perceptron trained entirely under
// MPC — weights, activations, and gradients all remain additively shared;
// only the loss value is opened per step for monitoring. It is the
// measured workload behind the CrypTen bar of Fig. 14 (per-layer cost is
// then composed into LeNet's op schedule; see ExtrapolateLeNet).
type SecureMLP struct {
	In, Hidden, Out int
	W1, B1, W2, B2  *Secret
	e               *Engine
}

// NewSecureMLP shares freshly initialised weights.
func NewSecureMLP(e *Engine, rng *tensor.RNG, in, hidden, out int) *SecureMLP {
	initVec := func(n, fan int) []float64 {
		bound := 1 / math.Sqrt(float64(fan))
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(rng.Uniform(-float32(bound), float32(bound)))
		}
		return v
	}
	return &SecureMLP{
		In: in, Hidden: hidden, Out: out,
		W1: e.Share(initVec(in*hidden, in)),
		B1: e.Share(initVec(hidden, in)),
		W2: e.Share(initVec(hidden*out, hidden)),
		B2: e.Share(initVec(out, hidden)),
		e:  e,
	}
}

// addRowBias adds a shared bias [d] to every row of a shared [n,d] matrix.
func addRowBias(x *Secret, n, d int, b *Secret) *Secret {
	out := clone(x)
	for p := 0; p < Parties; p++ {
		for r := 0; r < n; r++ {
			for j := 0; j < d; j++ {
				out.shares[p][r*d+j] += b.shares[p][j]
			}
		}
	}
	return out
}

// Step performs one secure forward+backward+SGD update on a batch
// (x: [n, In] plaintext at the data owners, shared on entry; labels are
// public to the loss functionality, as in CrypTen's training benchmark).
// It returns the opened batch loss.
func (m *SecureMLP) Step(x []float32, n int, labels []int, lr float64) float64 {
	e := m.e
	xs := e.ShareFloat32(x)

	// Forward: h = ReLU(x·W1 + b1); logits = h·W2 + b2.
	z1 := addRowBias(e.MatMul(xs, n, m.In, m.W1, m.Hidden), n, m.Hidden, m.B1)
	h, mask := e.ReLU(z1)
	logits := addRowBias(e.MatMul(h, n, m.Hidden, m.W2, m.Out), n, m.Out, m.B2)

	// Softmax cross-entropy gradient. CrypTen approximates exp/reciprocal
	// under MPC; we open the logits to the loss functionality and re-share
	// the gradient, charging the communication its polynomial-approximation
	// pipeline would spend (8 squarings + 3 Newton iterations per element).
	lg := e.Open(logits)
	e.charge(8*n*m.Out*(8+3), 11)
	probs := make([]float64, n*m.Out)
	loss := 0.0
	for r := 0; r < n; r++ {
		row := lg[r*m.Out : (r+1)*m.Out]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			ev := math.Exp(v - maxv)
			probs[r*m.Out+j] = ev
			sum += ev
		}
		for j := range row {
			probs[r*m.Out+j] /= sum
		}
		loss -= math.Log(math.Max(probs[r*m.Out+labels[r]], 1e-12))
	}
	loss /= float64(n)

	dlogits := make([]float64, n*m.Out)
	for r := 0; r < n; r++ {
		for j := 0; j < m.Out; j++ {
			d := probs[r*m.Out+j]
			if j == labels[r] {
				d -= 1
			}
			dlogits[r*m.Out+j] = d / float64(n)
		}
	}
	dl := e.Share(dlogits)

	// Backward under sharing.
	hT := Transpose(h, n, m.Hidden)
	dW2 := e.MatMul(hT, m.Hidden, n, dl, m.Out)
	dB2 := colSum(dl, n, m.Out)
	w2T := Transpose(m.W2, m.Hidden, m.Out)
	dh := e.MatMul(dl, n, m.Out, w2T, m.Hidden)
	dz1 := SelectByMask(dh, mask)
	xT := Transpose(xs, n, m.In)
	dW1 := e.MatMul(xT, m.In, n, dz1, m.Hidden)
	dB1 := colSum(dz1, n, m.Hidden)

	// SGD update (local).
	m.W1 = Sub(m.W1, e.Scale(dW1, lr))
	m.B1 = Sub(m.B1, e.Scale(dB1, lr))
	m.W2 = Sub(m.W2, e.Scale(dW2, lr))
	m.B2 = Sub(m.B2, e.Scale(dB2, lr))
	return loss
}

// Predict opens argmax predictions for evaluation.
func (m *SecureMLP) Predict(x []float32, n int) []int {
	e := m.e
	xs := e.ShareFloat32(x)
	z1 := addRowBias(e.MatMul(xs, n, m.In, m.W1, m.Hidden), n, m.Hidden, m.B1)
	h, _ := e.ReLU(z1)
	logits := e.Open(addRowBias(e.MatMul(h, n, m.Hidden, m.W2, m.Out), n, m.Out, m.B2))
	out := make([]int, n)
	for r := 0; r < n; r++ {
		best := 0
		for j := 1; j < m.Out; j++ {
			if logits[r*m.Out+j] > logits[r*m.Out+best] {
				best = j
			}
		}
		out[r] = best
	}
	return out
}

// colSum sums a shared [n,d] matrix over rows; local.
func colSum(a *Secret, n, d int) *Secret {
	out := newSecret(d)
	for p := 0; p < Parties; p++ {
		for r := 0; r < n; r++ {
			for j := 0; j < d; j++ {
				out.shares[p][j] += a.shares[p][r*d+j]
			}
		}
	}
	return out
}

// LeNetOpSchedule lists the matrix shapes of one LeNet forward+backward on
// a batch (im2col-lowered convolutions plus fully connected layers), used
// to extrapolate the secure per-epoch time from measured secure-matmul
// throughput when running the full secure LeNet is too slow for a bench.
type matShape struct{ M, K, N int }

func lenetOpSchedule(batch, inH, inW, classes int) []matShape {
	h2, w2 := inH/2, inW/2
	h4, w4 := h2/2, w2/2
	flat := 16 * h4 * w4
	fwd := []matShape{
		{6, 25, inH * inW * batch / 1}, // conv1 as W[6,25]·cols
		{16, 6 * 25, h2 * w2 * batch},  // conv2
		{batch, flat, 120},
		{batch, 120, 84},
		{batch, 84, classes},
	}
	// Backward roughly doubles each (dW and dX per layer).
	out := append([]matShape(nil), fwd...)
	for _, s := range fwd {
		out = append(out, s, s)
	}
	return out
}

// ExtrapolateLeNet estimates the secure per-epoch seconds for LeNet on a
// dataset of nSamples from a measured secure-matmul throughput
// (flops/sec), mirroring how PyCrCNN-style costs are reported.
func ExtrapolateLeNet(securedFlopsPerSec float64, nSamples, batch, inH, inW, classes int) float64 {
	if securedFlopsPerSec <= 0 {
		return math.Inf(1)
	}
	var flops float64
	for _, s := range lenetOpSchedule(batch, inH, inW, classes) {
		flops += 2 * float64(s.M) * float64(s.K) * float64(s.N)
	}
	steps := float64(nSamples) / float64(batch)
	return flops * steps / securedFlopsPerSec
}
