// Package mpc implements the secure multi-party-computation baseline used
// in the paper's framework comparison (Fig. 14, CrypTen): 3-party additive
// secret sharing over the 2⁶⁴ ring with fixed-point encoding, a trusted
// dealer for Beaver triples and truncation pairs, and secure linear
// algebra with communication accounting.
//
// Fidelity notes (DESIGN.md §4): sharing, reconstruction, Beaver
// multiplication, dealer-pair truncation, and matrix triples follow the
// standard semi-honest construction faithfully. Comparisons (ReLU) use a
// dealer comparison oracle instead of a binary-conversion protocol; the
// oracle is charged the per-comparison communication CrypTen would spend,
// preserving the measured cost structure.
package mpc

import (
	"fmt"

	"amalgam/internal/tensor"
)

// Parties is the party count (CrypTen's benchmark configuration uses 3).
const Parties = 3

// FracBits is the fixed-point fractional precision.
const FracBits = 16

const scale = 1 << FracBits

// Encode converts a float to the fixed-point ring element.
func Encode(v float64) int64 { return int64(v * scale) }

// Decode converts a ring element back to a float.
func Decode(r int64) float64 { return float64(r) / scale }

// Engine simulates the three parties plus the dealer in-process,
// accounting every byte that would cross the network.
type Engine struct {
	rng *tensor.RNG

	// BytesSent counts simulated network traffic (all parties, all rounds).
	BytesSent int64
	// Rounds counts communication rounds.
	Rounds int64
	// Comparisons counts oracle comparisons (ReLU elements).
	Comparisons int64
}

// NewEngine builds an engine with a deterministic share-randomness stream.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: tensor.NewRNG(seed)}
}

// Secret is an additively shared vector: value = Σ_p shares[p] (ring 2⁶⁴),
// fixed-point encoded at scale 2^FracBits.
type Secret struct {
	shares [Parties][]int64
	n      int
}

// Len returns the element count.
func (s *Secret) Len() int { return s.n }

// Share splits a plaintext vector into three additive shares.
func (e *Engine) Share(v []float64) *Secret {
	s := newSecret(len(v))
	for i, x := range v {
		e.dealShare(s, i, Encode(x))
	}
	e.charge(2*8*len(v), 1)
	return s
}

// ShareFloat32 shares a float32 slice.
func (e *Engine) ShareFloat32(v []float32) *Secret {
	f := make([]float64, len(v))
	for i, x := range v {
		f[i] = float64(x)
	}
	return e.Share(f)
}

// Open reconstructs the plaintext (each party reveals its share).
func (e *Engine) Open(s *Secret) []float64 {
	raw := e.openRaw(s)
	out := make([]float64, s.n)
	for i, r := range raw {
		out[i] = Decode(r)
	}
	return out
}

// openRaw reconstructs ring elements (charging the reveal round).
func (e *Engine) openRaw(s *Secret) []int64 {
	out := make([]int64, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.shares[0][i] + s.shares[1][i] + s.shares[2][i]
	}
	e.charge(2*8*s.n, 1)
	return out
}

func newSecret(n int) *Secret {
	s := &Secret{n: n}
	for p := range s.shares {
		s.shares[p] = make([]int64, n)
	}
	return s
}

// dealShare writes a fresh 3-way sharing of value into s at index i
// (dealer-side; not charged — callers charge distribution explicitly).
func (e *Engine) dealShare(s *Secret, i int, value int64) {
	r0 := int64(e.rng.Uint64())
	r1 := int64(e.rng.Uint64())
	s.shares[0][i] = r0
	s.shares[1][i] = r1
	s.shares[2][i] = value - r0 - r1
}

func (e *Engine) charge(bytes int, rounds int64) {
	e.BytesSent += int64(bytes) * (Parties - 1)
	e.Rounds += rounds
}

// Add returns a+b; purely local (no communication).
func Add(a, b *Secret) *Secret {
	checkLen("Add", a, b)
	out := newSecret(a.n)
	for p := 0; p < Parties; p++ {
		for i := range out.shares[p] {
			out.shares[p][i] = a.shares[p][i] + b.shares[p][i]
		}
	}
	return out
}

// Sub returns a−b; local.
func Sub(a, b *Secret) *Secret {
	checkLen("Sub", a, b)
	out := newSecret(a.n)
	for p := 0; p < Parties; p++ {
		for i := range out.shares[p] {
			out.shares[p][i] = a.shares[p][i] - b.shares[p][i]
		}
	}
	return out
}

// AddPlain adds a public vector (party 0 adjusts its share); local.
func AddPlain(a *Secret, v []float64) *Secret {
	if len(v) != a.n {
		panic(fmt.Sprintf("mpc: AddPlain length %d vs %d", len(v), a.n))
	}
	out := clone(a)
	for i, x := range v {
		out.shares[0][i] += Encode(x)
	}
	return out
}

// trunc divides a double-scale (2^{2f}) shared vector by 2^f using dealer
// truncation pairs: the dealer shares (r, r>>f); parties open x+r, shift
// the public value, and subtract the shared r>>f. Error ≤ 1 ULP.
func (e *Engine) trunc(a *Secret) *Secret {
	n := a.n
	rShift := newSecret(n)
	masked := clone(a)
	for i := 0; i < n; i++ {
		// 44-bit positive mask: large enough to hide magnitudes at our
		// value ranges, small enough that x+r never wraps the ring.
		r := int64(e.rng.Uint64() >> 20)
		e.dealShare(rShift, i, r>>FracBits)
		masked.shares[0][i] += r
	}
	e.charge(2*8*n, 1) // pair distribution
	opened := e.openRaw(masked)
	out := newSecret(n)
	for i := 0; i < n; i++ {
		q := opened[i] >> FracBits
		out.shares[0][i] = q - rShift.shares[0][i]
		out.shares[1][i] = -rShift.shares[1][i]
		out.shares[2][i] = -rShift.shares[2][i]
	}
	return out
}

// MulPlain multiplies by a public scalar: local ring product at double
// scale, then one truncation.
func (e *Engine) MulPlain(a *Secret, k float64) *Secret {
	kEnc := Encode(k)
	raw := newSecret(a.n)
	for p := 0; p < Parties; p++ {
		for i := range raw.shares[p] {
			raw.shares[p][i] = a.shares[p][i] * kEnc
		}
	}
	return e.trunc(raw)
}

// Scale is an alias of MulPlain.
func (e *Engine) Scale(a *Secret, k float64) *Secret { return e.MulPlain(a, k) }

// Mul returns the element-wise product via Beaver triples: one triple per
// element, one opening round, one truncation.
func (e *Engine) Mul(a, b *Secret) *Secret {
	checkLen("Mul", a, b)
	n := a.n
	u := newSecret(n)
	v := newSecret(n)
	wRaw := newSecret(n) // shares of uRing·vRing (double scale)
	for i := 0; i < n; i++ {
		uRing := Encode(e.rng.Normal(0, 1))
		vRing := Encode(e.rng.Normal(0, 1))
		e.dealShare(u, i, uRing)
		e.dealShare(v, i, vRing)
		e.dealShare(wRaw, i, uRing*vRing)
	}
	e.charge(3*2*8*n, 1)

	d := e.openRaw(Sub(a, u))
	f := e.openRaw(Sub(b, v))

	raw := newSecret(n)
	for p := 0; p < Parties; p++ {
		for i := 0; i < n; i++ {
			t := wRaw.shares[p][i] + d[i]*v.shares[p][i] + f[i]*u.shares[p][i]
			if p == 0 {
				t += d[i] * f[i]
			}
			raw.shares[p][i] = t
		}
	}
	return e.trunc(raw)
}

// MatMul returns A·B for shared matrices A [m,k] and B [k,n] using one
// matrix Beaver triple: two openings plus one truncation of the output,
// regardless of the m·k·n multiplication count — the asymptotic win
// matrix triples buy over element-wise Beaver.
func (e *Engine) MatMul(a *Secret, m, k int, b *Secret, n int) *Secret {
	if a.n != m*k || b.n != k*n {
		panic(fmt.Sprintf("mpc: MatMul dims %d≠%d·%d or %d≠%d·%d", a.n, m, k, b.n, k, n))
	}
	uRing := make([]int64, m*k)
	vRing := make([]int64, k*n)
	for i := range uRing {
		uRing[i] = Encode(e.rng.Normal(0, 1))
	}
	for i := range vRing {
		vRing[i] = Encode(e.rng.Normal(0, 1))
	}
	wRing := ringMatMul(uRing, m, k, vRing, n) // double scale
	u := e.dealVectorRing(uRing)
	v := e.dealVectorRing(vRing)
	w := e.dealVectorRing(wRing)
	e.charge(2*8*(len(uRing)+len(vRing)+len(wRing)), 1)

	d := e.openRaw(Sub(a, u)) // [m,k], single scale
	f := e.openRaw(Sub(b, v)) // [k,n], single scale

	df := ringMatMul(d, m, k, f, n)
	raw := newSecret(m * n)
	for p := 0; p < Parties; p++ {
		dv := ringMatMul(d, m, k, v.shares[p], n)
		uf := ringMatMul(u.shares[p], m, k, f, n)
		for i := 0; i < m*n; i++ {
			t := w.shares[p][i] + dv[i] + uf[i]
			if p == 0 {
				t += df[i]
			}
			raw.shares[p][i] = t
		}
	}
	return e.trunc(raw)
}

func (e *Engine) dealVectorRing(plain []int64) *Secret {
	s := newSecret(len(plain))
	for i, v := range plain {
		e.dealShare(s, i, v)
	}
	return s
}

// ringMatMul multiplies int64 matrices with wrapping arithmetic.
func ringMatMul(a []int64, m, k int, b []int64, n int) []int64 {
	out := make([]int64, m*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a[i*k+p]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out[i*n+j] += av * b[p*n+j]
			}
		}
	}
	return out
}

// ReLU applies max(0, x) element-wise using the dealer comparison oracle:
// the oracle learns sign bits and publishes a selection mask, and we
// charge the communication a binary-conversion comparison would cost
// (~64 bit-shares per element over log₂ 64 rounds).
func (e *Engine) ReLU(a *Secret) (*Secret, []bool) {
	mask := make([]bool, a.n)
	out := newSecret(a.n)
	for i := 0; i < a.n; i++ {
		v := a.shares[0][i] + a.shares[1][i] + a.shares[2][i]
		mask[i] = v > 0
		if mask[i] {
			for p := 0; p < Parties; p++ {
				out.shares[p][i] = a.shares[p][i]
			}
		}
	}
	e.Comparisons += int64(a.n)
	e.charge(8*8*a.n, 6)
	return out, mask
}

// SelectByMask zeroes elements where mask is false; local (ReLU backward
// with the saved mask).
func SelectByMask(a *Secret, mask []bool) *Secret {
	out := newSecret(a.n)
	for i, keep := range mask {
		if keep {
			for p := 0; p < Parties; p++ {
				out.shares[p][i] = a.shares[p][i]
			}
		}
	}
	return out
}

// Transpose returns the matrix transpose of a shared [m,n] matrix; local.
func Transpose(a *Secret, m, n int) *Secret {
	out := newSecret(a.n)
	for p := 0; p < Parties; p++ {
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				out.shares[p][j*m+i] = a.shares[p][i*n+j]
			}
		}
	}
	return out
}

func clone(a *Secret) *Secret {
	out := newSecret(a.n)
	for p := 0; p < Parties; p++ {
		copy(out.shares[p], a.shares[p])
	}
	return out
}

func checkLen(op string, a, b *Secret) {
	if a.n != b.n {
		panic(fmt.Sprintf("mpc: %s length mismatch %d vs %d", op, a.n, b.n))
	}
}
