package mpc

import (
	"math"
	"testing"
	"testing/quick"

	"amalgam/internal/tensor"
)

func TestEncodeDecode(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 3.14159, -1234.5678, 1e-4} {
		if got := Decode(Encode(v)); math.Abs(got-v) > 1.0/scale {
			t.Fatalf("fixed point roundtrip %v → %v", v, got)
		}
	}
}

func TestShareOpenRoundtrip(t *testing.T) {
	e := NewEngine(1)
	v := []float64{1.5, -2.25, 0, 100.125}
	got := e.Open(e.Share(v))
	for i := range v {
		if math.Abs(got[i]-v[i]) > 1e-4 {
			t.Fatalf("share/open %v → %v", v[i], got[i])
		}
	}
}

func TestSharesIndividuallyUseless(t *testing.T) {
	// A single party's share must look nothing like the secret (it is a
	// uniformly random ring element).
	e := NewEngine(2)
	v := []float64{42.0}
	s := e.Share(v)
	for p := 0; p < Parties-1; p++ {
		if Decode(s.shares[p][0]) == 42.0 {
			t.Fatalf("party %d share equals the secret", p)
		}
	}
}

func TestAddSubLocal(t *testing.T) {
	e := NewEngine(3)
	a := e.Share([]float64{1, 2, 3})
	b := e.Share([]float64{10, 20, 30})
	bytesBefore := e.BytesSent
	sum := Add(a, b)
	diff := Sub(b, a)
	if e.BytesSent != bytesBefore {
		t.Fatal("Add/Sub must be communication-free")
	}
	gotSum := e.Open(sum)
	gotDiff := e.Open(diff)
	for i := range gotSum {
		if math.Abs(gotSum[i]-float64(11*(i+1))) > 1e-4 {
			t.Fatalf("Add wrong: %v", gotSum)
		}
		if math.Abs(gotDiff[i]-float64(9*(i+1))) > 1e-4 {
			t.Fatalf("Sub wrong: %v", gotDiff)
		}
	}
}

func TestBeaverMul(t *testing.T) {
	e := NewEngine(4)
	a := e.Share([]float64{1.5, -2, 0.25})
	b := e.Share([]float64{2, 3, -4})
	got := e.Open(e.Mul(a, b))
	want := []float64{3, -6, -1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-3 {
			t.Fatalf("Mul[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if e.Rounds == 0 || e.BytesSent == 0 {
		t.Fatal("Beaver multiplication must consume communication")
	}
}

func TestBeaverMulProperty(t *testing.T) {
	f := func(seed uint64) bool {
		e := NewEngine(seed)
		rng := tensor.NewRNG(seed + 1)
		a := make([]float64, 5)
		b := make([]float64, 5)
		for i := range a {
			a[i] = rng.Normal(0, 2)
			b[i] = rng.Normal(0, 2)
		}
		got := e.Open(e.Mul(e.Share(a), e.Share(b)))
		for i := range a {
			if math.Abs(got[i]-a[i]*b[i]) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSecureMatMul(t *testing.T) {
	e := NewEngine(5)
	// A [2,3] · B [3,2]
	a := e.Share([]float64{1, 2, 3, 4, 5, 6})
	b := e.Share([]float64{7, 8, 9, 10, 11, 12})
	got := e.Open(e.MatMul(a, 2, 3, b, 2))
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Fatalf("MatMul[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSecureReLU(t *testing.T) {
	e := NewEngine(6)
	a := e.Share([]float64{-1, 0.5, -0.25, 3})
	out, mask := e.ReLU(a)
	got := e.Open(out)
	want := []float64{0, 0.5, 0, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-3 {
			t.Fatalf("ReLU[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if mask[0] || !mask[1] || mask[2] || !mask[3] {
		t.Fatalf("ReLU mask wrong: %v", mask)
	}
	if e.Comparisons != 4 {
		t.Fatalf("comparisons = %d, want 4", e.Comparisons)
	}
}

func TestTransposeLocal(t *testing.T) {
	e := NewEngine(7)
	a := e.Share([]float64{1, 2, 3, 4, 5, 6}) // [2,3]
	at := Transpose(a, 2, 3)
	got := e.Open(at)
	want := []float64{1, 4, 2, 5, 3, 6}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-4 {
			t.Fatalf("Transpose = %v", got)
		}
	}
}

func TestSecureMLPTrains(t *testing.T) {
	// Secure end-to-end training on a linearly separable toy task.
	e := NewEngine(8)
	rng := tensor.NewRNG(9)
	m := NewSecureMLP(e, rng, 8, 16, 2)
	n := 16
	x := make([]float32, n*8)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % 2
		for j := 0; j < 8; j++ {
			v := rng.Float32() * 0.1
			if labels[i] == 1 {
				v += 0.7
			}
			x[i*8+j] = v
		}
	}
	var first, last float64
	for step := 0; step < 25; step++ {
		loss := m.Step(x, n, labels, 0.3)
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if last > first/2 {
		t.Fatalf("secure MLP failed to learn: %v → %v", first, last)
	}
	pred := m.Predict(x, n)
	correct := 0
	for i := range pred {
		if pred[i] == labels[i] {
			correct++
		}
	}
	if correct < n*3/4 {
		t.Fatalf("secure MLP accuracy %d/%d", correct, n)
	}
}

func TestCommunicationAccounting(t *testing.T) {
	e := NewEngine(10)
	a := e.Share(make([]float64, 100))
	b := e.Share(make([]float64, 100))
	base := e.BytesSent
	e.Mul(a, b)
	mulCost := e.BytesSent - base
	if mulCost <= 0 {
		t.Fatal("Mul must be charged")
	}
	// A 10×10×10 MatMul involves 1000 scalar multiplications; with a matrix
	// triple it must cost far less than 1000 element-wise Beaver muls (10×
	// the 100-element cost) — that is the point of matrix triples.
	e2 := NewEngine(10)
	a2 := e2.Share(make([]float64, 100))
	b2 := e2.Share(make([]float64, 100))
	base2 := e2.BytesSent
	e2.MatMul(a2, 10, 10, b2, 10)
	matCost := e2.BytesSent - base2
	if matCost >= 10*mulCost {
		t.Fatalf("matrix triple (%d B) should beat 1000 element triples (%d B)", matCost, 10*mulCost)
	}
}

func TestExtrapolateLeNet(t *testing.T) {
	sec := ExtrapolateLeNet(1e9, 1000, 100, 28, 28, 10)
	if sec <= 0 || math.IsInf(sec, 1) {
		t.Fatalf("extrapolation = %v", sec)
	}
	if ExtrapolateLeNet(0, 1000, 100, 28, 28, 10) != math.Inf(1) {
		t.Fatal("zero throughput should give Inf")
	}
	// Twice the throughput halves the time.
	if got := ExtrapolateLeNet(2e9, 1000, 100, 28, 28, 10); math.Abs(got-sec/2) > 1e-9 {
		t.Fatalf("scaling wrong: %v vs %v", got, sec/2)
	}
}
