package nn

import (
	"math"
	"strings"
	"testing"

	"amalgam/internal/autodiff"
	"amalgam/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear(rng, 5, 3)
	x := autodiff.Constant(tensor.Ones(4, 5))
	y := l.Forward(x)
	if y.Val.Dim(0) != 4 || y.Val.Dim(1) != 3 {
		t.Fatalf("Linear output %v", y.Val.Shape())
	}
	if len(l.Params()) != 2 {
		t.Fatal("Linear should expose weight and bias")
	}
}

func TestConv2dOutputShape(t *testing.T) {
	rng := tensor.NewRNG(2)
	tests := []struct {
		name                 string
		k, stride, pad       int
		inH, inW, outH, outW int
	}{
		{"same-3x3", 3, 1, 1, 8, 8, 8, 8},
		{"stride2", 3, 2, 1, 8, 8, 4, 4},
		{"valid5x5", 5, 1, 0, 12, 10, 8, 6},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConv2d(rng, 3, 6, tc.k, tc.stride, tc.pad)
			x := autodiff.Constant(tensor.New(2, 3, tc.inH, tc.inW))
			y := c.Forward(x)
			want := []int{2, 6, tc.outH, tc.outW}
			got := y.Val.Shape()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("conv output %v, want %v", got, want)
				}
			}
		})
	}
}

func TestSequentialParamsPrefixedAndStable(t *testing.T) {
	rng := tensor.NewRNG(3)
	seq := NewSequential(
		NewConv2d(rng.Split(0), 1, 4, 3, 1, 1),
		&ReLU{},
		NewConv2d(rng.Split(1), 4, 8, 3, 1, 1),
	)
	names := map[string]bool{}
	for _, p := range seq.Params() {
		names[p.Name] = true
	}
	for _, want := range []string{"0.weight", "0.bias", "2.weight", "2.bias"} {
		if !names[want] {
			t.Fatalf("missing param %q in %v", want, names)
		}
	}
}

func TestNamedWrapping(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := &Named{Name: "conv1", M: NewConv2d(rng, 1, 2, 3, 1, 1)}
	p := m.Params()
	if p[0].Name != "conv1.weight" {
		t.Fatalf("Named prefix wrong: %q", p[0].Name)
	}
}

func TestStateDictRoundtrip(t *testing.T) {
	rng := tensor.NewRNG(5)
	a := NewLinear(rng.Split(1), 4, 4)
	b := NewLinear(rng.Split(2), 4, 4)
	if a.W.Val.Equal(b.W.Val) {
		t.Fatal("different seeds should give different weights")
	}
	if err := LoadStateDict(b, StateDict(a)); err != nil {
		t.Fatal(err)
	}
	if !a.W.Val.Equal(b.W.Val) || !a.B.Val.Equal(b.B.Val) {
		t.Fatal("LoadStateDict did not copy values")
	}
}

func TestLoadStateDictErrors(t *testing.T) {
	rng := tensor.NewRNG(6)
	l := NewLinear(rng, 4, 4)
	err := LoadStateDict(l, map[string]*tensor.Tensor{})
	if err == nil || !strings.Contains(err.Error(), "missing parameter") {
		t.Fatalf("want missing-parameter error, got %v", err)
	}
	err = LoadStateDict(l, map[string]*tensor.Tensor{
		"weight": tensor.New(2, 2),
		"bias":   tensor.New(4),
	})
	if err == nil || !strings.Contains(err.Error(), "shape mismatch") {
		t.Fatalf("want shape-mismatch error, got %v", err)
	}
}

func TestBatchNormTrainingToggle(t *testing.T) {
	bn := NewBatchNorm2d(2)
	rng := tensor.NewRNG(7)
	x := tensor.New(4, 2, 3, 3)
	rng.FillNormal(x, 3, 2)
	bn.SetTraining(true)
	_ = bn.Forward(autodiff.Constant(x))
	if bn.RunningMean.Data[0] == 0 {
		t.Fatal("training forward should update running mean")
	}
	bn.SetTraining(false)
	before := bn.RunningMean.Clone()
	_ = bn.Forward(autodiff.Constant(x))
	if !bn.RunningMean.Equal(before) {
		t.Fatal("eval forward must not update running stats")
	}
}

func TestResidualIdentity(t *testing.T) {
	r := &Residual{Body: &Func{Fn: func(x *autodiff.Node) *autodiff.Node {
		return autodiff.Scale(x, 0) // body outputs zero → residual is identity
	}}}
	x := tensor.FromSlice([]float32{1, 2, 3}, 1, 3)
	y := r.Forward(autodiff.Constant(x))
	if !y.Val.Equal(x) {
		t.Fatal("residual with zero body should be identity")
	}
}

func TestMultiHeadAttentionShapesAndMask(t *testing.T) {
	rng := tensor.NewRNG(8)
	mha := NewMultiHeadAttention(rng, 8, 2)
	x := tensor.New(2, 5, 8)
	rng.FillNormal(x, 0, 1)
	y := mha.ForwardSelf(autodiff.Constant(x), nil)
	got := y.Val.Shape()
	if got[0] != 2 || got[1] != 5 || got[2] != 8 {
		t.Fatalf("attention output %v", got)
	}
	// With a causal mask, output at position 0 must not depend on later
	// positions: perturb position 4 and check position 0 is unchanged.
	mask := CausalMask(5)
	y1 := mha.ForwardSelf(autodiff.Constant(x), mask)
	x2 := x.Clone()
	for i := 0; i < 8; i++ {
		x2.Data[(0*5+4)*8+i] += 10
	}
	y2 := mha.ForwardSelf(autodiff.Constant(x2), mask)
	for i := 0; i < 8; i++ {
		a := y1.Val.Data[i] // batch 0, pos 0
		b := y2.Val.Data[i]
		if math.Abs(float64(a-b)) > 1e-5 {
			t.Fatalf("causal mask leaked future info: %v vs %v", a, b)
		}
	}
}

func TestTransformerEncoderLayerGradientsFlow(t *testing.T) {
	rng := tensor.NewRNG(9)
	layer := NewTransformerEncoderLayer(rng, 8, 2, 16, 0)
	layer.SetTraining(true)
	x := tensor.New(2, 4, 8)
	rng.FillNormal(x, 0, 1)
	y := layer.ForwardSeq(autodiff.Constant(x), CausalMask(4))
	loss := autodiff.Mean(y)
	autodiff.Backward(loss)
	grads := 0
	for _, p := range layer.Params() {
		if p.Node.Grad != nil && tensor.L2Norm(p.Node.Grad) > 0 {
			grads++
		}
	}
	if grads < len(layer.Params())-2 {
		t.Fatalf("only %d/%d transformer params received gradient", grads, len(layer.Params()))
	}
}

func TestPositionalEncodingProperties(t *testing.T) {
	pe := PositionalEncoding(16, 8)
	if pe.Dim(0) != 16 || pe.Dim(1) != 8 {
		t.Fatalf("PE shape %v", pe.Shape())
	}
	// pos 0: sin(0)=0, cos(0)=1 alternating.
	if pe.At(0, 0) != 0 || pe.At(0, 1) != 1 {
		t.Fatalf("PE row 0 wrong: %v %v", pe.At(0, 0), pe.At(0, 1))
	}
	for _, v := range pe.Data {
		if v < -1 || v > 1 {
			t.Fatalf("PE value out of [-1,1]: %v", v)
		}
	}
}

func TestCBAMPreservesShapeAndBounds(t *testing.T) {
	rng := tensor.NewRNG(10)
	cb := NewCBAM(rng, 8)
	x := tensor.New(2, 8, 6, 6)
	rng.FillUniform(x, 0, 1) // positive inputs
	y := cb.Forward(autodiff.Constant(x))
	if !y.Val.SameShape(x) {
		t.Fatalf("CBAM changed shape: %v", y.Val.Shape())
	}
	// Attention weights are sigmoids in (0,1): output magnitude can't exceed
	// input magnitude for positive inputs.
	for i := range y.Val.Data {
		if y.Val.Data[i] < 0 || y.Val.Data[i] > x.Data[i] {
			t.Fatalf("CBAM output %v outside [0, x=%v]", y.Val.Data[i], x.Data[i])
		}
	}
}

func TestEmbeddingLookup(t *testing.T) {
	rng := tensor.NewRNG(11)
	e := NewEmbedding(rng, 10, 4)
	out := e.Lookup([][]int{{3, 3, 7}})
	if out.Val.Dim(0) != 1 || out.Val.Dim(1) != 3 || out.Val.Dim(2) != 4 {
		t.Fatalf("Lookup shape %v", out.Val.Shape())
	}
	for i := 0; i < 4; i++ {
		if out.Val.Data[i] != out.Val.Data[4+i] {
			t.Fatal("same id should give identical embeddings")
		}
	}
	mean := e.LookupMean([][]int{{3, 7}})
	want := (e.W.Val.At(3, 0) + e.W.Val.At(7, 0)) / 2
	if math.Abs(float64(mean.Val.At(0, 0)-want)) > 1e-6 {
		t.Fatalf("LookupMean = %v, want %v", mean.Val.At(0, 0), want)
	}
}

func TestNumParams(t *testing.T) {
	rng := tensor.NewRNG(12)
	l := NewLinear(rng, 10, 5)
	if got := NumParams(l); got != 10*5+5 {
		t.Fatalf("NumParams = %d, want 55", got)
	}
}

func TestDropoutModuleTrainingToggle(t *testing.T) {
	rng := tensor.NewRNG(13)
	d := NewDropout(rng, 0.5)
	x := autodiff.Constant(tensor.Ones(100))
	d.SetTraining(false)
	if y := d.Forward(x); y != x {
		t.Fatal("eval dropout should be identity")
	}
	d.SetTraining(true)
	y := d.Forward(x)
	zeros := 0
	for _, v := range y.Val.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("training dropout dropped nothing")
	}
}

func TestCheckImageInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CheckImageInput should panic on wrong channels")
		}
	}()
	CheckImageInput(autodiff.Constant(tensor.New(1, 3, 4, 4)), 1)
}
