package nn

import (
	"fmt"

	"amalgam/internal/autodiff"
	"amalgam/internal/tensor"
)

// Linear is a fully connected layer: y = x·W + b, x [N, In].
type Linear struct {
	In, Out int
	W, B    *autodiff.Node
}

// NewLinear builds a Linear layer with Kaiming-uniform weights.
func NewLinear(rng *tensor.RNG, in, out int) *Linear {
	w := tensor.New(in, out)
	tensor.KaimingUniform(rng, w, in)
	b := tensor.New(out)
	tensor.KaimingUniform(rng, b, in)
	return &Linear{In: in, Out: out, W: autodiff.Leaf(w), B: autodiff.Leaf(b)}
}

// Forward computes x·W + b.
func (l *Linear) Forward(x *autodiff.Node) *autodiff.Node {
	return autodiff.AddRowBias(autodiff.MatMul(x, l.W), l.B)
}

// ForwardReLU computes relu(x·W + b) with the bias+activation epilogue
// fused into the matmul output pass — use it wherever a Linear feeds
// straight into a ReLU.
func (l *Linear) ForwardReLU(x *autodiff.Node) *autodiff.Node {
	return autodiff.LinearReLU(x, l.W, l.B)
}

// ForwardTanh computes tanh(x·W + b) with the bias+activation epilogue
// fused (Tanh32 kernel family) — use it wherever a Linear feeds straight
// into a Tanh.
func (l *Linear) ForwardTanh(x *autodiff.Node) *autodiff.Node {
	return autodiff.LinearTanh(x, l.W, l.B)
}

// ForwardGELU computes gelu(x·W + b) with the bias+activation epilogue
// fused — use it wherever a Linear feeds straight into a GELU (transformer
// feed-forward blocks).
func (l *Linear) ForwardGELU(x *autodiff.Node) *autodiff.Node {
	return autodiff.LinearGELU(x, l.W, l.B)
}

// Params returns the weight and bias.
func (l *Linear) Params() []Param {
	return []Param{{Name: "weight", Node: l.W}, {Name: "bias", Node: l.B}}
}

// SetTraining is a no-op for Linear.
func (l *Linear) SetTraining(bool) {}

var _ Module = (*Linear)(nil)

// Conv2d is a 2-D convolution with square kernel.
type Conv2d struct {
	InC, OutC, Kernel, Stride, Pad int
	W, B                           *autodiff.Node // B nil when bias disabled
}

// NewConv2d builds a convolution with bias.
func NewConv2d(rng *tensor.RNG, inC, outC, kernel, stride, pad int) *Conv2d {
	c := newConv2d(rng, inC, outC, kernel, stride, pad)
	fanIn := inC * kernel * kernel
	b := tensor.New(outC)
	tensor.KaimingUniform(rng, b, fanIn)
	c.B = autodiff.Leaf(b)
	return c
}

// NewConv2dNoBias builds a convolution without bias (the usual choice
// before batch norm).
func NewConv2dNoBias(rng *tensor.RNG, inC, outC, kernel, stride, pad int) *Conv2d {
	return newConv2d(rng, inC, outC, kernel, stride, pad)
}

func newConv2d(rng *tensor.RNG, inC, outC, kernel, stride, pad int) *Conv2d {
	w := tensor.New(outC, inC, kernel, kernel)
	tensor.KaimingUniform(rng, w, inC*kernel*kernel)
	return &Conv2d{InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad, W: autodiff.Leaf(w)}
}

// Forward applies the convolution.
func (c *Conv2d) Forward(x *autodiff.Node) *autodiff.Node {
	return autodiff.Conv2d(x, c.W, c.B, c.Stride, c.Pad)
}

// ForwardReLU applies the convolution with a fused bias+ReLU epilogue —
// use it wherever a Conv2d feeds straight into a ReLU.
func (c *Conv2d) ForwardReLU(x *autodiff.Node) *autodiff.Node {
	return autodiff.Conv2dReLU(x, c.W, c.B, c.Stride, c.Pad)
}

// ForwardSigmoid applies the convolution with a fused bias+sigmoid
// epilogue — the shape of a convolutional attention gate (CBAM spatial
// attention).
func (c *Conv2d) ForwardSigmoid(x *autodiff.Node) *autodiff.Node {
	return autodiff.Conv2dSigmoid(x, c.W, c.B, c.Stride, c.Pad)
}

// Params returns weight (and bias when present).
func (c *Conv2d) Params() []Param {
	out := []Param{{Name: "weight", Node: c.W}}
	if c.B != nil {
		out = append(out, Param{Name: "bias", Node: c.B})
	}
	return out
}

// SetTraining is a no-op for Conv2d.
func (c *Conv2d) SetTraining(bool) {}

var _ Module = (*Conv2d)(nil)

// BatchNorm2d normalises activations per channel with running statistics.
type BatchNorm2d struct {
	C                       int
	Gamma, Beta             *autodiff.Node
	RunningMean, RunningVar *tensor.Tensor
	Momentum, Eps           float32
	training                bool
}

// NewBatchNorm2d builds a batch-norm layer in training mode.
func NewBatchNorm2d(c int) *BatchNorm2d {
	return &BatchNorm2d{
		C:           c,
		Gamma:       autodiff.Leaf(tensor.Ones(c)),
		Beta:        autodiff.Leaf(tensor.New(c)),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.Ones(c),
		Momentum:    0.1,
		Eps:         1e-5,
		training:    true,
	}
}

// Forward normalises x [N, C, H, W].
func (b *BatchNorm2d) Forward(x *autodiff.Node) *autodiff.Node {
	return autodiff.BatchNorm2d(x, b.Gamma, b.Beta, b.RunningMean, b.RunningVar, b.Momentum, b.Eps, b.training)
}

// Params returns the layer's full state dict: trainable gamma/beta plus
// the running statistics wrapped as non-trainable constants. Optimisers
// skip the latter (they never accumulate gradients) while extraction and
// serialisation copy them, so a de-obfuscated model evaluates identically
// in eval mode. Use NumParams for trainable-only counting.
func (b *BatchNorm2d) Params() []Param {
	return []Param{
		{Name: "gamma", Node: b.Gamma},
		{Name: "beta", Node: b.Beta},
		{Name: "running_mean", Node: autodiff.Constant(b.RunningMean)},
		{Name: "running_var", Node: autodiff.Constant(b.RunningVar)},
	}
}

// SetTraining switches between batch and running statistics.
func (b *BatchNorm2d) SetTraining(training bool) { b.training = training }

// Training reports the layer's current mode, so eval helpers can restore
// it instead of assuming the model came from a training loop.
func (b *BatchNorm2d) Training() bool { return b.training }

var _ Module = (*BatchNorm2d)(nil)

// ReLU applies the rectifier.
type ReLU struct{ stateless }

// Forward applies max(0, x).
func (ReLU) Forward(x *autodiff.Node) *autodiff.Node { return autodiff.ReLU(x) }

// ReLU6 applies the clipped rectifier used by MobileNet.
type ReLU6 struct{ stateless }

// Forward applies min(max(0,x),6).
func (ReLU6) Forward(x *autodiff.Node) *autodiff.Node { return autodiff.ReLU6(x) }

// GELU applies the Gaussian error linear unit.
type GELU struct{ stateless }

// Forward applies GELU.
func (GELU) Forward(x *autodiff.Node) *autodiff.Node { return autodiff.GELU(x) }

// Tanh applies the hyperbolic tangent.
type Tanh struct{ stateless }

// Forward applies tanh.
func (Tanh) Forward(x *autodiff.Node) *autodiff.Node { return autodiff.Tanh(x) }

// Sigmoid applies the logistic function.
type Sigmoid struct{ stateless }

// Forward applies 1/(1+e^{-x}).
func (Sigmoid) Forward(x *autodiff.Node) *autodiff.Node { return autodiff.Sigmoid(x) }

// MaxPool2d applies square max pooling.
type MaxPool2d struct {
	stateless
	Kernel, Stride, Pad int
}

// Forward pools x.
func (m *MaxPool2d) Forward(x *autodiff.Node) *autodiff.Node {
	return autodiff.MaxPool2d(x, m.Kernel, m.Stride, m.Pad)
}

// AvgPool2d applies square average pooling.
type AvgPool2d struct {
	stateless
	Kernel, Stride, Pad int
}

// Forward pools x.
func (m *AvgPool2d) Forward(x *autodiff.Node) *autodiff.Node {
	return autodiff.AvgPool2d(x, m.Kernel, m.Stride, m.Pad)
}

// GlobalAvgPool reduces [N,C,H,W] → [N,C].
type GlobalAvgPool struct{ stateless }

// Forward averages spatially.
func (GlobalAvgPool) Forward(x *autodiff.Node) *autodiff.Node { return autodiff.GlobalAvgPool(x) }

// Flatten reshapes [N, ...] → [N, features].
type Flatten struct{ stateless }

// Forward flattens all but the batch dimension.
func (Flatten) Forward(x *autodiff.Node) *autodiff.Node { return autodiff.Flatten(x) }

// Dropout zeroes activations during training.
type Dropout struct {
	P        float32
	rng      *tensor.RNG
	training bool
}

// NewDropout builds a dropout layer with its own RNG stream.
func NewDropout(rng *tensor.RNG, p float32) *Dropout {
	return &Dropout{P: p, rng: rng.Split(0xd209), training: true}
}

// Forward applies inverted dropout in training mode.
func (d *Dropout) Forward(x *autodiff.Node) *autodiff.Node {
	return autodiff.Dropout(x, d.P, d.rng, d.training)
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []Param { return nil }

// SetTraining toggles dropout on/off.
func (d *Dropout) SetTraining(training bool) { d.training = training }

// Training reports whether the layer currently applies dropout.
func (d *Dropout) Training() bool { return d.training }

// RNGState captures the layer's dropout-stream cursor so a checkpointed
// run can resume the mask sequence from the interruption point.
func (d *Dropout) RNGState() ([]byte, error) { return d.rng.MarshalState() }

// SetRNGState restores a cursor captured by RNGState.
func (d *Dropout) SetRNGState(b []byte) error { return d.rng.UnmarshalState(b) }

var _ Module = (*Dropout)(nil)

// LayerNorm normalises the last dimension.
type LayerNorm struct {
	D           int
	Gamma, Beta *autodiff.Node
	Eps         float32
}

// NewLayerNorm builds a layer norm over dimension d.
func NewLayerNorm(d int) *LayerNorm {
	return &LayerNorm{
		D:     d,
		Gamma: autodiff.Leaf(tensor.Ones(d)),
		Beta:  autodiff.Leaf(tensor.New(d)),
		Eps:   1e-5,
	}
}

// Forward normalises x.
func (l *LayerNorm) Forward(x *autodiff.Node) *autodiff.Node {
	return autodiff.LayerNorm(x, l.Gamma, l.Beta, l.Eps)
}

// Params returns gamma and beta.
func (l *LayerNorm) Params() []Param {
	return []Param{{Name: "gamma", Node: l.Gamma}, {Name: "beta", Node: l.Beta}}
}

// SetTraining is a no-op for LayerNorm.
func (l *LayerNorm) SetTraining(bool) {}

var _ Module = (*LayerNorm)(nil)

// Embedding holds a [Vocab, D] lookup table. It is not a Module (its input
// is token ids, not a tensor node); NLP models call Lookup directly.
type Embedding struct {
	Vocab, D int
	W        *autodiff.Node
}

// NewEmbedding builds an embedding table with N(0, 0.1²) init.
func NewEmbedding(rng *tensor.RNG, vocab, d int) *Embedding {
	w := tensor.New(vocab, d)
	tensor.NormalInit(rng, w, 0.1)
	return &Embedding{Vocab: vocab, D: d, W: autodiff.Leaf(w)}
}

// Lookup returns [N, T, D] embeddings for the given id batch.
func (e *Embedding) Lookup(ids [][]int) *autodiff.Node { return autodiff.Embedding(e.W, ids) }

// LookupMean returns mean-pooled [N, D] embeddings (EmbeddingBag "mean").
func (e *Embedding) LookupMean(ids [][]int) *autodiff.Node { return autodiff.EmbeddingMean(e.W, ids) }

// Params returns the table.
func (e *Embedding) Params() []Param { return []Param{{Name: "weight", Node: e.W}} }

// SetTraining is a no-op for Embedding.
func (e *Embedding) SetTraining(bool) {}

// Residual wraps a body module with an identity skip connection
// (y = x + body(x)); shapes must match.
type Residual struct {
	Body Module
}

// Forward computes x + Body(x).
func (r *Residual) Forward(x *autodiff.Node) *autodiff.Node {
	return autodiff.Add(x, r.Body.Forward(x))
}

// Params returns the body's parameters under the "body" prefix.
func (r *Residual) Params() []Param { return PrefixParams("body", r.Body.Params()) }

// SetTraining propagates.
func (r *Residual) SetTraining(training bool) { r.Body.SetTraining(training) }

var _ Module = (*Residual)(nil)

// Named wraps a module to replace its parameter-name prefix; model structs
// use it to expose stable layer names ("conv1", "layer2.0.bn1", …).
type Named struct {
	Name string
	M    Module
}

// Forward delegates to the wrapped module.
func (n *Named) Forward(x *autodiff.Node) *autodiff.Node { return n.M.Forward(x) }

// Params returns the wrapped module's params under Name.
func (n *Named) Params() []Param { return PrefixParams(n.Name, n.M.Params()) }

// SetTraining propagates.
func (n *Named) SetTraining(training bool) { n.M.SetTraining(training) }

var _ Module = (*Named)(nil)

// Func adapts a pure function into a Module (no parameters).
type Func struct {
	stateless
	Fn func(*autodiff.Node) *autodiff.Node
}

// Forward calls Fn.
func (f *Func) Forward(x *autodiff.Node) *autodiff.Node { return f.Fn(x) }

// CheckImageInput panics with a clear message unless x is [N, C, H, W]
// with the expected channel count. Models use it to fail fast on
// mis-shaped datasets.
func CheckImageInput(x *autodiff.Node, wantC int) {
	s := x.Val.Shape()
	if len(s) != 4 || s[1] != wantC {
		panic(fmt.Sprintf("nn: expected input [N,%d,H,W], got %v", wantC, s))
	}
}
