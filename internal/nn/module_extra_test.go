package nn

import (
	"strings"
	"testing"

	"amalgam/internal/autodiff"
	"amalgam/internal/tensor"
)

func TestSequentialAppendAndChild(t *testing.T) {
	rng := tensor.NewRNG(41)
	seq := NewSequential()
	seq.Append(NewLinear(rng, 4, 4)).Append(&ReLU{})
	if seq.Len() != 2 {
		t.Fatalf("Len = %d", seq.Len())
	}
	if _, ok := seq.Child(0).(*Linear); !ok {
		t.Fatal("Child(0) should be the Linear")
	}
	x := autodiff.Constant(tensor.Ones(2, 4))
	if y := seq.Forward(x); y.Val.Dim(1) != 4 {
		t.Fatalf("seq output %v", y.Val.Shape())
	}
}

func TestFormatParamsListsEverything(t *testing.T) {
	rng := tensor.NewRNG(42)
	l := NewLinear(rng, 3, 2)
	s := FormatParams(l)
	if !strings.Contains(s, "weight") || !strings.Contains(s, "bias") {
		t.Fatalf("FormatParams output:\n%s", s)
	}
}

func TestParamByName(t *testing.T) {
	rng := tensor.NewRNG(43)
	l := NewLinear(rng, 3, 2)
	if _, ok := ParamByName(l, "weight"); !ok {
		t.Fatal("weight should be found")
	}
	if _, ok := ParamByName(l, "nonexistent"); ok {
		t.Fatal("nonexistent should not be found")
	}
}

func TestResidualTrainingPropagates(t *testing.T) {
	bn := NewBatchNorm2d(2)
	r := &Residual{Body: bn}
	r.SetTraining(false)
	x := tensor.New(1, 2, 2, 2)
	before := bn.RunningMean.Clone()
	_ = r.Forward(autodiff.Constant(x))
	if !bn.RunningMean.Equal(before) {
		t.Fatal("SetTraining(false) must propagate through Residual")
	}
	// Residual params are prefixed.
	for _, p := range r.Params() {
		if !strings.HasPrefix(p.Name, "body.") {
			t.Fatalf("param %q missing body prefix", p.Name)
		}
	}
}

func TestBatchNormStateInParams(t *testing.T) {
	bn := NewBatchNorm2d(3)
	names := map[string]bool{}
	trainable := 0
	for _, p := range bn.Params() {
		names[p.Name] = true
		if p.Node.RequiresGrad() {
			trainable += p.Node.Val.Numel()
		}
	}
	for _, want := range []string{"gamma", "beta", "running_mean", "running_var"} {
		if !names[want] {
			t.Fatalf("BatchNorm state dict missing %q", want)
		}
	}
	if trainable != 6 { // gamma+beta only
		t.Fatalf("trainable params %d, want 6", trainable)
	}
	if NumParams(bn) != 6 {
		t.Fatal("NumParams must exclude running statistics")
	}
}
