// Package nn provides neural-network layers and containers on top of the
// autodiff engine — the substrate equivalent of torch.nn for this
// reproduction. Every layer carries stable, hierarchical parameter names so
// Amalgam's model extractor can identify original-layer weights inside an
// augmented model by name.
package nn

import (
	"fmt"
	"strings"

	"amalgam/internal/autodiff"
	"amalgam/internal/tensor"
)

// Param is a named trainable tensor.
type Param struct {
	Name string
	Node *autodiff.Node
}

// Module is a tensor-to-tensor layer or network.
type Module interface {
	// Forward applies the module. Implementations may panic on shape
	// mismatch (programming error), mirroring the tensor package.
	Forward(x *autodiff.Node) *autodiff.Node
	// Params returns the module's named parameters, prefixed hierarchically.
	Params() []Param
	// SetTraining toggles training-time behaviour (batch-norm statistics,
	// dropout) for this module and all children.
	SetTraining(training bool)
}

// TrainingMode reports a module's current train/eval mode for
// save-and-restore around forward-only passes (eval helpers, prediction
// servers): capture the mode, SetTraining(false), and restore the
// captured value afterwards, so an inference-only model is never left in
// training mode by a scoring call. Modules expose the mode via a
// Training() bool method; mode-less modules (no batch norm, no dropout)
// report true — the mode every layer is built in — which makes the
// restore a no-op for them.
func TrainingMode(m any) bool {
	if t, ok := m.(interface{ Training() bool }); ok {
		return t.Training()
	}
	return true
}

// PrefixParams returns params with prefix+"." prepended to every name.
func PrefixParams(prefix string, params []Param) []Param {
	out := make([]Param, len(params))
	for i, p := range params {
		out[i] = Param{Name: prefix + "." + p.Name, Node: p.Node}
	}
	return out
}

// NumParams sums the element counts of all trainable parameters
// (non-trainable state such as batch-norm running statistics is excluded).
func NumParams(m interface{ Params() []Param }) int {
	n := 0
	for _, p := range m.Params() {
		if p.Node.RequiresGrad() {
			n += p.Node.Val.Numel()
		}
	}
	return n
}

// ZeroGrads clears every parameter gradient.
func ZeroGrads(m interface{ Params() []Param }) {
	for _, p := range m.Params() {
		p.Node.ZeroGrad()
	}
}

// ParamByName finds a parameter by exact name.
func ParamByName(m interface{ Params() []Param }, name string) (Param, bool) {
	for _, p := range m.Params() {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// StateDict returns a name → tensor map of parameter values (the live
// tensors, not copies).
func StateDict(m interface{ Params() []Param }) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor)
	for _, p := range m.Params() {
		out[p.Name] = p.Node.Val
	}
	return out
}

// LoadStateDict copies values from dict into the matching parameters of m.
// Every parameter of m must be present in dict with a matching shape.
func LoadStateDict(m interface{ Params() []Param }, dict map[string]*tensor.Tensor) error {
	for _, p := range m.Params() {
		src, ok := dict[p.Name]
		if !ok {
			return fmt.Errorf("nn: LoadStateDict missing parameter %q", p.Name)
		}
		if !src.SameShape(p.Node.Val) {
			return fmt.Errorf("nn: LoadStateDict shape mismatch for %q: %v vs %v", p.Name, src.Shape(), p.Node.Val.Shape())
		}
		p.Node.Val.CopyFrom(src)
	}
	return nil
}

// Sequential chains modules; children are named by index.
type Sequential struct {
	mods []Module
}

// NewSequential builds a Sequential from the given modules.
func NewSequential(mods ...Module) *Sequential {
	return &Sequential{mods: mods}
}

// Append adds a module and returns the container for chaining.
func (s *Sequential) Append(m Module) *Sequential {
	s.mods = append(s.mods, m)
	return s
}

// Len returns the number of child modules.
func (s *Sequential) Len() int { return len(s.mods) }

// Child returns the i-th child module.
func (s *Sequential) Child(i int) Module { return s.mods[i] }

// Forward applies children in order.
func (s *Sequential) Forward(x *autodiff.Node) *autodiff.Node {
	for _, m := range s.mods {
		x = m.Forward(x)
	}
	return x
}

// Params returns children's parameters with index prefixes.
func (s *Sequential) Params() []Param {
	var out []Param
	for i, m := range s.mods {
		out = append(out, PrefixParams(fmt.Sprintf("%d", i), m.Params())...)
	}
	return out
}

// SetTraining propagates to all children.
func (s *Sequential) SetTraining(training bool) {
	for _, m := range s.mods {
		m.SetTraining(training)
	}
}

var _ Module = (*Sequential)(nil)

// stateless is embedded by layers without parameters or modes.
type stateless struct{}

func (stateless) Params() []Param  { return nil }
func (stateless) SetTraining(bool) {}

// FormatParams renders a human-readable parameter listing for debugging.
func FormatParams(m interface{ Params() []Param }) string {
	var b strings.Builder
	for _, p := range m.Params() {
		fmt.Fprintf(&b, "%-48s %v\n", p.Name, p.Node.Val.Shape())
	}
	return b.String()
}
