package nn

import (
	"math"

	"amalgam/internal/autodiff"
	"amalgam/internal/tensor"
)

// MultiHeadAttention implements scaled dot-product self-attention with H
// heads over inputs of shape [N, T, D].
type MultiHeadAttention struct {
	D, Heads       int
	Wq, Wk, Wv, Wo *Linear
}

// NewMultiHeadAttention builds the four projection layers.
func NewMultiHeadAttention(rng *tensor.RNG, d, heads int) *MultiHeadAttention {
	if d%heads != 0 {
		panic("nn: attention dimension must divide heads")
	}
	return &MultiHeadAttention{
		D: d, Heads: heads,
		Wq: NewLinear(rng.Split(1), d, d),
		Wk: NewLinear(rng.Split(2), d, d),
		Wv: NewLinear(rng.Split(3), d, d),
		Wo: NewLinear(rng.Split(4), d, d),
	}
}

// ForwardSelf applies self-attention to x [N, T, D]. mask, when non-nil,
// is an additive [T, T] tensor (use CausalMask for autoregressive LMs).
func (m *MultiHeadAttention) ForwardSelf(x *autodiff.Node, mask *tensor.Tensor) *autodiff.Node {
	s := x.Val.Shape()
	n, t := s[0], s[1]
	hd := m.D / m.Heads

	flat := autodiff.Reshape(x, n*t, m.D)
	q := autodiff.SplitHeads(autodiff.Reshape(m.Wq.Forward(flat), n, t, m.D), m.Heads)
	k := autodiff.SplitHeads(autodiff.Reshape(m.Wk.Forward(flat), n, t, m.D), m.Heads)
	v := autodiff.SplitHeads(autodiff.Reshape(m.Wv.Forward(flat), n, t, m.D), m.Heads)

	scores := autodiff.BatchedMatMul(q, autodiff.Transpose12(k)) // [N*H, T, T]
	scores = autodiff.Scale(scores, float32(1/math.Sqrt(float64(hd))))
	if mask != nil {
		scores = autodiff.AddConstBroadcast(scores, mask)
	}
	attn := autodiff.Reshape(autodiff.SoftmaxLastDim(autodiff.Reshape(scores, n*m.Heads*t, t)), n*m.Heads, t, t)
	ctx := autodiff.BatchedMatMul(attn, v) // [N*H, T, hd]
	merged := autodiff.MergeHeads(ctx, m.Heads)
	out := m.Wo.Forward(autodiff.Reshape(merged, n*t, m.D))
	return autodiff.Reshape(out, n, t, m.D)
}

// Params returns all projection parameters.
func (m *MultiHeadAttention) Params() []Param {
	var out []Param
	out = append(out, PrefixParams("wq", m.Wq.Params())...)
	out = append(out, PrefixParams("wk", m.Wk.Params())...)
	out = append(out, PrefixParams("wv", m.Wv.Params())...)
	out = append(out, PrefixParams("wo", m.Wo.Params())...)
	return out
}

// SetTraining is a no-op (projections are linear).
func (m *MultiHeadAttention) SetTraining(bool) {}

// CausalMask returns a [T, T] additive mask with -1e9 above the diagonal,
// preventing attention to future positions.
func CausalMask(t int) *tensor.Tensor {
	m := tensor.New(t, t)
	for i := 0; i < t; i++ {
		for j := i + 1; j < t; j++ {
			m.Data[i*t+j] = -1e9
		}
	}
	return m
}

// TransformerEncoderLayer is a post-norm transformer block: self-attention
// and a position-wise feed-forward network, each wrapped with residual
// connection and layer norm (matching nn.TransformerEncoderLayer defaults).
type TransformerEncoderLayer struct {
	D        int
	Attn     *MultiHeadAttention
	FF1, FF2 *Linear
	Norm1    *LayerNorm
	Norm2    *LayerNorm
	Drop     *Dropout
	// GELUFF switches the feed-forward activation from the default ReLU to
	// GELU; both run as fused Linear epilogues (LinearReLU / LinearGELU),
	// so either choice costs one pass over the hidden activations.
	GELUFF bool
}

// NewTransformerEncoderLayer builds a block with the given model dimension,
// head count, and feed-forward width.
func NewTransformerEncoderLayer(rng *tensor.RNG, d, heads, ffDim int, dropout float32) *TransformerEncoderLayer {
	return &TransformerEncoderLayer{
		D:     d,
		Attn:  NewMultiHeadAttention(rng.Split(1), d, heads),
		FF1:   NewLinear(rng.Split(2), d, ffDim),
		FF2:   NewLinear(rng.Split(3), ffDim, d),
		Norm1: NewLayerNorm(d),
		Norm2: NewLayerNorm(d),
		Drop:  NewDropout(rng.Split(4), dropout),
	}
}

// ForwardSeq applies the block to x [N, T, D] with an optional mask.
func (l *TransformerEncoderLayer) ForwardSeq(x *autodiff.Node, mask *tensor.Tensor) *autodiff.Node {
	s := x.Val.Shape()
	n, t := s[0], s[1]
	att := l.Drop.Forward(l.Attn.ForwardSelf(x, mask))
	x = l.Norm1.Forward(autodiff.Add(x, att))
	flat := autodiff.Reshape(x, n*t, l.D)
	var hidden *autodiff.Node
	if l.GELUFF {
		hidden = l.FF1.ForwardGELU(flat)
	} else {
		hidden = l.FF1.ForwardReLU(flat)
	}
	ff := l.FF2.Forward(l.Drop.Forward(hidden))
	ff3 := autodiff.Reshape(ff, n, t, l.D)
	return l.Norm2.Forward(autodiff.Add(x, ff3))
}

// Params returns all block parameters.
func (l *TransformerEncoderLayer) Params() []Param {
	var out []Param
	out = append(out, PrefixParams("attn", l.Attn.Params())...)
	out = append(out, PrefixParams("ff1", l.FF1.Params())...)
	out = append(out, PrefixParams("ff2", l.FF2.Params())...)
	out = append(out, PrefixParams("norm1", l.Norm1.Params())...)
	out = append(out, PrefixParams("norm2", l.Norm2.Params())...)
	return out
}

// SetTraining toggles the block's dropout.
func (l *TransformerEncoderLayer) SetTraining(training bool) { l.Drop.SetTraining(training) }

// PositionalEncoding returns the sinusoidal [maxT, D] table from
// "Attention Is All You Need".
func PositionalEncoding(maxT, d int) *tensor.Tensor {
	pe := tensor.New(maxT, d)
	for pos := 0; pos < maxT; pos++ {
		for i := 0; i < d; i += 2 {
			angle := float64(pos) / math.Pow(10000, float64(i)/float64(d))
			pe.Data[pos*d+i] = float32(math.Sin(angle))
			if i+1 < d {
				pe.Data[pos*d+i+1] = float32(math.Cos(angle))
			}
		}
	}
	return pe
}

// CBAM is a Convolutional Block Attention Module (Woo et al., ECCV'18):
// channel attention followed by spatial attention. The paper's transfer-
// learning experiment inserts CBAMs into a pre-trained VGG16.
type CBAM struct {
	C, Reduction int
	FC1, FC2     *Linear // shared MLP for channel attention
	SpatialConv  *Conv2d // 7x7 conv over [mean;max] maps
}

// NewCBAM builds a CBAM for c channels with the standard reduction of 16
// (clamped so the bottleneck is at least 1 unit wide).
func NewCBAM(rng *tensor.RNG, c int) *CBAM {
	r := 16
	hidden := c / r
	if hidden < 1 {
		hidden = 1
	}
	return &CBAM{
		C: c, Reduction: r,
		FC1:         NewLinear(rng.Split(1), c, hidden),
		FC2:         NewLinear(rng.Split(2), hidden, c),
		SpatialConv: NewConv2d(rng.Split(3), 2, 1, 7, 1, 3),
	}
}

// Forward applies channel then spatial attention to x [N, C, H, W].
func (m *CBAM) Forward(x *autodiff.Node) *autodiff.Node {
	// Channel attention: sigmoid(MLP(avgpool) + MLP(maxpool)).
	avg := autodiff.GlobalAvgPool(x)
	mx := autodiff.GlobalMaxPool(x)
	att := autodiff.Sigmoid(autodiff.Add(
		m.FC2.Forward(m.FC1.ForwardReLU(avg)),
		m.FC2.Forward(m.FC1.ForwardReLU(mx)),
	))
	x = autodiff.MulChannelScale(x, att)
	// Spatial attention: sigmoid(conv7x7([mean;max] over channels)), with
	// the bias+sigmoid epilogue fused into the conv output pass.
	sp := m.SpatialConv.ForwardSigmoid(autodiff.ChannelMeanMax(x))
	return autodiff.MulSpatialScale(x, sp)
}

// Params returns the attention parameters.
func (m *CBAM) Params() []Param {
	var out []Param
	out = append(out, PrefixParams("fc1", m.FC1.Params())...)
	out = append(out, PrefixParams("fc2", m.FC2.Params())...)
	out = append(out, PrefixParams("spatial", m.SpatialConv.Params())...)
	return out
}

// SetTraining is a no-op for CBAM.
func (m *CBAM) SetTraining(bool) {}

var _ Module = (*CBAM)(nil)
