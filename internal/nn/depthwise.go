package nn

import (
	"amalgam/internal/autodiff"
	"amalgam/internal/tensor"
)

// DepthwiseConv2d is the layer form of the depthwise convolution op.
type DepthwiseConv2d struct {
	C, Kernel, Stride, Pad int
	W                      *autodiff.Node
}

// NewDepthwiseConv2d builds a bias-free depthwise convolution (batch norm
// always follows it in MobileNet-style architectures).
func NewDepthwiseConv2d(rng *tensor.RNG, c, kernel, stride, pad int) *DepthwiseConv2d {
	w := tensor.New(c, kernel, kernel)
	tensor.KaimingUniform(rng, w, kernel*kernel)
	return &DepthwiseConv2d{C: c, Kernel: kernel, Stride: stride, Pad: pad, W: autodiff.Leaf(w)}
}

// Forward applies the depthwise convolution.
func (d *DepthwiseConv2d) Forward(x *autodiff.Node) *autodiff.Node {
	return autodiff.DepthwiseConv2d(x, d.W, d.Stride, d.Pad)
}

// Params returns the filter bank.
func (d *DepthwiseConv2d) Params() []Param { return []Param{{Name: "weight", Node: d.W}} }

// SetTraining is a no-op.
func (d *DepthwiseConv2d) SetTraining(bool) {}

var _ Module = (*DepthwiseConv2d)(nil)
