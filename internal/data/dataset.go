// Package data provides the dataset substrate for the Amalgam
// reproduction: synthetic, procedurally generated stand-ins for the six
// datasets of the paper's evaluation (MNIST, CIFAR-10, CIFAR-100,
// Imagenette, WikiText-2, AG News), plus batching utilities.
//
// The real datasets cannot be downloaded in this offline environment; the
// generators produce tensors with identical shapes, splits, and value
// ranges, and with class-conditional structure strong enough for the model
// zoo to learn, so that training/validation curves are meaningful. The
// substitution is documented in DESIGN.md §4.
package data

import (
	"fmt"

	"amalgam/internal/tensor"
)

// ImageDataset is a labelled image set stored as one dense tensor.
type ImageDataset struct {
	Name    string
	Images  *tensor.Tensor // [N, C, H, W], values in [0, 1]
	Labels  []int
	Classes int
}

// N returns the number of samples.
func (d *ImageDataset) N() int { return len(d.Labels) }

// C returns the channel count.
func (d *ImageDataset) C() int { return d.Images.Dim(1) }

// H returns the image height.
func (d *ImageDataset) H() int { return d.Images.Dim(2) }

// W returns the image width.
func (d *ImageDataset) W() int { return d.Images.Dim(3) }

// Image returns a view of sample i as [C, H, W].
func (d *ImageDataset) Image(i int) *tensor.Tensor {
	c, h, w := d.C(), d.H(), d.W()
	sz := c * h * w
	return tensor.FromSlice(d.Images.Data[i*sz:(i+1)*sz], c, h, w)
}

// SizeBytes returns the float32 payload size, the quantity reported in the
// paper's Table 2 "Dataset Size" column.
func (d *ImageDataset) SizeBytes() int64 { return d.Images.SizeBytes() }

// Slice returns a dataset view containing samples [lo, hi).
func (d *ImageDataset) Slice(lo, hi int) *ImageDataset {
	if lo < 0 || hi > d.N() || lo > hi {
		panic(fmt.Sprintf("data: Slice [%d,%d) out of range 0..%d", lo, hi, d.N()))
	}
	c, h, w := d.C(), d.H(), d.W()
	sz := c * h * w
	return &ImageDataset{
		Name:    d.Name,
		Images:  tensor.FromSlice(d.Images.Data[lo*sz:hi*sz], hi-lo, c, h, w),
		Labels:  d.Labels[lo:hi],
		Classes: d.Classes,
	}
}

// Batch materialises the samples at the given indices as an input tensor
// and label slice.
func (d *ImageDataset) Batch(indices []int) (*tensor.Tensor, []int) {
	c, h, w := d.C(), d.H(), d.W()
	sz := c * h * w
	x := tensor.New(len(indices), c, h, w)
	labels := make([]int, len(indices))
	for bi, i := range indices {
		copy(x.Data[bi*sz:(bi+1)*sz], d.Images.Data[i*sz:(i+1)*sz])
		labels[bi] = d.Labels[i]
	}
	return x, labels
}

// BatchIter yields mini-batch index slices over the dataset, optionally
// shuffled with the provided RNG (nil rng → sequential order).
func BatchIter(n, batchSize int, rng *tensor.RNG) [][]int {
	if batchSize <= 0 {
		panic("data: batchSize must be positive")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	var batches [][]int
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		batches = append(batches, order[lo:hi])
	}
	return batches
}

// ShuffleRNG derives the batch-shuffle RNG for one epoch from a base seed.
// The derivation is per-epoch rather than one RNG threaded across epochs so
// that (a) a resumed run shuffles epoch e exactly as an uninterrupted run
// does, and (b) local and remote training of the same job visit batches in
// the same order. Both the amalgam trainers and the cloudsim service must
// use this one derivation.
func ShuffleRNG(seed uint64, epoch int) *tensor.RNG {
	return tensor.NewRNG(seed).Split(uint64(epoch) + 1)
}

// TokenStream is a tokenised corpus for language modelling (WikiText-2
// style): one long 1-D sequence of token ids.
type TokenStream struct {
	Name   string
	Tokens []int
	Vocab  int
}

// N returns the token count. It also satisfies the public API's
// EvalDataset interface, so a held-out stream can ride WithEvalSet.
func (s *TokenStream) N() int { return len(s.Tokens) }

// SizeBytes reports the int64-token payload size (Table 2 accounting).
func (s *TokenStream) SizeBytes() int64 { return int64(len(s.Tokens)) * 8 }

// WindowSet slices the stream into its non-overlapping windows of
// windowLen tokens, dropping a trailing partial window (standard
// batchify behaviour). The windows view the stream's backing array.
func (s *TokenStream) WindowSet(windowLen int) *WindowSet {
	if windowLen <= 0 {
		panic(fmt.Sprintf("data: WindowSet window length must be positive, got %d", windowLen))
	}
	n := len(s.Tokens) / windowLen
	wins := make([][]int, n)
	for i := range wins {
		wins[i] = s.Tokens[i*windowLen : (i+1)*windowLen]
	}
	return &WindowSet{Windows: wins, Vocab: s.Vocab}
}

// WindowSet is a fixed-length window view over a token stream — the unit
// LM trainers batch over (BPTT-style batching: each window of L tokens
// yields L−1 next-token training pairs). It plays the role ImageDataset
// and TextDataset play for the other modalities: N/Batch feed the shared
// epoch loop.
type WindowSet struct {
	Windows [][]int
	Vocab   int
}

// N returns the window count.
func (ws *WindowSet) N() int { return len(ws.Windows) }

// SeqLen returns the (uniform) window length.
func (ws *WindowSet) SeqLen() int {
	if len(ws.Windows) == 0 {
		return 0
	}
	return len(ws.Windows[0])
}

// Batch gathers the windows at the given indices.
func (ws *WindowSet) Batch(indices []int) [][]int {
	out := make([][]int, len(indices))
	for bi, i := range indices {
		out[bi] = ws.Windows[i]
	}
	return out
}

// Batchify reshapes the stream into [batchSize] parallel columns of equal
// length, dropping the remainder — the standard PyTorch LM pipeline the
// paper follows.
func (s *TokenStream) Batchify(batchSize int) [][]int {
	per := len(s.Tokens) / batchSize
	cols := make([][]int, batchSize)
	for b := 0; b < batchSize; b++ {
		cols[b] = s.Tokens[b*per : (b+1)*per]
	}
	return cols
}

// LMBatch extracts input/target windows of length bptt starting at pos from
// batchified columns: input = tokens[pos:pos+bptt], target = shifted by 1.
func LMBatch(cols [][]int, pos, bptt int) (inputs [][]int, targets [][]int, ok bool) {
	per := len(cols[0])
	if pos+bptt+1 > per {
		return nil, nil, false
	}
	inputs = make([][]int, len(cols))
	targets = make([][]int, len(cols))
	for b, col := range cols {
		inputs[b] = col[pos : pos+bptt]
		targets[b] = col[pos+1 : pos+bptt+1]
	}
	return inputs, targets, true
}

// TextDataset is a labelled set of fixed-length token sequences (AG News
// style classification).
type TextDataset struct {
	Name    string
	Samples [][]int
	Labels  []int
	Vocab   int
	Classes int
}

// N returns the sample count.
func (d *TextDataset) N() int { return len(d.Samples) }

// SeqLen returns the (uniform) sequence length.
func (d *TextDataset) SeqLen() int {
	if len(d.Samples) == 0 {
		return 0
	}
	return len(d.Samples[0])
}

// SizeBytes reports the int64-token payload size.
func (d *TextDataset) SizeBytes() int64 { return int64(d.N()*d.SeqLen()) * 8 }

// Batch gathers samples at indices.
func (d *TextDataset) Batch(indices []int) (ids [][]int, labels []int) {
	ids = make([][]int, len(indices))
	labels = make([]int, len(indices))
	for bi, i := range indices {
		ids[bi] = d.Samples[i]
		labels[bi] = d.Labels[i]
	}
	return ids, labels
}

// Slice returns samples [lo, hi) as a view.
func (d *TextDataset) Slice(lo, hi int) *TextDataset {
	return &TextDataset{Name: d.Name, Samples: d.Samples[lo:hi], Labels: d.Labels[lo:hi], Vocab: d.Vocab, Classes: d.Classes}
}
