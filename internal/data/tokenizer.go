package data

import (
	"sort"
	"strings"
)

// Vocab maps tokens to ids, built frequency-ranked from a corpus (the
// WikiText-2 convention: ids ordered by descending frequency, unknown
// tokens map to <unk>).
type Vocab struct {
	byToken map[string]int
	byID    []string
}

// UnkToken is the out-of-vocabulary marker (always id 0).
const UnkToken = "<unk>"

// BuildVocab constructs a vocabulary from text, keeping at most maxSize
// tokens (0 = unlimited) ranked by frequency (ties broken
// lexicographically for determinism).
func BuildVocab(text string, maxSize int) *Vocab {
	counts := map[string]int{}
	for _, tok := range strings.Fields(text) {
		counts[tok]++
	}
	type tc struct {
		tok string
		n   int
	}
	ranked := make([]tc, 0, len(counts))
	for tok, n := range counts {
		ranked = append(ranked, tc{tok, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].tok < ranked[j].tok
	})
	v := &Vocab{byToken: map[string]int{UnkToken: 0}, byID: []string{UnkToken}}
	for _, e := range ranked {
		if maxSize > 0 && len(v.byID) >= maxSize {
			break
		}
		if e.tok == UnkToken {
			continue
		}
		v.byToken[e.tok] = len(v.byID)
		v.byID = append(v.byID, e.tok)
	}
	return v
}

// Size returns the vocabulary size (including <unk>).
func (v *Vocab) Size() int { return len(v.byID) }

// ID returns the id of tok, or 0 (<unk>) when absent.
func (v *Vocab) ID(tok string) int {
	if id, ok := v.byToken[tok]; ok {
		return id
	}
	return 0
}

// Token returns the token string for an id (<unk> for out-of-range ids).
func (v *Vocab) Token(id int) string {
	if id < 0 || id >= len(v.byID) {
		return UnkToken
	}
	return v.byID[id]
}

// Encode tokenises text (whitespace split) into ids.
func (v *Vocab) Encode(text string) []int {
	fields := strings.Fields(text)
	out := make([]int, len(fields))
	for i, tok := range fields {
		out[i] = v.ID(tok)
	}
	return out
}

// Decode renders ids back to a space-joined string.
func (v *Vocab) Decode(ids []int) string {
	toks := make([]string, len(ids))
	for i, id := range ids {
		toks[i] = v.Token(id)
	}
	return strings.Join(toks, " ")
}

// TokenizeCorpus builds a TokenStream from raw text, constructing the
// vocabulary in one pass — the user-side preprocessing step before the
// dataset augmenter (Fig. 3 starts from exactly this representation).
func TokenizeCorpus(name, text string, maxVocab int) (*TokenStream, *Vocab) {
	v := BuildVocab(text, maxVocab)
	return &TokenStream{Name: name, Tokens: v.Encode(text), Vocab: v.Size()}, v
}
