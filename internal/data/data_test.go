package data

import (
	"testing"

	"amalgam/internal/tensor"
)

func TestGenerateImagesShapesAndRange(t *testing.T) {
	tests := []struct {
		name string
		ds   *ImageDataset
		c, h int
		cls  int
	}{
		{"mnist", SyntheticMNIST(50, 1), 1, 28, 10},
		{"cifar10", SyntheticCIFAR10(40, 1), 3, 32, 10},
		{"cifar100", SyntheticCIFAR100(200, 1), 3, 32, 100},
		{"imagenette", SyntheticImagenette(2, 1), 3, 224, 10},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.ds.C() != tc.c || tc.ds.H() != tc.h || tc.ds.W() != tc.h {
				t.Fatalf("geometry %dx%dx%d", tc.ds.C(), tc.ds.H(), tc.ds.W())
			}
			if tc.ds.Classes != tc.cls {
				t.Fatalf("classes %d, want %d", tc.ds.Classes, tc.cls)
			}
			for _, v := range tc.ds.Images.Data {
				if v < 0 || v > 1 {
					t.Fatalf("pixel %v outside [0,1]", v)
				}
			}
			for _, l := range tc.ds.Labels {
				if l < 0 || l >= tc.cls {
					t.Fatalf("label %d out of range", l)
				}
			}
		})
	}
}

func TestGenerateImagesDeterministic(t *testing.T) {
	a := SyntheticCIFAR10(10, 42)
	b := SyntheticCIFAR10(10, 42)
	if !a.Images.Equal(b.Images) {
		t.Fatal("same seed must give identical datasets")
	}
	c := SyntheticCIFAR10(10, 43)
	if a.Images.Equal(c.Images) {
		t.Fatal("different seeds should differ")
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Mean intra-class pixel distance must be smaller than inter-class
	// distance, otherwise the synthetic task is unlearnable.
	ds := SyntheticMNIST(100, 7)
	dist := func(i, j int) float64 {
		a, b := ds.Image(i), ds.Image(j)
		var s float64
		for k := range a.Data {
			d := float64(a.Data[k] - b.Data[k])
			s += d * d
		}
		return s
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			if ds.Labels[i] == ds.Labels[j] {
				intra += dist(i, j)
				nIntra++
			} else {
				inter += dist(i, j)
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Fatal("degenerate sampling")
	}
	if intra/float64(nIntra) >= inter/float64(nInter) {
		t.Fatalf("classes not separable: intra %.2f vs inter %.2f", intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestImageViewAndBatch(t *testing.T) {
	ds := SyntheticMNIST(10, 1)
	img := ds.Image(3)
	if img.Dims() != 3 || img.Dim(0) != 1 || img.Dim(1) != 28 {
		t.Fatalf("Image view shape %v", img.Shape())
	}
	x, labels := ds.Batch([]int{1, 4})
	if x.Dim(0) != 2 || len(labels) != 2 {
		t.Fatal("Batch wrong size")
	}
	if labels[0] != ds.Labels[1] || labels[1] != ds.Labels[4] {
		t.Fatal("Batch labels wrong")
	}
	if x.At(1, 0, 0, 0) != ds.Image(4).At(0, 0, 0) {
		t.Fatal("Batch pixels wrong")
	}
}

func TestSliceView(t *testing.T) {
	ds := SyntheticMNIST(10, 1)
	s := ds.Slice(2, 6)
	if s.N() != 4 {
		t.Fatalf("Slice size %d", s.N())
	}
	if !s.Image(0).Equal(ds.Image(2)) {
		t.Fatal("Slice must be a view from lo")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Slice should panic")
		}
	}()
	ds.Slice(5, 20)
}

func TestBatchIter(t *testing.T) {
	batches := BatchIter(10, 3, nil)
	if len(batches) != 4 {
		t.Fatalf("batches %d, want 4 (3+3+3+1)", len(batches))
	}
	if len(batches[3]) != 1 {
		t.Fatal("last partial batch wrong")
	}
	// Sequential when rng nil.
	if batches[0][0] != 0 || batches[0][1] != 1 {
		t.Fatal("nil rng should preserve order")
	}
	// Shuffled covers all indices exactly once.
	rng := tensor.NewRNG(1)
	shuffled := BatchIter(10, 3, rng)
	seen := map[int]bool{}
	for _, b := range shuffled {
		for _, i := range b {
			if seen[i] {
				t.Fatal("duplicate index in shuffled batches")
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Fatal("shuffled batches must cover all samples")
	}
}

func TestTokenStreamGeneration(t *testing.T) {
	s := SyntheticWikiText2(5000, 3)
	if len(s.Tokens) != 5000 || s.Vocab != WikiText2Vocab {
		t.Fatalf("stream %d tokens vocab %d", len(s.Tokens), s.Vocab)
	}
	for _, tok := range s.Tokens {
		if tok < 0 || tok >= s.Vocab {
			t.Fatalf("token %d out of range", tok)
		}
	}
	if s.SizeBytes() != 40000 {
		t.Fatalf("SizeBytes = %d, want 40000", s.SizeBytes())
	}
}

func TestBatchifyAndLMBatch(t *testing.T) {
	s := &TokenStream{Tokens: make([]int, 103), Vocab: 10}
	for i := range s.Tokens {
		s.Tokens[i] = i % 10
	}
	cols := s.Batchify(4) // 103/4 = 25 per column, 3 dropped
	if len(cols) != 4 || len(cols[0]) != 25 {
		t.Fatalf("batchify %dx%d", len(cols), len(cols[0]))
	}
	in, tgt, ok := LMBatch(cols, 0, 5)
	if !ok || len(in) != 4 || len(in[0]) != 5 {
		t.Fatal("LMBatch shape wrong")
	}
	// Target is input shifted by one.
	if tgt[0][0] != cols[0][1] {
		t.Fatal("LMBatch target not shifted")
	}
	if _, _, ok := LMBatch(cols, 24, 5); ok {
		t.Fatal("LMBatch past end should report !ok")
	}
}

func TestClassifiedTextSeparable(t *testing.T) {
	ds := SyntheticAGNews(80, 5)
	if ds.SeqLen() != AGNewsSeqLen || ds.Vocab != AGNewsVocab || ds.Classes != 4 {
		t.Fatalf("agnews config wrong: %d %d %d", ds.SeqLen(), ds.Vocab, ds.Classes)
	}
	// Class-0 samples should contain many tokens from the class-0 topic band
	// [0, 200) — the signal a classifier learns.
	inBand := 0
	for j, tok := range ds.Samples[0] {
		_ = j
		if tok < 200 {
			inBand++
		}
	}
	if inBand < ds.SeqLen()/5 {
		t.Fatalf("class-0 sample has only %d topic tokens", inBand)
	}
	ids, labels := ds.Batch([]int{0, 1, 2})
	if len(ids) != 3 || labels[1] != 1 {
		t.Fatal("text Batch wrong")
	}
}

func TestTextDatasetSlice(t *testing.T) {
	ds := SyntheticAGNews(20, 5)
	s := ds.Slice(5, 10)
	if s.N() != 5 || s.Labels[0] != ds.Labels[5] {
		t.Fatal("text Slice wrong")
	}
}

func TestPaperScaleConstants(t *testing.T) {
	// Table 2 size cross-checks: 70000×28²×4 B = 219.5 MB (paper: 219.6).
	mnistBytes := int64(PaperDatasetSizes["mnist"]) * 28 * 28 * 4
	if mb := float64(mnistBytes) / 1e6; mb < 218 || mb > 221 {
		t.Fatalf("MNIST paper size %.1f MB, want ≈219.6", mb)
	}
	cifarBytes := int64(PaperDatasetSizes["cifar10"]) * 3 * 32 * 32 * 4
	if mb := float64(cifarBytes) / 1e6; mb < 735 || mb > 740 {
		t.Fatalf("CIFAR paper size %.1f MB, want ≈737.6", mb)
	}
	wikiBytes := int64(WikiText2PaperTokens) * 8
	if mb := float64(wikiBytes) / 1e6; mb < 16 || mb > 17 {
		t.Fatalf("WikiText2 paper size %.1f MB, want ≈16.4", mb)
	}
}

// TestWindowSetBatching pins the BPTT-style window view LM trainers
// batch over: non-overlapping windows, trailing remainder dropped,
// batches gathering by index.
func TestWindowSetBatching(t *testing.T) {
	s := &TokenStream{Name: "w", Tokens: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, Vocab: 11}
	ws := s.WindowSet(4)
	if ws.N() != 2 || ws.SeqLen() != 4 {
		t.Fatalf("11 tokens at window 4: N=%d SeqLen=%d, want 2/4 (remainder dropped)", ws.N(), ws.SeqLen())
	}
	b := ws.Batch([]int{1, 0})
	if b[0][0] != 4 || b[1][0] != 0 {
		t.Fatalf("batch gathered %v", b)
	}
	if s.N() != 11 {
		t.Fatalf("TokenStream.N = %d, want 11", s.N())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive window length must panic")
		}
	}()
	s.WindowSet(0)
}
