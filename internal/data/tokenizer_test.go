package data

import (
	"strings"
	"testing"
	"testing/quick"

	"amalgam/internal/tensor"
)

func TestBuildVocabFrequencyRanked(t *testing.T) {
	v := BuildVocab("the cat sat on the mat the cat", 0)
	if v.Token(0) != UnkToken {
		t.Fatal("<unk> must be id 0")
	}
	// "the" (3) ranks before "cat" (2) before the singletons.
	if v.ID("the") != 1 || v.ID("cat") != 2 {
		t.Fatalf("frequency ranking wrong: the=%d cat=%d", v.ID("the"), v.ID("cat"))
	}
	if v.Size() != 6 { // unk, the, cat, mat, on, sat
		t.Fatalf("vocab size %d, want 6", v.Size())
	}
}

func TestVocabMaxSizeAndUnk(t *testing.T) {
	v := BuildVocab("a a a b b c", 3) // unk + 2 tokens
	if v.Size() != 3 {
		t.Fatalf("size %d, want 3", v.Size())
	}
	if v.ID("c") != 0 {
		t.Fatal("truncated token should map to <unk>")
	}
	if v.Token(99) != UnkToken {
		t.Fatal("out-of-range id should render <unk>")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	text := "hello world hello amalgam"
	v := BuildVocab(text, 0)
	ids := v.Encode(text)
	if got := v.Decode(ids); got != text {
		t.Fatalf("roundtrip %q → %q", text, got)
	}
	if ids[0] != ids[2] {
		t.Fatal("repeated token must map to the same id")
	}
}

func TestTokenizeCorpus(t *testing.T) {
	stream, v := TokenizeCorpus("demo", "x y z x y x", 0)
	if stream.Vocab != v.Size() || len(stream.Tokens) != 6 {
		t.Fatalf("stream vocab %d tokens %d", stream.Vocab, len(stream.Tokens))
	}
	for _, id := range stream.Tokens {
		if id < 0 || id >= stream.Vocab {
			t.Fatalf("token id %d out of range", id)
		}
	}
}

func TestVocabDeterministicProperty(t *testing.T) {
	// Same corpus → same vocabulary (ties broken lexicographically).
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
		var b strings.Builder
		for i := 0; i < 50; i++ {
			b.WriteString(words[rng.IntN(len(words))])
			b.WriteByte(' ')
		}
		text := b.String()
		v1 := BuildVocab(text, 0)
		v2 := BuildVocab(text, 0)
		for i := 0; i < v1.Size(); i++ {
			if v1.Token(i) != v2.Token(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
