package data

import (
	"fmt"
	"math"

	"amalgam/internal/tensor"
)

// ImageConfig parameterises a synthetic image dataset.
type ImageConfig struct {
	Name    string
	N       int // number of samples
	C, H, W int
	Classes int
	Seed    uint64
	// Noise is the per-pixel Gaussian jitter added on top of the class
	// pattern; higher values make the classification task harder.
	Noise float64
}

// GenerateImages builds a class-conditional synthetic image dataset.
//
// Each class k is assigned a smooth 2-D sinusoidal texture with
// class-specific frequencies, phases, and per-channel gains; samples add a
// random translation and pixel noise. CNNs learn these quickly (they are
// oriented-frequency detectors), giving meaningful accuracy/loss curves,
// while shapes, ranges, and sizes match the real datasets.
func GenerateImages(cfg ImageConfig) *ImageDataset {
	if cfg.N <= 0 || cfg.Classes <= 0 {
		panic(fmt.Sprintf("data: bad ImageConfig %+v", cfg))
	}
	rng := tensor.NewRNG(cfg.Seed)
	images := tensor.New(cfg.N, cfg.C, cfg.H, cfg.W)
	labels := make([]int, cfg.N)

	type classPattern struct {
		fy, fx, phase float64
		gain          []float64
	}
	patterns := make([]classPattern, cfg.Classes)
	prng := rng.Split(1)
	for k := range patterns {
		gains := make([]float64, cfg.C)
		for c := range gains {
			gains[c] = 0.35 + 0.45*prng.Float64()
		}
		patterns[k] = classPattern{
			fy:    1 + float64(k%5) + prng.Float64(),
			fx:    1 + float64((k/5)%5) + prng.Float64(),
			phase: 2 * math.Pi * prng.Float64(),
			gain:  gains,
		}
	}

	srng := rng.Split(2)
	sz := cfg.C * cfg.H * cfg.W
	for i := 0; i < cfg.N; i++ {
		k := i % cfg.Classes // balanced classes
		labels[i] = k
		p := patterns[k]
		dy := srng.Float64() * 2 * math.Pi
		dx := srng.Float64() * 2 * math.Pi
		base := i * sz
		for c := 0; c < cfg.C; c++ {
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					v := 0.5 + 0.5*p.gain[c]*math.Sin(
						2*math.Pi*(p.fy*float64(y)/float64(cfg.H)+p.fx*float64(x)/float64(cfg.W))+p.phase+dy*0.1+dx*0.1)
					v += srng.Normal(0, cfg.Noise)
					if v < 0 {
						v = 0
					} else if v > 1 {
						v = 1
					}
					images.Data[base+(c*cfg.H+y)*cfg.W+x] = float32(v)
				}
			}
		}
	}
	return &ImageDataset{Name: cfg.Name, Images: images, Labels: labels, Classes: cfg.Classes}
}

// Paper-scale dataset geometries (Table 2 row 0 of each dataset).
// The n arguments let callers build reduced sets for CPU-scale training
// while keeping per-image geometry identical to the paper.

// SyntheticMNIST returns an n-sample 1×28×28, 10-class dataset.
func SyntheticMNIST(n int, seed uint64) *ImageDataset {
	return GenerateImages(ImageConfig{Name: "mnist", N: n, C: 1, H: 28, W: 28, Classes: 10, Seed: seed, Noise: 0.05})
}

// SyntheticCIFAR10 returns an n-sample 3×32×32, 10-class dataset.
func SyntheticCIFAR10(n int, seed uint64) *ImageDataset {
	return GenerateImages(ImageConfig{Name: "cifar10", N: n, C: 3, H: 32, W: 32, Classes: 10, Seed: seed, Noise: 0.08})
}

// SyntheticCIFAR100 returns an n-sample 3×32×32, 100-class dataset.
func SyntheticCIFAR100(n int, seed uint64) *ImageDataset {
	return GenerateImages(ImageConfig{Name: "cifar100", N: n, C: 3, H: 32, W: 32, Classes: 100, Seed: seed, Noise: 0.08})
}

// SyntheticImagenette returns an n-sample 3×224×224, 10-class dataset.
func SyntheticImagenette(n int, seed uint64) *ImageDataset {
	return GenerateImages(ImageConfig{Name: "imagenette", N: n, C: 3, H: 224, W: 224, Classes: 10, Seed: seed, Noise: 0.08})
}

// PaperDatasetSizes records the sample counts of the real datasets
// (train+test, as Table 2's sizes imply) so harnesses can report
// paper-scale sizes while computing on reduced sets.
var PaperDatasetSizes = map[string]int{
	"mnist":      70000,
	"cifar10":    60000,
	"cifar100":   60000,
	"imagenette": 13394,
}

// TextConfig parameterises a synthetic token stream.
type TextConfig struct {
	Name   string
	Tokens int
	Vocab  int
	Seed   uint64
}

// GenerateTokenStream builds a WikiText-2-style corpus: a first-order
// Markov chain whose unigram distribution is Zipfian, giving realistic
// token statistics for an LM to model (the transformer's loss decreases
// as it learns the transition structure).
func GenerateTokenStream(cfg TextConfig) *TokenStream {
	rng := tensor.NewRNG(cfg.Seed)
	toks := make([]int, cfg.Tokens)
	// Zipfian sampler via inverse CDF over harmonic weights.
	cdf := make([]float64, cfg.Vocab)
	var total float64
	for i := 0; i < cfg.Vocab; i++ {
		total += 1 / math.Pow(float64(i+1), 1.1)
		cdf[i] = total
	}
	sample := func(r float64) int {
		lo, hi := 0, cfg.Vocab-1
		target := r * total
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Markov structure: each token deterministically biases the next draw
	// towards a "successor cluster", making sequences predictable enough to
	// learn but not trivial.
	prev := 0
	for i := range toks {
		if rng.Float64() < 0.55 {
			// Follow the chain: successor cluster of prev.
			toks[i] = (prev*7 + 1 + rng.IntN(13)) % cfg.Vocab
		} else {
			toks[i] = sample(rng.Float64())
		}
		prev = toks[i]
	}
	return &TokenStream{Name: cfg.Name, Tokens: toks, Vocab: cfg.Vocab}
}

// WikiText2Vocab matches the real WikiText-2 vocabulary size, which the
// paper's 12.03M-parameter transformer implies.
const WikiText2Vocab = 28782

// WikiText2PaperTokens is the approximate token count of the real corpus
// (drives Table 2's 16.4 MB size at 8 bytes/token).
const WikiText2PaperTokens = 2050000

// SyntheticWikiText2 returns an n-token WikiText-2 stand-in.
func SyntheticWikiText2(n int, seed uint64) *TokenStream {
	return GenerateTokenStream(TextConfig{Name: "wikitext2", Tokens: n, Vocab: WikiText2Vocab, Seed: seed})
}

// ClassTextConfig parameterises a synthetic text-classification corpus.
type ClassTextConfig struct {
	Name    string
	N       int
	SeqLen  int
	Vocab   int
	Classes int
	Seed    uint64
}

// GenerateClassifiedText builds an AG News-style classification dataset:
// each class owns a pool of "topic" tokens; a sample mixes topic tokens
// with Zipfian background tokens.
func GenerateClassifiedText(cfg ClassTextConfig) *TextDataset {
	rng := tensor.NewRNG(cfg.Seed)
	samples := make([][]int, cfg.N)
	labels := make([]int, cfg.N)
	const topicPool = 200
	for i := 0; i < cfg.N; i++ {
		k := i % cfg.Classes
		labels[i] = k
		seq := make([]int, cfg.SeqLen)
		for j := range seq {
			if rng.Float64() < 0.4 {
				// Topic token: class-specific band of the vocabulary.
				seq[j] = (k*topicPool + rng.IntN(topicPool)) % cfg.Vocab
			} else {
				// Background token: low-id-biased (Zipf-ish by squaring).
				u := rng.Float64()
				seq[j] = int(u * u * float64(cfg.Vocab))
				if seq[j] >= cfg.Vocab {
					seq[j] = cfg.Vocab - 1
				}
			}
		}
		samples[i] = seq
	}
	return &TextDataset{Name: cfg.Name, Samples: samples, Labels: labels, Vocab: cfg.Vocab, Classes: cfg.Classes}
}

// AGNewsVocab matches the real AG News vocabulary, implied by the paper's
// 6.13M-parameter text classifier (95812 × 64-d embedding ≈ 6.13M).
const AGNewsVocab = 95812

// AGNewsSeqLen is the fixed token length per sample reverse-engineered
// from Table 2's search-space column: at L=144, C(180,36) ≈ 9.73e37,
// C(216,72) ≈ 2.94e58 and C(252,108) ≈ 2.78e73 match the paper's 25/50/75%
// rows to two decimals. (The paper's 100% row reads 2.33e86 where C(288,144)
// is 2.33e85 — an off-by-one-decade typo; see EXPERIMENTS.md.)
const AGNewsSeqLen = 144

// AGNewsPaperSamples is the real corpus size (120k train + 7.6k test).
const AGNewsPaperSamples = 127600

// SyntheticAGNews returns an n-sample AG News stand-in (4 classes).
func SyntheticAGNews(n int, seed uint64) *TextDataset {
	return GenerateClassifiedText(ClassTextConfig{
		Name: "agnews", N: n, SeqLen: AGNewsSeqLen, Vocab: AGNewsVocab, Classes: 4, Seed: seed,
	})
}
