package serialize

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"amalgam/internal/optim"
	"amalgam/internal/tensor"
)

func testBuffers(names ...string) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor, len(names))
	rng := tensor.NewRNG(11)
	for _, n := range names {
		v := tensor.New(3, 2)
		rng.FillNormal(v, 0, 1)
		out[n] = v
	}
	return out
}

func statesEqual(t *testing.T, got, want *optim.State) {
	t.Helper()
	if got.Kind != want.Kind || got.Step != want.Step || got.LR != want.LR {
		t.Fatalf("scalars mangled: got %q/%d/%v, want %q/%d/%v",
			got.Kind, got.Step, got.LR, want.Kind, want.Step, want.LR)
	}
	if len(got.Buffers) != len(want.Buffers) {
		t.Fatalf("buffer count %d, want %d", len(got.Buffers), len(want.Buffers))
	}
	for name, src := range want.Buffers {
		if !got.Buffers[name].Equal(src) {
			t.Fatalf("buffer %q not restored", name)
		}
	}
}

// TestOptStateAMO1Roundtrip pins the generalized wire encoding: an Adam
// state (kind, step counter, LR, prefixed moment buffers) survives
// encode/decode exactly.
func TestOptStateAMO1Roundtrip(t *testing.T) {
	in := &optim.State{
		Kind: optim.KindAdam, Step: 42, LR: 0.003,
		Buffers: testBuffers("m/w", "v/w", "m/b", "v/b"),
	}
	var buf bytes.Buffer
	if err := WriteOptState(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(buf.Bytes()[:4]); got != optStateMagic {
		t.Fatalf("adam state wrote magic %#x, want AMO1", got)
	}
	out, err := ReadOptState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, out, in)
}

// TestOptStateSGDWritesLegacyBytes pins the no-flag-day contract on the
// wire: an SGD-expressible state encodes byte-identically to the legacy
// bare state dict, and decoding surfaces it as an SGD state.
func TestOptStateSGDWritesLegacyBytes(t *testing.T) {
	vel := testBuffers("w", "b")
	st := &optim.State{Kind: optim.KindSGD, LR: 0.05, Buffers: vel}

	var got, legacy bytes.Buffer
	if err := WriteOptState(&got, st); err != nil {
		t.Fatal(err)
	}
	if err := WriteStateDict(&legacy, vel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), legacy.Bytes()) {
		t.Fatal("SGD optimiser state no longer encodes as the legacy bare dict")
	}

	out, err := ReadOptState(&got)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, out, &optim.State{Kind: optim.KindSGD, Buffers: vel})
}

// TestOptStateRejectsForeignMagic pins format discrimination for the
// sniffing reader.
func TestOptStateRejectsForeignMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTensor(&buf, tensor.New(2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadOptState(&buf); !errors.Is(err, ErrWrongFormat) {
		t.Fatalf("tensor stream decoded as optimiser state: %v", err)
	}
}

// TestTrainCheckpointAMC3Roundtrip pins the generalized checkpoint
// section: an Adam job's checkpoint selects the AMC3 layout and restores
// kind, step, LR, buffers, and the RNG section.
func TestTrainCheckpointAMC3Roundtrip(t *testing.T) {
	state := testBuffers("w", "b")
	in := &TrainCheckpoint{
		Epoch: 3, Kind: "augmented-lm", State: state,
		OptState: &optim.State{
			Kind: optim.KindAdam, Step: 17, LR: 0.0005,
			Buffers: testBuffers("m/w", "v/w"),
		},
		RNG: map[string][]byte{"orig.drop": {1, 2, 3}},
	}
	var buf bytes.Buffer
	if err := WriteTrainCheckpoint(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(buf.Bytes()[:4]); got != ckptMagicV3 {
		t.Fatalf("adam checkpoint wrote magic %#x, want AMC3", got)
	}
	ck, err := ReadTrainCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != 3 || ck.Kind != "augmented-lm" {
		t.Fatalf("epoch/kind mangled: %d %q", ck.Epoch, ck.Kind)
	}
	statesEqual(t, ck.OptState, in.OptState)
	if !bytes.Equal(ck.RNG["orig.drop"], []byte{1, 2, 3}) {
		t.Fatal("RNG section lost through the AMC3 layout")
	}
}

// TestTrainCheckpointSGDWritesAMC2Bytes pins the no-flag-day contract on
// disk: an SGD-momentum checkpoint written through the generalized writer
// is byte-identical to the historical AMC2 encoding, so pre-extension
// readers (and file hashes) see nothing change.
func TestTrainCheckpointSGDWritesAMC2Bytes(t *testing.T) {
	state := testBuffers("w", "b")
	vel := testBuffers("w", "b")
	rng := map[string][]byte{"orig.drop": {9, 8}}
	ck := &TrainCheckpoint{
		Epoch: 5, Kind: "augmented-cv", State: state,
		OptState: &optim.State{Kind: optim.KindSGD, LR: 0.05, Buffers: vel},
		RNG:      rng,
	}
	var got bytes.Buffer
	if err := WriteTrainCheckpoint(&got, ck); err != nil {
		t.Fatal(err)
	}

	// The historical AMC2 layout, written by hand.
	var want bytes.Buffer
	if err := writeHeader(&want, ckptMagicV2); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(&want, binary.LittleEndian, uint32(5)); err != nil {
		t.Fatal(err)
	}
	if err := writeString(&want, "augmented-cv"); err != nil {
		t.Fatal(err)
	}
	want.WriteByte(1) // hasOpt
	if err := WriteStateDict(&want, state); err != nil {
		t.Fatal(err)
	}
	if err := WriteStateDict(&want, vel); err != nil {
		t.Fatal(err)
	}
	want.WriteByte(1) // RNG flag
	if err := WriteBytesDict(&want, rng); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("SGD-momentum checkpoint no longer byte-identical to the AMC2 layout")
	}
}
