package serialize

import (
	"bytes"
	"strings"
	"testing"

	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

func TestTensorRoundtrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	shapes := [][]int{{1}, {7}, {3, 4}, {2, 3, 4, 5}}
	for _, shape := range shapes {
		x := tensor.New(shape...)
		rng.FillNormal(x, 0, 3)
		var buf bytes.Buffer
		if err := WriteTensor(&buf, x); err != nil {
			t.Fatal(err)
		}
		y, err := ReadTensor(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !x.Equal(y) {
			t.Fatalf("roundtrip lost data for shape %v", shape)
		}
	}
}

func TestTensorBadMagic(t *testing.T) {
	if _, err := ReadTensor(bytes.NewReader([]byte{0, 1, 2, 3, 4, 5, 6, 7})); err == nil {
		t.Fatal("garbage input should fail")
	}
}

func TestTensorTruncated(t *testing.T) {
	x := tensor.Ones(4, 4)
	var buf bytes.Buffer
	if err := WriteTensor(&buf, x); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadTensor(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated payload should fail")
	}
}

func TestStateDictRoundtrip(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := nn.NewLinear(rng, 6, 3)
	dict := nn.StateDict(l)
	var buf bytes.Buffer
	if err := WriteStateDict(&buf, dict); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStateDict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(dict) {
		t.Fatalf("entry count %d vs %d", len(got), len(dict))
	}
	for name, src := range dict {
		if !got[name].Equal(src) {
			t.Fatalf("entry %q corrupted", name)
		}
	}
}

func TestStateDictDeterministicBytes(t *testing.T) {
	dict := map[string]*tensor.Tensor{
		"b": tensor.Ones(2),
		"a": tensor.Ones(3),
		"c": tensor.Ones(1),
	}
	var b1, b2 bytes.Buffer
	if err := WriteStateDict(&b1, dict); err != nil {
		t.Fatal(err)
	}
	if err := WriteStateDict(&b2, dict); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("state dict encoding must be byte-deterministic")
	}
}

func TestIntSliceRoundtrip(t *testing.T) {
	s := []int{0, -5, 1 << 40, 42}
	var buf bytes.Buffer
	if err := WriteIntSlice(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIntSlice(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("int slice roundtrip: %v vs %v", got, s)
		}
	}
}

func TestLongNameRejected(t *testing.T) {
	dict := map[string]*tensor.Tensor{strings.Repeat("x", 5000): tensor.Ones(1)}
	var buf bytes.Buffer
	if err := WriteStateDict(&buf, dict); err == nil {
		t.Fatal("oversized name should be rejected")
	}
}
