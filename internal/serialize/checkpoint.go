package serialize

import (
	"fmt"
	"os"

	"amalgam/internal/nn"
)

// SaveModel writes a model's full state dict (parameters plus batch-norm
// running statistics) to path atomically (write-then-rename), so a crash
// mid-save never leaves a truncated checkpoint.
func SaveModel(path string, m interface{ Params() []nn.Param }) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serialize: create checkpoint: %w", err)
	}
	dict := nn.StateDict(m)
	if err := WriteStateDict(f, dict); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serialize: write checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadModel reads a checkpoint into an already-constructed model with the
// same architecture. Missing or mis-shaped entries fail the load without
// partially mutating the model — values are staged first.
func LoadModel(path string, m interface{ Params() []nn.Param }) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("serialize: open checkpoint: %w", err)
	}
	defer f.Close()
	dict, err := ReadStateDict(f)
	if err != nil {
		return fmt.Errorf("serialize: read checkpoint: %w", err)
	}
	// Validate everything before touching the model.
	for _, p := range m.Params() {
		src, ok := dict[p.Name]
		if !ok {
			return fmt.Errorf("serialize: checkpoint missing %q", p.Name)
		}
		if !src.SameShape(p.Node.Val) {
			return fmt.Errorf("serialize: checkpoint shape mismatch for %q", p.Name)
		}
	}
	return nn.LoadStateDict(m, dict)
}
