package serialize

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"amalgam/internal/nn"
	"amalgam/internal/optim"
	"amalgam/internal/tensor"
)

// SaveModel writes a model's full state dict (parameters plus batch-norm
// running statistics) to path atomically (write-then-rename), so a crash
// mid-save never leaves a truncated checkpoint.
func SaveModel(path string, m interface{ Params() []nn.Param }) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serialize: create checkpoint: %w", err)
	}
	dict := nn.StateDict(m)
	if err := WriteStateDict(f, dict); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serialize: write checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadModel reads a checkpoint into an already-constructed model with the
// same architecture. Missing or mis-shaped entries fail the load without
// partially mutating the model — values are staged first.
func LoadModel(path string, m interface{ Params() []nn.Param }) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("serialize: open checkpoint: %w", err)
	}
	defer f.Close()
	dict, err := ReadStateDict(f)
	if err != nil {
		return fmt.Errorf("serialize: read checkpoint: %w", err)
	}
	// Validate everything before touching the model.
	for _, p := range m.Params() {
		src, ok := dict[p.Name]
		if !ok {
			return fmt.Errorf("serialize: checkpoint missing %q", p.Name)
		}
		if !src.SameShape(p.Node.Val) {
			return fmt.Errorf("serialize: checkpoint shape mismatch for %q", p.Name)
		}
	}
	return nn.LoadStateDict(m, dict)
}

// Training-checkpoint magics: a resumable snapshot pairing a state dict
// with the number of fully completed epochs. Trainers write one mid-job
// (every N epochs, and on cancellation) so an interrupted cloud job can
// be resumed from the last epoch boundary.
//
// AMC1 (legacy) is epoch + model state dict. AMC2 adds the job's spec
// kind (so a checkpoint can be matched against the job it is loaded
// into) and the optimiser state dict (SGD momentum buffers), which is
// what makes a resumed run with Momentum > 0 bit-identical to an
// uninterrupted one. AMC3 generalizes the optimiser section: it names
// the optimiser kind and carries scalar state (the step counter, the
// capture-time LR) ahead of the named buffers, so Adam's bias-correction
// counter survives a resume. The writer only reaches for AMC3 when the
// state actually needs it (OptState.LegacySGD is false): SGD-momentum
// jobs keep producing byte-identical AMC2 files, and AMC1/AMC2 files
// remain loadable forever.
const (
	ckptMagicV1 = 0x414d4331 // "AMC1"
	ckptMagicV2 = 0x414d4332 // "AMC2"
	ckptMagicV3 = 0x414d4333 // "AMC3"
)

// TrainCheckpoint is a resumable training snapshot.
type TrainCheckpoint struct {
	// Epoch counts fully completed epochs (the resume point).
	Epoch int
	// Kind is the job's wire spec kind ("augmented-cv", "augmented-text",
	// "augmented-lm", ...). Empty for legacy AMC1 files.
	Kind string
	// State is the full (augmented-model) state dict.
	State map[string]*tensor.Tensor
	// OptState holds the optimiser's resume state: named buffers (SGD
	// momentum, Adam moments) plus scalar counters. Nil when the run had
	// no optimiser state or the file predates AMC2. States decoded from
	// AMC2 files surface with Kind "sgd" and Step 0 — the only shape that
	// format could carry.
	OptState *optim.State
	// RNG holds per-layer random-stream cursors (dropout PCG state) keyed
	// by stream name ("orig.drop", "orig.block0.drop", ...). It is an
	// optional trailing AMC2 section: files written before it existed
	// still load (RNG nil), and old readers ignore the extra bytes. With
	// it, a resumed Dropout > 0 run replays masks from the interruption
	// point — the last piece of the bit-identical-resume contract.
	RNG map[string][]byte
}

// WriteTrainCheckpoint encodes a training checkpoint: header, completed
// epoch count, spec kind, optimiser scalars (AMC3 only), model state
// dict, and — when present — the optimiser buffer dict. SGD-expressible
// states take the AMC2 layout byte-for-byte; anything carrying a step
// counter or a non-SGD kind needs AMC3.
func WriteTrainCheckpoint(w io.Writer, ck *TrainCheckpoint) error {
	if ck.Epoch < 0 {
		return fmt.Errorf("serialize: checkpoint epoch must be ≥ 0, got %d", ck.Epoch)
	}
	magic := uint32(ckptMagicV2)
	if !ck.OptState.LegacySGD() {
		magic = ckptMagicV3
	}
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(ck.Epoch)); err != nil {
		return err
	}
	if err := writeString(bw, ck.Kind); err != nil {
		return err
	}
	// AMC3 always carries the optimiser section (scalars matter even with
	// no buffers yet); AMC2 keeps the historical buffers-only condition.
	hasOpt := uint8(0)
	if magic == ckptMagicV3 || ck.OptState.NumBuffers() > 0 {
		hasOpt = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, hasOpt); err != nil {
		return err
	}
	if magic == ckptMagicV3 {
		if err := writeString(bw, ck.OptState.Kind); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(ck.OptState.Step)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(ck.OptState.LR)); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := WriteStateDict(w, ck.State); err != nil {
		return err
	}
	if hasOpt == 1 {
		if err := WriteStateDict(w, ck.OptState.Buffers); err != nil {
			return err
		}
	}
	// Optional trailing RNG section: a flag byte then a bytes dict. Old
	// readers stop before it (trailing bytes are never read); new readers
	// treat EOF at the flag as a file without the section.
	if len(ck.RNG) == 0 {
		_, err := w.Write([]byte{0})
		return err
	}
	if _, err := w.Write([]byte{1}); err != nil {
		return err
	}
	return WriteBytesDict(w, ck.RNG)
}

// ReadTrainCheckpoint decodes an AMC3, AMC2, or legacy AMC1 checkpoint
// (AMC1: Kind empty, OptState nil; AMC2: OptState surfaces as an SGD
// state with Step 0).
func ReadTrainCheckpoint(r io.Reader) (*TrainCheckpoint, error) {
	// One buffered reader for the whole stream: the dict sections are
	// decoded with the non-wrapping reader so the model dict cannot
	// read ahead into the optimiser dict.
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("serialize: read magic: %w", err)
	}
	if magic != ckptMagicV1 && magic != ckptMagicV2 && magic != ckptMagicV3 {
		return nil, fmt.Errorf("serialize: bad magic %#x, want %#x, %#x or %#x: %w",
			magic, ckptMagicV1, ckptMagicV2, ckptMagicV3, ErrWrongFormat)
	}
	var v uint16
	if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
		return nil, fmt.Errorf("serialize: read version: %w", err)
	}
	if v != version {
		return nil, fmt.Errorf("serialize: unsupported version %d", v)
	}
	ck := &TrainCheckpoint{}
	var e uint32
	if err := binary.Read(br, binary.LittleEndian, &e); err != nil {
		return nil, fmt.Errorf("serialize: read checkpoint epoch: %w", err)
	}
	ck.Epoch = int(e)
	hasOpt := uint8(0)
	var opt *optim.State
	if magic != ckptMagicV1 {
		kind, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("serialize: read checkpoint kind: %w", err)
		}
		ck.Kind = kind
		if err := binary.Read(br, binary.LittleEndian, &hasOpt); err != nil {
			return nil, fmt.Errorf("serialize: read checkpoint flags: %w", err)
		}
	}
	if hasOpt == 1 {
		// AMC2 could only ever hold SGD momentum buffers; AMC3 names the
		// kind and carries the scalars explicitly.
		opt = &optim.State{Kind: optim.KindSGD}
		if magic == ckptMagicV3 {
			kind, err := readString(br)
			if err != nil {
				return nil, fmt.Errorf("serialize: read optimiser kind: %w", err)
			}
			var step, lrBits uint64
			if err := binary.Read(br, binary.LittleEndian, &step); err != nil {
				return nil, fmt.Errorf("serialize: read optimiser step: %w", err)
			}
			if err := binary.Read(br, binary.LittleEndian, &lrBits); err != nil {
				return nil, fmt.Errorf("serialize: read optimiser lr: %w", err)
			}
			opt = &optim.State{Kind: kind, Step: int(step), LR: math.Float64frombits(lrBits)}
		}
	}
	state, err := readStateDictFrom(br)
	if err != nil {
		return nil, err
	}
	ck.State = state
	if hasOpt == 1 {
		buffers, err := readStateDictFrom(br)
		if err != nil {
			return nil, fmt.Errorf("serialize: optimiser state: %w", err)
		}
		opt.Buffers = buffers
		ck.OptState = opt
	}
	if magic != ckptMagicV1 {
		// Optional trailing RNG section; EOF here means the file predates
		// it (written before cursors were checkpointed) and is fine.
		flag, err := br.ReadByte()
		switch {
		case err == io.EOF:
			return ck, nil
		case err != nil:
			return nil, fmt.Errorf("serialize: read RNG flag: %w", err)
		case flag == 1:
			rng, err := readBytesDictFrom(br)
			if err != nil {
				return nil, fmt.Errorf("serialize: RNG state: %w", err)
			}
			ck.RNG = rng
		case flag != 0:
			return nil, fmt.Errorf("serialize: bad RNG flag %d", flag)
		}
	}
	return ck, nil
}

// SaveTrainCheckpoint writes a checkpoint to path atomically
// (write-then-rename), like SaveModel.
func SaveTrainCheckpoint(path string, ck *TrainCheckpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serialize: create checkpoint: %w", err)
	}
	if err := WriteTrainCheckpoint(f, ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serialize: write checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadTrainCheckpoint reads a checkpoint from path.
func LoadTrainCheckpoint(path string) (*TrainCheckpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrainCheckpoint(f)
}
