package serialize

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// SaveModel writes a model's full state dict (parameters plus batch-norm
// running statistics) to path atomically (write-then-rename), so a crash
// mid-save never leaves a truncated checkpoint.
func SaveModel(path string, m interface{ Params() []nn.Param }) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serialize: create checkpoint: %w", err)
	}
	dict := nn.StateDict(m)
	if err := WriteStateDict(f, dict); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serialize: write checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadModel reads a checkpoint into an already-constructed model with the
// same architecture. Missing or mis-shaped entries fail the load without
// partially mutating the model — values are staged first.
func LoadModel(path string, m interface{ Params() []nn.Param }) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("serialize: open checkpoint: %w", err)
	}
	defer f.Close()
	dict, err := ReadStateDict(f)
	if err != nil {
		return fmt.Errorf("serialize: read checkpoint: %w", err)
	}
	// Validate everything before touching the model.
	for _, p := range m.Params() {
		src, ok := dict[p.Name]
		if !ok {
			return fmt.Errorf("serialize: checkpoint missing %q", p.Name)
		}
		if !src.SameShape(p.Node.Val) {
			return fmt.Errorf("serialize: checkpoint shape mismatch for %q", p.Name)
		}
	}
	return nn.LoadStateDict(m, dict)
}

// ckptMagic heads a training checkpoint: a resumable snapshot pairing a
// state dict with the number of fully completed epochs. Trainers write one
// mid-job (every N epochs, and on cancellation) so an interrupted cloud
// job can be resumed from the last epoch boundary.
const ckptMagic = 0x414d4331 // "AMC1"

// WriteTrainCheckpoint encodes a training checkpoint: header, completed
// epoch count, then the full (augmented-model) state dict.
func WriteTrainCheckpoint(w io.Writer, epoch int, dict map[string]*tensor.Tensor) error {
	if epoch < 0 {
		return fmt.Errorf("serialize: checkpoint epoch must be ≥ 0, got %d", epoch)
	}
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, ckptMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(epoch)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return WriteStateDict(w, dict)
}

// ReadTrainCheckpoint decodes a checkpoint written by WriteTrainCheckpoint.
func ReadTrainCheckpoint(r io.Reader) (epoch int, dict map[string]*tensor.Tensor, err error) {
	if err := readHeader(r, ckptMagic); err != nil {
		return 0, nil, err
	}
	var e uint32
	if err := binary.Read(r, binary.LittleEndian, &e); err != nil {
		return 0, nil, fmt.Errorf("serialize: read checkpoint epoch: %w", err)
	}
	dict, err = ReadStateDict(r)
	if err != nil {
		return 0, nil, err
	}
	return int(e), dict, nil
}

// SaveTrainCheckpoint writes a checkpoint to path atomically
// (write-then-rename), like SaveModel.
func SaveTrainCheckpoint(path string, epoch int, dict map[string]*tensor.Tensor) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serialize: create checkpoint: %w", err)
	}
	if err := WriteTrainCheckpoint(f, epoch, dict); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serialize: write checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadTrainCheckpoint reads a checkpoint from path.
func LoadTrainCheckpoint(path string) (epoch int, dict map[string]*tensor.Tensor, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	return ReadTrainCheckpoint(f)
}
