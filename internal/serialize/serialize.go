// Package serialize defines the binary wire/disk formats for the artifacts
// Amalgam ships to and from the cloud: tensors, state dicts, datasets, and
// augmentation keys. The real prototype ships TorchScript modules and
// PyTorch tensor files; our formats play the same role (self-contained,
// name-anonymisable, versioned).
//
// All integers are little-endian. Every stream starts with a 4-byte magic
// and a format version so decoders fail fast on foreign input.
package serialize

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"amalgam/internal/tensor"
)

// ErrWrongFormat marks a stream whose magic identifies a DIFFERENT
// serialize format (e.g. a state dict offered to the checkpoint reader).
// Callers that probe a file against several formats match on it with
// errors.Is; any other decode error means the stream claims to be the
// right format but is corrupt, and must not be silently retried as
// something else.
var ErrWrongFormat = errors.New("serialize: wrong format")

const (
	tensorMagic  = 0x414d5431 // "AMT1"
	dictMagic    = 0x414d4431 // "AMD1"
	bytesMagic   = 0x414d4231 // "AMB1"
	version      = 1
	maxDims      = 8
	maxNameLen   = 1 << 12
	maxElements  = 1 << 31
	maxDictSize  = 1 << 20
	maxBytesItem = 1 << 16
)

// WriteTensor encodes t.
func WriteTensor(w io.Writer, t *tensor.Tensor) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, tensorMagic); err != nil {
		return err
	}
	if err := writeTensorBody(bw, t); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTensor decodes a tensor written by WriteTensor.
func ReadTensor(r io.Reader) (*tensor.Tensor, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, tensorMagic); err != nil {
		return nil, err
	}
	return readTensorBody(br)
}

func writeHeader(w io.Writer, magic uint32) error {
	if err := binary.Write(w, binary.LittleEndian, magic); err != nil {
		return fmt.Errorf("serialize: write magic: %w", err)
	}
	return binary.Write(w, binary.LittleEndian, uint16(version))
}

func readHeader(r io.Reader, magic uint32) error {
	var m uint32
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
		return fmt.Errorf("serialize: read magic: %w", err)
	}
	if m != magic {
		return fmt.Errorf("serialize: bad magic %#x, want %#x: %w", m, magic, ErrWrongFormat)
	}
	var v uint16
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return fmt.Errorf("serialize: read version: %w", err)
	}
	if v != version {
		return fmt.Errorf("serialize: unsupported version %d", v)
	}
	return nil
}

func writeTensorBody(w io.Writer, t *tensor.Tensor) error {
	shape := t.Shape()
	if len(shape) > maxDims {
		return fmt.Errorf("serialize: tensor rank %d exceeds %d", len(shape), maxDims)
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(len(shape))); err != nil {
		return err
	}
	for _, d := range shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	buf := make([]byte, 4*len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readTensorBody(r io.Reader) (*tensor.Tensor, error) {
	var rank uint8
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return nil, fmt.Errorf("serialize: read rank: %w", err)
	}
	if rank > maxDims {
		return nil, fmt.Errorf("serialize: tensor rank %d exceeds %d", rank, maxDims)
	}
	shape := make([]int, rank)
	n := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return nil, fmt.Errorf("serialize: read dim: %w", err)
		}
		shape[i] = int(d)
		n *= int(d)
	}
	if n < 0 || n > maxElements {
		return nil, fmt.Errorf("serialize: tensor with %d elements rejected", n)
	}
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("serialize: read payload: %w", err)
	}
	out := tensor.New(shape...)
	for i := range out.Data {
		out.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

// WriteStateDict encodes a name→tensor map with deterministic (sorted)
// entry order so byte output is reproducible.
func WriteStateDict(w io.Writer, dict map[string]*tensor.Tensor) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, dictMagic); err != nil {
		return err
	}
	names := sortedKeys(dict)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		if err := writeString(bw, name); err != nil {
			return err
		}
		if err := writeTensorBody(bw, dict[name]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadStateDict decodes a map written by WriteStateDict.
func ReadStateDict(r io.Reader) (map[string]*tensor.Tensor, error) {
	return readStateDictFrom(bufio.NewReader(r))
}

// readStateDictFrom decodes a state dict without adding its own
// buffering, reading exactly the dict's bytes — callers that decode
// several sections from one stream (the AMC2 checkpoint reader) share a
// single buffered reader across sections instead of letting a nested
// bufio.Reader read ahead past the section boundary.
func readStateDictFrom(r io.Reader) (map[string]*tensor.Tensor, error) {
	if err := readHeader(r, dictMagic); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxDictSize {
		return nil, fmt.Errorf("serialize: dict with %d entries rejected", n)
	}
	out := make(map[string]*tensor.Tensor, n)
	for i := uint32(0); i < n; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		t, err := readTensorBody(r)
		if err != nil {
			return nil, fmt.Errorf("serialize: entry %q: %w", name, err)
		}
		out[name] = t
	}
	return out, nil
}

// WriteBytesDict encodes a name→opaque-bytes map (RNG stream cursors) in
// deterministic sorted order. The layout parallels the state dict: magic,
// version, count, then (name, length-prefixed bytes) entries.
func WriteBytesDict(w io.Writer, dict map[string][]byte) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, bytesMagic); err != nil {
		return err
	}
	names := make([]string, 0, len(dict))
	//amalgam:allow detcheck keys are collected then sorted below; wire order never sees map order
	for k := range dict {
		names = append(names, k)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		if err := writeString(bw, name); err != nil {
			return err
		}
		b := dict[name]
		if len(b) > maxBytesItem {
			return fmt.Errorf("serialize: bytes entry %q length %d exceeds %d", name, len(b), maxBytesItem)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(b))); err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBytesDict decodes a map written by WriteBytesDict.
func ReadBytesDict(r io.Reader) (map[string][]byte, error) {
	return readBytesDictFrom(bufio.NewReader(r))
}

// readBytesDictFrom decodes a bytes dict without adding buffering — like
// readStateDictFrom, for callers decoding several sections from one
// buffered stream.
func readBytesDictFrom(r io.Reader) (map[string][]byte, error) {
	if err := readHeader(r, bytesMagic); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxDictSize {
		return nil, fmt.Errorf("serialize: bytes dict with %d entries rejected", n)
	}
	out := make(map[string][]byte, n)
	for i := uint32(0); i < n; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		var ln uint32
		if err := binary.Read(r, binary.LittleEndian, &ln); err != nil {
			return nil, err
		}
		if ln > maxBytesItem {
			return nil, fmt.Errorf("serialize: bytes entry %q length %d rejected", name, ln)
		}
		b := make([]byte, ln)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("serialize: entry %q: %w", name, err)
		}
		out[name] = b
	}
	return out, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > maxNameLen {
		return fmt.Errorf("serialize: string length %d exceeds %d", len(s), maxNameLen)
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteIntSlice encodes a []int (augmentation-key index lists).
func WriteIntSlice(w io.Writer, s []int) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	for _, v := range s {
		if err := binary.Write(w, binary.LittleEndian, int64(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadIntSlice decodes a slice written by WriteIntSlice.
func ReadIntSlice(r io.Reader) ([]int, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxElements {
		return nil, fmt.Errorf("serialize: int slice with %d entries rejected", n)
	}
	out := make([]int, n)
	for i := range out {
		var v int64
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

func sortedKeys(m map[string]*tensor.Tensor) []string {
	keys := make([]string, 0, len(m))
	//amalgam:allow detcheck keys are collected then sorted below; callers never see map order
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
