package serialize

import (
	"os"
	"path/filepath"
	"testing"

	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

func TestSaveLoadModelRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lenet.amd")
	cfg := models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3}
	a := models.NewLeNet5(tensor.NewRNG(1), cfg)
	if err := SaveModel(path, a); err != nil {
		t.Fatal(err)
	}
	b := models.NewLeNet5(tensor.NewRNG(2), cfg) // different init
	if err := LoadModel(path, b); err != nil {
		t.Fatal(err)
	}
	da, db := nn.StateDict(a), nn.StateDict(b)
	for name, src := range da {
		if !db[name].Equal(src) {
			t.Fatalf("entry %q not restored", name)
		}
	}
}

func TestLoadModelArchitectureMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.amd")
	small := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})
	if err := SaveModel(path, small); err != nil {
		t.Fatal(err)
	}
	big := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 3, InH: 12, InW: 12, Classes: 3})
	before := big.Conv1.W.Val.Clone()
	if err := LoadModel(path, big); err == nil {
		t.Fatal("architecture mismatch should fail")
	}
	// And must not have partially mutated the model.
	if !big.Conv1.W.Val.Equal(before) {
		t.Fatal("failed load must not mutate the model")
	}
}

func TestSaveModelAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.amd")
	m := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file must not linger")
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	m := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})
	if err := LoadModel("/nonexistent/x.amd", m); err == nil {
		t.Fatal("missing checkpoint should error")
	}
}

func TestTrainCheckpointRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.amc")
	m := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})
	dict := nn.StateDict(m)
	if err := SaveTrainCheckpoint(path, 7, dict); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file must not linger")
	}
	epoch, got, err := LoadTrainCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 || len(got) != len(dict) {
		t.Fatalf("epoch=%d entries=%d, want 7/%d", epoch, len(got), len(dict))
	}
	for name, src := range dict {
		if !got[name].Equal(src) {
			t.Fatalf("entry %q not restored", name)
		}
	}
}

// TestTrainCheckpointRejectsForeignInput pins magic/format discrimination:
// a plain state-dict file is not a training checkpoint and vice versa.
func TestTrainCheckpointRejectsForeignInput(t *testing.T) {
	dir := t.TempDir()
	m := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})

	dictPath := filepath.Join(dir, "m.amd")
	if err := SaveModel(dictPath, m); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadTrainCheckpoint(dictPath); err == nil {
		t.Fatal("state dict should not load as a training checkpoint")
	}

	ckptPath := filepath.Join(dir, "m.amc")
	if err := SaveTrainCheckpoint(ckptPath, 1, nn.StateDict(m)); err != nil {
		t.Fatal(err)
	}
	if err := LoadModel(ckptPath, m); err == nil {
		t.Fatal("training checkpoint should not load as a bare state dict")
	}
}

func TestTrainCheckpointNegativeEpoch(t *testing.T) {
	if err := SaveTrainCheckpoint(filepath.Join(t.TempDir(), "x.amc"), -1, nil); err == nil {
		t.Fatal("negative epoch should error")
	}
}
