package serialize

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/optim"
	"amalgam/internal/tensor"
)

func TestSaveLoadModelRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lenet.amd")
	cfg := models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3}
	a := models.NewLeNet5(tensor.NewRNG(1), cfg)
	if err := SaveModel(path, a); err != nil {
		t.Fatal(err)
	}
	b := models.NewLeNet5(tensor.NewRNG(2), cfg) // different init
	if err := LoadModel(path, b); err != nil {
		t.Fatal(err)
	}
	da, db := nn.StateDict(a), nn.StateDict(b)
	for name, src := range da {
		if !db[name].Equal(src) {
			t.Fatalf("entry %q not restored", name)
		}
	}
}

func TestLoadModelArchitectureMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.amd")
	small := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})
	if err := SaveModel(path, small); err != nil {
		t.Fatal(err)
	}
	big := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 3, InH: 12, InW: 12, Classes: 3})
	before := big.Conv1.W.Val.Clone()
	if err := LoadModel(path, big); err == nil {
		t.Fatal("architecture mismatch should fail")
	}
	// And must not have partially mutated the model.
	if !big.Conv1.W.Val.Equal(before) {
		t.Fatal("failed load must not mutate the model")
	}
}

func TestSaveModelAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.amd")
	m := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file must not linger")
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	m := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})
	if err := LoadModel("/nonexistent/x.amd", m); err == nil {
		t.Fatal("missing checkpoint should error")
	}
}

func TestTrainCheckpointRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.amc")
	m := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})
	dict := nn.StateDict(m)
	vel := map[string]*tensor.Tensor{}
	for name, src := range dict {
		v := tensor.New(src.Shape()...)
		tensor.NewRNG(9).FillUniform(v, -1, 1)
		vel[name] = v
	}
	opt := &optim.State{Kind: optim.KindSGD, LR: 0.05, Buffers: vel}
	in := &TrainCheckpoint{Epoch: 7, Kind: "augmented-cv", State: dict, OptState: opt}
	if err := SaveTrainCheckpoint(path, in); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file must not linger")
	}
	ck, err := LoadTrainCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != 7 || ck.Kind != "augmented-cv" || len(ck.State) != len(dict) || ck.OptState.NumBuffers() != len(vel) {
		t.Fatalf("round trip mangled the checkpoint: %d %q %d/%d", ck.Epoch, ck.Kind, len(ck.State), ck.OptState.NumBuffers())
	}
	if ck.OptState.Kind != optim.KindSGD || ck.OptState.Step != 0 {
		t.Fatalf("SGD optimiser state mangled: kind %q step %d", ck.OptState.Kind, ck.OptState.Step)
	}
	for name, src := range dict {
		if !ck.State[name].Equal(src) {
			t.Fatalf("entry %q not restored", name)
		}
	}
	for name, src := range vel {
		if !ck.OptState.Buffers[name].Equal(src) {
			t.Fatalf("optimiser entry %q not restored", name)
		}
	}
}

// TestTrainCheckpointNoOptState pins the momentum-free layout: no
// optimiser dict on disk, nil OptState back.
func TestTrainCheckpointNoOptState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.amc")
	m := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})
	in := &TrainCheckpoint{Epoch: 2, Kind: "augmented-text", State: nn.StateDict(m)}
	if err := SaveTrainCheckpoint(path, in); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadTrainCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.OptState != nil {
		t.Fatalf("momentum-free checkpoint returned %d optimiser entries", ck.OptState.NumBuffers())
	}
	if ck.Epoch != 2 || ck.Kind != "augmented-text" {
		t.Fatalf("epoch/kind mangled: %d %q", ck.Epoch, ck.Kind)
	}
}

// TestTrainCheckpointReadsLegacyAMC1 pins backwards compatibility: a
// checkpoint in the PR 3 layout (AMC1: epoch + state dict, no kind, no
// optimiser state) still loads, surfacing an empty Kind and nil OptState.
func TestTrainCheckpointReadsLegacyAMC1(t *testing.T) {
	m := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})
	dict := nn.StateDict(m)
	var buf bytes.Buffer
	if err := writeHeader(&buf, ckptMagicV1); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint32(5)); err != nil {
		t.Fatal(err)
	}
	if err := WriteStateDict(&buf, dict); err != nil {
		t.Fatal(err)
	}
	ck, err := ReadTrainCheckpoint(&buf)
	if err != nil {
		t.Fatalf("legacy AMC1 checkpoint no longer loads: %v", err)
	}
	if ck.Epoch != 5 || ck.Kind != "" || ck.OptState != nil {
		t.Fatalf("legacy read got epoch=%d kind=%q optState=%v", ck.Epoch, ck.Kind, ck.OptState)
	}
	for name, src := range dict {
		if !ck.State[name].Equal(src) {
			t.Fatalf("legacy entry %q not restored", name)
		}
	}
}

// TestTrainCheckpointRejectsForeignInput pins magic/format discrimination:
// a plain state-dict file is not a training checkpoint and vice versa.
func TestTrainCheckpointRejectsForeignInput(t *testing.T) {
	dir := t.TempDir()
	m := models.NewLeNet5(tensor.NewRNG(1), models.CVConfig{InC: 1, InH: 12, InW: 12, Classes: 3})

	dictPath := filepath.Join(dir, "m.amd")
	if err := SaveModel(dictPath, m); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrainCheckpoint(dictPath); err == nil {
		t.Fatal("state dict should not load as a training checkpoint")
	}

	ckptPath := filepath.Join(dir, "m.amc")
	if err := SaveTrainCheckpoint(ckptPath, &TrainCheckpoint{Epoch: 1, State: nn.StateDict(m)}); err != nil {
		t.Fatal(err)
	}
	if err := LoadModel(ckptPath, m); err == nil {
		t.Fatal("training checkpoint should not load as a bare state dict")
	}
}

func TestTrainCheckpointNegativeEpoch(t *testing.T) {
	if err := SaveTrainCheckpoint(filepath.Join(t.TempDir(), "x.amc"), &TrainCheckpoint{Epoch: -1}); err == nil {
		t.Fatal("negative epoch should error")
	}
}
