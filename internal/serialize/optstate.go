package serialize

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"amalgam/internal/optim"
	"amalgam/internal/tensor"
)

// optStateMagic ("AMO1") frames a generalized optimiser state: kind, step
// counter, capture-time LR, then the named buffer dict. The legacy wire
// encoding for optimiser state was a bare AMD1 state dict (SGD momentum
// buffers, the only optimiser the protocol knew); WriteOptState keeps
// emitting exactly those bytes for SGD-expressible states, and
// ReadOptState sniffs the leading magic so either encoding decodes — the
// same no-flag-day discipline as the AMC2/AMC3 checkpoint split.
const optStateMagic = 0x414d4f31 // "AMO1"

// WriteOptState encodes an optimiser state for the wire. States
// expressible in the legacy layout (LegacySGD: no step counter, SGD or
// unset kind) are written as a bare state dict, byte-identical to the
// pre-generalization encoding; anything else gets the AMO1 framing.
func WriteOptState(w io.Writer, st *optim.State) error {
	if st.LegacySGD() {
		var buffers map[string]*tensor.Tensor
		if st != nil {
			buffers = st.Buffers
		}
		return WriteStateDict(w, buffers)
	}
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, optStateMagic); err != nil {
		return err
	}
	if err := writeString(bw, st.Kind); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(st.Step)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(st.LR)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return WriteStateDict(w, st.Buffers)
}

// ReadOptState decodes either optimiser-state encoding, sniffing the
// leading magic: a bare AMD1 dict surfaces as an SGD state (Kind "sgd",
// Step 0), an AMO1 stream decodes in full. Any other magic fails with
// ErrWrongFormat.
func ReadOptState(r io.Reader) (*optim.State, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("serialize: read optimiser-state magic: %w", err)
	}
	switch binary.LittleEndian.Uint32(head) {
	case dictMagic:
		buffers, err := readStateDictFrom(br)
		if err != nil {
			return nil, err
		}
		return &optim.State{Kind: optim.KindSGD, Buffers: buffers}, nil
	case optStateMagic:
		if err := readHeader(br, optStateMagic); err != nil {
			return nil, err
		}
		kind, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("serialize: read optimiser kind: %w", err)
		}
		var step, lrBits uint64
		if err := binary.Read(br, binary.LittleEndian, &step); err != nil {
			return nil, fmt.Errorf("serialize: read optimiser step: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, &lrBits); err != nil {
			return nil, fmt.Errorf("serialize: read optimiser lr: %w", err)
		}
		buffers, err := readStateDictFrom(br)
		if err != nil {
			return nil, err
		}
		return &optim.State{
			Kind: kind, Step: int(step), LR: math.Float64frombits(lrBits), Buffers: buffers,
		}, nil
	default:
		return nil, fmt.Errorf("serialize: bad optimiser-state magic %#x: %w",
			binary.LittleEndian.Uint32(head), ErrWrongFormat)
	}
}
