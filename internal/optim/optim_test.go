package optim

import (
	"math"
	"testing"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// quadratic builds a single-parameter problem: minimise (w - target)².
func quadratic(t *testing.T, opt func(params []nn.Param) Optimizer, steps int) float64 {
	t.Helper()
	w := autodiff.Leaf(tensor.FromSlice([]float32{5}, 1))
	params := []nn.Param{{Name: "w", Node: w}}
	o := opt(params)
	target := tensor.FromSlice([]float32{2}, 1)
	for i := 0; i < steps; i++ {
		w.ZeroGrad()
		loss := autodiff.MSE(autodiff.Scale(w, 1), target)
		autodiff.Backward(loss)
		o.Step()
	}
	return math.Abs(float64(w.Val.Data[0]) - 2)
}

func TestSGDConverges(t *testing.T) {
	gap := quadratic(t, func(p []nn.Param) Optimizer { return NewSGD(p, 0.1, 0, 0) }, 100)
	if gap > 1e-3 {
		t.Fatalf("SGD did not converge, gap %v", gap)
	}
}

func TestSGDMomentumConvergesFasterThanPlain(t *testing.T) {
	plain := quadratic(t, func(p []nn.Param) Optimizer { return NewSGD(p, 0.02, 0, 0) }, 40)
	mom := quadratic(t, func(p []nn.Param) Optimizer { return NewSGD(p, 0.02, 0.9, 0) }, 40)
	if mom >= plain {
		t.Fatalf("momentum (%v) should beat plain SGD (%v) on a quadratic", mom, plain)
	}
}

func TestAdamConverges(t *testing.T) {
	gap := quadratic(t, func(p []nn.Param) Optimizer { return NewAdam(p, 0.3) }, 200)
	if gap > 1e-2 {
		t.Fatalf("Adam did not converge, gap %v", gap)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	w := autodiff.Leaf(tensor.FromSlice([]float32{1}, 1))
	params := []nn.Param{{Name: "w", Node: w}}
	o := NewSGD(params, 0.1, 0, 0.5)
	// Zero gradient (but allocated): only decay acts.
	// One step: w ← w − lr·λ·w = 1 − 0.05.
	autodiff.Backward(autodiff.Mean(autodiff.Scale(w, 0)))
	w.ZeroGrad()
	o.Step()
	if got := w.Val.Data[0]; math.Abs(float64(got)-0.95) > 1e-6 {
		t.Fatalf("weight decay step = %v, want 0.95", got)
	}
}

func TestStepIgnoresNilGrads(t *testing.T) {
	w := autodiff.Leaf(tensor.FromSlice([]float32{1}, 1))
	params := []nn.Param{{Name: "w", Node: w}}
	NewSGD(params, 0.1, 0.9, 0).Step() // must not panic
	NewAdam(params, 0.1).Step()
	if w.Val.Data[0] != 1 {
		t.Fatal("step without grads should not move weights")
	}
}

func TestStepLRSchedule(t *testing.T) {
	w := autodiff.Leaf(tensor.FromSlice([]float32{1}, 1))
	o := NewSGD([]nn.Param{{Name: "w", Node: w}}, 1.0, 0, 0)
	sched := NewStepLR(o, 2, 0.1)
	lrs := []float64{}
	for e := 0; e < 5; e++ {
		lrs = append(lrs, o.LR())
		sched.EpochEnd()
	}
	want := []float64{1, 1, 0.1, 0.1, 0.01}
	for i := range want {
		if math.Abs(lrs[i]-want[i]) > 1e-12 {
			t.Fatalf("StepLR epoch %d lr = %v, want %v", i, lrs[i], want[i])
		}
	}
}

func TestSGDDeterministicAcrossRuns(t *testing.T) {
	run := func() float32 {
		rng := tensor.NewRNG(1)
		l := nn.NewLinear(rng, 4, 2)
		o := NewSGD(l.Params(), 0.05, 0.9, 1e-4)
		x := tensor.New(3, 4)
		rng.FillNormal(x, 0, 1)
		labels := []int{0, 1, 0}
		for i := 0; i < 10; i++ {
			nn.ZeroGrads(l)
			logits := l.Forward(autodiff.Constant(x))
			autodiff.Backward(autodiff.SoftmaxCrossEntropy(logits, labels))
			o.Step()
		}
		return l.W.Val.Data[0]
	}
	if run() != run() {
		t.Fatal("training is not deterministic")
	}
}
