package optim

import (
	"math"
	"testing"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// quadratic builds a single-parameter problem: minimise (w - target)².
func quadratic(t *testing.T, opt func(params []nn.Param) Optimizer, steps int) float64 {
	t.Helper()
	w := autodiff.Leaf(tensor.FromSlice([]float32{5}, 1))
	params := []nn.Param{{Name: "w", Node: w}}
	o := opt(params)
	target := tensor.FromSlice([]float32{2}, 1)
	for i := 0; i < steps; i++ {
		w.ZeroGrad()
		loss := autodiff.MSE(autodiff.Scale(w, 1), target)
		autodiff.Backward(loss)
		o.Step()
	}
	return math.Abs(float64(w.Val.Data[0]) - 2)
}

func TestSGDConverges(t *testing.T) {
	gap := quadratic(t, func(p []nn.Param) Optimizer { return NewSGD(p, 0.1, 0, 0) }, 100)
	if gap > 1e-3 {
		t.Fatalf("SGD did not converge, gap %v", gap)
	}
}

func TestSGDMomentumConvergesFasterThanPlain(t *testing.T) {
	plain := quadratic(t, func(p []nn.Param) Optimizer { return NewSGD(p, 0.02, 0, 0) }, 40)
	mom := quadratic(t, func(p []nn.Param) Optimizer { return NewSGD(p, 0.02, 0.9, 0) }, 40)
	if mom >= plain {
		t.Fatalf("momentum (%v) should beat plain SGD (%v) on a quadratic", mom, plain)
	}
}

func TestAdamConverges(t *testing.T) {
	gap := quadratic(t, func(p []nn.Param) Optimizer { return NewAdam(p, 0.3) }, 200)
	if gap > 1e-2 {
		t.Fatalf("Adam did not converge, gap %v", gap)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	w := autodiff.Leaf(tensor.FromSlice([]float32{1}, 1))
	params := []nn.Param{{Name: "w", Node: w}}
	o := NewSGD(params, 0.1, 0, 0.5)
	// Zero gradient (but allocated): only decay acts.
	// One step: w ← w − lr·λ·w = 1 − 0.05.
	autodiff.Backward(autodiff.Mean(autodiff.Scale(w, 0)))
	w.ZeroGrad()
	o.Step()
	if got := w.Val.Data[0]; math.Abs(float64(got)-0.95) > 1e-6 {
		t.Fatalf("weight decay step = %v, want 0.95", got)
	}
}

func TestStepIgnoresNilGrads(t *testing.T) {
	w := autodiff.Leaf(tensor.FromSlice([]float32{1}, 1))
	params := []nn.Param{{Name: "w", Node: w}}
	NewSGD(params, 0.1, 0.9, 0).Step() // must not panic
	NewAdam(params, 0.1).Step()
	if w.Val.Data[0] != 1 {
		t.Fatal("step without grads should not move weights")
	}
}

func TestStepLRSchedule(t *testing.T) {
	w := autodiff.Leaf(tensor.FromSlice([]float32{1}, 1))
	o := NewSGD([]nn.Param{{Name: "w", Node: w}}, 1.0, 0, 0)
	sched := NewStepLR(o, 2, 0.1)
	lrs := []float64{}
	for e := 0; e < 5; e++ {
		lrs = append(lrs, o.LR())
		sched.EpochEnd()
	}
	want := []float64{1, 1, 0.1, 0.1, 0.01}
	for i := range want {
		if math.Abs(lrs[i]-want[i]) > 1e-12 {
			t.Fatalf("StepLR epoch %d lr = %v, want %v", i, lrs[i], want[i])
		}
	}
}

func TestSGDDeterministicAcrossRuns(t *testing.T) {
	run := func() float32 {
		rng := tensor.NewRNG(1)
		l := nn.NewLinear(rng, 4, 2)
		o := NewSGD(l.Params(), 0.05, 0.9, 1e-4)
		x := tensor.New(3, 4)
		rng.FillNormal(x, 0, 1)
		labels := []int{0, 1, 0}
		for i := 0; i < 10; i++ {
			nn.ZeroGrads(l)
			logits := l.Forward(autodiff.Constant(x))
			autodiff.Backward(autodiff.SoftmaxCrossEntropy(logits, labels))
			o.Step()
		}
		return l.W.Val.Data[0]
	}
	if run() != run() {
		t.Fatal("training is not deterministic")
	}
}

// TestSGDStateDictResumeBitIdentical pins the momentum-checkpoint
// contract at the optimiser level: save the velocity after k steps, load
// it into a fresh optimiser over an identically-positioned model, and
// the continued trajectories coincide bit-for-bit.
func TestSGDStateDictResumeBitIdentical(t *testing.T) {
	build := func() (*nn.Linear, *tensor.Tensor) {
		rng := tensor.NewRNG(1)
		l := nn.NewLinear(rng, 4, 2)
		x := tensor.New(3, 4)
		rng.FillNormal(x, 0, 1)
		return l, x
	}
	step := func(l *nn.Linear, o *SGD, x *tensor.Tensor) {
		nn.ZeroGrads(l)
		logits := l.Forward(autodiff.Constant(x))
		autodiff.Backward(autodiff.SoftmaxCrossEntropy(logits, []int{0, 1, 0}))
		o.Step()
	}

	// Straight run: 10 steps.
	la, xa := build()
	oa := NewSGD(la.Params(), 0.05, 0.9, 1e-4)
	for i := 0; i < 10; i++ {
		step(la, oa, xa)
	}

	// Split run: 5 steps, serialise weights+velocity, rebuild, 5 more.
	lb, xb := build()
	ob := NewSGD(lb.Params(), 0.05, 0.9, 1e-4)
	for i := 0; i < 5; i++ {
		step(lb, ob, xb)
	}
	weights := nn.StateDict(lb)
	vel := ob.StateDict()
	if vel.NumBuffers() == 0 {
		t.Fatal("momentum run produced no velocity state")
	}
	if vel.Kind != KindSGD || vel.Step != 0 {
		t.Fatalf("SGD state should be kind %q with step 0, got kind %q step %d", KindSGD, vel.Kind, vel.Step)
	}

	lc, xc := build()
	if err := nn.LoadStateDict(lc, weights); err != nil {
		t.Fatal(err)
	}
	oc := NewSGD(lc.Params(), 0.05, 0.9, 1e-4)
	if err := oc.LoadStateDict(vel); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		step(lc, oc, xc)
	}

	da, dc := nn.StateDict(la), nn.StateDict(lc)
	for name, src := range da {
		if !dc[name].Equal(src) {
			t.Fatalf("resumed optimiser diverged at %q", name)
		}
	}

	// Without restoring velocity the trajectories must differ — the
	// regression this API closes.
	ld, xd := build()
	if err := nn.LoadStateDict(ld, weights); err != nil {
		t.Fatal(err)
	}
	od := NewSGD(ld.Params(), 0.05, 0.9, 1e-4)
	for i := 0; i < 5; i++ {
		step(ld, od, xd)
	}
	same := true
	for name, src := range da {
		if !nn.StateDict(ld)[name].Equal(src) {
			same = false
		}
	}
	if same {
		t.Fatal("zero-velocity resume unexpectedly matched the straight run; the test is vacuous")
	}
}

// TestSGDLoadStateDictRejectsForeignState pins the guard that catches a
// checkpoint from a different model: unknown names and mis-shaped
// buffers fail without mutating existing state.
func TestSGDLoadStateDictRejectsForeignState(t *testing.T) {
	l := nn.NewLinear(tensor.NewRNG(1), 4, 2)
	o := NewSGD(l.Params(), 0.05, 0.9, 0)
	if err := o.LoadStateDict(&State{Kind: KindSGD, Buffers: map[string]*tensor.Tensor{"nope": tensor.New(1)}}); err == nil {
		t.Fatal("unknown parameter name should fail the load")
	}
	var wName string
	for _, p := range l.Params() {
		wName = p.Name
		break
	}
	if err := o.LoadStateDict(&State{Kind: KindSGD, Buffers: map[string]*tensor.Tensor{wName: tensor.New(1, 1)}}); err == nil {
		t.Fatal("mis-shaped momentum buffer should fail the load")
	}
	if err := o.LoadStateDict(&State{Kind: KindAdam, Step: 3, Buffers: map[string]*tensor.Tensor{"m/" + wName: tensor.New(4, 2)}}); err == nil {
		t.Fatal("adam state loaded into an SGD optimiser should fail")
	}
}
