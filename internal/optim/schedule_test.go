package optim

import (
	"math"
	"testing"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

func schedOpt(lr float64) Optimizer {
	w := autodiff.Leaf(tensor.FromSlice([]float32{1}, 1))
	return NewSGD([]nn.Param{{Name: "w", Node: w}}, lr, 0, 0)
}

// TestCosineLRSchedule is the golden LR-decay table for the cosine
// schedule: half a cosine from base 1.0 to min 0.1 over 4 epochs, then
// clamped to the floor.
func TestCosineLRSchedule(t *testing.T) {
	o := schedOpt(1.0)
	sched := NewCosineLR(o, 4, 0.1)
	var lrs []float64
	for e := 0; e < 7; e++ {
		lrs = append(lrs, o.LR())
		sched.EpochEnd()
	}
	want := []float64{
		1.0,                // e=0: full base rate
		0.8681980515339464, // e=1: 0.1 + 0.45·(1+cos(π/4))
		0.55,               // e=2: midpoint
		0.2318019484660537, // e=3: 0.1 + 0.45·(1−cos(π/4))
		0.1,                // e=4: floor reached
		0.1,                // e=5: clamped
		0.1,                // e=6: clamped
	}
	for i := range want {
		if math.Abs(lrs[i]-want[i]) > 1e-12 {
			t.Fatalf("CosineLR epoch %d lr = %v, want %v", i, lrs[i], want[i])
		}
	}
}

// TestSetEpochMatchesEpochEnds pins the resume contract for both
// schedules: SetEpoch(k) must leave the optimiser at exactly the rate k
// EpochEnd calls produce — bit-equal, since resumed runs rely on it.
func TestSetEpochMatchesEpochEnds(t *testing.T) {
	builders := map[string]func(Optimizer) Schedule{
		"step":   func(o Optimizer) Schedule { return NewStepLR(o, 2, 0.1) },
		"cosine": func(o Optimizer) Schedule { return NewCosineLR(o, 5, 0.01) },
	}
	for name, build := range builders {
		for k := 0; k <= 8; k++ {
			oa := schedOpt(1.0)
			sa := build(oa)
			for i := 0; i < k; i++ {
				sa.EpochEnd()
			}
			ob := schedOpt(1.0)
			sb := build(ob)
			sb.SetEpoch(k)
			if oa.LR() != ob.LR() {
				t.Fatalf("%s: SetEpoch(%d) lr %v != %d EpochEnds lr %v", name, k, ob.LR(), k, oa.LR())
			}
		}
	}
}
