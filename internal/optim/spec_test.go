package optim

import (
	"errors"
	"testing"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

func specParams() []nn.Param {
	w := autodiff.Leaf(tensor.FromSlice([]float32{1}, 1))
	return []nn.Param{{Name: "w", Node: w}}
}

func TestBuildRegistry(t *testing.T) {
	p := specParams()

	// Zero spec reproduces the historical default: plain SGD.
	o, err := Build(OptimSpec{LR: 0.1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind() != KindSGD || o.LR() != 0.1 {
		t.Fatalf("zero-kind spec built %q at lr %v, want sgd at 0.1", o.Kind(), o.LR())
	}

	o, err = Build(OptimSpec{Kind: KindAdam, LR: 0.01, WeightDecay: 0.2}, p)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := o.(*Adam)
	if !ok || a.Kind() != KindAdam {
		t.Fatalf("adam spec built %T", o)
	}
	if a.beta1 != 0.9 || a.beta2 != 0.999 || a.eps != 1e-8 {
		t.Fatalf("adam defaults not applied: β₁=%v β₂=%v ε=%v", a.beta1, a.beta2, a.eps)
	}
	if a.weightDecay != 0.2 {
		t.Fatalf("spec weight decay not threaded: %v", a.weightDecay)
	}

	a = mustBuildAdam(t, OptimSpec{Kind: KindAdam, LR: 0.01, Beta1: 0.8, Beta2: 0.95, Eps: 1e-6}, p)
	if a.beta1 != 0.8 || a.beta2 != 0.95 || a.eps != 1e-6 {
		t.Fatalf("adam overrides not applied: β₁=%v β₂=%v ε=%v", a.beta1, a.beta2, a.eps)
	}
}

func mustBuildAdam(t *testing.T, s OptimSpec, p []nn.Param) *Adam {
	t.Helper()
	o, err := Build(s, p)
	if err != nil {
		t.Fatal(err)
	}
	return o.(*Adam)
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	p := specParams()
	if _, err := Build(OptimSpec{Kind: "lamb", LR: 0.1}, p); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind: got %v, want ErrUnknownKind", err)
	}
	bad := []OptimSpec{
		{LR: -1},
		{Kind: KindSGD, LR: 0.1, Momentum: -0.5},
		{Kind: KindAdam, LR: 0.1, Beta1: 1.5},
		{Kind: KindAdam, LR: 0.1, Beta2: -0.1},
		{Kind: KindAdam, LR: 0.1, Eps: -1e-8},
		{Kind: KindAdam, LR: 0.1, WeightDecay: -0.1},
	}
	for _, s := range bad {
		if _, err := Build(s, p); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %+v: got %v, want ErrBadSpec", s, err)
		}
	}
}

func TestScheduleSpecValidate(t *testing.T) {
	if err := (ScheduleSpec{Kind: "poly", Period: 3}).Validate(); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown schedule kind: got %v, want ErrUnknownKind", err)
	}
	bad := []ScheduleSpec{
		{Kind: SchedStep},                          // step_size 0
		{Kind: SchedStep, StepSize: 2},             // gamma 0
		{Kind: SchedStep, StepSize: -1, Gamma: .5}, // negative step_size
		{Kind: SchedCosine},                        // period 0
		{Kind: SchedCosine, Period: 4, MinLR: -1},  // negative floor
	}
	for _, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %+v: got %v, want ErrBadSpec", s, err)
		}
	}
	good := []ScheduleSpec{
		{Kind: SchedStep, StepSize: 1, Gamma: 0.5},
		{Kind: SchedCosine, Period: 1},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %+v: unexpected %v", s, err)
		}
	}
}

func TestBuildScheduleKinds(t *testing.T) {
	p := specParams()
	o, err := Build(OptimSpec{LR: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchedule(ScheduleSpec{Kind: SchedStep, StepSize: 2, Gamma: 0.1}, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != SchedStep {
		t.Fatalf("built %q, want step", s.Kind())
	}
	s, err = BuildSchedule(ScheduleSpec{Kind: SchedCosine, Period: 4}, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != SchedCosine {
		t.Fatalf("built %q, want cosine", s.Kind())
	}
}
