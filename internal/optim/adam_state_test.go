package optim

import (
	"math"
	"testing"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// TestAdamStateDictResumeBitIdentical pins the generalized-state contract
// for Adam: save m, v, and the bias-correction step counter after k
// steps, load them into a fresh optimiser over an identically-positioned
// model, and the continued trajectories coincide bit-for-bit.
func TestAdamStateDictResumeBitIdentical(t *testing.T) {
	build := func() (*nn.Linear, *tensor.Tensor) {
		rng := tensor.NewRNG(1)
		l := nn.NewLinear(rng, 4, 2)
		x := tensor.New(3, 4)
		rng.FillNormal(x, 0, 1)
		return l, x
	}
	step := func(l *nn.Linear, o Optimizer, x *tensor.Tensor) {
		nn.ZeroGrads(l)
		logits := l.Forward(autodiff.Constant(x))
		autodiff.Backward(autodiff.SoftmaxCrossEntropy(logits, []int{0, 1, 0}))
		o.Step()
	}

	// Straight run: 10 steps.
	la, xa := build()
	oa := NewAdam(la.Params(), 0.05)
	for i := 0; i < 10; i++ {
		step(la, oa, xa)
	}

	// Split run: 5 steps, serialise weights+moments+step, rebuild, 5 more.
	lb, xb := build()
	ob := NewAdam(lb.Params(), 0.05)
	for i := 0; i < 5; i++ {
		step(lb, ob, xb)
	}
	weights := nn.StateDict(lb)
	st := ob.StateDict()
	if st.NumBuffers() == 0 || st.Step != 5 {
		t.Fatalf("adam state after 5 steps: %d buffers, step %d; want buffers and step 5", st.NumBuffers(), st.Step)
	}
	if st.Kind != KindAdam {
		t.Fatalf("adam state kind = %q, want %q", st.Kind, KindAdam)
	}
	if st.LegacySGD() {
		t.Fatal("adam state must not be expressible in the legacy SGD encoding")
	}

	lc, xc := build()
	if err := nn.LoadStateDict(lc, weights); err != nil {
		t.Fatal(err)
	}
	oc := NewAdam(lc.Params(), 0.05)
	if err := oc.LoadStateDict(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		step(lc, oc, xc)
	}

	da, dc := nn.StateDict(la), nn.StateDict(lc)
	for name, src := range da {
		if !dc[name].Equal(src) {
			t.Fatalf("resumed adam diverged at %q", name)
		}
	}

	// Dropping the step counter must change the trajectory — the bias
	// correction depends on it, so a resume that forgets it is not a
	// resume. This keeps the test non-vacuous.
	ld, xd := build()
	if err := nn.LoadStateDict(ld, weights); err != nil {
		t.Fatal(err)
	}
	od := NewAdam(ld.Params(), 0.05)
	forgot := &State{Kind: KindAdam, Step: 0, LR: st.LR, Buffers: st.Buffers}
	// Step 0 with buffers present is not Empty, so the load proceeds.
	if err := od.LoadStateDict(forgot); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		step(ld, od, xd)
	}
	same := true
	for name, src := range da {
		if !nn.StateDict(ld)[name].Equal(src) {
			same = false
		}
	}
	if same {
		t.Fatal("resume without the step counter matched the straight run; the counter pin is vacuous")
	}
}

// TestAdamLoadStateDictRejectsForeignState pins the validation guards:
// wrong kind, unprefixed buffers, unknown parameters, mis-shaped buffers,
// and unpaired moments all fail before any state is touched.
func TestAdamLoadStateDictRejectsForeignState(t *testing.T) {
	l := nn.NewLinear(tensor.NewRNG(1), 4, 2)
	var wName string
	for _, p := range l.Params() {
		wName = p.Name
		break
	}
	w := tensor.New(4, 2)
	cases := map[string]*State{
		"sgd state into adam": {Kind: KindSGD, Buffers: map[string]*tensor.Tensor{wName: tensor.New(4, 2)}},
		"legacy bare dict":    {Buffers: map[string]*tensor.Tensor{wName: tensor.New(4, 2)}},
		"unprefixed buffer":   {Kind: KindAdam, Step: 1, Buffers: map[string]*tensor.Tensor{wName: w}},
		"unknown moment slot": {Kind: KindAdam, Step: 1, Buffers: map[string]*tensor.Tensor{"q/" + wName: w}},
		"unknown parameter":   {Kind: KindAdam, Step: 1, Buffers: map[string]*tensor.Tensor{"m/nope": w, "v/nope": w}},
		"mis-shaped buffer":   {Kind: KindAdam, Step: 1, Buffers: map[string]*tensor.Tensor{"m/" + wName: tensor.New(1), "v/" + wName: tensor.New(1)}},
		"unpaired moment":     {Kind: KindAdam, Step: 1, Buffers: map[string]*tensor.Tensor{"m/" + wName: tensor.New(4, 2)}},
		"negative step counter": {Kind: KindAdam, Step: -1, Buffers: map[string]*tensor.Tensor{
			"m/" + wName: tensor.New(4, 2), "v/" + wName: tensor.New(4, 2)}},
	}
	for name, st := range cases {
		o := NewAdam(l.Params(), 0.05)
		if err := o.LoadStateDict(st); err == nil {
			t.Errorf("%s: load unexpectedly succeeded", name)
		}
		if o.step != 0 || len(o.m) != 0 {
			t.Errorf("%s: failed load mutated optimiser state", name)
		}
	}
}

// TestAdamWDecoupledDecay pins the AdamW semantics the dead weightDecay
// field now carries: with a zero gradient the decay shrinks weights
// geometrically (w ← w·(1 − lr·λ) each step) and never enters the moment
// buffers — the decoupling that distinguishes AdamW from L2-coupled Adam.
func TestAdamWDecoupledDecay(t *testing.T) {
	w := autodiff.Leaf(tensor.FromSlice([]float32{1}, 1))
	params := []nn.Param{{Name: "w", Node: w}}
	o := NewAdamW(params, 0.1, 0.5)
	// Allocate a zero gradient so Step doesn't skip the parameter.
	autodiff.Backward(autodiff.Mean(autodiff.Scale(w, 0)))
	w.ZeroGrad()
	shrink := float32(1 - 0.1*0.5)
	want := float32(1)
	for i := 0; i < 3; i++ {
		o.Step()
		want *= shrink
		if got := w.Val.Data[0]; got != want {
			t.Fatalf("step %d: w = %v, want %v (pure geometric decay)", i+1, got, want)
		}
	}
	// Decoupling: the moments never saw the decay term. Coupled L2 would
	// have fed λ·w through m and v; decoupled decay leaves them zero.
	st := o.StateDict()
	for name, buf := range st.Buffers {
		for _, v := range buf.Data {
			if v != 0 {
				t.Fatalf("moment buffer %q is non-zero (%v): decay leaked into the adaptive moments", name, v)
			}
		}
	}
}

// TestAdamStepAllocsOnlyOnFirstTouch pins the vectorised update loop's
// allocation behaviour: moment buffers are allocated the first time a
// parameter is stepped, and steady-state steps allocate nothing.
func TestAdamStepAllocsOnlyOnFirstTouch(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := nn.NewLinear(rng, 32, 16)
	o := NewAdamW(l.Params(), 0.01, 0.1)
	x := tensor.New(4, 32)
	rng.FillNormal(x, 0, 1)
	nn.ZeroGrads(l)
	logits := l.Forward(autodiff.Constant(x))
	autodiff.Backward(autodiff.SoftmaxCrossEntropy(logits, []int{0, 1, 2, 3}))
	o.Step() // first touch: allocates m and v
	if allocs := testing.AllocsPerRun(100, o.Step); allocs != 0 {
		t.Fatalf("steady-state Adam.Step allocates %v times per run, want 0", allocs)
	}
}

// TestAdamStepMatchesScalarReference cross-checks the hoisted float32
// update against a direct per-element transcription of the Adam formulas,
// pinning that vectorisation did not change a single bit.
func TestAdamStepMatchesScalarReference(t *testing.T) {
	run := func(step func(a *Adam, g, w, m, v []float32)) []float32 {
		rng := tensor.NewRNG(7)
		l := nn.NewLinear(rng, 8, 4)
		x := tensor.New(4, 8)
		rng.FillNormal(x, 0, 1)
		a := NewAdamW(l.Params(), 0.02, 0.3)
		for i := 0; i < 6; i++ {
			nn.ZeroGrads(l)
			logits := l.Forward(autodiff.Constant(x))
			autodiff.Backward(autodiff.SoftmaxCrossEntropy(logits, []int{0, 1, 2, 3}))
			if step != nil {
				a.step++
				for _, p := range a.params {
					if p.Node.Grad == nil {
						continue
					}
					m, ok := a.m[p.Name]
					if !ok {
						m = tensor.New(p.Node.Val.Shape()...)
						a.m[p.Name] = m
						a.v[p.Name] = tensor.New(p.Node.Val.Shape()...)
					}
					step(a, p.Node.Grad.Data, p.Node.Val.Data, m.Data, a.v[p.Name].Data)
				}
			} else {
				a.Step()
			}
		}
		return l.W.Val.Data
	}
	// The pre-vectorisation shape: every conversion done per element.
	scalar := func(a *Adam, g, w, m, v []float32) {
		bc1 := 1 - math.Pow(a.beta1, float64(a.step))
		bc2 := 1 - math.Pow(a.beta2, float64(a.step))
		lr := a.lr * math.Sqrt(bc2) / bc1
		for i := range w {
			w[i] -= float32(a.lr*a.weightDecay) * w[i]
		}
		for i := range w {
			gi := g[i]
			m[i] = float32(a.beta1)*m[i] + (1-float32(a.beta1))*gi
			v[i] = float32(a.beta2)*v[i] + (1-float32(a.beta2))*gi*gi
			w[i] -= float32(lr) * m[i] / (float32(math.Sqrt(float64(v[i]))) + float32(a.eps))
		}
	}
	got, want := run(nil), run(scalar)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vectorised Adam diverged from scalar reference at element %d: %v vs %v", i, got[i], want[i])
		}
	}
}
