package optim

import (
	"errors"
	"fmt"

	"amalgam/internal/nn"
)

// Spec-validation sentinels. cloudsim maps these onto its protocol
// taxonomy (ErrUnknownOptimizer / ErrBadRequest) at the wire boundary.
var (
	// ErrUnknownKind marks a spec naming an optimiser or schedule kind
	// absent from the registry.
	ErrUnknownKind = errors.New("optim: unknown kind")
	// ErrBadSpec marks a spec whose kind is known but whose
	// hyperparameters are out of range.
	ErrBadSpec = errors.New("optim: invalid spec")
)

// OptimSpec is a wire-portable optimiser recipe: a registry kind plus the
// hyperparameters to build it with. It is what jobs carry instead of
// optimiser choice living in the provider's source code. Zero-valued
// fields mean "use the kind's default" (Adam's betas/eps) or "inherit"
// (LR inherits the job's Hyper.LR when zero).
type OptimSpec struct {
	// Kind names the optimiser family (KindSGD, KindAdam). Empty selects
	// KindSGD, so a zero spec reproduces the historical default.
	Kind string `json:"kind,omitempty"`
	// LR is the base learning rate; zero inherits the enclosing job's LR.
	LR float64 `json:"lr,omitempty"`
	// Momentum is SGD's momentum coefficient µ. Ignored by Adam.
	Momentum float64 `json:"momentum,omitempty"`
	// WeightDecay is λ: L2 (coupled) for SGD, decoupled for Adam.
	WeightDecay float64 `json:"weight_decay,omitempty"`
	// Beta1, Beta2, Eps are Adam's moment coefficients and denominator
	// fuzz; zero selects the standard 0.9 / 0.999 / 1e-8.
	Beta1 float64 `json:"beta1,omitempty"`
	Beta2 float64 `json:"beta2,omitempty"`
	Eps   float64 `json:"eps,omitempty"`
}

// builders is the optimiser registry: one constructor per kind, closed
// over nothing, so Build stays a pure function of (spec, params).
var builders = map[string]func(OptimSpec, []nn.Param) Optimizer{
	KindSGD:  buildSGD,
	KindAdam: buildAdam,
}

func buildSGD(s OptimSpec, params []nn.Param) Optimizer {
	return NewSGD(params, s.LR, s.Momentum, s.WeightDecay)
}

func buildAdam(s OptimSpec, params []nn.Param) Optimizer {
	a := NewAdamW(params, s.LR, s.WeightDecay)
	if s.Beta1 != 0 {
		a.beta1 = s.Beta1
	}
	if s.Beta2 != 0 {
		a.beta2 = s.Beta2
	}
	if s.Eps != 0 {
		a.eps = s.Eps
	}
	return a
}

func (s OptimSpec) kindOrDefault() string {
	if s.Kind == "" {
		return KindSGD
	}
	return s.Kind
}

// Validate checks the spec against the registry without building it —
// the admission-time check servers run before accepting a job.
func (s OptimSpec) Validate() error {
	if _, ok := builders[s.kindOrDefault()]; !ok {
		return fmt.Errorf("optim: optimiser kind %q: %w", s.Kind, ErrUnknownKind)
	}
	if s.LR < 0 || s.Momentum < 0 || s.WeightDecay < 0 || s.Eps < 0 {
		return fmt.Errorf("optim: negative hyperparameter in %s spec: %w", s.kindOrDefault(), ErrBadSpec)
	}
	if s.Beta1 < 0 || s.Beta1 >= 1 || s.Beta2 < 0 || s.Beta2 >= 1 {
		return fmt.Errorf("optim: adam betas must lie in [0, 1): %w", ErrBadSpec)
	}
	return nil
}

// Build constructs the optimiser a spec names over the given parameters.
// Unknown kinds fail with ErrUnknownKind, out-of-range hyperparameters
// with ErrBadSpec.
func Build(spec OptimSpec, params []nn.Param) (Optimizer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return builders[spec.kindOrDefault()](spec, params), nil
}
