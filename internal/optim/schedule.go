package optim

import (
	"fmt"
	"math"
)

// Schedule kinds understood by BuildSchedule.
const (
	SchedStep   = "step"
	SchedCosine = "cosine"
)

// Schedule adjusts an optimiser's learning rate at epoch boundaries. The
// rate is a pure function of (spec, completed epochs) — SetEpoch
// reconstructs it exactly — so resumed runs recover the schedule position
// from the checkpoint's epoch counter without ever serialising a rate.
type Schedule interface {
	// Kind names the schedule family (SchedStep, SchedCosine).
	Kind() string
	// EpochEnd advances the schedule by one completed epoch and applies
	// the resulting rate to the optimiser.
	EpochEnd()
	// SetEpoch jumps the schedule to e completed epochs and applies the
	// corresponding rate — the checkpoint-resume entry point. SetEpoch(k)
	// leaves the optimiser exactly as k EpochEnd calls would have.
	SetEpoch(e int)
}

// ScheduleSpec is a wire-portable LR-schedule recipe, the Schedule
// counterpart of OptimSpec.
type ScheduleSpec struct {
	// Kind names the schedule family (SchedStep, SchedCosine).
	Kind string `json:"kind"`
	// StepSize and Gamma parameterise SchedStep: every StepSize completed
	// epochs the rate is multiplied by Gamma.
	StepSize int     `json:"step_size,omitempty"`
	Gamma    float64 `json:"gamma,omitempty"`
	// Period and MinLR parameterise SchedCosine: the rate follows half a
	// cosine from the base rate down to MinLR over Period epochs and
	// stays at MinLR after.
	Period int     `json:"period,omitempty"`
	MinLR  float64 `json:"min_lr,omitempty"`
}

// Validate checks the spec's kind and hyperparameters without building.
func (s ScheduleSpec) Validate() error {
	switch s.Kind {
	case SchedStep:
		if s.StepSize < 1 {
			return fmt.Errorf("optim: step schedule needs step_size ≥ 1, got %d: %w", s.StepSize, ErrBadSpec)
		}
		if s.Gamma <= 0 {
			return fmt.Errorf("optim: step schedule needs gamma > 0, got %g: %w", s.Gamma, ErrBadSpec)
		}
	case SchedCosine:
		if s.Period < 1 {
			return fmt.Errorf("optim: cosine schedule needs period ≥ 1, got %d: %w", s.Period, ErrBadSpec)
		}
		if s.MinLR < 0 {
			return fmt.Errorf("optim: cosine schedule needs min_lr ≥ 0, got %g: %w", s.MinLR, ErrBadSpec)
		}
	default:
		return fmt.Errorf("optim: schedule kind %q: %w", s.Kind, ErrUnknownKind)
	}
	return nil
}

// BuildSchedule constructs the schedule a spec names over an already-built
// optimiser, capturing the optimiser's current rate as the base rate.
func BuildSchedule(spec ScheduleSpec, opt Optimizer) (Schedule, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case SchedStep:
		return NewStepLR(opt, spec.StepSize, spec.Gamma), nil
	default:
		return NewCosineLR(opt, spec.Period, spec.MinLR), nil
	}
}

// StepLR decays the learning rate by gamma every stepSize completed
// epochs: lr(e) = base · gamma^⌊e/stepSize⌋.
type StepLR struct {
	opt      Optimizer
	baseLR   float64
	stepSize int
	gamma    float64
	epoch    int
}

// NewStepLR builds a step schedule over opt, capturing its current rate
// as the base rate.
func NewStepLR(opt Optimizer, stepSize int, gamma float64) *StepLR {
	return &StepLR{opt: opt, baseLR: opt.LR(), stepSize: stepSize, gamma: gamma}
}

// Kind identifies the step schedule in specs.
func (s *StepLR) Kind() string { return SchedStep }

// EpochEnd advances one epoch and applies the decayed rate.
func (s *StepLR) EpochEnd() {
	s.epoch++
	s.apply()
}

// SetEpoch jumps to e completed epochs and applies the corresponding rate.
func (s *StepLR) SetEpoch(e int) {
	s.epoch = e
	s.apply()
}

func (s *StepLR) apply() {
	decays := s.epoch / s.stepSize
	s.opt.SetLR(s.baseLR * math.Pow(s.gamma, float64(decays)))
}

var _ Schedule = (*StepLR)(nil)

// CosineLR anneals the learning rate along half a cosine from the base
// rate to minLR over period epochs, clamping to minLR afterwards:
// lr(e) = min + ½(base − min)(1 + cos(πe/period)) for e ≤ period.
type CosineLR struct {
	opt    Optimizer
	baseLR float64
	period int
	minLR  float64
	epoch  int
}

// NewCosineLR builds a cosine schedule over opt, capturing its current
// rate as the base rate.
func NewCosineLR(opt Optimizer, period int, minLR float64) *CosineLR {
	return &CosineLR{opt: opt, baseLR: opt.LR(), period: period, minLR: minLR}
}

// Kind identifies the cosine schedule in specs.
func (c *CosineLR) Kind() string { return SchedCosine }

// EpochEnd advances one epoch and applies the annealed rate.
func (c *CosineLR) EpochEnd() {
	c.epoch++
	c.apply()
}

// SetEpoch jumps to e completed epochs and applies the corresponding rate.
func (c *CosineLR) SetEpoch(e int) {
	c.epoch = e
	c.apply()
}

func (c *CosineLR) apply() {
	if c.epoch >= c.period {
		c.opt.SetLR(c.minLR)
		return
	}
	frac := float64(c.epoch) / float64(c.period)
	c.opt.SetLR(c.minLR + 0.5*(c.baseLR-c.minLR)*(1+math.Cos(math.Pi*frac)))
}

var _ Schedule = (*CosineLR)(nil)
