// Package optim implements the optimisers used by the Amalgam evaluation:
// SGD with momentum/weight decay (Algorithm 1's update rule) and Adam with
// decoupled weight decay. Optimisers operate on named parameter lists from
// the nn package, keyed by name so per-parameter state survives graph
// rebuilds, and capture/restore their full resume state (buffers plus
// scalar counters) as a State, so checkpointed runs of ANY optimiser
// continue bit-identically.
//
// Optimisers and LR schedules are also constructible from wire-portable
// specs (OptimSpec, ScheduleSpec) via Build/BuildSchedule, which is how
// jobs carry their training recipe to the cloud service instead of the
// recipe living in the provider's source code.
package optim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// Optimiser kinds understood by the registry, the AMC3 checkpoint layout,
// and the wire protocol's generalized optimiser state.
const (
	KindSGD  = "sgd"
	KindAdam = "adam"
)

// Optimizer updates parameters in place from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (callers zero
	// them via nn.ZeroGrads, matching the usual train-loop shape).
	Step()
	// SetLR replaces the learning rate (for schedules).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
	// Kind names the optimiser family (KindSGD, KindAdam) — the tag that
	// travels in specs, checkpoints, and wire frames.
	Kind() string
	// StateDict captures the optimiser's resume state: named buffers plus
	// scalar counters. Nil when there is nothing to resume (no step has
	// touched any buffer yet). The buffers are the LIVE tensors (like
	// nn.StateDict); serialise before stepping again if a frozen snapshot
	// is needed.
	StateDict() *State
	// LoadStateDict restores state captured by StateDict on an optimiser
	// of the same kind over the same parameters, staging and validating
	// every buffer before any state is touched.
	LoadStateDict(st *State) error
}

// State is an optimiser's serialisable resume state — the generalized
// payload of AMC3 checkpoints and msgOptState wire frames.
type State struct {
	// Kind is the optimiser family that produced the state (KindSGD,
	// KindAdam). Empty on states decoded from legacy AMC2/bare-dict
	// sources, which only SGD ever wrote.
	Kind string
	// Step counts updates applied so far — Adam's bias-correction counter.
	// Always zero for SGD.
	Step int
	// LR is the learning rate at capture time. Informational only: resume
	// paths reconstruct the rate from (spec, epoch) via Schedule.SetEpoch,
	// never from state, so schedules stay pure functions of the epoch.
	LR float64
	// Buffers holds the named per-parameter tensors: bare parameter names
	// for SGD velocity, "m/<param>" and "v/<param>" moment pairs for Adam.
	Buffers map[string]*tensor.Tensor
}

// NumBuffers reports how many named buffers the state carries (0 for nil).
func (s *State) NumBuffers() int {
	if s == nil {
		return 0
	}
	return len(s.Buffers)
}

// Empty reports whether the state carries nothing to resume: no buffers
// and no step count. Nil is empty.
func (s *State) Empty() bool {
	return s == nil || (s.Step == 0 && len(s.Buffers) == 0)
}

// LegacySGD reports whether the state is expressible in the legacy
// SGD-momentum encodings (the AMC2 checkpoint section and the bare-dict
// msgOptState frame): no scalar counters, kind absent or SGD. Writers use
// it to keep emitting byte-identical legacy bytes for SGD jobs; only
// states that genuinely need the generalized layout get it.
func (s *State) LegacySGD() bool {
	return s == nil || (s.Step == 0 && (s.Kind == "" || s.Kind == KindSGD))
}

// sortedNames returns m's keys in sorted order, so state validation and
// serialisation visit buffers deterministically.
func sortedNames(m map[string]*tensor.Tensor) []string {
	names := make([]string, 0, len(m))
	//amalgam:allow detcheck keys are collected then sorted below; callers never observe map order
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SGD implements stochastic gradient descent with optional momentum and
// L2 weight decay: v ← µv + (g + λθ); θ ← θ − η·v.
type SGD struct {
	params      []nn.Param
	lr          float64
	momentum    float64
	weightDecay float64
	velocity    map[string]*tensor.Tensor
}

// NewSGD builds an SGD optimiser over the given parameters.
func NewSGD(params []nn.Param, lr, momentum, weightDecay float64) *SGD {
	return &SGD{
		params:      params,
		lr:          lr,
		momentum:    momentum,
		weightDecay: weightDecay,
		velocity:    make(map[string]*tensor.Tensor, len(params)),
	}
}

// Step applies one SGD update.
func (s *SGD) Step() {
	lr := float32(s.lr)
	mu := float32(s.momentum)
	wd := float32(s.weightDecay)
	for _, p := range s.params {
		if p.Node.Grad == nil {
			continue
		}
		g := p.Node.Grad
		w := p.Node.Val
		if s.momentum != 0 {
			v, ok := s.velocity[p.Name]
			if !ok {
				v = tensor.New(w.Shape()...)
				s.velocity[p.Name] = v
			}
			for i := range w.Data {
				gi := g.Data[i] + wd*w.Data[i]
				v.Data[i] = mu*v.Data[i] + gi
				w.Data[i] -= lr * v.Data[i]
			}
		} else {
			for i := range w.Data {
				w.Data[i] -= lr * (g.Data[i] + wd*w.Data[i])
			}
		}
	}
}

// SetLR replaces the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR returns the learning rate.
func (s *SGD) LR() float64 { return s.lr }

// Kind identifies SGD state in specs and checkpoints.
func (s *SGD) Kind() string { return KindSGD }

// StateDict returns the optimiser's resume state — the momentum buffers,
// keyed by bare parameter name (the legacy-compatible SGD layout). Nil
// when momentum is disabled or no step has run yet.
func (s *SGD) StateDict() *State {
	if len(s.velocity) == 0 {
		return nil
	}
	out := make(map[string]*tensor.Tensor, len(s.velocity))
	for _, p := range s.params {
		if v, ok := s.velocity[p.Name]; ok {
			out[p.Name] = v
		}
	}
	return &State{Kind: KindSGD, LR: s.lr, Buffers: out}
}

// LoadStateDict restores momentum buffers saved by StateDict, so a
// resumed run continues the velocity trajectory instead of restarting it
// from zero (the gap that made checkpoint resume merely convergent, not
// bit-identical, when Momentum > 0). Every buffer must name a parameter
// of this optimiser with a matching shape; an unknown name means the
// checkpoint belongs to a different model (or optimiser) and fails the
// load before any state is touched. A momentum-free optimiser ignores the
// buffers entirely: it would never advance them, and republishing them
// from StateDict would present epochs-stale state as current.
func (s *SGD) LoadStateDict(st *State) error {
	if st.Empty() {
		return nil
	}
	if st.Kind != "" && st.Kind != KindSGD {
		return fmt.Errorf("optim: %s state loaded into an sgd optimiser", st.Kind)
	}
	if st.Step != 0 {
		return fmt.Errorf("optim: sgd has no step counter, state records step %d", st.Step)
	}
	if s.momentum == 0 {
		return nil
	}
	byName := make(map[string]nn.Param, len(s.params))
	for _, p := range s.params {
		byName[p.Name] = p
	}
	staged := make(map[string]*tensor.Tensor, len(st.Buffers))
	for _, name := range sortedNames(st.Buffers) {
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("optim: momentum state for unknown parameter %q", name)
		}
		src := st.Buffers[name]
		if !src.SameShape(p.Node.Val) {
			return fmt.Errorf("optim: momentum state shape mismatch for %q: %v vs %v",
				name, src.Shape(), p.Node.Val.Shape())
		}
		v := tensor.New(src.Shape()...)
		v.CopyFrom(src)
		staged[name] = v
	}
	for _, p := range s.params {
		if v, ok := staged[p.Name]; ok {
			s.velocity[p.Name] = v
		}
	}
	return nil
}

var _ Optimizer = (*SGD)(nil)

// Adam implements the Adam optimiser (Kingma & Ba, 2015), with optional
// DECOUPLED weight decay (Loshchilov & Hutter's AdamW): the decay shrinks
// weights directly (θ ← θ − η·λ·θ) instead of entering the adaptive
// moments, so its effective strength is not divided by √v̂.
type Adam struct {
	params       []nn.Param
	lr           float64
	beta1, beta2 float64
	eps          float64
	weightDecay  float64
	step         int
	m, v         map[string]*tensor.Tensor
}

// NewAdam builds an Adam optimiser with the standard β₁=0.9, β₂=0.999.
func NewAdam(params []nn.Param, lr float64) *Adam {
	return &Adam{
		params: params,
		lr:     lr,
		beta1:  0.9, beta2: 0.999, eps: 1e-8,
		m: make(map[string]*tensor.Tensor, len(params)),
		v: make(map[string]*tensor.Tensor, len(params)),
	}
}

// NewAdamW builds an Adam optimiser with decoupled weight decay λ.
func NewAdamW(params []nn.Param, lr, weightDecay float64) *Adam {
	a := NewAdam(params, lr)
	a.weightDecay = weightDecay
	return a
}

// Step applies one Adam update with bias correction. Per-element work
// stays in float32 over raw slices — the conversions and map lookups are
// hoisted out of the inner loop, and steady-state steps allocate only when
// a parameter's moment buffers are first touched.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	lr := float32(a.lr * math.Sqrt(bc2) / bc1)
	b1 := float32(a.beta1)
	b2 := float32(a.beta2)
	eps := float32(a.eps)
	decay := float32(a.lr * a.weightDecay)
	for _, p := range a.params {
		if p.Node.Grad == nil {
			continue
		}
		g := p.Node.Grad.Data
		w := p.Node.Val
		m, ok := a.m[p.Name]
		if !ok {
			m = tensor.New(w.Shape()...)
			a.m[p.Name] = m
			a.v[p.Name] = tensor.New(w.Shape()...)
		}
		md := m.Data
		vd := a.v[p.Name].Data
		wd := w.Data
		if decay != 0 {
			for i := range wd {
				wd[i] -= decay * wd[i]
			}
		}
		for i := range wd {
			gi := g[i]
			mi := b1*md[i] + (1-b1)*gi
			vi := b2*vd[i] + (1-b2)*gi*gi
			md[i] = mi
			vd[i] = vi
			wd[i] -= lr * mi / (float32(math.Sqrt(float64(vi))) + eps)
		}
	}
}

// SetLR replaces the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR returns the learning rate.
func (a *Adam) LR() float64 { return a.lr }

// Kind identifies Adam state in specs and checkpoints.
func (a *Adam) Kind() string { return KindAdam }

// StateDict returns Adam's full resume state: the first/second moment
// buffers as "m/<param>"/"v/<param>" pairs plus the bias-correction step
// counter. Nil before the first step.
func (a *Adam) StateDict() *State {
	if a.step == 0 && len(a.m) == 0 {
		return nil
	}
	buffers := make(map[string]*tensor.Tensor, 2*len(a.m))
	for _, p := range a.params {
		if m, ok := a.m[p.Name]; ok {
			buffers["m/"+p.Name] = m
			buffers["v/"+p.Name] = a.v[p.Name]
		}
	}
	return &State{Kind: KindAdam, Step: a.step, LR: a.lr, Buffers: buffers}
}

// LoadStateDict restores moments and the step counter saved by StateDict.
// Every buffer must be an "m/"- or "v/"-prefixed pair naming a parameter
// of this optimiser with a matching shape, and moments must come in
// complete pairs; anything else means the state belongs to a different
// model or optimiser and fails the load before any state is touched.
func (a *Adam) LoadStateDict(st *State) error {
	if st.Empty() {
		return nil
	}
	if st.Kind != KindAdam {
		kind := st.Kind
		if kind == "" {
			kind = KindSGD + "-era legacy"
		}
		return fmt.Errorf("optim: %s state loaded into an adam optimiser", kind)
	}
	if st.Step < 0 {
		return fmt.Errorf("optim: adam step counter must be ≥ 0, state records %d", st.Step)
	}
	byName := make(map[string]nn.Param, len(a.params))
	for _, p := range a.params {
		byName[p.Name] = p
	}
	stagedM := make(map[string]*tensor.Tensor, len(a.params))
	stagedV := make(map[string]*tensor.Tensor, len(a.params))
	for _, name := range sortedNames(st.Buffers) {
		slot, param, ok := strings.Cut(name, "/")
		if !ok || (slot != "m" && slot != "v") {
			return fmt.Errorf("optim: adam state buffer %q is not an m/ or v/ moment", name)
		}
		p, ok := byName[param]
		if !ok {
			return fmt.Errorf("optim: adam state for unknown parameter %q", param)
		}
		src := st.Buffers[name]
		if !src.SameShape(p.Node.Val) {
			return fmt.Errorf("optim: adam state shape mismatch for %q: %v vs %v",
				name, src.Shape(), p.Node.Val.Shape())
		}
		dst := tensor.New(src.Shape()...)
		dst.CopyFrom(src)
		if slot == "m" {
			stagedM[param] = dst
		} else {
			stagedV[param] = dst
		}
	}
	for _, p := range a.params {
		_, hasM := stagedM[p.Name]
		_, hasV := stagedV[p.Name]
		if hasM != hasV {
			return fmt.Errorf("optim: adam state for %q carries an unpaired moment buffer", p.Name)
		}
	}
	for _, p := range a.params {
		if m, ok := stagedM[p.Name]; ok {
			a.m[p.Name] = m
			a.v[p.Name] = stagedV[p.Name]
		}
	}
	a.step = st.Step
	return nil
}

var _ Optimizer = (*Adam)(nil)
