// Package optim implements the optimisers used by the Amalgam evaluation:
// SGD with momentum/weight decay (Algorithm 1's update rule) and Adam.
// Optimisers operate on named parameter lists from the nn package, keyed by
// name so per-parameter state survives graph rebuilds.
package optim

import (
	"fmt"
	"math"

	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// Optimizer updates parameters in place from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (callers zero
	// them via nn.ZeroGrads, matching the usual train-loop shape).
	Step()
	// SetLR replaces the learning rate (for schedules).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD implements stochastic gradient descent with optional momentum and
// L2 weight decay: v ← µv + (g + λθ); θ ← θ − η·v.
type SGD struct {
	params      []nn.Param
	lr          float64
	momentum    float64
	weightDecay float64
	velocity    map[string]*tensor.Tensor
}

// NewSGD builds an SGD optimiser over the given parameters.
func NewSGD(params []nn.Param, lr, momentum, weightDecay float64) *SGD {
	return &SGD{
		params:      params,
		lr:          lr,
		momentum:    momentum,
		weightDecay: weightDecay,
		velocity:    make(map[string]*tensor.Tensor, len(params)),
	}
}

// Step applies one SGD update.
func (s *SGD) Step() {
	lr := float32(s.lr)
	mu := float32(s.momentum)
	wd := float32(s.weightDecay)
	for _, p := range s.params {
		if p.Node.Grad == nil {
			continue
		}
		g := p.Node.Grad
		w := p.Node.Val
		if s.momentum != 0 {
			v, ok := s.velocity[p.Name]
			if !ok {
				v = tensor.New(w.Shape()...)
				s.velocity[p.Name] = v
			}
			for i := range w.Data {
				gi := g.Data[i] + wd*w.Data[i]
				v.Data[i] = mu*v.Data[i] + gi
				w.Data[i] -= lr * v.Data[i]
			}
		} else {
			for i := range w.Data {
				w.Data[i] -= lr * (g.Data[i] + wd*w.Data[i])
			}
		}
	}
}

// SetLR replaces the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR returns the learning rate.
func (s *SGD) LR() float64 { return s.lr }

// StateDict returns the optimiser's per-parameter state — the momentum
// buffers, keyed by parameter name. Nil when momentum is disabled or no
// step has run yet. The returned tensors are the live buffers (like
// nn.StateDict); serialise before stepping again if a frozen snapshot is
// needed.
func (s *SGD) StateDict() map[string]*tensor.Tensor {
	if len(s.velocity) == 0 {
		return nil
	}
	out := make(map[string]*tensor.Tensor, len(s.velocity))
	for name, v := range s.velocity {
		out[name] = v
	}
	return out
}

// LoadStateDict restores momentum buffers saved by StateDict, so a
// resumed run continues the velocity trajectory instead of restarting it
// from zero (the gap that made checkpoint resume merely convergent, not
// bit-identical, when Momentum > 0). Every entry must name a parameter
// of this optimiser with a matching shape; an unknown name means the
// checkpoint belongs to a different model and fails the load before any
// state is touched.
func (s *SGD) LoadStateDict(dict map[string]*tensor.Tensor) error {
	staged := make(map[string]*tensor.Tensor, len(dict))
	byName := make(map[string]nn.Param, len(s.params))
	for _, p := range s.params {
		byName[p.Name] = p
	}
	for name, src := range dict {
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("optim: momentum state for unknown parameter %q", name)
		}
		if !src.SameShape(p.Node.Val) {
			return fmt.Errorf("optim: momentum state shape mismatch for %q: %v vs %v",
				name, src.Shape(), p.Node.Val.Shape())
		}
		v := tensor.New(src.Shape()...)
		v.CopyFrom(src)
		staged[name] = v
	}
	for name, v := range staged {
		s.velocity[name] = v
	}
	return nil
}

var _ Optimizer = (*SGD)(nil)

// Adam implements the Adam optimiser (Kingma & Ba, 2015).
type Adam struct {
	params       []nn.Param
	lr           float64
	beta1, beta2 float64
	eps          float64
	weightDecay  float64
	step         int
	m, v         map[string]*tensor.Tensor
}

// NewAdam builds an Adam optimiser with the standard β₁=0.9, β₂=0.999.
func NewAdam(params []nn.Param, lr float64) *Adam {
	return &Adam{
		params: params,
		lr:     lr,
		beta1:  0.9, beta2: 0.999, eps: 1e-8,
		m: make(map[string]*tensor.Tensor, len(params)),
		v: make(map[string]*tensor.Tensor, len(params)),
	}
}

// Step applies one Adam update with bias correction.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	lr := a.lr * math.Sqrt(bc2) / bc1
	b1 := float32(a.beta1)
	b2 := float32(a.beta2)
	for _, p := range a.params {
		if p.Node.Grad == nil {
			continue
		}
		g := p.Node.Grad
		w := p.Node.Val
		m, ok := a.m[p.Name]
		if !ok {
			m = tensor.New(w.Shape()...)
			a.m[p.Name] = m
			a.v[p.Name] = tensor.New(w.Shape()...)
		}
		v := a.v[p.Name]
		for i := range w.Data {
			gi := g.Data[i]
			if a.weightDecay != 0 {
				gi += float32(a.weightDecay) * w.Data[i]
			}
			m.Data[i] = b1*m.Data[i] + (1-b1)*gi
			v.Data[i] = b2*v.Data[i] + (1-b2)*gi*gi
			w.Data[i] -= float32(lr) * m.Data[i] / (float32(math.Sqrt(float64(v.Data[i]))) + float32(a.eps))
		}
	}
}

// SetLR replaces the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR returns the learning rate.
func (a *Adam) LR() float64 { return a.lr }

var _ Optimizer = (*Adam)(nil)

// StepLR decays an optimiser's learning rate by gamma every stepSize
// epochs, mirroring torch.optim.lr_scheduler.StepLR.
type StepLR struct {
	opt      Optimizer
	baseLR   float64
	stepSize int
	gamma    float64
	epoch    int
}

// NewStepLR wraps opt with a step decay schedule.
func NewStepLR(opt Optimizer, stepSize int, gamma float64) *StepLR {
	return &StepLR{opt: opt, baseLR: opt.LR(), stepSize: stepSize, gamma: gamma}
}

// EpochEnd advances the schedule by one epoch.
func (s *StepLR) EpochEnd() {
	s.epoch++
	decays := s.epoch / s.stepSize
	s.opt.SetLR(s.baseLR * math.Pow(s.gamma, float64(decays)))
}
