// Package he implements the homomorphic-encryption baseline of the
// paper's framework comparison (Fig. 14, PyCrCNN): an additively
// homomorphic Paillier cryptosystem over math/big, encrypted linear and
// convolution layers (plaintext model weights applied to encrypted
// activations, PyCrCNN's deployment model), and per-epoch cost
// extrapolation from measured per-operation latency.
//
// Substitution note (DESIGN.md §4): PyCrCNN uses BFV; Paillier changes the
// constant factors but not the conclusion the figure exists to make — HE
// training is 3–4 orders of magnitude slower than everything else.
package he

import (
	"crypto/rand"
	"fmt"
	"math/big"
)

// Keypair holds Paillier public and private keys.
type Keypair struct {
	// Public.
	N  *big.Int // modulus
	N2 *big.Int // N²
	G  *big.Int // generator (N+1)
	// Private.
	Lambda *big.Int // lcm(p−1, q−1)
	Mu     *big.Int // (L(g^λ mod N²))⁻¹ mod N
}

// GenerateKey creates a keypair with the given modulus size. 512–1024 bits
// keeps the benchmark honest; 2048 matches production deployments.
func GenerateKey(bits int) (*Keypair, error) {
	if bits < 128 {
		return nil, fmt.Errorf("he: modulus below 128 bits is meaningless")
	}
	p, err := rand.Prime(rand.Reader, bits/2)
	if err != nil {
		return nil, fmt.Errorf("he: prime generation: %w", err)
	}
	q, err := rand.Prime(rand.Reader, bits/2)
	if err != nil {
		return nil, fmt.Errorf("he: prime generation: %w", err)
	}
	if p.Cmp(q) == 0 {
		return GenerateKey(bits)
	}
	n := new(big.Int).Mul(p, q)
	n2 := new(big.Int).Mul(n, n)
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	qm1 := new(big.Int).Sub(q, big.NewInt(1))
	gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
	lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), gcd)
	g := new(big.Int).Add(n, big.NewInt(1))

	// µ = (L(g^λ mod N²))⁻¹ mod N, L(x) = (x−1)/N.
	gl := new(big.Int).Exp(g, lambda, n2)
	l := lFunc(gl, n)
	mu := new(big.Int).ModInverse(l, n)
	if mu == nil {
		return GenerateKey(bits)
	}
	return &Keypair{N: n, N2: n2, G: g, Lambda: lambda, Mu: mu}, nil
}

func lFunc(x, n *big.Int) *big.Int {
	return new(big.Int).Div(new(big.Int).Sub(x, big.NewInt(1)), n)
}

// Ciphertext is a Paillier ciphertext.
type Ciphertext struct{ C *big.Int }

// Encrypt encrypts an integer message (callers quantise floats first).
func (k *Keypair) Encrypt(m int64) (*Ciphertext, error) {
	mEnc := new(big.Int).Mod(big.NewInt(m), k.N) // negatives wrap mod N
	r, err := rand.Int(rand.Reader, k.N)
	if err != nil {
		return nil, err
	}
	r.Add(r, big.NewInt(1)) // avoid zero
	// c = g^m · r^N mod N².
	gm := new(big.Int).Exp(k.G, mEnc, k.N2)
	rn := new(big.Int).Exp(r, k.N, k.N2)
	return &Ciphertext{C: gm.Mul(gm, rn).Mod(gm, k.N2)}, nil
}

// Decrypt recovers the signed integer message.
func (k *Keypair) Decrypt(c *Ciphertext) int64 {
	cl := new(big.Int).Exp(c.C, k.Lambda, k.N2)
	m := lFunc(cl, k.N)
	m.Mul(m, k.Mu).Mod(m, k.N)
	// Map back to signed range.
	half := new(big.Int).Rsh(k.N, 1)
	if m.Cmp(half) > 0 {
		m.Sub(m, k.N)
	}
	return m.Int64()
}

// AddCipher homomorphically adds two ciphertexts: Enc(a)·Enc(b) = Enc(a+b).
func (k *Keypair) AddCipher(a, b *Ciphertext) *Ciphertext {
	out := new(big.Int).Mul(a.C, b.C)
	return &Ciphertext{C: out.Mod(out, k.N2)}
}

// MulPlain multiplies a ciphertext by a plaintext scalar:
// Enc(a)^w = Enc(w·a).
func (k *Keypair) MulPlain(a *Ciphertext, w int64) *Ciphertext {
	wEnc := new(big.Int).Mod(big.NewInt(w), k.N)
	return &Ciphertext{C: new(big.Int).Exp(a.C, wEnc, k.N2)}
}

// QuantScale is the fixed-point scale used to quantise weights and
// activations before encryption (PyCrCNN quantises similarly).
const QuantScale = 1 << 8

// Quantise converts a float to the integer message space.
func Quantise(v float64) int64 { return int64(v * QuantScale) }

// Dequantise converts a degree-d product back to a float (each plaintext
// multiplication adds one factor of QuantScale).
func Dequantise(m int64, degree int) float64 {
	out := float64(m)
	for i := 0; i < degree; i++ {
		out /= QuantScale
	}
	return out
}

// EncryptedVector is a vector of ciphertexts.
type EncryptedVector struct {
	C []*Ciphertext
}

// EncryptVector encrypts a quantised float vector.
func (k *Keypair) EncryptVector(v []float64) (*EncryptedVector, error) {
	out := &EncryptedVector{C: make([]*Ciphertext, len(v))}
	for i, x := range v {
		c, err := k.Encrypt(Quantise(x))
		if err != nil {
			return nil, err
		}
		out.C[i] = c
	}
	return out, nil
}

// LinearLayer applies y = W·x + b with plaintext weights over the
// encrypted input: y_j = Π_i Enc(x_i)^{w_ji} · Enc(b_j) — exactly the
// encrypted-inference kernel of PyCrCNN.
func (k *Keypair) LinearLayer(x *EncryptedVector, w [][]float64, b []float64) (*EncryptedVector, error) {
	out := &EncryptedVector{C: make([]*Ciphertext, len(w))}
	for j, row := range w {
		if len(row) != len(x.C) {
			return nil, fmt.Errorf("he: weight row %d has %d entries for input %d", j, len(row), len(x.C))
		}
		// Bias enters at degree 2 (scale²) to match w·x.
		acc, err := k.Encrypt(Quantise(b[j]) * QuantScale)
		if err != nil {
			return nil, err
		}
		for i, wv := range row {
			acc = k.AddCipher(acc, k.MulPlain(x.C[i], Quantise(wv)))
		}
		out.C[j] = acc
	}
	return out, nil
}

// DecryptVector decrypts a degree-d vector.
func (k *Keypair) DecryptVector(x *EncryptedVector, degree int) []float64 {
	out := make([]float64, len(x.C))
	for i, c := range x.C {
		out[i] = Dequantise(k.Decrypt(c), degree)
	}
	return out
}
