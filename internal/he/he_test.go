package he

import (
	"math"
	"testing"
)

func testKey(t *testing.T) *Keypair {
	t.Helper()
	k, err := GenerateKey(256) // small key: fast tests, same code path
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestEncryptDecryptRoundtrip(t *testing.T) {
	k := testKey(t)
	for _, m := range []int64{0, 1, -1, 123456, -987654} {
		c, err := k.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := k.Decrypt(c); got != m {
			t.Fatalf("Decrypt(Encrypt(%d)) = %d", m, got)
		}
	}
}

func TestCiphertextsRandomised(t *testing.T) {
	k := testKey(t)
	c1, _ := k.Encrypt(42)
	c2, _ := k.Encrypt(42)
	if c1.C.Cmp(c2.C) == 0 {
		t.Fatal("Paillier must be probabilistic: identical ciphertexts for equal plaintexts")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	k := testKey(t)
	a, _ := k.Encrypt(1500)
	b, _ := k.Encrypt(-300)
	if got := k.Decrypt(k.AddCipher(a, b)); got != 1200 {
		t.Fatalf("Enc(1500)+Enc(-300) = %d", got)
	}
}

func TestHomomorphicScalarMul(t *testing.T) {
	k := testKey(t)
	a, _ := k.Encrypt(25)
	if got := k.Decrypt(k.MulPlain(a, 4)); got != 100 {
		t.Fatalf("4·Enc(25) = %d", got)
	}
	if got := k.Decrypt(k.MulPlain(a, -3)); got != -75 {
		t.Fatalf("-3·Enc(25) = %d", got)
	}
}

func TestEncryptedLinearLayerMatchesPlain(t *testing.T) {
	k := testKey(t)
	x := []float64{0.5, -1.25, 2}
	w := [][]float64{{1, 0.5, -0.25}, {-2, 1, 0.5}}
	b := []float64{0.125, -0.5}

	enc, err := k.EncryptVector(x)
	if err != nil {
		t.Fatal(err)
	}
	out, err := k.LinearLayer(enc, w, b)
	if err != nil {
		t.Fatal(err)
	}
	got := k.DecryptVector(out, 2)
	for j := range w {
		want := b[j]
		for i := range x {
			want += w[j][i] * x[i]
		}
		if math.Abs(got[j]-want) > 0.05 {
			t.Fatalf("encrypted linear[%d] = %v, plain %v", j, got[j], want)
		}
	}
}

func TestLinearLayerShapeError(t *testing.T) {
	k := testKey(t)
	enc, _ := k.EncryptVector([]float64{1, 2})
	if _, err := k.LinearLayer(enc, [][]float64{{1, 2, 3}}, []float64{0}); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestGenerateKeyRejectsTiny(t *testing.T) {
	if _, err := GenerateKey(64); err == nil {
		t.Fatal("64-bit modulus should be rejected")
	}
}

func TestMeasureOpsAndExtrapolation(t *testing.T) {
	k := testKey(t)
	cost, err := MeasureOps(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Encrypt <= 0 || cost.MulPlain <= 0 {
		t.Fatalf("degenerate costs: %+v", cost)
	}
	sec := LeNetEpochSeconds(cost, 60000, 28, 28, 10)
	if sec <= 0 {
		t.Fatalf("epoch extrapolation %v", sec)
	}
	// The headline of Fig. 14: HE is catastrophically slower. Even with a
	// weak 256-bit key the per-epoch estimate must exceed tens of seconds.
	if sec < 10 {
		t.Fatalf("HE epoch estimate suspiciously fast: %v s", sec)
	}
}
