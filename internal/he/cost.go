package he

import "time"

// OpCost holds measured per-operation latencies of the cryptosystem on
// this machine.
type OpCost struct {
	Encrypt  time.Duration
	Add      time.Duration
	MulPlain time.Duration
	Decrypt  time.Duration
}

// MeasureOps benchmarks the primitive operations with the given key.
func MeasureOps(k *Keypair, iters int) (OpCost, error) {
	if iters < 1 {
		iters = 1
	}
	var cost OpCost
	c1, err := k.Encrypt(1234)
	if err != nil {
		return cost, err
	}
	c2, err := k.Encrypt(-99)
	if err != nil {
		return cost, err
	}

	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := k.Encrypt(int64(i)); err != nil {
			return cost, err
		}
	}
	cost.Encrypt = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		k.AddCipher(c1, c2)
	}
	cost.Add = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		k.MulPlain(c1, 77)
	}
	cost.MulPlain = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		k.Decrypt(c1)
	}
	cost.Decrypt = time.Since(start) / time.Duration(iters)
	return cost, nil
}

// LeNetEpochSeconds extrapolates one HE training epoch for LeNet on
// nSamples inputs of inH×inW from measured per-op cost: every multiply-
// accumulate of the network's forward AND backward pass becomes one
// ciphertext-plaintext exponentiation plus one ciphertext addition
// (PyCrCNN runs inference only; training at least doubles the op count —
// our estimate is therefore conservative in HE's favour).
func LeNetEpochSeconds(cost OpCost, nSamples, inH, inW, classes int) float64 {
	h2, w2 := inH/2, inW/2
	h4, w4 := h2/2, w2/2
	flat := 16 * h4 * w4
	macs := 0
	macs += 6 * 25 * inH * inW    // conv1 (5×5, 6 filters, padded)
	macs += 16 * 6 * 25 * h2 * w2 // conv2
	macs += flat * 120
	macs += 120 * 84
	macs += 84 * classes
	perSample := float64(macs) * 2 // forward + backward
	perOp := cost.MulPlain.Seconds() + cost.Add.Seconds()
	return perSample * perOp * float64(nSamples)
}
