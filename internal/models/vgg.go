package models

import (
	"fmt"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// vggCfg16 is configuration "D" of Simonyan & Zisserman: 13 conv layers in
// five stages (pool after each stage).
var vggCfg16 = [][]int{
	{64, 64},
	{128, 128},
	{256, 256, 256},
	{512, 512, 512},
	{512, 512, 512},
}

// VGG16 implements VGG-16 with batch norm. Two heads are supported:
//
//   - CIFAR head (imagenetHead=false): global average pool + one linear
//     layer — 14.72M parameters at 10 classes, matching Table 3.
//   - ImageNet head (imagenetHead=true): the original 4096-wide classifier,
//     used by the transfer-learning experiment (≈138M parameters at
//     224×224, matching the paper's custom VGG16 row).
//
// Pools that would shrink the spatial size below 1 are skipped so the model
// accepts small inputs (28×28 MNIST) and Amalgam-augmented sizes alike.
type VGG16 struct {
	cfg          CVConfig
	imagenetHead bool
	convs        [][]*nn.Conv2d
	bns          [][]*nn.BatchNorm2d
	poolAfter    []bool
	cbams        []*nn.CBAM // optional, one per stage (VGG16CBAM)
	headFC       []*nn.Linear
	drop         *nn.Dropout
	headInDim    int
}

// NewVGG16 builds the network for the given input geometry.
func NewVGG16(rng *tensor.RNG, cfg CVConfig, imagenetHead bool) *VGG16 {
	return buildVGG16(rng, cfg, imagenetHead, false)
}

// NewVGG16CBAM builds the paper's transfer-learning model: VGG16 with a
// Convolutional Block Attention Module inserted after every stage and the
// ImageNet 4096-wide classifier.
func NewVGG16CBAM(rng *tensor.RNG, cfg CVConfig) *VGG16 {
	return buildVGG16(rng, cfg, true, true)
}

func buildVGG16(rng *tensor.RNG, cfg CVConfig, imagenetHead, withCBAM bool) *VGG16 {
	m := &VGG16{cfg: cfg, imagenetHead: imagenetHead, drop: nn.NewDropout(rng.Split(999), 0.5)}
	inC := cfg.InC
	h, w := cfg.InH, cfg.InW
	for s, stage := range vggCfg16 {
		var convs []*nn.Conv2d
		var bns []*nn.BatchNorm2d
		srng := rng.Split(uint64(s + 1))
		for i, outC := range stage {
			convs = append(convs, nn.NewConv2dNoBias(srng.Split(uint64(i)), inC, outC, 3, 1, 1))
			bns = append(bns, nn.NewBatchNorm2d(outC))
			inC = outC
		}
		m.convs = append(m.convs, convs)
		m.bns = append(m.bns, bns)
		pool := h >= 2 && w >= 2
		if pool {
			h, w = h/2, w/2
		}
		m.poolAfter = append(m.poolAfter, pool)
		if withCBAM {
			m.cbams = append(m.cbams, nn.NewCBAM(srng.Split(77), inC))
		}
	}
	hrng := rng.Split(100)
	if imagenetHead {
		m.headInDim = 512 * h * w
		m.headFC = []*nn.Linear{
			nn.NewLinear(hrng.Split(1), m.headInDim, 4096),
			nn.NewLinear(hrng.Split(2), 4096, 4096),
			nn.NewLinear(hrng.Split(3), 4096, cfg.Classes),
		}
	} else {
		m.headInDim = 512
		m.headFC = []*nn.Linear{nn.NewLinear(hrng.Split(1), 512, cfg.Classes)}
	}
	return m
}

// Forward returns class logits.
func (m *VGG16) Forward(x *autodiff.Node) *autodiff.Node {
	logits, _ := m.ForwardFeatures(x)
	return logits
}

// ForwardFeatures returns logits plus per-stage activations.
func (m *VGG16) ForwardFeatures(x *autodiff.Node) (*autodiff.Node, []*autodiff.Node) {
	nn.CheckImageInput(x, m.cfg.InC)
	h := x
	var feats []*autodiff.Node
	for s := range m.convs {
		for i := range m.convs[s] {
			h = autodiff.ReLU(m.bns[s][i].Forward(m.convs[s][i].Forward(h)))
		}
		if m.poolAfter[s] {
			h = autodiff.MaxPool2d(h, 2, 2, 0)
		}
		if len(m.cbams) > 0 {
			h = m.cbams[s].Forward(h)
		}
		feats = append(feats, h)
	}
	var flat *autodiff.Node
	if m.imagenetHead {
		flat = autodiff.Flatten(h)
		flat = m.drop.Forward(m.headFC[0].ForwardReLU(flat))
		flat = m.drop.Forward(m.headFC[1].ForwardReLU(flat))
		return m.headFC[2].Forward(flat), feats
	}
	flat = autodiff.GlobalAvgPool(h)
	return m.headFC[0].Forward(flat), feats
}

// Params returns all parameters under stable hierarchical names. CBAM
// parameters (when present) sit under "cbam<stage>"; the extractor treats
// them as part of the original model, matching the paper's workflow where
// the user modifies the model (adds CBAMs) before augmentation.
func (m *VGG16) Params() []nn.Param {
	var out []nn.Param
	for s := range m.convs {
		for i := range m.convs[s] {
			out = append(out, nn.PrefixParams(fmt.Sprintf("stage%d.conv%d", s+1, i), m.convs[s][i].Params())...)
			out = append(out, nn.PrefixParams(fmt.Sprintf("stage%d.bn%d", s+1, i), m.bns[s][i].Params())...)
		}
		if len(m.cbams) > 0 {
			out = append(out, nn.PrefixParams(fmt.Sprintf("cbam%d", s+1), m.cbams[s].Params())...)
		}
	}
	for i, fc := range m.headFC {
		out = append(out, nn.PrefixParams(fmt.Sprintf("head%d", i), fc.Params())...)
	}
	return out
}

// SetTraining toggles batch norms and classifier dropout.
func (m *VGG16) SetTraining(t bool) {
	for s := range m.bns {
		for _, bn := range m.bns[s] {
			bn.SetTraining(t)
		}
	}
	m.drop.SetTraining(t)
}

// Training reports the current mode (SetTraining keeps every BN and the
// classifier dropout in sync, so the dropout speaks for the whole model).
func (m *VGG16) Training() bool { return m.drop.Training() }

// FeatureStageParams returns the parameters of the convolutional stages
// only (no CBAM, no head) — the "pre-trained" portion in the paper's
// transfer-learning experiment.
func (m *VGG16) FeatureStageParams() []nn.Param {
	var out []nn.Param
	for s := range m.convs {
		for i := range m.convs[s] {
			out = append(out, nn.PrefixParams(fmt.Sprintf("stage%d.conv%d", s+1, i), m.convs[s][i].Params())...)
			out = append(out, nn.PrefixParams(fmt.Sprintf("stage%d.bn%d", s+1, i), m.bns[s][i].Params())...)
		}
	}
	return out
}

var _ CVModel = (*VGG16)(nil)
