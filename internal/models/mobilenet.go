package models

import (
	"fmt"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// invertedResidual is MobileNetV2's block: 1×1 expand → 3×3 depthwise →
// 1×1 project, with a residual connection when stride is 1 and channel
// counts match.
type invertedResidual struct {
	expand    *nn.Conv2d // nil when expansion factor is 1
	expandBN  *nn.BatchNorm2d
	dw        *nn.DepthwiseConv2d
	dwBN      *nn.BatchNorm2d
	project   *nn.Conv2d
	projectBN *nn.BatchNorm2d
	residual  bool
}

func newInvertedResidual(rng *tensor.RNG, inC, outC, stride, expandRatio int) *invertedResidual {
	hidden := inC * expandRatio
	b := &invertedResidual{residual: stride == 1 && inC == outC}
	if expandRatio != 1 {
		b.expand = nn.NewConv2dNoBias(rng.Split(1), inC, hidden, 1, 1, 0)
		b.expandBN = nn.NewBatchNorm2d(hidden)
	}
	b.dw = nn.NewDepthwiseConv2d(rng.Split(2), hidden, 3, stride, 1)
	b.dwBN = nn.NewBatchNorm2d(hidden)
	b.project = nn.NewConv2dNoBias(rng.Split(3), hidden, outC, 1, 1, 0)
	b.projectBN = nn.NewBatchNorm2d(outC)
	return b
}

func (b *invertedResidual) forward(x *autodiff.Node) *autodiff.Node {
	h := x
	if b.expand != nil {
		h = autodiff.ReLU6(b.expandBN.Forward(b.expand.Forward(h)))
	}
	h = autodiff.ReLU6(b.dwBN.Forward(b.dw.Forward(h)))
	h = b.projectBN.Forward(b.project.Forward(h))
	if b.residual {
		return autodiff.Add(x, h)
	}
	return h
}

func (b *invertedResidual) params() []nn.Param {
	var out []nn.Param
	if b.expand != nil {
		out = append(out, nn.PrefixParams("expand", b.expand.Params())...)
		out = append(out, nn.PrefixParams("expandbn", b.expandBN.Params())...)
	}
	out = append(out, nn.PrefixParams("dw", b.dw.Params())...)
	out = append(out, nn.PrefixParams("dwbn", b.dwBN.Params())...)
	out = append(out, nn.PrefixParams("project", b.project.Params())...)
	out = append(out, nn.PrefixParams("projectbn", b.projectBN.Params())...)
	return out
}

func (b *invertedResidual) setTraining(t bool) {
	if b.expandBN != nil {
		b.expandBN.SetTraining(t)
	}
	b.dwBN.SetTraining(t)
	b.projectBN.SetTraining(t)
}

// MobileNetV2 is the CIFAR-style MobileNetV2 (stride-1 stem, the standard
// (t,c,n,s) schedule, 1280-wide head) — ≈2.3M parameters at 10 classes,
// matching Table 3's original row.
type MobileNetV2 struct {
	cfg     CVConfig
	stem    *nn.Conv2d
	stemBN  *nn.BatchNorm2d
	blocks  []*invertedResidual
	stageIx []int // indices into blocks after which a tap is exposed
	head    *nn.Conv2d
	headBN  *nn.BatchNorm2d
	fc      *nn.Linear
}

// NewMobileNetV2 builds the network for the given input geometry.
func NewMobileNetV2(rng *tensor.RNG, cfg CVConfig) *MobileNetV2 {
	m := &MobileNetV2{
		cfg:    cfg,
		stem:   nn.NewConv2dNoBias(rng.Split(1), cfg.InC, 32, 3, 1, 1),
		stemBN: nn.NewBatchNorm2d(32),
	}
	// (expansion, outC, repeats, firstStride) — strides reduced for 32×32
	// inputs per the common CIFAR adaptation.
	schedule := []struct{ t, c, n, s int }{
		{1, 16, 1, 1}, {6, 24, 2, 1}, {6, 32, 3, 2}, {6, 64, 4, 2}, {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
	}
	inC := 32
	for si, st := range schedule {
		srng := rng.Split(uint64(10 + si))
		for i := 0; i < st.n; i++ {
			stride := 1
			if i == 0 {
				stride = st.s
			}
			m.blocks = append(m.blocks, newInvertedResidual(srng.Split(uint64(i)), inC, st.c, stride, st.t))
			inC = st.c
		}
		m.stageIx = append(m.stageIx, len(m.blocks)-1)
	}
	m.head = nn.NewConv2dNoBias(rng.Split(2), inC, 1280, 1, 1, 0)
	m.headBN = nn.NewBatchNorm2d(1280)
	m.fc = nn.NewLinear(rng.Split(3), 1280, cfg.Classes)
	return m
}

// Forward returns class logits.
func (m *MobileNetV2) Forward(x *autodiff.Node) *autodiff.Node {
	logits, _ := m.ForwardFeatures(x)
	return logits
}

// ForwardFeatures returns logits plus activations after selected stages.
func (m *MobileNetV2) ForwardFeatures(x *autodiff.Node) (*autodiff.Node, []*autodiff.Node) {
	nn.CheckImageInput(x, m.cfg.InC)
	h := autodiff.ReLU6(m.stemBN.Forward(m.stem.Forward(x)))
	var feats []*autodiff.Node
	next := 0
	for i, blk := range m.blocks {
		h = blk.forward(h)
		if next < len(m.stageIx) && i == m.stageIx[next] {
			feats = append(feats, h)
			next++
		}
	}
	h = autodiff.ReLU6(m.headBN.Forward(m.head.Forward(h)))
	return m.fc.Forward(autodiff.GlobalAvgPool(h)), feats
}

// Params returns all parameters under stable hierarchical names.
func (m *MobileNetV2) Params() []nn.Param {
	var out []nn.Param
	out = append(out, nn.PrefixParams("stem", m.stem.Params())...)
	out = append(out, nn.PrefixParams("stembn", m.stemBN.Params())...)
	for i, blk := range m.blocks {
		out = append(out, nn.PrefixParams(fmt.Sprintf("block%d", i), blk.params())...)
	}
	out = append(out, nn.PrefixParams("headconv", m.head.Params())...)
	out = append(out, nn.PrefixParams("headbn", m.headBN.Params())...)
	out = append(out, nn.PrefixParams("fc", m.fc.Params())...)
	return out
}

// SetTraining toggles every batch norm.
func (m *MobileNetV2) SetTraining(t bool) {
	m.stemBN.SetTraining(t)
	for _, blk := range m.blocks {
		blk.setTraining(t)
	}
	m.headBN.SetTraining(t)
}

// Training reports the current mode (SetTraining keeps every BN in sync,
// so the stem BN speaks for the whole model).
func (m *MobileNetV2) Training() bool { return m.stemBN.Training() }

var _ CVModel = (*MobileNetV2)(nil)
