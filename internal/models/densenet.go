package models

import (
	"fmt"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// denseLayer is DenseNet-BC's bottleneck unit: BN-ReLU-Conv1×1(4k) →
// BN-ReLU-Conv3×3(k); its output is concatenated onto its input.
type denseLayer struct {
	bn1, bn2     *nn.BatchNorm2d
	conv1, conv2 *nn.Conv2d
}

func newDenseLayer(rng *tensor.RNG, inC, growth int) *denseLayer {
	inter := 4 * growth
	return &denseLayer{
		bn1:   nn.NewBatchNorm2d(inC),
		conv1: nn.NewConv2dNoBias(rng.Split(1), inC, inter, 1, 1, 0),
		bn2:   nn.NewBatchNorm2d(inter),
		conv2: nn.NewConv2dNoBias(rng.Split(2), inter, growth, 3, 1, 1),
	}
}

func (l *denseLayer) forward(x *autodiff.Node) *autodiff.Node {
	h := l.conv1.Forward(autodiff.ReLU(l.bn1.Forward(x)))
	h = l.conv2.Forward(autodiff.ReLU(l.bn2.Forward(h)))
	return autodiff.ConcatChannels(x, h)
}

func (l *denseLayer) params() []nn.Param {
	var out []nn.Param
	out = append(out, nn.PrefixParams("bn1", l.bn1.Params())...)
	out = append(out, nn.PrefixParams("conv1", l.conv1.Params())...)
	out = append(out, nn.PrefixParams("bn2", l.bn2.Params())...)
	out = append(out, nn.PrefixParams("conv2", l.conv2.Params())...)
	return out
}

func (l *denseLayer) setTraining(t bool) {
	l.bn1.SetTraining(t)
	l.bn2.SetTraining(t)
}

// transition halves channels (compression 0.5) and spatial size.
type transition struct {
	bn   *nn.BatchNorm2d
	conv *nn.Conv2d
}

func newTransition(rng *tensor.RNG, inC, outC int) *transition {
	return &transition{bn: nn.NewBatchNorm2d(inC), conv: nn.NewConv2dNoBias(rng, inC, outC, 1, 1, 0)}
}

func (t *transition) forward(x *autodiff.Node) *autodiff.Node {
	h := t.conv.Forward(autodiff.ReLU(t.bn.Forward(x)))
	return autodiff.AvgPool2d(h, 2, 2, 0)
}

// DenseNetLite is a DenseNet-BC with DenseNet-121's block pattern
// (6/12/24/16 layers) but growth rate 12 instead of 32, sizing it to the
// ~1.0M parameters the paper reports for its DenseNet121 configuration
// (Table 3 lists 10.00×10⁵). Structure — dense connectivity, bottlenecks,
// 0.5-compression transitions — is faithful to Huang et al.
type DenseNetLite struct {
	cfg        CVConfig
	stem       *nn.Conv2d
	blocks     [][]*denseLayer
	trans      []*transition
	finalBN    *nn.BatchNorm2d
	fc         *nn.Linear
	finalWidth int
}

// DenseNetLiteGrowth is the growth rate selected to hit the paper's
// parameter budget (growth 12 lands at ≈0.99M parameters vs the paper's
// 1.00M); see EXPERIMENTS.md for the measured count.
const DenseNetLiteGrowth = 12

// NewDenseNetLite builds the network for the given input geometry.
func NewDenseNetLite(rng *tensor.RNG, cfg CVConfig) *DenseNetLite {
	growth := DenseNetLiteGrowth
	blockSizes := []int{6, 12, 24, 16}
	width := 2 * growth
	m := &DenseNetLite{
		cfg:  cfg,
		stem: nn.NewConv2dNoBias(rng.Split(1), cfg.InC, width, 3, 1, 1),
	}
	for bi, nLayers := range blockSizes {
		brng := rng.Split(uint64(10 + bi))
		var layers []*denseLayer
		for li := 0; li < nLayers; li++ {
			layers = append(layers, newDenseLayer(brng.Split(uint64(li)), width, growth))
			width += growth
		}
		m.blocks = append(m.blocks, layers)
		if bi < len(blockSizes)-1 {
			out := width / 2
			m.trans = append(m.trans, newTransition(brng.Split(999), width, out))
			width = out
		}
	}
	m.finalBN = nn.NewBatchNorm2d(width)
	m.fc = nn.NewLinear(rng.Split(2), width, cfg.Classes)
	m.finalWidth = width
	return m
}

// Forward returns class logits.
func (m *DenseNetLite) Forward(x *autodiff.Node) *autodiff.Node {
	logits, _ := m.ForwardFeatures(x)
	return logits
}

// ForwardFeatures returns logits plus per-block activations.
func (m *DenseNetLite) ForwardFeatures(x *autodiff.Node) (*autodiff.Node, []*autodiff.Node) {
	nn.CheckImageInput(x, m.cfg.InC)
	h := m.stem.Forward(x)
	var feats []*autodiff.Node
	for bi, block := range m.blocks {
		for _, l := range block {
			h = l.forward(h)
		}
		feats = append(feats, h)
		if bi < len(m.trans) {
			h = m.trans[bi].forward(h)
		}
	}
	h = autodiff.ReLU(m.finalBN.Forward(h))
	return m.fc.Forward(autodiff.GlobalAvgPool(h)), feats
}

// Params returns all parameters under stable hierarchical names.
func (m *DenseNetLite) Params() []nn.Param {
	var out []nn.Param
	out = append(out, nn.PrefixParams("stem", m.stem.Params())...)
	for bi, block := range m.blocks {
		for li, l := range block {
			out = append(out, nn.PrefixParams(fmt.Sprintf("block%d.%d", bi+1, li), l.params())...)
		}
		if bi < len(m.trans) {
			out = append(out, nn.PrefixParams(fmt.Sprintf("trans%d.bn", bi+1), m.trans[bi].bn.Params())...)
			out = append(out, nn.PrefixParams(fmt.Sprintf("trans%d.conv", bi+1), m.trans[bi].conv.Params())...)
		}
	}
	out = append(out, nn.PrefixParams("finalbn", m.finalBN.Params())...)
	out = append(out, nn.PrefixParams("fc", m.fc.Params())...)
	return out
}

// SetTraining toggles every batch norm.
func (m *DenseNetLite) SetTraining(t bool) {
	for _, block := range m.blocks {
		for _, l := range block {
			l.setTraining(t)
		}
	}
	for _, tr := range m.trans {
		tr.bn.SetTraining(t)
	}
	m.finalBN.SetTraining(t)
}

// Training reports the current mode (SetTraining keeps every BN in sync,
// so the final BN speaks for the whole model).
func (m *DenseNetLite) Training() bool { return m.finalBN.Training() }

var _ CVModel = (*DenseNetLite)(nil)
