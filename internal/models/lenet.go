package models

import (
	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// LeNet5 is the classic LeCun'98 convolutional network, the model used in
// the paper's framework comparison (Fig. 14) and attack analysis (§6.3).
type LeNet5 struct {
	cfg           CVConfig
	Conv1, Conv2  *nn.Conv2d
	FC1, FC2, FC3 *nn.Linear
	flatDim       int
}

// NewLeNet5 builds LeNet-5 for the given input geometry.
func NewLeNet5(rng *tensor.RNG, cfg CVConfig) *LeNet5 {
	// conv5x5 pad2 keeps spatial size; two 2× pools quarter it.
	h, w := cfg.InH/2/2, cfg.InW/2/2
	flat := 16 * h * w
	return &LeNet5{
		cfg:     cfg,
		Conv1:   nn.NewConv2d(rng.Split(1), cfg.InC, 6, 5, 1, 2),
		Conv2:   nn.NewConv2d(rng.Split(2), 6, 16, 5, 1, 2),
		FC1:     nn.NewLinear(rng.Split(3), flat, 120),
		FC2:     nn.NewLinear(rng.Split(4), 120, 84),
		FC3:     nn.NewLinear(rng.Split(5), 84, cfg.Classes),
		flatDim: flat,
	}
}

// Forward returns class logits.
func (m *LeNet5) Forward(x *autodiff.Node) *autodiff.Node {
	logits, _ := m.ForwardFeatures(x)
	return logits
}

// ForwardFeatures returns logits and tap points (after each conv stage).
func (m *LeNet5) ForwardFeatures(x *autodiff.Node) (*autodiff.Node, []*autodiff.Node) {
	nn.CheckImageInput(x, m.cfg.InC)
	f1 := autodiff.MaxPool2d(m.Conv1.ForwardReLU(x), 2, 2, 0)
	f2 := autodiff.MaxPool2d(m.Conv2.ForwardReLU(f1), 2, 2, 0)
	flat := autodiff.Flatten(f2)
	h := m.FC1.ForwardReLU(flat)
	h = m.FC2.ForwardReLU(h)
	return m.FC3.Forward(h), []*autodiff.Node{f1, f2}
}

// Params returns all parameters under stable layer names.
func (m *LeNet5) Params() []nn.Param {
	var out []nn.Param
	out = append(out, nn.PrefixParams("conv1", m.Conv1.Params())...)
	out = append(out, nn.PrefixParams("conv2", m.Conv2.Params())...)
	out = append(out, nn.PrefixParams("fc1", m.FC1.Params())...)
	out = append(out, nn.PrefixParams("fc2", m.FC2.Params())...)
	out = append(out, nn.PrefixParams("fc3", m.FC3.Params())...)
	return out
}

// SetTraining is a no-op for LeNet (no BN/dropout).
func (m *LeNet5) SetTraining(bool) {}

var _ CVModel = (*LeNet5)(nil)
