package models

import (
	"strings"
	"testing"

	"amalgam/internal/tensor"
)

func TestVGG16FeatureStageParamsExcludeHeadAndCBAM(t *testing.T) {
	cfg := CVConfig{InC: 3, InH: 64, InW: 64, Classes: 10}
	m := NewVGG16CBAM(tensor.NewRNG(1), cfg)
	feat := m.FeatureStageParams()
	if len(feat) == 0 {
		t.Fatal("no feature-stage params")
	}
	for _, p := range feat {
		if strings.HasPrefix(p.Name, "head") || strings.HasPrefix(p.Name, "cbam") {
			t.Fatalf("feature params leaked %q", p.Name)
		}
	}
	all := len(m.Params())
	if len(feat) >= all {
		t.Fatal("feature params should be a strict subset")
	}
}

func TestVGG16ImagenetHeadParamScale(t *testing.T) {
	// At 224×224 the ImageNet-head VGG16 must land near the canonical 138M.
	cfg := CVConfig{InC: 3, InH: 224, InW: 224, Classes: 10}
	m := NewVGG16(tensor.NewRNG(1), cfg, true)
	n := 0
	for _, p := range m.Params() {
		if p.Node.RequiresGrad() {
			n += p.Node.Val.Numel()
		}
	}
	if n < 125_000_000 || n > 145_000_000 {
		t.Fatalf("ImageNet-head VGG16 params %d, want ≈134–138M", n)
	}
}
