package models

import (
	"math"
	"testing"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/optim"
	"amalgam/internal/tensor"
)

func cifarCfg() CVConfig { return CVConfig{InC: 3, InH: 32, InW: 32, Classes: 10} }

func TestCVModelForwardShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.New(2, 3, 32, 32)
	rng.FillUniform(x, 0, 1)
	for _, name := range []string{"lenet", "resnet18", "vgg16", "densenet121", "mobilenetv2"} {
		t.Run(name, func(t *testing.T) {
			m, err := BuildCV(name, tensor.NewRNG(2), cifarCfg())
			if err != nil {
				t.Fatal(err)
			}
			logits, feats := m.ForwardFeatures(autodiff.Constant(x))
			if logits.Val.Dim(0) != 2 || logits.Val.Dim(1) != 10 {
				t.Fatalf("logits shape %v", logits.Val.Shape())
			}
			if len(feats) == 0 {
				t.Fatal("no tap features exposed")
			}
		})
	}
}

func TestBuildCVUnknown(t *testing.T) {
	if _, err := BuildCV("alexnet", tensor.NewRNG(1), cifarCfg()); err == nil {
		t.Fatal("unknown model should error")
	}
}

// TestParamCountsMatchPaper checks our implementations against the paper's
// Table 3/4 "0% (Original)" parameter counts. DenseNetLite is sized to the
// paper's ~1.0M figure; the rest are standard architectures and must land
// within a few percent.
func TestParamCountsMatchPaper(t *testing.T) {
	rng := tensor.NewRNG(3)
	tests := []struct {
		name  string
		got   int
		want  int
		tolPC float64 // acceptable relative deviation
	}{
		{"resnet18", nn.NumParams(NewResNet18(rng, cifarCfg())), 11_170_000, 0.02},
		{"vgg16", nn.NumParams(NewVGG16(rng, cifarCfg(), false)), 14_720_000, 0.02},
		{"densenet121-lite", nn.NumParams(NewDenseNetLite(rng, cifarCfg())), 1_000_000, 0.30},
		{"mobilenetv2", nn.NumParams(NewMobileNetV2(rng, cifarCfg())), 2_296_000, 0.03},
		{"textclassifier", nn.NumParams(NewTextClassifier(rng, 95812, 64, 4)), 6_130_000, 0.02},
		{"transformerlm", nn.NumParams(NewTransformerLM(rng, DefaultTransformerLMConfig(28782))), 12_030_000, 0.03},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dev := math.Abs(float64(tc.got)-float64(tc.want)) / float64(tc.want)
			if dev > tc.tolPC {
				t.Fatalf("%s params = %d, paper %d (dev %.1f%% > %.0f%%)", tc.name, tc.got, tc.want, dev*100, tc.tolPC*100)
			}
			t.Logf("%s: %d params (paper %d, dev %.2f%%)", tc.name, tc.got, tc.want, dev*100)
		})
	}
}

func TestVGG16CBAMHasMoreParams(t *testing.T) {
	cfg := CVConfig{InC: 3, InH: 64, InW: 64, Classes: 10}
	plain := nn.NumParams(NewVGG16(tensor.NewRNG(1), cfg, true))
	cbam := nn.NumParams(NewVGG16CBAM(tensor.NewRNG(1), cfg))
	if cbam <= plain {
		t.Fatalf("CBAM variant should add parameters: %d vs %d", cbam, plain)
	}
}

func TestVGG16HandlesMNISTGeometry(t *testing.T) {
	// 28×28 single-channel input: pools must degrade gracefully.
	m := NewVGG16(tensor.NewRNG(1), CVConfig{InC: 1, InH: 28, InW: 28, Classes: 10}, false)
	x := tensor.New(1, 1, 28, 28)
	logits := m.Forward(autodiff.Constant(x))
	if logits.Val.Dim(1) != 10 {
		t.Fatalf("logits %v", logits.Val.Shape())
	}
}

func TestMNISTGeometryAllModels(t *testing.T) {
	rng := tensor.NewRNG(4)
	x := tensor.New(1, 1, 28, 28)
	rng.FillUniform(x, 0, 1)
	cfg := CVConfig{InC: 1, InH: 28, InW: 28, Classes: 10}
	for _, name := range []string{"lenet", "resnet18", "vgg16", "densenet121", "mobilenetv2"} {
		m, err := BuildCV(name, tensor.NewRNG(5), cfg)
		if err != nil {
			t.Fatal(err)
		}
		logits := m.Forward(autodiff.Constant(x))
		if logits.Val.Dim(1) != 10 {
			t.Fatalf("%s logits %v", name, logits.Val.Shape())
		}
	}
}

func TestModelsDeterministicInit(t *testing.T) {
	a := NewResNet18(tensor.NewRNG(7), cifarCfg())
	b := NewResNet18(tensor.NewRNG(7), cifarCfg())
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatal("param lists differ")
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name || !pa[i].Node.Val.Equal(pb[i].Node.Val) {
			t.Fatalf("param %s differs across same-seed builds", pa[i].Name)
		}
	}
}

func TestLeNetLearnsTinyTask(t *testing.T) {
	// End-to-end sanity: LeNet must fit 16 samples of a 2-class toy set.
	rng := tensor.NewRNG(8)
	m := NewLeNet5(rng, CVConfig{InC: 1, InH: 12, InW: 12, Classes: 2})
	x := tensor.New(16, 1, 12, 12)
	labels := make([]int, 16)
	for i := 0; i < 16; i++ {
		labels[i] = i % 2
		for j := 0; j < 144; j++ {
			v := rng.Float32() * 0.1
			if labels[i] == 1 && j%2 == 0 {
				v += 0.8
			}
			x.Data[i*144+j] = v
		}
	}
	opt := optim.NewSGD(m.Params(), 0.05, 0.9, 0)
	var first, last float32
	for it := 0; it < 60; it++ {
		nn.ZeroGrads(m)
		loss := autodiff.SoftmaxCrossEntropy(m.Forward(autodiff.Constant(x)), labels)
		autodiff.Backward(loss)
		opt.Step()
		if it == 0 {
			first = loss.Scalar()
		}
		last = loss.Scalar()
	}
	if last > first/4 {
		t.Fatalf("LeNet failed to learn: loss %v → %v", first, last)
	}
}

func TestTextClassifierLearns(t *testing.T) {
	rng := tensor.NewRNG(9)
	m := NewTextClassifier(rng, 100, 16, 2)
	ids := [][]int{}
	labels := []int{}
	for i := 0; i < 20; i++ {
		k := i % 2
		seq := make([]int, 10)
		for j := range seq {
			seq[j] = k*50 + rng.IntN(50)
		}
		ids = append(ids, seq)
		labels = append(labels, k)
	}
	opt := optim.NewAdam(m.Params(), 0.05)
	var first, last float32
	for it := 0; it < 40; it++ {
		nn.ZeroGrads(m)
		loss := autodiff.SoftmaxCrossEntropy(m.ForwardIDs(ids), labels)
		autodiff.Backward(loss)
		opt.Step()
		if it == 0 {
			first = loss.Scalar()
		}
		last = loss.Scalar()
	}
	if last > first/4 {
		t.Fatalf("text classifier failed to learn: %v → %v", first, last)
	}
}

func TestTransformerLMForwardAndLearn(t *testing.T) {
	rng := tensor.NewRNG(10)
	cfg := TransformerLMConfig{Vocab: 50, D: 16, Heads: 2, FF: 32, Layers: 1, MaxT: 16, Dropout: 0}
	m := NewTransformerLM(rng, cfg)
	// Deterministic sequence: token i+1 follows token i (mod 50).
	mkBatch := func() ([][]int, []int) {
		in := make([][]int, 4)
		tgt := make([][]int, 4)
		for b := range in {
			in[b] = make([]int, 8)
			tgt[b] = make([]int, 8)
			start := b * 3
			for p := 0; p < 8; p++ {
				in[b][p] = (start + p) % 50
				tgt[b][p] = (start + p + 1) % 50
			}
		}
		return in, FlattenTargets(tgt)
	}
	in, flat := mkBatch()
	logits := m.ForwardIDs(in)
	if logits.Val.Dim(0) != 32 || logits.Val.Dim(1) != 50 {
		t.Fatalf("LM logits %v", logits.Val.Shape())
	}
	opt := optim.NewAdam(m.Params(), 0.01)
	var first, last float32
	for it := 0; it < 50; it++ {
		nn.ZeroGrads(m)
		loss := autodiff.SoftmaxCrossEntropy(m.ForwardIDs(in), flat)
		autodiff.Backward(loss)
		opt.Step()
		if it == 0 {
			first = loss.Scalar()
		}
		last = loss.Scalar()
	}
	if last > first/2 {
		t.Fatalf("transformer failed to learn: %v → %v", first, last)
	}
}

func TestFlattenTargets(t *testing.T) {
	got := FlattenTargets([][]int{{1, 2}, {3, 4}})
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FlattenTargets = %v", got)
		}
	}
	if FlattenTargets(nil) != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestParamNamesUnique(t *testing.T) {
	rng := tensor.NewRNG(11)
	ms := map[string]interface{ Params() []nn.Param }{
		"resnet18":    NewResNet18(rng, cifarCfg()),
		"vgg16":       NewVGG16(rng, cifarCfg(), false),
		"densenet":    NewDenseNetLite(rng, cifarCfg()),
		"mobilenetv2": NewMobileNetV2(rng, cifarCfg()),
		"transformer": NewTransformerLM(rng, TransformerLMConfig{Vocab: 50, D: 8, Heads: 2, FF: 8, Layers: 2, MaxT: 8}),
	}
	for name, m := range ms {
		seen := map[string]bool{}
		for _, p := range m.Params() {
			if seen[p.Name] {
				t.Fatalf("%s: duplicate param name %q", name, p.Name)
			}
			seen[p.Name] = true
		}
	}
}
