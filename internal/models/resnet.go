package models

import (
	"fmt"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// basicBlock is ResNet's two-conv residual block with optional projection
// shortcut.
type basicBlock struct {
	conv1, conv2 *nn.Conv2d
	bn1, bn2     *nn.BatchNorm2d
	downConv     *nn.Conv2d // nil for identity shortcut
	downBN       *nn.BatchNorm2d
}

func newBasicBlock(rng *tensor.RNG, inC, outC, stride int) *basicBlock {
	b := &basicBlock{
		conv1: nn.NewConv2dNoBias(rng.Split(1), inC, outC, 3, stride, 1),
		bn1:   nn.NewBatchNorm2d(outC),
		conv2: nn.NewConv2dNoBias(rng.Split(2), outC, outC, 3, 1, 1),
		bn2:   nn.NewBatchNorm2d(outC),
	}
	if stride != 1 || inC != outC {
		b.downConv = nn.NewConv2dNoBias(rng.Split(3), inC, outC, 1, stride, 0)
		b.downBN = nn.NewBatchNorm2d(outC)
	}
	return b
}

func (b *basicBlock) forward(x *autodiff.Node) *autodiff.Node {
	out := autodiff.ReLU(b.bn1.Forward(b.conv1.Forward(x)))
	out = b.bn2.Forward(b.conv2.Forward(out))
	short := x
	if b.downConv != nil {
		short = b.downBN.Forward(b.downConv.Forward(x))
	}
	return autodiff.ReLU(autodiff.Add(out, short))
}

func (b *basicBlock) params() []nn.Param {
	var out []nn.Param
	out = append(out, nn.PrefixParams("conv1", b.conv1.Params())...)
	out = append(out, nn.PrefixParams("bn1", b.bn1.Params())...)
	out = append(out, nn.PrefixParams("conv2", b.conv2.Params())...)
	out = append(out, nn.PrefixParams("bn2", b.bn2.Params())...)
	if b.downConv != nil {
		out = append(out, nn.PrefixParams("down.conv", b.downConv.Params())...)
		out = append(out, nn.PrefixParams("down.bn", b.downBN.Params())...)
	}
	return out
}

func (b *basicBlock) setTraining(t bool) {
	b.bn1.SetTraining(t)
	b.bn2.SetTraining(t)
	if b.downBN != nil {
		b.downBN.SetTraining(t)
	}
}

// ResNet18 is the CIFAR-style ResNet-18 (3×3 stem, four 2-block stages,
// global average pooling) used throughout the paper's CV evaluation;
// 11.17M parameters at 10 classes, matching Table 3's original row.
type ResNet18 struct {
	cfg    CVConfig
	stem   *nn.Conv2d
	stemBN *nn.BatchNorm2d
	stages [4][]*basicBlock
	fc     *nn.Linear
}

// NewResNet18 builds the network for the given input geometry.
func NewResNet18(rng *tensor.RNG, cfg CVConfig) *ResNet18 {
	m := &ResNet18{
		cfg:    cfg,
		stem:   nn.NewConv2dNoBias(rng.Split(1), cfg.InC, 64, 3, 1, 1),
		stemBN: nn.NewBatchNorm2d(64),
		fc:     nn.NewLinear(rng.Split(2), 512, cfg.Classes),
	}
	widths := []int{64, 128, 256, 512}
	inC := 64
	for s, w := range widths {
		stride := 1
		if s > 0 {
			stride = 2
		}
		srng := rng.Split(uint64(10 + s))
		m.stages[s] = []*basicBlock{
			newBasicBlock(srng.Split(0), inC, w, stride),
			newBasicBlock(srng.Split(1), w, w, 1),
		}
		inC = w
	}
	return m
}

// Forward returns class logits.
func (m *ResNet18) Forward(x *autodiff.Node) *autodiff.Node {
	logits, _ := m.ForwardFeatures(x)
	return logits
}

// ForwardFeatures returns logits plus per-stage activations as tap points.
func (m *ResNet18) ForwardFeatures(x *autodiff.Node) (*autodiff.Node, []*autodiff.Node) {
	nn.CheckImageInput(x, m.cfg.InC)
	h := autodiff.ReLU(m.stemBN.Forward(m.stem.Forward(x)))
	feats := make([]*autodiff.Node, 0, 4)
	for _, stage := range m.stages {
		for _, blk := range stage {
			h = blk.forward(h)
		}
		feats = append(feats, h)
	}
	pooled := autodiff.GlobalAvgPool(h)
	return m.fc.Forward(pooled), feats
}

// Params returns all parameters under stable hierarchical names.
func (m *ResNet18) Params() []nn.Param {
	var out []nn.Param
	out = append(out, nn.PrefixParams("stem", m.stem.Params())...)
	out = append(out, nn.PrefixParams("stembn", m.stemBN.Params())...)
	for s, stage := range m.stages {
		for b, blk := range stage {
			out = append(out, nn.PrefixParams(fmt.Sprintf("layer%d.%d", s+1, b), blk.params())...)
		}
	}
	out = append(out, nn.PrefixParams("fc", m.fc.Params())...)
	return out
}

// SetTraining toggles every batch norm.
func (m *ResNet18) SetTraining(t bool) {
	m.stemBN.SetTraining(t)
	for _, stage := range m.stages {
		for _, blk := range stage {
			blk.setTraining(t)
		}
	}
}

// Training reports the current mode (SetTraining keeps every BN in sync,
// so the stem BN speaks for the whole model).
func (m *ResNet18) Training() bool { return m.stemBN.Training() }

var _ CVModel = (*ResNet18)(nil)
