package models

import (
	"fmt"
	"math"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// TextClassifier is the paper's AG News model: a mean-pooled embedding bag
// followed by one linear layer (6.13M parameters at the real AG News
// vocabulary of 95,812 and embedding width 64 — Table 4's original row).
type TextClassifier struct {
	Vocab, EmbedDim, Classes int
	Embed                    *nn.Embedding
	FC                       *nn.Linear
}

// NewTextClassifier builds the classifier.
func NewTextClassifier(rng *tensor.RNG, vocab, embedDim, classes int) *TextClassifier {
	return &TextClassifier{
		Vocab: vocab, EmbedDim: embedDim, Classes: classes,
		Embed: nn.NewEmbedding(rng.Split(1), vocab, embedDim),
		FC:    nn.NewLinear(rng.Split(2), embedDim, classes),
	}
}

// ForwardIDs maps token batches to class logits.
func (m *TextClassifier) ForwardIDs(ids [][]int) *autodiff.Node {
	logits, _ := m.ForwardIDsFeatures(ids)
	return logits
}

// ForwardIDsFeatures additionally returns the pooled embedding (the tap
// point for decoy sub-networks).
func (m *TextClassifier) ForwardIDsFeatures(ids [][]int) (*autodiff.Node, *autodiff.Node) {
	pooled := m.Embed.LookupMean(ids)
	return m.ForwardPooled(pooled), pooled
}

// ForwardPooled maps already-pooled embeddings [N, EmbedDim] to class
// logits — the server half of split inference. A client that runs
// Embed.LookupMean locally ships only the dense pooled activations; the
// token ids never cross the wire.
func (m *TextClassifier) ForwardPooled(pooled *autodiff.Node) *autodiff.Node {
	return m.FC.Forward(pooled)
}

// Params returns embedding and classifier parameters.
func (m *TextClassifier) Params() []nn.Param {
	var out []nn.Param
	out = append(out, nn.PrefixParams("embed", m.Embed.Params())...)
	out = append(out, nn.PrefixParams("fc", m.FC.Params())...)
	return out
}

// SetTraining is a no-op (no dropout/BN).
func (m *TextClassifier) SetTraining(bool) {}

var _ TextModel = (*TextClassifier)(nil)

// TransformerLM is the paper's WikiText-2 language model, following the
// PyTorch word-LM tutorial configuration the paper's parameter count
// implies: d_model 200, 2 heads, 2 encoder layers, FFN width 200 —
// 12.03M parameters at the 28,782-token vocabulary (Table 4).
type TransformerLM struct {
	Vocab, D, Heads, Layers int
	Embed                   *nn.Embedding
	Blocks                  []*nn.TransformerEncoderLayer
	Decoder                 *nn.Linear
	Drop                    *nn.Dropout
	pe                      *tensor.Tensor
	maxT                    int

	// Cfg is the configuration the model was built from, retained so a
	// remote job spec can rebuild the identical architecture.
	Cfg TransformerLMConfig
	// BuildSeed records the RNG seed a seed-taking builder (the public
	// BuildLMModel) used, so a rebuild reproduces not just the
	// architecture but the dropout streams — required for bit-identical
	// local/remote training when Dropout > 0.
	BuildSeed uint64
}

// TransformerLMConfig mirrors the PyTorch tutorial hyper-parameters.
// GELUFF switches the encoder feed-forward activation from the tutorial's
// ReLU to GELU (fused LinearGELU epilogue); the default stays ReLU for
// paper parity.
type TransformerLMConfig struct {
	Vocab, D, Heads, FF, Layers, MaxT int
	Dropout                           float32
	GELUFF                            bool
}

// DefaultTransformerLMConfig returns the paper-scale configuration.
func DefaultTransformerLMConfig(vocab int) TransformerLMConfig {
	return TransformerLMConfig{Vocab: vocab, D: 200, Heads: 2, FF: 200, Layers: 2, MaxT: 512, Dropout: 0.2}
}

// NewTransformerLM builds the language model.
func NewTransformerLM(rng *tensor.RNG, cfg TransformerLMConfig) *TransformerLM {
	m := &TransformerLM{
		Vocab: cfg.Vocab, D: cfg.D, Heads: cfg.Heads, Layers: cfg.Layers,
		Embed:   nn.NewEmbedding(rng.Split(1), cfg.Vocab, cfg.D),
		Decoder: nn.NewLinear(rng.Split(2), cfg.D, cfg.Vocab),
		Drop:    nn.NewDropout(rng.Split(3), cfg.Dropout),
		pe:      nn.PositionalEncoding(cfg.MaxT, cfg.D),
		maxT:    cfg.MaxT,
		Cfg:     cfg,
	}
	for i := 0; i < cfg.Layers; i++ {
		blk := nn.NewTransformerEncoderLayer(rng.Split(uint64(10+i)), cfg.D, cfg.Heads, cfg.FF, cfg.Dropout)
		blk.GELUFF = cfg.GELUFF
		m.Blocks = append(m.Blocks, blk)
	}
	return m
}

// ForwardIDs maps token batches [N][T] to next-token logits [N*T, Vocab],
// applying a causal mask. It composes the split-inference halves, so the
// full path and EmbedIDs→ForwardEmbedded are bit-identical by
// construction.
func (m *TransformerLM) ForwardIDs(ids [][]int) *autodiff.Node {
	return m.ForwardEmbedded(m.EmbedIDs(ids))
}

// EmbedIDs runs the client half of split inference: token embedding, √D
// scaling, positional encodings, and the embedding-path dropout,
// producing the [N, T, D] activations that cross the wire. Token ids
// never leave this half.
func (m *TransformerLM) EmbedIDs(ids [][]int) *autodiff.Node {
	n := len(ids)
	t := len(ids[0])
	if t > m.maxT {
		panic(fmt.Sprintf("models: sequence length %d exceeds positional table %d", t, m.maxT))
	}
	h := m.Embed.Lookup(ids) // [N, T, D]
	h = autodiff.Scale(h, float32(math.Sqrt(float64(m.D))))
	// Add positional encodings (broadcast over batch).
	peBatch := tensor.New(n, t, m.D)
	for b := 0; b < n; b++ {
		copy(peBatch.Data[b*t*m.D:(b+1)*t*m.D], m.pe.Data[:t*m.D])
	}
	return m.Drop.Forward(autodiff.AddConst(h, peBatch))
}

// ForwardEmbedded runs the server half of split inference: the encoder
// blocks under a causal mask and the decoder projection, over activations
// [N, T, D] produced by EmbedIDs, returning next-token logits
// [N*T, Vocab].
func (m *TransformerLM) ForwardEmbedded(h *autodiff.Node) *autodiff.Node {
	n, t := h.Val.Dim(0), h.Val.Dim(1)
	mask := nn.CausalMask(t)
	for _, blk := range m.Blocks {
		h = blk.ForwardSeq(h, mask)
	}
	flat := autodiff.Reshape(h, n*t, m.D)
	return m.Decoder.Forward(flat)
}

// Params returns all parameters under stable hierarchical names.
func (m *TransformerLM) Params() []nn.Param {
	var out []nn.Param
	out = append(out, nn.PrefixParams("embed", m.Embed.Params())...)
	for i, blk := range m.Blocks {
		out = append(out, nn.PrefixParams(fmt.Sprintf("block%d", i), blk.Params())...)
	}
	out = append(out, nn.PrefixParams("decoder", m.Decoder.Params())...)
	return out
}

// SetTraining toggles dropout in the embedding path and every block.
func (m *TransformerLM) SetTraining(t bool) {
	m.Drop.SetTraining(t)
	for _, blk := range m.Blocks {
		blk.SetTraining(t)
	}
}

// Training reports the current mode (SetTraining keeps every dropout in
// sync, so the embedding-path dropout speaks for the whole model).
func (m *TransformerLM) Training() bool { return m.Drop.Training() }

// DropoutStates captures every dropout layer's RNG cursor under stable
// names ("drop" for the embedding path, "block<i>.drop" per encoder
// layer). Together with the weights and optimiser state these make an
// interrupted Dropout > 0 run resumable bit-identically: the restored
// streams continue the mask sequence instead of replaying it from the
// model's build.
func (m *TransformerLM) DropoutStates() (map[string][]byte, error) {
	out := make(map[string][]byte, 1+len(m.Blocks))
	b, err := m.Drop.RNGState()
	if err != nil {
		return nil, err
	}
	out["drop"] = b
	for i, blk := range m.Blocks {
		if b, err = blk.Drop.RNGState(); err != nil {
			return nil, err
		}
		out[fmt.Sprintf("block%d.drop", i)] = b
	}
	return out, nil
}

// LoadDropoutStates restores cursors captured by DropoutStates. Missing
// entries leave the corresponding stream untouched (so old checkpoints
// without the section still load); unknown names or undecodable bytes are
// errors, since they signal a checkpoint from a different architecture.
func (m *TransformerLM) LoadDropoutStates(states map[string][]byte) error {
	known := make(map[string]*nn.Dropout, 1+len(m.Blocks))
	known["drop"] = m.Drop
	for i, blk := range m.Blocks {
		known[fmt.Sprintf("block%d.drop", i)] = blk.Drop
	}
	for name, b := range states {
		d, ok := known[name]
		if !ok {
			return fmt.Errorf("models: unknown dropout stream %q", name)
		}
		if err := d.SetRNGState(b); err != nil {
			return fmt.Errorf("models: dropout stream %q: %w", name, err)
		}
	}
	return nil
}

var _ TextModel = (*TransformerLM)(nil)

// FlattenTargets turns [N][T] target ids into the flat []int label layout
// matching TransformerLM.ForwardIDs's [N*T, Vocab] logits.
func FlattenTargets(targets [][]int) []int {
	if len(targets) == 0 {
		return nil
	}
	t := len(targets[0])
	out := make([]int, 0, len(targets)*t)
	for _, row := range targets {
		out = append(out, row...)
	}
	return out
}
