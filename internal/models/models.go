// Package models implements the paper's evaluation model zoo from scratch
// on the nn substrate: LeNet-5, ResNet-18, VGG-16 (CIFAR and ImageNet
// heads, with optional CBAM modules), a DenseNet-BC variant sized to the
// paper's ~1.0M-parameter DenseNet121 row, MobileNetV2, the AG News text
// classifier, and the WikiText-2 transformer language model.
//
// Every computer-vision model implements CVModel: alongside plain Forward
// it exposes ForwardFeatures, returning intermediate activations that
// Amalgam's model augmenter taps (detached) into decoy sub-networks.
package models

import (
	"fmt"

	"amalgam/internal/autodiff"
	"amalgam/internal/nn"
	"amalgam/internal/tensor"
)

// CVModel is an image classifier whose intermediate features can be tapped.
type CVModel interface {
	nn.Module
	// ForwardFeatures returns the logits and a list of intermediate
	// activations (earliest first) usable as taps.
	ForwardFeatures(x *autodiff.Node) (logits *autodiff.Node, feats []*autodiff.Node)
}

// TextModel is a token-input model (classification or language modelling).
type TextModel interface {
	// ForwardIDs maps a batch of token sequences to logits.
	ForwardIDs(ids [][]int) *autodiff.Node
	Params() []nn.Param
	SetTraining(training bool)
}

// CVConfig describes the input geometry a CV model is built for.
type CVConfig struct {
	InC, InH, InW int
	Classes       int
}

// BuildCV constructs a zoo model by name ("lenet", "resnet18", "vgg16",
// "densenet121", "mobilenetv2", "vgg16cbam").
func BuildCV(name string, rng *tensor.RNG, cfg CVConfig) (CVModel, error) {
	switch name {
	case "lenet":
		return NewLeNet5(rng, cfg), nil
	case "resnet18":
		return NewResNet18(rng, cfg), nil
	case "vgg16":
		return NewVGG16(rng, cfg, false), nil
	case "vgg16cbam":
		return NewVGG16CBAM(rng, cfg), nil
	case "densenet121":
		return NewDenseNetLite(rng, cfg), nil
	case "mobilenetv2":
		return NewMobileNetV2(rng, cfg), nil
	default:
		return nil, fmt.Errorf("models: unknown CV model %q", name)
	}
}

// CVModelNames lists the registry contents in evaluation order.
func CVModelNames() []string {
	return []string{"lenet", "resnet18", "vgg16", "densenet121", "mobilenetv2", "vgg16cbam"}
}
