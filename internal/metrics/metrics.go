// Package metrics provides evaluation utilities shared by the experiment
// harness and examples: classification metrics, perplexity, and running
// timing statistics.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// ConfusionMatrix accumulates multi-class prediction outcomes.
type ConfusionMatrix struct {
	classes int
	counts  []int // [true*classes + predicted]
}

// NewConfusionMatrix builds a matrix for the given class count.
func NewConfusionMatrix(classes int) *ConfusionMatrix {
	if classes <= 0 {
		panic("metrics: classes must be positive")
	}
	return &ConfusionMatrix{classes: classes, counts: make([]int, classes*classes)}
}

// Add records one (trueLabel, predicted) outcome.
func (m *ConfusionMatrix) Add(trueLabel, predicted int) {
	if trueLabel < 0 || trueLabel >= m.classes || predicted < 0 || predicted >= m.classes {
		panic(fmt.Sprintf("metrics: label out of range: true=%d pred=%d classes=%d", trueLabel, predicted, m.classes))
	}
	m.counts[trueLabel*m.classes+predicted]++
}

// AddBatch records a batch of outcomes.
func (m *ConfusionMatrix) AddBatch(trueLabels, predicted []int) {
	for i := range trueLabels {
		m.Add(trueLabels[i], predicted[i])
	}
}

// Total returns the number of recorded outcomes.
func (m *ConfusionMatrix) Total() int {
	n := 0
	for _, c := range m.counts {
		n += c
	}
	return n
}

// Accuracy returns the overall fraction correct.
func (m *ConfusionMatrix) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for k := 0; k < m.classes; k++ {
		correct += m.counts[k*m.classes+k]
	}
	return float64(correct) / float64(total)
}

// PerClassRecall returns recall per class (NaN-free: 0 when unseen).
func (m *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, m.classes)
	for k := 0; k < m.classes; k++ {
		var row int
		for j := 0; j < m.classes; j++ {
			row += m.counts[k*m.classes+j]
		}
		if row > 0 {
			out[k] = float64(m.counts[k*m.classes+k]) / float64(row)
		}
	}
	return out
}

// PerClassPrecision returns precision per class.
func (m *ConfusionMatrix) PerClassPrecision() []float64 {
	out := make([]float64, m.classes)
	for k := 0; k < m.classes; k++ {
		var col int
		for j := 0; j < m.classes; j++ {
			col += m.counts[j*m.classes+k]
		}
		if col > 0 {
			out[k] = float64(m.counts[k*m.classes+k]) / float64(col)
		}
	}
	return out
}

// MacroF1 returns the unweighted mean F1 across classes.
func (m *ConfusionMatrix) MacroF1() float64 {
	p := m.PerClassPrecision()
	r := m.PerClassRecall()
	var sum float64
	for k := 0; k < m.classes; k++ {
		if p[k]+r[k] > 0 {
			sum += 2 * p[k] * r[k] / (p[k] + r[k])
		}
	}
	return sum / float64(m.classes)
}

// String renders the matrix compactly.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, %d samples, acc %.3f)\n", m.classes, m.Total(), m.Accuracy())
	for k := 0; k < m.classes; k++ {
		for j := 0; j < m.classes; j++ {
			fmt.Fprintf(&b, "%5d", m.counts[k*m.classes+j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Perplexity converts a mean cross-entropy (nats) to perplexity, the LM
// metric the paper's transformer loss curves imply.
func Perplexity(meanCrossEntropy float64) float64 {
	return math.Exp(meanCrossEntropy)
}

// Timer accumulates wall-clock statistics over repeated laps.
type Timer struct {
	n              int
	total          time.Duration
	minLap, maxLap time.Duration
	start          time.Time
	running        bool
}

// Start begins a lap. It panics if a lap is already running (a misuse that
// would silently corrupt statistics).
func (t *Timer) Start() {
	if t.running {
		panic("metrics: Timer.Start while running")
	}
	t.start = time.Now()
	t.running = true
}

// Stop ends the lap and folds it into the statistics.
func (t *Timer) Stop() time.Duration {
	if !t.running {
		panic("metrics: Timer.Stop without Start")
	}
	lap := time.Since(t.start)
	t.running = false
	t.n++
	t.total += lap
	if t.n == 1 || lap < t.minLap {
		t.minLap = lap
	}
	if lap > t.maxLap {
		t.maxLap = lap
	}
	return lap
}

// Laps returns the lap count.
func (t *Timer) Laps() int { return t.n }

// Mean returns the mean lap duration (0 with no laps).
func (t *Timer) Mean() time.Duration {
	if t.n == 0 {
		return 0
	}
	return t.total / time.Duration(t.n)
}

// Min returns the fastest lap.
func (t *Timer) Min() time.Duration { return t.minLap }

// Max returns the slowest lap.
func (t *Timer) Max() time.Duration { return t.maxLap }

// Total returns the summed duration.
func (t *Timer) Total() time.Duration { return t.total }
