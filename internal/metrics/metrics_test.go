package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestConfusionMatrixBasics(t *testing.T) {
	m := NewConfusionMatrix(3)
	m.AddBatch([]int{0, 0, 1, 2, 2, 2}, []int{0, 1, 1, 2, 2, 0})
	if m.Total() != 6 {
		t.Fatalf("total %d", m.Total())
	}
	if acc := m.Accuracy(); math.Abs(acc-4.0/6) > 1e-12 {
		t.Fatalf("accuracy %v", acc)
	}
	recall := m.PerClassRecall()
	if math.Abs(recall[0]-0.5) > 1e-12 || math.Abs(recall[2]-2.0/3) > 1e-12 {
		t.Fatalf("recall %v", recall)
	}
	prec := m.PerClassPrecision()
	if math.Abs(prec[1]-0.5) > 1e-12 {
		t.Fatalf("precision %v", prec)
	}
	if f1 := m.MacroF1(); f1 <= 0 || f1 > 1 {
		t.Fatalf("macro F1 %v", f1)
	}
	if !strings.Contains(m.String(), "acc 0.667") {
		t.Fatalf("String(): %s", m.String())
	}
}

func TestConfusionMatrixValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label should panic")
		}
	}()
	NewConfusionMatrix(2).Add(0, 5)
}

func TestEmptyMatrixSafe(t *testing.T) {
	m := NewConfusionMatrix(4)
	if m.Accuracy() != 0 || m.MacroF1() != 0 {
		t.Fatal("empty matrix should be all-zero, not NaN")
	}
	for _, r := range m.PerClassRecall() {
		if r != 0 {
			t.Fatal("unseen class recall must be 0")
		}
	}
}

func TestPerplexity(t *testing.T) {
	if p := Perplexity(0); p != 1 {
		t.Fatalf("Perplexity(0) = %v", p)
	}
	if p := Perplexity(math.Log(50)); math.Abs(p-50) > 1e-9 {
		t.Fatalf("Perplexity(ln 50) = %v", p)
	}
}

func TestTimerStats(t *testing.T) {
	var tm Timer
	for i := 0; i < 3; i++ {
		tm.Start()
		time.Sleep(time.Millisecond)
		tm.Stop()
	}
	if tm.Laps() != 3 {
		t.Fatalf("laps %d", tm.Laps())
	}
	if tm.Mean() <= 0 || tm.Min() <= 0 || tm.Max() < tm.Min() || tm.Total() < tm.Max() {
		t.Fatalf("stats inconsistent: mean=%v min=%v max=%v total=%v", tm.Mean(), tm.Min(), tm.Max(), tm.Total())
	}
}

func TestTimerMisusePanics(t *testing.T) {
	var tm Timer
	defer func() {
		if recover() == nil {
			t.Fatal("Stop without Start should panic")
		}
	}()
	tm.Stop()
}
