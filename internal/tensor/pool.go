package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Scratch-buffer pool.
//
// Training steps allocate the same tensor shapes over and over: im2col
// column matrices, matmul outputs, activation values, gradient buffers.
// Get/Put recycle those buffers through size-bucketed sync.Pools so the
// steady-state hot path allocates (almost) nothing and the GC stays out of
// the way under heavy traffic.
//
// Buckets hold *Tensor values whose Data capacity is the bucket's
// power-of-two size; Get re-slices a recycled tensor to the requested
// shape, reusing both the struct and its shape slice, so a Get/Put cycle
// is allocation-free once warm.
//
// Ownership rules:
//   - Put only tensors obtained from Get (Put ignores foreign buffers
//     whose capacity is not an exact bucket size).
//   - Never Put a tensor whose Data is shared by a view (Reshape,
//     FromSlice); the next Get would alias live memory.
//   - After Put the tensor must not be touched; Get may hand it to
//     another goroutine immediately.

// maxPoolBits caps pooled buffers at 1<<maxPoolBits floats (1 GiB);
// anything larger is handed to the regular allocator.
const maxPoolBits = 28

var pools [maxPoolBits + 1]sync.Pool

// poolHits/poolMisses instrument Get for tests and benchmarks.
var poolHits, poolMisses atomic.Int64

// Get returns a tensor of the given shape backed by recycled storage when
// available. The contents are arbitrary garbage — callers must fully
// overwrite it. Use GetZero when the op accumulates instead of assigns.
func Get(shape ...int) *Tensor {
	// Inline numel: calling checkedNumel(shape) directly would leak the
	// variadic slice to the heap via its panic path, costing an allocation
	// per Get and defeating the point of the pool.
	n := 1
	for _, d := range shape {
		if d < 0 {
			checkedNumel(append([]int(nil), shape...)) // panics descriptively
		}
		n *= d
	}
	if n == 0 || n > 1<<maxPoolBits {
		return &Tensor{shape: append([]int(nil), shape...), Data: make([]float32, n)}
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if v := pools[b].Get(); v != nil {
		t := v.(*Tensor)
		t.Data = t.Data[:n]
		t.shape = append(t.shape[:0], shape...)
		poolHits.Add(1)
		return t
	}
	poolMisses.Add(1)
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float32, n, 1<<b)}
}

// GetZero is Get with the returned tensor zeroed.
func GetZero(shape ...int) *Tensor {
	t := Get(shape...)
	zeroFloats(t.Data)
	return t
}

// Put returns a tensor to the pool for reuse. nil tensors are ignored, and
// a capacity check filters out most foreign buffers (capacity not an exact
// bucket size) — but the check is a heuristic, not an ownership proof: a
// New- or FromSlice-backed tensor whose capacity happens to be a power of
// two will be accepted. Callers must only Put storage they exclusively
// own, per the ownership rules above.
func Put(t *Tensor) {
	if t == nil {
		return
	}
	c := cap(t.Data)
	if c == 0 || c&(c-1) != 0 || c > 1<<maxPoolBits {
		return
	}
	t.Data = t.Data[:c]
	pools[bits.Len(uint(c))-1].Put(t)
}

// PoolStats reports cumulative Get hits (recycled) and misses (fresh
// allocations) since process start.
func PoolStats() (hits, misses int64) {
	return poolHits.Load(), poolMisses.Load()
}
