package tensor

import "math"

// KaimingUniform fills t (interpreted as a weight with the given fan-in)
// with the He/Kaiming uniform distribution used by PyTorch's default
// conv/linear initialisation: U(-bound, bound), bound = sqrt(6/fanIn)
// adjusted for a = sqrt(5) leaky slope → bound = sqrt(3/fanIn) * gain where
// gain = sqrt(2/(1+5)) = sqrt(1/3); net effect bound = 1/sqrt(fanIn).
func KaimingUniform(rng *RNG, t *Tensor, fanIn int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	bound := float32(1.0 / math.Sqrt(float64(fanIn)))
	rng.FillUniform(t, -bound, bound)
}

// XavierUniform fills t with Glorot/Xavier uniform initialisation.
func XavierUniform(rng *RNG, t *Tensor, fanIn, fanOut int) {
	if fanIn+fanOut <= 0 {
		fanIn, fanOut = 1, 0
	}
	bound := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	rng.FillUniform(t, -bound, bound)
}

// NormalInit fills t with N(0, std²) samples, the common initialisation for
// embeddings and transformer weights.
func NormalInit(rng *RNG, t *Tensor, std float64) {
	rng.FillNormal(t, 0, std)
}
