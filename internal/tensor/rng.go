package tensor

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source for tensor initialisation, dataset
// synthesis, and noise generation. It wraps math/rand/v2's PCG so streams
// are reproducible across platforms and Go releases.
type RNG struct {
	r   *rand.Rand
	src *rand.PCG
}

// NewRNG returns a deterministic generator seeded from seed.
func NewRNG(seed uint64) *RNG {
	src := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{r: rand.New(src), src: src}
}

// MarshalState captures the generator's exact stream position as opaque
// bytes (the underlying PCG cursor). A generator restored with
// UnmarshalState continues the identical draw sequence — the mechanism
// behind checkpointing dropout streams so a resumed run replays randomness
// from the interruption point rather than from the model's build.
func (g *RNG) MarshalState() ([]byte, error) {
	return g.src.MarshalBinary()
}

// UnmarshalState restores a stream position captured by MarshalState.
func (g *RNG) UnmarshalState(b []byte) error {
	return g.src.UnmarshalBinary(b)
}

// Split derives an independent child stream; the parent is unaffected in a
// way that depends only on the call sequence. Useful for giving every layer
// its own stream so that adding layers elsewhere does not perturb
// initialisation (a requirement for Amalgam's exactness property tests).
func (g *RNG) Split(label uint64) *RNG {
	return NewRNG(g.r.Uint64() ^ (label * 0xbf58476d1ce4e5b9))
}

// Uint64 returns a uniformly random 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// IntN returns a uniform int in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Float32 returns a uniform float32 in [0, 1).
func (g *RNG) Float32() float32 { return g.r.Float32() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform float32 in [lo, hi).
func (g *RNG) Uniform(lo, hi float32) float32 {
	return lo + (hi-lo)*g.r.Float32()
}

// Normal returns a Gaussian sample with the given mean and std deviation.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Laplace returns a Laplace-distributed sample with location mu and scale b
// via inverse-CDF sampling.
func (g *RNG) Laplace(mu, b float64) float64 {
	u := g.r.Float64() - 0.5
	if u < 0 {
		return mu + b*math.Log(1+2*u)
	}
	return mu - b*math.Log(1-2*u)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomly permutes the slice via the provided swap fn.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// FillUniform fills t with uniform samples in [lo, hi).
func (g *RNG) FillUniform(t *Tensor, lo, hi float32) {
	for i := range t.Data {
		t.Data[i] = g.Uniform(lo, hi)
	}
}

// FillNormal fills t with Gaussian samples.
func (g *RNG) FillNormal(t *Tensor, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(g.Normal(mean, std))
	}
}

// SampleIndices returns k distinct indices drawn uniformly from [0, n),
// in random order. It panics if k > n.
func (g *RNG) SampleIndices(n, k int) []int {
	if k > n {
		panic("tensor: SampleIndices k > n")
	}
	perm := g.Perm(n)
	return perm[:k]
}
