package tensor

import "math"

// Fused float32 activation kernel family (the third kernel round, after
// matmul/conv and normalization/softmax).
//
// The PR 2 profile left GELU/Tanh/Sigmoid as the last per-element float64
// round-trips on the hot path: every element went through math.Tanh or
// math.Exp plus two conversions. The kernels below evaluate the
// activations entirely in float32 — Tanh32 pairs a Cephes-style odd
// minimax polynomial (|x| < 0.625) with the Exp32 identity
// tanh(x) = sign(x)·(1 − 2/(e^{2|x|}+1)) elsewhere, Sigmoid32 and GELU32
// build on the same machinery — with 8-wide AVX2 row kernels on amd64 and
// the scalar sequence as tail/fallback.
//
// Determinism contract: the element-wise drivers split work only at
// actBlock boundaries (a multiple of the SIMD width), so whether an
// element takes the SIMD or the scalar-tail path depends solely on its
// absolute position, never on the worker count — outputs are bit-identical
// for any SetMaxWorkers value on a given machine/binary. As with the rest
// of the SIMD backend, AVX2 results may differ from the pure-Go kernels in
// the last ulp (FMA contraction), which is why the row kernels never split
// a SIMD run anywhere but a fixed block edge.

// Cephes tanhf constants. The polynomial approximates tanh(x)/x − 1 on
// x² ∈ [0, 0.625²]; the exp path takes over at |x| = 0.625 and clamps at
// 10 because every |x| ≥ ~9.01 already rounds to ±1 in float32, keeping
// 2|x| far inside Exp32's range.
const (
	tanh32P0     = -5.70498872745e-3
	tanh32P1     = 2.06390887954e-2
	tanh32P2     = -5.37397155531e-2
	tanh32P3     = 1.33314422036e-1
	tanh32P4     = -3.33332819422e-1
	tanh32Switch = 0.625
	tanh32Clamp  = 10
)

// GELU tanh-approximation constants (Hendrycks & Gimpel):
// gelu(x) = 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³))).
const (
	gelu32C = 0.7978845608028654 // √(2/π)
	gelu32A = 0.044715
)

// Tanh32 is a fast float32 tanh (a few ulp against float64 math.Tanh over
// the whole range). NaN propagates, ±Inf saturate to ±1, and the
// polynomial path's x·(1 + x²·P) form preserves ±0 and denormals exactly.
// Pure float32 ops in a fixed sequence keep it deterministic.
func Tanh32(x float32) float32 {
	if x != x {
		return x
	}
	b := math.Float32bits(x)
	ax := math.Float32frombits(b &^ (1 << 31))
	if ax < tanh32Switch {
		s := x * x
		p := (((tanh32P0*s+tanh32P1)*s+tanh32P2)*s+tanh32P3)*s + tanh32P4
		return x * (1 + s*p)
	}
	if ax > tanh32Clamp {
		ax = tanh32Clamp
	}
	e := exp32Core(2 * ax)
	t := 1 - 2/(e+1) // e ≥ e^1.25, so 2/(e+1) ∈ (0, 0.46]: no cancellation
	return math.Float32frombits(math.Float32bits(t) | b&(1<<31))
}

// Sigmoid32 is a fast float32 logistic function 1/(1+e^{−x}). Exp32's
// saturation makes the tails exact: x ≥ 88.4 gives exactly 1 and
// x ≤ −88.4 flushes to 0 (the true value is below the float32 exp
// underflow threshold). NaN propagates; Sigmoid32(±0) = 0.5 exactly.
func Sigmoid32(x float32) float32 {
	return 1 / (1 + Exp32(-x))
}

// GELU32 is the tanh-form GELU evaluated in float32 on Tanh32. In the
// negative tail the (1 + tanh) factor cancels, so absolute error grows
// like |x|·ulp(1) there — inherent to the tanh form in float32, and pinned
// by the fuzz suite's stated tolerance.
func GELU32(x float32) float32 {
	u := gelu32C * (x + gelu32A*x*x*x)
	return 0.5 * x * (1 + Tanh32(u))
}

// tanhRow computes dst[i] = Tanh32(src[i]) (dst may alias src). On amd64
// with AVX2 the bulk runs 8-wide; the tail (and other platforms) use the
// scalar kernel.
func tanhRow(dst, src []float32) {
	dst = dst[:len(src)]
	i := 0
	if simdAvailable && len(src) >= 8 {
		tanhRowSIMD(dst, src)
		i = len(src) &^ 7
	}
	for ; i < len(src); i++ {
		dst[i] = Tanh32(src[i])
	}
}

// sigmoidRow computes dst[i] = Sigmoid32(src[i]) (dst may alias src).
func sigmoidRow(dst, src []float32) {
	dst = dst[:len(src)]
	i := 0
	if simdAvailable && len(src) >= 8 {
		sigmoidRowSIMD(dst, src)
		i = len(src) &^ 7
	}
	for ; i < len(src); i++ {
		dst[i] = Sigmoid32(src[i])
	}
}

// actBlock is the fixed element-block granularity of the element-wise
// activation drivers. Parallel splits happen only at block boundaries, and
// the block size is a multiple of the 8-wide SIMD width, so each element's
// SIMD-vs-scalar-tail fate depends only on its absolute position — that is
// what keeps the kernels bit-identical across worker counts.
const actBlock = 8192

// actChunks reports how many chunks the block-parallel driver would use
// for n elements. Kernels use == 1 as the serial fast-path test so they
// can call their range function directly, skipping the escaping closure —
// the difference between 0 and 1 allocs/op on the steady-state hot path.
func actChunks(n int) int {
	return chunksFor((n+actBlock-1)/actBlock, 1)
}

// actParallel runs fn over [0, n) split only at actBlock boundaries (a
// single run and a block-split run agree bit-for-bit because the splits
// are SIMD-width-aligned). Callers handle the serial case themselves.
func actParallel(n int, fn func(i0, i1 int)) {
	parallelFor((n+actBlock-1)/actBlock, 1, func(b0, b1 int) {
		hi := b1 * actBlock
		if hi > n {
			hi = n
		}
		fn(b0*actBlock, hi)
	})
}

// TanhInto computes dst = tanh(src) element-wise (dst may alias src).
func TanhInto(dst, src []float32) {
	dst = dst[:len(src)]
	if actChunks(len(src)) <= 1 {
		tanhRow(dst, src)
		return
	}
	actParallel(len(src), func(i0, i1 int) {
		tanhRow(dst[i0:i1], src[i0:i1])
	})
}

// SigmoidInto computes dst = 1/(1+e^{−src}) element-wise (dst may alias
// src).
func SigmoidInto(dst, src []float32) {
	dst = dst[:len(src)]
	if actChunks(len(src)) <= 1 {
		sigmoidRow(dst, src)
		return
	}
	actParallel(len(src), func(i0, i1 int) {
		sigmoidRow(dst[i0:i1], src[i0:i1])
	})
}

func tanhBwdRange(dx, dy, y []float32, i0, i1 int) {
	for i := i0; i < i1; i++ {
		t := y[i]
		dx[i] += dy[i] * (1 - t*t)
	}
}

// TanhBwdInto accumulates dx += dy ⊙ (1 − y²) given the forward output y —
// the tanh gradient needs only the output, so nothing is staged.
func TanhBwdInto(dx, dy, y []float32) {
	dy = dy[:len(dx)]
	y = y[:len(dx)]
	if actChunks(len(dx)) <= 1 {
		tanhBwdRange(dx, dy, y, 0, len(dx))
		return
	}
	actParallel(len(dx), func(i0, i1 int) {
		tanhBwdRange(dx, dy, y, i0, i1)
	})
}

func sigmoidBwdRange(dx, dy, y []float32, i0, i1 int) {
	for i := i0; i < i1; i++ {
		s := y[i]
		dx[i] += dy[i] * s * (1 - s)
	}
}

// SigmoidBwdInto accumulates dx += dy ⊙ y ⊙ (1 − y) given the forward
// output y.
func SigmoidBwdInto(dx, dy, y []float32) {
	dy = dy[:len(dx)]
	y = y[:len(dx)]
	if actChunks(len(dx)) <= 1 {
		sigmoidBwdRange(dx, dy, y, 0, len(dx))
		return
	}
	actParallel(len(dx), func(i0, i1 int) {
		sigmoidBwdRange(dx, dy, y, i0, i1)
	})
}

func tanhGradRange(dpre, dy, y []float32, i0, i1 int) {
	for i := i0; i < i1; i++ {
		t := y[i]
		dpre[i] = dy[i] * (1 - t*t)
	}
}

// TanhGradInto writes dpre = dy ⊙ (1 − y²) — the pre-activation gradient
// of a fused tanh epilogue, staged for the matmul backward.
func TanhGradInto(dpre, dy, y []float32) {
	dy = dy[:len(dpre)]
	y = y[:len(dpre)]
	if actChunks(len(dpre)) <= 1 {
		tanhGradRange(dpre, dy, y, 0, len(dpre))
		return
	}
	actParallel(len(dpre), func(i0, i1 int) {
		tanhGradRange(dpre, dy, y, i0, i1)
	})
}

func sigmoidGradRange(dpre, dy, y []float32, i0, i1 int) {
	for i := i0; i < i1; i++ {
		s := y[i]
		dpre[i] = dy[i] * s * (1 - s)
	}
}

// SigmoidGradInto writes dpre = dy ⊙ y ⊙ (1 − y) — the pre-activation
// gradient of a fused sigmoid epilogue.
func SigmoidGradInto(dpre, dy, y []float32) {
	dy = dy[:len(dpre)]
	y = y[:len(dpre)]
	if actChunks(len(dpre)) <= 1 {
		sigmoidGradRange(dpre, dy, y, 0, len(dpre))
		return
	}
	actParallel(len(dpre), func(i0, i1 int) {
		sigmoidGradRange(dpre, dy, y, i0, i1)
	})
}

func geluFwdRange(dst, t, x []float32, i0, i1 int) {
	for i := i0; i < i1; i++ {
		v := x[i]
		t[i] = gelu32C * (v + gelu32A*v*v*v)
	}
	tanhRow(t[i0:i1], t[i0:i1])
	for i := i0; i < i1; i++ {
		dst[i] = 0.5 * x[i] * (1 + t[i])
	}
}

// GELUFwdInto computes dst = 0.5·x·(1 + tanh(u)), u = √(2/π)·(x +
// 0.044715·x³), and retains t = tanh(u) (same length as x) for the
// backward pass. The cubic and combine passes are cheap scalar sweeps; the
// tanh in between is the SIMD row kernel, evaluated in place over t.
func GELUFwdInto(dst, t, x []float32) {
	dst = dst[:len(x)]
	t = t[:len(x)]
	if actChunks(len(x)) <= 1 {
		geluFwdRange(dst, t, x, 0, len(x))
		return
	}
	actParallel(len(x), func(i0, i1 int) {
		geluFwdRange(dst, t, x, i0, i1)
	})
}

// geluGrad is the GELU derivative from the input x and retained t =
// tanh(u): gelu'(x) = 0.5·(1+t) + 0.5·x·(1−t²)·√(2/π)·(1 + 3·0.044715·x²).
func geluGrad(x, t float32) float32 {
	return 0.5*(1+t) + 0.5*x*(1-t*t)*gelu32C*(1+3*gelu32A*x*x)
}

func geluBwdRange(dx, dy, x, t []float32, i0, i1 int) {
	for i := i0; i < i1; i++ {
		dx[i] += dy[i] * geluGrad(x[i], t[i])
	}
}

// GELUBwdInto accumulates dx += dy ⊙ gelu'(x) using the forward's retained
// inner tanh t, so the backward never re-evaluates a transcendental.
func GELUBwdInto(dx, dy, x, t []float32) {
	dy = dy[:len(dx)]
	x = x[:len(dx)]
	t = t[:len(dx)]
	if actChunks(len(dx)) <= 1 {
		geluBwdRange(dx, dy, x, t, 0, len(dx))
		return
	}
	actParallel(len(dx), func(i0, i1 int) {
		geluBwdRange(dx, dy, x, t, i0, i1)
	})
}

func geluGradRange(dpre, dy, x, t []float32, i0, i1 int) {
	for i := i0; i < i1; i++ {
		dpre[i] = dy[i] * geluGrad(x[i], t[i])
	}
}

// GELUGradInto writes dpre = dy ⊙ gelu'(x) — the staged pre-activation
// gradient of a fused GELU epilogue.
func GELUGradInto(dpre, dy, x, t []float32) {
	dy = dy[:len(dpre)]
	x = x[:len(dpre)]
	t = t[:len(dpre)]
	if actChunks(len(dpre)) <= 1 {
		geluGradRange(dpre, dy, x, t, 0, len(dpre))
		return
	}
	actParallel(len(dpre), func(i0, i1 int) {
		geluGradRange(dpre, dy, x, t, i0, i1)
	})
}

// AddRowBiasInto writes dst = x + bias broadcast over rows of length d
// (dst may alias x) — the plain epilogue shared by the fused activation
// variants below.
func AddRowBiasInto(dst, x, bias []float32, rows, d int) {
	rpw := fusedRowsPerWorker(d)
	if chunksFor(rows, rpw) <= 1 {
		addRowBiasRange(dst, x, bias, d, 0, rows)
		return
	}
	parallelFor(rows, rpw, func(r0, r1 int) {
		addRowBiasRange(dst, x, bias, d, r0, r1)
	})
}

func addRowBiasRange(dst, x, bias []float32, d, r0, r1 int) {
	bias = bias[:d]
	for r := r0; r < r1; r++ {
		src := x[r*d : (r+1)*d][:d]
		out := dst[r*d : (r+1)*d][:d]
		for j := 0; j < d; j++ {
			out[j] = src[j] + bias[j]
		}
	}
}

// AddRowBiasTanhInto computes dst = tanh(x + bias) for x [rows, d] with
// bias [d] (dst may alias x) — the fused epilogue of a Linear→Tanh pair.
// Rows are assigned to workers whole, so the per-row SIMD/tail split never
// depends on the worker count.
func AddRowBiasTanhInto(dst, x, bias []float32, rows, d int) {
	rpw := fusedRowsPerWorker(d)
	if chunksFor(rows, rpw) <= 1 {
		addRowBiasTanhRange(dst, x, bias, d, 0, rows)
		return
	}
	parallelFor(rows, rpw, func(r0, r1 int) {
		addRowBiasTanhRange(dst, x, bias, d, r0, r1)
	})
}

func addRowBiasTanhRange(dst, x, bias []float32, d, r0, r1 int) {
	bias = bias[:d]
	for r := r0; r < r1; r++ {
		src := x[r*d : (r+1)*d][:d]
		out := dst[r*d : (r+1)*d][:d]
		for j := 0; j < d; j++ {
			out[j] = src[j] + bias[j]
		}
		tanhRow(out, out)
	}
}

// AddChanBiasSigmoidInto computes dst = sigmoid(x + bias[ch]) for
// x [n, c, hw] with bias [c] (dst may alias x) — the fused epilogue of a
// biased Conv2d→Sigmoid pair (attention gates).
func AddChanBiasSigmoidInto(dst, x, bias []float32, n, c, hw int) {
	rpw := fusedRowsPerWorker(c * hw)
	if chunksFor(n, rpw) <= 1 {
		addChanBiasSigmoidRange(dst, x, bias, c, hw, 0, n)
		return
	}
	parallelFor(n, rpw, func(n0, n1 int) {
		addChanBiasSigmoidRange(dst, x, bias, c, hw, n0, n1)
	})
}

func addChanBiasSigmoidRange(dst, x, bias []float32, c, hw, n0, n1 int) {
	for b := n0; b < n1; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			bv := bias[ch]
			src := x[base : base+hw]
			out := dst[base : base+hw][:len(src)]
			for i, v := range src {
				out[i] = v + bv
			}
			sigmoidRow(out, out)
		}
	}
}
