package tensor

import (
	"fmt"
	"math"
	"testing"
)

// matMulNaiveInto is a frozen copy of the seed's row-parallel i-k-j kernel.
// It stays in the bench suite as the reference point for the blocked
// kernels: BenchmarkMatMul vs BenchmarkMatMulNaive on the same machine is
// the speedup the bench trajectory records.
func matMulNaiveInto(out, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	ad, bd, od := a.Data, b.Data, out.Data
	parallelFor(m, matmulRowsPerWorker(k, n), func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			orow := od[i*n : (i+1)*n]
			for x := range orow {
				orow[x] = 0
			}
			arow := ad[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

func benchMatrices(m, k, n int) (a, b *Tensor) {
	rng := NewRNG(42)
	a, b = New(m, k), New(k, n)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	return a, b
}

// BenchmarkMatMul exercises the library kernel at the sizes the acceptance
// criteria track (256×256×256) plus the shapes that dominate training:
// skinny linear-layer products and small attention blocks.
func BenchmarkMatMul(bb *testing.B) {
	sizes := []struct{ m, k, n int }{
		{256, 256, 256},
		{64, 512, 512},
		{128, 27, 1024}, // conv-as-matmul: [OC, C*KH*KW] × [kdim, OutH*OutW]
		{32, 64, 64},    // attention-sized block
	}
	for _, s := range sizes {
		bb.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(bb *testing.B) {
			a, b := benchMatrices(s.m, s.k, s.n)
			out := New(s.m, s.n)
			bb.SetBytes(int64(s.m*s.k+s.k*s.n+s.m*s.n) * 4)
			bb.ReportAllocs()
			bb.ResetTimer()
			for i := 0; i < bb.N; i++ {
				MatMulInto(out, a, b)
			}
		})
	}
}

// BenchmarkMatMulNaive is the seed kernel on the same shapes; the ratio to
// BenchmarkMatMul is the recorded speedup.
func BenchmarkMatMulNaive(bb *testing.B) {
	a, b := benchMatrices(256, 256, 256)
	out := New(256, 256)
	bb.SetBytes(int64(3*256*256) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		matMulNaiveInto(out, a, b)
	}
}

func BenchmarkMatMulBT(bb *testing.B) {
	a, _ := benchMatrices(256, 256, 256)
	c, _ := benchMatrices(256, 256, 256)
	out := New(256, 256)
	bb.SetBytes(int64(3*256*256) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMulBTInto(out, a, c)
	}
}

func BenchmarkMatMulAT(bb *testing.B) {
	a, _ := benchMatrices(256, 256, 256)
	c, _ := benchMatrices(256, 256, 256)
	out := New(256, 256)
	bb.SetBytes(int64(3*256*256) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMulATInto(out, a, c)
	}
}

// layerNormFwdNaive is a frozen copy of the PR 1 scalar LayerNorm forward
// (per-op float64 passes); the ratio to BenchmarkLayerNormFwd is the
// fused-kernel speedup the PR 2 trajectory records.
func layerNormFwdNaive(dst, xhat []float32, invStd []float64, x, gamma, beta []float32, rows, d int, eps float32) {
	for r := 0; r < rows; r++ {
		src := x[r*d : (r+1)*d]
		var mu float64
		for _, v := range src {
			mu += float64(v)
		}
		mu /= float64(d)
		var vr float64
		for _, v := range src {
			dv := float64(v) - mu
			vr += dv * dv
		}
		vr /= float64(d)
		is := 1 / math.Sqrt(vr+float64(eps))
		invStd[r] = is
		xh := xhat[r*d : (r+1)*d]
		out := dst[r*d : (r+1)*d]
		for i, v := range src {
			h := float32((float64(v) - mu) * is)
			xh[i] = h
			out[i] = gamma[i]*h + beta[i]
		}
	}
}

// softmaxRowsNaive is a frozen copy of the PR 1 row softmax (math.Exp per
// element, float64 sum).
func softmaxRowsNaive(dst, x []float32, rows, cols int) {
	for r := 0; r < rows; r++ {
		src := x[r*cols : (r+1)*cols]
		out := dst[r*cols : (r+1)*cols]
		maxv := src[0]
		for _, v := range src[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range src {
			e := math.Exp(float64(v - maxv))
			out[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range out {
			out[j] *= inv
		}
	}
}

func benchNormInputs(rows, d int) (x, gamma, beta *Tensor) {
	rng := NewRNG(77)
	x, gamma, beta = New(rows, d), New(d), New(d)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(gamma, 1, 0.2)
	rng.FillNormal(beta, 0, 0.2)
	return x, gamma, beta
}

func BenchmarkLayerNormFwd(bb *testing.B) {
	const rows, d = 256, 256
	x, gamma, beta := benchNormInputs(rows, d)
	dst := make([]float32, rows*d)
	xhat := make([]float32, rows*d)
	invStd := make([]float32, rows)
	bb.SetBytes(int64(rows*d) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		LayerNormFwdInto(dst, xhat, invStd, x.Data, gamma.Data, beta.Data, rows, d, 1e-5)
	}
}

func BenchmarkLayerNormFwdNaive(bb *testing.B) {
	const rows, d = 256, 256
	x, gamma, beta := benchNormInputs(rows, d)
	dst := make([]float32, rows*d)
	xhat := make([]float32, rows*d)
	invStd := make([]float64, rows)
	bb.SetBytes(int64(rows*d) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		layerNormFwdNaive(dst, xhat, invStd, x.Data, gamma.Data, beta.Data, rows, d, 1e-5)
	}
}

func BenchmarkSoftmaxRows(bb *testing.B) {
	const rows, cols = 512, 64
	x, _, _ := benchNormInputs(rows, cols)
	dst := make([]float32, rows*cols)
	bb.SetBytes(int64(rows*cols) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		SoftmaxRowsInto(dst, x.Data, rows, cols)
	}
}

func BenchmarkSoftmaxRowsNaive(bb *testing.B) {
	const rows, cols = 512, 64
	x, _, _ := benchNormInputs(rows, cols)
	dst := make([]float32, rows*cols)
	bb.SetBytes(int64(rows*cols) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		softmaxRowsNaive(dst, x.Data, rows, cols)
	}
}

// BenchmarkPoolGetPut measures the steady-state cost of the scratch pool
// against a raw allocation of the same footprint.
func BenchmarkPoolGetPut(bb *testing.B) {
	bb.ReportAllocs()
	for i := 0; i < bb.N; i++ {
		t := Get(64, 1024)
		Put(t)
	}
}

func BenchmarkRawAlloc(bb *testing.B) {
	bb.ReportAllocs()
	for i := 0; i < bb.N; i++ {
		t := New(64, 1024)
		_ = t
	}
}
