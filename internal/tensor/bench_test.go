package tensor

import (
	"fmt"
	"testing"
)

// matMulNaiveInto is a frozen copy of the seed's row-parallel i-k-j kernel.
// It stays in the bench suite as the reference point for the blocked
// kernels: BenchmarkMatMul vs BenchmarkMatMulNaive on the same machine is
// the speedup the bench trajectory records.
func matMulNaiveInto(out, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	ad, bd, od := a.Data, b.Data, out.Data
	parallelFor(m, matmulRowsPerWorker(k, n), func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			orow := od[i*n : (i+1)*n]
			for x := range orow {
				orow[x] = 0
			}
			arow := ad[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

func benchMatrices(m, k, n int) (a, b *Tensor) {
	rng := NewRNG(42)
	a, b = New(m, k), New(k, n)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	return a, b
}

// BenchmarkMatMul exercises the library kernel at the sizes the acceptance
// criteria track (256×256×256) plus the shapes that dominate training:
// skinny linear-layer products and small attention blocks.
func BenchmarkMatMul(bb *testing.B) {
	sizes := []struct{ m, k, n int }{
		{256, 256, 256},
		{64, 512, 512},
		{128, 27, 1024}, // conv-as-matmul: [OC, C*KH*KW] × [kdim, OutH*OutW]
		{32, 64, 64},    // attention-sized block
	}
	for _, s := range sizes {
		bb.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(bb *testing.B) {
			a, b := benchMatrices(s.m, s.k, s.n)
			out := New(s.m, s.n)
			bb.SetBytes(int64(s.m*s.k+s.k*s.n+s.m*s.n) * 4)
			bb.ReportAllocs()
			bb.ResetTimer()
			for i := 0; i < bb.N; i++ {
				MatMulInto(out, a, b)
			}
		})
	}
}

// BenchmarkMatMulNaive is the seed kernel on the same shapes; the ratio to
// BenchmarkMatMul is the recorded speedup.
func BenchmarkMatMulNaive(bb *testing.B) {
	a, b := benchMatrices(256, 256, 256)
	out := New(256, 256)
	bb.SetBytes(int64(3*256*256) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		matMulNaiveInto(out, a, b)
	}
}

func BenchmarkMatMulBT(bb *testing.B) {
	a, _ := benchMatrices(256, 256, 256)
	c, _ := benchMatrices(256, 256, 256)
	out := New(256, 256)
	bb.SetBytes(int64(3*256*256) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMulBTInto(out, a, c)
	}
}

func BenchmarkMatMulAT(bb *testing.B) {
	a, _ := benchMatrices(256, 256, 256)
	c, _ := benchMatrices(256, 256, 256)
	out := New(256, 256)
	bb.SetBytes(int64(3*256*256) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMulATInto(out, a, c)
	}
}

// BenchmarkPoolGetPut measures the steady-state cost of the scratch pool
// against a raw allocation of the same footprint.
func BenchmarkPoolGetPut(bb *testing.B) {
	bb.ReportAllocs()
	for i := 0; i < bb.N; i++ {
		t := Get(64, 1024)
		Put(t)
	}
}

func BenchmarkRawAlloc(bb *testing.B) {
	bb.ReportAllocs()
	for i := 0; i < bb.N; i++ {
		t := New(64, 1024)
		_ = t
	}
}
