#include "textflag.h"

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy4x2SIMD(d0, d1, b0, b1, b2, b3 []float32, a *[8]float32)
//
// d0[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j]
// d1[j] += a[4]*b0[j] + a[5]*b1[j] + a[6]*b2[j] + a[7]*b3[j]
// for j in [0, len(d0)). Uses FMA: each term is fused, chained in fixed
// ascending order, so results are deterministic for a given binary.
TEXT ·axpy4x2SIMD(SB), NOSPLIT, $0-152
	MOVQ d0_base+0(FP), DI
	MOVQ d0_len+8(FP), CX
	MOVQ d1_base+24(FP), R11
	MOVQ b0_base+48(FP), SI
	MOVQ b1_base+72(FP), R8
	MOVQ b2_base+96(FP), R9
	MOVQ b3_base+120(FP), R10
	MOVQ a+144(FP), DX
	VBROADCASTSS 0(DX), Y0
	VBROADCASTSS 4(DX), Y1
	VBROADCASTSS 8(DX), Y2
	VBROADCASTSS 12(DX), Y3
	VBROADCASTSS 16(DX), Y4
	VBROADCASTSS 20(DX), Y5
	VBROADCASTSS 24(DX), Y6
	VBROADCASTSS 28(DX), Y7
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ BX, $0
	JEQ  tail
loop8:
	VMOVUPS (SI)(AX*4), Y8
	VMOVUPS (R8)(AX*4), Y9
	VMOVUPS (R9)(AX*4), Y10
	VMOVUPS (R10)(AX*4), Y11
	VMOVUPS (DI)(AX*4), Y12
	VMOVUPS (R11)(AX*4), Y13
	VFMADD231PS Y8, Y0, Y12
	VFMADD231PS Y9, Y1, Y12
	VFMADD231PS Y10, Y2, Y12
	VFMADD231PS Y11, Y3, Y12
	VFMADD231PS Y8, Y4, Y13
	VFMADD231PS Y9, Y5, Y13
	VFMADD231PS Y10, Y6, Y13
	VFMADD231PS Y11, Y7, Y13
	VMOVUPS Y12, (DI)(AX*4)
	VMOVUPS Y13, (R11)(AX*4)
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  loop8
tail:
	CMPQ AX, CX
	JGE  done
tailloop:
	VMOVSS (SI)(AX*4), X8
	VMOVSS (R8)(AX*4), X9
	VMOVSS (R9)(AX*4), X10
	VMOVSS (R10)(AX*4), X11
	VMOVSS (DI)(AX*4), X12
	VMOVSS (R11)(AX*4), X13
	VFMADD231SS X8, X0, X12
	VFMADD231SS X9, X1, X12
	VFMADD231SS X10, X2, X12
	VFMADD231SS X11, X3, X12
	VFMADD231SS X8, X4, X13
	VFMADD231SS X9, X5, X13
	VFMADD231SS X10, X6, X13
	VFMADD231SS X11, X7, X13
	VMOVSS X12, (DI)(AX*4)
	VMOVSS X13, (R11)(AX*4)
	INCQ AX
	CMPQ AX, CX
	JLT  tailloop
done:
	VZEROUPPER
	RET

// func axpy4SIMD(d, b0, b1, b2, b3 []float32, a *[4]float32)
//
// d[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j]
// Identical per-element FMA chain to row 0 of axpy4x2SIMD.
TEXT ·axpy4SIMD(SB), NOSPLIT, $0-128
	MOVQ d_base+0(FP), DI
	MOVQ d_len+8(FP), CX
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), R8
	MOVQ b2_base+72(FP), R9
	MOVQ b3_base+96(FP), R10
	MOVQ a+120(FP), DX
	VBROADCASTSS 0(DX), Y0
	VBROADCASTSS 4(DX), Y1
	VBROADCASTSS 8(DX), Y2
	VBROADCASTSS 12(DX), Y3
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ BX, $0
	JEQ  tail1
loop8a:
	VMOVUPS (SI)(AX*4), Y8
	VMOVUPS (R8)(AX*4), Y9
	VMOVUPS (R9)(AX*4), Y10
	VMOVUPS (R10)(AX*4), Y11
	VMOVUPS (DI)(AX*4), Y12
	VFMADD231PS Y8, Y0, Y12
	VFMADD231PS Y9, Y1, Y12
	VFMADD231PS Y10, Y2, Y12
	VFMADD231PS Y11, Y3, Y12
	VMOVUPS Y12, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  loop8a
tail1:
	CMPQ AX, CX
	JGE  done1
tailloop1:
	VMOVSS (SI)(AX*4), X8
	VMOVSS (R8)(AX*4), X9
	VMOVSS (R9)(AX*4), X10
	VMOVSS (R10)(AX*4), X11
	VMOVSS (DI)(AX*4), X12
	VFMADD231SS X8, X0, X12
	VFMADD231SS X9, X1, X12
	VFMADD231SS X10, X2, X12
	VFMADD231SS X11, X3, X12
	VMOVSS X12, (DI)(AX*4)
	INCQ AX
	CMPQ AX, CX
	JLT  tailloop1
done1:
	VZEROUPPER
	RET

// func dot4SIMD(a, b0, b1, b2, b3 []float32, out *[4]float32)
//
// out[r] = Σ_p a[p]*br[p], each accumulated in 8 SIMD lanes with FMA.
// The high four lanes are folded into the low four BEFORE the scalar tail
// loop: the VEX.128 tail FMAs zero bits 128-255 of their destination YMM
// register, so folding first is required for correctness, not style. The
// tail then accumulates into lane 0 and a fixed shuffle order reduces the
// rest. Deterministic for a given binary.
TEXT ·dot4SIMD(SB), NOSPLIT, $0-128
	MOVQ a_base+0(FP), DI
	MOVQ a_len+8(FP), CX
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), R8
	MOVQ b2_base+72(FP), R9
	MOVQ b3_base+96(FP), R10
	MOVQ out+120(FP), DX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ BX, $0
	JEQ  dtail
dloop8:
	VMOVUPS (DI)(AX*4), Y8
	VMOVUPS (SI)(AX*4), Y9
	VMOVUPS (R8)(AX*4), Y10
	VMOVUPS (R9)(AX*4), Y11
	VMOVUPS (R10)(AX*4), Y12
	VFMADD231PS Y9, Y8, Y0
	VFMADD231PS Y10, Y8, Y1
	VFMADD231PS Y11, Y8, Y2
	VFMADD231PS Y12, Y8, Y3
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  dloop8
dtail:
	// fold hi128 into lo128 before any VEX.128 op touches Y0..Y3
	VEXTRACTF128 $1, Y0, X8
	VADDPS X8, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPS X8, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPS X8, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPS X8, X3, X3
	CMPQ AX, CX
	JGE  dreduce
dtailloop:
	VMOVSS (DI)(AX*4), X8
	VMOVSS (SI)(AX*4), X9
	VMOVSS (R8)(AX*4), X10
	VMOVSS (R9)(AX*4), X11
	VMOVSS (R10)(AX*4), X12
	VFMADD231SS X9, X8, X0
	VFMADD231SS X10, X8, X1
	VFMADD231SS X11, X8, X2
	VFMADD231SS X12, X8, X3
	INCQ AX
	CMPQ AX, CX
	JLT  dtailloop
dreduce:
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3
	VMOVSS X0, 0(DX)
	VMOVSS X1, 4(DX)
	VMOVSS X2, 8(DX)
	VMOVSS X3, 12(DX)
	VZEROUPPER
	RET
