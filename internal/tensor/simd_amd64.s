#include "textflag.h"

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy4x2SIMD(d0, d1, b0, b1, b2, b3 []float32, a *[8]float32)
//
// d0[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j]
// d1[j] += a[4]*b0[j] + a[5]*b1[j] + a[6]*b2[j] + a[7]*b3[j]
// for j in [0, len(d0)). Uses FMA: each term is fused, chained in fixed
// ascending order, so results are deterministic for a given binary.
TEXT ·axpy4x2SIMD(SB), NOSPLIT, $0-152
	MOVQ d0_base+0(FP), DI
	MOVQ d0_len+8(FP), CX
	MOVQ d1_base+24(FP), R11
	MOVQ b0_base+48(FP), SI
	MOVQ b1_base+72(FP), R8
	MOVQ b2_base+96(FP), R9
	MOVQ b3_base+120(FP), R10
	MOVQ a+144(FP), DX
	VBROADCASTSS 0(DX), Y0
	VBROADCASTSS 4(DX), Y1
	VBROADCASTSS 8(DX), Y2
	VBROADCASTSS 12(DX), Y3
	VBROADCASTSS 16(DX), Y4
	VBROADCASTSS 20(DX), Y5
	VBROADCASTSS 24(DX), Y6
	VBROADCASTSS 28(DX), Y7
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ BX, $0
	JEQ  tail
loop8:
	VMOVUPS (SI)(AX*4), Y8
	VMOVUPS (R8)(AX*4), Y9
	VMOVUPS (R9)(AX*4), Y10
	VMOVUPS (R10)(AX*4), Y11
	VMOVUPS (DI)(AX*4), Y12
	VMOVUPS (R11)(AX*4), Y13
	VFMADD231PS Y8, Y0, Y12
	VFMADD231PS Y9, Y1, Y12
	VFMADD231PS Y10, Y2, Y12
	VFMADD231PS Y11, Y3, Y12
	VFMADD231PS Y8, Y4, Y13
	VFMADD231PS Y9, Y5, Y13
	VFMADD231PS Y10, Y6, Y13
	VFMADD231PS Y11, Y7, Y13
	VMOVUPS Y12, (DI)(AX*4)
	VMOVUPS Y13, (R11)(AX*4)
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  loop8
tail:
	CMPQ AX, CX
	JGE  done
tailloop:
	VMOVSS (SI)(AX*4), X8
	VMOVSS (R8)(AX*4), X9
	VMOVSS (R9)(AX*4), X10
	VMOVSS (R10)(AX*4), X11
	VMOVSS (DI)(AX*4), X12
	VMOVSS (R11)(AX*4), X13
	VFMADD231SS X8, X0, X12
	VFMADD231SS X9, X1, X12
	VFMADD231SS X10, X2, X12
	VFMADD231SS X11, X3, X12
	VFMADD231SS X8, X4, X13
	VFMADD231SS X9, X5, X13
	VFMADD231SS X10, X6, X13
	VFMADD231SS X11, X7, X13
	VMOVSS X12, (DI)(AX*4)
	VMOVSS X13, (R11)(AX*4)
	INCQ AX
	CMPQ AX, CX
	JLT  tailloop
done:
	VZEROUPPER
	RET

// func axpy4SIMD(d, b0, b1, b2, b3 []float32, a *[4]float32)
//
// d[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j]
// Identical per-element FMA chain to row 0 of axpy4x2SIMD.
TEXT ·axpy4SIMD(SB), NOSPLIT, $0-128
	MOVQ d_base+0(FP), DI
	MOVQ d_len+8(FP), CX
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), R8
	MOVQ b2_base+72(FP), R9
	MOVQ b3_base+96(FP), R10
	MOVQ a+120(FP), DX
	VBROADCASTSS 0(DX), Y0
	VBROADCASTSS 4(DX), Y1
	VBROADCASTSS 8(DX), Y2
	VBROADCASTSS 12(DX), Y3
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ BX, $0
	JEQ  tail1
loop8a:
	VMOVUPS (SI)(AX*4), Y8
	VMOVUPS (R8)(AX*4), Y9
	VMOVUPS (R9)(AX*4), Y10
	VMOVUPS (R10)(AX*4), Y11
	VMOVUPS (DI)(AX*4), Y12
	VFMADD231PS Y8, Y0, Y12
	VFMADD231PS Y9, Y1, Y12
	VFMADD231PS Y10, Y2, Y12
	VFMADD231PS Y11, Y3, Y12
	VMOVUPS Y12, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  loop8a
tail1:
	CMPQ AX, CX
	JGE  done1
tailloop1:
	VMOVSS (SI)(AX*4), X8
	VMOVSS (R8)(AX*4), X9
	VMOVSS (R9)(AX*4), X10
	VMOVSS (R10)(AX*4), X11
	VMOVSS (DI)(AX*4), X12
	VFMADD231SS X8, X0, X12
	VFMADD231SS X9, X1, X12
	VFMADD231SS X10, X2, X12
	VFMADD231SS X11, X3, X12
	VMOVSS X12, (DI)(AX*4)
	INCQ AX
	CMPQ AX, CX
	JLT  tailloop1
done1:
	VZEROUPPER
	RET

// func dot4SIMD(a, b0, b1, b2, b3 []float32, out *[4]float32)
//
// out[r] = Σ_p a[p]*br[p], each accumulated in 8 SIMD lanes with FMA.
// The high four lanes are folded into the low four BEFORE the scalar tail
// loop: the VEX.128 tail FMAs zero bits 128-255 of their destination YMM
// register, so folding first is required for correctness, not style. The
// tail then accumulates into lane 0 and a fixed shuffle order reduces the
// rest. Deterministic for a given binary.
TEXT ·dot4SIMD(SB), NOSPLIT, $0-128
	MOVQ a_base+0(FP), DI
	MOVQ a_len+8(FP), CX
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), R8
	MOVQ b2_base+72(FP), R9
	MOVQ b3_base+96(FP), R10
	MOVQ out+120(FP), DX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ BX, $0
	JEQ  dtail
dloop8:
	VMOVUPS (DI)(AX*4), Y8
	VMOVUPS (SI)(AX*4), Y9
	VMOVUPS (R8)(AX*4), Y10
	VMOVUPS (R9)(AX*4), Y11
	VMOVUPS (R10)(AX*4), Y12
	VFMADD231PS Y9, Y8, Y0
	VFMADD231PS Y10, Y8, Y1
	VFMADD231PS Y11, Y8, Y2
	VFMADD231PS Y12, Y8, Y3
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  dloop8
dtail:
	// fold hi128 into lo128 before any VEX.128 op touches Y0..Y3
	VEXTRACTF128 $1, Y0, X8
	VADDPS X8, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPS X8, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPS X8, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPS X8, X3, X3
	CMPQ AX, CX
	JGE  dreduce
dtailloop:
	VMOVSS (DI)(AX*4), X8
	VMOVSS (SI)(AX*4), X9
	VMOVSS (R8)(AX*4), X10
	VMOVSS (R9)(AX*4), X11
	VMOVSS (R10)(AX*4), X12
	VFMADD231SS X9, X8, X0
	VFMADD231SS X10, X8, X1
	VFMADD231SS X11, X8, X2
	VFMADD231SS X12, X8, X3
	INCQ AX
	CMPQ AX, CX
	JLT  dtailloop
dreduce:
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3
	VMOVSS X0, 0(DX)
	VMOVSS X1, 4(DX)
	VMOVSS X2, 8(DX)
	VMOVSS X3, 12(DX)
	VZEROUPPER
	RET

// Pre-broadcast 8-lane constant vectors for the exp row kernel. Keeping
// them as full 32-byte rows lets the polynomial use memory-operand FMAs
// instead of burning a register per coefficient.
DATA expLog2e<>+0(SB)/4, $0x3FB8AA3B
DATA expLog2e<>+4(SB)/4, $0x3FB8AA3B
DATA expLog2e<>+8(SB)/4, $0x3FB8AA3B
DATA expLog2e<>+12(SB)/4, $0x3FB8AA3B
DATA expLog2e<>+16(SB)/4, $0x3FB8AA3B
DATA expLog2e<>+20(SB)/4, $0x3FB8AA3B
DATA expLog2e<>+24(SB)/4, $0x3FB8AA3B
DATA expLog2e<>+28(SB)/4, $0x3FB8AA3B
GLOBL expLog2e<>(SB), RODATA, $32

DATA expMagic<>+0(SB)/4, $0x4B400000
DATA expMagic<>+4(SB)/4, $0x4B400000
DATA expMagic<>+8(SB)/4, $0x4B400000
DATA expMagic<>+12(SB)/4, $0x4B400000
DATA expMagic<>+16(SB)/4, $0x4B400000
DATA expMagic<>+20(SB)/4, $0x4B400000
DATA expMagic<>+24(SB)/4, $0x4B400000
DATA expMagic<>+28(SB)/4, $0x4B400000
GLOBL expMagic<>(SB), RODATA, $32

DATA expC1<>+0(SB)/4, $0x3F318000
DATA expC1<>+4(SB)/4, $0x3F318000
DATA expC1<>+8(SB)/4, $0x3F318000
DATA expC1<>+12(SB)/4, $0x3F318000
DATA expC1<>+16(SB)/4, $0x3F318000
DATA expC1<>+20(SB)/4, $0x3F318000
DATA expC1<>+24(SB)/4, $0x3F318000
DATA expC1<>+28(SB)/4, $0x3F318000
GLOBL expC1<>(SB), RODATA, $32

DATA expC2<>+0(SB)/4, $0xB95E8083
DATA expC2<>+4(SB)/4, $0xB95E8083
DATA expC2<>+8(SB)/4, $0xB95E8083
DATA expC2<>+12(SB)/4, $0xB95E8083
DATA expC2<>+16(SB)/4, $0xB95E8083
DATA expC2<>+20(SB)/4, $0xB95E8083
DATA expC2<>+24(SB)/4, $0xB95E8083
DATA expC2<>+28(SB)/4, $0xB95E8083
GLOBL expC2<>(SB), RODATA, $32

DATA expP0<>+0(SB)/4, $0x39506967
DATA expP0<>+4(SB)/4, $0x39506967
DATA expP0<>+8(SB)/4, $0x39506967
DATA expP0<>+12(SB)/4, $0x39506967
DATA expP0<>+16(SB)/4, $0x39506967
DATA expP0<>+20(SB)/4, $0x39506967
DATA expP0<>+24(SB)/4, $0x39506967
DATA expP0<>+28(SB)/4, $0x39506967
GLOBL expP0<>(SB), RODATA, $32

DATA expP1<>+0(SB)/4, $0x3AB743CE
DATA expP1<>+4(SB)/4, $0x3AB743CE
DATA expP1<>+8(SB)/4, $0x3AB743CE
DATA expP1<>+12(SB)/4, $0x3AB743CE
DATA expP1<>+16(SB)/4, $0x3AB743CE
DATA expP1<>+20(SB)/4, $0x3AB743CE
DATA expP1<>+24(SB)/4, $0x3AB743CE
DATA expP1<>+28(SB)/4, $0x3AB743CE
GLOBL expP1<>(SB), RODATA, $32

DATA expP2<>+0(SB)/4, $0x3C088908
DATA expP2<>+4(SB)/4, $0x3C088908
DATA expP2<>+8(SB)/4, $0x3C088908
DATA expP2<>+12(SB)/4, $0x3C088908
DATA expP2<>+16(SB)/4, $0x3C088908
DATA expP2<>+20(SB)/4, $0x3C088908
DATA expP2<>+24(SB)/4, $0x3C088908
DATA expP2<>+28(SB)/4, $0x3C088908
GLOBL expP2<>(SB), RODATA, $32

DATA expP3<>+0(SB)/4, $0x3D2AA9C1
DATA expP3<>+4(SB)/4, $0x3D2AA9C1
DATA expP3<>+8(SB)/4, $0x3D2AA9C1
DATA expP3<>+12(SB)/4, $0x3D2AA9C1
DATA expP3<>+16(SB)/4, $0x3D2AA9C1
DATA expP3<>+20(SB)/4, $0x3D2AA9C1
DATA expP3<>+24(SB)/4, $0x3D2AA9C1
DATA expP3<>+28(SB)/4, $0x3D2AA9C1
GLOBL expP3<>(SB), RODATA, $32

DATA expP4<>+0(SB)/4, $0x3E2AAAAA
DATA expP4<>+4(SB)/4, $0x3E2AAAAA
DATA expP4<>+8(SB)/4, $0x3E2AAAAA
DATA expP4<>+12(SB)/4, $0x3E2AAAAA
DATA expP4<>+16(SB)/4, $0x3E2AAAAA
DATA expP4<>+20(SB)/4, $0x3E2AAAAA
DATA expP4<>+24(SB)/4, $0x3E2AAAAA
DATA expP4<>+28(SB)/4, $0x3E2AAAAA
GLOBL expP4<>(SB), RODATA, $32

DATA expP5<>+0(SB)/4, $0x3F000000
DATA expP5<>+4(SB)/4, $0x3F000000
DATA expP5<>+8(SB)/4, $0x3F000000
DATA expP5<>+12(SB)/4, $0x3F000000
DATA expP5<>+16(SB)/4, $0x3F000000
DATA expP5<>+20(SB)/4, $0x3F000000
DATA expP5<>+24(SB)/4, $0x3F000000
DATA expP5<>+28(SB)/4, $0x3F000000
GLOBL expP5<>(SB), RODATA, $32

// 0x3F800000 is both float32(1.0) and the integer exponent bias 127<<23,
// so one table serves the res = r+1 add and the 2^n reconstruction.
DATA expOne<>+0(SB)/4, $0x3F800000
DATA expOne<>+4(SB)/4, $0x3F800000
DATA expOne<>+8(SB)/4, $0x3F800000
DATA expOne<>+12(SB)/4, $0x3F800000
DATA expOne<>+16(SB)/4, $0x3F800000
DATA expOne<>+20(SB)/4, $0x3F800000
DATA expOne<>+24(SB)/4, $0x3F800000
DATA expOne<>+28(SB)/4, $0x3F800000
GLOBL expOne<>(SB), RODATA, $32

DATA expLo<>+0(SB)/4, $0xC2AEAC50
DATA expLo<>+4(SB)/4, $0xC2AEAC50
DATA expLo<>+8(SB)/4, $0xC2AEAC50
DATA expLo<>+12(SB)/4, $0xC2AEAC50
DATA expLo<>+16(SB)/4, $0xC2AEAC50
DATA expLo<>+20(SB)/4, $0xC2AEAC50
DATA expLo<>+24(SB)/4, $0xC2AEAC50
DATA expLo<>+28(SB)/4, $0xC2AEAC50
GLOBL expLo<>(SB), RODATA, $32

// func expRowSumSIMD(dst, src []float32, maxv float32) float64
//
// For j in [0, len&^7): dst[j] = e^(src[j]-maxv), flushed to 0 below the
// float32 underflow threshold; returns Σ dst[j] accumulated in 8 float64
// lanes reduced in a fixed order. The remaining tail elements are the
// caller's job. Same range reduction and polynomial as exp32Core, with
// FMA where the scalar code rounds twice — consistent per machine/binary
// like the rest of the SIMD backend.
TEXT ·expRowSumSIMD(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	VBROADCASTSS maxv+48(FP), Y15
	VXORPD Y13, Y13, Y13             // f64 sum lanes 0-3
	VXORPD Y12, Y12, Y12             // f64 sum lanes 4-7
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ BX, $0
	JEQ  esum
eloop8:
	VMOVUPS (SI)(AX*4), Y0
	VSUBPS Y15, Y0, Y0               // x = src - maxv
	VMOVUPS expMagic<>(SB), Y1
	VFMADD231PS expLog2e<>(SB), Y0, Y1 // t = x*log2e + magic (round-to-nearest)
	VSUBPS expMagic<>(SB), Y1, Y1    // rz = t - magic
	VCVTTPS2DQ Y1, Y2                // n (rz is integral, truncation exact)
	VMOVAPS Y0, Y3
	VFNMADD231PS expC1<>(SB), Y1, Y3 // r = x - rz*c1
	VFNMADD231PS expC2<>(SB), Y1, Y3 // r -= rz*c2
	VMOVUPS expP0<>(SB), Y4
	VFMADD213PS expP1<>(SB), Y3, Y4  // p = p*r + c, ascending
	VFMADD213PS expP2<>(SB), Y3, Y4
	VFMADD213PS expP3<>(SB), Y3, Y4
	VFMADD213PS expP4<>(SB), Y3, Y4
	VFMADD213PS expP5<>(SB), Y3, Y4
	VMULPS Y3, Y3, Y5                // z = r*r
	VADDPS expOne<>(SB), Y3, Y6      // res = r + 1
	VFMADD231PS Y4, Y5, Y6           // res += z*p
	VPSLLD $23, Y2, Y2
	VPADDD expOne<>(SB), Y2, Y2      // (n<<23) + (127<<23)
	VMULPS Y2, Y6, Y6                // res *= 2^n
	VCMPPS $1, expLo<>(SB), Y0, Y7   // mask = x < underflow threshold
	VANDNPS Y6, Y7, Y6               // res = 0 where masked
	VMOVUPS Y6, (DI)(AX*4)
	VCVTPS2PD X6, Y8                 // lanes 0-3 → float64
	VADDPD Y8, Y13, Y13
	VEXTRACTF128 $1, Y6, X8
	VCVTPS2PD X8, Y8                 // lanes 4-7 → float64
	VADDPD Y8, Y12, Y12
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  eloop8
esum:
	VADDPD Y12, Y13, Y13             // fixed lane-combine order
	VEXTRACTF128 $1, Y13, X8
	VADDPD X8, X13, X13
	VHADDPD X13, X13, X13
	VMOVSD X13, ret+56(FP)
	VZEROUPPER
	RET

// func normAffineSIMD(dst, xh, src, gamma, beta []float32, mu, is float32)
//
// For j in [0, len&^7): h = (src[j]-mu)*is; xh[j] = h;
// dst[j] = gamma[j]*h + beta[j]. Tail is the caller's job.
TEXT ·normAffineSIMD(SB), NOSPLIT, $0-128
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ xh_base+24(FP), R8
	MOVQ src_base+48(FP), SI
	MOVQ gamma_base+72(FP), R9
	MOVQ beta_base+96(FP), R10
	VBROADCASTSS mu+120(FP), Y14
	VBROADCASTSS is+124(FP), Y15
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ BX, $0
	JEQ  ndone
nloop8:
	VMOVUPS (SI)(AX*4), Y0
	VSUBPS Y14, Y0, Y0               // src - mu
	VMULPS Y15, Y0, Y0               // h
	VMOVUPS Y0, (R8)(AX*4)
	VMOVUPS (R10)(AX*4), Y1          // beta
	VFMADD231PS (R9)(AX*4), Y0, Y1   // beta + gamma*h
	VMOVUPS Y1, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  nloop8
ndone:
	VZEROUPPER
	RET

// func lnBwdDxSIMD(dx, dy, gamma, xh []float32, mDy, mDyX, is float32)
//
// For j in [0, len&^7): dx[j] += is*(dy[j]*gamma[j] - mDy - xh[j]*mDyX).
// Tail is the caller's job.
TEXT ·lnBwdDxSIMD(SB), NOSPLIT, $0-108
	MOVQ dx_base+0(FP), DI
	MOVQ dx_len+8(FP), CX
	MOVQ dy_base+24(FP), SI
	MOVQ gamma_base+48(FP), R8
	MOVQ xh_base+72(FP), R9
	VBROADCASTSS mDy+96(FP), Y13
	VBROADCASTSS mDyX+100(FP), Y14
	VBROADCASTSS is+104(FP), Y15
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ BX, $0
	JEQ  ldone
lloop8:
	VMOVUPS (SI)(AX*4), Y0           // dy
	VMULPS (R8)(AX*4), Y0, Y0        // dy*gamma
	VSUBPS Y13, Y0, Y0               // - mDy
	VMOVUPS (R9)(AX*4), Y1           // xh
	VFNMADD231PS Y14, Y1, Y0         // - xh*mDyX
	VMOVUPS (DI)(AX*4), Y2
	VFMADD231PS Y15, Y0, Y2          // dx += is * t
	VMOVUPS Y2, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  lloop8
ldone:
	VZEROUPPER
	RET

// Constants for the activation row kernels (8-lane float32 rows, same
// memory-operand style as the exp tables above).
DATA actSignMask<>+0(SB)/4, $0x80000000
DATA actSignMask<>+4(SB)/4, $0x80000000
DATA actSignMask<>+8(SB)/4, $0x80000000
DATA actSignMask<>+12(SB)/4, $0x80000000
DATA actSignMask<>+16(SB)/4, $0x80000000
DATA actSignMask<>+20(SB)/4, $0x80000000
DATA actSignMask<>+24(SB)/4, $0x80000000
DATA actSignMask<>+28(SB)/4, $0x80000000
GLOBL actSignMask<>(SB), RODATA, $32

DATA actAbsMask<>+0(SB)/4, $0x7FFFFFFF
DATA actAbsMask<>+4(SB)/4, $0x7FFFFFFF
DATA actAbsMask<>+8(SB)/4, $0x7FFFFFFF
DATA actAbsMask<>+12(SB)/4, $0x7FFFFFFF
DATA actAbsMask<>+16(SB)/4, $0x7FFFFFFF
DATA actAbsMask<>+20(SB)/4, $0x7FFFFFFF
DATA actAbsMask<>+24(SB)/4, $0x7FFFFFFF
DATA actAbsMask<>+28(SB)/4, $0x7FFFFFFF
GLOBL actAbsMask<>(SB), RODATA, $32

DATA actTwo<>+0(SB)/4, $0x40000000
DATA actTwo<>+4(SB)/4, $0x40000000
DATA actTwo<>+8(SB)/4, $0x40000000
DATA actTwo<>+12(SB)/4, $0x40000000
DATA actTwo<>+16(SB)/4, $0x40000000
DATA actTwo<>+20(SB)/4, $0x40000000
DATA actTwo<>+24(SB)/4, $0x40000000
DATA actTwo<>+28(SB)/4, $0x40000000
GLOBL actTwo<>(SB), RODATA, $32

// 0.625 — crossover between the tanh polynomial and exp paths.
DATA tanhSwitch<>+0(SB)/4, $0x3F200000
DATA tanhSwitch<>+4(SB)/4, $0x3F200000
DATA tanhSwitch<>+8(SB)/4, $0x3F200000
DATA tanhSwitch<>+12(SB)/4, $0x3F200000
DATA tanhSwitch<>+16(SB)/4, $0x3F200000
DATA tanhSwitch<>+20(SB)/4, $0x3F200000
DATA tanhSwitch<>+24(SB)/4, $0x3F200000
DATA tanhSwitch<>+28(SB)/4, $0x3F200000
GLOBL tanhSwitch<>(SB), RODATA, $32

// 10.0 — exp-path clamp (tanh rounds to ±1 beyond ~9.01 anyway).
DATA tanhClamp<>+0(SB)/4, $0x41200000
DATA tanhClamp<>+4(SB)/4, $0x41200000
DATA tanhClamp<>+8(SB)/4, $0x41200000
DATA tanhClamp<>+12(SB)/4, $0x41200000
DATA tanhClamp<>+16(SB)/4, $0x41200000
DATA tanhClamp<>+20(SB)/4, $0x41200000
DATA tanhClamp<>+24(SB)/4, $0x41200000
DATA tanhClamp<>+28(SB)/4, $0x41200000
GLOBL tanhClamp<>(SB), RODATA, $32

// Cephes tanhf minimax polynomial, ascending Horner order P0..P4.
DATA tanhP0<>+0(SB)/4, $0xBBBAF0EA
DATA tanhP0<>+4(SB)/4, $0xBBBAF0EA
DATA tanhP0<>+8(SB)/4, $0xBBBAF0EA
DATA tanhP0<>+12(SB)/4, $0xBBBAF0EA
DATA tanhP0<>+16(SB)/4, $0xBBBAF0EA
DATA tanhP0<>+20(SB)/4, $0xBBBAF0EA
DATA tanhP0<>+24(SB)/4, $0xBBBAF0EA
DATA tanhP0<>+28(SB)/4, $0xBBBAF0EA
GLOBL tanhP0<>(SB), RODATA, $32

DATA tanhP1<>+0(SB)/4, $0x3CA9134E
DATA tanhP1<>+4(SB)/4, $0x3CA9134E
DATA tanhP1<>+8(SB)/4, $0x3CA9134E
DATA tanhP1<>+12(SB)/4, $0x3CA9134E
DATA tanhP1<>+16(SB)/4, $0x3CA9134E
DATA tanhP1<>+20(SB)/4, $0x3CA9134E
DATA tanhP1<>+24(SB)/4, $0x3CA9134E
DATA tanhP1<>+28(SB)/4, $0x3CA9134E
GLOBL tanhP1<>(SB), RODATA, $32

DATA tanhP2<>+0(SB)/4, $0xBD5C1E2D
DATA tanhP2<>+4(SB)/4, $0xBD5C1E2D
DATA tanhP2<>+8(SB)/4, $0xBD5C1E2D
DATA tanhP2<>+12(SB)/4, $0xBD5C1E2D
DATA tanhP2<>+16(SB)/4, $0xBD5C1E2D
DATA tanhP2<>+20(SB)/4, $0xBD5C1E2D
DATA tanhP2<>+24(SB)/4, $0xBD5C1E2D
DATA tanhP2<>+28(SB)/4, $0xBD5C1E2D
GLOBL tanhP2<>(SB), RODATA, $32

DATA tanhP3<>+0(SB)/4, $0x3E088393
DATA tanhP3<>+4(SB)/4, $0x3E088393
DATA tanhP3<>+8(SB)/4, $0x3E088393
DATA tanhP3<>+12(SB)/4, $0x3E088393
DATA tanhP3<>+16(SB)/4, $0x3E088393
DATA tanhP3<>+20(SB)/4, $0x3E088393
DATA tanhP3<>+24(SB)/4, $0x3E088393
DATA tanhP3<>+28(SB)/4, $0x3E088393
GLOBL tanhP3<>(SB), RODATA, $32

DATA tanhP4<>+0(SB)/4, $0xBEAAAA99
DATA tanhP4<>+4(SB)/4, $0xBEAAAA99
DATA tanhP4<>+8(SB)/4, $0xBEAAAA99
DATA tanhP4<>+12(SB)/4, $0xBEAAAA99
DATA tanhP4<>+16(SB)/4, $0xBEAAAA99
DATA tanhP4<>+20(SB)/4, $0xBEAAAA99
DATA tanhP4<>+24(SB)/4, $0xBEAAAA99
DATA tanhP4<>+28(SB)/4, $0xBEAAAA99
GLOBL tanhP4<>(SB), RODATA, $32

// 88.37 — above this e^z exceeds the float32 exponent range (same bound
// as the scalar exp32Hi); the sigmoid kernel forces its output to 0 there.
DATA sigHi<>+0(SB)/4, $0x42B0BD71
DATA sigHi<>+4(SB)/4, $0x42B0BD71
DATA sigHi<>+8(SB)/4, $0x42B0BD71
DATA sigHi<>+12(SB)/4, $0x42B0BD71
DATA sigHi<>+16(SB)/4, $0x42B0BD71
DATA sigHi<>+20(SB)/4, $0x42B0BD71
DATA sigHi<>+24(SB)/4, $0x42B0BD71
DATA sigHi<>+28(SB)/4, $0x42B0BD71
GLOBL sigHi<>(SB), RODATA, $32

// func tanhRowSIMD(dst, src []float32)
//
// For j in [0, len&^7): dst[j] = Tanh32(src[j]). Both Tanh32 paths are
// evaluated branch-free and blended: the Cephes polynomial x·(1+x²·P(x²))
// where |x| < 0.625, sign(x)·(1 − 2/(e^{2·min(|x|,10)}+1)) on the exp core
// elsewhere; NaN lanes pass the input through. The tail is the caller's
// job. FMA contraction differs from the scalar kernel in the last ulp —
// consistent per machine/binary like the rest of the SIMD backend.
TEXT ·tanhRowSIMD(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ BX, $0
	JEQ  tdone
tloop8:
	VMOVUPS (SI)(AX*4), Y9           // x
	VANDPS actSignMask<>(SB), Y9, Y10 // sign(x)
	VANDPS actAbsMask<>(SB), Y9, Y11  // |x|
	VMINPS tanhClamp<>(SB), Y11, Y11 // min(|x|, 10); NaN lanes -> 10
	VADDPS Y11, Y11, Y0              // arg = 2*min(|x|, 10)
	// e = exp32 core (same sequence as expRowSumSIMD; arg in [0, 20], so
	// no under/overflow guards are needed).
	VMOVUPS expMagic<>(SB), Y1
	VFMADD231PS expLog2e<>(SB), Y0, Y1
	VSUBPS expMagic<>(SB), Y1, Y1
	VCVTTPS2DQ Y1, Y2
	VMOVAPS Y0, Y3
	VFNMADD231PS expC1<>(SB), Y1, Y3
	VFNMADD231PS expC2<>(SB), Y1, Y3
	VMOVUPS expP0<>(SB), Y4
	VFMADD213PS expP1<>(SB), Y3, Y4
	VFMADD213PS expP2<>(SB), Y3, Y4
	VFMADD213PS expP3<>(SB), Y3, Y4
	VFMADD213PS expP4<>(SB), Y3, Y4
	VFMADD213PS expP5<>(SB), Y3, Y4
	VMULPS Y3, Y3, Y5
	VADDPS expOne<>(SB), Y3, Y6
	VFMADD231PS Y4, Y5, Y6
	VPSLLD $23, Y2, Y2
	VPADDD expOne<>(SB), Y2, Y2
	VMULPS Y2, Y6, Y6                // e = e^arg
	VADDPS expOne<>(SB), Y6, Y6      // e + 1
	VMOVUPS actTwo<>(SB), Y1
	VDIVPS Y6, Y1, Y7                // 2/(e+1)
	VMOVUPS expOne<>(SB), Y1
	VSUBPS Y7, Y1, Y7                // tb = 1 - 2/(e+1)
	VORPS Y10, Y7, Y7                // tb |= sign(x)
	// Polynomial path: ts = x*(1 + s*P(s)), s = x².
	VMULPS Y9, Y9, Y5                // s
	VMOVUPS tanhP0<>(SB), Y4
	VFMADD213PS tanhP1<>(SB), Y5, Y4
	VFMADD213PS tanhP2<>(SB), Y5, Y4
	VFMADD213PS tanhP3<>(SB), Y5, Y4
	VFMADD213PS tanhP4<>(SB), Y5, Y4 // P(s)
	VMOVUPS expOne<>(SB), Y3
	VFMADD231PS Y4, Y5, Y3           // 1 + s*P(s)
	VMULPS Y9, Y3, Y3                // ts
	VCMPPS $1, tanhSwitch<>(SB), Y11, Y2 // |x| < 0.625 (NaN lanes false)
	VBLENDVPS Y2, Y3, Y7, Y8         // res = small ? ts : tb
	VCMPPS $3, Y9, Y9, Y2            // unordered: NaN lanes
	VBLENDVPS Y2, Y9, Y8, Y8         // res = NaN ? x : res
	VMOVUPS Y8, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  tloop8
tdone:
	VZEROUPPER
	RET

// func sigmoidRowSIMD(dst, src []float32)
//
// For j in [0, len&^7): dst[j] = Sigmoid32(src[j]) = 1/(1+e^{-x}).
// z = -x is clamped below at the exp underflow threshold (the result
// rounds to 1 there regardless) and lanes with z above the overflow
// threshold are forced to 0 — matching the scalar kernel's Exp32
// saturation exactly. NaN lanes pass the input through. Tail is the
// caller's job.
TEXT ·sigmoidRowSIMD(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ BX, $0
	JEQ  sdone
sloop8:
	VMOVUPS (SI)(AX*4), Y9           // x
	VXORPS actSignMask<>(SB), Y9, Y0 // z = -x
	VMAXPS expLo<>(SB), Y0, Y0       // clamp z at the underflow threshold
	VCMPPS $14, sigHi<>(SB), Y0, Y8  // overflow lanes: z > 88.37
	// e = exp32 core on z.
	VMOVUPS expMagic<>(SB), Y1
	VFMADD231PS expLog2e<>(SB), Y0, Y1
	VSUBPS expMagic<>(SB), Y1, Y1
	VCVTTPS2DQ Y1, Y2
	VMOVAPS Y0, Y3
	VFNMADD231PS expC1<>(SB), Y1, Y3
	VFNMADD231PS expC2<>(SB), Y1, Y3
	VMOVUPS expP0<>(SB), Y4
	VFMADD213PS expP1<>(SB), Y3, Y4
	VFMADD213PS expP2<>(SB), Y3, Y4
	VFMADD213PS expP3<>(SB), Y3, Y4
	VFMADD213PS expP4<>(SB), Y3, Y4
	VFMADD213PS expP5<>(SB), Y3, Y4
	VMULPS Y3, Y3, Y5
	VADDPS expOne<>(SB), Y3, Y6
	VFMADD231PS Y4, Y5, Y6
	VPSLLD $23, Y2, Y2
	VPADDD expOne<>(SB), Y2, Y2
	VMULPS Y2, Y6, Y6                // e = e^z (garbage on overflow lanes)
	VADDPS expOne<>(SB), Y6, Y6      // 1 + e
	VMOVUPS expOne<>(SB), Y1
	VDIVPS Y6, Y1, Y7                // 1/(1+e)
	VANDNPS Y7, Y8, Y7               // force overflow lanes to 0
	VCMPPS $3, Y9, Y9, Y2            // unordered: NaN lanes
	VBLENDVPS Y2, Y9, Y7, Y7         // res = NaN ? x : res
	VMOVUPS Y7, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  sloop8
sdone:
	VZEROUPPER
	RET
