package tensor

import (
	"math"
	"testing"
)

// TestExp32Accuracy pins Exp32 within ~2 ulp of math.Exp across the useful
// range, exactly 1 at 0, and correct saturation at the range ends.
func TestExp32Accuracy(t *testing.T) {
	if Exp32(0) != 1 {
		t.Fatalf("Exp32(0) = %v, want 1", Exp32(0))
	}
	for x := -87.0; x <= 88.0; x += 0.0137 {
		got := float64(Exp32(float32(x)))
		want := math.Exp(float64(float32(x)))
		rel := math.Abs(got-want) / want
		if rel > 3e-7 {
			t.Fatalf("Exp32(%v) = %v, want %v (rel err %.3g)", x, got, want, rel)
		}
	}
	if !math.IsInf(float64(Exp32(89)), 1) {
		t.Fatal("Exp32 above range must saturate to +Inf")
	}
	if Exp32(-90) != 0 {
		t.Fatal("Exp32 below range must flush to 0")
	}
	if Exp32(-1e9) != 0 || !math.IsInf(float64(Exp32(1e9)), 1) {
		t.Fatal("Exp32 must handle extreme arguments")
	}
}

// layerNormRef is a scalar float64 reference for both passes.
func layerNormRef(x, gamma, beta, dy []float32, rows, d int, eps float32) (y, dx, dg, db []float32) {
	y = make([]float32, rows*d)
	dx = make([]float32, rows*d)
	dg = make([]float32, d)
	db = make([]float32, d)
	for r := 0; r < rows; r++ {
		src := x[r*d : (r+1)*d]
		var mu float64
		for _, v := range src {
			mu += float64(v)
		}
		mu /= float64(d)
		var vr float64
		for _, v := range src {
			dv := float64(v) - mu
			vr += dv * dv
		}
		vr /= float64(d)
		is := 1 / math.Sqrt(vr+float64(eps))
		xh := make([]float64, d)
		for i, v := range src {
			xh[i] = (float64(v) - mu) * is
			y[r*d+i] = float32(float64(gamma[i])*xh[i] + float64(beta[i]))
		}
		dyr := dy[r*d : (r+1)*d]
		var mDy, mDyX float64
		g := make([]float64, d)
		for i := range dyr {
			g[i] = float64(dyr[i]) * float64(gamma[i])
			mDy += g[i]
			mDyX += g[i] * xh[i]
			dg[i] += float32(float64(dyr[i]) * xh[i])
			db[i] += dyr[i]
		}
		mDy /= float64(d)
		mDyX /= float64(d)
		for i := range dyr {
			dx[r*d+i] = float32(is * (g[i] - mDy - xh[i]*mDyX))
		}
	}
	return y, dx, dg, db
}

func maxAbsDiff32(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestLayerNormKernelsMatchReference(t *testing.T) {
	const rows, d = 7, 37
	rng := NewRNG(101)
	x := New(rows, d)
	dy := New(rows, d)
	gamma := New(d)
	beta := New(d)
	rng.FillNormal(x, 0.5, 2)
	rng.FillNormal(dy, 0, 1)
	rng.FillNormal(gamma, 1, 0.3)
	rng.FillNormal(beta, 0, 0.3)

	refY, refDx, refDg, refDb := layerNormRef(x.Data, gamma.Data, beta.Data, dy.Data, rows, d, 1e-5)

	y := make([]float32, rows*d)
	xhat := make([]float32, rows*d)
	invStd := make([]float32, rows)
	LayerNormFwdInto(y, xhat, invStd, x.Data, gamma.Data, beta.Data, rows, d, 1e-5)
	dx := make([]float32, rows*d)
	dg := make([]float32, d)
	db := make([]float32, d)
	LayerNormBwdInto(dx, dg, db, dy.Data, xhat, invStd, gamma.Data, rows, d)

	if diff := maxAbsDiff32(y, refY); diff > 1e-4 {
		t.Fatalf("forward diverges from float64 reference by %g", diff)
	}
	if diff := maxAbsDiff32(dx, refDx); diff > 1e-4 {
		t.Fatalf("dx diverges from float64 reference by %g", diff)
	}
	if diff := maxAbsDiff32(dg, refDg); diff > 1e-4 {
		t.Fatalf("dgamma diverges by %g", diff)
	}
	if diff := maxAbsDiff32(db, refDb); diff > 1e-4 {
		t.Fatalf("dbeta diverges by %g", diff)
	}

	// nil gradient slots must be skipped without touching the others.
	dx2 := make([]float32, rows*d)
	LayerNormBwdInto(dx2, nil, nil, dy.Data, xhat, invStd, gamma.Data, rows, d)
	if diff := maxAbsDiff32(dx2, dx); diff != 0 {
		t.Fatalf("dx with nil dgamma/dbeta differs by %g", diff)
	}
}

// TestLayerNormStatsLargeMean pins the shifted-variance stability fix: a
// row with a huge common offset and tiny spread must still recover the
// spread's invStd instead of cancelling it away (the unshifted raw-moment
// formula E[x²]−E[x]² loses ~all precision here).
func TestLayerNormStatsLargeMean(t *testing.T) {
	const d = 64
	x := make([]float32, d)
	for i := range x {
		// mean 1e5 with a ±1 alternating spread: true variance is 1.
		v := float32(1e5)
		if i%2 == 0 {
			v += 1
		} else {
			v -= 1
		}
		x[i] = v
	}
	dst := make([]float32, d)
	xhat := make([]float32, d)
	invStd := make([]float32, 1)
	gamma := make([]float32, d)
	beta := make([]float32, d)
	for i := range gamma {
		gamma[i] = 1
	}
	LayerNormFwdInto(dst, xhat, invStd, x, gamma, beta, 1, d, 0)
	if diff := math.Abs(float64(invStd[0]) - 1); diff > 1e-4 {
		t.Fatalf("invStd for mean=1e5 spread=±1 row: %v, want 1 (±1e-4): shifted variance regressed", invStd[0])
	}
	for i, h := range xhat {
		want := float32(1)
		if i%2 != 0 {
			want = -1
		}
		if math.Abs(float64(h-want)) > 1e-3 {
			t.Fatalf("xhat[%d] = %v, want %v", i, h, want)
		}
	}
}

func TestSoftmaxKernelsMatchReference(t *testing.T) {
	const rows, cols = 9, 31
	rng := NewRNG(102)
	x := New(rows, cols)
	dy := New(rows, cols)
	rng.FillNormal(x, 0, 3)
	rng.FillNormal(dy, 0, 1)

	y := make([]float32, rows*cols)
	SoftmaxRowsInto(y, x.Data, rows, cols)
	for r := 0; r < rows; r++ {
		src := x.Data[r*cols : (r+1)*cols]
		maxv := float64(src[0])
		for _, v := range src[1:] {
			if float64(v) > maxv {
				maxv = float64(v)
			}
		}
		var sum float64
		ref := make([]float64, cols)
		for j, v := range src {
			ref[j] = math.Exp(float64(v) - maxv)
			sum += ref[j]
		}
		var rowSum float64
		for j := range ref {
			got := float64(y[r*cols+j])
			want := ref[j] / sum
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("row %d col %d: softmax %v, want %v", r, j, got, want)
			}
			rowSum += got
		}
		if math.Abs(rowSum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, rowSum)
		}
	}

	// Backward: dx += y ⊙ (dy - Σ y·dy), checked against scalar float64.
	dx := make([]float32, rows*cols)
	SoftmaxRowsBwdInto(dx, y, dy.Data, rows, cols)
	for r := 0; r < rows; r++ {
		var dot float64
		for j := 0; j < cols; j++ {
			dot += float64(y[r*cols+j]) * float64(dy.Data[r*cols+j])
		}
		for j := 0; j < cols; j++ {
			want := float64(y[r*cols+j]) * (float64(dy.Data[r*cols+j]) - dot)
			if math.Abs(float64(dx[r*cols+j])-want) > 1e-5 {
				t.Fatalf("row %d col %d: softmax bwd %v, want %v", r, j, dx[r*cols+j], want)
			}
		}
	}
}

func TestSoftmaxXentKernels(t *testing.T) {
	const rows, cols = 6, 11
	rng := NewRNG(103)
	x := New(rows, cols)
	rng.FillNormal(x, 0, 2)
	labels := make([]int, rows)
	for i := range labels {
		labels[i] = (i * 3) % cols
	}
	probs := make([]float32, rows*cols)
	loss := SoftmaxXentFwdInto(probs, x.Data, labels, rows, cols)

	var refLoss float64
	for r := 0; r < rows; r++ {
		src := x.Data[r*cols : (r+1)*cols]
		maxv := float64(src[0])
		for _, v := range src[1:] {
			if float64(v) > maxv {
				maxv = float64(v)
			}
		}
		var sum float64
		for _, v := range src {
			sum += math.Exp(float64(v) - maxv)
		}
		refLoss -= float64(src[labels[r]]) - maxv - math.Log(sum)
	}
	if math.Abs(loss-refLoss) > 1e-4 {
		t.Fatalf("fused xent loss %v, want %v", loss, refLoss)
	}

	// Uniform logits: loss = rows · ln cols.
	zero := make([]float32, rows*cols)
	if l := SoftmaxXentFwdInto(probs, zero, labels, rows, cols); math.Abs(l-float64(rows)*math.Log(cols)) > 1e-4 {
		t.Fatalf("uniform xent loss %v, want %v", l, float64(rows)*math.Log(cols))
	}

	// Backward: dlogits += scale·(p - onehot).
	SoftmaxXentFwdInto(probs, x.Data, labels, rows, cols)
	dl := make([]float32, rows*cols)
	SoftmaxXentBwdInto(dl, probs, labels, rows, cols, 0.5)
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			want := 0.5 * probs[r*cols+j]
			if j == labels[r] {
				want -= 0.5
			}
			if math.Abs(float64(dl[r*cols+j]-want)) > 1e-6 {
				t.Fatalf("xent bwd (%d,%d) = %v, want %v", r, j, dl[r*cols+j], want)
			}
		}
	}
}

func TestBatchNormKernelsMatchReference(t *testing.T) {
	const n, c, hw = 3, 4, 10
	rng := NewRNG(104)
	x := New(n, c, hw)
	dy := New(n, c, hw)
	gamma := New(c)
	beta := New(c)
	rng.FillNormal(x, 1, 2)
	rng.FillNormal(dy, 0, 1)
	rng.FillNormal(gamma, 1, 0.2)
	rng.FillNormal(beta, 0, 0.2)

	mean := make([]float32, c)
	varv := make([]float32, c)
	BatchNormStatsInto(mean, varv, x.Data, n, c, hw)
	m := float64(n * hw)
	for ch := 0; ch < c; ch++ {
		var s float64
		for b := 0; b < n; b++ {
			for i := 0; i < hw; i++ {
				s += float64(x.Data[(b*c+ch)*hw+i])
			}
		}
		mu := s / m
		var vr float64
		for b := 0; b < n; b++ {
			for i := 0; i < hw; i++ {
				dv := float64(x.Data[(b*c+ch)*hw+i]) - mu
				vr += dv * dv
			}
		}
		vr /= m
		if math.Abs(float64(mean[ch])-mu) > 1e-5 || math.Abs(float64(varv[ch])-vr) > 1e-4 {
			t.Fatalf("channel %d stats (%v, %v), want (%v, %v)", ch, mean[ch], varv[ch], mu, vr)
		}
	}

	invStd := make([]float32, c)
	for ch := range invStd {
		invStd[ch] = float32(1 / math.Sqrt(float64(varv[ch])+1e-5))
	}
	y := make([]float32, n*c*hw)
	xhat := make([]float32, n*c*hw)
	BatchNormFwdInto(y, xhat, x.Data, mean, invStd, gamma.Data, beta.Data, n, c, hw)
	for idx := range y {
		ch := (idx / hw) % c
		wantXh := (x.Data[idx] - mean[ch]) * invStd[ch]
		if math.Abs(float64(xhat[idx]-wantXh)) > 1e-5 {
			t.Fatalf("xhat[%d] = %v, want %v", idx, xhat[idx], wantXh)
		}
		want := gamma.Data[ch]*wantXh + beta.Data[ch]
		if math.Abs(float64(y[idx]-want)) > 1e-5 {
			t.Fatalf("y[%d] = %v, want %v", idx, y[idx], want)
		}
	}

	// Backward, training mode, against a scalar float64 reference.
	dx := make([]float32, n*c*hw)
	dg := make([]float32, c)
	db := make([]float32, c)
	BatchNormBwdInto(dx, dg, db, dy.Data, xhat, invStd, gamma.Data, n, c, hw, true)
	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXhat float64
		for b := 0; b < n; b++ {
			for i := 0; i < hw; i++ {
				idx := (b*c+ch)*hw + i
				sumDy += float64(dy.Data[idx])
				sumDyXhat += float64(dy.Data[idx]) * float64(xhat[idx])
			}
		}
		if math.Abs(float64(dg[ch])-sumDyXhat) > 1e-4 || math.Abs(float64(db[ch])-sumDy) > 1e-4 {
			t.Fatalf("channel %d param grads (%v, %v), want (%v, %v)", ch, dg[ch], db[ch], sumDyXhat, sumDy)
		}
		for b := 0; b < n; b++ {
			for i := 0; i < hw; i++ {
				idx := (b*c+ch)*hw + i
				want := float64(gamma.Data[ch]) * float64(invStd[ch]) *
					(float64(dy.Data[idx]) - sumDy/m - float64(xhat[idx])*sumDyXhat/m)
				if math.Abs(float64(dx[idx])-want) > 1e-4 {
					t.Fatalf("dx[%d] = %v, want %v", idx, dx[idx], want)
				}
			}
		}
	}

	// Eval mode: dx += gamma·invStd·dy only.
	dxe := make([]float32, n*c*hw)
	BatchNormBwdInto(dxe, nil, nil, dy.Data, xhat, invStd, gamma.Data, n, c, hw, false)
	for idx := range dxe {
		ch := (idx / hw) % c
		want := gamma.Data[ch] * invStd[ch] * dy.Data[idx]
		if math.Abs(float64(dxe[idx]-want)) > 1e-6 {
			t.Fatalf("eval dx[%d] = %v, want %v", idx, dxe[idx], want)
		}
	}
}

func TestFusedBiasReLUKernels(t *testing.T) {
	const rows, d = 5, 13
	rng := NewRNG(105)
	x := New(rows, d)
	bias := New(d)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(bias, 0, 1)
	dst := make([]float32, rows*d)
	AddRowBiasReLUInto(dst, x.Data, bias.Data, rows, d)
	for r := 0; r < rows; r++ {
		for j := 0; j < d; j++ {
			want := x.Data[r*d+j] + bias.Data[j]
			if want < 0 {
				want = 0
			}
			if dst[r*d+j] != want {
				t.Fatalf("(%d,%d) = %v, want %v", r, j, dst[r*d+j], want)
			}
		}
	}

	const n, c, hw = 2, 3, 4
	xc := New(n, c, hw)
	cb := New(c)
	rng.FillNormal(xc, 0, 1)
	rng.FillNormal(cb, 0, 1)
	dc := make([]float32, n*c*hw)
	AddChanBiasReLUInto(dc, xc.Data, cb.Data, n, c, hw)
	for idx := range dc {
		ch := (idx / hw) % c
		want := xc.Data[idx] + cb.Data[ch]
		if want < 0 {
			want = 0
		}
		if dc[idx] != want {
			t.Fatalf("chan idx %d = %v, want %v", idx, dc[idx], want)
		}
	}

	// Mask helpers.
	y := []float32{1, 0, 2, 0}
	dy := []float32{5, 6, 7, 8}
	dpre := make([]float32, 4)
	ReLUMaskInto(dpre, dy, y)
	if dpre[0] != 5 || dpre[1] != 0 || dpre[2] != 7 || dpre[3] != 0 {
		t.Fatalf("ReLUMaskInto = %v", dpre)
	}
	dx := []float32{1, 1, 1, 1}
	ReLUMaskAddInto(dx, dy, y)
	if dx[0] != 6 || dx[1] != 1 || dx[2] != 8 || dx[3] != 1 {
		t.Fatalf("ReLUMaskAddInto = %v", dx)
	}
	dbias := make([]float32, 2)
	ColSumAddInto(dbias, []float32{1, 2, 3, 4, 5, 6}, 3, 2)
	if dbias[0] != 9 || dbias[1] != 12 {
		t.Fatalf("ColSumAddInto = %v", dbias)
	}
}

// TestFusedKernelsDeterministicAcrossWorkers pins the contract for the new
// kernel family: bit-identical outputs for any SetMaxWorkers value,
// including counts that force uneven row/channel chunking.
func TestFusedKernelsDeterministicAcrossWorkers(t *testing.T) {
	const rows, d = 67, 96 // uneven splits at 2, 3, 8 workers
	rng := NewRNG(106)
	x := New(rows, d)
	dy := New(rows, d)
	gamma := New(d)
	beta := New(d)
	rng.FillNormal(x, 0.3, 2)
	rng.FillNormal(dy, 0, 1)
	rng.FillNormal(gamma, 1, 0.3)
	rng.FillNormal(beta, 0, 0.3)
	labels := make([]int, rows)
	for i := range labels {
		labels[i] = i % d
	}

	type result struct {
		y, xhat, dx, sm, smDx, probs, dl []float32
		invStd                           []float32
		loss                             float64
	}
	run := func() result {
		var res result
		res.y = make([]float32, rows*d)
		res.xhat = make([]float32, rows*d)
		res.invStd = make([]float32, rows)
		LayerNormFwdInto(res.y, res.xhat, res.invStd, x.Data, gamma.Data, beta.Data, rows, d, 1e-5)
		res.dx = make([]float32, rows*d)
		LayerNormBwdInto(res.dx, nil, nil, dy.Data, res.xhat, res.invStd, gamma.Data, rows, d)
		res.sm = make([]float32, rows*d)
		SoftmaxRowsInto(res.sm, x.Data, rows, d)
		res.smDx = make([]float32, rows*d)
		SoftmaxRowsBwdInto(res.smDx, res.sm, dy.Data, rows, d)
		res.probs = make([]float32, rows*d)
		res.loss = SoftmaxXentFwdInto(res.probs, x.Data, labels, rows, d)
		res.dl = make([]float32, rows*d)
		SoftmaxXentBwdInto(res.dl, res.probs, labels, rows, d, 1/float32(rows))
		return res
	}
	equal := func(a, b []float32) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	ref := run()
	for _, wk := range []int{2, 3, 8} {
		SetMaxWorkers(wk)
		got := run()
		if !equal(got.y, ref.y) || !equal(got.xhat, ref.xhat) || !equal(got.invStd, ref.invStd) {
			t.Errorf("workers=%d: LayerNorm forward not bit-identical", wk)
		}
		if !equal(got.dx, ref.dx) {
			t.Errorf("workers=%d: LayerNorm backward not bit-identical", wk)
		}
		if !equal(got.sm, ref.sm) || !equal(got.smDx, ref.smDx) {
			t.Errorf("workers=%d: softmax fwd/bwd not bit-identical", wk)
		}
		if got.loss != ref.loss || !equal(got.probs, ref.probs) || !equal(got.dl, ref.dl) {
			t.Errorf("workers=%d: softmax-xent not bit-identical", wk)
		}
	}

	// BatchNorm at a channel count that chunks unevenly.
	const n, c, hw = 4, 13, 24
	xb := New(n, c, hw)
	dyb := New(n, c, hw)
	gb := New(c)
	rng.FillNormal(xb, 0.5, 1.5)
	rng.FillNormal(dyb, 0, 1)
	rng.FillNormal(gb, 1, 0.2)
	runBN := func() (mean, varv, dx []float32) {
		mean = make([]float32, c)
		varv = make([]float32, c)
		BatchNormStatsInto(mean, varv, xb.Data, n, c, hw)
		invStd := make([]float32, c)
		for ch := range invStd {
			invStd[ch] = float32(1 / math.Sqrt(float64(varv[ch])+1e-5))
		}
		xhat := make([]float32, n*c*hw)
		y := make([]float32, n*c*hw)
		BatchNormFwdInto(y, xhat, xb.Data, mean, invStd, gb.Data, make([]float32, c), n, c, hw)
		dx = make([]float32, n*c*hw)
		BatchNormBwdInto(dx, make([]float32, c), make([]float32, c), dyb.Data, xhat, invStd, gb.Data, n, c, hw, true)
		return mean, varv, dx
	}
	SetMaxWorkers(1)
	rm, rv, rdx := runBN()
	for _, wk := range []int{2, 3, 8} {
		SetMaxWorkers(wk)
		m2, v2, dx2 := runBN()
		if !equal(m2, rm) || !equal(v2, rv) || !equal(dx2, rdx) {
			t.Errorf("workers=%d: BatchNorm kernels not bit-identical", wk)
		}
	}
}
