package tensor

import "math"

// Fused normalization / softmax kernel family (the second kernel round
// after matmul/conv).
//
// The PR 1 profile showed BatchNorm, LayerNorm, and the softmaxes doing
// three to four scalar passes per op, each converting every element through
// float64. The kernels below do the arithmetic in float32 with float64
// multi-lane accumulation for the reductions (four independent accumulator
// lanes, combined in a fixed order), fuse normalize+affine into a single
// pass, and write into caller-provided storage so steady-state training
// allocates nothing.
//
// Each kernel dispatches through a named range function: when the work
// would run on a single worker anyway, the range function is called
// directly, skipping the escaping closure a parallelFor call would
// construct — that closure is the difference between 0 and 1 allocs/op.
//
// Determinism contract: every reduction has a fixed per-element order —
// lanes are combined in one hard-coded sequence, parallel loops only ever
// partition disjoint rows/channels, and cross-row reductions (parameter
// gradients) stay sequential in ascending row order — so results are
// bit-identical for any SetMaxWorkers value on a given machine/binary.

// fusedRowsPerWorker picks a minimum per-goroutine row count so small
// normalization/softmax calls stay single-threaded.
func fusedRowsPerWorker(d int) int {
	if d <= 0 {
		return 1
	}
	const targetElemsPerWorker = 1 << 14
	r := targetElemsPerWorker / d
	if r < 1 {
		r = 1
	}
	return r
}

// Exp32 constants: e^x = 2^n · e^r with n = round(x·log2e) and r the
// two-part-ln2 remainder, followed by a degree-5 polynomial on
// [-ln2/2, ln2/2] (Cephes expf coefficients). The rounding uses the
// 1.5·2^23 magic-number trick — adding it forces float32 round-to-nearest
// onto integer granularity — so the hot loops stay branch- and call-free.
const (
	exp32Log2e = 1.4426950408889634
	exp32C1    = 0.693359375    // ln 2, high part
	exp32C2    = -2.12194440e-4 // ln 2, low part
	exp32Magic = 12582912.0     // 1.5 · 2^23
	exp32Lo    = -87.33655      // below this e^x underflows float32
	exp32Hi    = 88.37          // above this 2^n exceeds the exponent range
)

// exp32Core is the unguarded polynomial; it is small enough to inline into
// the softmax hot loops (a non-inlined call per element would cost more
// than the math). Callers must handle |x| beyond the float32 exponent
// range themselves.
func exp32Core(x float32) float32 {
	rz := (x*exp32Log2e + exp32Magic) - exp32Magic // round-to-nearest
	r := (x - rz*exp32C1) - rz*exp32C2
	p := ((((float32(1.9875691500e-4)*r+1.3981999507e-3)*r+8.3334519073e-3)*r+4.1665795894e-2)*r + 1.6666665459e-1) * r
	return ((r*r)*(p+5.0000001201e-1) + r + 1) * math.Float32frombits(uint32(int32(rz)+127)<<23)
}

// exp32Guarded is exp32Core with the underflow flush the softmax kernels
// need (their arguments are ≤ 0 by construction, so no overflow guard).
func exp32Guarded(x float32) float32 {
	e := exp32Core(x)
	if x < exp32Lo {
		return 0
	}
	return e
}

// Exp32 is a fast float32 e^x (~1 ulp over the float32 range). Pure
// float32 ops in a fixed sequence keep it deterministic.
func Exp32(x float32) float32 {
	if x > exp32Hi {
		return float32(math.Inf(1))
	}
	if x < exp32Lo {
		return 0
	}
	return exp32Core(x)
}

// expRowSum writes dst[j] = e^(src[j]−maxv) and returns Σ dst accumulated
// in float64 lanes with a fixed combine order. On amd64 with AVX2 the bulk
// of the row runs 8-wide in assembly; the tail (and other platforms) use
// the scalar sequence. As with the matmul kernels, SIMD FMA rounds
// differently in the last ulp, so results are consistent per
// machine/binary, not across backends.
func expRowSum(dst, src []float32, maxv float32) float64 {
	dst = dst[:len(src)]
	var sum float64
	p := 0
	if simdAvailable && len(src) >= 8 {
		sum = expRowSumSIMD(dst, src, maxv)
		p = len(src) &^ 7
		for ; p < len(src); p++ {
			e := exp32Guarded(src[p] - maxv)
			dst[p] = e
			sum += float64(e)
		}
		return sum
	}
	var s0, s1, s2, s3 float64
	for ; p+4 <= len(src); p += 4 {
		e0 := exp32Guarded(src[p] - maxv)
		e1 := exp32Guarded(src[p+1] - maxv)
		e2 := exp32Guarded(src[p+2] - maxv)
		e3 := exp32Guarded(src[p+3] - maxv)
		dst[p], dst[p+1], dst[p+2], dst[p+3] = e0, e1, e2, e3
		s0 += float64(e0)
		s1 += float64(e1)
		s2 += float64(e2)
		s3 += float64(e3)
	}
	sum = (s0 + s1) + (s2 + s3)
	for ; p < len(src); p++ {
		e := exp32Guarded(src[p] - maxv)
		dst[p] = e
		sum += float64(e)
	}
	return sum
}

// sumSq4 returns Σ(x−k) and Σ(x−k)² accumulated in four float64 lanes with
// a fixed combine order. One traversal serves both moments of a stats
// pass. The pivot k is the shifted-data variance trick: with k chosen near
// the data (callers pass the first element), the raw-moment identity
// var = Σd²/m − (Σd/m)² loses precision in the *shift*, not the spread, so
// a large common offset no longer cancels catastrophically the way the
// unshifted E[x²]−E[x]² formula does.
func sumSq4(x []float32, k float64) (s, sq float64) {
	var s0, s1, s2, s3, q0, q1, q2, q3 float64
	p := 0
	for ; p+4 <= len(x); p += 4 {
		v0 := float64(x[p]) - k
		v1 := float64(x[p+1]) - k
		v2 := float64(x[p+2]) - k
		v3 := float64(x[p+3]) - k
		s0 += v0
		s1 += v1
		s2 += v2
		s3 += v3
		q0 += v0 * v0
		q1 += v1 * v1
		q2 += v2 * v2
		q3 += v3 * v3
	}
	var st, qt float64
	for ; p < len(x); p++ {
		v := float64(x[p]) - k
		st += v
		qt += v * v
	}
	return ((s0 + s1) + (s2 + s3)) + st, ((q0 + q1) + (q2 + q3)) + qt
}

// sumDot4 returns Σa and Σa·b accumulated in four float64 lanes with a
// fixed combine order (the dy / dy·xhat reduction of the backward passes).
func sumDot4(a, b []float32) (s, t float64) {
	b = b[:len(a)]
	var s0, s1, s2, s3, t0, t1, t2, t3 float64
	p := 0
	for ; p+4 <= len(a); p += 4 {
		v0, v1, v2, v3 := float64(a[p]), float64(a[p+1]), float64(a[p+2]), float64(a[p+3])
		s0 += v0
		s1 += v1
		s2 += v2
		s3 += v3
		t0 += v0 * float64(b[p])
		t1 += v1 * float64(b[p+1])
		t2 += v2 * float64(b[p+2])
		t3 += v3 * float64(b[p+3])
	}
	var st, tt float64
	for ; p < len(a); p++ {
		v := float64(a[p])
		st += v
		tt += v * float64(b[p])
	}
	return ((s0 + s1) + (s2 + s3)) + st, ((t0 + t1) + (t2 + t3)) + tt
}

// LayerNormFwdInto computes, for each of rows rows of length d in x,
//
//	xhat = (x - mean) · invStd    dst = gamma ⊙ xhat + beta
//
// in one stats pass and one fused normalize+affine pass. xhat and invStd
// (length rows) are retained outputs for the backward pass. Rows are
// processed in parallel; each row's accumulation order is fixed.
func LayerNormFwdInto(dst, xhat, invStd, x, gamma, beta []float32, rows, d int, eps float32) {
	rpw := fusedRowsPerWorker(d)
	if chunksFor(rows, rpw) <= 1 {
		layerNormFwdRange(dst, xhat, invStd, x, gamma, beta, d, eps, 0, rows)
		return
	}
	parallelFor(rows, rpw, func(r0, r1 int) {
		layerNormFwdRange(dst, xhat, invStd, x, gamma, beta, d, eps, r0, r1)
	})
}

func layerNormFwdRange(dst, xhat, invStd, x, gamma, beta []float32, d int, eps float32, r0, r1 int) {
	gamma = gamma[:d]
	beta = beta[:d]
	for r := r0; r < r1; r++ {
		src := x[r*d : (r+1)*d]
		k := float64(src[0]) // shift pivot; see sumSq4
		s, sq := sumSq4(src, k)
		sm := s / float64(d)
		mu := k + sm
		vr := sq/float64(d) - sm*sm
		if vr < 0 {
			vr = 0
		}
		is := 1 / math.Sqrt(vr+float64(eps))
		invStd[r] = float32(is)
		m32, i32 := float32(mu), float32(is)
		src = src[:d]
		xh := xhat[r*d : (r+1)*d][:d]
		out := dst[r*d : (r+1)*d][:d]
		i := 0
		if simdAvailable && d >= 8 {
			normAffineSIMD(out, xh, src, gamma, beta, m32, i32)
			i = d &^ 7
		}
		for ; i < d; i++ {
			h := (src[i] - m32) * i32
			xh[i] = h
			out[i] = gamma[i]*h + beta[i]
		}
	}
}

// LayerNormBwdInto accumulates the LayerNorm gradients:
//
//	dgamma += Σ_rows dy ⊙ xhat    dbeta += Σ_rows dy
//	dx     += invStd · (dy⊙gamma - mean(dy⊙gamma) - xhat·mean(dy⊙gamma⊙xhat))
//
// Any of dx, dgamma, dbeta may be nil to skip that gradient. The parameter
// gradients reduce across rows and therefore run sequentially in ascending
// row order; the dx pass touches disjoint rows and runs in parallel. No
// scratch is allocated: the dy⊙gamma intermediate is recomputed in the
// second pass instead of being staged in a per-row buffer.
func LayerNormBwdInto(dx, dgamma, dbeta, dy, xhat, invStd, gamma []float32, rows, d int) {
	if dgamma != nil && dbeta != nil {
		dg, db := dgamma[:d], dbeta[:d]
		for r := 0; r < rows; r++ {
			dyr := dy[r*d : (r+1)*d][:d]
			xhr := xhat[r*d : (r+1)*d][:d]
			for j := 0; j < d; j++ {
				g := dyr[j]
				dg[j] += g * xhr[j]
				db[j] += g
			}
		}
	} else if dgamma != nil || dbeta != nil {
		for r := 0; r < rows; r++ {
			dyr := dy[r*d : (r+1)*d]
			xhr := xhat[r*d : (r+1)*d][:len(dyr)]
			if dgamma != nil {
				dg := dgamma[:len(dyr)]
				for j, g := range dyr {
					dg[j] += g * xhr[j]
				}
			}
			if dbeta != nil {
				db := dbeta[:len(dyr)]
				for j, g := range dyr {
					db[j] += g
				}
			}
		}
	}
	if dx == nil {
		return
	}
	rpw := fusedRowsPerWorker(d)
	if chunksFor(rows, rpw) <= 1 {
		layerNormBwdRange(dx, dy, xhat, invStd, gamma, d, 0, rows)
		return
	}
	parallelFor(rows, rpw, func(r0, r1 int) {
		layerNormBwdRange(dx, dy, xhat, invStd, gamma, d, r0, r1)
	})
}

func layerNormBwdRange(dx, dy, xhat, invStd, gamma []float32, d int, r0, r1 int) {
	gamma = gamma[:d]
	for r := r0; r < r1; r++ {
		dyr := dy[r*d : (r+1)*d][:d]
		xhr := xhat[r*d : (r+1)*d][:d]
		var s0, s1, s2, s3, t0, t1, t2, t3 float64
		p := 0
		for ; p+4 <= d; p += 4 {
			g0 := float64(dyr[p]) * float64(gamma[p])
			g1 := float64(dyr[p+1]) * float64(gamma[p+1])
			g2 := float64(dyr[p+2]) * float64(gamma[p+2])
			g3 := float64(dyr[p+3]) * float64(gamma[p+3])
			s0 += g0
			s1 += g1
			s2 += g2
			s3 += g3
			t0 += g0 * float64(xhr[p])
			t1 += g1 * float64(xhr[p+1])
			t2 += g2 * float64(xhr[p+2])
			t3 += g3 * float64(xhr[p+3])
		}
		s := (s0 + s1) + (s2 + s3)
		t := (t0 + t1) + (t2 + t3)
		for ; p < d; p++ {
			g := float64(dyr[p]) * float64(gamma[p])
			s += g
			t += g * float64(xhr[p])
		}
		mDy := float32(s / float64(d))
		mDyX := float32(t / float64(d))
		is := invStd[r]
		out := dx[r*d : (r+1)*d][:d]
		j := 0
		if simdAvailable && d >= 8 {
			lnBwdDxSIMD(out, dyr, gamma, xhr, mDy, mDyX, is)
			j = d &^ 7
		}
		for ; j < d; j++ {
			out[j] += is * (dyr[j]*gamma[j] - mDy - xhr[j]*mDyX)
		}
	}
}

// SoftmaxRowsInto writes the row-wise softmax of x [rows, cols] into dst
// (dst may alias x). Max-subtraction keeps it stable; Exp32 does the
// heavy lifting. Rows run in parallel.
func SoftmaxRowsInto(dst, x []float32, rows, cols int) {
	rpw := fusedRowsPerWorker(cols)
	if chunksFor(rows, rpw) <= 1 {
		softmaxRowRange(dst, x, cols, 0, rows)
		return
	}
	parallelFor(rows, rpw, func(r0, r1 int) {
		softmaxRowRange(dst, x, cols, r0, r1)
	})
}

func softmaxRowRange(dst, x []float32, cols, r0, r1 int) {
	for r := r0; r < r1; r++ {
		softmaxRow(dst[r*cols:(r+1)*cols], x[r*cols:(r+1)*cols])
	}
}

// softmaxRow computes dst = softmax(src) for one row (dst may alias src).
func softmaxRow(dst, src []float32) {
	dst = dst[:len(src)]
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	sum := expRowSum(dst, src, maxv)
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// SoftmaxRowsBwdInto accumulates the row-softmax gradient
// dx += y ⊙ (dy - Σ y⊙dy) given the forward output y. Rows run in
// parallel; the per-row dot uses fixed-order float64 lanes.
func SoftmaxRowsBwdInto(dx, y, dy []float32, rows, cols int) {
	rpw := fusedRowsPerWorker(cols)
	if chunksFor(rows, rpw) <= 1 {
		softmaxBwdRange(dx, y, dy, cols, 0, rows)
		return
	}
	parallelFor(rows, rpw, func(r0, r1 int) {
		softmaxBwdRange(dx, y, dy, cols, r0, r1)
	})
}

func softmaxBwdRange(dx, y, dy []float32, cols, r0, r1 int) {
	for r := r0; r < r1; r++ {
		yr := y[r*cols : (r+1)*cols][:cols]
		dyr := dy[r*cols : (r+1)*cols][:cols]
		_, dot := sumDot4(yr, dyr)
		d32 := float32(dot)
		out := dx[r*cols : (r+1)*cols][:cols]
		for j := 0; j < cols; j++ {
			out[j] += yr[j] * (dyr[j] - d32)
		}
	}
}

// SoftmaxXentFwdInto writes row-softmax probabilities of logits [rows,
// cols] into probs and returns Σ_rows -log(probs[r, labels[r]]) (the
// un-averaged cross-entropy). The probability pass runs rows in parallel;
// the loss reduction is a separate sequential pass so its accumulation
// order never depends on the worker count. Labels must be in [0, cols).
func SoftmaxXentFwdInto(probs, logits []float32, labels []int, rows, cols int) float64 {
	SoftmaxRowsInto(probs, logits, rows, cols)
	var loss float64
	for r := 0; r < rows; r++ {
		p := float64(probs[r*cols+labels[r]])
		if p < 1e-30 {
			p = 1e-30
		}
		loss -= math.Log(p)
	}
	return loss
}

// SoftmaxXentBwdInto accumulates the fused softmax-cross-entropy gradient
// dlogits += scale · (probs - onehot(labels)). Rows run in parallel.
func SoftmaxXentBwdInto(dlogits, probs []float32, labels []int, rows, cols int, scale float32) {
	rpw := fusedRowsPerWorker(cols)
	if chunksFor(rows, rpw) <= 1 {
		softmaxXentBwdRange(dlogits, probs, labels, cols, scale, 0, rows)
		return
	}
	parallelFor(rows, rpw, func(r0, r1 int) {
		softmaxXentBwdRange(dlogits, probs, labels, cols, scale, r0, r1)
	})
}

func softmaxXentBwdRange(dlogits, probs []float32, labels []int, cols int, scale float32, r0, r1 int) {
	for r := r0; r < r1; r++ {
		prow := probs[r*cols : (r+1)*cols]
		grow := dlogits[r*cols : (r+1)*cols][:len(prow)]
		for j, p := range prow {
			grow[j] += scale * p
		}
		grow[labels[r]] -= scale
	}
}

// BatchNormStatsInto computes the per-channel mean and biased variance of
// x [n, c, hw] over the batch and spatial dimensions. Channels run in
// parallel; within a channel the image blocks accumulate in ascending
// batch order.
func BatchNormStatsInto(mean, varv, x []float32, n, c, hw int) {
	rpw := fusedRowsPerWorker(n * hw)
	if chunksFor(c, rpw) <= 1 {
		batchNormStatsRange(mean, varv, x, n, c, hw, 0, c)
		return
	}
	parallelFor(c, rpw, func(c0, c1 int) {
		batchNormStatsRange(mean, varv, x, n, c, hw, c0, c1)
	})
}

func batchNormStatsRange(mean, varv, x []float32, n, c, hw, c0, c1 int) {
	m := float64(n * hw)
	for ch := c0; ch < c1; ch++ {
		k := float64(x[ch*hw]) // shift pivot (first element of the channel)
		var s, sq float64
		for b := 0; b < n; b++ {
			base := (b*c + ch) * hw
			bs, bq := sumSq4(x[base:base+hw], k)
			s += bs
			sq += bq
		}
		sm := s / m
		vr := sq/m - sm*sm
		if vr < 0 {
			vr = 0
		}
		mean[ch] = float32(k + sm)
		varv[ch] = float32(vr)
	}
}

// BatchNormFwdInto computes the fused normalize+affine pass
//
//	xhat = (x - mean[ch]) · invStd[ch]    dst = gamma[ch]·xhat + beta[ch]
//
// over x [n, c, hw]. xhat is a retained output for the backward pass.
func BatchNormFwdInto(dst, xhat, x, mean, invStd, gamma, beta []float32, n, c, hw int) {
	rpw := fusedRowsPerWorker(n * hw)
	if chunksFor(c, rpw) <= 1 {
		batchNormFwdRange(dst, xhat, x, mean, invStd, gamma, beta, n, c, hw, 0, c)
		return
	}
	parallelFor(c, rpw, func(c0, c1 int) {
		batchNormFwdRange(dst, xhat, x, mean, invStd, gamma, beta, n, c, hw, c0, c1)
	})
}

func batchNormFwdRange(dst, xhat, x, mean, invStd, gamma, beta []float32, n, c, hw, c0, c1 int) {
	for ch := c0; ch < c1; ch++ {
		mu, is := mean[ch], invStd[ch]
		ga, be := gamma[ch], beta[ch]
		for b := 0; b < n; b++ {
			base := (b*c + ch) * hw
			src := x[base : base+hw]
			xh := xhat[base : base+hw][:len(src)]
			out := dst[base : base+hw][:len(src)]
			for i, v := range src {
				h := (v - mu) * is
				xh[i] = h
				out[i] = ga*h + be
			}
		}
	}
}

// BatchNormBwdInto accumulates the BatchNorm2d gradients over x [n, c, hw]:
//
//	dgamma[ch] += Σ dy⊙xhat    dbeta[ch] += Σ dy
//	dx += gamma·invStd · (dy - mean(dy) - xhat·mean(dy⊙xhat))   (training)
//	dx += gamma·invStd · dy                                     (eval)
//
// Any of dx, dgamma, dbeta may be nil to skip that gradient. Channels are
// fully independent (parameter gradients included), so the whole backward
// runs in parallel over channels with fixed per-channel order.
func BatchNormBwdInto(dx, dgamma, dbeta, dy, xhat, invStd, gamma []float32, n, c, hw int, training bool) {
	rpw := fusedRowsPerWorker(n * hw)
	if chunksFor(c, rpw) <= 1 {
		batchNormBwdRange(dx, dgamma, dbeta, dy, xhat, invStd, gamma, n, c, hw, training, 0, c)
		return
	}
	parallelFor(c, rpw, func(c0, c1 int) {
		batchNormBwdRange(dx, dgamma, dbeta, dy, xhat, invStd, gamma, n, c, hw, training, c0, c1)
	})
}

func batchNormBwdRange(dx, dgamma, dbeta, dy, xhat, invStd, gamma []float32, n, c, hw int, training bool, c0, c1 int) {
	m := float64(n * hw)
	needSums := dgamma != nil || dbeta != nil || (dx != nil && training)
	for ch := c0; ch < c1; ch++ {
		var sumDy, sumDyXhat float64
		if needSums {
			for b := 0; b < n; b++ {
				base := (b*c + ch) * hw
				bs, bt := sumDot4(dy[base:base+hw], xhat[base:base+hw])
				sumDy += bs
				sumDyXhat += bt
			}
		}
		if dgamma != nil {
			dgamma[ch] += float32(sumDyXhat)
		}
		if dbeta != nil {
			dbeta[ch] += float32(sumDy)
		}
		if dx == nil {
			continue
		}
		gis := gamma[ch] * invStd[ch]
		if training {
			mDy := float32(sumDy / m)
			mDyX := float32(sumDyXhat / m)
			for b := 0; b < n; b++ {
				base := (b*c + ch) * hw
				dyb := dy[base : base+hw]
				xhb := xhat[base : base+hw][:len(dyb)]
				out := dx[base : base+hw][:len(dyb)]
				for i := range dyb {
					out[i] += gis * (dyb[i] - mDy - xhb[i]*mDyX)
				}
			}
		} else {
			for b := 0; b < n; b++ {
				base := (b*c + ch) * hw
				dyb := dy[base : base+hw]
				out := dx[base : base+hw][:len(dyb)]
				for i := range dyb {
					out[i] += gis * dyb[i]
				}
			}
		}
	}
}

// AddRowBiasReLUInto computes dst = relu(x + bias) for x [rows, d] with
// bias [d] in a single pass (dst may alias x) — the fused epilogue of a
// Linear→ReLU pair.
func AddRowBiasReLUInto(dst, x, bias []float32, rows, d int) {
	rpw := fusedRowsPerWorker(d)
	if chunksFor(rows, rpw) <= 1 {
		addRowBiasReLURange(dst, x, bias, d, 0, rows)
		return
	}
	parallelFor(rows, rpw, func(r0, r1 int) {
		addRowBiasReLURange(dst, x, bias, d, r0, r1)
	})
}

func addRowBiasReLURange(dst, x, bias []float32, d, r0, r1 int) {
	bias = bias[:d]
	for r := r0; r < r1; r++ {
		src := x[r*d : (r+1)*d][:d]
		out := dst[r*d : (r+1)*d][:d]
		for j := 0; j < d; j++ {
			v := src[j] + bias[j]
			if v < 0 {
				v = 0
			}
			out[j] = v
		}
	}
}

// AddChanBiasReLUInto computes dst = relu(x + bias[ch]) for x [n, c, hw]
// with bias [c] in a single pass (dst may alias x) — the fused epilogue of
// a biased Conv2d→ReLU pair.
func AddChanBiasReLUInto(dst, x, bias []float32, n, c, hw int) {
	rpw := fusedRowsPerWorker(c * hw)
	if chunksFor(n, rpw) <= 1 {
		addChanBiasReLURange(dst, x, bias, c, hw, 0, n)
		return
	}
	parallelFor(n, rpw, func(n0, n1 int) {
		addChanBiasReLURange(dst, x, bias, c, hw, n0, n1)
	})
}

func addChanBiasReLURange(dst, x, bias []float32, c, hw, n0, n1 int) {
	for b := n0; b < n1; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			bv := bias[ch]
			src := x[base : base+hw]
			out := dst[base : base+hw][:len(src)]
			for i, v := range src {
				v += bv
				if v < 0 {
					v = 0
				}
				out[i] = v
			}
		}
	}
}

// ReLUMaskInto writes dpre = dy masked by (y > 0) — the pre-activation
// gradient of a fused bias+ReLU epilogue, staged for the matmul backward.
func ReLUMaskInto(dpre, dy, y []float32) {
	dy = dy[:len(dpre)]
	y = y[:len(dpre)]
	for i := range dpre {
		if y[i] > 0 {
			dpre[i] = dy[i]
		} else {
			dpre[i] = 0
		}
	}
}

// ReLUMaskAddInto accumulates dx += dy masked by (y > 0).
func ReLUMaskAddInto(dx, dy, y []float32) {
	dy = dy[:len(dx)]
	y = y[:len(dx)]
	for i := range dx {
		if y[i] > 0 {
			dx[i] += dy[i]
		}
	}
}

// ColSumAddInto accumulates dbias[j] += Σ_rows m[r, j] for m [rows, d] —
// the bias gradient of a row-bias epilogue. Sequential ascending rows.
func ColSumAddInto(dbias, m []float32, rows, d int) {
	dbias = dbias[:d]
	for r := 0; r < rows; r++ {
		row := m[r*d : (r+1)*d][:d]
		for j := 0; j < d; j++ {
			dbias[j] += row[j]
		}
	}
}
