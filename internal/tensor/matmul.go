package tensor

import "fmt"

// The three matmul entry points share one kernel family: a register-tiled
// saxpy kernel that processes two output rows per pass with the inner
// k-loop unrolled 4× (axpy4x2 / axpy4), and a four-column dot kernel
// (dot4) for the Bᵀ case. On amd64 with AVX2+FMA the kernels dispatch to
// hand-written SIMD (see simd_amd64.s); everywhere else the pure-Go
// versions below run, written so the compiler eliminates every
// bounds check in the hot loops.
//
// Determinism contract: for a given binary on a given machine, the
// accumulation order of every output element is fixed by (i, j, k) alone —
// parallelFor only partitions disjoint output rows, and the single-row
// remainder kernels use the exact same per-element operation chains as the
// paired kernels — so results are bit-identical for any SetMaxWorkers
// value.

// matmulShapes panics unless a and b are 2-D and agree on the contracted
// dimension (dimension aShared of a against bShared of b). It is the shared
// validation helper for MatMul, MatMulBT, and MatMulAT.
func matmulShapes(op string, a, b *Tensor, aShared, bShared int) {
	if a.Dims() != 2 || b.Dims() != 2 || a.shape[aShared] != b.shape[bShared] {
		panic(fmt.Sprintf("tensor: %s shapes %v × %v invalid (%v)", op, a.shape, b.shape, ErrShape))
	}
}

func checkOutShape(op string, out *Tensor, m, n int) {
	if out.Dims() != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s out shape %v, want [%d %d]", op, out.shape, m, n))
	}
}

// matmulRowsPerWorker picks a minimum per-goroutine row count so tiny
// multiplies stay single-threaded.
func matmulRowsPerWorker(k, n int) int {
	work := k * n
	if work <= 0 {
		return 1
	}
	const targetFlopsPerWorker = 1 << 15
	rows := targetFlopsPerWorker / work
	if rows < 1 {
		rows = 1
	}
	return rows
}

// MatMul returns a × b for a of shape [m, k] and b of shape [k, n].
func MatMul(a, b *Tensor) *Tensor {
	matmulShapes("MatMul", a, b, 1, 0)
	out := New(a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a × b, reusing out's storage. out must be
// [m, n]; it is fully overwritten.
func MatMulInto(out, a, b *Tensor) {
	matmulShapes("MatMulInto", a, b, 1, 0)
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	checkOutShape("MatMulInto", out, m, n)
	if n == 0 || m == 0 {
		return
	}
	MatMulRawInto(out.Data, a.Data, b.Data, m, k, n)
}

// MatMulRawInto computes dst = a × b over raw row-major buffers: a is
// [m, k], b is [k, n], dst is [m, n] and fully overwritten. This is the
// allocation-free entry point for hot loops (im2col convolution, batched
// attention matmuls) that would otherwise build a view header per call.
func MatMulRawInto(dst, a, b []float32, m, k, n int) {
	checkRawSizes("MatMulRawInto", len(dst), len(a), len(b), m*n, m*k, k*n)
	if m == 0 || n == 0 {
		return
	}
	rpw := matmulRowsPerWorker(k, n)
	if chunksFor(m, rpw) <= 1 {
		// Serial fast path: calling the range function directly skips the
		// escaping closure a parallelFor call would construct — one heap
		// allocation per matmul, which is what made the per-image conv
		// loops allocate proportionally to the batch.
		matmulRowRange(dst, a, b, k, n, 0, m)
		return
	}
	parallelFor(m, rpw, func(r0, r1 int) {
		matmulRowRange(dst, a, b, k, n, r0, r1)
	})
}

func checkRawSizes(op string, ld, la, lb, wd, wa, wb int) {
	if ld < wd || la < wa || lb < wb {
		panic(fmt.Sprintf("tensor: %s buffer sizes %d/%d/%d, need %d/%d/%d", op, ld, la, lb, wd, wa, wb))
	}
}

// matmulRowRange computes output rows [r0, r1) of od = ad × bd.
// Rows are processed in pairs; per-element accumulation order is ascending
// p regardless of pairing, so chunk boundaries cannot change results.
func matmulRowRange(od, ad, bd []float32, k, n, r0, r1 int) {
	i := r0
	for ; i+2 <= r1; i += 2 {
		d0 := od[i*n : i*n+n]
		d1 := od[(i+1)*n : (i+1)*n+n]
		zeroFloats(d0)
		zeroFloats(d1)
		arow0 := ad[i*k : (i+1)*k]
		arow1 := ad[(i+1)*k : (i+2)*k]
		p := 0
		if simdAvailable {
			var av [8]float32
			for ; p+4 <= k; p += 4 {
				av[0], av[1], av[2], av[3] = arow0[p], arow0[p+1], arow0[p+2], arow0[p+3]
				av[4], av[5], av[6], av[7] = arow1[p], arow1[p+1], arow1[p+2], arow1[p+3]
				axpy4x2SIMD(d0, d1,
					bd[p*n:p*n+n], bd[(p+1)*n:(p+1)*n+n],
					bd[(p+2)*n:(p+2)*n+n], bd[(p+3)*n:(p+3)*n+n], &av)
			}
		} else {
			for ; p+4 <= k; p += 4 {
				axpy4x2Generic(d0, d1,
					bd[p*n:p*n+n], bd[(p+1)*n:(p+1)*n+n],
					bd[(p+2)*n:(p+2)*n+n], bd[(p+3)*n:(p+3)*n+n],
					arow0[p], arow0[p+1], arow0[p+2], arow0[p+3],
					arow1[p], arow1[p+1], arow1[p+2], arow1[p+3])
			}
		}
		for ; p < k; p++ {
			axpy1(d0, bd[p*n:p*n+n], arow0[p])
			axpy1(d1, bd[p*n:p*n+n], arow1[p])
		}
	}
	for ; i < r1; i++ {
		d0 := od[i*n : i*n+n]
		zeroFloats(d0)
		arow := ad[i*k : (i+1)*k]
		p := 0
		if simdAvailable {
			var av [4]float32
			for ; p+4 <= k; p += 4 {
				av[0], av[1], av[2], av[3] = arow[p], arow[p+1], arow[p+2], arow[p+3]
				axpy4SIMD(d0,
					bd[p*n:p*n+n], bd[(p+1)*n:(p+1)*n+n],
					bd[(p+2)*n:(p+2)*n+n], bd[(p+3)*n:(p+3)*n+n], &av)
			}
		} else {
			for ; p+4 <= k; p += 4 {
				axpy4Generic(d0,
					bd[p*n:p*n+n], bd[(p+1)*n:(p+1)*n+n],
					bd[(p+2)*n:(p+2)*n+n], bd[(p+3)*n:(p+3)*n+n],
					arow[p], arow[p+1], arow[p+2], arow[p+3])
			}
		}
		for ; p < k; p++ {
			axpy1(d0, bd[p*n:p*n+n], arow[p])
		}
	}
}

// MatMulBT returns a × bᵀ for a [m, k] and b [n, k]. This avoids
// materialising the transpose in backward passes.
func MatMulBT(a, b *Tensor) *Tensor {
	matmulShapes("MatMulBT", a, b, 1, 1)
	out := New(a.shape[0], b.shape[0])
	MatMulBTInto(out, a, b)
	return out
}

// MatMulBTInto computes out = a × bᵀ, reusing out's storage.
func MatMulBTInto(out, a, b *Tensor) {
	matmulShapes("MatMulBTInto", a, b, 1, 1)
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	checkOutShape("MatMulBTInto", out, m, n)
	if m == 0 || n == 0 {
		return
	}
	MatMulBTRawInto(out.Data, a.Data, b.Data, m, k, n)
}

// MatMulBTRawInto computes dst = a × bᵀ over raw row-major buffers: a is
// [m, k], b is [n, k], dst is [m, n] and fully overwritten.
func MatMulBTRawInto(dst, a, b []float32, m, k, n int) {
	checkRawSizes("MatMulBTRawInto", len(dst), len(a), len(b), m*n, m*k, n*k)
	if m == 0 || n == 0 {
		return
	}
	rpw := matmulRowsPerWorker(k, n)
	if chunksFor(m, rpw) <= 1 {
		matmulBTRowRange(dst, a, b, k, n, 0, m)
		return
	}
	parallelFor(m, rpw, func(r0, r1 int) {
		matmulBTRowRange(dst, a, b, k, n, r0, r1)
	})
}

func matmulBTRowRange(dst, a, b []float32, k, n, r0, r1 int) {
	for i := r0; i < r1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : i*n+n]
		j := 0
		if simdAvailable {
			var o4 [4]float32
			for ; j+4 <= n; j += 4 {
				dot4SIMD(arow,
					b[j*k:j*k+k], b[(j+1)*k:(j+1)*k+k],
					b[(j+2)*k:(j+2)*k+k], b[(j+3)*k:(j+3)*k+k], &o4)
				orow[j], orow[j+1], orow[j+2], orow[j+3] = o4[0], o4[1], o4[2], o4[3]
			}
		}
		for ; j < n; j++ {
			orow[j] = dot1(arow, b[j*k:j*k+k])
		}
	}
}

// MatMulAT returns aᵀ × b for a [k, m] and b [k, n]; used for weight
// gradients (dW = xᵀ·dy).
func MatMulAT(a, b *Tensor) *Tensor {
	matmulShapes("MatMulAT", a, b, 0, 0)
	out := New(a.shape[1], b.shape[1])
	MatMulATInto(out, a, b)
	return out
}

// MatMulATInto computes out = aᵀ × b, reusing out's storage.
func MatMulATInto(out, a, b *Tensor) {
	matmulShapes("MatMulATInto", a, b, 0, 0)
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	checkOutShape("MatMulATInto", out, m, n)
	if m == 0 || n == 0 {
		return
	}
	MatMulATRawInto(out.Data, a.Data, b.Data, m, k, n)
}

// MatMulATRawInto computes dst = aᵀ × b over raw row-major buffers: a is
// [k, m], b is [k, n], dst is [m, n] and fully overwritten.
func MatMulATRawInto(dst, a, b []float32, m, k, n int) {
	checkRawSizes("MatMulATRawInto", len(dst), len(a), len(b), m*n, k*m, k*n)
	if m == 0 || n == 0 {
		return
	}
	rpw := matmulRowsPerWorker(k, n)
	if chunksFor(m, rpw) <= 1 {
		matmulATRowRange(dst, a, b, m, k, n, 0, m)
		return
	}
	parallelFor(m, rpw, func(r0, r1 int) {
		matmulATRowRange(dst, a, b, m, k, n, r0, r1)
	})
}

func matmulATRowRange(dst, a, b []float32, m, k, n, r0, r1 int) {
	ad, bd, od := a, b, dst
	i := r0
	for ; i+2 <= r1; i += 2 {
		d0 := od[i*n : i*n+n]
		d1 := od[(i+1)*n : (i+1)*n+n]
		zeroFloats(d0)
		zeroFloats(d1)
		p := 0
		if simdAvailable {
			var av [8]float32
			for ; p+4 <= k; p += 4 {
				av[0], av[1], av[2], av[3] = ad[p*m+i], ad[(p+1)*m+i], ad[(p+2)*m+i], ad[(p+3)*m+i]
				av[4], av[5], av[6], av[7] = ad[p*m+i+1], ad[(p+1)*m+i+1], ad[(p+2)*m+i+1], ad[(p+3)*m+i+1]
				axpy4x2SIMD(d0, d1,
					bd[p*n:p*n+n], bd[(p+1)*n:(p+1)*n+n],
					bd[(p+2)*n:(p+2)*n+n], bd[(p+3)*n:(p+3)*n+n], &av)
			}
		} else {
			for ; p+4 <= k; p += 4 {
				axpy4x2Generic(d0, d1,
					bd[p*n:p*n+n], bd[(p+1)*n:(p+1)*n+n],
					bd[(p+2)*n:(p+2)*n+n], bd[(p+3)*n:(p+3)*n+n],
					ad[p*m+i], ad[(p+1)*m+i], ad[(p+2)*m+i], ad[(p+3)*m+i],
					ad[p*m+i+1], ad[(p+1)*m+i+1], ad[(p+2)*m+i+1], ad[(p+3)*m+i+1])
			}
		}
		for ; p < k; p++ {
			axpy1(d0, bd[p*n:p*n+n], ad[p*m+i])
			axpy1(d1, bd[p*n:p*n+n], ad[p*m+i+1])
		}
	}
	for ; i < r1; i++ {
		d0 := od[i*n : i*n+n]
		zeroFloats(d0)
		p := 0
		if simdAvailable {
			var av [4]float32
			for ; p+4 <= k; p += 4 {
				av[0], av[1], av[2], av[3] = ad[p*m+i], ad[(p+1)*m+i], ad[(p+2)*m+i], ad[(p+3)*m+i]
				axpy4SIMD(d0,
					bd[p*n:p*n+n], bd[(p+1)*n:(p+1)*n+n],
					bd[(p+2)*n:(p+2)*n+n], bd[(p+3)*n:(p+3)*n+n], &av)
			}
		} else {
			for ; p+4 <= k; p += 4 {
				axpy4Generic(d0,
					bd[p*n:p*n+n], bd[(p+1)*n:(p+1)*n+n],
					bd[(p+2)*n:(p+2)*n+n], bd[(p+3)*n:(p+3)*n+n],
					ad[p*m+i], ad[(p+1)*m+i], ad[(p+2)*m+i], ad[(p+3)*m+i])
			}
		}
		for ; p < k; p++ {
			axpy1(d0, bd[p*n:p*n+n], ad[p*m+i])
		}
	}
}

func zeroFloats(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// axpy4x2Generic computes, for j in [0, len(d0)):
//
//	d0[j] += a00*b0[j] + a01*b1[j] + a02*b2[j] + a03*b3[j]
//	d1[j] += a10*b0[j] + a11*b1[j] + a12*b2[j] + a13*b3[j]
//
// The reslicing below pins every slice to len(d0) so the compiler proves
// all inner-loop indexing in bounds (verified with -d=ssa/check_bce).
func axpy4x2Generic(d0, d1, b0, b1, b2, b3 []float32, a00, a01, a02, a03, a10, a11, a12, a13 float32) {
	q1 := b1[:len(d0)]
	q2 := b2[:len(d0)]
	q3 := b3[:len(d0)]
	e1 := d1[:len(d0)]
	q0 := b0[:len(d0)]
	for j := range d0 {
		v0, v1, v2, v3 := q0[j], q1[j], q2[j], q3[j]
		d0[j] += a00*v0 + a01*v1 + a02*v2 + a03*v3
		e1[j] += a10*v0 + a11*v1 + a12*v2 + a13*v3
	}
}

// axpy4Generic is the single-row version of axpy4x2Generic with an
// identical per-element operation chain, so row pairing cannot change
// results.
func axpy4Generic(d, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	q1 := b1[:len(d)]
	q2 := b2[:len(d)]
	q3 := b3[:len(d)]
	q0 := b0[:len(d)]
	for j := range d {
		d[j] += a0*q0[j] + a1*q1[j] + a2*q2[j] + a3*q3[j]
	}
}

// axpy1 handles the k%4 remainder rows: d[j] += av*b[j].
func axpy1(d, b []float32, av float32) {
	q := b[:len(d)]
	for j := range d {
		d[j] += av * q[j]
	}
}

// dot1 is the scalar dot product used for the n%4 remainder columns of
// MatMulBT. Four partial accumulators break the add latency chain; the
// final combine order is fixed.
func dot1(a, b []float32) float32 {
	q := b[:len(a)]
	var s0, s1, s2, s3 float32
	p := 0
	for ; p+4 <= len(a); p += 4 {
		s0 += a[p] * q[p]
		s1 += a[p+1] * q[p+1]
		s2 += a[p+2] * q[p+2]
		s3 += a[p+3] * q[p+3]
	}
	var st float32
	for ; p < len(a); p++ {
		st += a[p] * q[p]
	}
	return ((s0 + s1) + (s2 + s3)) + st
}
