package tensor

import "fmt"

// MatMul returns a × b for a of shape [m, k] and b of shape [k, n].
//
// The kernel is a cache-friendly i-k-j loop parallelised over output rows.
// Accumulation order per output element is fixed, so results are
// bit-identical regardless of worker count.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 || a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shapes %v × %v invalid (%v)", a.shape, b.shape, ErrShape))
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	MatMulInto(out, a, b)
	_ = k
	return out
}

// MatMulInto computes out = a × b, reusing out's storage. out must be
// [m, n] and zeroed or overwritable; it is fully overwritten.
func MatMulInto(out, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto out shape %v, want [%d %d]", out.shape, m, n))
	}
	ad, bd, od := a.Data, b.Data, out.Data
	parallelFor(m, matmulRowsPerWorker(k, n), func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			orow := od[i*n : (i+1)*n]
			for x := range orow {
				orow[x] = 0
			}
			arow := ad[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// matmulRowsPerWorker picks a minimum per-goroutine row count so tiny
// multiplies stay single-threaded.
func matmulRowsPerWorker(k, n int) int {
	work := k * n
	if work <= 0 {
		return 1
	}
	const targetFlopsPerWorker = 1 << 15
	rows := targetFlopsPerWorker / work
	if rows < 1 {
		rows = 1
	}
	return rows
}

// MatMulBT returns a × bᵀ for a [m, k] and b [n, k]. This avoids
// materialising the transpose in backward passes.
func MatMulBT(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 || a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulBT shapes %v × %vᵀ invalid (%v)", a.shape, b.shape, ErrShape))
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	out := New(m, n)
	ad, bd, od := a.Data, b.Data, out.Data
	parallelFor(m, matmulRowsPerWorker(k, n), func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := ad[i*k : (i+1)*k]
			orow := od[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	})
	return out
}

// MatMulAT returns aᵀ × b for a [k, m] and b [k, n]; used for weight
// gradients (dW = xᵀ·dy).
func MatMulAT(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulAT shapes %vᵀ × %v invalid (%v)", a.shape, b.shape, ErrShape))
	}
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	ad, bd, od := a.Data, b.Data, out.Data
	parallelFor(m, matmulRowsPerWorker(k, n), func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			orow := od[i*n : (i+1)*n]
			for x := range orow {
				orow[x] = 0
			}
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}
