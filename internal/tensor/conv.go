package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
type ConvGeom struct {
	InC, InH, InW int // input channels / spatial size
	KH, KW        int // kernel size
	StrideH       int
	StrideW       int
	PadH, PadW    int
	OutH, OutW    int // derived; filled by Validate
	outHWComputed bool
}

// Validate derives the output spatial size and checks invariants.
func (g *ConvGeom) Validate() error {
	if g.StrideH <= 0 || g.StrideW <= 0 {
		return fmt.Errorf("tensor: conv stride must be positive, got (%d,%d)", g.StrideH, g.StrideW)
	}
	if g.KH <= 0 || g.KW <= 0 || g.InC <= 0 || g.InH <= 0 || g.InW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive dimension: %+v", *g)
	}
	oh := (g.InH+2*g.PadH-g.KH)/g.StrideH + 1
	ow := (g.InW+2*g.PadW-g.KW)/g.StrideW + 1
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("tensor: conv kernel %dx%d does not fit input %dx%d (pad %d,%d)", g.KH, g.KW, g.InH, g.InW, g.PadH, g.PadW)
	}
	g.OutH, g.OutW = oh, ow
	g.outHWComputed = true
	return nil
}

func (g *ConvGeom) mustValid() {
	if !g.outHWComputed {
		if err := g.Validate(); err != nil {
			panic(err)
		}
	}
}

// Im2Col lowers one image x of shape [C, H, W] (flattened) into a matrix of
// shape [C*KH*KW, OutH*OutW] so convolution becomes a single MatMul.
// dst must be pre-sized; it is fully overwritten (zero padding included).
func Im2Col(dst *Tensor, x []float32, g *ConvGeom) {
	g.mustValid()
	rows := g.InC * g.KH * g.KW
	cols := g.OutH * g.OutW
	if dst.Numel() != rows*cols {
		panic(fmt.Sprintf("tensor: Im2Col dst numel %d, want %d", dst.Numel(), rows*cols))
	}
	dd := dst.Data
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := ((c*g.KH+kh)*g.KW + kw) * cols
				for oh := 0; oh < g.OutH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					outBase := row + oh*g.OutW
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < g.OutW; ow++ {
							dd[outBase+ow] = 0
						}
						continue
					}
					inBase := chanBase + ih*g.InW
					for ow := 0; ow < g.OutW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							dd[outBase+ow] = 0
						} else {
							dd[outBase+ow] = x[inBase+iw]
						}
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it accumulates the column matrix back
// into an image gradient of shape [C, H, W] (added into dx).
func Col2Im(dx []float32, cols *Tensor, g *ConvGeom) {
	g.mustValid()
	cd := cols.Data
	ncols := g.OutH * g.OutW
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := ((c*g.KH+kh)*g.KW + kw) * ncols
				for oh := 0; oh < g.OutH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						continue
					}
					inBase := chanBase + ih*g.InW
					outBase := row + oh*g.OutW
					for ow := 0; ow < g.OutW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							continue
						}
						dx[inBase+iw] += cd[outBase+ow]
					}
				}
			}
		}
	}
}

// MaxPoolForward computes max pooling for a batch input [N, C, H, W] and
// records the argmax flat index (within each image) for the backward pass.
func MaxPoolForward(x *Tensor, g *ConvGeom) (out *Tensor, argmax []int32) {
	g.mustValid()
	n := x.Dim(0)
	imgIn := g.InC * g.InH * g.InW
	imgOut := g.InC * g.OutH * g.OutW
	// Pooled: every element is written below, and autodiff marks the
	// wrapping node as pool-owned so Release recycles it.
	out = Get(n, g.InC, g.OutH, g.OutW)
	argmax = make([]int32, n*imgOut)
	parallelFor(n, 1, func(n0, n1 int) {
		for b := n0; b < n1; b++ {
			xb := x.Data[b*imgIn : (b+1)*imgIn]
			ob := out.Data[b*imgOut : (b+1)*imgOut]
			ab := argmax[b*imgOut : (b+1)*imgOut]
			for c := 0; c < g.InC; c++ {
				chanBase := c * g.InH * g.InW
				for oh := 0; oh < g.OutH; oh++ {
					for ow := 0; ow < g.OutW; ow++ {
						best := float32(0)
						bestIdx := -1
						for kh := 0; kh < g.KH; kh++ {
							ih := oh*g.StrideH - g.PadH + kh
							if ih < 0 || ih >= g.InH {
								continue
							}
							for kw := 0; kw < g.KW; kw++ {
								iw := ow*g.StrideW - g.PadW + kw
								if iw < 0 || iw >= g.InW {
									continue
								}
								idx := chanBase + ih*g.InW + iw
								if v := xb[idx]; bestIdx < 0 || v > best {
									best, bestIdx = v, idx
								}
							}
						}
						o := (c*g.OutH+oh)*g.OutW + ow
						ob[o] = best
						ab[o] = int32(bestIdx)
					}
				}
			}
		}
	})
	return out, argmax
}

// AvgPoolForward computes average pooling (count excludes padding, matching
// PyTorch's count_include_pad=False default behaviour for our use).
func AvgPoolForward(x *Tensor, g *ConvGeom) *Tensor {
	g.mustValid()
	n := x.Dim(0)
	imgIn := g.InC * g.InH * g.InW
	imgOut := g.InC * g.OutH * g.OutW
	// GetZero: windows that fall entirely into padding are skipped below
	// and must read as zero.
	out := GetZero(n, g.InC, g.OutH, g.OutW)
	parallelFor(n, 1, func(n0, n1 int) {
		for b := n0; b < n1; b++ {
			xb := x.Data[b*imgIn : (b+1)*imgIn]
			ob := out.Data[b*imgOut : (b+1)*imgOut]
			for c := 0; c < g.InC; c++ {
				chanBase := c * g.InH * g.InW
				for oh := 0; oh < g.OutH; oh++ {
					for ow := 0; ow < g.OutW; ow++ {
						var sum float32
						count := 0
						for kh := 0; kh < g.KH; kh++ {
							ih := oh*g.StrideH - g.PadH + kh
							if ih < 0 || ih >= g.InH {
								continue
							}
							for kw := 0; kw < g.KW; kw++ {
								iw := ow*g.StrideW - g.PadW + kw
								if iw < 0 || iw >= g.InW {
									continue
								}
								sum += xb[chanBase+ih*g.InW+iw]
								count++
							}
						}
						if count > 0 {
							ob[(c*g.OutH+oh)*g.OutW+ow] = sum / float32(count)
						}
					}
				}
			}
		}
	})
	return out
}
