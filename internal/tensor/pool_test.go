package tensor

import (
	"sync"
	"testing"
)

func TestPoolRoundtrip(t *testing.T) {
	a := Get(3, 5)
	if a.Numel() != 15 || a.Dims() != 2 {
		t.Fatalf("Get(3,5) = %v", a.Shape())
	}
	for i := range a.Data {
		a.Data[i] = float32(i)
	}
	Put(a)
	b := Get(15) // same bucket (16)
	if cap(b.Data) != 16 {
		t.Fatalf("bucket capacity = %d, want 16", cap(b.Data))
	}
	Put(b)
}

func TestGetZero(t *testing.T) {
	a := Get(64)
	for i := range a.Data {
		a.Data[i] = 1
	}
	Put(a)
	z := GetZero(64)
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("GetZero elem %d = %v", i, v)
		}
	}
	Put(z)
}

func TestPutForeignIgnored(t *testing.T) {
	// Non-power-of-two capacity: must not poison the pool.
	Put(FromSlice(make([]float32, 15), 15))
	Put(nil)
	Put(&Tensor{})
}

func TestPoolZeroSize(t *testing.T) {
	z := Get(0, 4)
	if z.Numel() != 0 {
		t.Fatalf("Get(0,4).Numel() = %d", z.Numel())
	}
	Put(z)
}

func TestPoolSteadyStateNoAlloc(t *testing.T) {
	// Warm the bucket, then verify Get/Put cycles stop allocating.
	warm := Get(128, 128)
	Put(warm)
	allocs := testing.AllocsPerRun(100, func() {
		x := Get(128, 128)
		Put(x)
	})
	if allocs > 0 {
		t.Errorf("steady-state Get/Put allocates %.1f objects per cycle", allocs)
	}
}

func TestPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				x := Get(32, 32)
				x.Fill(float32(seed))
				for _, v := range x.Data {
					if v != float32(seed) {
						t.Errorf("buffer aliased across goroutines")
						Put(x)
						return
					}
				}
				Put(x)
			}
		}(g)
	}
	wg.Wait()
}
