package tensor

import (
	"fmt"
	"math"
	"testing"
)

// ulpDiff32 measures the distance between got and the float32 rounding of
// want in units of the float32 grid, using the ordered-integer
// reinterpretation (which handles denormals and sign crossings uniformly).
// Two NaNs are distance 0; NaN vs non-NaN is reported as +Inf.
func ulpDiff32(got float32, want float64) float64 {
	w := float32(want)
	gNaN := got != got
	wNaN := w != w
	if gNaN || wNaN {
		if gNaN && wNaN {
			return 0
		}
		return math.Inf(1)
	}
	order := func(f float32) int64 {
		i := int64(int32(math.Float32bits(f)))
		if i < 0 {
			i = math.MinInt32 - i
		}
		return i
	}
	d := order(got) - order(w)
	if d < 0 {
		d = -d
	}
	return float64(d)
}

// Stated accuracy contracts for the scalar activation kernels, pinned by
// the sweep tests and the fuzz targets below:
//
//	Tanh32:    ≤ 4 ulp vs float64 math.Tanh everywhere (measured max 1)
//	Sigmoid32: ≤ 4 ulp vs 1/(1+e^{−x}) for x ≥ −88.37 (measured max 2);
//	           exact 0 below −88.37, Exp32's overflow bound (the true
//	           value there is a sub-2⁻¹²⁶ denormal)
//	GELU32:    |err| ≤ 4·(1+|x|)·2⁻²⁴ vs the float64 tanh-form reference
//	           (measured max 1.4·(1+|x|)·2⁻²⁴). An absolute envelope, not
//	           ulps: in the negative tail the (1+tanh) factor cancels and
//	           any float32 evaluation of the tanh form loses relative
//	           precision there.
const (
	tanhULPTol    = 4
	sigmoidULPTol = 4
	// sigmoidFlush mirrors exp32Hi: Exp32(-x) saturates to +Inf strictly
	// below this, making Sigmoid32 exactly 0.
	sigmoidFlush = -88.37
	geluEnvelope = 4
)

func tanhRef(x float32) float64 { return math.Tanh(float64(x)) }

func sigmoidRef(x float32) float64 { return 1 / (1 + math.Exp(-float64(x))) }

func geluRef(x float32) float64 {
	x64 := float64(x)
	return 0.5 * x64 * (1 + math.Tanh(gelu32C*(x64+gelu32A*x64*x64*x64)))
}

func checkTanh32(t *testing.T, x float32) {
	t.Helper()
	if u := ulpDiff32(Tanh32(x), tanhRef(x)); u > tanhULPTol {
		t.Fatalf("Tanh32(%v) = %v, want %v (%v ulp, tol %d)", x, Tanh32(x), tanhRef(x), u, tanhULPTol)
	}
}

func checkSigmoid32(t *testing.T, x float32) {
	t.Helper()
	got := Sigmoid32(x)
	if x < sigmoidFlush && x == x {
		if got != 0 {
			t.Fatalf("Sigmoid32(%v) = %v, want exact 0 below the flush threshold", x, got)
		}
		return
	}
	if u := ulpDiff32(got, sigmoidRef(x)); u > sigmoidULPTol {
		t.Fatalf("Sigmoid32(%v) = %v, want %v (%v ulp, tol %d)", x, got, sigmoidRef(x), u, sigmoidULPTol)
	}
}

func checkGELU32(t *testing.T, x float32) {
	t.Helper()
	got := float64(GELU32(x))
	want := geluRef(x)
	gNaN, wNaN := math.IsNaN(got), math.IsNaN(want)
	if gNaN || wNaN {
		if gNaN != wNaN {
			t.Fatalf("GELU32(%v) = %v, want %v (NaN mismatch)", x, got, want)
		}
		return
	}
	if math.IsInf(got, 0) || math.IsInf(want, 0) {
		if (got < 0) != (want < 0) || !math.IsInf(got, 0) || math.Abs(want) < math.MaxFloat32 {
			t.Fatalf("GELU32(%v) = %v, want %v (Inf mismatch)", x, got, want)
		}
		return
	}
	env := geluEnvelope * (1 + math.Abs(float64(x))) * math.Exp2(-24)
	if diff := math.Abs(got - want); diff > env {
		t.Fatalf("GELU32(%v) = %v, want %v (diff %g > envelope %g)", x, got, want, diff, env)
	}
}

// actEdgeCases are the inputs every activation kernel must get right:
// ±0, denormals, the path-switch neighbourhoods, saturation bounds,
// large magnitudes, ±Inf, and NaN.
func actEdgeCases() []float32 {
	return []float32{
		0, float32(math.Copysign(0, -1)),
		math.Float32frombits(1), -math.Float32frombits(1), // smallest denormals
		1e-40, -1e-40, 1e-38, -1e-38, // denormal / near-denormal
		1e-20, -1e-20, 2.4e-4, -2.4e-4,
		0.624, 0.625, 0.626, -0.624, -0.625, -0.626, // tanh path switch
		1, -1, 4.053438, -5.15847, // worst measured GELU spots
		9.0, 9.02, -9.0, -9.02, 10, -10, // tanh saturation bound
		17.46, -17.46, 87.3, -87.3, 88.4, -88.4, 89, -89, // sigmoid/exp bounds
		-88.37, -88.375, -88.38, // the exact Exp32 overflow / sigmoid flush edge
		1e4, -1e4, 1e30, -1e30, math.MaxFloat32, -math.MaxFloat32,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
	}
}

func TestTanh32MatchesFloat64(t *testing.T) {
	for _, x := range actEdgeCases() {
		checkTanh32(t, x)
	}
	for x := -20.0; x <= 20.0; x += 0.00137 {
		checkTanh32(t, float32(x))
	}
	// Exact special values the contract promises.
	if v := Tanh32(0); v != 0 || math.Signbit(float64(v)) {
		t.Fatalf("Tanh32(+0) = %v, want +0", v)
	}
	if v := Tanh32(float32(math.Copysign(0, -1))); v != 0 || !math.Signbit(float64(v)) {
		t.Fatalf("Tanh32(-0) = %v, want -0", v)
	}
	den := math.Float32frombits(3)
	if Tanh32(den) != den {
		t.Fatalf("Tanh32 must be identity on denormals: %v -> %v", den, Tanh32(den))
	}
	if Tanh32(float32(math.Inf(1))) != 1 || Tanh32(float32(math.Inf(-1))) != -1 {
		t.Fatal("Tanh32(±Inf) must saturate to ±1")
	}
	nan := float32(math.NaN())
	if Tanh32(nan) == Tanh32(nan) {
		t.Fatal("Tanh32(NaN) must propagate NaN")
	}
}

func TestSigmoid32MatchesFloat64(t *testing.T) {
	for _, x := range actEdgeCases() {
		checkSigmoid32(t, x)
	}
	for x := -87.0; x <= 88.0; x += 0.0213 {
		checkSigmoid32(t, float32(x))
	}
	if Sigmoid32(0) != 0.5 || Sigmoid32(float32(math.Copysign(0, -1))) != 0.5 {
		t.Fatal("Sigmoid32(±0) must be exactly 0.5")
	}
	if Sigmoid32(89) != 1 || Sigmoid32(float32(math.Inf(1))) != 1 {
		t.Fatal("Sigmoid32 must saturate to 1 for large x")
	}
	if Sigmoid32(-89) != 0 || Sigmoid32(float32(math.Inf(-1))) != 0 {
		t.Fatal("Sigmoid32 must flush to 0 for very negative x")
	}
	nan := float32(math.NaN())
	if Sigmoid32(nan) == Sigmoid32(nan) {
		t.Fatal("Sigmoid32(NaN) must propagate NaN")
	}
}

func TestGELU32MatchesFloat64(t *testing.T) {
	for _, x := range actEdgeCases() {
		checkGELU32(t, x)
	}
	for x := -30.0; x <= 30.0; x += 0.00317 {
		checkGELU32(t, float32(x))
	}
	if v := GELU32(0); v != 0 || math.Signbit(float64(v)) {
		t.Fatalf("GELU32(+0) = %v, want +0", v)
	}
	if v := GELU32(float32(math.Copysign(0, -1))); v != 0 || !math.Signbit(float64(v)) {
		t.Fatalf("GELU32(-0) = %v, want -0", v)
	}
	if !math.IsInf(float64(GELU32(float32(math.Inf(1)))), 1) {
		t.Fatal("GELU32(+Inf) must be +Inf")
	}
	nan := float32(math.NaN())
	if GELU32(nan) == GELU32(nan) {
		t.Fatal("GELU32(NaN) must propagate NaN")
	}
}

// Fuzz targets: Go's fuzzer explores the raw bit space of float32, so
// denormals, NaN payloads, and exponent boundaries all come up. The seed
// corpus pins the documented edge cases; `go test` replays it on every
// run.

func fuzzSeeds(f *testing.F) {
	for _, x := range actEdgeCases() {
		f.Add(x)
	}
}

func FuzzTanh32(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, x float32) {
		checkTanh32(t, x)
	})
}

func FuzzSigmoid32(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, x float32) {
		checkSigmoid32(t, x)
	})
}

func FuzzGELU32(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, x float32) {
		checkGELU32(t, x)
	})
}

// actTestInput builds a value mix that exercises every kernel path:
// normals at training scale, the polynomial/exp switch, saturation, tiny
// values, and exact zeros.
func actTestInput(n int, seed uint64) []float32 {
	rng := NewRNG(seed)
	x := New(n)
	rng.FillNormal(x, 0, 3)
	edge := actEdgeCases()
	for i := 0; i < n/7; i++ {
		v := edge[i%len(edge)]
		if v == v && v*0 == 0 { // keep rows finite for the row-kernel tests
			x.Data[(i*7)%n] = v
		}
	}
	return x.Data
}

// TestActivationRowKernelsMatchFloat64 bounds the row kernels — whichever
// backend is active — against the float64 references with the same stated
// tolerances as the scalar kernels, at lengths that exercise the SIMD bulk
// and the scalar tail.
func TestActivationRowKernelsMatchFloat64(t *testing.T) {
	for _, simd := range []bool{false, true} {
		prev := setSIMD(simd)
		if simd && !SIMDEnabled() {
			setSIMD(prev)
			t.Log("AVX2 not available; SIMD dispatch not exercised")
			continue
		}
		for _, n := range []int{1, 7, 8, 9, 64, 101} {
			x := actTestInput(n, 7)
			dst := make([]float32, n)
			tanh := make([]float32, n)
			TanhInto(tanh, x)
			SigmoidInto(dst, x)
			gelu := make([]float32, n)
			tt := make([]float32, n)
			GELUFwdInto(gelu, tt, x)
			for i, v := range x {
				if u := ulpDiff32(tanh[i], tanhRef(v)); u > tanhULPTol {
					t.Fatalf("simd=%v n=%d: TanhInto[%d](%v) off by %v ulp", simd, n, i, v, u)
				}
				if v > sigmoidFlush {
					if u := ulpDiff32(dst[i], sigmoidRef(v)); u > sigmoidULPTol {
						t.Fatalf("simd=%v n=%d: SigmoidInto[%d](%v) off by %v ulp", simd, n, i, v, u)
					}
				} else if dst[i] != 0 {
					t.Fatalf("simd=%v n=%d: SigmoidInto[%d](%v) = %v, want flush to 0", simd, n, i, v, dst[i])
				}
				env := geluEnvelope * (1 + math.Abs(float64(v))) * math.Exp2(-24)
				if diff := math.Abs(float64(gelu[i]) - geluRef(v)); diff > env {
					t.Fatalf("simd=%v n=%d: GELU[%d](%v) diff %g > %g", simd, n, i, v, diff, env)
				}
				if u := ulpDiff32(tt[i], math.Tanh(gelu32C*(float64(v)+gelu32A*float64(v)*float64(v)*float64(v)))); u > tanhULPTol {
					t.Fatalf("simd=%v n=%d: retained gelu tanh[%d] off by %v ulp", simd, n, i, u)
				}
			}
		}
		setSIMD(prev)
	}
}

// TestActivationRowKernelsNaN pins NaN propagation through the dispatched
// row kernels (the SIMD lanes blend the input back in for unordered
// lanes).
func TestActivationRowKernelsNaN(t *testing.T) {
	for _, simd := range []bool{false, true} {
		prev := setSIMD(simd)
		if simd && !SIMDEnabled() {
			setSIMD(prev)
			continue
		}
		x := make([]float32, 16)
		for i := range x {
			x[i] = float32(i) - 8
		}
		x[3] = float32(math.NaN())
		x[11] = float32(math.NaN())
		dst := make([]float32, 16)
		TanhInto(dst, x)
		if dst[3] == dst[3] || dst[11] == dst[11] {
			t.Fatalf("simd=%v: TanhInto must propagate NaN lanes", simd)
		}
		if dst[4] != dst[4] || dst[10] != dst[10] {
			t.Fatalf("simd=%v: TanhInto corrupted neighbours of NaN lanes", simd)
		}
		SigmoidInto(dst, x)
		if dst[3] == dst[3] || dst[11] == dst[11] {
			t.Fatalf("simd=%v: SigmoidInto must propagate NaN lanes", simd)
		}
		setSIMD(prev)
	}
}

// TestActivationFusedEpilogueKernels checks the bias+activation epilogues
// against their unfused composition element by element.
func TestActivationFusedEpilogueKernels(t *testing.T) {
	const rows, d = 5, 13 // d deliberately not a multiple of the SIMD width
	rng := NewRNG(31)
	x := New(rows, d)
	bias := New(d)
	rng.FillNormal(x, 0, 2)
	rng.FillNormal(bias, 0, 1)
	dst := make([]float32, rows*d)
	AddRowBiasTanhInto(dst, x.Data, bias.Data, rows, d)
	for r := 0; r < rows; r++ {
		for j := 0; j < d; j++ {
			want := Tanh32(x.Data[r*d+j] + bias.Data[j])
			if got := dst[r*d+j]; got != want && ulpDiff32(got, float64(want)) > 1 {
				t.Fatalf("AddRowBiasTanh (%d,%d) = %v, want %v", r, j, got, want)
			}
		}
	}

	const n, c, hw = 2, 3, 9 // hw not a multiple of the SIMD width
	xc := New(n, c, hw)
	cb := New(c)
	rng.FillNormal(xc, 0, 2)
	rng.FillNormal(cb, 0, 1)
	dc := make([]float32, n*c*hw)
	AddChanBiasSigmoidInto(dc, xc.Data, cb.Data, n, c, hw)
	for idx := range dc {
		ch := (idx / hw) % c
		want := Sigmoid32(xc.Data[idx] + cb.Data[ch])
		if got := dc[idx]; got != want && ulpDiff32(got, float64(want)) > 1 {
			t.Fatalf("AddChanBiasSigmoid idx %d = %v, want %v", idx, got, want)
		}
	}
}

// TestActivationBackwardKernels checks the gradient kernels against their
// scalar definitions, including that Bwd accumulates and Grad assigns.
func TestActivationBackwardKernels(t *testing.T) {
	const n = 41
	x := actTestInput(n, 13)
	dy := actTestInput(n, 14)
	y := make([]float32, n)
	TanhInto(y, x)
	dx := make([]float32, n)
	for i := range dx {
		dx[i] = 1
	}
	TanhBwdInto(dx, dy, y)
	for i := range dx {
		want := 1 + dy[i]*(1-y[i]*y[i])
		if dx[i] != want && math.Abs(float64(dx[i]-want)) > 1e-6 {
			t.Fatalf("TanhBwdInto[%d] = %v, want %v", i, dx[i], want)
		}
	}
	dpre := make([]float32, n)
	TanhGradInto(dpre, dy, y)
	for i := range dpre {
		if want := dy[i] * (1 - y[i]*y[i]); dpre[i] != want {
			t.Fatalf("TanhGradInto[%d] = %v, want %v", i, dpre[i], want)
		}
	}

	SigmoidInto(y, x)
	SigmoidGradInto(dpre, dy, y)
	for i := range dpre {
		if want := dy[i] * y[i] * (1 - y[i]); dpre[i] != want {
			t.Fatalf("SigmoidGradInto[%d] = %v, want %v", i, dpre[i], want)
		}
	}

	tt := make([]float32, n)
	GELUFwdInto(y, tt, x)
	GELUGradInto(dpre, dy, x, tt)
	for i := range dpre {
		if want := dy[i] * geluGrad(x[i], tt[i]); dpre[i] != want {
			t.Fatalf("GELUGradInto[%d] = %v, want %v", i, dpre[i], want)
		}
	}
}

// TestActivationKernelsDeterministicAcrossWorkers pins the repo's
// determinism contract for the new family: bit-identical outputs for any
// SetMaxWorkers value, on both dispatch backends, at sizes spanning
// several parallel blocks with a ragged tail.
func TestActivationKernelsDeterministicAcrossWorkers(t *testing.T) {
	const n = 3*actBlock + 123
	const rows, d = 67, 96
	const bn, bc, bhw = 3, 13, 40
	x := actTestInput(n, 21)
	dy := actTestInput(n, 22)
	xr := actTestInput(rows*d, 23)
	bias := actTestInput(d, 24)
	xc := actTestInput(bn*bc*bhw, 25)
	cbias := actTestInput(bc, 26)

	type result struct {
		tanh, sig, gelu, geluT, dxT, dxS, dxG, rowTanh, chanSig []float32
	}
	run := func() result {
		var r result
		r.tanh = make([]float32, n)
		TanhInto(r.tanh, x)
		r.sig = make([]float32, n)
		SigmoidInto(r.sig, x)
		r.gelu = make([]float32, n)
		r.geluT = make([]float32, n)
		GELUFwdInto(r.gelu, r.geluT, x)
		r.dxT = make([]float32, n)
		TanhBwdInto(r.dxT, dy, r.tanh)
		r.dxS = make([]float32, n)
		SigmoidBwdInto(r.dxS, dy, r.sig)
		r.dxG = make([]float32, n)
		GELUBwdInto(r.dxG, dy, x, r.geluT)
		r.rowTanh = make([]float32, rows*d)
		AddRowBiasTanhInto(r.rowTanh, xr, bias, rows, d)
		r.chanSig = make([]float32, bn*bc*bhw)
		AddChanBiasSigmoidInto(r.chanSig, xc, cbias, bn, bc, bhw)
		return r
	}
	equal := func(a, b []float32) bool {
		for i := range a {
			if a[i] != b[i] && !(a[i] != a[i] && b[i] != b[i]) {
				return false
			}
		}
		return true
	}

	for _, simd := range []bool{false, true} {
		prevSIMD := setSIMD(simd)
		if simd && !SIMDEnabled() {
			setSIMD(prevSIMD)
			continue
		}
		prev := SetMaxWorkers(1)
		ref := run()
		for _, wk := range []int{2, 3, 8} {
			SetMaxWorkers(wk)
			got := run()
			for name, pair := range map[string][2][]float32{
				"tanh":             {got.tanh, ref.tanh},
				"sigmoid":          {got.sig, ref.sig},
				"gelu":             {got.gelu, ref.gelu},
				"gelu-t":           {got.geluT, ref.geluT},
				"tanh-bwd":         {got.dxT, ref.dxT},
				"sigmoid-bwd":      {got.dxS, ref.dxS},
				"gelu-bwd":         {got.dxG, ref.dxG},
				"rowbias-tanh":     {got.rowTanh, ref.rowTanh},
				"chanbias-sigmoid": {got.chanSig, ref.chanSig},
			} {
				if !equal(pair[0], pair[1]) {
					t.Errorf("simd=%v workers=%d: %s not bit-identical", simd, wk, name)
				}
			}
		}
		SetMaxWorkers(prev)
		setSIMD(prevSIMD)
	}
}

// TestActivationKernelZeroAllocs pins the tensor-level activation kernels
// at exactly zero allocations on the serial path.
func TestActivationKernelZeroAllocs(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	const rows, d = 32, 48
	n := rows * d
	x := actTestInput(n, 41)
	dy := actTestInput(n, 42)
	bias := actTestInput(d, 43)
	y := make([]float32, n)
	tt := make([]float32, n)
	dx := make([]float32, n)
	if a := testing.AllocsPerRun(10, func() {
		TanhInto(y, x)
		TanhBwdInto(dx, dy, y)
		TanhGradInto(dx, dy, y)
		SigmoidInto(y, x)
		SigmoidBwdInto(dx, dy, y)
		SigmoidGradInto(dx, dy, y)
		GELUFwdInto(y, tt, x)
		GELUBwdInto(dx, dy, x, tt)
		GELUGradInto(dx, dy, x, tt)
		AddRowBiasTanhInto(y, x, bias, rows, d)
		AddRowBiasInto(y, x, bias, rows, d)
		AddChanBiasSigmoidInto(y, x, bias[:8], 4, 8, n/32)
	}); a != 0 {
		t.Fatalf("activation kernels allocate %v/op on the serial path, want 0", a)
	}
}

func BenchmarkTanh32Row(bb *testing.B) {
	for _, n := range []int{256, 4096} {
		bb.Run(fmt.Sprintf("n%d", n), func(bb *testing.B) {
			x := actTestInput(n, 51)
			dst := make([]float32, n)
			bb.SetBytes(int64(n) * 4)
			bb.ReportAllocs()
			bb.ResetTimer()
			for i := 0; i < bb.N; i++ {
				tanhRow(dst, x)
			}
		})
	}
}

// BenchmarkTanh32RowNaive is the frozen PR 2-era per-element float64 path
// (math.Tanh round-trip); the ratio to BenchmarkTanh32Row in the same run
// is the recorded kernel speedup.
func BenchmarkTanh32RowNaive(bb *testing.B) {
	const n = 4096
	x := actTestInput(n, 51)
	dst := make([]float32, n)
	bb.SetBytes(int64(n) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		for j, v := range x {
			dst[j] = float32(math.Tanh(float64(v)))
		}
	}
}

func BenchmarkSigmoid32Row(bb *testing.B) {
	const n = 4096
	x := actTestInput(n, 52)
	dst := make([]float32, n)
	bb.SetBytes(int64(n) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		sigmoidRow(dst, x)
	}
}

func BenchmarkGELU32Fwd(bb *testing.B) {
	const n = 4096
	x := actTestInput(n, 53)
	dst := make([]float32, n)
	tt := make([]float32, n)
	bb.SetBytes(int64(n) * 4)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		GELUFwdInto(dst, tt, x)
	}
}
