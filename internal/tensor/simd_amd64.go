//go:build amd64

package tensor

// amd64 SIMD backend for the matmul kernel family. The assembly in
// simd_amd64.s uses AVX2 + FMA3; simdAvailable is set at init only when the
// CPU reports those features and the OS has enabled YMM state, so the
// binary still runs (on the pure-Go kernels) on older hardware.
//
// FMA fuses each multiply-add without an intermediate rounding, so SIMD
// results differ in the last ulp from the pure-Go kernels — but every
// kernel chains its FMAs in a fixed ascending-k order, keeping the
// repo-wide determinism contract: bit-identical outputs for any worker
// count on a given machine/binary.

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

//go:noescape
func axpy4x2SIMD(d0, d1, b0, b1, b2, b3 []float32, a *[8]float32)

//go:noescape
func axpy4SIMD(d, b0, b1, b2, b3 []float32, a *[4]float32)

//go:noescape
func dot4SIMD(a, b0, b1, b2, b3 []float32, out *[4]float32)

//go:noescape
func expRowSumSIMD(dst, src []float32, maxv float32) float64

//go:noescape
func normAffineSIMD(dst, xh, src, gamma, beta []float32, mu, is float32)

//go:noescape
func lnBwdDxSIMD(dx, dy, gamma, xh []float32, mDy, mDyX, is float32)

//go:noescape
func tanhRowSIMD(dst, src []float32)

//go:noescape
func sigmoidRowSIMD(dst, src []float32)

// simdAvailable gates the SIMD dispatch in matmul.go.
var simdAvailable = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuidex(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	if c&fma == 0 || c&osxsave == 0 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	if b7&avx2 == 0 {
		return false
	}
	eax, _ := xgetbv0()
	return eax&6 == 6 // XMM and YMM state enabled by the OS
}

// SIMDEnabled reports whether the AVX2+FMA kernels are active. Exposed so
// benchmarks and tests can record which backend produced their numbers.
func SIMDEnabled() bool { return simdAvailable }

// setSIMD force-enables or disables the SIMD backend and returns the
// previous state. Test-only: lets the suite cross-check SIMD and generic
// kernels on the same machine.
func setSIMD(on bool) bool {
	prev := simdAvailable
	if on && !detectAVX2FMA() {
		return prev // cannot enable what the CPU lacks
	}
	simdAvailable = on
	return prev
}
