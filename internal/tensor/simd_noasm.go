//go:build !amd64

package tensor

// Non-amd64 platforms always run the pure-Go kernels. (On arm64 the Go
// compiler fuses the a*b+c chains into hardware FMA on its own, so the
// generic kernels are already vectorised reasonably by the backend.)

const simdAvailable = false

// SIMDEnabled reports whether the AVX2+FMA kernels are active.
func SIMDEnabled() bool { return false }

func setSIMD(on bool) bool { return false }

// The SIMD kernel symbols are referenced from matmul.go behind
// `if simdAvailable`, which is a compile-time false here; the bodies are
// unreachable.
func axpy4x2SIMD(d0, d1, b0, b1, b2, b3 []float32, a *[8]float32) {
	panic("tensor: SIMD kernel called on non-amd64 build")
}

func axpy4SIMD(d, b0, b1, b2, b3 []float32, a *[4]float32) {
	panic("tensor: SIMD kernel called on non-amd64 build")
}

func dot4SIMD(a, b0, b1, b2, b3 []float32, out *[4]float32) {
	panic("tensor: SIMD kernel called on non-amd64 build")
}

func expRowSumSIMD(dst, src []float32, maxv float32) float64 {
	panic("tensor: SIMD kernel called on non-amd64 build")
}

func normAffineSIMD(dst, xh, src, gamma, beta []float32, mu, is float32) {
	panic("tensor: SIMD kernel called on non-amd64 build")
}

func lnBwdDxSIMD(dx, dy, gamma, xh []float32, mDy, mDyX, is float32) {
	panic("tensor: SIMD kernel called on non-amd64 build")
}

func tanhRowSIMD(dst, src []float32) {
	panic("tensor: SIMD kernel called on non-amd64 build")
}

func sigmoidRowSIMD(dst, src []float32) {
	panic("tensor: SIMD kernel called on non-amd64 build")
}
