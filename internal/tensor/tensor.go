// Package tensor implements a small, dependency-free dense tensor engine
// used as the computational substrate for the Amalgam reproduction.
//
// Tensors are row-major, contiguous, float32. The package provides the
// primitive operations (element-wise arithmetic, matrix multiplication,
// im2col-based convolution helpers, gathers/scatters, padding) on top of
// which the autodiff and neural-network layers are built.
//
// All operations are deterministic: parallel loops partition output ranges
// so that floating-point accumulation order never depends on the number of
// workers.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned (wrapped) by operations whose operands have
// incompatible shapes.
var ErrShape = errors.New("tensor: shape mismatch")

// Tensor is a dense, row-major, contiguous float32 tensor.
//
// The zero value is an empty tensor; use the constructors to build usable
// ones. Data is exposed for hot loops but callers must not resize it.
type Tensor struct {
	shape []int
	Data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := checkedNumel(shape)
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied). It panics if len(data) does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkedNumel(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (numel %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

func checkedNumel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's shape. The returned slice is a copy.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i (supporting negative indices from the
// end, à la Python, because model code reads much better with Dim(-1)).
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.shape)
	}
	return t.shape[i]
}

// Numel returns the total number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.flatIndex(idx)] }

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.flatIndex(idx)] = v }

func (t *Tensor) flatIndex(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	flat := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		flat = flat*t.shape[i] + x
	}
	return flat
}

// Reshape returns a view of t with a new shape sharing the same backing
// data. One dimension may be -1 to infer its size. It panics if the total
// element count differs.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out := append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range out {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape allows at most one -1 dimension")
			}
			infer = i
			continue
		}
		known *= d
	}
	if infer >= 0 {
		if known == 0 || t.Numel()%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		out[infer] = t.Numel() / known
	}
	if checkedNumel(out) != t.Numel() {
		panic(fmt.Sprintf("tensor: cannot reshape %v (numel %d) to %v", t.shape, t.Numel(), out))
	}
	return &Tensor{shape: out, Data: t.Data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	out := New(t.shape...)
	copy(out.Data, t.Data)
	return out
}

// CopyFrom copies src's data into t. Shapes must have equal numel.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom numel mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	copy(t.Data, src.Data)
}

// Zero sets every element of t to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Equal reports whether t and o have the same shape and bit-identical data.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.Data {
		if t.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether t and o have the same shape and element-wise
// absolute difference at most tol.
func (t *Tensor) AllClose(o *Tensor, tol float32) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.Data {
		d := t.Data[i] - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol || math.IsNaN(float64(t.Data[i])) != math.IsNaN(float64(o.Data[i])) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum element-wise absolute difference between t
// and o. It panics if shapes differ.
func (t *Tensor) MaxAbsDiff(o *Tensor) float32 {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %v vs %v", t.shape, o.shape))
	}
	var m float32
	for i := range t.Data {
		d := t.Data[i] - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// String renders a compact description (shape plus a data preview) suitable
// for debugging and error messages.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.Data)
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", t.Data[i])
	}
	if n > show {
		fmt.Fprintf(&b, ", … %d more", n-show)
	}
	b.WriteString("]")
	return b.String()
}

// SizeBytes returns the in-memory size of the tensor payload in bytes
// (float32 elements only, excluding headers).
func (t *Tensor) SizeBytes() int64 { return int64(len(t.Data)) * 4 }
