package tensor

import (
	"fmt"
	"math"
)

// binCheck panics with a descriptive message when a and b differ in shape.
func binCheck(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v (%v)", op, a.shape, b.shape, ErrShape))
	}
}

// Add returns a + b element-wise.
func Add(a, b *Tensor) *Tensor {
	binCheck("Add", a, b)
	out := New(a.shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInto computes dst += src element-wise.
func AddInto(dst, src *Tensor) {
	binCheck("AddInto", dst, src)
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// AddScaledInto computes dst += alpha*src element-wise (axpy).
func AddScaledInto(dst *Tensor, alpha float32, src *Tensor) {
	binCheck("AddScaledInto", dst, src)
	for i := range dst.Data {
		dst.Data[i] += alpha * src.Data[i]
	}
}

// AddRawInto computes dst[i] += src[i] over raw buffers (src at least as
// long as dst). Backward passes use it to fold pooled matmul scratch into
// gradient slabs without view headers.
func AddRawInto(dst, src []float32) {
	src = src[:len(dst)]
	for i, v := range src {
		dst[i] += v
	}
}

// AddOut computes dst = a + b element-wise into pre-sized dst.
func AddOut(dst, a, b *Tensor) {
	binCheck("AddOut", a, b)
	binCheck("AddOut", dst, a)
	ad := a.Data[:len(dst.Data)]
	bd := b.Data[:len(dst.Data)]
	for i := range dst.Data {
		dst.Data[i] = ad[i] + bd[i]
	}
}

// SubOut computes dst = a - b element-wise into pre-sized dst.
func SubOut(dst, a, b *Tensor) {
	binCheck("SubOut", a, b)
	binCheck("SubOut", dst, a)
	ad := a.Data[:len(dst.Data)]
	bd := b.Data[:len(dst.Data)]
	for i := range dst.Data {
		dst.Data[i] = ad[i] - bd[i]
	}
}

// MulOut computes dst = a ⊙ b element-wise into pre-sized dst.
func MulOut(dst, a, b *Tensor) {
	binCheck("MulOut", a, b)
	binCheck("MulOut", dst, a)
	ad := a.Data[:len(dst.Data)]
	bd := b.Data[:len(dst.Data)]
	for i := range dst.Data {
		dst.Data[i] = ad[i] * bd[i]
	}
}

// ScaleOut computes dst = alpha * a into pre-sized dst.
func ScaleOut(dst *Tensor, alpha float32, a *Tensor) {
	binCheck("ScaleOut", dst, a)
	ad := a.Data[:len(dst.Data)]
	for i := range dst.Data {
		dst.Data[i] = alpha * ad[i]
	}
}

// AddMulInto computes dst += x ⊙ y element-wise (fused multiply-accumulate
// over whole tensors). It lets backward passes scatter product gradients
// without a scratch tensor.
func AddMulInto(dst, x, y *Tensor) {
	binCheck("AddMulInto", dst, x)
	binCheck("AddMulInto", dst, y)
	xd := x.Data[:len(dst.Data)]
	yd := y.Data[:len(dst.Data)]
	for i := range dst.Data {
		dst.Data[i] += xd[i] * yd[i]
	}
}

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor {
	binCheck("Sub", a, b)
	out := New(a.shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the element-wise (Hadamard) product a ⊙ b.
func Mul(a, b *Tensor) *Tensor {
	binCheck("Mul", a, b)
	out := New(a.shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Div returns a / b element-wise.
func Div(a, b *Tensor) *Tensor {
	binCheck("Div", a, b)
	out := New(a.shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] / b.Data[i]
	}
	return out
}

// Scale returns alpha * a.
func Scale(a *Tensor, alpha float32) *Tensor {
	out := New(a.shape...)
	for i := range out.Data {
		out.Data[i] = alpha * a.Data[i]
	}
	return out
}

// ScaleInto computes a *= alpha in place.
func ScaleInto(a *Tensor, alpha float32) {
	for i := range a.Data {
		a.Data[i] *= alpha
	}
}

// Apply returns a new tensor with fn applied element-wise.
func Apply(a *Tensor, fn func(float32) float32) *Tensor {
	out := New(a.shape...)
	for i := range out.Data {
		out.Data[i] = fn(a.Data[i])
	}
	return out
}

// ApplyInto writes fn applied element-wise over a into dst (same numel).
func ApplyInto(dst, a *Tensor, fn func(float32) float32) {
	if len(dst.Data) != len(a.Data) {
		panic(fmt.Sprintf("tensor: ApplyInto numel mismatch %d vs %d", len(dst.Data), len(a.Data)))
	}
	ad := a.Data[:len(dst.Data)]
	for i := range dst.Data {
		dst.Data[i] = fn(ad[i])
	}
}

// Sum returns the sum of all elements, accumulated in four float64 lanes
// (for stability and to break the add latency chain) combined in a fixed
// order.
func Sum(a *Tensor) float64 {
	var s0, s1, s2, s3 float64
	d := a.Data
	p := 0
	for ; p+4 <= len(d); p += 4 {
		s0 += float64(d[p])
		s1 += float64(d[p+1])
		s2 += float64(d[p+2])
		s3 += float64(d[p+3])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; p < len(d); p++ {
		s += float64(d[p])
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func Mean(a *Tensor) float64 {
	if len(a.Data) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a.Data))
}

// Max returns the maximum element. It panics on empty tensors.
func Max(a *Tensor) float32 {
	if len(a.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := a.Data[0]
	for _, v := range a.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on empty tensors.
func Min(a *Tensor) float32 {
	if len(a.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := a.Data[0]
	for _, v := range a.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgmaxRows treats a as a [rows, cols] matrix and returns, for each row,
// the column index of its maximum element.
func ArgmaxRows(a *Tensor) []int {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: ArgmaxRows requires 2-D tensor, got %v", a.shape))
	}
	rows, cols := a.shape[0], a.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		base := r * cols
		best := 0
		bv := a.Data[base]
		for c := 1; c < cols; c++ {
			if v := a.Data[base+c]; v > bv {
				bv, best = v, c
			}
		}
		out[r] = best
	}
	return out
}

// Transpose2D returns the transpose of a [rows, cols] matrix.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires 2-D tensor, got %v", a.shape))
	}
	rows, cols := a.shape[0], a.shape[1]
	out := New(cols, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.Data[c*rows+r] = a.Data[r*cols+c]
		}
	}
	return out
}

// ConcatRows stacks 2-D matrices with equal column counts on top of each
// other.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := ts[0].Dim(1)
	rows := 0
	for _, t := range ts {
		if t.Dims() != 2 || t.Dim(1) != cols {
			panic(fmt.Sprintf("tensor: ConcatRows column mismatch (%v)", ErrShape))
		}
		rows += t.Dim(0)
	}
	out := New(rows, cols)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += len(t.Data)
	}
	return out
}

// GatherFlat returns a new tensor whose element i equals a.Data[idx[i]],
// shaped as a flat vector of len(idx). Used by the Amalgam skip layers to
// pull secret index subsets out of augmented samples.
func GatherFlat(a *Tensor, idx []int) *Tensor {
	out := New(len(idx))
	for i, j := range idx {
		out.Data[i] = a.Data[j]
	}
	return out
}

// ScatterAddFlat adds src[i] into dst.Data[idx[i]] for every i. It is the
// adjoint of GatherFlat.
func ScatterAddFlat(dst *Tensor, idx []int, src *Tensor) {
	if len(idx) != len(src.Data) {
		panic(fmt.Sprintf("tensor: ScatterAddFlat index/src length mismatch %d vs %d", len(idx), len(src.Data)))
	}
	for i, j := range idx {
		dst.Data[j] += src.Data[i]
	}
}

// L2Norm returns the Euclidean norm of all elements.
func L2Norm(a *Tensor) float64 {
	var s float64
	for _, v := range a.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two tensors with equal numel.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: Dot numel mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s
}
