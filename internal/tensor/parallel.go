package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the parallelism used by tensor kernels. It is atomic so
// SetMaxWorkers can race a running kernel without a data race: kernels load
// it once per call, so a concurrent change simply applies to the next call.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.NumCPU())) }

// SetMaxWorkers overrides the number of chunks tensor kernels split work
// into. n < 1 resets to runtime.NumCPU(). It returns the previous value.
//
// Results are bit-identical for any worker count because work is split into
// disjoint output ranges whose boundaries depend only on this value; this
// knob exists for benchmarking the parallel speedup, not for correctness.
// It is safe to call concurrently with running kernels: each kernel reads
// the value exactly once at its start.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = runtime.NumCPU()
	}
	return int(maxWorkers.Swap(int64(n)))
}

// ParallelRange runs fn over [0,n) split into contiguous disjoint chunks,
// one per worker. It is exported for packages (autodiff, data) that
// parallelise batch loops; disjoint ranges keep results deterministic.
func ParallelRange(n int, fn func(start, end int)) {
	parallelFor(n, 1, fn)
}

// Persistent worker pool.
//
// Spawning goroutines per kernel call showed up on profiles once the
// kernels themselves got fast: a training step issues hundreds of parallel
// regions, each previously paying goroutine start/stop plus scheduler
// churn. Instead a fixed set of workers (one per CPU) is started lazily on
// first use and lives for the process; parallelFor hands them chunks over
// an unbuffered channel.
//
// The channel is deliberately unbuffered and the send non-blocking: a send
// succeeds only when a worker is parked in receive, otherwise the caller
// runs that chunk inline. This keeps nested parallel regions (a batch loop
// whose body calls a parallel matmul) deadlock-free — in the worst case
// every chunk runs inline on the caller, which is plain sequential
// execution — and means the pool never queues stale work.
//
// Determinism: the pool only changes *where* chunks execute, never how the
// work is partitioned. Chunk boundaries depend solely on n, minPerWorker,
// and the maxWorkers value loaded at call entry, and every chunk writes a
// disjoint output range, so results remain bit-identical for any
// SetMaxWorkers value and any scheduling.
type poolTask struct {
	fn   func(start, end int)
	s, e int
	wg   *sync.WaitGroup
}

var (
	poolOnce sync.Once
	poolJobs chan poolTask
)

func startWorkers() {
	poolJobs = make(chan poolTask)
	for i := 0; i < runtime.NumCPU(); i++ {
		go func() {
			for t := range poolJobs {
				t.fn(t.s, t.e)
				t.wg.Done()
			}
		}()
	}
}

// chunksFor returns how many chunks parallelFor would split [0,n) into.
// Kernels use it as a serial fast-path test (== 1) so they can call their
// range function directly instead of constructing an escaping closure —
// that closure is the difference between 0 and 1 allocs/op on the
// steady-state hot path.
func chunksFor(n, minPerWorker int) int {
	workers := int(maxWorkers.Load())
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	if max := (n + minPerWorker - 1) / minPerWorker; workers > max {
		workers = max
	}
	return workers
}

// parallelFor runs fn over [0,n) split into contiguous chunks, one per
// worker. fn receives the half-open range [start, end). It runs inline when
// the problem is small enough that parallelism overhead would dominate.
func parallelFor(n, minPerWorker int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	workers := chunksFor(n, minPerWorker)
	if workers <= 1 {
		fn(0, n)
		return
	}
	poolOnce.Do(startWorkers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	start := 0
	for ; start+chunk < n; start += chunk {
		wg.Add(1)
		select {
		case poolJobs <- poolTask{fn: fn, s: start, e: start + chunk, wg: &wg}:
		default:
			// No worker free — run this chunk on the caller.
			fn(start, start+chunk)
			wg.Done()
		}
	}
	// The caller always takes the final chunk instead of parking in Wait.
	fn(start, n)
	wg.Wait()
}
