package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers caps the parallelism used by tensor kernels. It is a variable
// (not constant) so tests can pin it to 1 and verify determinism claims.
var maxWorkers = runtime.NumCPU()

// SetMaxWorkers overrides the number of goroutines tensor kernels may use.
// n < 1 resets to runtime.NumCPU(). It returns the previous value.
//
// Results are bit-identical for any worker count because work is split into
// disjoint output ranges; this knob exists for benchmarking the parallel
// speedup, not for correctness.
func SetMaxWorkers(n int) int {
	prev := maxWorkers
	if n < 1 {
		n = runtime.NumCPU()
	}
	maxWorkers = n
	return prev
}

// ParallelRange runs fn over [0,n) split into contiguous disjoint chunks,
// one per worker. It is exported for packages (autodiff, data) that
// parallelise batch loops; disjoint ranges keep results deterministic.
func ParallelRange(n int, fn func(start, end int)) {
	parallelFor(n, 1, fn)
}

// parallelFor runs fn over [0,n) split into contiguous chunks, one per
// worker. fn receives the half-open range [start, end). It runs inline when
// the problem is small enough that goroutine overhead would dominate.
func parallelFor(n, minPerWorker int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	if max := (n + minPerWorker - 1) / minPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}
