package tensor

import (
	"sync"
	"testing"
)

// TestParallelForCoversRange verifies every index is visited exactly once
// for worker counts that force uneven chunking.
func TestParallelForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		prev := SetMaxWorkers(workers)
		for _, n := range []int{1, 2, 5, 97, 1000} {
			var mu sync.Mutex
			seen := make([]int, n)
			parallelFor(n, 1, func(s, e int) {
				mu.Lock()
				for i := s; i < e; i++ {
					seen[i]++
				}
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
		SetMaxWorkers(prev)
	}
}

// TestParallelForNested pins the worker pool's no-deadlock guarantee: a
// parallel region whose body opens another parallel region (the batch-loop
// → matmul shape) must complete even when every pool worker is busy. The
// unbuffered try-send design degrades to inline execution, never blocks.
func TestParallelForNested(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)
	out := make([]int32, 64*64)
	parallelFor(64, 1, func(b0, b1 int) {
		for b := b0; b < b1; b++ {
			base := b * 64
			parallelFor(64, 1, func(s, e int) {
				for i := s; i < e; i++ {
					out[base+i] = int32(base + i)
				}
			})
		}
	})
	for i, v := range out {
		if v != int32(i) {
			t.Fatalf("nested parallelFor lost element %d (got %d)", i, v)
		}
	}
}

// TestSetMaxWorkersConcurrent exercises SetMaxWorkers racing running
// kernels; run under -race this pins the atomicity contract (the old plain
// int was a data race).
func TestSetMaxWorkersConcurrent(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			SetMaxWorkers(1 + i%8)
		}
	}()
	sink := make([]float32, 512)
	for i := 0; i < 200; i++ {
		parallelFor(len(sink), 1, func(s, e int) {
			for j := s; j < e; j++ {
				sink[j] += 1
			}
		})
	}
	<-done
	for i, v := range sink {
		if v != 200 {
			t.Fatalf("element %d accumulated %v, want 200", i, v)
		}
	}
}

// TestSetMaxWorkersReset verifies n < 1 resets to NumCPU and that the
// previous value round-trips.
func TestSetMaxWorkersReset(t *testing.T) {
	prev := SetMaxWorkers(3)
	if got := SetMaxWorkers(0); got != 3 {
		t.Fatalf("SetMaxWorkers returned %d, want 3", got)
	}
	if got := SetMaxWorkers(prev); got < 1 {
		t.Fatalf("reset left non-positive worker count %d", got)
	}
}
