package tensor

import (
	"fmt"
	"testing"
)

// refMatMul is a straightforward float64-accumulating reference.
func refMatMul(a, b *Tensor, aT, bT bool) *Tensor {
	var m, k, n int
	if aT {
		k, m = a.shape[0], a.shape[1]
	} else {
		m, k = a.shape[0], a.shape[1]
	}
	if bT {
		n = b.shape[0]
	} else {
		n = b.shape[1]
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				var av, bv float32
				if aT {
					av = a.Data[p*m+i]
				} else {
					av = a.Data[i*k+p]
				}
				if bT {
					bv = b.Data[j*k+p]
				} else {
					bv = b.Data[p*n+j]
				}
				s += float64(av) * float64(bv)
			}
			out.Data[i*n+j] = float32(s)
		}
	}
	return out
}

// TestMatMulKernels exercises the blocked kernels across shapes chosen to
// hit every code path: row pairing remainders, k%4 tails, n%4 tails, SIMD
// 8-lane tails, and degenerate sizes.
func TestMatMulKernels(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {1, 4, 1}, {2, 3, 5}, {3, 7, 2}, {4, 4, 4},
		{5, 9, 13}, {8, 16, 8}, {7, 5, 17}, {16, 11, 3}, {33, 13, 29},
	}
	rng := NewRNG(3)
	for _, s := range shapes {
		t.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(t *testing.T) {
			a := New(s.m, s.k)
			b := New(s.k, s.n)
			bt := New(s.n, s.k)
			at := New(s.k, s.m)
			rng.FillNormal(a, 0, 1)
			rng.FillNormal(b, 0, 1)
			rng.FillNormal(bt, 0, 1)
			rng.FillNormal(at, 0, 1)
			tol := float32(1e-4 * float64(s.k))
			if got, want := MatMul(a, b), refMatMul(a, b, false, false); !got.AllClose(want, tol) {
				t.Errorf("MatMul diff %v", got.MaxAbsDiff(want))
			}
			if got, want := MatMulBT(a, bt), refMatMul(a, bt, false, true); !got.AllClose(want, tol) {
				t.Errorf("MatMulBT diff %v", got.MaxAbsDiff(want))
			}
			if got, want := MatMulAT(at, b), refMatMul(at, b, true, false); !got.AllClose(want, tol) {
				t.Errorf("MatMulAT diff %v", got.MaxAbsDiff(want))
			}
		})
	}
}

// TestMatMulSIMDMatchesGeneric cross-checks the assembly kernels against
// the pure-Go kernels (tolerance only — FMA rounds differently).
func TestMatMulSIMDMatchesGeneric(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("SIMD not available on this machine")
	}
	rng := NewRNG(11)
	a := New(31, 45)
	b := New(45, 27)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	simd := MatMul(a, b)
	prev := setSIMD(false)
	generic := MatMul(a, b)
	setSIMD(prev)
	if !simd.AllClose(generic, 1e-3) {
		t.Fatalf("SIMD vs generic diff %v", simd.MaxAbsDiff(generic))
	}
}

// TestMatMulShapePanics verifies the shared validation helper fires for all
// three entry points.
func TestMatMulShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(4, 5)
	for name, fn := range map[string]func(){
		"MatMul":   func() { MatMul(a, b) },
		"MatMulBT": func() { MatMulBT(a, b) },
		"MatMulAT": func() { MatMulAT(a, b) },
		"Into":     func() { MatMulInto(New(9, 9), a, New(3, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on shape mismatch", name)
				}
			}()
			fn()
		}()
	}
}

// TestMatMulDeterministicAcrossWorkers is the kernel half of the repo's
// determinism contract: bit-identical outputs for every worker count, for
// all three matmul variants, at shapes that split unevenly across chunks.
func TestMatMulDeterministicAcrossWorkers(t *testing.T) {
	rng := NewRNG(17)
	for _, s := range []struct{ m, k, n int }{{64, 64, 64}, {33, 13, 29}, {7, 129, 65}} {
		a := New(s.m, s.k)
		b := New(s.k, s.n)
		bt := New(s.n, s.k)
		at := New(s.k, s.m)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		rng.FillNormal(bt, 0, 1)
		rng.FillNormal(at, 0, 1)

		prev := SetMaxWorkers(1)
		r1, r2, r3 := MatMul(a, b), MatMulBT(a, bt), MatMulAT(at, b)
		for _, w := range []int{2, 3, 8} {
			SetMaxWorkers(w)
			if got := MatMul(a, b); !got.Equal(r1) {
				t.Errorf("MatMul %v: workers=%d not bit-identical to workers=1", s, w)
			}
			if got := MatMulBT(a, bt); !got.Equal(r2) {
				t.Errorf("MatMulBT %v: workers=%d not bit-identical to workers=1", s, w)
			}
			if got := MatMulAT(at, b); !got.Equal(r3) {
				t.Errorf("MatMulAT %v: workers=%d not bit-identical to workers=1", s, w)
			}
		}
		SetMaxWorkers(prev)
	}
}
