package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		numel int
	}{
		{"scalar-ish", []int{1}, 1},
		{"vector", []int{7}, 7},
		{"matrix", []int{3, 4}, 12},
		{"image", []int{2, 3, 8, 8}, 384},
		{"empty-dim", []int{0, 5}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			x := New(tc.shape...)
			if got := x.Numel(); got != tc.numel {
				t.Fatalf("Numel() = %d, want %d", got, tc.numel)
			}
			if got := x.Dims(); got != len(tc.shape) {
				t.Fatalf("Dims() = %d, want %d", got, len(tc.shape))
			}
			for i, d := range tc.shape {
				if x.Dim(i) != d {
					t.Fatalf("Dim(%d) = %d, want %d", i, x.Dim(i), d)
				}
			}
		})
	}
}

func TestNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with negative dim did not panic")
		}
	}()
	New(2, -1)
}

func TestAtSetRoundtrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(42, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 42 {
		t.Fatalf("At = %v, want 42", got)
	}
	// Row-major layout: flat index of (1,2,3) is ((1*3)+2)*4+3 = 23.
	if x.Data[23] != 42 {
		t.Fatalf("row-major layout violated: Data[23] = %v", x.Data[23])
	}
}

func TestDimNegativeIndex(t *testing.T) {
	x := New(2, 3, 5)
	if x.Dim(-1) != 5 || x.Dim(-2) != 3 || x.Dim(-3) != 2 {
		t.Fatalf("negative Dim indexing broken: %d %d %d", x.Dim(-1), x.Dim(-2), x.Dim(-3))
	}
}

func TestReshapeView(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 99
	if x.Data[0] != 99 {
		t.Fatal("Reshape must share backing storage")
	}
	z := x.Reshape(-1)
	if z.Dims() != 1 || z.Dim(0) != 6 {
		t.Fatalf("Reshape(-1) shape = %v", z.Shape())
	}
	inferred := x.Reshape(3, -1)
	if inferred.Dim(1) != 2 {
		t.Fatalf("Reshape(3,-1) inferred %d, want 2", inferred.Dim(1))
	}
}

func TestReshapeBadNumelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape to wrong numel did not panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := x.Clone()
	y.Data[0] = -1
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
	if !x.SameShape(y) {
		t.Fatal("Clone changed shape")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data; got[3] != 44 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 9 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data; got[2] != 90 {
		t.Fatalf("Mul wrong: %v", got)
	}
	if got := Div(b, a).Data; got[1] != 10 {
		t.Fatalf("Div wrong: %v", got)
	}
	if got := Scale(a, 2).Data; got[3] != 8 {
		t.Fatalf("Scale wrong: %v", got)
	}
	c := a.Clone()
	AddScaledInto(c, -1, a)
	for _, v := range c.Data {
		if v != 0 {
			t.Fatalf("AddScaledInto(-1) should zero: %v", c.Data)
		}
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	Add(New(2, 2), New(4))
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3, -4}, 4)
	if got := Sum(a); got != -2 {
		t.Fatalf("Sum = %v, want -2", got)
	}
	if got := Mean(a); got != -0.5 {
		t.Fatalf("Mean = %v, want -0.5", got)
	}
	if got := Max(a); got != 3 {
		t.Fatalf("Max = %v, want 3", got)
	}
	if got := Min(a); got != -4 {
		t.Fatalf("Min = %v, want -4", got)
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgmaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows = %v, want [1 0]", got)
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("transpose shape %v", at.Shape())
	}
	if at.At(2, 1) != a.At(1, 2) {
		t.Fatal("transpose values wrong")
	}
}

func TestGatherScatterAdjoint(t *testing.T) {
	// ScatterAddFlat must be the exact adjoint of GatherFlat:
	// <gather(x), y> == <x, scatter(y)> for all x, y.
	rng := NewRNG(7)
	x := New(20)
	rng.FillNormal(x, 0, 1)
	idx := rng.SampleIndices(20, 8)
	y := New(8)
	rng.FillNormal(y, 0, 1)

	gx := GatherFlat(x, idx)
	sy := New(20)
	ScatterAddFlat(sy, idx, y)

	lhs := Dot(gx, y)
	rhs := Dot(x, sy)
	if math.Abs(lhs-rhs) > 1e-5 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := NewRNG(3)
	a := New(9, 7)
	b := New(7, 11)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	want := MatMul(a, b)

	bt := Transpose2D(b)
	got := MatMulBT(a, bt)
	if got.MaxAbsDiff(want) > 1e-4 {
		t.Fatalf("MatMulBT disagrees by %v", got.MaxAbsDiff(want))
	}
	at := Transpose2D(a)
	got2 := MatMulAT(at, b)
	if got2.MaxAbsDiff(want) > 1e-4 {
		t.Fatalf("MatMulAT disagrees by %v", got2.MaxAbsDiff(want))
	}
}

func TestMatMulDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := NewRNG(11)
	a := New(64, 33)
	b := New(33, 29)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)

	prev := SetMaxWorkers(1)
	seq := MatMul(a, b)
	SetMaxWorkers(8)
	par := MatMul(a, b)
	SetMaxWorkers(prev)

	if !seq.Equal(par) {
		t.Fatal("MatMul results differ between 1 and 8 workers; determinism requirement violated")
	}
}

func TestMatMulPropertyDistributivity(t *testing.T) {
	// (A+B)·C == A·C + B·C, within float tolerance.
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a, b, c := New(5, 4), New(5, 4), New(4, 6)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		rng.FillNormal(c, 0, 1)
		lhs := MatMul(Add(a, b), c)
		rhs := Add(MatMul(a, c), MatMul(b, c))
		return lhs.AllClose(rhs, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatRows(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	b := FromSlice([]float32{3, 4, 5, 6}, 2, 2)
	c := ConcatRows(a, b)
	if c.Dim(0) != 3 || c.Dim(1) != 2 {
		t.Fatalf("ConcatRows shape %v", c.Shape())
	}
	if c.At(2, 1) != 6 {
		t.Fatal("ConcatRows values wrong")
	}
}

func TestConvGeomValidate(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OutH != 8 || g.OutW != 8 {
		t.Fatalf("same-padding conv output %dx%d, want 8x8", g.OutH, g.OutW)
	}
	bad := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, StrideH: 1, StrideW: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized kernel should fail validation")
	}
	zeroStride := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2}
	if err := zeroStride.Validate(); err == nil {
		t.Fatal("zero stride should fail validation")
	}
}

func TestIm2ColKnown(t *testing.T) {
	// 1-channel 3x3 input, 2x2 kernel, stride 1, no padding → 2x2 output.
	x := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	g := &ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cols := New(4, 4)
	Im2Col(cols, x, g)
	// Row r of cols holds kernel-position r across all 4 output positions.
	want := [][]float32{
		{1, 2, 4, 5}, // top-left of each window
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for r, row := range want {
		for c, w := range row {
			if got := cols.At(r, c); got != w {
				t.Fatalf("cols[%d,%d] = %v, want %v", r, c, got, w)
			}
		}
	}
}

func TestCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property that
	// makes conv backward correct.
	rng := NewRNG(5)
	g := &ConvGeom{InC: 2, InH: 6, InW: 5, KH: 3, KW: 3, StrideH: 2, StrideW: 1, PadH: 1, PadW: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	x := New(g.InC * g.InH * g.InW)
	rng.FillNormal(x, 0, 1)
	rows := g.InC * g.KH * g.KW
	ncols := g.OutH * g.OutW

	cols := New(rows, ncols)
	Im2Col(cols, x.Data, g)
	y := New(rows, ncols)
	rng.FillNormal(y, 0, 1)

	dx := New(g.InC * g.InH * g.InW)
	Col2Im(dx.Data, y, g)

	lhs := Dot(cols, y)
	rhs := Dot(x, dx)
	if math.Abs(lhs-rhs) > 1e-3 {
		t.Fatalf("Im2Col/Col2Im adjoint violated: %v vs %v", lhs, rhs)
	}
}

func TestMaxPoolForward(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	g := &ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	out, argmax := MaxPoolForward(x, g)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("maxpool[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
	if argmax[0] != 5 || argmax[3] != 15 {
		t.Fatalf("argmax wrong: %v", argmax)
	}
}

func TestAvgPoolForward(t *testing.T) {
	x := FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	g := &ConvGeom{InC: 1, InH: 2, InW: 2, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	out := AvgPoolForward(x, g)
	if out.Data[0] != 2.5 {
		t.Fatalf("avgpool = %v, want 2.5", out.Data[0])
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a2 := NewRNG(42)
	for i := 0; i < 64; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	// Two children with different labels from identical parents must differ;
	// identical labels from identical parents must match.
	p1, p2 := NewRNG(9), NewRNG(9)
	c1 := p1.Split(1)
	c2 := p2.Split(1)
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("Split with same label should be reproducible")
	}
	p3, p4 := NewRNG(9), NewRNG(9)
	d1, d2 := p3.Split(1), p4.Split(2)
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("Split with different labels should diverge")
	}
}

func TestLaplaceStats(t *testing.T) {
	rng := NewRNG(1)
	var sum, absSum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := rng.Laplace(0, 1)
		sum += v
		absSum += math.Abs(v)
	}
	if m := sum / n; math.Abs(m) > 0.05 {
		t.Fatalf("Laplace mean %v, want ~0", m)
	}
	// E|X| = b = 1 for Laplace(0,1).
	if m := absSum / n; math.Abs(m-1) > 0.05 {
		t.Fatalf("Laplace E|X| = %v, want ~1", m)
	}
}

func TestSampleIndicesDistinct(t *testing.T) {
	rng := NewRNG(2)
	idx := rng.SampleIndices(50, 20)
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 50 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestInitializers(t *testing.T) {
	rng := NewRNG(4)
	w := New(64, 64)
	KaimingUniform(rng, w, 64)
	bound := float32(1.0 / 8.0)
	for _, v := range w.Data {
		if v < -bound || v > bound {
			t.Fatalf("KaimingUniform out of bounds: %v (bound %v)", v, bound)
		}
	}
	x := New(1000)
	NormalInit(rng, x, 0.02)
	if s := math.Abs(Mean(x)); s > 0.01 {
		t.Fatalf("NormalInit mean %v too large", s)
	}
	xv := New(32, 32)
	XavierUniform(rng, xv, 32, 32)
	xb := float32(math.Sqrt(6.0 / 64.0))
	for _, v := range xv.Data {
		if v < -xb || v > xb {
			t.Fatalf("XavierUniform out of bounds: %v", v)
		}
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1, 2.0005, 3}, 3)
	if !a.AllClose(b, 1e-3) {
		t.Fatal("AllClose should accept within tolerance")
	}
	if a.AllClose(b, 1e-5) {
		t.Fatal("AllClose should reject outside tolerance")
	}
	if d := a.MaxAbsDiff(b); d < 4e-4 || d > 6e-4 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}

func TestStringPreview(t *testing.T) {
	x := New(100)
	s := x.String()
	if s == "" {
		t.Fatal("String() empty")
	}
}
