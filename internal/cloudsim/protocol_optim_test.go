package cloudsim

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"amalgam/internal/optim"
	"amalgam/internal/serialize"
)

// adamJob is textJob trained under Adam + halving StepLR instead of the
// flat SGD hyper-parameters.
func adamJob(t *testing.T) *TrainRequest {
	t.Helper()
	req := textJob(t)
	req.Hyper.Epochs = 3
	req.Hyper.Optimizer = &optim.OptimSpec{Kind: optim.KindAdam, LR: 0.05}
	req.Hyper.Schedule = &optim.ScheduleSpec{Kind: optim.SchedStep, StepSize: 1, Gamma: 0.5}
	req.Hyper.OptimSpec = true
	return req
}

// TestTrainLoopAdamStepLRResumeBitIdentical pins the tentpole invariant at
// the loop level: an Adam + StepLR run interrupted at an epoch boundary
// and resumed from the returned state (weights, moment buffers, step
// counter — the LR is re-derived from the schedule, never restored)
// finishes bit-identical to an uninterrupted run. It also pins the
// schedule cadence: the streamed LR halves exactly once per epoch, so a
// double-fired (or skipped) EpochEnd shows up as a golden mismatch.
func TestTrainLoopAdamStepLRResumeBitIdentical(t *testing.T) {
	straight := adamJob(t)
	straight.Hyper.Stream = false
	straight.Hyper.CheckpointEvery = 0
	full, err := RunLocal(straight)
	if err != nil {
		t.Fatal(err)
	}
	wantLR := []float64{0.05, 0.025, 0.0125}
	if len(full.Metrics) != len(wantLR) {
		t.Fatalf("%d metrics, want %d", len(full.Metrics), len(wantLR))
	}
	for i, m := range full.Metrics {
		if m.LR != wantLR[i] {
			t.Fatalf("epoch %d trained at LR %v, want %v (EpochEnd cadence broken?)", m.Epoch, m.LR, wantLR[i])
		}
	}
	if full.OptState.Kind != optim.KindAdam || full.OptState.Step == 0 {
		t.Fatalf("final optimiser state: kind=%q step=%d", full.OptState.Kind, full.OptState.Step)
	}

	first := adamJob(t)
	first.Hyper.Stream = false
	first.Hyper.CheckpointEvery = 0
	first.Hyper.Epochs = 1
	part, err := RunLocal(first)
	if err != nil {
		t.Fatal(err)
	}
	second := adamJob(t)
	second.Hyper.Stream = false
	second.Hyper.CheckpointEvery = 0
	second.Hyper.StartEpoch = 1
	second.InitState = part.State
	second.InitOptState = part.OptState
	rest, err := RunLocal(second)
	if err != nil {
		t.Fatal(err)
	}
	for name, tns := range full.State {
		if !rest.State[name].Equal(tns) {
			t.Fatalf("resumed Adam run diverged from straight run at %q", name)
		}
	}
	if rest.OptState.Step != full.OptState.Step {
		t.Fatalf("step counter diverged: resumed %d, straight %d", rest.OptState.Step, full.OptState.Step)
	}
	for name, tns := range full.OptState.Buffers {
		if !rest.OptState.Buffers[name].Equal(tns) {
			t.Fatalf("moment buffer %q diverged between resumed and straight runs", name)
		}
	}
}

// TestAdamJobOverWireMatchesLocal pins remote/local equality for a
// spec-driven job: the service rebuilds Adam + StepLR from the wire spec
// and produces the same weights, streams AMC3 checkpoints carrying the
// generalized optimiser section, and returns the final Adam state over
// the msgOptState frame.
func TestAdamJobOverWireMatchesLocal(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(l)
	defer func() {
		l.Close()
		server.Wait()
	}()

	req := adamJob(t)
	var lrs []float64
	checkpoints := 0
	resp, err := TrainContext(context.Background(), l.Addr().String(), req, StreamHandlers{
		Progress: func(m EpochMetric) { lrs = append(lrs, m.LR) },
		Checkpoint: func(ck *serialize.TrainCheckpoint) {
			checkpoints++
			if ck.OptState.Kind != optim.KindAdam {
				t.Errorf("checkpoint frame carries optimiser kind %q, want adam", ck.OptState.Kind)
			}
			if ck.OptState.Step == 0 || ck.OptState.NumBuffers() == 0 {
				t.Errorf("checkpoint frame lost the Adam section: step=%d buffers=%d",
					ck.OptState.Step, ck.OptState.NumBuffers())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if checkpoints != req.Hyper.Epochs {
		t.Fatalf("streamed %d checkpoint frames, want %d", checkpoints, req.Hyper.Epochs)
	}
	for i, lr := range lrs {
		if want := 0.05 / float64(int(1)<<i); lr != want {
			t.Fatalf("wire epoch %d reports LR %v, want %v", i+1, lr, want)
		}
	}
	if resp.OptState.Kind != optim.KindAdam || resp.OptState.Step == 0 {
		t.Fatalf("wire run returned optimiser state kind=%q step=%d", resp.OptState.Kind, resp.OptState.Step)
	}
	local, err := RunLocal(adamJob(t))
	if err != nil {
		t.Fatal(err)
	}
	for name, tns := range local.State {
		if !resp.State[name].Equal(tns) {
			t.Fatalf("wire and local Adam training diverged at %q", name)
		}
	}
}

// TestOptimSpecWithoutCapabilityRejected pins admission: a request naming
// an optimiser spec without declaring the Hyper.OptimSpec capability is
// refused as a coded ErrBadRequest before any training runs — such a
// client could not decode the state frames its own job would produce.
func TestOptimSpecWithoutCapabilityRejected(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(l)
	defer func() {
		l.Close()
		server.Wait()
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	req := adamJob(t)
	req.Hyper.OptimSpec = false // spec present, capability withheld
	specPayload, err := encodeSpecFrame(req.Spec)
	if err != nil {
		t.Fatal(err)
	}
	hyperJSON, err := json.Marshal(req.Hyper)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct {
		kind    byte
		payload []byte
	}{
		{msgSpec, specPayload}, {msgHyper, hyperJSON}, {msgDone, nil},
	} {
		if err := writeFrame(conn, f.kind, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	kind, payload, err := readFrame(conn)
	if err != nil || kind != msgError {
		t.Fatalf("want error frame, got kind=%d err=%v", kind, err)
	}
	if len(payload) == 0 || sentinelFor(payload[0]) != ErrBadRequest {
		t.Fatalf("error frame not coded as bad request: %q", payload)
	}
}

// TestUnknownOptimizerKindOverWire pins the taxonomy end to end: a job
// naming an optimiser kind the server's registry lacks comes back as
// ErrUnknownOptimizer via the coded error frame — fatal, so retry loops
// stop instead of resubmitting a spec that can never run.
func TestUnknownOptimizerKindOverWire(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(l)
	defer func() {
		l.Close()
		server.Wait()
	}()

	req := adamJob(t)
	req.Hyper.Optimizer = &optim.OptimSpec{Kind: "lion", LR: 0.01}
	_, err = TrainContext(context.Background(), l.Addr().String(), req, StreamHandlers{})
	if !errors.Is(err, ErrUnknownOptimizer) {
		t.Fatalf("want ErrUnknownOptimizer over the wire, got %v", err)
	}
	if IsTransient(err) {
		t.Fatal("unknown optimiser kind classified transient; retries would spin forever")
	}
}
