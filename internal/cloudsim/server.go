package cloudsim

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"amalgam/internal/optim"
	"amalgam/internal/serialize"
	"amalgam/internal/serve"
)

// ServerConfig tunes the hardened server.
type ServerConfig struct {
	// MaxConns bounds concurrently served connections. Further clients
	// queue in the kernel accept backlog (backpressure) instead of being
	// accepted and starved. 0 means the default (256).
	MaxConns int
	// FrameTimeout bounds each request-phase frame read and each response
	// write. It does NOT apply to the server's training-phase cancel
	// watcher, where a silent client is normal. 0 means the default
	// (2 minutes); negative disables deadlines entirely.
	FrameTimeout time.Duration
	// Executors is the training-executor pool size: how many jobs train
	// concurrently, each on a fair slice of the tensor worker pool. 0
	// means the default (4). See SchedulerConfig.
	Executors int
	// QueueDepth bounds admitted-but-not-dispatched jobs across all
	// tenants; submissions beyond it get ErrQueueFull. 0 means the
	// default (256).
	QueueDepth int
	// TenantQuota bounds one tenant's queued jobs; submissions beyond it
	// get ErrTenantQuota. 0 means no per-tenant bound beyond QueueDepth.
	TenantQuota int
	// Infer is the prediction backend for the inference-serving extension:
	// msgInfer frames are answered against models registered on it. Nil
	// (the default) refuses infer frames with ErrBadRequest — a pure
	// training server.
	Infer *serve.Server
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.FrameTimeout == 0 {
		c.FrameTimeout = 2 * time.Minute
	}
	if c.FrameTimeout < 0 {
		c.FrameTimeout = 0
	}
	return c
}

// Server is the simulated cloud training service: an accept loop feeding
// connection handlers, in front of a multi-tenant Scheduler that owns the
// job registry and the executor pool. Legacy v1/v2 clients are served as
// an implicit submit+attach on one connection; async clients submit, get
// a job ID, and poll/attach over later connections.
type Server struct {
	listener net.Listener
	cfg      ServerConfig
	sched    *Scheduler
	wg       sync.WaitGroup
	sem      chan struct{}

	shutdownOnce sync.Once
	shuttingDown chan struct{}
	finishOnce   sync.Once

	mu        sync.Mutex
	acceptErr error
}

// NewServer starts serving on l with default hardening (see ServerConfig).
// Close the listener (or call Shutdown) to stop; Wait returns when all
// in-flight jobs finish.
func NewServer(l net.Listener) *Server {
	return NewServerConfig(l, ServerConfig{})
}

// NewServerConfig starts serving on l with explicit limits.
func NewServerConfig(l net.Listener, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		listener: l,
		cfg:      cfg,
		sched: newScheduler(SchedulerConfig{
			Executors:   cfg.Executors,
			QueueDepth:  cfg.QueueDepth,
			TenantQuota: cfg.TenantQuota,
		}),
		sem:          make(chan struct{}, cfg.MaxConns),
		shuttingDown: make(chan struct{}),
	}
	s.sched.start()
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := time.Millisecond
	for {
		// Backpressure: take a concurrency slot BEFORE accepting, so at
		// MaxConns in-flight jobs new clients wait in the kernel backlog
		// rather than holding an accepted-but-starved connection.
		select {
		case s.sem <- struct{}{}:
		case <-s.shuttingDown:
			return
		}
		conn, err := s.listener.Accept()
		if err != nil {
			<-s.sem
			if errors.Is(err, net.ErrClosed) {
				return // clean stop: Shutdown or the owner closed the listener
			}
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() {
				// Transient accept fault (e.g. fd pressure): back off and
				// keep serving instead of silently dying.
				select {
				case <-time.After(backoff):
				case <-s.shuttingDown:
					return
				}
				if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				continue
			}
			// Terminal listener failure: surface it via Wait.
			s.mu.Lock()
			s.acceptErr = err
			s.mu.Unlock()
			return
		}
		backoff = time.Millisecond
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() { <-s.sem }()
	defer conn.Close()
	dc := newDeadlineConn(conn, s.cfg.FrameTimeout, s.cfg.FrameTimeout)
	ver, err := s.handleRecover(dc)
	if err != nil && !errors.Is(err, io.EOF) {
		// Best effort: report the failure to the client. v2 peers get a
		// leading error-code byte so sentinels survive the wire; v1 peers
		// get the bare message they always did.
		payload := []byte(err.Error())
		if ver >= 2 {
			payload = append([]byte{errCodeOf(err)}, payload...)
		}
		_ = writeFrame(dc, msgError, payload)
	}
}

// handleRecover isolates a panicking connection: the crash becomes a wire
// error frame (fatal — the same deterministic job would crash again)
// instead of a torn connection taking the whole server down.
func (s *Server) handleRecover(conn *deadlineConn) (ver byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cloudsim: recovered: %v: %w", r, ErrJobPanic)
		}
	}()
	return s.handle(conn)
}

// Wait blocks until the accept loop and all handlers exit, then drains
// the executor pool, returning the terminal accept error, if any (nil
// after a clean close or Shutdown). With the listener closed no new
// submissions can arrive, so the backlog the executors drain is final.
func (s *Server) Wait() error {
	s.wg.Wait()
	s.finishOnce.Do(s.sched.Finish)
	s.sched.WaitIdle()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acceptErr
}

// Shutdown gracefully stops the server: no new connections are accepted,
// and every job — running, queued, or parked — is signalled to stop at
// its next epoch boundary. Clients that negotiated failover receive an
// epoch-aligned checkpoint plus a retryable "server shutting down" error
// so they can resume elsewhere; other clients receive the normal
// cancelled result with their epoch-aligned weights. Shutdown returns
// once all handlers and executors drain or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		close(s.shuttingDown)
		_ = s.listener.Close()
		s.sched.CancelAll()
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.finishOnce.Do(s.sched.Finish)
		s.sched.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) isShuttingDown() bool {
	select {
	case <-s.shuttingDown:
		return true
	default:
		return false
	}
}

// Views returns the provider-side observations captured so far, in
// submission order — including queued jobs (present-but-pending, State
// "queued": the provider has observed the upload even before training
// starts).
func (s *Server) Views() []ProviderView {
	return s.sched.Views()
}

// handle reads one job off the connection and runs it. It returns the
// negotiated protocol version (0 until a spec frame arrives) so the accept
// loop can format error frames the peer understands.
func (s *Server) handle(conn *deadlineConn) (byte, error) {
	req := &TrainRequest{}
	var ver byte
	var tokensFlat, evalTokensFlat []int
	haveTokens, haveEvalTokens := false, false
	// finishTokens reshapes the flat token frames once the request is
	// complete — shared by the blocking (msgDone) and async (msgSubmit)
	// terminators.
	finishTokens := func() error {
		var err error
		if haveTokens {
			if req.Samples, err = reshapeSamples(tokensFlat, req.Spec.AugLen); err != nil {
				return err
			}
		}
		if haveEvalTokens {
			if req.EvalSamples, err = reshapeSamples(evalTokensFlat, req.Spec.AugLen); err != nil {
				return err
			}
		}
		return nil
	}
	for {
		kind, payload, err := readFrame(conn)
		if err != nil {
			return ver, err
		}
		switch kind {
		case msgSpec:
			spec, v, err := decodeSpecFrame(payload)
			if err != nil {
				if errors.Is(err, ErrProtocolVersion) {
					// The peer sent a version byte, so it is version-aware
					// (>= v2): answer with a coded error frame so its
					// errors.Is(ErrProtocolVersion) check works.
					ver = protocolVersion
				}
				return ver, fmt.Errorf("cloudsim: bad spec: %w", err)
			}
			req.Spec, ver = spec, v
		case msgHyper:
			if err := json.Unmarshal(payload, &req.Hyper); err != nil {
				return ver, fmt.Errorf("cloudsim: bad hyper: %w", err)
			}
		case msgLabels:
			labels, err := serialize.ReadIntSlice(bytes.NewReader(payload))
			if err != nil {
				return ver, fmt.Errorf("cloudsim: bad labels: %w", err)
			}
			req.Labels = labels
		case msgImages:
			t, err := serialize.ReadTensor(bytes.NewReader(payload))
			if err != nil {
				return ver, fmt.Errorf("cloudsim: bad images: %w", err)
			}
			req.Images = t
		case msgTokens:
			flat, err := serialize.ReadIntSlice(bytes.NewReader(payload))
			if err != nil {
				return ver, fmt.Errorf("cloudsim: bad tokens: %w", err)
			}
			tokensFlat, haveTokens = flat, true
		case msgEvalImages:
			t, err := serialize.ReadTensor(bytes.NewReader(payload))
			if err != nil {
				return ver, fmt.Errorf("cloudsim: bad eval images: %w", err)
			}
			req.EvalImages = t
		case msgEvalLabels:
			labels, err := serialize.ReadIntSlice(bytes.NewReader(payload))
			if err != nil {
				return ver, fmt.Errorf("cloudsim: bad eval labels: %w", err)
			}
			req.EvalLabels = labels
		case msgEvalTokens:
			flat, err := serialize.ReadIntSlice(bytes.NewReader(payload))
			if err != nil {
				return ver, fmt.Errorf("cloudsim: bad eval tokens: %w", err)
			}
			evalTokensFlat, haveEvalTokens = flat, true
		case msgInit:
			dict, err := serialize.ReadStateDict(bytes.NewReader(payload))
			if err != nil {
				return ver, fmt.Errorf("cloudsim: bad init state: %w", err)
			}
			req.InitState = dict
		case msgOptState:
			// ReadOptState sniffs the payload: a legacy bare dict surfaces
			// as SGD momentum state, an AMO1 stream decodes in full.
			st, err := serialize.ReadOptState(bytes.NewReader(payload))
			if err != nil {
				return ver, fmt.Errorf("cloudsim: bad optimiser state: %w", err)
			}
			req.InitOptState = st
		case msgRNGState:
			dict, err := serialize.ReadBytesDict(bytes.NewReader(payload))
			if err != nil {
				return ver, fmt.Errorf("cloudsim: bad RNG state: %w", err)
			}
			req.InitRNG = dict
		case msgCancel:
			if len(payload) > 0 {
				// Cancel-by-ID control frame (async extension): the
				// payload names a scheduled job on a fresh connection.
				ver = protocolVersion
				if err := s.cancelByID(conn, payload); err != nil {
					return ver, err
				}
				continue
			}
			// Cancelled before the job even started: nothing to train.
			// The generic wire code is deliberate: the client asked for
			// this cancellation and will not retry it, so no sentinel
			// class applies.
			return ver, fmt.Errorf("cloudsim: job cancelled before submission") //amalgam:allow errtaxcheck client-initiated cancel; intentionally generic, never retried
		case msgPoll:
			// Status query — valid any time, repeatable on one connection.
			ver = protocolVersion
			if err := s.poll(conn, payload); err != nil {
				return ver, err
			}
			continue
		case msgInfer:
			// Prediction request — repeatable, so one connection amortises
			// its dial across many predictions. Mirrors the async admission
			// check: the capability must be declared before use.
			ver = protocolVersion
			if !req.Hyper.Infer {
				return ver, fmt.Errorf("cloudsim: infer frame without the Hyper.Infer capability: %w", ErrBadRequest)
			}
			if err := s.infer(conn, payload); err != nil {
				return ver, err
			}
			continue
		case msgAttach:
			ver = protocolVersion
			var areq AttachRequest
			if err := json.Unmarshal(payload, &areq); err != nil {
				return ver, fmt.Errorf("cloudsim: bad attach request: %w", err)
			}
			return ver, s.attach(conn, areq)
		case msgSubmit:
			if ver < 2 {
				return ver, fmt.Errorf("cloudsim: async submit requires protocol v2: %w", ErrProtocolVersion)
			}
			if !req.Hyper.Async {
				return ver, fmt.Errorf("cloudsim: async submit without the Hyper.Async capability: %w", ErrBadRequest)
			}
			if err := validateOptimSpecs(&req.Hyper); err != nil {
				return ver, err
			}
			if err := finishTokens(); err != nil {
				return ver, err
			}
			return ver, s.submitAsync(conn, req)
		case msgDone:
			if err := validateOptimSpecs(&req.Hyper); err != nil {
				return ver, err
			}
			if err := finishTokens(); err != nil {
				return ver, err
			}
			return ver, s.runAndRespond(conn, req, ver)
		default:
			return ver, fmt.Errorf("cloudsim: unexpected message type %d: %w", kind, ErrUnknownFrame)
		}
	}
}

// validateOptimSpecs is the admission check for the pluggable-optimiser
// extension: a request naming optimiser or schedule specs must also
// declare the Hyper.OptimSpec capability (otherwise the client could not
// decode the generalized state frames its own job produces), and the
// specs themselves must validate — so a bad spec is refused at admission,
// before any training time is spent on it.
func validateOptimSpecs(h *Hyper) error {
	if h.Optimizer == nil && h.Schedule == nil {
		return nil
	}
	if !h.OptimSpec {
		return fmt.Errorf("cloudsim: optimiser/schedule spec without the Hyper.OptimSpec capability: %w", ErrBadRequest)
	}
	if h.Optimizer != nil {
		if err := h.Optimizer.Validate(); err != nil {
			if errors.Is(err, optim.ErrUnknownKind) {
				return fmt.Errorf("cloudsim: optimiser kind %q: %w", h.Optimizer.Kind, ErrUnknownOptimizer)
			}
			return fmt.Errorf("cloudsim: optimiser spec: %v: %w", err, ErrBadRequest)
		}
	}
	if h.Schedule != nil {
		if err := h.Schedule.Validate(); err != nil {
			if errors.Is(err, optim.ErrUnknownKind) {
				return fmt.Errorf("cloudsim: schedule kind %q: %w", h.Schedule.Kind, ErrUnknownOptimizer)
			}
			return fmt.Errorf("cloudsim: schedule spec: %v: %w", err, ErrBadRequest)
		}
	}
	return nil
}

// progressWriter streams EpochMetric frames to one connection.
func progressWriter(conn *deadlineConn) func(EpochMetric) error {
	return func(m EpochMetric) error {
		js, err := json.Marshal(m)
		if err != nil {
			return err
		}
		return writeFrame(conn, msgProgress, js)
	}
}

// checkpointWriter streams epoch-boundary snapshots to one connection.
// Clients that negotiated the optimiser-state extension get full AMC2
// training checkpoints — the same bytes WithCheckpoint writes to disk —
// recording the job kind, the momentum buffers, and the dropout-stream
// cursors alongside the weights. Pre-extension v2 clients keep the legacy
// layout they parse (uint32 epoch + state dict). A peer that negotiated
// checkpoints but not the OptimSpec capability cannot decode the AMC3
// layout a generalized optimiser state forces, so its checkpoints ship
// the weights without that state.
func checkpointWriter(conn *deadlineConn, amc2, optimSpec bool, kind string) func(*Snapshot) error {
	if amc2 {
		return func(snap *Snapshot) error {
			var buf bytes.Buffer
			opt := snap.OptState
			if !optimSpec && !opt.LegacySGD() {
				opt = nil
			}
			ck := &serialize.TrainCheckpoint{
				Epoch: snap.Epoch, Kind: kind,
				State: snap.State, OptState: opt, RNG: snap.RNG,
			}
			if err := serialize.WriteTrainCheckpoint(&buf, ck); err != nil {
				return err
			}
			return writeFrame(conn, msgCheckpoint, buf.Bytes())
		}
	}
	return func(snap *Snapshot) error {
		var buf bytes.Buffer
		if err := binary.Write(&buf, binary.LittleEndian, uint32(snap.Epoch)); err != nil {
			return err
		}
		if err := serialize.WriteStateDict(&buf, snap.State); err != nil {
			return err
		}
		return writeFrame(conn, msgCheckpoint, buf.Bytes())
	}
}

// outcomeCaps carries the negotiated capabilities a terminal result is
// formatted under — from the request's Hyper on the blocking path, from
// the AttachRequest on the async path.
type outcomeCaps struct {
	optState      bool
	failover      bool
	optimSpec     bool
	kind          string
	clientStopped bool // the cancel came from this client, not a shutdown
}

// writeOutcome sends a finished job's terminal frames: the failover
// handoff (epoch-aligned AMC2 checkpoint + retryable shutdown error)
// when the server is draining under a failover-aware client, or the
// normal result/opt-state/RNG/state sequence.
func (s *Server) writeOutcome(conn *deadlineConn, ver byte, caps outcomeCaps, resp *TrainResponse) error {
	if resp.Cancelled && !caps.clientStopped && s.isShuttingDown() && ver >= 2 && caps.failover {
		// Graceful-shutdown handoff for failover-aware clients: an
		// epoch-aligned checkpoint (weights + momentum + RNG cursors)
		// followed by the retryable shutdown error, so the client resumes
		// on another server without losing an epoch. Legacy clients fall
		// through to the normal cancelled result below.
		var buf bytes.Buffer
		opt := resp.OptState
		if !caps.optimSpec && !opt.LegacySGD() {
			opt = nil
		}
		ck := &serialize.TrainCheckpoint{
			Epoch: resp.CompletedEpochs, Kind: caps.kind,
			State: resp.State, OptState: opt, RNG: resp.RNG,
		}
		if err := serialize.WriteTrainCheckpoint(&buf, ck); err != nil {
			return err
		}
		if err := writeFrame(conn, msgCheckpoint, buf.Bytes()); err != nil {
			return err
		}
		return fmt.Errorf("cloudsim: job stopped at epoch %d: %w", resp.CompletedEpochs, ErrServerShutdown)
	}
	metaJSON, err := json.Marshal(resultMeta{
		Metrics: resp.Metrics, Seconds: resp.Seconds,
		Cancelled: resp.Cancelled, CompletedEpochs: resp.CompletedEpochs,
	})
	if err != nil {
		return err
	}
	if err := writeFrame(conn, msgResult, metaJSON); err != nil {
		return err
	}
	// Final optimiser state rides its own frame, BEFORE msgState so the
	// client's read loop (which terminates on msgState) still collects
	// it. Only clients that declared the extension (Hyper.OptState)
	// receive it — older peers would abort on the unknown frame type —
	// and a generalized (non-SGD) state additionally needs the OptimSpec
	// capability, since its AMO1 payload would look like a corrupt dict
	// to an OptState-only peer.
	if ver >= 2 && caps.optState && !resp.OptState.Empty() &&
		(caps.optimSpec || resp.OptState.LegacySGD()) {
		var optBuf bytes.Buffer
		if err := serialize.WriteOptState(&optBuf, resp.OptState); err != nil {
			return err
		}
		if err := writeFrame(conn, msgOptState, optBuf.Bytes()); err != nil {
			return err
		}
	}
	// Dropout-stream cursors likewise, gated by the failover capability.
	if ver >= 2 && caps.failover && len(resp.RNG) > 0 {
		var rngBuf bytes.Buffer
		if err := serialize.WriteBytesDict(&rngBuf, resp.RNG); err != nil {
			return err
		}
		if err := writeFrame(conn, msgRNGState, rngBuf.Bytes()); err != nil {
			return err
		}
	}
	var buf bytes.Buffer
	if err := serialize.WriteStateDict(&buf, resp.State); err != nil {
		return err
	}
	return writeFrame(conn, msgState, buf.Bytes())
}

// runAndRespond serves a legacy blocking client: an implicit submit (with
// this connection registered as the job's sink from birth, so every epoch
// streams live) followed by an implicit attach that waits for the
// terminal result on the same connection.
func (s *Server) runAndRespond(conn *deadlineConn, req *TrainRequest, ver byte) (err error) {
	// A provider-view capture that panics on malformed geometry must
	// become a classified wire error, not a torn connection.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cloudsim: job crashed: %v: %w", r, ErrJobPanic)
		}
	}()

	// The connection is the job's sink from admission, so the pinned
	// frame cadence (one progress + one checkpoint frame per epoch) holds
	// exactly — there is no replay window to coalesce checkpoints in.
	sink := &attachSink{}
	if ver >= 2 && req.Hyper.Stream {
		sink.progress = progressWriter(conn)
	}
	if ver >= 2 && req.Hyper.CheckpointEvery > 0 {
		sink.checkpoint = checkpointWriter(conn, req.Hyper.OptState, req.Hyper.OptimSpec, req.Spec.Kind)
	}
	job, err := s.sched.Submit(req, sink)
	if err != nil {
		return err
	}

	// The training phase has no frame cadence the server can bound: a
	// silent client is normal. Request-phase deadlines come back off.
	conn.setReadTimeout(0)

	var clientStopped atomic.Bool
	if ver >= 2 {
		// Watch the connection for a mid-job msgCancel (or disconnect — a
		// vanished blocking client also stops the job instead of burning
		// cloud time on a result nobody will read; disconnect survival is
		// the async path's contract, where the client asked for a job ID).
		go func() {
			for {
				kind, _, err := readFrame(conn)
				if err != nil || kind == msgCancel {
					clientStopped.Store(true)
					_ = s.sched.Cancel(job.id)
					return
				}
			}
		}()
	}

	<-job.done
	resp, jerr := job.result()
	if jerr != nil {
		return jerr
	}
	return s.writeOutcome(conn, ver, outcomeCaps{
		optState: req.Hyper.OptState, failover: req.Hyper.Failover,
		optimSpec: req.Hyper.OptimSpec,
		kind:      req.Spec.Kind, clientStopped: clientStopped.Load(),
	}, resp)
}

// submitAsync admits the job and answers with its ID; the connection is
// then done. The job runs with no sink parked until someone attaches.
func (s *Server) submitAsync(conn *deadlineConn, req *TrainRequest) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cloudsim: job crashed: %v: %w", r, ErrJobPanic)
		}
	}()
	job, err := s.sched.Submit(req, nil)
	if err != nil {
		return err
	}
	js, err := json.Marshal(submitAck{JobID: job.id})
	if err != nil {
		return err
	}
	return writeFrame(conn, msgSubmitAck, js)
}

// poll answers one msgPoll with the job's status.
func (s *Server) poll(conn *deadlineConn, payload []byte) error {
	var ref jobRef
	if err := json.Unmarshal(payload, &ref); err != nil {
		return fmt.Errorf("cloudsim: bad poll request: %w", err)
	}
	st, err := s.sched.Status(ref.JobID)
	if err != nil {
		return err
	}
	js, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return writeFrame(conn, msgJobStatus, js)
}

// cancelByID cancels a scheduled job named by a control msgCancel and
// answers with its post-cancel status.
func (s *Server) cancelByID(conn *deadlineConn, payload []byte) error {
	var ref jobRef
	if err := json.Unmarshal(payload, &ref); err != nil {
		return fmt.Errorf("cloudsim: bad cancel request: %w", err)
	}
	if err := s.sched.Cancel(ref.JobID); err != nil {
		return err
	}
	st, err := s.sched.Status(ref.JobID)
	if err != nil {
		return err
	}
	js, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return writeFrame(conn, msgJobStatus, js)
}

// attach streams a scheduled job's output to this connection: buffered
// epochs past FromEpoch replay first (exactly once — the replay and the
// live-sink registration are one atomic step), then live frames, then the
// terminal result. The client disconnecting DETACHES the stream without
// cancelling the job — disconnect survival is the point of the async
// path; an explicit msgCancel on this connection cancels the job.
func (s *Server) attach(conn *deadlineConn, areq AttachRequest) error {
	job, err := s.sched.Job(areq.JobID)
	if err != nil {
		return err
	}

	// Like the blocking path's training phase: a silent client is normal
	// while the job trains.
	conn.setReadTimeout(0)

	connDead := make(chan struct{})
	var clientStopped atomic.Bool
	go func() {
		for {
			kind, _, err := readFrame(conn)
			if err != nil {
				close(connDead)
				return
			}
			if kind == msgCancel {
				clientStopped.Store(true)
				_ = s.sched.Cancel(job.id)
			}
		}
	}()

	sink := &attachSink{progress: progressWriter(conn)}
	if job.req.Hyper.CheckpointEvery > 0 {
		sink.checkpoint = checkpointWriter(conn, areq.OptState, areq.OptimSpec, job.req.Spec.Kind)
	}
	if err := job.attach(areq.FromEpoch, sink); err != nil {
		return err
	}
	defer job.detach(sink)
	select {
	case <-job.done:
	default:
		select {
		case <-job.done:
		case <-connDead:
			// Detached, not cancelled: the job keeps running and its
			// output keeps buffering for the next attach.
			return io.EOF
		}
	}
	resp, jerr := job.result()
	if jerr != nil {
		return jerr
	}
	return s.writeOutcome(conn, protocolVersion, outcomeCaps{
		optState: areq.OptState, failover: areq.Failover,
		optimSpec: areq.OptimSpec,
		kind:      job.req.Spec.Kind, clientStopped: clientStopped.Load(),
	}, resp)
}
