package cloudsim

import (
	"amalgam/internal/tensor"
)

// ProviderView captures everything an honest-but-curious provider observes
// about a job: dataset geometry, pixel/token samples, and the sub-network
// gather sets in randomised order with no labels. §6.3's attacks operate on
// this view — never on the client-side key.
type ProviderView struct {
	// JobID and State identify the scheduled job this observation belongs
	// to and its state at the moment Views was called. Queued jobs are
	// present-but-pending: their view is captured at admission (the
	// provider has seen the upload) with State "queued".
	JobID string
	State string

	N, C, H, W int
	// FirstImage is a copy of one training sample as uploaded (augmented
	// for Amalgam jobs) — the denoising attack's input. Nil for text jobs.
	FirstImage *tensor.Tensor
	// FirstSample is the text counterpart: one uploaded (augmented) token
	// sequence.
	FirstSample []int
	// GatherSets are the per-sub-network index sets visible in the shipped
	// graph, shuffled so position carries no information.
	GatherSets [][]int
	// AugAmount is inferable from tensor shapes, so the provider gets it.
	AugAmount float64
}

// CaptureProviderView derives the provider's observation from a request.
func CaptureProviderView(req *TrainRequest) ProviderView {
	v := ProviderView{AugAmount: req.Spec.AugAmount}
	if req.Images != nil {
		v.N, v.C, v.H, v.W = req.Images.Dim(0), req.Images.Dim(1), req.Images.Dim(2), req.Images.Dim(3)
		if v.N > 0 {
			sz := v.C * v.H * v.W
			v.FirstImage = tensor.FromSlice(append([]float32(nil), req.Images.Data[:sz]...), v.C, v.H, v.W)
		}
	} else {
		v.N = len(req.Labels)
		if len(req.Samples) > 0 {
			// LM jobs carry no labels; the provider still sees how many
			// windows were uploaded.
			if v.N == 0 {
				v.N = len(req.Samples)
			}
			v.FirstSample = append([]int(nil), req.Samples[0]...)
		}
	}
	if req.Spec.Kind == "augmented-cv" || req.Spec.Kind == "augmented-text" || req.Spec.Kind == "augmented-lm" {
		// Rebuild gather sets exactly as the shipped graph exposes them.
		model, err := BuildModel(req.Spec)
		if err == nil {
			if am, ok := model.(interface{ GatherSets() [][]int }); ok {
				v.GatherSets = am.GatherSets()
			}
		}
		// Shuffle deterministically from content so the view never encodes
		// construction order.
		rng := tensor.NewRNG(uint64(len(v.GatherSets))*0x9e37 + uint64(v.H+req.Spec.AugLen))
		rng.Shuffle(len(v.GatherSets), func(i, j int) {
			v.GatherSets[i], v.GatherSets[j] = v.GatherSets[j], v.GatherSets[i]
		})
	}
	return v
}
