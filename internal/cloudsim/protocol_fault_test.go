package cloudsim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"amalgam/internal/faultnet"
	"amalgam/internal/serialize"
	"amalgam/internal/tensor"
)

// triggerShutdown starts a graceful shutdown and blocks until the signal is
// visible to every in-flight handler, so a test's next epoch boundary is
// guaranteed to observe it (no scheduler race on the cancel goroutine's
// channel read).
func triggerShutdown(server *Server) {
	go func() { _ = server.Shutdown(context.Background()) }()
	<-server.shuttingDown
}

// TestShutdownHandsOffFailoverClient pins the graceful-shutdown handoff:
// a failover-aware client whose job is drained mid-run receives an
// epoch-aligned AMC2 checkpoint — weights, momentum, dropout cursors —
// followed by the retryable ErrServerShutdown, and resuming from that
// checkpoint on a second server reproduces an unbroken run bit-for-bit.
// The LM job keeps Dropout > 0 and Momentum > 0, so all three state legs
// are load-bearing.
func TestShutdownHandsOffFailoverClient(t *testing.T) {
	// Far horizon: the service cannot finish before the shutdown signal
	// lands (the same guarantee the cancellation tests rely on), so the
	// job is always drained mid-run.
	const epochs = 2000
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(l)

	req := lmJob(t)
	req.Hyper.Epochs = epochs
	var once sync.Once
	var last *serialize.TrainCheckpoint
	resp, err := TrainContext(context.Background(), l.Addr().String(), req, StreamHandlers{
		Progress:   func(EpochMetric) { once.Do(func() { triggerShutdown(server) }) },
		Checkpoint: func(ck *serialize.TrainCheckpoint) { last = ck },
	})
	if err == nil {
		t.Fatalf("job outran the shutdown signal (%d epochs completed)", resp.CompletedEpochs)
	}
	if !errors.Is(err, ErrServerShutdown) {
		t.Fatalf("drained job returned %v, want ErrServerShutdown", err)
	}
	if !IsTransient(err) {
		t.Fatal("ErrServerShutdown must classify as transient (retry elsewhere)")
	}
	if err := server.Wait(); err != nil {
		t.Fatalf("graceful shutdown left a terminal accept error: %v", err)
	}
	if last == nil {
		t.Fatal("no handoff checkpoint before the shutdown error")
	}
	if last.Epoch < 1 || last.Epoch >= epochs {
		t.Fatalf("handoff checkpoint at epoch %d, want within (0,%d)", last.Epoch, epochs)
	}
	if last.Kind != "augmented-lm" {
		t.Fatalf("handoff checkpoint records kind %q", last.Kind)
	}
	if last.OptState.Empty() {
		t.Fatal("handoff checkpoint lost the momentum buffers")
	}
	if len(last.RNG) == 0 {
		t.Fatal("handoff checkpoint lost the dropout-stream cursors")
	}

	// Resume on a second server from exactly the handoff state, to a
	// nearby horizon. The per-epoch shuffle depends only on (seed, epoch),
	// never on the total epoch count, so a straight run to the same
	// horizon is the bit-identity reference.
	horizon := last.Epoch + 2
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server2 := NewServer(l2)
	defer func() {
		l2.Close()
		server2.Wait()
	}()
	resumed := lmJob(t)
	resumed.Hyper.Epochs = horizon
	resumed.Hyper.StartEpoch = last.Epoch
	resumed.InitState = last.State
	resumed.InitOptState = last.OptState
	resumed.InitRNG = last.RNG
	got, err := TrainContext(context.Background(), l2.Addr().String(), resumed, StreamHandlers{})
	if err != nil {
		t.Fatalf("resume on second server: %v", err)
	}

	straightReq := lmJob(t)
	straightReq.Hyper.Epochs = horizon
	straight, err := RunLocal(straightReq)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range straight.State {
		if !got.State[name].Equal(want) {
			t.Fatalf("shutdown-resumed run diverged from straight run at %q", name)
		}
	}
}

// TestShutdownLegacyClientGetsCancelledResult hand-rolls a v2 client that
// never declared the failover capability: during a graceful shutdown it
// must receive the ordinary cancelled result + epoch-aligned state — no
// checkpoint frame, no optimiser frame, no RNG frame, no error frame.
func TestShutdownLegacyClientGetsCancelledResult(t *testing.T) {
	const epochs = 2000
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(l)
	defer server.Wait()

	req := textJob(t)
	req.Hyper = Hyper{Epochs: epochs, BatchSize: 8, LR: 0.5, Momentum: 0.9, Stream: true}

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	specPayload, err := encodeSpecFrame(req.Spec)
	if err != nil {
		t.Fatal(err)
	}
	hyperJSON, err := json.Marshal(req.Hyper)
	if err != nil {
		t.Fatal(err)
	}
	var labelsBuf, tokensBuf bytes.Buffer
	if err := serialize.WriteIntSlice(&labelsBuf, req.Labels); err != nil {
		t.Fatal(err)
	}
	if err := serialize.WriteIntSlice(&tokensBuf, flattenSamples(req.Samples)); err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct {
		kind    byte
		payload []byte
	}{
		{msgSpec, specPayload},
		{msgHyper, hyperJSON},
		{msgLabels, labelsBuf.Bytes()},
		{msgTokens, tokensBuf.Bytes()},
		{msgDone, nil},
	} {
		if err := writeFrame(conn, f.kind, f.payload); err != nil {
			t.Fatal(err)
		}
	}

	var once sync.Once
	var meta resultMeta
	haveResult := false
	conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	for {
		kind, payload, err := readFrame(conn)
		if err != nil {
			t.Fatalf("legacy client read: %v", err)
		}
		switch kind {
		case msgProgress:
			once.Do(func() { triggerShutdown(server) })
		case msgResult:
			if err := json.Unmarshal(payload, &meta); err != nil {
				t.Fatal(err)
			}
			haveResult = true
		case msgState:
			if !haveResult {
				t.Fatal("state frame before result frame")
			}
			if !meta.Cancelled {
				t.Fatalf("legacy client job reported uncancelled after shutdown (%d epochs)", meta.CompletedEpochs)
			}
			if meta.CompletedEpochs < 1 || meta.CompletedEpochs >= epochs {
				t.Fatalf("legacy client resumed point %d outside (0,%d)", meta.CompletedEpochs, epochs)
			}
			if _, err := serialize.ReadStateDict(bytes.NewReader(payload)); err != nil {
				t.Fatalf("legacy client state dict: %v", err)
			}
			return
		default:
			t.Fatalf("legacy client received frame type %d during shutdown; the failover extension leaked", kind)
		}
	}
}

// tempAcceptErr mimics a transient accept(2) failure (fd pressure).
type tempAcceptErr struct{}

func (tempAcceptErr) Error() string   { return "accept: resource temporarily unavailable" }
func (tempAcceptErr) Temporary() bool { return true }

// flakyListener fails its first n Accepts with a temporary error.
type flakyListener struct {
	net.Listener
	mu        sync.Mutex
	remaining int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.remaining > 0 {
		l.remaining--
		l.mu.Unlock()
		return nil, tempAcceptErr{}
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// TestAcceptLoopRidesOutTemporaryErrors pins that transient accept faults
// back off and retry instead of killing the accept loop: a job submitted
// behind three injected failures still trains, and Wait reports no
// terminal error.
func TestAcceptLoopRidesOutTemporaryErrors(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: l, remaining: 3}
	server := NewServerConfig(fl, ServerConfig{})
	defer func() {
		l.Close()
		if err := server.Wait(); err != nil {
			t.Errorf("temporary accept faults surfaced as terminal: %v", err)
		}
	}()

	req, _, _ := tinyJob(t, false)
	if _, err := Train(l.Addr().String(), req); err != nil {
		t.Fatalf("job behind temporary accept faults failed: %v", err)
	}
	fl.mu.Lock()
	left := fl.remaining
	fl.mu.Unlock()
	if left != 0 {
		t.Fatalf("only %d of 3 injected accept faults consumed", 3-left)
	}
}

// doomedListener fails every Accept with a permanent error.
type doomedListener struct {
	net.Listener
	err error
}

func (l *doomedListener) Accept() (net.Conn, error) { return nil, l.err }

// TestAcceptLoopSurfacesTerminalError pins the satellite: a permanent
// listener failure stops the accept loop AND is reported through Wait —
// previously the loop died silently and Wait looked like a clean exit.
func TestAcceptLoopSurfacesTerminalError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	boom := errors.New("listener wedged")
	server := NewServerConfig(&doomedListener{Listener: l, err: boom}, ServerConfig{})
	if err := server.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait returned %v, want the terminal accept error", err)
	}
}

// TestJobPanicClassifiedFatalAndServerSurvives drives a request whose
// geometry slips past frame-level validation but panics inside the job
// (a rank-1 image tensor): the client must get a classified, NON-transient
// ErrJobPanic instead of a torn connection, and the server must keep
// serving jobs afterwards.
func TestJobPanicClassifiedFatalAndServerSurvives(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(l)
	defer func() {
		l.Close()
		server.Wait()
	}()

	bad, _, _ := tinyJob(t, false)
	bad.Images = tensor.FromSlice(make([]float32, len(bad.Labels)), len(bad.Labels))
	_, err = Train(l.Addr().String(), bad)
	if !errors.Is(err, ErrJobPanic) {
		t.Fatalf("panicking job returned %v, want ErrJobPanic", err)
	}
	if IsTransient(err) {
		t.Fatal("a deterministic server-side panic must not be retried")
	}

	good, _, _ := tinyJob(t, false)
	if _, err := Train(l.Addr().String(), good); err != nil {
		t.Fatalf("server wedged after a panicking job: %v", err)
	}
}

// TestMidTrainingKillThenResumeIsBitIdentical is the protocol-level kill
// path: faultnet severs every connection at an epoch boundary mid-job, the
// client's failure classifies as transient, and a manual retry from the
// last streamed checkpoint finishes with weights bit-identical to an
// unbroken local run — the contract RemoteTrainer's retry loop builds on.
func TestMidTrainingKillThenResumeIsBitIdentical(t *testing.T) {
	const epochs = 2000 // far horizon: the kill always lands mid-run
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := faultnet.Wrap(inner, nil)
	server := NewServer(fl)
	defer func() {
		fl.Close()
		server.Wait()
	}()

	req := textJob(t)
	req.Hyper.Epochs = epochs
	var once sync.Once
	var last *serialize.TrainCheckpoint
	_, err = TrainContext(context.Background(), fl.Addr().String(), req, StreamHandlers{
		Progress: func(m EpochMetric) {
			if m.Epoch >= 2 {
				once.Do(fl.KillAll)
			}
		},
		Checkpoint: func(ck *serialize.TrainCheckpoint) { last = ck },
	})
	if err == nil {
		t.Fatal("killed connection reported success")
	}
	if !IsTransient(err) {
		t.Fatalf("mid-training kill classified fatal: %v", err)
	}
	if last == nil || last.Epoch < 1 {
		t.Fatalf("no usable checkpoint streamed before the kill (got %+v)", last)
	}

	// Retry to a nearby horizon (shuffle is (seed, epoch)-derived, so the
	// horizon does not influence the shared epochs).
	horizon := last.Epoch + 2
	retry := textJob(t)
	retry.Hyper.Epochs = horizon
	retry.Hyper.StartEpoch = last.Epoch
	retry.InitState = last.State
	retry.InitOptState = last.OptState
	retry.InitRNG = last.RNG
	got, err := TrainContext(context.Background(), fl.Addr().String(), retry, StreamHandlers{})
	if err != nil {
		t.Fatalf("retry attempt: %v", err)
	}

	straightReq := textJob(t)
	straightReq.Hyper.Epochs = horizon
	straight, err := RunLocal(straightReq)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range straight.State {
		if !got.State[name].Equal(want) {
			t.Fatalf("kill-and-resume diverged from straight run at %q", name)
		}
	}
}

// TestRequestCutIsTransient severs the server-side connection inside the
// request upload; whatever surfaces client-side (reset, EOF, closed pipe)
// must classify as retryable.
func TestRequestCutIsTransient(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := faultnet.Wrap(inner, func(int) faultnet.ConnPlan {
		return faultnet.ConnPlan{CutAfterReadBytes: 64}
	})
	server := NewServer(fl)
	defer func() {
		fl.Close()
		server.Wait()
	}()

	req, _, _ := tinyJob(t, false)
	_, err = Train(fl.Addr().String(), req)
	if err == nil {
		t.Fatal("upload through a 64-byte read budget succeeded")
	}
	if !IsTransient(err) {
		t.Fatalf("request-phase cut classified fatal: %v", err)
	}
}

// TestDialFailureIsTransient: nothing listening is the canonical
// retry-elsewhere fault.
func TestDialFailureIsTransient(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	req, _, _ := tinyJob(t, false)
	_, err = Train(addr, req)
	if err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	if !IsTransient(err) {
		t.Fatalf("dial failure classified fatal: %v", err)
	}
}

// TestStalledRequestFreedByFrameDeadline pins the per-frame request
// deadline: a client that goes silent mid-upload is cut loose within the
// configured bound instead of pinning a handler (and its concurrency slot)
// forever, and the server keeps serving.
func TestStalledRequestFreedByFrameDeadline(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServerConfig(l, ServerConfig{FrameTimeout: 100 * time.Millisecond})
	defer func() {
		l.Close()
		server.Wait()
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A header promising 100 payload bytes that never arrive.
	if _, err := conn.Write([]byte{msgSpec, 100, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err == nil {
		// An error frame is also a valid way to cut the client loose; a
		// successful read must at least be followed by the close.
		if _, err := conn.Read(buf); err == nil {
			t.Fatal("stalled connection still alive after the frame deadline")
		}
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("stalled client freed only after %v, frame deadline is 100ms", waited)
	}

	req, _, _ := tinyJob(t, false)
	if _, err := Train(l.Addr().String(), req); err != nil {
		t.Fatalf("server wedged after a stalled client: %v", err)
	}
}

// FuzzReadFrame fuzzes the frame decoder: arbitrary bytes must never
// panic, never allocate past the claimed-length guard, and always return
// either a classified sentinel or a plain truncation error.
func FuzzReadFrame(f *testing.F) {
	var ok bytes.Buffer
	if err := writeFrame(&ok, msgSpec, []byte("hello amalgam")); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	f.Add([]byte{})
	f.Add([]byte{msgSpec, 0xff, 0xff, 0xff, 0x7f})      // 2 GiB claim
	f.Add([]byte{msgState, 10, 0, 0, 0, 1, 2})          // truncated payload
	f.Add([]byte{msgRNGState, 0, 0, 16, 0, 0xde, 0xad}) // >chunk claim, no bytes
	f.Add(append(ok.Bytes(), ok.Bytes()...))            // two frames back to back
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("unclassified frame error: %v", err)
			}
			return
		}
		if len(payload) > maxFrame {
			t.Fatalf("frame decoder returned %d bytes past the %d limit", len(payload), maxFrame)
		}
		if len(data) < 5+len(payload) {
			t.Fatalf("kind-%d frame conjured %d payload bytes from %d input bytes", kind, len(payload), len(data))
		}
	})
}

// fakeConn is an in-memory net.Conn for alloc measurements: reads come
// from a resettable reader, writes and deadlines are no-ops. Only the
// methods deadlineConn exercises are implemented.
type fakeConn struct {
	net.Conn
	r bytes.Reader
}

func (c *fakeConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *fakeConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *fakeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(time.Time) error { return nil }

// TestFramePlumbingAllocs pins the happy-path epoch loop's allocation
// budget THROUGH the hardening layer (deadlineConn + chunked readFrame):
// a progress-sized frame costs at most one write-side allocation (the
// header escaping into the Write call) and two read-side allocations (the
// header and the returned payload). Regressions here show up on every
// epoch of every streamed job.
func TestFramePlumbingAllocs(t *testing.T) {
	payload := make([]byte, 256)
	var frame bytes.Buffer
	if err := writeFrame(&frame, msgProgress, payload); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()

	fc := &fakeConn{}
	dc := newDeadlineConn(fc, time.Minute, time.Minute)

	writes := testing.AllocsPerRun(200, func() {
		if err := writeFrame(dc, msgProgress, payload); err != nil {
			t.Fatal(err)
		}
	})
	if writes > 1 {
		t.Errorf("writeFrame through deadlineConn: %.1f allocs per frame, want <= 1", writes)
	}
	reads := testing.AllocsPerRun(200, func() {
		fc.r.Reset(raw)
		if _, _, err := readFrame(dc); err != nil {
			t.Fatal(err)
		}
	})
	if reads > 2 {
		t.Errorf("readFrame through deadlineConn: %.1f allocs per frame, want <= 2", reads)
	}
}

// BenchmarkFramePlumbing is the bench-smoke for the epoch loop's wire
// path: one progress-frame roundtrip through the deadline wrapper.
func BenchmarkFramePlumbing(b *testing.B) {
	payload := make([]byte, 256)
	var frame bytes.Buffer
	if err := writeFrame(&frame, msgProgress, payload); err != nil {
		b.Fatal(err)
	}
	raw := frame.Bytes()
	fc := &fakeConn{}
	dc := newDeadlineConn(fc, time.Minute, time.Minute)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writeFrame(dc, msgProgress, payload); err != nil {
			b.Fatal(err)
		}
		fc.r.Reset(raw)
		if _, _, err := readFrame(dc); err != nil {
			b.Fatal(err)
		}
	}
}
