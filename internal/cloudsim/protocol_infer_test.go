package cloudsim

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"amalgam/internal/autodiff"
	"amalgam/internal/models"
	"amalgam/internal/serve"
	"amalgam/internal/tensor"
)

// startInferServer brings up a wire server in front of a serve backend
// with one model per modality registered, returning its address and a
// cleanup.
func startInferServer(t *testing.T) (string, *models.TextClassifier, *models.TransformerLM, func()) {
	t.Helper()
	txt := models.NewTextClassifier(tensor.NewRNG(11), 50, 8, 3)
	lm := models.NewTransformerLM(tensor.NewRNG(13), models.TransformerLMConfig{
		Vocab: 40, D: 8, Heads: 2, FF: 16, Layers: 1, MaxT: 10, Dropout: 0,
	})
	backend := serve.New(serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 2})
	if err := backend.RegisterText("txt", txt, serve.TextConfig{Vocab: 50, SplitTail: txt.ForwardPooled, SplitDim: txt.EmbedDim}); err != nil {
		t.Fatal(err)
	}
	if err := backend.RegisterLM("lm", lm, serve.LMConfig{MaxContext: 10, Vocab: 40, SplitTail: lm.ForwardEmbedded, SplitDim: lm.D}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServerConfig(l, ServerConfig{Infer: backend})
	return l.Addr().String(), txt, lm, func() {
		l.Close()
		server.Wait()
		backend.Close()
	}
}

// TestInferRoundTrip pins the wire contract: predictions served over
// msgInfer frames — full-input and split, text and LM — are bit-identical
// to a local forward through the same model.
func TestInferRoundTrip(t *testing.T) {
	addr, txt, lm, stop := startInferServer(t)
	defer stop()

	conn, err := DialInfer(context.Background(), addr, NetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	samples := [][]int{{3, 14, 15}, {9, 26, 5, 35, 8}, {2, 7}}
	got, err := conn.PredictText("txt", samples)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		out := txt.ForwardIDs([][]int{s})
		wantClass := tensor.ArgmaxRows(out.Val)[0]
		wantLogits := append([]float32(nil), out.Val.Data...)
		autodiff.Release(out)
		if got[i].Class != wantClass {
			t.Errorf("sample %d: wire class %d, local %d", i, got[i].Class, wantClass)
		}
		for j, v := range wantLogits {
			if got[i].Logits[j] != v {
				t.Fatalf("sample %d logit %d: wire %v, local %v", i, j, got[i].Logits[j], v)
			}
		}
	}

	// Split inference: pooled embeddings computed client-side must score
	// bit-identically to the full-token path.
	pooled := make([][]float32, len(samples))
	for i, s := range samples {
		node := txt.Embed.LookupMean([][]int{s})
		pooled[i] = append([]float32(nil), node.Val.Data...)
		autodiff.Release(node)
	}
	gotSplit, err := conn.PredictTextSplit("txt", pooled)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		if gotSplit[i].Class != got[i].Class {
			t.Errorf("sample %d: split class %d, full class %d", i, gotSplit[i].Class, got[i].Class)
		}
		for j := range got[i].Logits {
			if gotSplit[i].Logits[j] != got[i].Logits[j] {
				t.Fatalf("sample %d logit %d: split %v, full %v", i, j, gotSplit[i].Logits[j], got[i].Logits[j])
			}
		}
	}

	// LM next-token scoring, full and split.
	ctxs := [][]int{{1, 8, 30}, {5, 2, 2, 17, 33}}
	gotLM, err := conn.PredictLM("lm", ctxs, 3)
	if err != nil {
		t.Fatal(err)
	}
	acts := make([][]float32, len(ctxs))
	lens := make([]int, len(ctxs))
	for i, c := range ctxs {
		h := lm.EmbedIDs([][]int{c})
		acts[i] = append([]float32(nil), h.Val.Data...)
		autodiff.Release(h)
		lens[i] = len(c)
	}
	gotLMSplit, err := conn.PredictLMSplit("lm", acts, lens, lm.D, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ctxs {
		if len(gotLM[i].Tokens) != 3 {
			t.Fatalf("context %d: want 3 tokens, got %d", i, len(gotLM[i].Tokens))
		}
		for j := range gotLM[i].Tokens {
			if gotLM[i].Tokens[j] != gotLMSplit[i].Tokens[j] || gotLM[i].LogProbs[j] != gotLMSplit[i].LogProbs[j] {
				t.Fatalf("context %d entry %d: full (%d, %v) vs split (%d, %v)",
					i, j, gotLM[i].Tokens[j], gotLM[i].LogProbs[j], gotLMSplit[i].Tokens[j], gotLMSplit[i].LogProbs[j])
			}
		}
	}
}

// TestInferRequiresCapability pins the admission rule: an infer frame on
// a connection that never declared Hyper.Infer is refused as a bad
// request, mirroring the async extension's negotiation.
func TestInferRequiresCapability(t *testing.T) {
	addr, _, _, stop := startInferServer(t)
	defer stop()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := newDeadlineConn(raw, 5*time.Second, 5*time.Second)
	payload, err := encodeInferFrame(inferHeader{Model: "txt", Modality: "text", Lens: []int{1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, msgInfer, payload); err != nil {
		t.Fatal(err)
	}
	kind, resp, err := readFrame(conn)
	if err != nil || kind != msgError {
		t.Fatalf("want an error frame, got kind %d err %v", kind, err)
	}
	if err := decodeErrorFrame(resp); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
}

// TestInferRefusedWithoutBackend pins that a pure training server (no
// Infer backend configured) refuses infer frames with ErrBadRequest
// instead of crashing or hanging.
func TestInferRefusedWithoutBackend(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(l)
	defer func() {
		l.Close()
		server.Wait()
	}()
	conn, err := DialInfer(context.Background(), l.Addr().String(), NetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.PredictText("txt", [][]int{{1}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
}

// TestInferErrorsCrossWireTyped pins that backend failures keep their
// sentinel class across the wire: an unknown model and a malformed input
// both surface as ErrBadRequest via the coded error frame, and the
// connection keeps serving afterwards (error frames do not poison it).
func TestInferErrorsCrossWireTyped(t *testing.T) {
	addr, _, _, stop := startInferServer(t)
	defer stop()

	conn, err := DialInfer(context.Background(), addr, NetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.PredictText("nope", [][]int{{1}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown model: want ErrBadRequest, got %v", err)
	}
	// Out-of-vocab token: refused at admission, batch untouched.
	conn2, err := DialInfer(context.Background(), addr, NetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.PredictText("txt", [][]int{{49, 50}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("out-of-vocab: want ErrBadRequest, got %v", err)
	}
	got, err := conn2.PredictText("txt", [][]int{{49}})
	if err != nil || len(got) != 1 {
		t.Fatalf("connection should keep serving after an in-band error: %v", err)
	}
}
