// Package cloudsim simulates the cloud side of Amalgam's workflow
// (Fig. 1): a Python-notebook-style training service that accepts a
// serialized (augmented) model plus (augmented) dataset, trains it, and
// returns the trained weights. It also provides the provider-view API —
// exactly what an honest-but-curious cloud can observe — which the attack
// analysis (§6.3) consumes, and an accelerator cost model used to report
// GPU-relative numbers on a CPU-only testbed (Fig. 14; see DESIGN.md §4).
//
// Protocol v2 extends the original blocking request/response loop with
// per-epoch progress streaming, cooperative cancellation, mid-job
// checkpoint frames, and a second modality: augmented text-classification
// jobs ride the same wire as CV jobs.
package cloudsim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"amalgam/internal/autodiff"
	"amalgam/internal/core"
	"amalgam/internal/data"
	"amalgam/internal/models"
	"amalgam/internal/nn"
	"amalgam/internal/optim"
	"amalgam/internal/tensor"
)

// ModelSpec tells the service how to instantiate the shipped model. In the
// paper's prototype the artifact is a TorchScript module — an opaque graph
// that happens to contain every sub-network's skip sets. Our spec plays
// the same role: it carries the gather sets and decoy seeds needed to
// rebuild the augmented graph, without any labelling the provider could
// not also derive from TorchScript (see ProviderView for what attacks may
// use).
type ModelSpec struct {
	Kind      string  `json:"kind"`            // "plain-cv", "augmented-cv", "augmented-text", or "augmented-lm"
	Model     string  `json:"model,omitempty"` // CV registry name, e.g. "lenet"
	InC       int     `json:"in_c,omitempty"`
	OrigH     int     `json:"orig_h,omitempty"`
	OrigW     int     `json:"orig_w,omitempty"`
	Classes   int     `json:"classes"`
	ModelSeed uint64  `json:"model_seed"`
	AugAmount float64 `json:"aug_amount"`
	SubNets   int     `json:"sub_nets"`
	AugSeed   uint64  `json:"aug_seed"`
	KeyKeep   []int   `json:"key_keep,omitempty"` // gather set of sub-network 0
	AugH      int     `json:"aug_h,omitempty"`
	AugW      int     `json:"aug_w,omitempty"`
	// Text-modality geometry ("augmented-text" and "augmented-lm";
	// OrigLen/AugLen are the BPTT window lengths for LM jobs).
	Vocab    int `json:"vocab,omitempty"`
	EmbedDim int `json:"embed_dim,omitempty"`
	OrigLen  int `json:"orig_len,omitempty"`
	AugLen   int `json:"aug_len,omitempty"`
	// Language-model architecture ("augmented-lm"): the transformer
	// configuration needed to rebuild the original sub-network. ModelSeed
	// doubles as the dropout-stream seed, so a rebuild reproduces the
	// exact training randomness, not just the graph.
	LMDim     int     `json:"lm_dim,omitempty"`
	LMHeads   int     `json:"lm_heads,omitempty"`
	LMFF      int     `json:"lm_ff,omitempty"`
	LMLayers  int     `json:"lm_layers,omitempty"`
	LMMaxT    int     `json:"lm_max_t,omitempty"`
	LMDropout float64 `json:"lm_dropout,omitempty"`
	// LMGELUFF selects the GELU feed-forward variant; absent/false keeps
	// the default ReLU, so pre-extension specs rebuild identically.
	LMGELUFF bool `json:"lm_gelu_ff,omitempty"`
	// Tenant attributes the job to a fair-share scheduling bucket. Empty
	// (every pre-extension client) buckets under the default tenant, so
	// legacy specs decode and schedule unchanged.
	Tenant string `json:"tenant,omitempty"`
}

// Hyper holds the training hyper-parameters of a job.
type Hyper struct {
	Epochs      int     `json:"epochs"`
	BatchSize   int     `json:"batch_size"`
	LR          float64 `json:"lr"`
	Momentum    float64 `json:"momentum"`
	WeightDecay float64 `json:"weight_decay"`
	Shuffle     bool    `json:"shuffle"`
	ShuffleSeed uint64  `json:"shuffle_seed"`
	// StartEpoch resumes a job: epochs [0, StartEpoch) are assumed done
	// (their effect carried by InitState) and metrics continue from there.
	StartEpoch int `json:"start_epoch,omitempty"`
	// Stream asks a v2 server to push msgProgress frames per epoch.
	Stream bool `json:"stream,omitempty"`
	// CheckpointEvery asks a v2 server to push a msgCheckpoint frame (full
	// state dict) every N epochs. 0 disables.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// OptState declares that the client understands the optimiser-state
	// extension: AMC2-format msgCheckpoint payloads and the msgOptState
	// result frame. Clients that predate the extension never set it, so
	// the server keeps sending them the legacy checkpoint layout and no
	// optimiser frames — same-version negotiation without a protocol bump.
	OptState bool `json:"opt_state,omitempty"`
	// Failover declares that the client understands the fault-tolerance
	// extension: msgRNGState result frames (dropout-stream cursors) and
	// the shutdown handoff (epoch-aligned msgCheckpoint followed by a
	// retryable coded msgError instead of a normal result). Negotiated the
	// same way as OptState, so pre-extension clients never see the new
	// frames.
	Failover bool `json:"failover,omitempty"`
	// Async declares that the client understands the async-service
	// extension and intends to end its request with msgSubmit instead of
	// msgDone. Negotiated like OptState/Failover: pre-extension clients
	// never set it and keep the blocking submit+wait conversation.
	Async bool `json:"async,omitempty"`
	// Optimizer selects the job's optimiser by spec (kind + hyperparams).
	// Nil keeps the historical behaviour: SGD built from the flat
	// LR/Momentum/WeightDecay fields above, so every pre-extension client
	// trains exactly as before. A spec with LR 0 inherits Hyper.LR.
	Optimizer *optim.OptimSpec `json:"optimizer,omitempty"`
	// Schedule selects an LR schedule applied at epoch boundaries. The
	// schedule is reconstructed from (spec, completed epochs) on resume,
	// so the rate never needs to travel in optimiser state.
	Schedule *optim.ScheduleSpec `json:"lr_schedule,omitempty"`
	// OptimSpec declares that the client understands the pluggable-
	// optimiser extension: AMC3 msgCheckpoint payloads and AMO1-framed
	// msgOptState result frames (generalized optimiser state). Negotiated
	// like OptState/Failover/Async — pre-extension clients never set it,
	// keep receiving the legacy SGD encodings byte-for-byte, and a server
	// refuses Optimizer/Schedule specs from clients that did not declare
	// it (they could not decode the resulting state frames).
	OptimSpec bool `json:"optim_spec,omitempty"`
	// Infer declares that the client understands the inference-serving
	// extension and will send msgInfer frames (batched predictions against
	// models registered on the server, full-input or split). Negotiated
	// like the other capability flags — no version bump; pre-extension
	// clients never set it and their byte streams are served unchanged.
	Infer bool `json:"infer,omitempty"`
}

// TrainRequest is a complete job: spec, hyper-parameters, and the
// (augmented) dataset — images for CV jobs, token samples for text jobs.
type TrainRequest struct {
	Spec   ModelSpec
	Hyper  Hyper
	Images *tensor.Tensor // [N, C, H, W] (CV modality)
	Labels []int
	// Samples holds the augmented token sequences of a text job — or the
	// augmented stream windows of an LM job — each of length Spec.AugLen.
	Samples [][]int
	// Eval* hold an optional held-out split (already obfuscated with the
	// job key) the service scores each epoch, reported as EvalAccuracy.
	// LM jobs ship eval windows with no labels.
	EvalImages  *tensor.Tensor
	EvalLabels  []int
	EvalSamples [][]int
	// InitState, when non-nil, overrides the rebuilt model's initial
	// parameters with the client's (preserving client-side initialisation).
	InitState map[string]*tensor.Tensor
	// InitOptState, when non-nil, seeds the optimiser's resume state
	// (momentum buffers, Adam moments + step counter) — a resumed job
	// continues the optimiser trajectory instead of restarting it.
	InitOptState *optim.State
	// InitRNG, when non-nil, restores per-layer dropout-stream cursors
	// (captured at a checkpoint) into the rebuilt model, so a resumed
	// Dropout > 0 job draws the same masks an uninterrupted run would.
	InitRNG map[string][]byte
}

// EpochMetric records per-epoch training loss/accuracy (of the original
// sub-network for augmented jobs — the curve the paper plots).
type EpochMetric struct {
	Epoch    int     `json:"epoch"`
	Loss     float64 `json:"loss"`
	Accuracy float64 `json:"accuracy"`
	Seconds  float64 `json:"seconds"`
	// EvalAccuracy is the held-out accuracy when the request shipped an
	// eval split; HasEval distinguishes "no eval set" from 0%.
	EvalAccuracy float64 `json:"eval_accuracy,omitempty"`
	HasEval      bool    `json:"has_eval,omitempty"`
	// Perplexity is exp(Loss), reported for language-model jobs (whose
	// Loss is the mean per-token cross-entropy). Zero for other kinds.
	Perplexity float64 `json:"perplexity,omitempty"`
	// LR is the learning rate the epoch trained at. Populated only for
	// jobs that carry an optimiser or schedule spec, so pre-extension
	// progress frames stay byte-identical.
	LR float64 `json:"lr,omitempty"`
}

// TrainResponse carries the trained weights and metrics back to the user.
type TrainResponse struct {
	State map[string]*tensor.Tensor
	// OptState holds the optimiser's final resume state (nil when the job
	// accumulated none), so a checkpoint written from the response resumes
	// bit-identically.
	OptState *optim.State
	Metrics  []EpochMetric
	Seconds  float64
	// RNG holds the model's dropout-stream cursors at the end of the run
	// (nil for models without stochastic layers), so a checkpoint written
	// from the response resumes the mask sequence bit-identically.
	RNG map[string][]byte
	// Cancelled reports that the job stopped early on a client msgCancel;
	// State then holds the epoch-aligned weights at interruption and
	// CompletedEpochs the number of fully finished epochs (the resume
	// point — resuming there re-trains no batch twice).
	Cancelled       bool
	CompletedEpochs int
}

// Snapshot is an epoch-aligned training state capture: everything needed
// to resume the run bit-identically. Checkpoint callbacks receive one per
// checkpoint boundary.
type Snapshot struct {
	// Epoch counts fully completed epochs (the resume point).
	Epoch int
	// State is the full model state dict at the boundary.
	State map[string]*tensor.Tensor
	// OptState holds the optimiser's resume state (nil when none has
	// accumulated).
	OptState *optim.State
	// RNG holds dropout-stream cursors (nil for deterministic models).
	RNG map[string][]byte
}

// RNGStateful is implemented by models whose forward pass consumes random
// streams (dropout): the loop captures the cursors into checkpoints and
// restores them on resume. Models without the interface are fully
// deterministic given their weights and need no cursor plumbing.
type RNGStateful interface {
	RNGStates() (map[string][]byte, error)
	LoadRNGStates(map[string][]byte) error
}

// Trainable is the server-side handle on a rebuilt model: everything the
// optimiser and state-dict plumbing need, for any modality.
type Trainable interface {
	Params() []nn.Param
	SetTraining(bool)
}

// BuildModel instantiates the spec. Exposed so local runs, the TCP server,
// and tests share one code path.
func BuildModel(spec ModelSpec) (Trainable, error) {
	switch spec.Kind {
	case "plain-cv":
		cfg := models.CVConfig{InC: spec.InC, InH: spec.OrigH, InW: spec.OrigW, Classes: spec.Classes}
		return models.BuildCV(spec.Model, tensor.NewRNG(spec.ModelSeed), cfg)
	case "augmented-cv":
		cfg := models.CVConfig{InC: spec.InC, InH: spec.OrigH, InW: spec.OrigW, Classes: spec.Classes}
		orig, err := models.BuildCV(spec.Model, tensor.NewRNG(spec.ModelSeed), cfg)
		if err != nil {
			return nil, err
		}
		key := &core.ImageAugKey{
			OrigH: spec.OrigH, OrigW: spec.OrigW, AugH: spec.AugH, AugW: spec.AugW,
			Keep: spec.KeyKeep,
		}
		key.Insert = complement(key.Keep, spec.AugH*spec.AugW)
		if err := key.Validate(); err != nil {
			return nil, fmt.Errorf("cloudsim: invalid key in spec: %w", err)
		}
		return core.AugmentCVModel(orig, key, spec.InC, spec.Classes, core.ModelAugmentOptions{
			Amount: spec.AugAmount, SubNets: spec.SubNets, Seed: spec.AugSeed,
		})
	case "augmented-text":
		if spec.Vocab <= 0 || spec.EmbedDim <= 0 || spec.Classes <= 0 {
			return nil, fmt.Errorf("cloudsim: text spec needs vocab/embed_dim/classes, got %d/%d/%d: %w",
				spec.Vocab, spec.EmbedDim, spec.Classes, ErrBadRequest)
		}
		orig := models.NewTextClassifier(tensor.NewRNG(spec.ModelSeed), spec.Vocab, spec.EmbedDim, spec.Classes)
		key := &core.TextAugKey{OrigLen: spec.OrigLen, AugLen: spec.AugLen, Keep: spec.KeyKeep}
		key.Insert = complement(key.Keep, spec.AugLen)
		if err := key.Validate(); err != nil {
			return nil, fmt.Errorf("cloudsim: invalid text key in spec: %w", err)
		}
		return core.AugmentTextClassifier(orig, key, core.ModelAugmentOptions{
			Amount: spec.AugAmount, SubNets: spec.SubNets, Seed: spec.AugSeed,
		})
	case "augmented-lm":
		if spec.Vocab <= 0 || spec.LMDim <= 0 || spec.LMHeads <= 0 || spec.LMLayers <= 0 || spec.LMFF <= 0 {
			return nil, fmt.Errorf("cloudsim: LM spec needs vocab/lm_dim/lm_heads/lm_layers/lm_ff, got %d/%d/%d/%d/%d: %w",
				spec.Vocab, spec.LMDim, spec.LMHeads, spec.LMLayers, spec.LMFF, ErrBadRequest)
		}
		// Training feeds OrigLen−1 tokens per window; a positional table
		// shorter than that would panic mid-epoch and take the service
		// down, so reject the spec up front.
		if spec.LMMaxT < spec.OrigLen-1 {
			return nil, fmt.Errorf("cloudsim: LM spec positional table lm_max_t %d shorter than window inputs (%d): %w",
				spec.LMMaxT, spec.OrigLen-1, ErrBadRequest)
		}
		cfg := models.TransformerLMConfig{
			Vocab: spec.Vocab, D: spec.LMDim, Heads: spec.LMHeads, FF: spec.LMFF,
			Layers: spec.LMLayers, MaxT: spec.LMMaxT, Dropout: float32(spec.LMDropout),
			GELUFF: spec.LMGELUFF,
		}
		orig := models.NewTransformerLM(tensor.NewRNG(spec.ModelSeed), cfg)
		key := &core.TextAugKey{OrigLen: spec.OrigLen, AugLen: spec.AugLen, Keep: spec.KeyKeep}
		key.Insert = complement(key.Keep, spec.AugLen)
		if err := key.Validate(); err != nil {
			return nil, fmt.Errorf("cloudsim: invalid LM key in spec: %w", err)
		}
		return core.AugmentTransformerLM(orig, key, core.ModelAugmentOptions{
			Amount: spec.AugAmount, SubNets: spec.SubNets, Seed: spec.AugSeed,
		})
	default:
		return nil, fmt.Errorf("cloudsim: unknown model kind %q: %w", spec.Kind, ErrBadRequest)
	}
}

func complement(keep []int, n int) []int {
	in := make([]bool, n)
	for _, p := range keep {
		if p >= 0 && p < n {
			in[p] = true
		}
	}
	out := make([]int, 0, n-len(keep))
	for i := 0; i < n; i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}

// Engine hides a job's modality behind step/accuracy closures so one
// training loop serves CV and text jobs alike. The cloud service builds
// engines from wire requests (newEngine); the public LocalTrainer builds
// them over its live job artifacts — both then drive the SAME TrainLoop,
// which is what makes local and remote training bit-identical by
// construction rather than by hand-synced copies.
type Engine struct {
	Model Trainable
	// N is the number of training samples.
	N int
	// Step runs one mini-batch: zero grads, forward, backward, optimiser
	// step, release the graph. Returns the summed original-sub-network
	// loss and the batch size.
	Step func(opt optim.Optimizer, idx []int) (lossSum float64, count int)
	// TrainAcc scores the model on the (augmented) training set.
	TrainAcc func(batch int) float64
	// EvalAcc scores the held-out split; ok is false when there is none.
	// Nil means no eval set.
	EvalAcc func(batch int) (acc float64, ok bool)
	// Perplexity marks a language-model engine: Loss is the mean
	// per-token cross-entropy, and TrainLoop reports exp(Loss) as the
	// epoch's perplexity.
	Perplexity bool
	// InitOptState seeds the optimiser's resume state before the first
	// step (checkpoint resume). Nil starts the optimiser fresh.
	InitOptState *optim.State
	// InitRNG restores dropout-stream cursors before the first step
	// (checkpoint resume). Nil leaves the model's build-time streams.
	InitRNG map[string][]byte
}

// forwarder is implemented by both plain CV models and AugmentedCVModel.
type forwarder interface {
	Forward(x *autodiff.Node) *autodiff.Node
}

// idForwarder is implemented by text models (original and augmented).
type idForwarder interface {
	ForwardIDs(ids [][]int) *autodiff.Node
}

func newEngine(req *TrainRequest) (*Engine, error) {
	model, err := BuildModel(req.Spec)
	if err != nil {
		return nil, err
	}
	switch req.Spec.Kind {
	case "plain-cv", "augmented-cv":
		n := len(req.Labels)
		if req.Images == nil || n == 0 || req.Images.Dim(0) != n {
			return nil, fmt.Errorf("cloudsim: dataset has %d images for %d labels: %w", imageCount(req.Images), n, ErrBadRequest)
		}
		ds := &data.ImageDataset{Images: req.Images, Labels: req.Labels, Classes: req.Spec.Classes}
		var lossFn func(x *autodiff.Node, labels []int) (total, orig *autodiff.Node)
		if am, ok := model.(*core.AugmentedCVModel); ok {
			lossFn = am.Loss
		} else {
			fw := model.(forwarder)
			lossFn = func(x *autodiff.Node, labels []int) (*autodiff.Node, *autodiff.Node) {
				l := autodiff.SoftmaxCrossEntropy(fw.Forward(x), labels)
				return l, l
			}
		}
		eng := &Engine{
			Model:    model,
			N:        n,
			Step:     CVStep(model, lossFn, ds),
			TrainAcc: func(batch int) float64 { return imageAccuracy(model, ds, batch) },
		}
		if req.EvalImages != nil {
			if len(req.EvalLabels) == 0 || req.EvalImages.Dim(0) != len(req.EvalLabels) {
				return nil, fmt.Errorf("cloudsim: eval split has %d images for %d labels: %w",
					req.EvalImages.Dim(0), len(req.EvalLabels), ErrBadRequest)
			}
			eds := &data.ImageDataset{Images: req.EvalImages, Labels: req.EvalLabels, Classes: req.Spec.Classes}
			eng.EvalAcc = func(batch int) (float64, bool) { return imageAccuracy(model, eds, batch), true }
		}
		return eng, nil
	case "augmented-text":
		n := len(req.Labels)
		if len(req.Samples) != n || n == 0 {
			return nil, fmt.Errorf("cloudsim: dataset has %d samples for %d labels: %w", len(req.Samples), n, ErrBadRequest)
		}
		for i, s := range req.Samples {
			if len(s) != req.Spec.AugLen {
				return nil, fmt.Errorf("cloudsim: sample %d has %d tokens, want aug_len %d: %w", i, len(s), req.Spec.AugLen, ErrBadRequest)
			}
		}
		ds := &data.TextDataset{Samples: req.Samples, Labels: req.Labels, Vocab: req.Spec.Vocab, Classes: req.Spec.Classes}
		am := model.(*core.AugmentedTextClassifier)
		eng := &Engine{
			Model:    model,
			N:        n,
			Step:     TextStep(am, ds),
			TrainAcc: func(batch int) float64 { return textAccuracy(model, ds, batch) },
		}
		if len(req.EvalSamples) > 0 {
			if len(req.EvalSamples) != len(req.EvalLabels) {
				return nil, fmt.Errorf("cloudsim: eval split has %d samples for %d labels: %w",
					len(req.EvalSamples), len(req.EvalLabels), ErrBadRequest)
			}
			eds := &data.TextDataset{Samples: req.EvalSamples, Labels: req.EvalLabels, Vocab: req.Spec.Vocab, Classes: req.Spec.Classes}
			eng.EvalAcc = func(batch int) (float64, bool) { return textAccuracy(model, eds, batch), true }
		}
		return eng, nil
	case "augmented-lm":
		n := len(req.Samples)
		if n == 0 {
			return nil, fmt.Errorf("cloudsim: LM job has no token windows: %w", ErrBadRequest)
		}
		for i, s := range req.Samples {
			if len(s) != req.Spec.AugLen {
				return nil, fmt.Errorf("cloudsim: window %d has %d tokens, want aug_len %d: %w", i, len(s), req.Spec.AugLen, ErrBadRequest)
			}
		}
		ws := &data.WindowSet{Windows: req.Samples, Vocab: req.Spec.Vocab}
		am := model.(*core.AugmentedTransformerLM)
		eng := &Engine{
			Model:      model,
			N:          n,
			Step:       LMStep(am, ws),
			TrainAcc:   func(batch int) float64 { return LMAccuracy(am, ws, batch) },
			Perplexity: true,
		}
		if len(req.EvalSamples) > 0 {
			for i, s := range req.EvalSamples {
				if len(s) != req.Spec.AugLen {
					return nil, fmt.Errorf("cloudsim: eval window %d has %d tokens, want aug_len %d: %w", i, len(s), req.Spec.AugLen, ErrBadRequest)
				}
			}
			ews := &data.WindowSet{Windows: req.EvalSamples, Vocab: req.Spec.Vocab}
			eng.EvalAcc = func(batch int) (float64, bool) { return LMAccuracy(am, ews, batch), true }
		}
		return eng, nil
	default:
		return nil, fmt.Errorf("cloudsim: unknown model kind %q: %w", req.Spec.Kind, ErrBadRequest)
	}
}

// CVStep builds the canonical CV mini-batch step: zero grads, joint loss,
// backward, optimiser step, graph release. Shared by the service and the
// public LocalTrainer so there is exactly one definition of "a training
// step" per modality.
func CVStep(model Trainable, lossFn func(x *autodiff.Node, labels []int) (total, orig *autodiff.Node), ds *data.ImageDataset) func(optim.Optimizer, []int) (float64, int) {
	return func(opt optim.Optimizer, idx []int) (float64, int) {
		x, labels := ds.Batch(idx)
		nn.ZeroGrads(model)
		total, orig := lossFn(autodiff.Constant(x), labels)
		autodiff.Backward(total)
		opt.Step()
		l := float64(orig.Scalar()) * float64(len(labels))
		autodiff.Release(total)
		return l, len(labels)
	}
}

// TextStep is CVStep's text-classification counterpart.
func TextStep(am *core.AugmentedTextClassifier, ds *data.TextDataset) func(optim.Optimizer, []int) (float64, int) {
	return func(opt optim.Optimizer, idx []int) (float64, int) {
		ids, labels := ds.Batch(idx)
		nn.ZeroGrads(am)
		total, orig := am.Loss(ids, labels)
		autodiff.Backward(total)
		opt.Step()
		l := float64(orig.Scalar()) * float64(len(labels))
		autodiff.Release(total)
		return l, len(labels)
	}
}

// LMStep is CVStep's language-modelling counterpart: one batch of
// augmented windows through Algorithm 1's joint loss. The returned count
// is in next-token targets of the ORIGINAL windows, so the loop's mean
// Loss is per original token and exp(Loss) is the paper's perplexity.
func LMStep(am *core.AugmentedTransformerLM, ws *data.WindowSet) func(optim.Optimizer, []int) (float64, int) {
	perWindow := len(am.OrigGather.Idx) - 1
	return func(opt optim.Optimizer, idx []int) (float64, int) {
		wins := ws.Batch(idx)
		nn.ZeroGrads(am)
		total, orig := am.LossWindows(wins)
		autodiff.Backward(total)
		opt.Step()
		tokens := len(wins) * perWindow
		l := float64(orig.Scalar()) * float64(tokens)
		autodiff.Release(total)
		return l, tokens
	}
}

// LMAccuracy scores the original sub-network's next-token accuracy over
// a set of augmented windows — the LM counterpart of classification
// accuracy, shared by the service engine and the public LMJob. Exported
// (unlike the per-modality accuracy helpers below) because the amalgam
// package reuses it for local training and eval-set scoring.
func LMAccuracy(am *core.AugmentedTransformerLM, ws *data.WindowSet, batch int) float64 {
	prev := am.Training()
	am.SetTraining(false)
	defer am.SetTraining(prev)
	correct, total := 0, 0
	for _, idx := range data.BatchIter(ws.N(), batch, nil) {
		gathered := am.OrigGather.Apply(ws.Batch(idx))
		inputs := make([][]int, len(gathered))
		targets := make([][]int, len(gathered))
		for i, w := range gathered {
			inputs[i] = w[:len(w)-1]
			targets[i] = w[1:]
		}
		logits := am.Orig.ForwardIDs(inputs)
		pred := tensor.ArgmaxRows(logits.Val)
		autodiff.Release(logits)
		flat := models.FlattenTargets(targets)
		for i, p := range pred {
			if p == flat[i] {
				correct++
			}
		}
		total += len(flat)
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func imageCount(t *tensor.Tensor) int {
	if t == nil {
		return 0
	}
	return t.Dim(0)
}

// RunLocal executes a job in-process — the "deployed locally on user
// devices" mode the paper mentions, and the engine behind the TCP server.
func RunLocal(req *TrainRequest) (*TrainResponse, error) {
	return runTraining(context.Background(), req, nil, nil)
}

// runTraining builds the engine from a wire request and drives TrainLoop.
func runTraining(ctx context.Context, req *TrainRequest,
	progress func(EpochMetric) error,
	checkpoint func(*Snapshot) error) (*TrainResponse, error) {

	eng, err := newEngine(req)
	if err != nil {
		return nil, err
	}
	if req.InitState != nil {
		if err := nn.LoadStateDict(eng.Model, req.InitState); err != nil {
			return nil, fmt.Errorf("cloudsim: loading client init: %w", err)
		}
	}
	eng.InitOptState = req.InitOptState
	eng.InitRNG = req.InitRNG
	return TrainLoop(ctx, eng, req.Hyper, progress, checkpoint)
}

// TrainLoop is THE obfuscated-training epoch loop — the cloud service and
// the public LocalTrainer both run it, so batch order (per-epoch
// data.ShuffleRNG), checkpoint cadence, and cancellation semantics cannot
// drift between the two paths.
//
// progress (if non-nil) is called after every epoch; checkpoint (if
// non-nil, and hyper.CheckpointEvery > 0) receives an epoch-aligned
// Snapshot (state dict, momentum buffers, dropout-stream cursors) at
// checkpoint boundaries. A cancelled ctx stops the loop at the NEXT
// EPOCH BOUNDARY (the in-flight epoch completes) and returns the state
// with Cancelled set — not an error, so the caller still gets the
// weights. Epoch granularity keeps the returned state and
// CompletedEpochs consistent: a checkpoint written from a cancelled run
// never contains a partially applied epoch, so resuming re-trains no
// batch twice.
func TrainLoop(ctx context.Context, eng *Engine, hyper Hyper,
	progress func(EpochMetric) error,
	checkpoint func(*Snapshot) error) (*TrainResponse, error) {

	if hyper.Epochs <= 0 || hyper.BatchSize <= 0 {
		return nil, fmt.Errorf("cloudsim: epochs and batch size must be positive: %w", ErrBadRequest)
	}
	if hyper.StartEpoch < 0 || hyper.StartEpoch >= hyper.Epochs {
		return nil, fmt.Errorf("cloudsim: start epoch %d out of range [0,%d): %w", hyper.StartEpoch, hyper.Epochs, ErrBadRequest)
	}
	eng.Model.SetTraining(true)
	// Resolve the optimiser through the spec registry. Without an explicit
	// spec the flat Hyper fields reproduce the historical SGD exactly; a
	// spec with LR 0 inherits Hyper.LR so schedules and flat configs
	// compose.
	spec := optim.OptimSpec{Kind: optim.KindSGD, LR: hyper.LR, Momentum: hyper.Momentum, WeightDecay: hyper.WeightDecay}
	if hyper.Optimizer != nil {
		spec = *hyper.Optimizer
		if spec.LR == 0 {
			spec.LR = hyper.LR
		}
	}
	opt, err := optim.Build(spec, eng.Model.Params())
	if err != nil {
		if errors.Is(err, optim.ErrUnknownKind) {
			return nil, fmt.Errorf("cloudsim: optimiser kind %q: %w", spec.Kind, ErrUnknownOptimizer)
		}
		return nil, fmt.Errorf("cloudsim: optimiser spec: %v: %w", err, ErrBadRequest)
	}
	var sched optim.Schedule
	if hyper.Schedule != nil {
		sched, err = optim.BuildSchedule(*hyper.Schedule, opt)
		if err != nil {
			if errors.Is(err, optim.ErrUnknownKind) {
				return nil, fmt.Errorf("cloudsim: schedule kind %q: %w", hyper.Schedule.Kind, ErrUnknownOptimizer)
			}
			return nil, fmt.Errorf("cloudsim: schedule spec: %v: %w", err, ErrBadRequest)
		}
	}
	// State restore before schedule positioning: LoadStateDict restores
	// buffers and counters, then SetEpoch reconstructs the rate from
	// (spec, completed epochs) — the rate itself never rides in state, so
	// resume-vs-straight-run bit-identity holds for any schedule.
	if !eng.InitOptState.Empty() {
		if err := opt.LoadStateDict(eng.InitOptState); err != nil {
			return nil, fmt.Errorf("cloudsim: loading optimiser state: %w", err)
		}
	}
	if sched != nil {
		sched.SetEpoch(hyper.StartEpoch)
	}
	stateful, _ := eng.Model.(RNGStateful)
	if len(eng.InitRNG) > 0 {
		if stateful == nil {
			return nil, fmt.Errorf("cloudsim: RNG state shipped for a model without random streams: %w", ErrBadRequest)
		}
		if err := stateful.LoadRNGStates(eng.InitRNG); err != nil {
			return nil, fmt.Errorf("cloudsim: loading RNG state: %w", err)
		}
	}
	// captureRNG snapshots the dropout cursors at an epoch boundary (nil
	// for deterministic models) — eval paths run with SetTraining(false)
	// and consume no stream, so boundary captures are exact.
	captureRNG := func() (map[string][]byte, error) {
		if stateful == nil {
			return nil, nil
		}
		return stateful.RNGStates()
	}
	start := time.Now() //amalgam:allow detcheck wall-clock Seconds is a reported latency metric, never an input to training
	resp := &TrainResponse{CompletedEpochs: hyper.StartEpoch}
	for e := hyper.StartEpoch; e < hyper.Epochs; e++ {
		if ctx.Err() != nil {
			resp.Cancelled = true
			break
		}
		epochStart := time.Now() //amalgam:allow detcheck per-epoch wall time is a reported metric, never an input to training
		var shuffleRNG *tensor.RNG
		if hyper.Shuffle {
			shuffleRNG = data.ShuffleRNG(hyper.ShuffleSeed, e)
		}
		var lossSum float64
		seen := 0
		for _, idx := range data.BatchIter(eng.N, hyper.BatchSize, shuffleRNG) {
			l, c := eng.Step(opt, idx)
			lossSum += l
			seen += c
		}
		resp.CompletedEpochs = e + 1
		m := EpochMetric{
			Epoch:    e + 1,
			Loss:     lossSum / float64(seen),
			Accuracy: eng.TrainAcc(hyper.BatchSize),
			Seconds:  time.Since(epochStart).Seconds(), //amalgam:allow detcheck metric field on the progress report, not training state
		}
		if eng.EvalAcc != nil {
			m.EvalAccuracy, m.HasEval = eng.EvalAcc(hyper.BatchSize)
		}
		if eng.Perplexity {
			m.Perplexity = math.Exp(m.Loss)
		}
		if hyper.Optimizer != nil || hyper.Schedule != nil {
			// The rate this epoch actually trained at — captured before the
			// schedule advances. Gated on the specs so pre-extension
			// progress frames stay byte-identical.
			m.LR = opt.LR()
		}
		// The schedule advances at the epoch boundary, before the
		// checkpoint is cut: a resume from epoch e+1 re-derives this exact
		// position via SetEpoch(e+1). Exactly one EpochEnd per epoch.
		if sched != nil {
			sched.EpochEnd()
		}
		resp.Metrics = append(resp.Metrics, m)
		if progress != nil {
			if err := progress(m); err != nil {
				return nil, err
			}
		}
		if checkpoint != nil && hyper.CheckpointEvery > 0 && (e+1)%hyper.CheckpointEvery == 0 {
			rng, err := captureRNG()
			if err != nil {
				return nil, err
			}
			snap := &Snapshot{Epoch: e + 1, State: nn.StateDict(eng.Model), OptState: opt.StateDict(), RNG: rng}
			if err := checkpoint(snap); err != nil {
				return nil, err
			}
		}
	}
	resp.State = nn.StateDict(eng.Model)
	resp.OptState = opt.StateDict()
	rng, err := captureRNG()
	if err != nil {
		return nil, err
	}
	resp.RNG = rng
	resp.Seconds = time.Since(start).Seconds() //amalgam:allow detcheck total wall time is a reported metric, not training state
	return resp, nil
}

func imageAccuracy(model Trainable, ds *data.ImageDataset, batch int) float64 {
	fw, ok := model.(forwarder)
	if !ok || ds.N() == 0 {
		return 0
	}
	prev := nn.TrainingMode(model)
	model.SetTraining(false)
	defer model.SetTraining(prev)
	correct := 0
	for _, idx := range data.BatchIter(ds.N(), batch, nil) {
		x, labels := ds.Batch(idx)
		out := fw.Forward(autodiff.Constant(x))
		pred := tensor.ArgmaxRows(out.Val)
		autodiff.Release(out)
		for i, p := range pred {
			if p == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.N())
}

func textAccuracy(model Trainable, ds *data.TextDataset, batch int) float64 {
	fw, ok := model.(idForwarder)
	if !ok || ds.N() == 0 {
		return 0
	}
	prev := nn.TrainingMode(model)
	model.SetTraining(false)
	defer model.SetTraining(prev)
	correct := 0
	for _, idx := range data.BatchIter(ds.N(), batch, nil) {
		ids, labels := ds.Batch(idx)
		out := fw.ForwardIDs(ids)
		pred := tensor.ArgmaxRows(out.Val)
		autodiff.Release(out)
		for i, p := range pred {
			if p == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.N())
}

// Accelerator is the cost model standing in for the paper's RTX 3090s: it
// converts measured CPU wall-clock into simulated accelerator time via a
// fixed throughput ratio. The paper's own measurements put its GPU baseline
// 8× above CPU-only training on the same LeNet/MNIST job; we default to
// that ratio and report both raw and simulated numbers (DESIGN.md §4).
type Accelerator struct {
	// SpeedupVsCPU is how many times faster the accelerator runs the same
	// training step than this machine's CPU.
	SpeedupVsCPU float64
}

// PaperCalibratedAccelerator returns the Fig. 14-calibrated model.
func PaperCalibratedAccelerator() Accelerator { return Accelerator{SpeedupVsCPU: 8} }

// Simulate maps measured CPU seconds to simulated accelerator seconds.
func (a Accelerator) Simulate(cpuSeconds float64) float64 {
	if a.SpeedupVsCPU <= 0 {
		return cpuSeconds
	}
	return cpuSeconds / a.SpeedupVsCPU
}

// specJSON round-trips the spec for the wire protocol.
func specJSON(s ModelSpec) ([]byte, error) { return json.Marshal(s) }

func specFromJSON(b []byte) (ModelSpec, error) {
	var s ModelSpec
	err := json.Unmarshal(b, &s)
	return s, err
}
